// Figure 2(b) — per-epoch node-memory read/write time when the node
// memory is partitioned across machines.
//
// Paper: ~5 s on 1 machine grows to tens of seconds on 2 and 4 machines,
// because (p−1)/p of the rows are remote and the strict temporal ordering
// of memory operations forbids overlapping them. Reproduced with the
// fabric cost model at the paper's scale (GDELT-sized epoch, 600-event
// batches, 100-dim memory).
#include "bench_common.hpp"
#include "distributed/partition.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 2(b): distributed node-memory op time per epoch",
                "time grows steeply with machine count (1 << 2 < 4 nodes); "
                "reads dominate writes");

  dist::FabricSpec fabric;
  dist::PartitionWorkload w;
  w.num_nodes = 16682;        // GDELT |V| (Table 2)
  w.mem_dim = 100;            // paper model
  w.mail_dim = 330;           // 2*100 + 130-dim edge features
  w.events_per_epoch = 1000000;  // one GDELT training chunk
  w.batch_size = 600;
  w.support_factor = 7.0;

  std::printf("%-10s %14s %14s %14s %10s\n", "machines", "read (s)",
              "write (s)", "total (s)", "vs 1 node");
  double base = 0.0;
  for (std::size_t machines : {1u, 2u, 4u}) {
    const auto c = dist::partitioned_memory_epoch_cost(fabric, w, machines);
    if (machines == 1) base = c.total_seconds();
    std::printf("%-10zu %14.2f %14.2f %14.2f %9.1fx\n", machines,
                c.read_seconds, c.write_seconds, c.total_seconds(),
                c.total_seconds() / base);
  }
  std::printf("\nconclusion: sharding the node memory across machines makes "
              "M-TGNN training memory-bound — the motivation for memory "
              "parallelism (k >= machines) in DistTGL.\n");
  return 0;
}
