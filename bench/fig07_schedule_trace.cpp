// Figure 7 — the three parallel training strategies as executable
// schedules, plus the memory daemon's actual serialized operation trace.
//
// The paper's Fig 7 is a diagram; this bench prints (a) per-trainer
// batch/version assignments per iteration for mini-batch, epoch
// (reordered) and memory (reordered) parallelism on 3 trainers and 6
// global batches, and (b) the (R…R)(W…W) trace recorded by a live daemon
// serving an i=2, j=2 group — the sequence §3.3 writes out as
// (R0R1)(W0W1)(R2R3)(W2W3)…
#include <thread>

#include "bench_common.hpp"
#include "core/schedule.hpp"
#include "memory/daemon.hpp"

namespace {

using namespace disttgl;

void print_schedule(const char* title, std::size_t i, std::size_t j,
                    std::size_t k) {
  ParallelConfig par;
  par.i = i;
  par.j = j;
  par.k = k;
  Schedule s = build_schedule(par, /*num_batches=*/6, /*epochs=*/6, 10);
  std::printf("\n%s (i=%zu j=%zu k=%zu, 6 global batches)\n", title, i, j, k);
  std::printf("%-28s", "iteration:");
  const std::size_t show = std::min<std::size_t>(8, s.total_iterations);
  for (std::size_t t = 0; t < show; ++t) std::printf(" %5zu", t);
  std::printf("\n");
  for (const auto& ts : s.trainers) {
    std::printf("P%zu (copy %zu, sub %zu, chk %zu):", ts.rank, ts.mem_copy,
                ts.subgroup, ts.chunk);
    std::size_t cursor = 0;
    for (std::size_t t = 0; t < show; ++t) {
      while (cursor < ts.items.size() && ts.items[cursor].iteration < t) ++cursor;
      if (cursor < ts.items.size() && ts.items[cursor].iteration == t) {
        const auto& item = ts.items[cursor];
        // bN.vM = batch N, version M; * marks memory read+write.
        std::printf(" b%zu.%zu%s", item.global_batch, item.version,
                    item.memory_ops ? "*" : " ");
      } else {
        std::printf("   -  ");
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace disttgl;
  bench::header("Figure 7: parallel training schedules + daemon trace",
                "mini-batch: chunks of one global batch; epoch: same batch "
                "j consecutive iterations with one R/W; memory: staggered "
                "chronological sweeps per copy");

  print_schedule("(a) mini-batch parallelism", 3, 1, 1);
  print_schedule("(b) epoch parallelism, reordered", 1, 3, 1);
  print_schedule("(c) memory parallelism, reordered", 1, 1, 3);

  // Live daemon trace for an i=2 x j=2 group over 4 rounds.
  MemoryState state(8, 2, 3);
  DaemonConfig dc;
  dc.i = 2;
  dc.j = 2;
  dc.reset_before_round = {1, 0, 0, 0};
  MemoryDaemon daemon(state, dc);
  daemon.enable_trace();
  daemon.start();
  std::vector<std::thread> trainers;
  for (std::size_t rank = 0; rank < 4; ++rank) {
    trainers.emplace_back([&daemon, rank] {
      const std::size_t sub = rank / 2;
      for (std::size_t round = sub; round < 4; round += 2) {
        std::vector<NodeId> nodes = {static_cast<NodeId>(rank)};
        daemon.read(rank, nodes);
        MemoryWrite w;
        w.nodes = nodes;
        w.mem = Matrix(1, 2, 1.0f);
        w.mem_ts = {1.0f};
        w.mail = Matrix(1, 3, 1.0f);
        w.mail_ts = {1.0f};
        daemon.write(rank, std::move(w));
      }
    });
  }
  for (auto& t : trainers) t.join();
  daemon.join();

  std::printf("\ndaemon serialized trace (i=2, j=2, 4 rounds):\n  ");
  const auto trace = daemon.trace();
  for (std::size_t x = 0; x < trace.size(); ++x) {
    if (x % 2 == 0) std::printf("(");
    std::printf("%s", trace[x].c_str());
    if (x % 2 == 1) std::printf(") ");
  }
  std::printf("\nmatches the (R0R1)(W0W1)(R2R3)(W2W3)... sequence of §3.3.\n");
  return 0;
}
