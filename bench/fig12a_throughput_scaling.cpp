// Figure 12(a) — DistTGL training throughput and speedup on 1–32 GPUs
// for all five datasets, using the per-dataset optimal strategy (memory
// parallelism on the four small datasets, mini-batch [+ memory across
// machines] parallelism on GDELT), on the simulated g4dn.metal hardware
// model at paper-scale volumes (see paper_profiles.hpp).
//
// Paper: near-linear speedup — averages 1.9x/3.8x/7.3x/13.9x/25x at
// 2/4/8/16/32 GPUs; Reddit/Flights ~10% slower in absolute rate (more
// node-memory writes).
#include "bench_common.hpp"
#include "paper_profiles.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 12(a): DistTGL throughput scaling, 1-32 GPUs",
                "near-linear speedup on all five datasets (avg ~7.3x at 8 "
                "GPUs, ~25x at 32)");

  dist::FabricSpec fabric;
  struct GpuConfig {
    std::size_t gpus, machines;
  };
  const std::vector<GpuConfig> grid = {{1, 1}, {2, 1}, {4, 1},
                                       {8, 1}, {16, 2}, {32, 4}};

  std::printf("%-16s", "dataset");
  for (const auto& gc : grid) std::printf(" %6zuGPU", gc.gpus);
  std::printf("\n");

  const std::vector<bench::PaperDataset> datasets = {
      bench::paper_wikipedia(), bench::paper_reddit(), bench::paper_mooc(),
      bench::paper_flights(), bench::paper_gdelt()};

  std::vector<double> speedup_sum(grid.size(), 0.0);
  for (const auto& d : datasets) {
    const dist::IterationProfile profile = bench::paper_profile(d);
    std::printf("%-16s", d.name.c_str());
    double base = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& gc = grid[i];
      dist::ParallelPlan plan;
      plan.machines = gc.machines;
      if (d.classification) {
        // GDELT: mini-batch parallelism within each machine, memory
        // parallelism across machines (§4.1, Fig 11).
        plan.i = gc.gpus / gc.machines;
        plan.k = gc.machines;
      } else {
        plan.k = gc.gpus;  // memory parallelism everywhere
      }
      const auto est = dist::estimate_throughput(dist::SystemKind::kDistTGL,
                                                 fabric, profile, plan);
      if (i == 0) {
        base = est.events_per_second;
        std::printf(" %7.1fk", est.events_per_second / 1e3);
      } else {
        speedup_sum[i] += est.events_per_second / base;
        std::printf(" %7.2fx", est.events_per_second / base);
      }
    }
    std::printf("\n");
  }

  std::printf("%-16s %8s", "mean speedup", "1.00x");
  for (std::size_t i = 1; i < grid.size(); ++i)
    std::printf(" %7.2fx", speedup_sum[i] / 5.0);
  std::printf("\n\n(first column: absolute simulated kE/s on one T4-class "
              "GPU; remaining columns: speedup over it)\n");
  return 0;
}
