#!/usr/bin/env sh
# Run bench_serving_ops and append a labelled entry to
# BENCH_serving.json, the serving-tier trajectory (docs/BENCHMARKS.md).
#
#   bench/run_serving.sh [label] [path/to/bench_serving_ops] [extra args...]
#
# Defaults: label = current git revision,
# binary = build/bench/bench_serving_ops. Extra args are passed through
# (e.g. --transport=tcp --batch=128 --iters=500).
#
# Each entry records closed-loop p50/p99 latency and saturation QPS per
# reader-thread count (threads_1, threads_2, ...) plus the in-process
# version-churn phase (installs racing scorers, torn-retry count).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
bin=${2:-"$repo_root/build/bench/bench_serving_ops"}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
out="$repo_root/BENCH_serving.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_serving_ops." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bin" "$@" | tee "$raw"

LABEL="$label" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os
import re

configs = {}
transport = None
batch = None
churn = {}
with open(os.environ["RAW"]) as f:
    for line in f:
        m = re.match(
            r"serving_ops op=score transport=(\w+) threads=(\d+) "
            r"clients=(\d+) batch=(\d+) iters=(\d+) p50_us=([\d.]+) "
            r"p99_us=([\d.]+) qps=([\d.]+)", line)
        if m:
            transport = m.group(1)
            batch = int(m.group(4))
            configs[f"threads_{m.group(2)}"] = {
                "p50_us": float(m.group(6)),
                "p99_us": float(m.group(7)),
                "qps": float(m.group(8)),
            }
            continue
        m = re.match(
            r"serving_ops op=churn threads=(\d+) batch=(\d+) iters=(\d+) "
            r"installs=(\d+) torn_retries=(\d+) p50_us=([\d.]+) "
            r"p99_us=([\d.]+) qps=([\d.]+)", line)
        if m:
            churn = {
                "threads": int(m.group(1)),
                "installs": int(m.group(4)),
                "torn_retries": int(m.group(5)),
                "p50_us": float(m.group(6)),
                "p99_us": float(m.group(7)),
                "qps": float(m.group(8)),
            }

if not configs:
    raise SystemExit("no serving_ops score lines found in bench output")

entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "transport": transport,
    "batch": batch,
    "configs": configs,
}
if churn:
    entry["churn"] = churn

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' ({len(configs)} reader configs"
      f"{' + churn' if churn else ''}) to {out}")
EOF
