// Figure 9(b) — convergence for j×k combinations at fixed j·k = 8 on 8
// trainers: 1×8×1, 1×4×2, 1×2×4, 1×1×8.
//
// Paper shape: replacing epoch parallelism with memory parallelism
// monotonically improves test accuracy (better per-iteration gradient
// diversity); pure memory parallelism 1×1×8 converges near-linearly with
// only ~0.004 mean test-MRR drop vs single GPU.
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 9(b): j x k combinations at j*k = 8",
                "test MRR improves as k grows at fixed j*k; 1x1x8 closest "
                "to the single-GPU baseline");

  const std::vector<datagen::SynthSpec> specs = {
      datagen::wikipedia_like(0.25), datagen::reddit_like(0.25),
      datagen::flights_like(0.25), datagen::mooc_like(0.25)};

  struct Combo {
    std::size_t j, k;
  };
  const std::vector<Combo> combos = {{8, 1}, {4, 2}, {2, 4}, {1, 8}};

  for (const auto& spec : specs) {
    TemporalGraph g = datagen::generate(spec);
    bench::section(g.name());
    // Single-GPU reference for the accuracy-delta claim.
    TrainingConfig base;
    base.model.mem_dim = 16;
    base.model.time_dim = 8;
    base.model.attn_dim = 16;
    base.model.emb_dim = 16;
    base.model.num_neighbors = 5;
    base.model.head_hidden = 16;
    base.local_batch = 60;
    base.epochs = 8;
    base.base_lr = 2e-3f;
    base.seed = 11;
    SequentialTrainer single(base, g, nullptr);
    TrainResult single_res = single.train();
    bench::print_curve("  1x1x1 (reference)", single_res.log,
                       single_res.final_test);

    for (const auto& combo : combos) {
      TrainingConfig cfg = base;
      cfg.parallel.j = combo.j;
      cfg.parallel.k = combo.k;
      SequentialTrainer trainer(cfg, g, nullptr);
      TrainResult res = trainer.train();
      char label[48];
      std::snprintf(label, sizeof(label), "  1x%zux%zu", combo.j, combo.k);
      bench::print_curve(label, res.log, res.final_test);
    }
  }
  std::printf("\nconclusion: at equal trainer count, memory parallelism "
              "dominates epoch parallelism in final accuracy — the basis "
              "of the planner's k-first rule (§3.2.4).\n");
  return 0;
}
