// Figure 5 — per-node accuracy difference between a model with dynamic
// node memory and one with static node memory only, nodes sorted by
// degree (Wikipedia-like).
//
// Paper finding: there is NO systematic inclination — high-degree nodes
// do not uniformly favor static memory (contra the EDGE hypothesis);
// both signs appear across the degree spectrum. This motivates keeping
// BOTH memories (§3.1).
#include <algorithm>

#include "bench_common.hpp"
#include "core/static_memory.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 5: per-node accuracy, dynamic vs static memory",
                "no monotone degree trend; both signs occur in every "
                "degree bucket");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(0.3));
  EventSplit split = chronological_split(g);

  StaticPretrainConfig pre;
  pre.dim = 16;
  pre.epochs = 10;
  Matrix static_mem = pretrain_static_memory(g, split, pre);

  auto train_and_eval_per_node = [&](bool dynamic) {
    TrainingConfig cfg;
    cfg.model.mem_dim = 16;
    cfg.model.time_dim = 8;
    cfg.model.attn_dim = 16;
    cfg.model.emb_dim = 16;
    cfg.model.num_neighbors = 5;
    cfg.model.head_hidden = 16;
    cfg.model.dynamic_memory = dynamic;
    cfg.model.static_dim = dynamic ? 0 : pre.dim;
    cfg.local_batch = 60;
    cfg.epochs = 8;
    cfg.base_lr = 2e-3f;
    cfg.seed = 11;
    SequentialTrainer trainer(cfg, g, dynamic ? nullptr : &static_mem);
    trainer.train();
    // Per-node evaluation over val+test with a fresh memory clone.
    MemoryState state = trainer.state(0);
    NeighborSampler sampler(g, cfg.model.num_neighbors);
    EvalConfig ec;
    ec.batch_size = 60;
    ec.num_negs = 49;
    return evaluate_per_node(trainer.model(), state, g, sampler,
                             split.train_end, split.test_end, ec);
  };

  PerNodeEval dyn = train_and_eval_per_node(/*dynamic=*/true);
  PerNodeEval sta = train_and_eval_per_node(/*dynamic=*/false);

  // Sort source nodes by degree descending, bucket, report MRR diff.
  std::vector<std::size_t> order;
  for (NodeId v = 0; v < g.dst_partition_begin(); ++v)
    if (dyn.count[v] > 0 && sta.count[v] > 0) order.push_back(v);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return g.degree(a) > g.degree(b);
  });

  const std::size_t buckets = 8;
  const std::size_t per = std::max<std::size_t>(1, order.size() / buckets);
  std::printf("%-24s %10s %14s %14s %14s\n", "degree bucket (hi->lo)",
              "nodes", "dyn>static", "static>dyn", "mean diff");
  std::size_t total_dyn_wins = 0, total_sta_wins = 0;
  for (std::size_t bkt = 0; bkt < buckets && bkt * per < order.size(); ++bkt) {
    const std::size_t lo = bkt * per;
    const std::size_t hi = std::min(order.size(), lo + per);
    std::size_t dyn_wins = 0, sta_wins = 0;
    double diff_sum = 0.0;
    for (std::size_t x = lo; x < hi; ++x) {
      const NodeId v = static_cast<NodeId>(order[x]);
      const double d = dyn.rr_sum[v] / dyn.count[v];
      const double s = sta.rr_sum[v] / sta.count[v];
      diff_sum += d - s;
      if (d > s) ++dyn_wins;
      else if (s > d) ++sta_wins;
    }
    total_dyn_wins += dyn_wins;
    total_sta_wins += sta_wins;
    char label[32];
    std::snprintf(label, sizeof(label), "bucket %zu", bkt);
    std::printf("%-24s %10zu %14zu %14zu %+14.4f\n", label, hi - lo, dyn_wins,
                sta_wins, diff_sum / (hi - lo));
  }
  std::printf("\ntotals: dynamic better on %zu nodes, static better on %zu — "
              "both memories carry node-specific signal, so DistTGL keeps "
              "both (§3.1).\n",
              total_dyn_wins, total_sta_wins);
  return 0;
}
