// Figure 2(a) — test accuracy (F1-micro) on the GDELT-like dataset as a
// function of training batch size.
//
// Paper shape: accuracy is roughly flat for small/medium batches and
// falls off as the batch grows (staleness + COMB information loss — see
// fig03/fig08). GDELT tolerates much larger batches than the small
// datasets, which is what licenses mini-batch parallelism there
// (§3.2.4, Fig 11); the same sweep on wikipedia-like falls off much
// earlier, shown for contrast.
#include "bench_common.hpp"
#include "core/planner.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

namespace {

using namespace disttgl;

// Sweeps batch size at an (approximately) constant optimizer-update
// budget. The paper's runs take tens of thousands of updates at every
// batch size; at our scale a fixed epoch count would starve the largest
// batches of updates and confound the batch-size effect, so epochs grow
// with the batch (capped for runtime).
void sweep(const TemporalGraph& g, const std::vector<std::size_t>& batches,
           std::size_t target_iters, std::size_t max_epochs, float lr) {
  EventSplit split = chronological_split(g);
  std::printf("%-12s %8s %12s %12s %14s\n", "batch size", "epochs", "val",
              "test", "capture frac");
  for (std::size_t bs : batches) {
    TrainingConfig cfg;
    cfg.model.mem_dim = 16;
    cfg.model.time_dim = 8;
    cfg.model.attn_dim = 16;
    cfg.model.emb_dim = 16;
    cfg.model.num_neighbors = 5;
    cfg.model.head_hidden = 16;
    cfg.local_batch = bs;
    cfg.epochs = std::min(
        max_epochs,
        std::max<std::size_t>(
            6, target_iters * bs / std::max<std::size_t>(1, split.num_train())));
    cfg.base_lr = lr;
    cfg.seed = 11;
    SequentialTrainer trainer(cfg, g, nullptr);
    TrainResult res = trainer.train();
    const double cap =
        captured_fraction(g, split.train_begin, split.train_end, bs);
    std::printf("%-12zu %8zu %12.4f %12.4f %14.3f\n", bs, cfg.epochs,
                res.log.best_val(), res.final_test, cap);
  }
}

}  // namespace

int main() {
  using namespace disttgl;
  bench::header("Figure 2(a): accuracy vs training batch size",
                "flat at small batches, degrading as the batch grows; the "
                "cliff arrives later on GDELT-like than wikipedia-like");

  bench::section("gdelt-like (F1-micro, paper's Fig 2a)");
  TemporalGraph gdelt = datagen::generate(datagen::gdelt_like(0.2));
  sweep(gdelt, {25, 50, 100, 200, 400, 800, 1600}, 300, 20, 1e-3f);

  bench::section("wikipedia-like (MRR, for contrast)");
  TemporalGraph wiki = datagen::generate(datagen::wikipedia_like(0.25));
  sweep(wiki, {15, 30, 60, 120, 240, 480}, 280, 20, 2e-3f);

  std::printf("\nconclusion: each dataset has a largest loss-free batch "
              "size; the planner reads it off this curve (capture "
              "fraction), and it is much larger on GDELT-like data.\n");
  return 0;
}
