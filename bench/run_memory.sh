#!/usr/bin/env sh
# Run bench_memory_ops and append a labelled entry to BENCH_memory.json,
# the memory-layer I/O trajectory (docs/BENCHMARKS.md).
#
#   bench/run_memory.sh [label] [path/to/bench_memory_ops] [extra args...]
#
# Defaults: label = current git revision,
# binary = build/bench/bench_memory_ops. Extra args are passed through
# (e.g. --scale=0.25 --iters=200).
#
# Each preset runs in its OWN process: the allocating legacy baseline's
# cost depends on allocator state, so measuring datasets back to back in
# one process lets the first dataset's heap shape color the second's
# numbers (a real training run starts with a fresh heap).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
bin=${2:-"$repo_root/build/bench/bench_memory_ops"}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
out="$repo_root/BENCH_memory.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_memory_ops." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
for dataset in wikipedia mooc; do
  "$bin" "--dataset=$dataset" "$@" | tee -a "$raw"
done

LABEL="$label" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os
import re

results = {}
with open(os.environ["RAW"]) as f:
    for line in f:
        m = re.match(
            r"memory_ops dataset=(\S+) rows=(\d+) write_rows=(\d+) "
            r"mem_dim=(\d+) mail_dim=(\d+) legacy_read_us=([\d.]+) "
            r"read_us=([\d.]+) legacy_write_us=([\d.]+) write_us=([\d.]+) "
            r"legacy_rw_us=([\d.]+) rw_us=([\d.]+) rw_speedup=([\d.]+) "
            r"daemon_rt_us=([\d.]+)", line)
        if m:
            results.setdefault(m.group(1), {}).update({
                "rows": int(m.group(2)),
                "write_rows": int(m.group(3)),
                "mem_dim": int(m.group(4)),
                "mail_dim": int(m.group(5)),
                "legacy_read_us": float(m.group(6)),
                "read_us": float(m.group(7)),
                "legacy_write_us": float(m.group(8)),
                "write_us": float(m.group(9)),
                "legacy_rw_us": float(m.group(10)),
                "rw_us": float(m.group(11)),
                "rw_speedup": float(m.group(12)),
                "daemon_rt_us": float(m.group(13)),
            })
            continue
        p = re.match(
            r"memory_protocol dataset=(\S+) trainers=(\d+) "
            r"legacy_group_rt_us=([\d.]+) group_rt_us=([\d.]+) "
            r"group_speedup=([\d.]+)", line)
        if p:
            results.setdefault(p.group(1), {}).update({
                "protocol_trainers": int(p.group(2)),
                "legacy_group_rt_us": float(p.group(3)),
                "group_rt_us": float(p.group(4)),
                "group_speedup": float(p.group(5)),
            })

entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "results": results,
}

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' ({len(results)} datasets) to {out}")
EOF
