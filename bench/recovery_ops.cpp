// Recovery-path cost — the trajectory behind BENCH_recovery.json
// (bench/run_recovery.sh appends one labelled entry per invocation;
// docs/BENCHMARKS.md).
//
// Measures the three operations elastic training pays for, at the
// paper's memory dimensions (mem_dim 100, mail raw dim 186):
//
//   snapshot_save      One full coordinated snapshot set written to
//                      disk: core shard (flat weights), a memory shard
//                      (every node's memory/mail/timestamps/flags), and
//                      one rank shard per trainer (Adam moments + loss
//                      subtotals), each an atomic tmp+fsync+rename.
//   snapshot_load      Discovery + full restore: find_latest_snapshot
//                      (which checksum-validates every shard of every
//                      candidate set) followed by reading the core,
//                      memory, and all rank shards back.
//   restart            Supervisor restart latency on a live training
//                      run: an injected kill, teardown, snapshot
//                      discovery, and the resumed trainer reaching its
//                      first iteration — train_supervised end to end,
//                      minus the two training halves.
//
//   bench_recovery_ops [--iters=N] [--params=P] [--nodes=V] [--world=W]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/recovery.hpp"
#include "datagen/generator.hpp"
#include "memory/memory_state.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

std::size_t arg_or(int argc, char** argv, const char* name,
                   std::size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(std::stoull(arg.substr(prefix.size())));
  }
  return fallback;
}

struct SnapshotGeometry {
  std::size_t world = 4;
  std::size_t params = 200'000;  // flat model weights (and Adam m+v each)
  std::size_t nodes = 10'000;
  std::size_t mem_dim = 100;   // paper memory dimension
  std::size_t mail_dim = 186;  // raw mail row at the paper's edge dims

  double set_bytes() const {
    const double core = static_cast<double>(params) * 4.0;
    const double mem = static_cast<double>(nodes) *
                       (static_cast<double>(mem_dim + mail_dim + 2) * 4.0 + 1.0);
    const double ranks =
        static_cast<double>(world) * 2.0 * static_cast<double>(params) * 4.0;
    return core + mem + ranks;
  }
};

void fill_snapshot_set(const std::string& dir, const SnapshotGeometry& geo,
                       std::size_t iter, const MemoryState& state) {
  const std::string stem = snapshot_stem(dir, iter);
  CoreShard core;
  core.fingerprint = 0xbe7cULL;
  core.iteration = iter;
  core.world = geo.world;
  core.mem_copies = 1;
  core.weights.assign(geo.params, 0.125f);
  write_core_shard(stem, core);
  write_mem_shard(stem, make_mem_shard(state, 0xbe7cULL, iter, 0));
  RankShard rs;
  rs.fingerprint = 0xbe7cULL;
  rs.iteration = iter;
  rs.adam_steps = iter;
  rs.adam_m.assign(geo.params, 0.25f);
  rs.adam_v.assign(geo.params, 0.5f);
  for (std::size_t r = 0; r < geo.world; ++r) {
    rs.rank = r;
    write_rank_shard(stem, rs);
  }
  CommitShard commit;
  commit.fingerprint = 0xbe7cULL;
  commit.iteration = iter;
  commit.world = geo.world;
  commit.mem_copies = 1;
  write_commit_shard(stem, commit);
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;
  namespace fs = std::filesystem;

  SnapshotGeometry geo;
  const std::size_t iters = arg_or(argc, argv, "iters", 5);
  geo.params = arg_or(argc, argv, "params", geo.params);
  geo.nodes = arg_or(argc, argv, "nodes", geo.nodes);
  geo.world = arg_or(argc, argv, "world", geo.world);

  bench::header("recovery_ops (BENCH_recovery.json trajectory)",
                "atomic snapshot save, checksum-validated discovery+load, "
                "and supervised restart latency at paper memory dims");

  const std::string dir =
      "/tmp/disttgl-ckpt/bench." + std::to_string(::getpid());
  fs::create_directories(dir);
  MemoryState state(geo.nodes, geo.mem_dim, geo.mail_dim);
  const double mb = geo.set_bytes() / 1e6;

  bench::section("snapshot save (core + mem + rank shards + commit)");
  {
    fill_snapshot_set(dir, geo, 0, state);  // warm the allocator/page cache
    WallTimer timer;
    for (std::size_t t = 1; t <= iters; ++t)
      fill_snapshot_set(dir, geo, t, state);
    const double us = timer.seconds() * 1e6 / static_cast<double>(iters);
    std::printf(
        "recovery_ops op=snapshot_save world=%zu params=%zu nodes=%zu "
        "mb=%.2f measured_us=%.2f mb_per_s=%.1f\n",
        geo.world, geo.params, geo.nodes, mb, us, mb / (us / 1e6) / 1.0);
  }

  bench::section("snapshot discovery + validated load");
  {
    // Steady-state directory shape: retention keeps the newest two sets,
    // so discovery validates what a real resume would scan.
    retain_snapshots(dir, 2);
    WallTimer timer;
    for (std::size_t t = 0; t < iters; ++t) {
      const auto snap =
          find_latest_snapshot(dir, 0xbe7cULL, geo.world, 1);
      if (!snap) return 1;
      const CoreShard core = read_core_shard(snap->stem);
      const MemShard mem = read_mem_shard(snap->stem, 0);
      std::size_t rank_bytes = 0;
      for (std::size_t r = 0; r < geo.world; ++r)
        rank_bytes += read_rank_shard(snap->stem, r).adam_m.size();
      if (core.weights.empty() || mem.mem.empty() || rank_bytes == 0) return 1;
    }
    const double us = timer.seconds() * 1e6 / static_cast<double>(iters);
    std::printf(
        "recovery_ops op=snapshot_load world=%zu params=%zu nodes=%zu "
        "mb=%.2f measured_us=%.2f mb_per_s=%.1f\n",
        geo.world, geo.params, geo.nodes, mb, us, mb / (us / 1e6));
  }
  fs::remove_all(dir);

  bench::section("supervised restart (injected kill, resume, retrain)");
  {
    datagen::SynthSpec spec;
    spec.num_src = 40;
    spec.num_dst = 20;
    spec.num_events = 800;
    spec.edge_feat_dim = 4;
    spec.seed = 7;
    TemporalGraph g = datagen::generate(spec);

    TrainingConfig cfg;
    cfg.model.mem_dim = 100;  // paper dim: model build dominates restart
    cfg.model.time_dim = 100;
    cfg.model.attn_dim = 100;
    cfg.model.emb_dim = 100;
    cfg.local_batch = 40;
    cfg.epochs = 1;
    cfg.seed = 11;
    cfg.parallel = {.i = 1, .j = 2, .k = 1};
    cfg.recovery.checkpoint_dir = dir + ".restart";
    fs::create_directories(cfg.recovery.checkpoint_dir);
    cfg.recovery.checkpoint_every = 3;
    cfg.recovery.max_restarts = 1;
    cfg.recovery.backoff_ms = 0;
    cfg.fabric.fault.kill_armed = true;
    cfg.fabric.fault.kill_rank = 1;
    cfg.fabric.fault.kill_iteration = 5;

    WallTimer timer;
    const SupervisedResult sup = train_supervised(cfg, g);
    const double total_s = timer.seconds();
    const double recover_ms = sup.restart_latency_seconds.empty()
                                  ? 0.0
                                  : sup.restart_latency_seconds[0] * 1e3;
    std::printf(
        "recovery_ops op=restart restarts=%zu recover_ms=%.2f "
        "supervised_wall_s=%.3f resumed_iterations=%zu\n",
        sup.restarts, recover_ms, total_s, sup.result.iterations);
    fs::remove_all(cfg.recovery.checkpoint_dir);
  }
  return 0;
}
