// Recovery-path cost — the trajectory behind BENCH_recovery.json
// (bench/run_recovery.sh appends one labelled entry per invocation;
// docs/BENCHMARKS.md).
//
// Measures the three operations elastic training pays for, at the
// paper's memory dimensions (mem_dim 100, mail raw dim 186):
//
//   snapshot_save      One full coordinated snapshot set written to
//                      disk: core shard (flat weights), a memory shard
//                      (every node's memory/mail/timestamps/flags), and
//                      one rank shard per trainer (Adam moments + loss
//                      subtotals), each an atomic tmp+fsync+rename.
//   snapshot_load      Discovery + full restore: find_latest_snapshot
//                      (which checksum-validates every shard of every
//                      candidate set) followed by reading the core,
//                      memory, and all rank shards back.
//   restart            Supervisor restart latency on a live training
//                      run: an injected kill, teardown, snapshot
//                      discovery, and the resumed trainer reaching its
//                      first iteration — train_supervised end to end,
//                      minus the two training halves.
//   reconnect          The cheaper tier above restart (docs/ARCHITECTURE
//                      "Recovery ladder"): a seeded chaos reset tears the
//                      leader ring mid-collective and the reconnect tier
//                      re-dials + replays the phase in-flight. Measured
//                      on an in-process two-leader loopback ring so
//                      HierComm's reconnect counters are read directly,
//                      and compared against the restart tier's recover_ms
//                      for the reconnect-vs-restart entry in
//                      BENCH_recovery.json.
//
//   bench_recovery_ops [--iters=N] [--params=P] [--nodes=V] [--world=W]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/recovery.hpp"
#include "datagen/generator.hpp"
#include "distributed/hier_comm.hpp"
#include "distributed/shm.hpp"
#include "memory/memory_state.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

std::size_t arg_or(int argc, char** argv, const char* name,
                   std::size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(std::stoull(arg.substr(prefix.size())));
  }
  return fallback;
}

struct SnapshotGeometry {
  std::size_t world = 4;
  std::size_t params = 200'000;  // flat model weights (and Adam m+v each)
  std::size_t nodes = 10'000;
  std::size_t mem_dim = 100;   // paper memory dimension
  std::size_t mail_dim = 186;  // raw mail row at the paper's edge dims

  double set_bytes() const {
    const double core = static_cast<double>(params) * 4.0;
    const double mem = static_cast<double>(nodes) *
                       (static_cast<double>(mem_dim + mail_dim + 2) * 4.0 + 1.0);
    const double ranks =
        static_cast<double>(world) * 2.0 * static_cast<double>(params) * 4.0;
    return core + mem + ranks;
  }
};

void fill_snapshot_set(const std::string& dir, const SnapshotGeometry& geo,
                       std::size_t iter, const MemoryState& state) {
  const std::string stem = snapshot_stem(dir, iter);
  CoreShard core;
  core.fingerprint = 0xbe7cULL;
  core.iteration = iter;
  core.world = geo.world;
  core.mem_copies = 1;
  core.weights.assign(geo.params, 0.125f);
  write_core_shard(stem, core);
  write_mem_shard(stem, make_mem_shard(state, 0xbe7cULL, iter, 0));
  RankShard rs;
  rs.fingerprint = 0xbe7cULL;
  rs.iteration = iter;
  rs.adam_steps = iter;
  rs.adam_m.assign(geo.params, 0.25f);
  rs.adam_v.assign(geo.params, 0.5f);
  for (std::size_t r = 0; r < geo.world; ++r) {
    rs.rank = r;
    write_rank_shard(stem, rs);
  }
  CommitShard commit;
  commit.fingerprint = 0xbe7cULL;
  commit.iteration = iter;
  commit.world = geo.world;
  commit.mem_copies = 1;
  write_commit_shard(stem, commit);
}

// Two in-process host leaders (local_world 1 each) on a loopback leader
// ring — the minimal fabric whose transient faults the reconnect tier
// can heal. Host 0's dialed endpoint carries a one-shot chaos reset at
// `reset_at_byte` wire bytes, so the ring tears mid-collective; both
// leaders re-dial through their retained listeners and replay the phase.
// Cost is read straight off HierComm's reconnect counters (backoff +
// re-dial per leader), with no training stack in the way.
struct ReconnectCost {
  std::uint64_t reconnects = 0;  // summed over both leaders
  double stall_ms = 0.0;         // max per-leader redial time
};

ReconnectCost run_ring_reconnect(std::size_t elems, std::size_t iters,
                                 std::uint64_t reset_at_byte) {
  const auto timeout = std::chrono::milliseconds(10'000);
  const std::string prefix = dist::make_session_prefix();
  const dist::Comm::Options opts{};

  dist::ClusterMap map;
  map.world = 2;
  map.session_prefix = prefix;
  map.bind_host = "127.0.0.1";
  std::vector<dist::ProcComm> locals;
  std::vector<dist::FdHandle> listeners(2);
  for (std::size_t h = 0; h < 2; ++h) {
    const std::string name = prefix + ".rc" + std::to_string(h);
    locals.push_back(dist::ProcComm::create(name, 1, elems, opts, timeout));
    map.host_comm_shms.push_back(name);
    std::uint16_t port = 0;
    listeners[h] = dist::tcp_listen("127.0.0.1", 0, 16, port);
    map.spans.push_back({static_cast<std::uint32_t>(h),
                         static_cast<std::uint32_t>(h + 1), port});
  }

  struct Out {
    std::uint64_t reconnects = 0;
    double secs = 0.0;
    std::string err;
  };
  std::vector<Out> out(2);
  std::vector<std::thread> leaders;
  for (std::size_t h = 0; h < 2; ++h) {
    leaders.emplace_back([&, h] {
      try {
        dist::ChaosConfig chaos;
        if (h == 0) {
          chaos.enabled = true;
          chaos.reset_at_byte = reset_at_byte;
        }
        dist::RetryConfig retry;
        retry.max_attempts = 3;
        retry.backoff_ms = 0;  // measure the re-dial, not a configured sleep
        dist::RingEndpoints ring =
            dist::connect_ring(listeners[h].get(), map, h,
                               dist::deadline_after(timeout), true, chaos);
        dist::HierComm::Topology topo;
        topo.world = 2;
        topo.hosts = 2;
        topo.host = h;
        topo.global_rank = h;
        topo.local_rank = 0;
        topo.local_world = 1;
        dist::HierComm comm(std::move(locals[h]), topo, std::move(ring),
                            timeout);
        dist::HierComm::ReconnectPolicy policy;
        policy.listener = std::move(listeners[h]);
        policy.map = map;
        policy.nodelay = true;
        policy.retry = retry;
        policy.chaos = chaos;
        policy.jitter_seed = 0x5eedULL + h;
        comm.enable_reconnect(std::move(policy));
        comm.reserve(elems);

        std::vector<float> data(elems);
        for (std::size_t x = 0; x < elems; ++x)
          data[x] = static_cast<float>((h * 131 + x) % 97) * 0.01f;
        for (std::size_t t = 0; t < iters; ++t)
          comm.allreduce_mean(h, data);
        out[h].reconnects = comm.reconnects();
        out[h].secs = comm.reconnect_seconds();
      } catch (const std::exception& e) {
        out[h].err = e.what();
      }
    });
  }
  for (std::thread& t : leaders) t.join();

  ReconnectCost cost;
  for (const Out& o : out) {
    if (!o.err.empty())
      throw std::runtime_error("ring leader failed: " + o.err);
    cost.reconnects += o.reconnects;
    cost.stall_ms = std::max(cost.stall_ms, o.secs * 1e3);
  }
  return cost;
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;
  namespace fs = std::filesystem;

  SnapshotGeometry geo;
  const std::size_t iters = arg_or(argc, argv, "iters", 5);
  geo.params = arg_or(argc, argv, "params", geo.params);
  geo.nodes = arg_or(argc, argv, "nodes", geo.nodes);
  geo.world = arg_or(argc, argv, "world", geo.world);

  bench::header("recovery_ops (BENCH_recovery.json trajectory)",
                "atomic snapshot save, checksum-validated discovery+load, "
                "and supervised restart latency at paper memory dims");

  const std::string dir =
      "/tmp/disttgl-ckpt/bench." + std::to_string(::getpid());
  fs::create_directories(dir);
  MemoryState state(geo.nodes, geo.mem_dim, geo.mail_dim);
  const double mb = geo.set_bytes() / 1e6;

  bench::section("snapshot save (core + mem + rank shards + commit)");
  {
    fill_snapshot_set(dir, geo, 0, state);  // warm the allocator/page cache
    WallTimer timer;
    for (std::size_t t = 1; t <= iters; ++t)
      fill_snapshot_set(dir, geo, t, state);
    const double us = timer.seconds() * 1e6 / static_cast<double>(iters);
    std::printf(
        "recovery_ops op=snapshot_save world=%zu params=%zu nodes=%zu "
        "mb=%.2f measured_us=%.2f mb_per_s=%.1f\n",
        geo.world, geo.params, geo.nodes, mb, us, mb / (us / 1e6) / 1.0);
  }

  bench::section("snapshot discovery + validated load");
  {
    // Steady-state directory shape: retention keeps the newest two sets,
    // so discovery validates what a real resume would scan.
    retain_snapshots(dir, 2);
    WallTimer timer;
    for (std::size_t t = 0; t < iters; ++t) {
      const auto snap =
          find_latest_snapshot(dir, 0xbe7cULL, geo.world, 1);
      if (!snap) return 1;
      const CoreShard core = read_core_shard(snap->stem);
      const MemShard mem = read_mem_shard(snap->stem, 0);
      std::size_t rank_bytes = 0;
      for (std::size_t r = 0; r < geo.world; ++r)
        rank_bytes += read_rank_shard(snap->stem, r).adam_m.size();
      if (core.weights.empty() || mem.mem.empty() || rank_bytes == 0) return 1;
    }
    const double us = timer.seconds() * 1e6 / static_cast<double>(iters);
    std::printf(
        "recovery_ops op=snapshot_load world=%zu params=%zu nodes=%zu "
        "mb=%.2f measured_us=%.2f mb_per_s=%.1f\n",
        geo.world, geo.params, geo.nodes, mb, us, mb / (us / 1e6));
  }
  fs::remove_all(dir);

  double restart_recover_ms = 0.0;
  bench::section("supervised restart (injected kill, resume, retrain)");
  {
    datagen::SynthSpec spec;
    spec.num_src = 40;
    spec.num_dst = 20;
    spec.num_events = 800;
    spec.edge_feat_dim = 4;
    spec.seed = 7;
    TemporalGraph g = datagen::generate(spec);

    TrainingConfig cfg;
    cfg.model.mem_dim = 100;  // paper dim: model build dominates restart
    cfg.model.time_dim = 100;
    cfg.model.attn_dim = 100;
    cfg.model.emb_dim = 100;
    cfg.local_batch = 40;
    cfg.epochs = 1;
    cfg.seed = 11;
    cfg.parallel = {.i = 1, .j = 2, .k = 1};
    cfg.recovery.checkpoint_dir = dir + ".restart";
    fs::create_directories(cfg.recovery.checkpoint_dir);
    cfg.recovery.checkpoint_every = 3;
    cfg.recovery.max_restarts = 1;
    cfg.recovery.backoff_ms = 0;
    cfg.fabric.fault.kill_armed = true;
    cfg.fabric.fault.kill_rank = 1;
    cfg.fabric.fault.kill_iteration = 5;

    WallTimer timer;
    const SupervisedResult sup = train_supervised(cfg, g);
    const double total_s = timer.seconds();
    const double recover_ms = sup.restart_latency_seconds.empty()
                                  ? 0.0
                                  : sup.restart_latency_seconds[0] * 1e3;
    restart_recover_ms = recover_ms;
    std::printf(
        "recovery_ops op=restart restarts=%zu recover_ms=%.2f "
        "supervised_wall_s=%.3f resumed_iterations=%zu\n",
        sup.restarts, recover_ms, total_s, sup.result.iterations);
    fs::remove_all(cfg.recovery.checkpoint_dir);
  }

  bench::section("ring reconnect (injected reset healed in-flight)");
  {
    // ~200 KB of kReduce wire bytes per collective on host 0's dialed
    // endpoint, so a 1 MB reset boundary fires around iteration 5 of 12
    // — mid-loop, never at the edge. The loop completing at all proves
    // the heal (a torn ring with no reconnect tier is a typed abort);
    // reconnects == 0 would mean the boundary never fired, which is a
    // broken benchmark, not a fast one.
    // One reset is a one-shot event, so scheduler noise dominates a
    // single sample: take the best of three independent rings, the
    // bench convention for latency floors.
    const std::size_t elems = 25'000;
    ReconnectCost cost;
    for (std::size_t rep = 0; rep < 3; ++rep) {
      const ReconnectCost c = run_ring_reconnect(elems, 12, 1'000'000);
      if (c.reconnects == 0) {
        std::fprintf(stderr,
                     "reconnect bench: injected reset never fired "
                     "(vacuous boundary)\n");
        return 1;
      }
      if (rep == 0 || c.stall_ms < cost.stall_ms) cost = c;
    }
    const double speedup =
        cost.stall_ms > 0.0 ? restart_recover_ms / cost.stall_ms : 0.0;
    std::printf(
        "recovery_ops op=reconnect elems=%zu reconnects=%zu "
        "reconnect_ms=%.3f restart_ms=%.2f speedup_vs_restart=%.1f\n",
        elems, cost.reconnects, cost.stall_ms, restart_recover_ms, speedup);
  }
  return 0;
}
