// Figure 10 — (a) test MRR and (b) iterations to best validation MRR for
// every epoch×memory parallelism combination j, k ∈ {1,2,4,8}, j·k ≤ 32,
// on the Wikipedia-like dataset.
//
// Paper shapes: within a row (fixed j) larger k preserves accuracy;
// within a column (fixed k) larger j degrades it; iteration counts fall
// ~1/(j·k). The diagonal k-maximal configs dominate — "prioritize memory
// parallelism over epoch parallelism".
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 10: j x k sweep on wikipedia-like",
                "test MRR flat along k, degrading along j; iterations "
                "~E*B/(j*k)");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(0.25));
  const std::vector<std::size_t> js = {1, 2, 4, 8};
  const std::vector<std::size_t> ks = {1, 2, 4, 8};

  Matrix mrr(4, 4, 0.0f);
  Matrix iters(4, 4, 0.0f);
  for (std::size_t ji = 0; ji < js.size(); ++ji) {
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      if (js[ji] * ks[ki] > 32) continue;
      TrainingConfig cfg;
      cfg.model.mem_dim = 16;
      cfg.model.time_dim = 8;
      cfg.model.attn_dim = 16;
      cfg.model.emb_dim = 16;
      cfg.model.num_neighbors = 5;
      cfg.model.head_hidden = 16;
      cfg.local_batch = 60;
      // The paper's epoch count is fixed at 100 with ~183 batches/epoch,
      // so even 32 trainers retain hundreds of iterations. At our scale
      // (35 batches/epoch) a fixed count would starve large j*k of
      // optimizer updates, so epochs grow with j*k (≥ 35 iterations for
      // every cell).
      cfg.epochs = std::max<std::size_t>(8, js[ji] * ks[ki]);
      cfg.base_lr = 2e-3f;
      cfg.parallel.j = js[ji];
      cfg.parallel.k = ks[ki];
      cfg.seed = 11;
      SequentialTrainer trainer(cfg, g, nullptr);
      TrainResult res = trainer.train();
      mrr(ji, ki) = static_cast<float>(res.final_test);
      iters(ji, ki) =
          static_cast<float>(res.log.iterations_to_fraction(0.97));
    }
  }

  bench::section("(a) test MRR");
  std::printf("%-8s", "");
  for (std::size_t k : ks) std::printf("  k=%-6zu", k);
  std::printf("\n");
  for (std::size_t ji = 0; ji < js.size(); ++ji) {
    std::printf("j=%-6zu", js[ji]);
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      if (js[ji] * ks[ki] > 32) std::printf("  %-8s", "-");
      else std::printf("  %-8.4f", mrr(ji, ki));
    }
    std::printf("\n");
  }

  bench::section("(b) iterations to reach 97% of best validation MRR");
  std::printf("%-8s", "");
  for (std::size_t k : ks) std::printf("  k=%-6zu", k);
  std::printf("\n");
  for (std::size_t ji = 0; ji < js.size(); ++ji) {
    std::printf("j=%-6zu", js[ji]);
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      if (js[ji] * ks[ki] > 32) std::printf("  %-8s", "-");
      else std::printf("  %-8.0f", iters(ji, ki));
    }
    std::printf("\n");
  }

  // Headline check: column means of the test MRR matrix.
  double col1 = 0, col8 = 0;
  int c1 = 0, c8 = 0;
  for (std::size_t ji = 0; ji < 4; ++ji) {
    if (js[ji] * 1 <= 32) { col1 += mrr(ji, 0); ++c1; }
    if (js[ji] * 8 <= 32) { col8 += mrr(ji, 3); ++c8; }
  }
  std::printf("\nmean test MRR at k=1: %.4f, at k=8: %.4f — memory "
              "parallelism carries the parallelism budget.\n",
              col1 / c1, col8 / c8);
  return 0;
}
