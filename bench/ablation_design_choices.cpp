// Ablations over the design choices DESIGN.md calls out (not a paper
// figure — supporting evidence for the defaults):
//
//   COMB policy      : most-recent (TGN-attn's choice, the default) vs
//                      mean-of-batch mails.
//   neighbor window K: the paper fixes K = 10; smaller windows lean
//                      harder on the node memory.
//   attention heads  : 1 vs 2 vs 4 at fixed total attention width.
//   static dim       : 0 / 8 / 16 concatenated to the dynamic memory.
#include "bench_common.hpp"
#include "core/static_memory.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

namespace {

using namespace disttgl;

TrainingConfig base_config() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 16;
  cfg.model.time_dim = 8;
  cfg.model.attn_dim = 16;
  cfg.model.emb_dim = 16;
  cfg.model.num_neighbors = 5;
  cfg.model.head_hidden = 16;
  cfg.local_batch = 60;
  cfg.epochs = 8;
  cfg.base_lr = 2e-3f;
  cfg.seed = 11;
  return cfg;
}

void run(const TemporalGraph& g, const char* label, const TrainingConfig& cfg,
         const Matrix* static_mem = nullptr) {
  SequentialTrainer trainer(cfg, g, static_mem);
  TrainResult res = trainer.train();
  std::printf("%-28s best_val=%.4f test=%.4f\n", label, res.log.best_val(),
              res.final_test);
}

}  // namespace

int main() {
  using namespace disttgl;
  bench::header("Ablations: COMB policy, neighbor window, heads, static dim",
                "most-recent COMB and K=10 are solid defaults; static "
                "memory adds accuracy at small extra state");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(0.25));

  bench::section("COMB policy");
  {
    TrainingConfig cfg = base_config();
    run(g, "  COMB = most recent", cfg);
    cfg.model.comb = CombPolicy::kMean;
    run(g, "  COMB = mean", cfg);
  }

  bench::section("neighbor window K");
  for (std::size_t k : {2u, 5u, 10u}) {
    TrainingConfig cfg = base_config();
    cfg.model.num_neighbors = k;
    char label[32];
    std::snprintf(label, sizeof(label), "  K = %zu", k);
    run(g, label, cfg);
  }

  bench::section("attention heads (attn width fixed at 16)");
  for (std::size_t h : {1u, 2u, 4u}) {
    TrainingConfig cfg = base_config();
    cfg.model.num_heads = h;
    char label[32];
    std::snprintf(label, sizeof(label), "  heads = %zu", h);
    run(g, label, cfg);
  }

  bench::section("static memory width");
  {
    EventSplit split = chronological_split(g);
    StaticPretrainConfig pre;
    pre.dim = 16;
    Matrix table16 = pretrain_static_memory(g, split, pre);
    pre.dim = 8;
    Matrix table8 = pretrain_static_memory(g, split, pre);

    TrainingConfig cfg = base_config();
    run(g, "  static dim = 0", cfg);
    cfg.model.static_dim = 8;
    run(g, "  static dim = 8", cfg, &table8);
    cfg.model.static_dim = 16;
    run(g, "  static dim = 16", cfg, &table16);
  }
  return 0;
}
