#!/usr/bin/env sh
# Run bench_training_throughput and append a labelled entry to
# BENCH_training.json, the end-to-end training-throughput trajectory
# (docs/BENCHMARKS.md).
#
#   bench/run_training.sh [label] [mode] [path/to/bench_training_throughput] [extra args...]
#
# Defaults: label = current git revision, mode = pooled,
# binary = build/bench/bench_training_throughput. Extra args are passed
# through (e.g. --epochs=10 --scale=0.25 --workers=2).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
mode=${2:-pooled}
bin=${3:-"$repo_root/build/bench/bench_training_throughput"}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
out="$repo_root/BENCH_training.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_training_throughput." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bin" "--mode=$mode" "$@" | tee "$raw"

LABEL="$label" MODE="$mode" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os
import re

results = {}
builds = {}
with open(os.environ["RAW"]) as f:
    for line in f:
        m = re.match(
            r"(\w+) dataset=(\S+) events=(\d+) traversals=(\d+) wall=([\d.]+) "
            r"events_per_sec=(\d+) traversals_per_sec=(\d+) batch_gen=([\d.]+) "
            r"wait=([\d.]+) compute=([\d.]+)"
            r"(?: mem_read_wait=([\d.]+) mem_write_wait=([\d.]+))?", line)
        if m:
            results[f"{m.group(2)}/{m.group(1)}"] = {
                "raw_events": int(m.group(3)),
                "traversals": int(m.group(4)),
                "wall_seconds": float(m.group(5)),
                "events_per_second": int(m.group(6)),
                "traversals_per_second": int(m.group(7)),
                "batch_gen_seconds": float(m.group(8)),
                "prefetch_wait_seconds": float(m.group(9)),
                "compute_seconds": float(m.group(10)),
            }
            if m.group(11) is not None:
                results[f"{m.group(2)}/{m.group(1)}"].update({
                    "mem_read_wait_seconds": float(m.group(11)),
                    "mem_write_wait_seconds": float(m.group(12)),
                })
            continue
        b = re.match(
            r"batch_build dataset=(\S+) alloc_us=([\d.]+) recycled_us=([\d.]+)",
            line)
        if b:
            builds[b.group(1)] = {
                "alloc_build_us": float(b.group(2)),
                "recycled_build_us": float(b.group(3)),
            }

entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "mode": os.environ["MODE"],
    "batch_build": builds,
    "results": results,
}

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' ({len(results)} configs) to {out}")
EOF
