// Figure 1 — the headline plot: validation MRR vs (simulated) training
// time for TGN (1 GPU), TGL-TGN (1 and 8 GPU) and DistTGL (8 and 16 GPU).
//
// Accuracy trajectories come from real training runs; the time axis
// converts iterations to seconds with the per-system pipeline model at
// paper-scale volumes (the same model behind Fig 12). Paper shapes: at
// any time budget DistTGL dominates; DistTGL(8) reaches TGL's best
// accuracy >10x sooner; DistTGL(16) extends the lead.
#include "bench_common.hpp"
#include "core/static_memory.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"
#include "paper_profiles.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 1: convergence rate, TGN vs TGL-TGN vs DistTGL",
                "DistTGL(8 GPU) reaches the baseline's best MRR ~10x "
                "faster; 16 GPUs extend the lead");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(0.3));
  EventSplit split = chronological_split(g);

  // Per-iteration seconds at paper scale (T4, batch 600, 100-dim model).
  const dist::IterationProfile profile =
      bench::paper_profile(bench::paper_wikipedia());
  dist::FabricSpec fabric;

  auto iteration_seconds = [&](dist::SystemKind kind, dist::ParallelPlan plan) {
    return dist::estimate_throughput(kind, fabric, profile, plan)
        .iteration_seconds;
  };

  StaticPretrainConfig pre;
  pre.dim = 16;
  Matrix static_mem = pretrain_static_memory(g, split, pre);

  struct RunSpec {
    const char* label;
    dist::SystemKind kind;
    dist::ParallelPlan plan;
    ParallelConfig parallel;
    bool use_static;
  };
  std::vector<RunSpec> runs;
  runs.push_back({"TGN (1 GPU)", dist::SystemKind::kTGN, {}, {}, false});
  runs.push_back({"TGL-TGN (1 GPU)", dist::SystemKind::kTGL, {}, {}, false});
  {
    RunSpec r{"TGL-TGN (8 GPU)", dist::SystemKind::kTGL, {}, {}, false};
    r.plan.i = 8;
    r.parallel.i = 8;
    runs.push_back(r);
  }
  {
    RunSpec r{"DistTGL (8 GPU)", dist::SystemKind::kDistTGL, {}, {}, true};
    r.plan.k = 8;
    r.parallel.k = 8;
    runs.push_back(r);
  }
  {
    RunSpec r{"DistTGL (2x8 GPU)", dist::SystemKind::kDistTGL, {}, {}, true};
    r.plan.j = 8;
    r.plan.k = 2;
    r.plan.machines = 2;
    r.parallel.j = 8;
    r.parallel.k = 2;
    r.parallel.machines = 2;
    runs.push_back(r);
  }

  double tgl_best = 0.0, tgl_time_to_best = 0.0;
  for (const auto& run : runs) {
    TrainingConfig cfg;
    cfg.model.mem_dim = 16;
    cfg.model.time_dim = 8;
    cfg.model.attn_dim = 16;
    cfg.model.emb_dim = 16;
    cfg.model.num_neighbors = 5;
    cfg.model.head_hidden = 16;
    cfg.model.static_dim = run.use_static ? pre.dim : 0;
    cfg.local_batch = 60;
    cfg.epochs = 8;
    cfg.base_lr = 2e-3f;
    cfg.parallel = run.parallel;
    cfg.seed = 11;
    SequentialTrainer trainer(cfg, g,
                              run.use_static ? &static_mem : nullptr);
    TrainResult res = trainer.train();
    const double t_iter = iteration_seconds(run.kind, run.plan);

    std::printf("%-20s", run.label);
    for (const auto& p : res.log.points())
      std::printf(" %.1fs:%.3f", p.iteration * t_iter, p.val_metric);
    std::printf(" | test=%.4f\n", res.final_test);

    if (std::string(run.label) == "TGL-TGN (8 GPU)") {
      tgl_best = res.log.best_val();
      tgl_time_to_best = res.log.iterations_to_fraction(1.0) * t_iter;
    }
    if (std::string(run.label) == "DistTGL (8 GPU)" && tgl_best > 0.0) {
      // Time DistTGL needs to reach the TGL(8) best validation MRR.
      double reach = res.log.points().back().iteration * t_iter;
      for (const auto& p : res.log.points()) {
        if (p.val_metric >= tgl_best) {
          reach = p.iteration * t_iter;
          break;
        }
      }
      std::printf("  -> DistTGL(8) reaches TGL(8)'s best MRR in %.1fs vs "
                  "%.1fs: %.1fx faster\n",
                  reach, tgl_time_to_best,
                  reach > 0 ? tgl_time_to_best / reach : 0.0);
    }
  }
  std::printf("\n(time axis: iterations x simulated per-iteration seconds "
              "at paper scale; accuracy from real training runs)\n");
  return 0;
}
