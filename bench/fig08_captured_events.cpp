// Figure 8 — number of events captured in the node memory per node,
// sorted by node degree (high→low), for increasing batch sizes.
//
// COMB keeps at most one mail per node per batch, so a node with many
// events inside one batch loses all but the last; the loss concentrates
// on high-degree nodes as batch size grows. The paper uses this curve to
// pick the largest acceptable batch size (§3.2.4).
#include <algorithm>

#include "bench_common.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"
#include "sampling/batching.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 8: captured events in node memory vs batch size",
                "larger batches capture fewer events, the gap widest for "
                "high-degree nodes");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(1.0));
  const EventSplit split = chronological_split(g);

  // Per-node captured-event counts for one epoch at a given batch size.
  auto captured_per_node = [&](std::size_t bs) {
    std::vector<std::size_t> captured(g.num_nodes(), 0);
    std::vector<std::uint8_t> seen(g.num_nodes(), 0);
    std::vector<NodeId> touched;
    for (std::size_t b = split.train_begin; b < split.train_end; b += bs) {
      const std::size_t e = std::min(b + bs, split.train_end);
      touched.clear();
      for (std::size_t idx = b; idx < e; ++idx) {
        const TemporalEdge& ev = g.event(static_cast<EdgeId>(idx));
        for (NodeId v : {ev.src, ev.dst}) {
          if (!seen[v]) {
            seen[v] = 1;
            touched.push_back(v);
          }
        }
      }
      for (NodeId v : touched) {
        ++captured[v];  // COMB keeps exactly one mail per touched node
        seen[v] = 0;
      }
    }
    return captured;
  };

  // Sort nodes by degree descending; report bucket means like the paper's
  // per-node curve.
  std::vector<std::size_t> order(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return g.degree(a) > g.degree(b);
  });

  const std::vector<std::size_t> batch_sizes = {75, 150, 300, 600, 1200};
  std::printf("%-22s", "degree-rank bucket");
  for (std::size_t bs : batch_sizes) std::printf(" bs=%-6zu", bs);
  std::printf("\n");

  std::vector<std::vector<std::size_t>> results;
  for (std::size_t bs : batch_sizes) results.push_back(captured_per_node(bs));

  const std::size_t buckets = 8;
  const std::size_t per = g.num_nodes() / buckets;
  for (std::size_t bkt = 0; bkt < buckets; ++bkt) {
    char label[32];
    std::snprintf(label, sizeof(label), "[%zu, %zu)", bkt * per,
                  (bkt + 1) * per);
    std::printf("%-22s", label);
    for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
      double sum = 0.0;
      for (std::size_t x = bkt * per; x < (bkt + 1) * per; ++x)
        sum += static_cast<double>(results[i][order[x]]);
      std::printf(" %-9.1f", sum / per);
    }
    std::printf("\n");
  }

  // Headline totals.
  std::printf("\n%-22s", "total captured");
  for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
    double sum = 0.0;
    for (std::size_t v = 0; v < g.num_nodes(); ++v)
      sum += static_cast<double>(results[i][v]);
    std::printf(" %-9.0f", sum);
  }
  std::printf("\n\nconclusion: doubling the batch size monotonically reduces "
              "captured events, steepest in the top degree bucket — the "
              "planner's capture-threshold input (§3.2.4).\n");
  return 0;
}
