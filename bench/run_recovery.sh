#!/usr/bin/env sh
# Run bench_recovery_ops and append a labelled entry to
# BENCH_recovery.json, the recovery-path trajectory (docs/BENCHMARKS.md).
#
#   bench/run_recovery.sh [label] [path/to/bench_recovery_ops] [extra args...]
#
# Defaults: label = current git revision,
# binary = build/bench/bench_recovery_ops. Extra args are passed through
# (e.g. --iters=10 --params=500000).
#
# Each entry records the atomic snapshot-save and validated-load cost of
# a full paper-dim snapshot set, the supervisor's measured restart
# latency around an injected kill, and the ring-reconnect tier's heal
# latency (injected chaos reset) next to that restart cost.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
bin=${2:-"$repo_root/build/bench/bench_recovery_ops"}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
out="$repo_root/BENCH_recovery.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_recovery_ops." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bin" "$@" | tee "$raw"

LABEL="$label" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os
import re

snapshot = {}
restart = {}
reconnect = {}
with open(os.environ["RAW"]) as f:
    for line in f:
        m = re.match(
            r"recovery_ops op=(snapshot_save|snapshot_load) world=(\d+) "
            r"params=(\d+) nodes=(\d+) mb=([\d.]+) measured_us=([\d.]+) "
            r"mb_per_s=([\d.]+)", line)
        if m:
            snapshot[m.group(1)] = {
                "world": int(m.group(2)),
                "params": int(m.group(3)),
                "nodes": int(m.group(4)),
                "mb": float(m.group(5)),
                "measured_us": float(m.group(6)),
                "mb_per_s": float(m.group(7)),
            }
            continue
        m = re.match(
            r"recovery_ops op=restart restarts=(\d+) recover_ms=([\d.]+) "
            r"supervised_wall_s=([\d.]+) resumed_iterations=(\d+)", line)
        if m:
            restart = {
                "restarts": int(m.group(1)),
                "recover_ms": float(m.group(2)),
                "supervised_wall_s": float(m.group(3)),
                "resumed_iterations": int(m.group(4)),
            }
            continue
        m = re.match(
            r"recovery_ops op=reconnect elems=(\d+) reconnects=(\d+) "
            r"reconnect_ms=([\d.]+) restart_ms=([\d.]+) "
            r"speedup_vs_restart=([\d.]+)", line)
        if m:
            reconnect = {
                "elems": int(m.group(1)),
                "reconnects": int(m.group(2)),
                "reconnect_ms": float(m.group(3)),
                "restart_ms": float(m.group(4)),
                "speedup_vs_restart": float(m.group(5)),
            }

entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "snapshot": snapshot,
    "restart": restart,
}
if reconnect:
    entry["reconnect"] = reconnect

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' "
      f"({len(snapshot)} snapshot ops + restart"
      f"{' + reconnect' if reconnect else ''}) to {out}")
EOF
