// Process-fabric transport cost — the trajectory behind
// BENCH_fabric.json (bench/run_fabric.sh appends one labelled entry per
// invocation; docs/BENCHMARKS.md).
//
// Measures the two cross-process primitives the trainers actually sit
// on, at 2/4/8 ranks, and annotates each measurement with the
// throughput model's prediction for the same volume so the JSON records
// measured-vs-model side by side:
//
//   allreduce     ProcComm::allreduce_mean over a model-scale payload:
//                 forked ranks attach to one shm segment and run the
//                 chunked reduce-scatter + allgather across address
//                 spaces. Model: allreduce_seconds() — the ring cost the
//                 scaling benches charge per iteration.
//   daemon_round  One §3.3 memory round per rank (read i gathers, write
//                 i scatters through ShmDaemonServer's bracket). Model:
//                 host_mem_seconds() over daemon_passes × the round's
//                 payload, plus the calibrated daemon handshake
//                 overhead.
//
// The model prices the paper's g4dn.metal testbed while this bench runs
// wherever CI runs, so `ratio` is a shape check (does measured scale
// with ranks like the model says), not a calibration target.
//
// With --hosts=H (H >= 1) the allreduce section instead measures the
// TCP fabric's hierarchical collective (HierComm): per-host shm
// staging, the leader chain + allgather over loopback TCP. Model:
// allreduce_seconds(..., machines=H) — the Ethernet ring term. The
// daemon rounds are unchanged (that plane stays shm on the TCP fabric).
//
//   bench_fabric_ops [--iters=N] [--elems=E] [--ranks=R] [--hosts=H]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "distributed/fabric.hpp"
#include "distributed/hier_comm.hpp"
#include "distributed/launch.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/shm.hpp"
#include "distributed/socket.hpp"
#include "distributed/throughput_model.hpp"
#include "distributed/wire.hpp"
#include "memory/shm_channel.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

using dist::FabricSpec;
using dist::ProcComm;
using dist::WireCursor;
using dist::WireWriter;

constexpr std::chrono::milliseconds kAttachTimeout{30'000};
constexpr std::chrono::milliseconds kLaunchTimeout{300'000};
constexpr std::size_t kWarm = 5;

std::size_t arg_or(int argc, char** argv, const char* name,
                   std::size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(std::stoull(arg.substr(prefix.size())));
  }
  return fallback;
}

// Max per-rank mean: the collective/bracket is lockstep, so the slowest
// rank's mean is the round latency every rank observed.
double max_mean_us(const std::vector<std::vector<std::uint8_t>>& payloads) {
  double worst = 0.0;
  for (const auto& p : payloads) {
    WireCursor c(p);
    worst = std::max(worst, c.get_f64());
  }
  return worst;
}

double bench_allreduce(std::size_t world, std::size_t elems,
                       std::size_t iters) {
  const std::string prefix = dist::make_session_prefix();
  const dist::Comm::Options opts{};
  ProcComm owner =
      ProcComm::create(prefix + ".comm", world, elems, opts, kAttachTimeout);

  auto payloads = dist::disttgl_launch(
      world,
      [&](std::size_t rank) {
        ProcComm comm =
            ProcComm::attach(prefix + ".comm", world, opts, kAttachTimeout);
        comm.reserve(elems);
        std::vector<float> data(elems);
        for (std::size_t x = 0; x < elems; ++x)
          data[x] = static_cast<float>((rank * 131 + x) % 97) * 0.01f;
        for (std::size_t t = 0; t < kWarm; ++t)
          comm.allreduce_mean(rank, data);
        WallTimer timer;
        for (std::size_t t = 0; t < iters; ++t)
          comm.allreduce_mean(rank, data);
        WireWriter w;
        w.put_f64(timer.seconds() * 1e6 / static_cast<double>(iters));
        return w.take();
      },
      kLaunchTimeout);
  return max_mean_us(payloads);
}

// HierComm over loopback TCP: per-host segments + rendezvous + leader
// ring, the same wiring train_multiprocess uses for FabricKind::kTcp.
double bench_tcp_allreduce(std::size_t world, std::size_t hosts,
                           std::size_t elems, std::size_t iters) {
  using dist::ClusterMap;
  using dist::FdHandle;
  using dist::HierComm;
  using dist::ProcGroup;

  const std::string prefix = dist::make_session_prefix();
  const dist::Comm::Options opts{};
  ClusterMap map;
  map.world = static_cast<std::uint32_t>(world);
  map.session_prefix = prefix;
  map.bind_host = "127.0.0.1";
  std::vector<ProcComm> owners;
  for (std::size_t h = 0; h < hosts; ++h) {
    const auto [begin, end] = dist::host_span(h, world, hosts);
    const std::string name = prefix + ".hc" + std::to_string(h);
    owners.push_back(
        ProcComm::create(name, end - begin, elems, opts, kAttachTimeout));
    map.host_comm_shms.push_back(name);
    map.spans.push_back({static_cast<std::uint32_t>(begin),
                         static_cast<std::uint32_t>(end), 0});
  }
  std::uint16_t rdv_port = 0;
  FdHandle listener = dist::tcp_listen("127.0.0.1", 0, 16, rdv_port);

  ProcGroup group = ProcGroup::spawn(world, [&](std::size_t rank) {
    const auto topo = HierComm::topology_for(rank, world, hosts);
    FdHandle ring_listen;
    std::uint16_t ring_port = 0;
    if (topo.local_rank == 0 && hosts > 1)
      ring_listen = dist::tcp_listen("127.0.0.1", 0, 16, ring_port);
    const ClusterMap m = dist::tcp_rendezvous_client(
        "127.0.0.1", rdv_port, static_cast<std::uint32_t>(world),
        static_cast<std::uint32_t>(rank), ring_port, kAttachTimeout);
    ProcComm local = ProcComm::attach(m.host_comm_shms[topo.host],
                                      topo.local_world, opts, kAttachTimeout);
    dist::RingEndpoints ring;
    if (topo.local_rank == 0 && hosts > 1)
      ring = dist::connect_ring(ring_listen.get(), m, topo.host,
                                dist::deadline_after(kAttachTimeout), true);
    ring_listen.reset();
    HierComm comm(std::move(local), topo, std::move(ring), kAttachTimeout);
    comm.reserve(elems);

    std::vector<float> data(elems);
    for (std::size_t x = 0; x < elems; ++x)
      data[x] = static_cast<float>((rank * 131 + x) % 97) * 0.01f;
    for (std::size_t t = 0; t < kWarm; ++t) comm.allreduce_mean(rank, data);
    WallTimer timer;
    for (std::size_t t = 0; t < iters; ++t) comm.allreduce_mean(rank, data);
    WireWriter w;
    w.put_f64(timer.seconds() * 1e6 / static_cast<double>(iters));
    return w.take();
  });
  dist::tcp_rendezvous_host(listener.get(), map, kLaunchTimeout);
  std::vector<dist::ChildResult> results = group.wait(kLaunchTimeout);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (dist::ChildResult& r : results) {
    if (!r.ok)
      dist::throw_fabric(r.errc, "rank " + std::to_string(r.rank) +
                                     " failed: " + r.message);
    payloads.push_back(std::move(r.payload));
  }
  return max_mean_us(payloads);
}

struct DaemonGeometry {
  std::size_t num_nodes = 4096;
  std::size_t mem_dim = 100;
  std::size_t mail_dim = 186;
  std::size_t read_nodes = 600;
  std::size_t write_nodes = 200;

  // Bytes one rank's round moves through the daemon (gather + scatter
  // of memory rows, mails, and timestamps).
  double round_bytes() const {
    const double row = static_cast<double>(mem_dim + mail_dim + 2) * 4.0;
    return static_cast<double>(read_nodes + write_nodes) * row;
  }
};

double bench_daemon_round(std::size_t world, std::size_t iters,
                          const DaemonGeometry& geo) {
  const std::string prefix = dist::make_session_prefix();
  ShmDaemonSpec spec;
  spec.slots = world;
  spec.mem_dim = geo.mem_dim;
  spec.mail_dim = geo.mail_dim;
  spec.max_read_nodes = geo.read_nodes;
  spec.max_write_nodes = geo.write_nodes;
  ShmSegment segment =
      ShmDaemonChannel::create_segment(prefix + ".mem0", spec);
  const std::size_t rounds = kWarm + iters;

  auto payloads = dist::disttgl_launch(
      world,
      [&](std::size_t rank) {
        ShmDaemonChannel channel = ShmDaemonChannel::attach(
            prefix + ".mem0", WaitPolicy{}, kAttachTimeout);
        // Rank 0 hosts the group's server alongside its own client
        // loop, exactly as the proc trainer's group_rank 0 does.
        std::unique_ptr<MemoryState> state;
        std::unique_ptr<ShmDaemonServer> server;
        if (rank == 0) {
          state = std::make_unique<MemoryState>(geo.num_nodes, geo.mem_dim,
                                                geo.mail_dim);
          DaemonConfig dc;
          dc.i = world;
          dc.j = 1;
          dc.reset_before_round.assign(rounds, 0);
          dc.reset_before_round[0] = 1;
          server = std::make_unique<ShmDaemonServer>(*state, dc, channel);
          server->start();
        }

        MemorySlice slice;
        MemoryWrite write;
        std::vector<NodeId> nodes(geo.read_nodes);
        write.nodes.resize(geo.write_nodes);
        write.mem = Matrix(geo.write_nodes, geo.mem_dim, 0.5f);
        write.mem_ts.assign(geo.write_nodes, 1.0f);
        write.mail = Matrix(geo.write_nodes, geo.mail_dim, -0.5f);
        write.mail_ts.assign(geo.write_nodes, 1.5f);

        double measured_s = 0.0;
        WallTimer timer;
        for (std::size_t t = 0; t < rounds; ++t) {
          if (t == kWarm) timer.reset();
          for (std::size_t x = 0; x < geo.read_nodes; ++x)
            nodes[x] = static_cast<NodeId>((rank * 131 + t * 17 + x * 7) %
                                           geo.num_nodes);
          for (std::size_t x = 0; x < geo.write_nodes; ++x)
            write.nodes[x] = static_cast<NodeId>((rank * 53 + t * 11 + x) %
                                                 geo.num_nodes);
          channel.read(rank, nodes, slice);
          channel.write(rank, write);
          if (t + 1 == rounds) measured_s = timer.seconds();
        }
        if (server) server->join();
        WireWriter w;
        w.put_f64(measured_s * 1e6 / static_cast<double>(iters));
        return w.take();
      },
      kLaunchTimeout);
  return max_mean_us(payloads);
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;
  const std::size_t iters = arg_or(argc, argv, "iters", 40);
  const std::size_t elems = arg_or(argc, argv, "elems", 100'000);
  const std::size_t only_ranks = arg_or(argc, argv, "ranks", 0);
  const std::size_t hosts = arg_or(argc, argv, "hosts", 0);

  bench::header("fabric_ops (BENCH_fabric.json trajectory)",
                "cross-process allreduce and daemon rounds scale with rank "
                "count like the throughput model's ring/host-memory terms");

  const dist::FabricSpec fabric;
  const dist::SystemConstants consts;
  const DaemonGeometry geo;

  if (hosts == 0) {
    bench::section("allreduce (ProcComm, forked ranks, one shm segment)");
    for (std::size_t world : {2u, 4u, 8u}) {
      if (only_ranks != 0 && world != only_ranks) continue;
      const double measured = bench_allreduce(world, elems, iters);
      const double model =
          dist::allreduce_seconds(fabric, elems * sizeof(float), world, 1) *
          1e6;
      std::printf(
          "fabric_ops op=allreduce ranks=%zu elems=%zu mb=%.3f "
          "measured_us=%.2f model_us=%.2f ratio=%.2f\n",
          world, elems, elems * sizeof(float) / 1e6, measured, model,
          measured / model);
    }
  } else {
    bench::section(
        "allreduce (HierComm: per-host shm + loopback-TCP leader ring)");
    for (std::size_t world : {2u, 4u, 8u}) {
      if (only_ranks != 0 && world != only_ranks) continue;
      const std::size_t h = std::min(hosts, world);
      const double measured = bench_tcp_allreduce(world, h, elems, iters);
      const double model =
          dist::allreduce_seconds(fabric, elems * sizeof(float), world, h) *
          1e6;
      std::printf(
          "fabric_ops op=tcp_allreduce ranks=%zu hosts=%zu elems=%zu "
          "mb=%.3f measured_us=%.2f model_us=%.2f ratio=%.2f\n",
          world, h, elems, elems * sizeof(float) / 1e6, measured, model,
          measured / model);
    }
  }

  bench::section("daemon round (ShmDaemonServer bracket, read+write/rank)");
  for (std::size_t world : {2u, 4u, 8u}) {
    if (only_ranks != 0 && world != only_ranks) continue;
    const double measured = bench_daemon_round(world, iters, geo);
    const double bytes =
        consts.daemon_passes * geo.round_bytes() * static_cast<double>(world);
    const double model =
        (dist::host_mem_seconds(fabric, static_cast<std::size_t>(bytes), 1) +
         consts.disttgl_overhead_s) *
        1e6;
    std::printf(
        "fabric_ops op=daemon_round ranks=%zu read_nodes=%zu write_nodes=%zu "
        "kb_round=%.1f measured_us=%.2f model_us=%.2f ratio=%.2f\n",
        world, geo.read_nodes, geo.write_nodes, geo.round_bytes() / 1e3,
        measured, model, measured / model);
  }
  return 0;
}
