// Isolated memory-layer I/O cost per super-batch — the trajectory
// behind BENCH_memory.json (bench/run_memory.sh appends one labelled
// entry per invocation; docs/BENCHMARKS.md).
//
// DistTGL's premise is that memory reads/writes, not compute, bound
// M-TGNN training (§3.2–3.3, Fig 2b). This bench measures exactly that
// path, detached from the model: gather a MemorySlice for a
// super-batch's unique nodes, scatter a MemoryWrite for its positive
// roots, at the thr_2x2x1 super-batch shape of bench_training_throughput
// (600-event chunk, j = 2 negative variants, K = 10) and paper-scale
// memory dims (mem 100).
//
// Each metric is reported for two implementations from the same binary:
//
//   legacy_*: the seed path, replicated inline — a fresh heap
//             MemorySlice per read filled by five separate gather
//             passes (each output zero-initialized, then overwritten),
//             and a fresh MemoryWrite buffer set per write (the
//             per-iteration lifecycle the pre-zero-copy daemon forced)
//             applied by two separate scatter passes.
//   current : the rewritten path — read_into into a recycled slice
//             (fused single-pass gather, no fill, no allocation) and an
//             in-place fused write from a persistent request.
//
// daemon_rt_us additionally times the full zero-copy daemon round trip
// (read + write through the slot protocol, one trainer), putting a
// number on the serialization overhead itself.
//
//   bench_memory_ops [--scale=S] [--iters=N]
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "datagen/generator.hpp"
#include "datagen/presets.hpp"
#include "memory/daemon.hpp"
#include "memory/mailbox.hpp"
#include "memory/node_memory.hpp"
#include "sampling/minibatch.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

constexpr std::size_t kMemDim = 100;  // paper §4.0.1 memory width

// ---- seed-path replication (the measured "before") ----

// The seed MemoryState: separate NodeMemory and Mailbox tables (five
// arrays touched per gathered node) instead of the blocked row layout.
struct LegacyMemoryState {
  NodeMemory memory;
  Mailbox mailbox;
  LegacyMemoryState(std::size_t n, std::size_t md, std::size_t ld)
      : memory(n, md), mailbox(n, ld) {}
};

MemorySlice legacy_read(const LegacyMemoryState& state,
                        std::span<const NodeId> nodes) {
  MemorySlice s;
  s.mem = state.memory.gather(nodes);
  s.mem_ts = state.memory.gather_ts(nodes);
  s.mail = state.mailbox.gather(nodes);
  s.mail_ts = state.mailbox.gather_ts(nodes);
  s.has_mail = state.mailbox.gather_flags(nodes);
  return s;
}

void legacy_write(LegacyMemoryState& state, const MemoryWrite& tmpl) {
  // The pre-zero-copy protocol consumed the trainer's MemoryWrite every
  // iteration (moved into the daemon slot), so the next make_write
  // rebuilt all five buffers from scratch: fresh allocations + fills.
  MemoryWrite w = tmpl;
  state.memory.scatter(w.nodes, w.mem, w.mem_ts);
  state.mailbox.scatter(w.nodes, w.mail, w.mail_ts);
}

// Exact replica of the seed daemon protocol (the pre-zero-copy
// MemoryDaemon): slots carry the payloads by value — the daemon
// allocates a fresh MemorySlice per read and moves it out, the write
// request is moved in — and every wait is a pure yield spin. Measured
// as the "before" of the group round-trip metric.
class LegacySpinDaemon {
 public:
  LegacySpinDaemon(LegacyMemoryState& state, std::size_t trainers,
                   std::size_t rounds)
      : state_(state), rounds_(rounds), slots_(trainers) {
    for (auto& s : slots_) s = std::make_unique<Slot>();
  }
  void start() {
    thread_ = std::thread([this] { run(); });
  }
  void join() { thread_.join(); }

  MemorySlice read(std::size_t rank, std::span<const NodeId> nodes) {
    Slot& slot = *slots_[rank];
    spin_until(slot.read_status, 0);
    slot.read_idx.assign(nodes.begin(), nodes.end());
    slot.read_status.store(1, std::memory_order_release);
    spin_until(slot.read_status, 0);
    return std::move(slot.read_result);
  }
  void write(std::size_t rank, MemoryWrite w) {
    Slot& slot = *slots_[rank];
    spin_until(slot.write_status, 0);
    slot.write_req = std::move(w);
    slot.write_status.store(1, std::memory_order_release);
    spin_until(slot.write_status, 0);
  }

 private:
  struct Slot {
    std::atomic<int> read_status{0};
    std::atomic<int> write_status{0};
    std::vector<NodeId> read_idx;
    MemorySlice read_result;
    MemoryWrite write_req;
  };
  static void spin_until(const std::atomic<int>& status, int value) {
    while (status.load(std::memory_order_acquire) != value)
      std::this_thread::yield();
  }
  void run() {
    for (std::size_t round = 0; round < rounds_; ++round) {
      for (auto& sp : slots_) {
        Slot& slot = *sp;
        spin_until(slot.read_status, 1);
        slot.read_result = legacy_read(state_, slot.read_idx);
        slot.read_status.store(0, std::memory_order_release);
      }
      for (auto& sp : slots_) {
        Slot& slot = *sp;
        spin_until(slot.write_status, 1);
        state_.memory.scatter(slot.write_req.nodes, slot.write_req.mem,
                              slot.write_req.mem_ts);
        state_.mailbox.scatter(slot.write_req.nodes, slot.write_req.mail,
                               slot.write_req.mail_ts);
        slot.write_status.store(0, std::memory_order_release);
      }
    }
  }

  LegacyMemoryState& state_;
  std::size_t rounds_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::thread thread_;
};

// Fill both layouts with identical per-node values and mails so gathers
// touch real data (flags set on two thirds of the nodes).
void populate(MemoryState& state, LegacyMemoryState& legacy,
              std::uint64_t seed) {
  Rng rng(seed);
  MemoryWrite w;
  const std::size_t n = state.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (v % 3 == 2) continue;
    w.nodes.assign(1, v);
    w.mem.resize(1, state.mem_dim(),
                 static_cast<float>(rng.uniform(-1.0, 1.0)));
    w.mem_ts.assign(1, static_cast<float>(v));
    w.mail.resize(1, state.mail_dim(),
                  static_cast<float>(rng.uniform(-1.0, 1.0)));
    w.mail_ts.assign(1, static_cast<float>(v) + 0.5f);
    state.write(w);
    legacy.memory.scatter(w.nodes, w.mem, w.mem_ts);
    legacy.mailbox.scatter(w.nodes, w.mail, w.mail_ts);
  }
}

struct SuperBatch {
  MiniBatch mb;
  std::vector<NodeId> write_nodes;  // distinct positive roots
};

// The thr_2x2x1 super-batch of bench_training_throughput: one 600-event
// chunk with j = 2 negative variants and K = 10 neighbor windows.
SuperBatch make_super_batch(const TemporalGraph& g) {
  NeighborSampler sampler(g, 10);
  NegativeSampler negatives(g, 10, 7 ^ 0x5eedULL);
  MiniBatchBuilder builder(g, sampler, negatives, 4);
  const std::vector<std::size_t> groups = {0, 1};
  SuperBatch sb;
  const std::size_t end = std::min<std::size_t>(600, g.num_events());
  sb.mb = builder.build(0, 0, end, groups);
  // Distinct positive roots, in first-appearance order (the make_write
  // write set).
  std::vector<std::uint8_t> seen(sb.mb.unique_nodes.size(), 0);
  for (std::size_t r = 0; r < 2 * sb.mb.num_pos(); ++r) {
    const std::size_t u = sb.mb.root_to_unique[r];
    if (!seen[u]) {
      seen[u] = 1;
      sb.write_nodes.push_back(sb.mb.unique_nodes[u]);
    }
  }
  return sb;
}

MemoryWrite make_write_payload(const SuperBatch& sb, std::size_t mem_dim,
                               std::size_t mail_dim, std::uint64_t seed) {
  Rng rng(seed);
  MemoryWrite w;
  w.nodes = sb.write_nodes;
  const std::size_t n = w.nodes.size();
  w.mem.reset_shape(n, mem_dim);
  w.mail.reset_shape(n, mail_dim);
  for (std::size_t i = 0; i < n * mem_dim; ++i)
    w.mem.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < n * mail_dim; ++i)
    w.mail.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  w.mem_ts.assign(n, 1.0f);
  w.mail_ts.assign(n, 1.5f);
  return w;
}

double checksum(const MemorySlice& s) {
  double c = 0.0;
  for (std::size_t i = 0; i < s.mem.size(); ++i) c += s.mem.data()[i];
  for (std::size_t i = 0; i < s.mail.size(); ++i) c += s.mail.data()[i];
  for (const auto f : s.has_mail) c += f;
  return c;
}

void run_dataset(const datagen::SynthSpec& spec, std::size_t iters) {
  const TemporalGraph g = datagen::generate(spec);
  bench::section(spec.name + " (" + std::to_string(g.num_nodes()) +
                 " nodes, " + std::to_string(g.num_events()) + " events)");

  const std::size_t mail_dim = 2 * kMemDim + g.edge_feat_dim();
  MemoryState state(g.num_nodes(), kMemDim, mail_dim);
  LegacyMemoryState legacy(g.num_nodes(), kMemDim, mail_dim);
  populate(state, legacy, spec.seed);

  const SuperBatch sb = make_super_batch(g);
  const std::vector<NodeId>& nodes = sb.mb.unique_nodes;
  const MemoryWrite w = make_write_payload(sb, kMemDim, mail_dim, 11);

  // Best-of-rounds timing: the container shares one core with the rest
  // of the system, so a single long measurement absorbs scheduler
  // preemptions as signal. The minimum round is the cleanest estimate
  // of the actual per-iteration cost; per-iteration work (allocation,
  // fills, copies) is identical in every round and stays in the number.
  constexpr std::size_t kRounds = 5;
  const auto us_per_iter = [&](auto&& body) {
    // Warm-up reaches every buffer's high-water mark and faults pages.
    for (std::size_t r = 0; r < iters / 10 + 2; ++r) body();
    double best = 1e30;
    for (std::size_t round = 0; round < kRounds; ++round) {
      WallTimer timer;
      for (std::size_t r = 0; r < iters; ++r) body();
      best = std::min(best, timer.seconds());
    }
    return best * 1e6 / static_cast<double>(iters);
  };

  double sink = 0.0;  // defeats dead-code elimination across variants

  // -- reads --
  const double legacy_read_us = us_per_iter([&] {
    MemorySlice s = legacy_read(legacy, nodes);
    sink += s.mem.data()[0] + s.has_mail[0];
  });
  MemorySlice recycled;
  const double read_us = us_per_iter([&] {
    state.read_into(nodes, recycled);
    sink += recycled.mem.data()[0] + recycled.has_mail[0];
  });
  // Sanity: both layouts hold identical contents.
  {
    const MemorySlice fresh = legacy_read(legacy, nodes);
    DT_CHECK_EQ(checksum(fresh), checksum(recycled));
  }

  // -- writes --
  const double legacy_write_us = us_per_iter([&] { legacy_write(legacy, w); });
  const double write_us = us_per_iter([&] { state.write(w); });

  // -- combined read+write round (what one memory-op iteration costs) --
  const double legacy_rw_us = us_per_iter([&] {
    MemorySlice s = legacy_read(legacy, nodes);
    sink += s.mem.data()[0];
    legacy_write(legacy, w);
  });
  const double rw_us = us_per_iter([&] {
    state.read_into(nodes, recycled);
    sink += recycled.mem.data()[0];
    state.write(w);
  });

  // -- zero-copy daemon round trip (protocol overhead included) --
  const std::size_t rounds = iters / 10 + 2 + kRounds * iters;
  {
    DaemonConfig dc;
    dc.i = 1;
    dc.j = 1;
    dc.reset_before_round.assign(rounds, 0);
    MemoryDaemon daemon(state, dc);
    daemon.start();
    MemorySlice dslice;
    const double daemon_rt_us = us_per_iter([&] {
      daemon.read(0, nodes, dslice);
      sink += dslice.mem.data()[0];
      daemon.write(0, w);
    });
    daemon.join();

    std::printf(
        "memory_ops dataset=%s rows=%zu write_rows=%zu mem_dim=%zu "
        "mail_dim=%zu legacy_read_us=%.1f read_us=%.1f legacy_write_us=%.1f "
        "write_us=%.1f legacy_rw_us=%.1f rw_us=%.1f rw_speedup=%.2f "
        "daemon_rt_us=%.1f\n",
        spec.name.c_str(), nodes.size(), w.nodes.size(), kMemDim, mail_dim,
        legacy_read_us, read_us, legacy_write_us, write_us, legacy_rw_us,
        rw_us, legacy_rw_us / rw_us, daemon_rt_us);
  }

  // -- per-super-batch protocol round trip, i=2 trainer group --
  // What one memory-op iteration of a 2×j×k run actually costs end to
  // end: both trainers post their chunk's read, block for the bracket,
  // then post their writes. This is where the seed protocol pays twice:
  // payload churn through the slots AND pure yield-spinning trainers
  // competing with the serving daemon for the core. The rewritten
  // protocol gathers into lent buffers and parks waiters instead.
  const std::size_t half = nodes.size() / 2;
  const std::array<std::span<const NodeId>, 2> rank_nodes = {
      std::span<const NodeId>(nodes.data(), half),
      std::span<const NodeId>(nodes.data() + half, nodes.size() - half)};
  std::array<MemoryWrite, 2> rank_writes;
  {
    const std::size_t wh = w.nodes.size() / 2;
    for (std::size_t r = 0; r < 2; ++r) {
      const std::size_t lo = r * wh;
      const std::size_t hi = r == 0 ? wh : w.nodes.size();
      rank_writes[r].nodes.assign(w.nodes.begin() + lo, w.nodes.begin() + hi);
      w.mem.slice_rows_into(lo, hi, rank_writes[r].mem);
      rank_writes[r].mem_ts.assign(hi - lo, 1.0f);
      w.mail.slice_rows_into(lo, hi, rank_writes[r].mail);
      rank_writes[r].mail_ts.assign(hi - lo, 1.5f);
    }
  }
  const std::size_t group_rounds = iters;
  constexpr std::size_t kGroupReps = 3;
  double legacy_group = 1e30;
  double group = 1e30;
  for (std::size_t rep = 0; rep < kGroupReps; ++rep) {
    {
      LegacySpinDaemon daemon(legacy, 2, group_rounds);
      daemon.start();
      WallTimer timer;
      std::array<std::thread, 2> trainers;
      for (std::size_t r = 0; r < 2; ++r) {
        trainers[r] = std::thread([&, r] {
          for (std::size_t round = 0; round < group_rounds; ++round) {
            const MemorySlice s = daemon.read(r, rank_nodes[r]);
            if (s.mem.rows() != rank_nodes[r].size()) std::abort();
            // Fresh request per round: the seed protocol consumed it.
            daemon.write(r, rank_writes[r]);
          }
        });
      }
      for (auto& t : trainers) t.join();
      daemon.join();
      legacy_group = std::min(
          legacy_group, timer.seconds() * 1e6 / static_cast<double>(group_rounds));
    }
    {
      DaemonConfig dc;
      dc.i = 2;
      dc.j = 1;
      dc.reset_before_round.assign(group_rounds, 0);
      MemoryDaemon daemon(state, dc);
      daemon.start();
      WallTimer timer;
      std::array<std::thread, 2> trainers;
      for (std::size_t r = 0; r < 2; ++r) {
        trainers[r] = std::thread([&, r] {
          MemorySlice slice;  // recycled; daemon gathers straight in
          for (std::size_t round = 0; round < group_rounds; ++round) {
            daemon.read(r, rank_nodes[r], slice);
            daemon.write(r, rank_writes[r]);
          }
        });
      }
      for (auto& t : trainers) t.join();
      daemon.join();
      group = std::min(group,
                       timer.seconds() * 1e6 / static_cast<double>(group_rounds));
    }
  }
  std::printf(
      "memory_protocol dataset=%s trainers=2 legacy_group_rt_us=%.1f "
      "group_rt_us=%.1f group_speedup=%.2f\n",
      spec.name.c_str(), legacy_group, group, legacy_group / group);
  if (sink == 42.0) std::printf("# sink %f\n", sink);
  std::fflush(stdout);
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;
  double scale = 0.25;
  std::size_t iters = 200;
  std::string dataset = "all";
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      scale = std::stod(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--iters=", 8) == 0) {
      iters = static_cast<std::size_t>(std::stoul(argv[a] + 8));
    } else if (std::strncmp(argv[a], "--dataset=", 10) == 0) {
      dataset = argv[a] + 10;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=S] [--iters=N] "
                   "[--dataset=wikipedia|mooc|all]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::header(
      "memory_ops — isolated memory read+write cost per super-batch",
      "memory I/O, not compute, bounds M-TGNN training (§3.2–3.3); bulk "
      "fused array ops with recycled buffers beat per-iteration "
      "allocate-and-fill gathers");
  std::printf("scale=%.3g iters=%zu\n", scale, iters);
  // run_memory.sh measures one dataset per process so heap state from an
  // earlier dataset can never color a later one's allocating baseline.
  if (dataset == "all" || dataset == "wikipedia")
    run_dataset(datagen::wikipedia_like(scale), iters);
  if (dataset == "all" || dataset == "mooc")
    run_dataset(datagen::mooc_like(scale), iters);
  return 0;
}
