#!/usr/bin/env sh
# Run bench_micro_kernels and append a labelled entry to BENCH_kernels.json,
# the kernel-layer performance trajectory (docs/BENCHMARKS.md).
#
#   bench/run_kernels.sh [label] [path/to/bench_micro_kernels] [min_time]
#
# Defaults: label = current git revision, binary = build/bench/bench_micro_kernels,
# min_time = 0.2 (seconds per benchmark; pass 0.01 for a smoke run).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
bin=${2:-"$repo_root/build/bench/bench_micro_kernels"}
min_time=${3:-0.2}
out="$repo_root/BENCH_kernels.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_micro_kernels" >&2
  echo "(requires Google Benchmark)." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bin" --benchmark_format=json --benchmark_min_time="$min_time" > "$raw"

LABEL="$label" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os

raw = json.load(open(os.environ["RAW"]))
entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "benchmarks": {
        b["name"]: {
            "real_time_ns": round(b["real_time"], 1),
            **({"items_per_second": round(b["items_per_second"], 1)}
               if "items_per_second" in b else {}),
            **({"bytes_per_second": round(b["bytes_per_second"], 1)}
               if "bytes_per_second" in b else {}),
        }
        for b in raw["benchmarks"]
    },
}

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' ({len(entry['benchmarks'])} benchmarks) to {out}")
EOF
