#!/usr/bin/env sh
# Run bench_comm_ops and append a labelled entry to BENCH_comm.json,
# the gradient-sync-layer trajectory (docs/BENCHMARKS.md).
#
#   bench/run_comm.sh [label] [path/to/bench_comm_ops] [extra args...]
#
# Defaults: label = current git revision,
# binary = build/bench/bench_comm_ops. Extra args are passed through
# (e.g. --iters=500 --elems=200000).
#
# The rank sweep {2,4,8} runs in one process: unlike the memory bench,
# the legacy baseline's one allocation per call is size-stable across
# configs, so heap-shape coloring between sweeps is not a factor.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
bin=${2:-"$repo_root/build/bench/bench_comm_ops"}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
out="$repo_root/BENCH_comm.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_comm_ops." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bin" "$@" | tee "$raw"

LABEL="$label" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os
import re

results = {}
elems = None
with open(os.environ["RAW"]) as f:
    for line in f:
        m = re.match(
            r"comm_ops ranks=(\d+) elems=(\d+) mb=([\d.]+) "
            r"legacy_us=([\d.]+) ring_us=([\d.]+) speedup=([\d.]+) "
            r"legacy_opt_us=([\d.]+) ring_opt_us=([\d.]+) "
            r"fused_opt_us=([\d.]+) fused_speedup=([\d.]+)", line)
        if m:
            elems = int(m.group(2))
            results[f"ranks_{m.group(1)}"] = {
                "ranks": int(m.group(1)),
                "elems": elems,
                "mb": float(m.group(3)),
                "legacy_us": float(m.group(4)),
                "ring_us": float(m.group(5)),
                "speedup": float(m.group(6)),
                "legacy_opt_us": float(m.group(7)),
                "ring_opt_us": float(m.group(8)),
                "fused_opt_us": float(m.group(9)),
                "fused_speedup": float(m.group(10)),
            }

entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "elems": elems,
    "results": results,
}

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' ({len(results)} rank configs) to {out}")
EOF
