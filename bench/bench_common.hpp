// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the experiment id it reproduces, (b) the paper's
// qualitative expectation, and (c) the measured series, so
// bench_output.txt reads as a self-contained experiment log.
#pragma once

#include <cstdio>
#include <string>

namespace disttgl::bench {

inline void header(const std::string& id, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper expectation: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("--- %s ---\n", name.c_str());
}

}  // namespace disttgl::bench

#include "core/metrics_log.hpp"

namespace disttgl::bench {

// Compact convergence series: "label  iter:val iter:val ... | test=x".
inline void print_curve(const std::string& label, const ConvergenceLog& log,
                        double test_metric) {
  std::printf("%-26s", label.c_str());
  for (const auto& p : log.points())
    std::printf(" %zu:%.3f", p.iteration, p.val_metric);
  std::printf(" | test=%.4f\n", test_metric);
}

}  // namespace disttgl::bench
