// Isolated gradient-sync cost per iteration — the trajectory behind
// BENCH_comm.json (bench/run_comm.sh appends one labelled entry per
// invocation; docs/BENCHMARKS.md).
//
// DistTGL's scaling argument charges synchronous gradient averaging to
// every iteration (Table 1, "synchronization across trainers"). This
// bench measures exactly that path, detached from training: an
// allreduce over the real model-scale flat gradient payload (parameter
// count taken from a paper-dim TGNModel), swept over trainer counts.
//
// Each metric is reported for two implementations from the same binary:
//
//   legacy_*: the seed ThreadComm, replicated inline — per call the
//             whole ranks×size staging area is zero-filled and
//             reassigned (allocating), then EVERY rank redundantly
//             reduces the ENTIRE payload (O(ranks·size) work per rank)
//             behind three barriers.
//   ring_*  : the rewritten layer — persistent staging sized once,
//             chunked reduce-scatter (each rank reduces only its owned
//             chunks) + allgather behind two barriers, O(size) per rank.
//
// The *_opt_us columns add the per-iteration optimizer tail the trainer
// actually pays after the collective (global grad-clip + Adam over the
// full payload), and fused_opt_us is the allreduce_step path where each
// rank clips + steps only its owned chunks inside the collective and the
// allgather distributes updated weights instead of mean gradients.
//
//   bench_comm_ops [--iters=N] [--ranks=R] (R: measure only that count)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/tgn_model.hpp"
#include "datagen/generator.hpp"
#include "datagen/presets.hpp"
#include "distributed/comm.hpp"
#include "nn/optim.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

// ---- seed-path replication (the measured "before") ----
//
// Exact replica of the seed ThreadComm: one staging row per rank,
// reassigned (zero-fill + possible allocation) by rank 0 every call,
// every rank reducing the full payload, three barriers.
class LegacyThreadComm {
 public:
  explicit LegacyThreadComm(std::size_t ranks) : ranks_(ranks), barrier_(ranks) {
    for (std::size_t r = 0; r < ranks; ++r) tokens_.emplace_back(barrier_);
  }

  void allreduce_mean(std::size_t rank, std::span<float> data) {
    if (ranks_ == 1) return;
    BarrierToken& token = tokens_[rank];
    if (rank == 0) {
      staged_.assign(ranks_ * data.size(), 0.0f);
      stride_ = data.size();
    }
    (void)token.wait();
    std::memcpy(staged_.data() + rank * stride_, data.data(),
                data.size() * sizeof(float));
    (void)token.wait();
    const double inv = 1.0 / static_cast<double>(ranks_);
    for (std::size_t i = 0; i < data.size(); ++i) {
      double acc = 0.0;
      for (std::size_t r = 0; r < ranks_; ++r)
        acc += static_cast<double>(staged_[r * stride_ + i]);
      data[i] = static_cast<float>(acc * inv);
    }
    (void)token.wait();
  }

 private:
  std::size_t ranks_;
  SpinBarrier barrier_;
  std::vector<BarrierToken> tokens_;
  std::vector<float> staged_;
  std::size_t stride_ = 0;
};

// Parameter count of the paper-scale model (§4.0.1 dims: mem 100,
// attention 100, embedding 100) on a Wikipedia-like feature layout —
// the real per-iteration allreduce payload.
std::size_t model_flat_elems() {
  datagen::SynthSpec spec = datagen::wikipedia_like(0.02);
  const TemporalGraph g = datagen::generate(spec);
  ModelConfig mc;
  mc.mem_dim = 100;
  mc.time_dim = 16;
  mc.attn_dim = 100;
  mc.emb_dim = 100;
  mc.head_hidden = 100;
  Rng rng(3);
  TGNModel model(mc, g, nullptr, rng);
  return model.num_parameters();
}

// Per-rank state for the optimizer-tail variants: the flat payload as a
// single Parameter (contiguous by construction, like a flat-frozen
// model) plus its own Adam replica.
struct RankOpt {
  nn::Parameter param;
  nn::Adam opt;
  explicit RankOpt(std::size_t elems)
      : param("flat", 1, elems),
        opt({&param}, nn::AdamOptions{.lr = 1e-3f}) {}
};

struct FusedCtx {
  nn::Adam* opt;
  std::span<float> grads;
  float max_norm;
};

void fused_chunk_step(void* ctx, std::size_t lo, std::size_t hi, double sq) {
  auto* s = static_cast<FusedCtx*>(ctx);
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > s->max_norm && norm > 0.0f) {
    const float scale = s->max_norm / norm;
    for (std::size_t i = lo; i < hi; ++i) s->grads[i] *= scale;
  }
  s->opt->step_range(lo, hi);
}

constexpr float kClip = 10.0f;

// Runs `iters` rounds per rep on `ranks` persistent threads (rank 0
// times each rep between alignment barriers) and returns the best
// us/round — same best-of-reps methodology as bench_memory_ops.
template <typename PerRankBody>
double time_rounds(std::size_t ranks, std::size_t iters, PerRankBody&& body) {
  constexpr std::size_t kReps = 5;
  SpinBarrier gate(ranks);
  double best = 1e30;
  std::vector<std::thread> threads;
  for (std::size_t rank = 0; rank < ranks; ++rank) {
    threads.emplace_back([&, rank] {
      BarrierToken token(gate);
      for (std::size_t w = 0; w < 2; ++w) body(rank);  // warm-up
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        (void)token.wait();
        WallTimer timer;
        for (std::size_t it = 0; it < iters; ++it) body(rank);
        (void)token.wait();
        if (rank == 0)
          best = std::min(best,
                          timer.seconds() * 1e6 / static_cast<double>(iters));
      }
    });
  }
  for (auto& t : threads) t.join();
  return best;
}

void fill_payloads(std::vector<std::vector<float>>& data, std::size_t elems) {
  Rng rng(17);
  for (auto& row : data) {
    row.resize(elems);
    for (auto& v : row) v = static_cast<float>(rng.uniform(-0.1, 0.1));
  }
}

void run_ranks(std::size_t ranks, std::size_t elems, std::size_t iters) {
  bench::section(std::to_string(ranks) + " ranks");
  std::vector<std::vector<float>> payload(ranks);
  fill_payloads(payload, elems);

  // -- allreduce only: seed replica vs chunked reduce-scatter ring --
  LegacyThreadComm legacy(ranks);
  const double legacy_us = time_rounds(ranks, iters, [&](std::size_t r) {
    legacy.allreduce_mean(r, payload[r]);
  });

  dist::ThreadComm ring(ranks);
  ring.reserve(elems);
  const double ring_us = time_rounds(ranks, iters, [&](std::size_t r) {
    ring.allreduce_mean(r, payload[r]);
  });

  // -- collective + optimizer tail (what an iteration actually pays) --
  std::vector<std::unique_ptr<RankOpt>> opts;
  for (std::size_t r = 0; r < ranks; ++r)
    opts.push_back(std::make_unique<RankOpt>(elems));

  LegacyThreadComm legacy2(ranks);
  const double legacy_opt_us = time_rounds(ranks, iters, [&](std::size_t r) {
    RankOpt& o = *opts[r];
    std::memcpy(o.param.grad.data(), payload[r].data(),
                elems * sizeof(float));
    legacy2.allreduce_mean(
        r, std::span<float>(o.param.grad.data(), elems));
    nn::clip_grad_norm({&o.param}, kClip);
    o.opt.step();
  });

  for (std::size_t r = 0; r < ranks; ++r) opts[r] = std::make_unique<RankOpt>(elems);
  dist::ThreadComm ring2(ranks);
  ring2.reserve(elems);
  const double ring_opt_us = time_rounds(ranks, iters, [&](std::size_t r) {
    RankOpt& o = *opts[r];
    std::memcpy(o.param.grad.data(), payload[r].data(),
                elems * sizeof(float));
    ring2.allreduce_mean(r, std::span<float>(o.param.grad.data(), elems));
    nn::clip_grad_norm({&o.param}, kClip);
    o.opt.step();
  });

  for (std::size_t r = 0; r < ranks; ++r) opts[r] = std::make_unique<RankOpt>(elems);
  dist::ThreadComm ring3(ranks);
  ring3.reserve(elems);
  const double fused_opt_us = time_rounds(ranks, iters, [&](std::size_t r) {
    RankOpt& o = *opts[r];
    std::memcpy(o.param.grad.data(), payload[r].data(),
                elems * sizeof(float));
    const std::span<float> grads(o.param.grad.data(), elems);
    const std::span<float> values(o.param.value.data(), elems);
    o.opt.begin_step();
    FusedCtx ctx{&o.opt, grads, kClip};
    ring3.allreduce_step(r, grads, values, &fused_chunk_step, &ctx);
  });

  std::printf(
      "comm_ops ranks=%zu elems=%zu mb=%.2f legacy_us=%.1f ring_us=%.1f "
      "speedup=%.2f legacy_opt_us=%.1f ring_opt_us=%.1f fused_opt_us=%.1f "
      "fused_speedup=%.2f\n",
      ranks, elems, elems * sizeof(float) / 1e6, legacy_us, ring_us,
      legacy_us / ring_us, legacy_opt_us, ring_opt_us, fused_opt_us,
      legacy_opt_us / fused_opt_us);
  std::fflush(stdout);
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;
  std::size_t iters = 200;
  std::size_t only_ranks = 0;
  std::size_t elems = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--iters=", 8) == 0) {
      iters = static_cast<std::size_t>(std::stoul(argv[a] + 8));
    } else if (std::strncmp(argv[a], "--ranks=", 8) == 0) {
      only_ranks = static_cast<std::size_t>(std::stoul(argv[a] + 8));
    } else if (std::strncmp(argv[a], "--elems=", 8) == 0) {
      elems = static_cast<std::size_t>(std::stoul(argv[a] + 8));
    } else {
      std::fprintf(stderr, "usage: %s [--iters=N] [--ranks=R] [--elems=E]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::header(
      "comm_ops — gradient-sync cost per iteration at model payload size",
      "chunked reduce-scatter (O(size)/rank, 2 barriers, persistent "
      "staging) beats the redundant full reduction (O(ranks*size)/rank, "
      "3 barriers, zero-filled staging per call); fusing clip+Adam into "
      "the owned-chunk window removes the redundant full-model step");
  if (elems == 0) elems = model_flat_elems();
  std::printf("payload: %zu parameters (%.2f MB), iters=%zu\n", elems,
              elems * sizeof(float) / 1e6, iters);
  for (const std::size_t ranks : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    if (only_ranks != 0 && ranks != only_ranks) continue;
    run_ranks(ranks, elems, iters);
  }
  return 0;
}
