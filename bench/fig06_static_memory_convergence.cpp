// Figure 6 — validation accuracy with and without pre-trained static
// node memory on the Flights-like and MOOC-like datasets, single GPU and
// with epoch parallelism.
//
// Paper shapes: static memory improves accuracy and smooths convergence
// on both datasets, and on MOOC it additionally improves the multi-GPU
// (epoch-parallelism) scalability.
#include "bench_common.hpp"
#include "core/static_memory.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

namespace {

using namespace disttgl;

void run_dataset(const datagen::SynthSpec& spec) {
  TemporalGraph g = datagen::generate(spec);
  bench::section(g.name());

  EventSplit split = chronological_split(g);
  StaticPretrainConfig pre;
  pre.dim = 16;
  pre.epochs = 10;  // paper: 10 pre-train epochs on the small datasets
  Matrix static_mem = pretrain_static_memory(g, split, pre);

  for (std::size_t j : {1u, 4u}) {
    for (bool with_static : {false, true}) {
      TrainingConfig cfg;
      cfg.model.mem_dim = 16;
      cfg.model.time_dim = 8;
      cfg.model.attn_dim = 16;
      cfg.model.emb_dim = 16;
      cfg.model.num_neighbors = 5;
      cfg.model.head_hidden = 16;
      cfg.model.static_dim = with_static ? pre.dim : 0;
      cfg.local_batch = 60;
      cfg.epochs = 8;
      cfg.base_lr = 2e-3f;
      cfg.parallel.j = j;
      cfg.seed = 11;
      SequentialTrainer trainer(cfg, g, with_static ? &static_mem : nullptr);
      TrainResult res = trainer.train();
      char label[64];
      std::snprintf(label, sizeof(label), "  1x%zux1 %s", j,
                    with_static ? "w/ static " : "w/o static");
      bench::print_curve(label, res.log, res.final_test);
    }
  }
}

}  // namespace

int main() {
  using namespace disttgl;
  bench::header("Figure 6: pre-trained static node memory (§3.1)",
                "static memory lifts accuracy on both datasets and helps "
                "epoch-parallel scaling on mooc-like");
  run_dataset(datagen::flights_like(0.25));
  run_dataset(datagen::mooc_like(0.25));
  std::printf("\n(static table pre-trained on the training split only — no "
              "test-set information; §3.1)\n");
  return 0;
}
