// Figure 12(b) — per-GPU training throughput of TGN, TGL-TGN and DistTGL
// on the Wikipedia and GDELT workloads across configurations, at
// paper-scale volumes.
//
// Paper shapes: TGN is ~3x slower than TGL at 1 GPU; TGL's per-GPU
// throughput collapses with GPU count (7.29/21.07 at 8 GPUs on
// Wikipedia); DistTGL stays within ~10% of its single-GPU rate on
// Wikipedia for every strategy, while on GDELT single-machine memory
// parallelism (1x1x8) degrades (host DRAM contention) where mini-batch
// parallelism (8x1x1) does not, and spreading copies across machines
// recovers the scaling.
#include "bench_common.hpp"
#include "paper_profiles.hpp"

namespace {

using namespace disttgl;

void run_dataset(const bench::PaperDataset& d) {
  const dist::IterationProfile profile = bench::paper_profile(d);
  dist::FabricSpec fabric;
  std::printf("\n=== %s (local batch %zu) ===\n", d.name.c_str(),
              d.local_batch);
  std::printf("%-30s %6s %14s\n", "system / config", "gpus", "kE/s per GPU");
  auto row = [&](const char* label, dist::SystemKind kind,
                 dist::ParallelPlan plan) {
    const auto est = dist::estimate_throughput(kind, fabric, profile, plan);
    std::printf("%-30s %6zu %14.2f\n", label, plan.total_gpus(),
                est.per_gpu_events_per_second / 1e3);
  };

  row("TGN", dist::SystemKind::kTGN, {});
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    dist::ParallelPlan p;
    p.i = n;
    char label[32];
    std::snprintf(label, sizeof(label), "TGL %zu GPU", n);
    row(label, dist::SystemKind::kTGL, p);
  }
  row("DistTGL 1x1x1", dist::SystemKind::kDistTGL, {});
  if (d.classification) {
    for (std::size_t n : {2u, 4u, 8u}) {
      dist::ParallelPlan p;
      p.i = n;
      char label[40];
      std::snprintf(label, sizeof(label), "DistTGL %zux1x1 (mini-batch)", n);
      row(label, dist::SystemKind::kDistTGL, p);
    }
  } else {
    for (std::size_t n : {2u, 4u, 8u}) {
      dist::ParallelPlan p;
      p.j = n;
      char label[40];
      std::snprintf(label, sizeof(label), "DistTGL 1x%zux1 (epoch)", n);
      row(label, dist::SystemKind::kDistTGL, p);
    }
  }
  for (std::size_t n : {2u, 4u, 8u}) {
    dist::ParallelPlan p;
    p.k = n;
    char label[40];
    std::snprintf(label, sizeof(label), "DistTGL 1x1x%zu (memory)", n);
    row(label, dist::SystemKind::kDistTGL, p);
  }
  {
    dist::ParallelPlan p;
    if (d.classification) {
      p.i = 8;
      p.k = 2;
    } else {
      p.j = 8;
      p.k = 2;
    }
    p.machines = 2;
    row(d.classification ? "DistTGL 8x1x2 (2 nodes)" : "DistTGL 1x8x2 (2 nodes)",
        dist::SystemKind::kDistTGL, p);
  }
  {
    dist::ParallelPlan p;
    p.k = 16;
    p.machines = 2;
    row("DistTGL 1x1x16 (2 nodes)", dist::SystemKind::kDistTGL, p);
  }
  {
    dist::ParallelPlan p;
    if (d.classification) {
      p.i = 8;
      p.k = 4;
    } else {
      p.j = 8;
      p.k = 4;
    }
    p.machines = 4;
    row(d.classification ? "DistTGL 8x1x4 (4 nodes)" : "DistTGL 1x8x4 (4 nodes)",
        dist::SystemKind::kDistTGL, p);
  }
  {
    dist::ParallelPlan p;
    p.k = 32;
    p.machines = 4;
    row("DistTGL 1x1x32 (4 nodes)", dist::SystemKind::kDistTGL, p);
  }
}

}  // namespace

int main() {
  using namespace disttgl;
  bench::header("Figure 12(b): per-GPU throughput, TGN vs TGL vs DistTGL",
                "TGN << TGL < DistTGL at 1 GPU; TGL per-GPU rate collapses "
                "by 8 GPUs; DistTGL near-flat except GDELT 1x1x8 "
                "(DRAM-bound), where spreading copies across machines "
                "recovers");
  run_dataset(bench::paper_wikipedia());
  run_dataset(bench::paper_gdelt());
  return 0;
}
