// Figure 9(a) — convergence with epoch parallelism j ∈ {1, 2, 4, 8} on
// the four link-prediction datasets (1×j×1 on j GPUs).
//
// Paper shapes: j = 2 gives ≥2x convergence speedup (super-linear from
// the larger effective negative pool); j = 4 stays near-linear except on
// Flights (most unique edges); j = 8 costs test accuracy — the variance
// penalty of training the same positives j consecutive iterations.
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 9(a): epoch parallelism j = 1/2/4/8",
                "iterations shrink ~1/j; test MRR degrades noticeably by "
                "j = 8 (largest drop on flights-like)");

  const std::vector<datagen::SynthSpec> specs = {
      datagen::wikipedia_like(0.25), datagen::reddit_like(0.25),
      datagen::flights_like(0.25), datagen::mooc_like(0.25)};

  for (const auto& spec : specs) {
    TemporalGraph g = datagen::generate(spec);
    bench::section(g.name());
    double j1_test = 0.0;
    for (std::size_t j : {1u, 2u, 4u, 8u}) {
      TrainingConfig cfg;
      cfg.model.mem_dim = 16;
      cfg.model.time_dim = 8;
      cfg.model.attn_dim = 16;
      cfg.model.emb_dim = 16;
      cfg.model.num_neighbors = 5;
      cfg.model.head_hidden = 16;
      cfg.local_batch = 60;
      cfg.epochs = 8;
      cfg.base_lr = 2e-3f;
      cfg.parallel.j = j;
      cfg.seed = 11;
      SequentialTrainer trainer(cfg, g, nullptr);
      TrainResult res = trainer.train();
      char label[48];
      std::snprintf(label, sizeof(label), "  1x%zux1 (%zu iters)", j,
                    res.iterations);
      bench::print_curve(label, res.log, res.final_test);
      if (j == 1) j1_test = res.final_test;
      if (j == 8) {
        std::printf("  -> j=8 test delta vs single GPU: %+.4f\n",
                    res.final_test - j1_test);
      }
    }
  }
  std::printf("\nconclusion: epoch parallelism converts epochs into parallel "
              "iterations at ~1/j iterations, but large j correlates "
              "consecutive gradients and costs final accuracy.\n");
  return 0;
}
