// Paper-scale per-iteration profiles for the throughput benches.
//
// The throughput figures (1, 12) model the paper's testbed workloads, so
// their IterationProfiles must use Table 2's node counts and the paper's
// model dims (memory 100, 10 neighbors, batch 600 / 3200) — the
// scaled-down synthetic graphs can't produce them (their unique-node
// counts cap at a few hundred). Volumes are derived from first
// principles:
//
//   unique rows touched U = min(|V|, uniq_factor·R) where R = roots per
//   batch and uniq_factor reflects neighbor-set overlap (measured ≈3–5
//   on the synthetic graphs before saturation);
//   mail width = 2·mem + edge_dim; K·occupancy neighbor slots feed the
//   attention projections; FLOPs follow the layer shapes; backward ≈ 2x.
#pragma once

#include <algorithm>
#include <string>

#include "distributed/throughput_model.hpp"

namespace disttgl::bench {

struct PaperDataset {
  std::string name;
  std::size_t num_nodes;
  std::size_t edge_dim;
  std::size_t node_feat_dim;
  std::size_t local_batch;
  bool classification;
};

inline PaperDataset paper_wikipedia() { return {"wikipedia", 9227, 172, 0, 600, false}; }
inline PaperDataset paper_reddit() { return {"reddit", 10984, 172, 0, 600, false}; }
inline PaperDataset paper_mooc() { return {"mooc", 7144, 0, 0, 600, false}; }
inline PaperDataset paper_flights() { return {"flights", 13169, 0, 0, 600, false}; }
inline PaperDataset paper_gdelt() { return {"gdelt", 16682, 130, 413, 3200, true}; }

inline dist::IterationProfile paper_profile(const PaperDataset& d) {
  const double mem = 100.0, time_dim = 16.0, attn = 100.0, emb = 100.0,
               hidden = 100.0, K = 10.0, Q = 1.0;
  const double mail = 2.0 * mem + d.edge_dim;
  const double R = d.local_batch * (2.0 + Q);
  // Unique nodes per root after deduplicating overlapping neighbor
  // windows — interaction graphs revisit the same hubs constantly.
  const double uniq_factor = 2.0;
  const double U = std::min(static_cast<double>(d.num_nodes), uniq_factor * R);
  const double NB = R * K * 0.8;  // neighbor-slot occupancy
  const double node_dim = mem;    // +static when enabled; omitted here
  const double kv_in = node_dim + d.edge_dim + time_dim;

  dist::IterationProfile p;
  p.local_batch = d.local_batch;
  p.mem_read_bytes = U * (mem + mail + 3.0) * 4.0;
  p.mem_write_bytes = 2.0 * d.local_batch * (mem + mail + 2.0) * 4.0;
  p.fetch_bytes = NB * 12.0 + R * 12.0;
  p.feature_bytes = NB * d.edge_dim * 4.0 + U * d.node_feat_dim * 4.0;

  const double gru_in = mail + time_dim;
  const double f_gru = U * 2.0 * 3.0 * (gru_in * mem + mem * mem);
  const double f_proj = 2.0 * NB * kv_in * attn * 2.0 +
                        2.0 * R * (node_dim + time_dim) * attn;
  const double f_attn = 2.0 * NB * attn * 2.0;
  const double f_out = 2.0 * R * (attn + node_dim) * emb;
  const double f_head = 2.0 * R * (2.0 * emb * hidden + hidden);
  p.gpu_flops = 3.0 * (f_gru + f_proj + f_attn + f_out + f_head);

  const double w_gru = 3.0 * (gru_in * mem + mem * mem + 2.0 * mem);
  const double w_attn = (node_dim + time_dim + 1.0) * attn +
                        2.0 * (kv_in + 1.0) * attn +
                        (attn + node_dim + 1.0) * emb + 2.0 * time_dim;
  const double w_head =
      (2.0 * emb + 1.0) * hidden +
      (hidden + 1.0) * (d.classification ? 56.0 : 1.0);
  p.weight_bytes = (w_gru + w_attn + w_head) * 4.0;
  return p;
}

}  // namespace disttgl::bench
