// Figure 3 — staleness and information loss in the node memory under
// batched training (the paper presents this conceptually; here both are
// measured).
//
//   staleness       = mean (event time − memory last-update time) at
//                     embedding time: how out-of-date the node memory is
//                     when it is used.
//   information loss = fraction of mails dropped by COMB (§2.1.1):
//                     events that never reach the node memory.
//
// Both must grow monotonically with batch size.
#include "bench_common.hpp"
#include "core/tgn_model.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"
#include "sampling/batching.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 3 (measured): staleness & information loss vs batch size",
                "both staleness and dropped-mail fraction increase "
                "monotonically with batch size");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(0.5));
  ModelConfig mc;
  mc.mem_dim = 16;
  mc.time_dim = 8;
  mc.attn_dim = 16;
  mc.emb_dim = 16;
  mc.num_neighbors = 10;
  mc.head_hidden = 16;
  NeighborSampler sampler(g, mc.num_neighbors);
  NegativeSampler negatives(g, 2, 7);
  MiniBatchBuilder builder(g, sampler, negatives, 1);
  Rng rng(5);
  TGNModel model(mc, g, nullptr, rng);

  const EventSplit split = chronological_split(g);
  std::printf("%-12s %16s %18s\n", "batch size", "staleness (t)",
              "mail drop frac");
  for (std::size_t bs : {25u, 50u, 100u, 200u, 400u, 800u}) {
    MemoryState state(g.num_nodes(), mc.mem_dim, model.mail_raw_dim());
    BatchDiagnostics total;
    const auto batches = make_batches(split.train_begin, split.train_end, bs);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      MiniBatch mb = builder.build(b, batches[b].begin, batches[b].end,
                                   std::size_t{0});
      MemorySlice slice = state.read(mb.unique_nodes);
      MemoryWrite w;
      auto res = model.infer(mb, slice, &w);
      state.write(w);
      total.mails_generated += res.diag.mails_generated;
      total.mails_kept += res.diag.mails_kept;
      total.staleness_sum += res.diag.staleness_sum;
      total.staleness_count += res.diag.staleness_count;
    }
    const double staleness = total.staleness_sum / total.staleness_count;
    const double drop = 1.0 - static_cast<double>(total.mails_kept) /
                                  static_cast<double>(total.mails_generated);
    std::printf("%-12zu %16.1f %18.4f\n", bs, staleness, drop);
  }
  std::printf("\nconclusion: larger batches mean staler memory at embedding "
              "time and more COMB-dropped interactions — the two accuracy "
              "poisons of Fig 3.\n");
  return 0;
}
