// Table 1 — measured characteristics of the three parallel training
// strategies on n = 4 trainers (the paper states these qualitatively;
// here every row is a measurement):
//
//   captured dependency    : COMB-survival fraction at the strategy's
//                            effective batch (mini-batch parallelism
//                            processes an i x larger global batch).
//   training overhead      : wall time to generate one super-batch
//                            (epoch parallelism fetches j negative sets).
//   main memory            : bytes of node memory + mailbox state (k
//                            copies for memory parallelism).
//   synchronization        : per-iteration bytes that must cross trainers
//                            (weights for all; plus node memory + mails
//                            for strategies sharing one memory copy).
//   gradient correlation   : mean cosine similarity of consecutive
//                            iteration gradients — epoch parallelism
//                            trains the same positives j consecutive
//                            iterations, raising correlation (i.e. SGD
//                            variance per unit progress).
#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"
#include "util/timer.hpp"

int main() {
  using namespace disttgl;
  bench::header("Table 1: measured strategy characteristics (n = 4)",
                "mini-batch: less captured dependency; epoch: j x batch-gen "
                "overhead + correlated gradients; memory: k x host memory, "
                "weights-only sync");

  TemporalGraph g = datagen::generate(datagen::wikipedia_like(0.3));
  EventSplit split = chronological_split(g);
  const std::size_t local_batch = 60;
  const std::size_t n = 4;

  ModelConfig mc;
  mc.mem_dim = 16;
  mc.time_dim = 8;
  mc.attn_dim = 16;
  mc.emb_dim = 16;
  mc.num_neighbors = 5;
  mc.head_hidden = 16;

  // ---- captured dependency ----
  const double cap_single =
      captured_fraction(g, split.train_begin, split.train_end, local_batch);
  const double cap_mini = captured_fraction(g, split.train_begin,
                                            split.train_end, local_batch * n);

  // ---- batch-generation overhead (1 vs j=4 negative variants) ----
  NeighborSampler sampler(g, mc.num_neighbors);
  NegativeSampler negatives(g, 10, 7);
  MiniBatchBuilder builder(g, sampler, negatives, 1);
  auto time_build = [&](std::size_t variants) {
    std::vector<std::size_t> groups;
    for (std::size_t v = 0; v < variants; ++v) groups.push_back(v);
    WallTimer t;
    const int reps = 50;
    for (int r = 0; r < reps; ++r) {
      MiniBatch mb = builder.build(r % 20, split.train_begin + (r % 20) * local_batch,
                                   split.train_begin + (r % 20 + 1) * local_batch,
                                   groups);
      (void)mb;
    }
    return t.millis() / reps;
  };
  const double gen_1 = time_build(1);
  const double gen_j = time_build(n);

  // ---- main memory per strategy ----
  Rng rng(1);
  TGNModel probe_model(mc, g, nullptr, rng);
  const double copy_bytes =
      static_cast<double>(g.num_nodes()) *
      (mc.mem_dim + probe_model.mail_raw_dim() + 3) * 4.0;

  // ---- synchronization volume per iteration ----
  dist::IterationProfile profile =
      make_iteration_profile(mc, g, split, local_batch, 1, 1);
  const double sync_weights = profile.weight_bytes;
  const double sync_memory = profile.mem_read_bytes + profile.mem_write_bytes;

  // ---- gradient correlation (consecutive-iteration cosine) ----
  auto grad_corr = [&](std::size_t i, std::size_t j, std::size_t k) {
    TrainingConfig cfg;
    cfg.model = mc;
    cfg.local_batch = local_batch;
    cfg.epochs = 4;
    cfg.base_lr = 2e-3f;
    cfg.parallel.i = i;
    cfg.parallel.j = j;
    cfg.parallel.k = k;
    cfg.collect_grad_stats = true;
    // Fixed lr across strategies so the correlation statistic compares
    // sampling structure, not step-size dynamics.
    cfg.scale_lr_with_world = false;
    cfg.seed = 11;
    SequentialTrainer trainer(cfg, g, nullptr);
    TrainResult res = trainer.train();
    double acc = 0.0;
    for (float c : res.grad_cos_prev) acc += c;
    return res.grad_cos_prev.empty() ? 0.0 : acc / res.grad_cos_prev.size();
  };
  const double corr_single = grad_corr(1, 1, 1);
  const double corr_mini = grad_corr(n, 1, 1);
  const double corr_epoch = grad_corr(1, n, 1);
  const double corr_memory = grad_corr(1, 1, n);

  std::printf("%-28s %16s %16s %16s %16s\n", "", "single-GPU", "mini-batch i=4",
              "epoch j=4", "memory k=4");
  std::printf("%-28s %16.3f %16.3f %16.3f %16.3f\n",
              "captured dependency", cap_single, cap_mini, cap_single,
              cap_single);
  std::printf("%-28s %14.2fms %14.2fms %14.2fms %14.2fms\n",
              "batch generation", gen_1, gen_1, gen_j, gen_1);
  std::printf("%-28s %14.1fMB %14.1fMB %14.1fMB %14.1fMB\n",
              "node-memory state", copy_bytes / 1e6, copy_bytes / 1e6,
              copy_bytes / 1e6, n * copy_bytes / 1e6);
  std::printf("%-28s %14.2fKB %14.2fKB %14.2fKB %14.2fKB\n",
              "cross-trainer sync/iter", 0.0, (sync_weights + sync_memory) / 1e3,
              (sync_weights + sync_memory) / 1e3, sync_weights / 1e3);
  std::printf("%-28s %16.3f %16.3f %16.3f %16.3f\n",
              "grad correlation (cos)", corr_single, corr_mini, corr_epoch,
              corr_memory);

  std::printf("\nreading the table (paper's Table 1):\n"
              "  - only mini-batch parallelism loses captured dependencies\n"
              "  - only epoch parallelism multiplies batch-generation work\n"
              "  - only memory parallelism multiplies host memory, and it "
              "alone avoids synchronizing node memory across trainers\n"
              "  - epoch parallelism shows the highest consecutive-gradient "
              "correlation (higher effective SGD variance)\n");
  return 0;
}
