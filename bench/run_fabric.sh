#!/usr/bin/env sh
# Run bench_fabric_ops and append a labelled entry to BENCH_fabric.json,
# the process-fabric transport trajectory (docs/BENCHMARKS.md).
#
#   bench/run_fabric.sh [label] [path/to/bench_fabric_ops] [extra args...]
#
# Defaults: label = current git revision,
# binary = build/bench/bench_fabric_ops. Extra args are passed through
# (e.g. --iters=100 --elems=200000).
#
# Each entry records, per rank count {2,4,8}, the measured cross-process
# allreduce and daemon-round latency next to the throughput model's
# prediction for the same payload — measured-vs-model in one place.
#
# When the binary was invoked with --hosts=H it emits op=tcp_allreduce
# lines instead; the entry then carries "fabric": "tcp" and each
# allreduce config gains a "hosts" field (the tcp-entry convention,
# docs/BENCHMARKS.md; validated by tools/check_docs.py).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
label=${1:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unlabelled)}
bin=${2:-"$repo_root/build/bench/bench_fabric_ops"}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift
out="$repo_root/BENCH_fabric.json"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found or not executable." >&2
  echo "Configure with -DDISTTGL_BUILD_BENCH=ON and build bench_fabric_ops." >&2
  exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bin" "$@" | tee "$raw"

LABEL="$label" RAW="$raw" OUT="$out" python3 - <<'EOF'
import datetime
import json
import os
import re

allreduce = {}
daemon = {}
tcp = False
with open(os.environ["RAW"]) as f:
    for line in f:
        m = re.match(
            r"fabric_ops op=allreduce ranks=(\d+) elems=(\d+) mb=([\d.]+) "
            r"measured_us=([\d.]+) model_us=([\d.]+) ratio=([\d.]+)", line)
        if m:
            allreduce[f"ranks_{m.group(1)}"] = {
                "ranks": int(m.group(1)),
                "elems": int(m.group(2)),
                "mb": float(m.group(3)),
                "measured_us": float(m.group(4)),
                "model_us": float(m.group(5)),
                "ratio": float(m.group(6)),
            }
            continue
        m = re.match(
            r"fabric_ops op=tcp_allreduce ranks=(\d+) hosts=(\d+) "
            r"elems=(\d+) mb=([\d.]+) measured_us=([\d.]+) "
            r"model_us=([\d.]+) ratio=([\d.]+)", line)
        if m:
            tcp = True
            allreduce[f"ranks_{m.group(1)}"] = {
                "ranks": int(m.group(1)),
                "hosts": int(m.group(2)),
                "elems": int(m.group(3)),
                "mb": float(m.group(4)),
                "measured_us": float(m.group(5)),
                "model_us": float(m.group(6)),
                "ratio": float(m.group(7)),
            }
            continue
        m = re.match(
            r"fabric_ops op=daemon_round ranks=(\d+) read_nodes=(\d+) "
            r"write_nodes=(\d+) kb_round=([\d.]+) measured_us=([\d.]+) "
            r"model_us=([\d.]+) ratio=([\d.]+)", line)
        if m:
            daemon[f"ranks_{m.group(1)}"] = {
                "ranks": int(m.group(1)),
                "read_nodes": int(m.group(2)),
                "write_nodes": int(m.group(3)),
                "kb_round": float(m.group(4)),
                "measured_us": float(m.group(5)),
                "model_us": float(m.group(6)),
                "ratio": float(m.group(7)),
            }

entry = {
    "label": os.environ["LABEL"],
    "date": datetime.date.today().isoformat(),
    "allreduce": allreduce,
    "daemon_round": daemon,
}
if tcp:
    entry["fabric"] = "tcp"

out = os.environ["OUT"]
trajectory = json.load(open(out)) if os.path.exists(out) else []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"appended entry '{entry['label']}' "
      f"({len(allreduce)} allreduce + {len(daemon)} daemon configs) to {out}")
EOF
