// google-benchmark microbenchmarks for the kernel-level hot paths: GEMM
// (all three layout-tag products, allocating and `_into` forms), masked
// softmax, GRU cell, temporal attention, neighbor sampling, memory
// gather/scatter. These are the quantities the throughput model's
// gpu_flops/bytes inputs abstract over.
//
// The `_into` / reused-Ctx variants measure the steady-state training
// iteration: scratch reaches its high-water mark during warm-up and the
// timed loop performs zero heap allocations (see
// test_kernels.AllocationFree for the enforced version of that claim).
//
// bench/run_kernels.sh runs this target and appends a labelled entry to
// BENCH_kernels.json, the kernel-layer perf trajectory.
#include <benchmark/benchmark.h>

#include "datagen/generator.hpp"
#include "memory/memory_state.hpp"
#include "nn/attention.hpp"
#include "nn/gru_cell.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace disttgl;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

void set_gemm_counters(benchmark::State& state, std::size_t m, std::size_t n,
                       std::size_t k) {
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);  // FLOPs
  state.SetBytesProcessed(state.iterations() * (m * k + k * n + m * n) *
                          sizeof(float));
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    Matrix c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c;
  matmul_into(a, b, c);  // warm-up: c reaches steady-state capacity
  for (auto _ : state) {
    matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmInto)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmNtInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c;
  matmul_nt_into(a, b, c);
  for (auto _ : state) {
    matmul_nt_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNtInto)->Arg(128)->Arg(256);

void BM_GemmTnInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c;
  matmul_tn_into(a, b, c);
  for (auto _ : state) {
    matmul_tn_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmTnInto)->Arg(128)->Arg(256);

void BM_MaskedSoftmax(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix scores = random_matrix(rows, 10, rng);
  std::vector<std::size_t> valid(rows);
  for (std::size_t r = 0; r < rows; ++r) valid[r] = r % 11;
  Matrix y;
  for (auto _ : state) {
    masked_row_softmax_into(scores, valid, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * 2 * scores.size() * sizeof(float));
}
BENCHMARK(BM_MaskedSoftmax)->Arg(600)->Arg(2400);

void BM_GruCell(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::GRUCell cell("g", 72, 32, rng);
  Matrix x = random_matrix(rows, 72, rng);
  Matrix h = random_matrix(rows, 32, rng);
  for (auto _ : state) {
    Matrix y = cell.forward(x, h);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GruCell)->Arg(600)->Arg(2400);

// Steady-state form: Ctx and output reused, so iterations after the first
// are allocation-free.
void BM_GruCellInto(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::GRUCell cell("g", 72, 32, rng);
  Matrix x = random_matrix(rows, 72, rng);
  Matrix h = random_matrix(rows, 32, rng);
  nn::GRUCell::Ctx ctx;
  Matrix y;
  cell.forward_into(x, h, ctx, y);  // warm-up
  for (auto _ : state) {
    cell.forward_into(x, h, ctx, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GruCellInto)->Arg(600)->Arg(2400);

// Ctx hoisted out of the loop: after the first (warm-up) call every
// iteration reuses the Ctx-held scratch — the steady-state training shape.
void BM_TemporalAttention(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t K = 10;
  Rng rng(4);
  nn::AttentionDims dims;
  dims.node_dim = 32;
  dims.edge_dim = 16;
  dims.time_dim = 8;
  dims.attn_dim = 32;
  dims.out_dim = 32;
  dims.num_heads = 2;
  dims.max_neighbors = K;
  nn::TemporalAttention attn("a", dims, rng);
  Matrix node = random_matrix(n, 32, rng);
  Matrix neigh = random_matrix(n * K, 32, rng);
  Matrix edge = random_matrix(n * K, 16, rng);
  std::vector<float> dt(n * K, 1.0f);
  std::vector<std::size_t> valid(n, K);
  nn::TemporalAttention::Ctx ctx;
  attn.forward(node, neigh, edge, dt, valid, &ctx);  // warm-up
  for (auto _ : state) {
    const Matrix& out = attn.forward(node, neigh, edge, dt, valid, &ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TemporalAttention)->Arg(200)->Arg(600);

void BM_MiniBatchBuild(benchmark::State& state) {
  datagen::SynthSpec spec;
  spec.num_src = 440;
  spec.num_dst = 220;
  spec.num_events = 12000;
  spec.seed = 5;
  static TemporalGraph g = datagen::generate(spec);
  NeighborSampler sampler(g, 10);
  NegativeSampler negs(g, 10, 7);
  MiniBatchBuilder builder(g, sampler, negs, 1);
  std::size_t b = 0;
  for (auto _ : state) {
    MiniBatch mb = builder.build(b, 6000, 6600, b % 10);
    benchmark::DoNotOptimize(mb.unique_nodes.data());
    ++b;
  }
  state.SetItemsProcessed(state.iterations() * 600);
}
BENCHMARK(BM_MiniBatchBuild);

// Distinct random node ids (a shuffled-prefix draw): MemoryState::write
// requires distinct nodes, the contract that makes its parallel fan-out
// race-free.
std::vector<NodeId> distinct_nodes(std::size_t rows, std::size_t num_nodes,
                                   Rng& rng) {
  std::vector<NodeId> all(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) all[v] = static_cast<NodeId>(v);
  for (std::size_t i = 0; i < rows; ++i)
    std::swap(all[i], all[i + rng.uniform_int(num_nodes - i)]);
  all.resize(rows);
  return all;
}

void BM_MemoryReadWrite(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  MemoryState mem(20000, 32, 80);
  Rng rng(6);
  const std::vector<NodeId> nodes = distinct_nodes(rows, 20000, rng);
  MemoryWrite w;
  w.nodes = nodes;
  w.mem = Matrix(rows, 32, 1.0f);
  w.mem_ts.assign(rows, 1.0f);
  w.mail = Matrix(rows, 80, 1.0f);
  w.mail_ts.assign(rows, 1.0f);
  for (auto _ : state) {
    MemorySlice s = mem.read(nodes);
    benchmark::DoNotOptimize(s.mem.data());
    mem.write(w);
  }
  state.SetBytesProcessed(state.iterations() * rows * (32 + 80) * 4 * 2);
}
BENCHMARK(BM_MemoryReadWrite)->Arg(1024)->Arg(4096);

// The allocation-free steady state: fused blocked-row gather into a
// recycled slice + in-place write (the trainers' actual memory path).
void BM_MemoryReadWriteInto(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  MemoryState mem(20000, 32, 80);
  Rng rng(6);
  const std::vector<NodeId> nodes = distinct_nodes(rows, 20000, rng);
  MemoryWrite w;
  w.nodes = nodes;
  w.mem = Matrix(rows, 32, 1.0f);
  w.mem_ts.assign(rows, 1.0f);
  w.mail = Matrix(rows, 80, 1.0f);
  w.mail_ts.assign(rows, 1.0f);
  MemorySlice slice;
  for (auto _ : state) {
    mem.read_into(nodes, slice);
    benchmark::DoNotOptimize(slice.mem.data());
    mem.write(w);
  }
  state.SetBytesProcessed(state.iterations() * rows * (32 + 80) * 4 * 2);
}
BENCHMARK(BM_MemoryReadWriteInto)->Arg(1024)->Arg(4096);

}  // namespace
