// End-to-end training throughput of the batch-generation pipeline.
//
// Runs real training (SequentialTrainer and ThreadedTrainer) on
// datagen presets across i×j×k strategies and prints events/sec,
// traversals/sec and the batch-gen vs compute attribution per config —
// the trajectory behind BENCH_training.json (bench/run_training.sh
// appends one labelled entry per invocation; docs/BENCHMARKS.md).
//
// The pipeline mode is selectable so the pre-pipeline baseline stays
// measurable from the same binary:
//
//   bench_training_throughput [--mode=pooled|legacy] [--scale=S] [--epochs=E]
//
//   legacy: one dedicated worker thread per prefetcher, a fresh heap
//           MiniBatch per build (the pre-PR3 path).
//   pooled: construction jobs fan out over one shared worker pool into
//           recycled MiniBatchPool buffers (allocation-free steady state).
//
// Model dims are kept near the test scale: with tuned GEMMs the compute
// per event is small, which is exactly the regime where DistTGL's
// §3.3/§4.0.2 claim — batch generation, not compute, limits throughput
// — is measurable on one machine.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/threaded_trainer.hpp"
#include "core/trainer.hpp"
#include "datagen/generator.hpp"
#include "datagen/presets.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

// The regime of the DistTGL claim (§3.3, §4.0.2): kernels tuned and
// small (PR 2), neighbor windows at the paper's K = 10 and a healthy
// negative-root population — per training event, mini-batch generation
// (sampling + window fill + dedup) costs the same order as compute, so
// the generation path is what the end-to-end rate measures.
TrainingConfig bench_config(std::size_t epochs) {
  TrainingConfig cfg;
  cfg.model.mem_dim = 8;
  cfg.model.time_dim = 4;
  cfg.model.attn_dim = 8;
  cfg.model.emb_dim = 8;
  cfg.model.num_neighbors = 10;  // paper K
  cfg.model.head_hidden = 8;
  cfg.num_neg = 4;
  cfg.local_batch = 600;
  cfg.epochs = epochs;
  cfg.seed = 7;
  return cfg;
}

struct StrategyCase {
  const char* label;
  bool threaded;
  std::size_t i, j, k;
};

void run_dataset(const datagen::SynthSpec& spec, PipelineMode mode,
                 std::size_t epochs, std::size_t workers) {
  const TemporalGraph g = datagen::generate(spec);
  bench::section(spec.name + " (" + std::to_string(g.num_events()) +
                 " events)");

  static constexpr StrategyCase kCases[] = {
      {"seq_1x1x1", false, 1, 1, 1}, {"thr_1x1x1", true, 1, 1, 1},
      {"thr_2x1x1", true, 2, 1, 1},  {"thr_1x2x1", true, 1, 2, 1},
      {"thr_2x2x1", true, 2, 2, 1},  {"thr_1x2x2", true, 1, 2, 2},
  };

  // Isolated batch-construction cost at the thr_2x2x1 super-batch shape
  // (600-event chunk, j = 2 negative variants): the allocating legacy
  // build vs the recycled build_into. This is the path the pipeline
  // rewrite targets; end-to-end movement is bounded by its share of the
  // wall (printed per config below as batch_gen vs compute).
  {
    const TrainingConfig cfg = bench_config(epochs);
    NeighborSampler sampler(g, cfg.model.num_neighbors);
    NegativeSampler negatives(g, cfg.neg_groups, cfg.seed ^ 0x5eedULL);
    MiniBatchBuilder builder(g, sampler, negatives, cfg.num_neg);
    const std::vector<std::size_t> groups = {0, 1};
    const std::size_t end = std::min<std::size_t>(600, g.num_events());
    for (int i = 0; i < 5; ++i) builder.build(i, 0, end, groups);
    WallTimer alloc_timer;
    for (int i = 0; i < 100; ++i) builder.build(i, 0, end, groups);
    const double alloc_us = alloc_timer.seconds() * 1e4;
    MiniBatch recycled;
    for (int i = 0; i < 5; ++i) builder.build_into(i, 0, end, groups, recycled);
    WallTimer rec_timer;
    for (int i = 0; i < 100; ++i) builder.build_into(i, 0, end, groups, recycled);
    const double recycled_us = rec_timer.seconds() * 1e4;
    std::printf("batch_build dataset=%s alloc_us=%.1f recycled_us=%.1f\n",
                spec.name.c_str(), alloc_us, recycled_us);
  }

  for (const StrategyCase& c : kCases) {
    TrainingConfig cfg = bench_config(epochs);
    cfg.parallel.i = c.i;
    cfg.parallel.j = c.j;
    cfg.parallel.k = c.k;
    cfg.pipeline = mode;
    cfg.prefetch_workers = workers;  // 0 = auto (one per trainer)
    validate(cfg);

    if (c.threaded) {
      // Tiny --scale/--epochs smoke runs can undercut a strategy's
      // schedule (epochs × batches < j·k rounds, thrown from the
      // schedule builder in the constructor); skip, don't die.
      std::unique_ptr<ThreadedTrainer> trainer;
      try {
        trainer = std::make_unique<ThreadedTrainer>(cfg, g, nullptr);
      } catch (const std::logic_error&) {
        std::printf("%s dataset=%s skipped (schedule too small)\n", c.label,
                    spec.name.c_str());
        continue;
      }
      ThreadedTrainResult res = trainer->train();
      std::printf(
          "%s dataset=%s events=%zu traversals=%zu wall=%.3f "
          "events_per_sec=%.0f traversals_per_sec=%.0f batch_gen=%.3f "
          "wait=%.3f compute=%.3f mem_read_wait=%.3f mem_write_wait=%.3f "
          "val=%.4f\n",
          c.label, spec.name.c_str(), res.raw_events, res.traversals,
          res.wall_seconds, res.events_per_second, res.traversals_per_second,
          res.batch_build_seconds, res.prefetch_wait_seconds,
          res.compute_seconds, res.mem_read_wait_seconds,
          res.mem_write_wait_seconds, res.final_val);
    } else {
      WallTimer timer;
      std::unique_ptr<SequentialTrainer> trainer;
      try {
        trainer = std::make_unique<SequentialTrainer>(cfg, g, nullptr);
      } catch (const std::logic_error&) {
        std::printf("%s dataset=%s skipped (schedule too small)\n", c.label,
                    spec.name.c_str());
        continue;
      }
      TrainResult res = trainer->train();
      const double wall = timer.seconds();
      const std::size_t traversals = cfg.epochs * trainer->split().num_train();
      std::printf(
          "%s dataset=%s events=%zu traversals=%zu wall=%.3f "
          "events_per_sec=%.0f traversals_per_sec=%.0f batch_gen=%.3f "
          "wait=0.000 compute=%.3f mem_read_wait=%.3f mem_write_wait=%.3f "
          "val=%.4f\n",
          c.label, spec.name.c_str(), traversals, traversals, wall,
          traversals / wall, traversals / wall,
          res.timings.total_batch_gen(), res.timings.total_compute(),
          res.timings.total_mem_read_wait(),
          res.timings.total_mem_write_wait(), res.final_val);
    }
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;
  PipelineMode mode = PipelineMode::kPooled;
  double scale = 0.25;
  std::size_t epochs = 3;
  std::size_t workers = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--mode=legacy") == 0) {
      mode = PipelineMode::kLegacy;
    } else if (std::strcmp(argv[a], "--mode=pooled") == 0) {
      mode = PipelineMode::kPooled;
    } else if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      scale = std::stod(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--epochs=", 9) == 0) {
      epochs = static_cast<std::size_t>(std::stoul(argv[a] + 9));
    } else if (std::strncmp(argv[a], "--workers=", 10) == 0) {
      workers = static_cast<std::size_t>(std::stoul(argv[a] + 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--mode=pooled|legacy] [--scale=S] [--epochs=E] "
                   "[--workers=W]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::header(
      "training_throughput — end-to-end events/sec of the batch pipeline",
      "with tuned kernels, mini-batch generation limits MTGNN training "
      "throughput; prefetching it through a shared worker pool with "
      "recycled buffers hides it behind compute (§3.3, §4.0.2)");
  std::printf("mode=%s scale=%.3g epochs=%zu\n",
              mode == PipelineMode::kPooled ? "pooled" : "legacy", scale,
              epochs);

  run_dataset(datagen::wikipedia_like(scale), mode, epochs, workers);
  run_dataset(datagen::mooc_like(scale), mode, epochs, workers);
  return 0;
}
