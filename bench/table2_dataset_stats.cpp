// Table 2 — dataset statistics for the five (synthetic) datasets.
//
// The paper's Table 2 lists |V|, |E|, max(t), |dv|, |de| for Wikipedia,
// Reddit, MOOC, Flights and GDELT. This bench prints the same columns
// (plus the structural metrics the generator presets are tuned against)
// for the scaled-down synthetic stand-ins.
#include "bench_common.hpp"
#include "datagen/generator.hpp"
#include "datagen/presets.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace disttgl;
  bench::header("Table 2: dataset statistics",
                "five datasets; Wikipedia/Reddit/MOOC bipartite with "
                "Reddit the densest, Flights mostly unique edges, GDELT "
                "unipartite with node features and edge labels");

  std::printf("%s\n", stats_header().c_str());
  for (const auto& spec : datagen::all_presets(1.0)) {
    TemporalGraph g = datagen::generate(spec);
    std::printf("%s\n", format_stats_row(compute_stats(g)).c_str());
  }
  std::printf(
      "\nnote: sizes are scaled ~20-4000x down from the paper (Table 2) to "
      "fit single-core bench budgets; see EXPERIMENTS.md for the mapping.\n");
  return 0;
}
