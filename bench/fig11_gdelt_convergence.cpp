// Figure 11 — convergence on the GDELT-like dataset (dynamic edge
// classification, F1-micro): 1×1×1 vs mini-batch parallelism 8×1×1 vs
// mini-batch + memory parallelism 8×1×2 and 8×1×4.
//
// Paper shapes: the single-GPU baseline converges slowly (tiny effective
// batch for a huge dataset); 8×1×1 benefits from the larger global batch
// (super-linear); adding memory parallelism across machines keeps
// scaling and attains the best test F1.
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;
  bench::header("Figure 11: GDELT-like convergence, mini-batch x memory",
                "8x1x1 converges super-linearly vs 1x1x1; 8x1x2 / 8x1x4 "
                "extend the speedup with the best final F1");

  TemporalGraph g = datagen::generate(datagen::gdelt_like(0.25));

  struct Combo {
    std::size_t i, k;
  };
  const std::vector<Combo> combos = {{1, 1}, {8, 1}, {8, 2}, {8, 4}};
  for (const auto& combo : combos) {
    TrainingConfig cfg;
    cfg.model.mem_dim = 16;
    cfg.model.time_dim = 8;
    cfg.model.attn_dim = 16;
    cfg.model.emb_dim = 16;
    cfg.model.num_neighbors = 5;
    cfg.model.head_hidden = 16;
    cfg.local_batch = 40;  // global batch = 40*i
    cfg.epochs = 4;
    cfg.base_lr = 1e-3f;
    cfg.parallel.i = combo.i;
    cfg.parallel.k = combo.k;
    cfg.parallel.machines = combo.k;  // memory copies across machines
    cfg.seed = 11;
    SequentialTrainer trainer(cfg, g, nullptr);
    TrainResult res = trainer.train();
    char label[48];
    std::snprintf(label, sizeof(label), "%zux1x%zu (%zu iters)", combo.i,
                  combo.k, res.iterations);
    bench::print_curve(label, res.log, res.final_test);
  }
  std::printf("\n(validation/test metric is F1-micro on the multi-label "
              "edge classification task; x = training iteration)\n");
  return 0;
}
