// Serving-tier load harness — the trajectory behind BENCH_serving.json
// (bench/run_serving.sh appends one labelled entry per invocation;
// docs/BENCHMARKS.md).
//
// Two phases:
//
//   score   Closed-loop client/server latency over the framed score
//           protocol: a ScoreServer with R reader threads serves R
//           clients, each replaying pre-built batches over its own
//           connection; per-request latency is sampled client-side.
//           The sweep runs R = 1, 2, 4, 8 so the trajectory shows how
//           the lock-free slot ring scales with readers.
//   churn   The same scoring loop in-process (no sockets) while a
//           writer thread installs fresh snapshots continuously — the
//           read path's cost under version churn, plus the observed
//           torn-retry count (the validated-read seam actually firing).
//
//   bench_serving_ops [--transport=unix|tcp] [--batch=B] [--iters=N]
//                     [--max-threads=R] [--churn-installs=M]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "datagen/generator.hpp"
#include "nn/module.hpp"
#include "serving/model_server.hpp"
#include "serving/score_server.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

std::size_t arg_or(int argc, char** argv, const char* name,
                   std::size_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return static_cast<std::size_t>(std::stoull(arg.substr(prefix.size())));
  }
  return fallback;
}

std::string str_arg_or(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

struct Percentiles {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Percentiles percentiles(std::vector<double>& lat_us) {
  Percentiles p;
  if (lat_us.empty()) return p;
  std::sort(lat_us.begin(), lat_us.end());
  p.p50_us = lat_us[lat_us.size() / 2];
  p.p99_us = lat_us[(lat_us.size() * 99) / 100];
  return p;
}

struct Fixture {
  TemporalGraph graph;
  ModelConfig cfg;
  serving::ModelServer server;

  explicit Fixture(std::size_t max_threads)
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 100;
          spec.num_dst = 50;
          spec.num_events = 8000;
          spec.edge_feat_dim = 4;
          spec.seed = 23;
          return datagen::generate(spec);
        }()),
        cfg([] {
          ModelConfig c;
          c.mem_dim = 32;
          c.time_dim = 16;
          c.attn_dim = 32;
          c.num_heads = 2;
          c.emb_dim = 32;
          c.num_neighbors = 8;
          c.head_hidden = 32;
          return c;
        }()),
        server(cfg, [max_threads] {
          serving::ServingConfig sc;
          sc.slots = std::max<std::size_t>(4, max_threads);
          return sc;
        }(), graph) {
    server.install_snapshot(make_snapshot(1));
  }

  // Fresh-model weights perturbed per iteration; zeroed node memory.
  // Contents are irrelevant to the cost being measured — only the
  // geometry (and that successive installs differ) matters.
  std::shared_ptr<serving::ServingSnapshot> make_snapshot(
      std::size_t iter) const {
    Rng rng(101);
    TGNModel probe(cfg, graph, nullptr, rng);
    auto snap = std::make_shared<serving::ServingSnapshot>();
    snap->iteration = iter;
    nn::flatten_values(probe.cached_parameters(), snap->weights);
    for (float& w : snap->weights)
      w += 1e-4f * static_cast<float>(iter % 17);
    snap->states.emplace_back(graph.num_nodes(), cfg.mem_dim,
                              probe.mail_raw_dim());
    return snap;
  }

  // Batches replay contiguous event spans at staggered offsets so each
  // client's neighbor sampling touches a different working set.
  serving::ScoreRequest make_request(std::size_t batch,
                                     std::size_t offset) const {
    serving::ScoreRequest req;
    req.id = offset;
    const std::size_t begin = offset % (graph.num_events() - batch);
    for (std::size_t i = begin; i < begin + batch; ++i) {
      const TemporalEdge& e = graph.event(static_cast<EdgeId>(i));
      req.src.push_back(e.src);
      req.dst.push_back(e.dst);
      req.ts.push_back(e.ts);
    }
    return req;
  }
};

struct LoadResult {
  std::vector<double> lat_us;
  double wall_s = 0.0;
  std::size_t requests = 0;
};

// R closed-loop clients against a ScoreServer with R reader threads.
LoadResult run_socket_load(Fixture& fx, const std::string& transport,
                           std::size_t threads, std::size_t batch,
                           std::size_t iters) {
  serving::ScoreServerConfig sc;
  sc.reader_threads = threads;
  if (transport == "unix")
    sc.unix_path = "/tmp/disttgl.bench_serving." + std::to_string(::getpid()) +
                   "." + std::to_string(threads) + ".sock";
  serving::ScoreServer server(fx.server, sc);

  const auto deadline = [] {
    return dist::deadline_after(std::chrono::milliseconds(30'000));
  };
  std::vector<std::vector<double>> lat(threads);
  std::vector<std::thread> clients;
  WallTimer wall;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      serving::ScoreClient client =
          transport == "unix"
              ? serving::ScoreClient::connect_unix(sc.unix_path, deadline())
              : serving::ScoreClient::connect_tcp("127.0.0.1", server.port(),
                                                  deadline());
      // Four request shapes per client, cycled, so recycled buffers see
      // a realistic mix; pre-built so the loop times the wire + score.
      std::vector<serving::ScoreRequest> reqs;
      for (std::size_t v = 0; v < 4; ++v)
        reqs.push_back(fx.make_request(batch, t * 997 + v * 131));
      serving::ScoreResponse resp;
      lat[t].reserve(iters);
      for (std::size_t it = 0; it < iters; ++it) {
        WallTimer timer;
        client.score(reqs[it % reqs.size()], resp, deadline());
        lat[t].push_back(timer.seconds() * 1e6);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  LoadResult out;
  out.wall_s = wall.seconds();
  for (std::vector<double>& l : lat) {
    out.requests += l.size();
    out.lat_us.insert(out.lat_us.end(), l.begin(), l.end());
  }
  server.stop();
  return out;
}

}  // namespace
}  // namespace disttgl

int main(int argc, char** argv) {
  using namespace disttgl;

  const std::string transport = str_arg_or(argc, argv, "transport", "unix");
  const std::size_t batch = arg_or(argc, argv, "batch", 64);
  const std::size_t iters = arg_or(argc, argv, "iters", 200);
  const std::size_t max_threads = arg_or(argc, argv, "max-threads", 8);
  const std::size_t churn_installs = arg_or(argc, argv, "churn-installs", 50);

  bench::header(
      "serving_ops (BENCH_serving.json trajectory)",
      "read-only serving scales with reader threads against the "
      "lock-free snapshot ring; installs churn versions without torn reads");

  Fixture fx(max_threads);

  bench::section("closed-loop score latency (" + transport + " transport)");
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    LoadResult r = run_socket_load(fx, transport, threads, batch, iters);
    const Percentiles p = percentiles(r.lat_us);
    const double qps = static_cast<double>(r.requests) / r.wall_s;
    std::printf(
        "serving_ops op=score transport=%s threads=%zu clients=%zu "
        "batch=%zu iters=%zu p50_us=%.1f p99_us=%.1f qps=%.1f\n",
        transport.c_str(), threads, threads, batch, iters, p.p50_us, p.p99_us,
        qps);
  }

  bench::section("scoring under version churn (in-process)");
  {
    // Writer installs snapshots as fast as the drain allows while
    // max_threads scorers run the full request loop in-process; the
    // torn-retry counters expose how often the validated-read seam
    // actually re-ran a request.
    const std::size_t threads = max_threads;
    std::vector<std::unique_ptr<serving::ModelServer::Scorer>> scorers;
    for (std::size_t t = 0; t < threads; ++t)
      scorers.push_back(fx.server.make_scorer());

    std::vector<std::vector<double>> lat(threads);
    const std::size_t installs_before = fx.server.installs();
    std::vector<std::thread> workers;
    WallTimer wall;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        serving::ScoreRequest req = fx.make_request(batch, t * 997);
        serving::ScoreResponse resp;
        lat[t].reserve(iters);
        for (std::size_t it = 0; it < iters; ++it) {
          WallTimer timer;
          scorers[t]->score(req, resp);
          lat[t].push_back(timer.seconds() * 1e6);
        }
      });
    }
    std::thread writer([&] {
      for (std::size_t i = 0; i < churn_installs; ++i)
        fx.server.install_snapshot(fx.make_snapshot(100 + i));
    });
    for (std::thread& w : workers) w.join();
    writer.join();
    const double wall_s = wall.seconds();

    std::vector<double> all;
    std::size_t requests = 0;
    std::uint64_t torn = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      all.insert(all.end(), lat[t].begin(), lat[t].end());
      requests += lat[t].size();
      torn += scorers[t]->stats().torn_retries;
    }
    const Percentiles p = percentiles(all);
    std::printf(
        "serving_ops op=churn threads=%zu batch=%zu iters=%zu installs=%zu "
        "torn_retries=%zu p50_us=%.1f p99_us=%.1f qps=%.1f\n",
        threads, batch, iters, fx.server.installs() - installs_before,
        static_cast<std::size_t>(torn), p.p50_us, p.p99_us,
        static_cast<double>(requests) / wall_s);
  }
  return 0;
}
