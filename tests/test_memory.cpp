// Node memory, mailbox, and MemoryState read/write round trips, the
// recycled-slice (`read_into`) path, parallel-gather determinism, and
// the Table-1 payload byte accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "memory/mailbox.hpp"
#include "memory/memory_state.hpp"
#include "memory/node_memory.hpp"
#include "util/rng.hpp"

namespace disttgl {
namespace {

TEST(NodeMemory, GatherScatterRoundTrip) {
  NodeMemory mem(5, 3);
  std::vector<NodeId> nodes = {1, 4};
  Matrix rows(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<float> ts = {10.0f, 20.0f};
  mem.scatter(nodes, rows, ts);
  Matrix back = mem.gather(nodes);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_FLOAT_EQ(back.data()[i], rows.data()[i]);
  EXPECT_FLOAT_EQ(mem.last_update(4), 20.0f);
  EXPECT_FLOAT_EQ(mem.last_update(0), 0.0f);
}

TEST(NodeMemory, ResetZeroes) {
  NodeMemory mem(3, 2);
  std::vector<NodeId> nodes = {2};
  Matrix rows(1, 2, {7, 8});
  std::vector<float> ts = {1.0f};
  mem.scatter(nodes, rows, ts);
  mem.reset();
  EXPECT_FLOAT_EQ(mem.row(2)[0], 0.0f);
  EXPECT_FLOAT_EQ(mem.last_update(2), 0.0f);
}

TEST(Mailbox, FlagsTrackMailPresence) {
  Mailbox box(4, 2);
  EXPECT_FALSE(box.has_mail(1));
  std::vector<NodeId> nodes = {1};
  Matrix mails(1, 2, {0.5f, -0.5f});
  std::vector<float> ts = {3.0f};
  box.scatter(nodes, mails, ts);
  EXPECT_TRUE(box.has_mail(1));
  EXPECT_FLOAT_EQ(box.mail_ts(1), 3.0f);
  EXPECT_FLOAT_EQ(box.mail(1)[1], -0.5f);
  box.reset();
  EXPECT_FALSE(box.has_mail(1));
}

TEST(MemoryState, ReadReturnsAllFields) {
  MemoryState state(6, 3, 5);
  MemoryWrite w;
  w.nodes = {2, 5};
  w.mem = Matrix(2, 3, {1, 1, 1, 2, 2, 2});
  w.mem_ts = {10.0f, 11.0f};
  w.mail = Matrix(2, 5, 0.5f);
  w.mail_ts = {10.5f, 11.5f};
  state.write(w);

  std::vector<NodeId> nodes = {5, 0, 2};
  MemorySlice s = state.read(nodes);
  EXPECT_EQ(s.mem.rows(), 3u);
  EXPECT_FLOAT_EQ(s.mem(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.mem(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(s.mem(2, 2), 1.0f);
  EXPECT_EQ(s.has_mail[0], 1);
  EXPECT_EQ(s.has_mail[1], 0);
  EXPECT_FLOAT_EQ(s.mail_ts[2], 10.5f);
  EXPECT_FLOAT_EQ(s.mem_ts[0], 11.0f);
}

TEST(MemoryState, EmptyReadAndWriteAreNoOps) {
  MemoryState state(3, 2, 4);
  MemorySlice s = state.read({});
  EXPECT_EQ(s.mem.rows(), 0u);
  MemoryWrite w;
  w.mem = Matrix(0, 2);
  w.mail = Matrix(0, 4);
  state.write(w);  // must not throw
}

TEST(MemoryState, CopyIsIndependent) {
  MemoryState a(3, 2, 4);
  MemoryWrite w;
  w.nodes = {1};
  w.mem = Matrix(1, 2, {5, 6});
  w.mem_ts = {1.0f};
  w.mail = Matrix(1, 4, 1.0f);
  w.mail_ts = {1.0f};
  a.write(w);

  MemoryState b = a;  // memory-parallel copy semantics
  w.mem = Matrix(1, 2, {9, 9});
  b.write(w);
  EXPECT_FLOAT_EQ(a.read(std::vector<NodeId>{1}).mem(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(b.read(std::vector<NodeId>{1}).mem(0, 0), 9.0f);
}

TEST(MemoryWrite, ByteAccounting) {
  MemoryWrite w;
  w.nodes = {1, 2};
  w.mem = Matrix(2, 3);
  w.mem_ts = {0, 0};
  w.mail = Matrix(2, 5);
  w.mail_ts = {0, 0};
  // 2 ids ×4 + (6+10) floats ×4 + 4 ts ×4 + 2 has_mail flags ×1.
  EXPECT_EQ(w.bytes(), 2 * 4 + 16 * 4 + 4 * 4 + 2 * 1);
}

// bytes() must equal what a field-by-field serialization of the payload
// actually produces — applying a write transfers the node ids, both row
// blocks, both timestamp arrays, AND one has_mail flag per node (the
// Table-1 accounting previously omitted the flag bytes).
TEST(MemoryWrite, BytesMatchSerializedPayload) {
  MemoryState state(16, 3, 5);
  MemoryWrite w;
  w.nodes = {2, 7, 11};
  w.mem = Matrix(3, 3, 1.5f);
  w.mem_ts = {1, 2, 3};
  w.mail = Matrix(3, 5, 0.25f);
  w.mail_ts = {1, 2, 3};
  state.write(w);

  std::vector<std::uint8_t> buf;
  auto append = [&](const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + len);
  };
  append(w.nodes.data(), w.nodes.size() * sizeof(NodeId));
  append(w.mem.data(), w.mem.size() * sizeof(float));
  append(w.mem_ts.data(), w.mem_ts.size() * sizeof(float));
  append(w.mail.data(), w.mail.size() * sizeof(float));
  append(w.mail_ts.data(), w.mail_ts.size() * sizeof(float));
  for (const NodeId v : w.nodes) {
    const std::uint8_t flag = state.has_mail(v) ? 1 : 0;
    append(&flag, sizeof(flag));
  }
  EXPECT_EQ(w.bytes(), buf.size());

  // The read-side payload (MemorySlice) is the same inventory minus the
  // node ids, which travel in the request, not the response.
  MemorySlice s = state.read(w.nodes);
  EXPECT_EQ(s.bytes(), w.bytes() - w.nodes.size() * sizeof(NodeId));
}

// ---- recycled-slice and parallel-gather properties ----

// A state populated with distinguishable per-node values.
MemoryState populated_state(std::size_t nodes, std::size_t mem_dim,
                            std::size_t mail_dim, std::uint64_t seed) {
  MemoryState state(nodes, mem_dim, mail_dim);
  Rng rng(seed);
  MemoryWrite w;
  // Mail every third node; memory rows for the first two thirds.
  for (NodeId v = 0; v < nodes; ++v) {
    if (v % 3 == 2) continue;
    w.nodes = {v};
    w.mem = Matrix(1, mem_dim, static_cast<float>(rng.uniform(-1.0, 1.0)));
    w.mem_ts = {static_cast<float>(v)};
    w.mail = Matrix(1, mail_dim, static_cast<float>(rng.uniform(-1.0, 1.0)));
    w.mail_ts = {static_cast<float>(v) + 0.5f};
    state.write(w);
  }
  return state;
}

bool slices_bit_equal(const MemorySlice& a, const MemorySlice& b) {
  return a.mem.rows() == b.mem.rows() && a.mem.cols() == b.mem.cols() &&
         a.mail.cols() == b.mail.cols() &&
         std::memcmp(a.mem.data(), b.mem.data(),
                     a.mem.size() * sizeof(float)) == 0 &&
         a.mem_ts == b.mem_ts &&
         std::memcmp(a.mail.data(), b.mail.data(),
                     a.mail.size() * sizeof(float)) == 0 &&
         a.mail_ts == b.mail_ts && a.has_mail == b.has_mail;
}

TEST(MemoryState, RecycledSliceEqualsFresh) {
  MemoryState state = populated_state(64, 4, 6, 3);
  Rng rng(9);
  MemorySlice recycled;
  // Shrinking, growing, and repeated shapes must all land bit-exact.
  const std::size_t sizes[] = {40, 7, 64, 7, 1, 33};
  for (const std::size_t sz : sizes) {
    std::vector<NodeId> nodes(sz);
    for (auto& v : nodes) v = static_cast<NodeId>(rng.uniform_int(64));
    state.read_into(nodes, recycled);
    const MemorySlice fresh = state.read(nodes);
    EXPECT_TRUE(slices_bit_equal(recycled, fresh)) << "size " << sz;
  }
}

TEST(MemoryState, EmptyReadIntoClearsShape) {
  MemoryState state = populated_state(8, 2, 3, 1);
  MemorySlice s;
  state.read_into(std::vector<NodeId>{1, 2, 3}, s);
  ASSERT_EQ(s.size(), 3u);
  state.read_into({}, s);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.mem_ts.size(), 0u);
  EXPECT_EQ(s.has_mail.size(), 0u);
}

// Equivalence grid: the pooled gather/scatter must be bit-identical to
// the serial path for every thread count (chunking depends only on the
// row count; chunks touch disjoint rows).
TEST(MemoryState, ThreadedGatherScatterMatchesSerialAcrossThreadCounts) {
  const std::size_t kNodes = 5000;
  MemoryState state = populated_state(kNodes, 5, 7, 17);
  // Large enough to split into several 512-row chunks.
  Rng rng(23);
  std::vector<NodeId> nodes(2000);
  for (auto& v : nodes) v = static_cast<NodeId>(rng.uniform_int(kNodes));
  MemorySlice serial;
  state.read_into(nodes, serial);

  // Distinct-node write payload (scatter chunks must hit disjoint rows).
  MemoryWrite w;
  for (NodeId v = 0; v < kNodes; v += 3) w.nodes.push_back(v);
  const std::size_t wn = w.nodes.size();
  w.mem.reset_shape(wn, 5);
  w.mail.reset_shape(wn, 7);
  for (std::size_t i = 0; i < wn; ++i) {
    for (std::size_t c = 0; c < 5; ++c)
      w.mem(i, c) = static_cast<float>(rng.uniform(-2.0, 2.0));
    for (std::size_t c = 0; c < 7; ++c)
      w.mail(i, c) = static_cast<float>(rng.uniform(-2.0, 2.0));
    w.mem_ts.push_back(static_cast<float>(i));
    w.mail_ts.push_back(static_cast<float>(i) + 0.5f);
  }
  MemoryState serial_written = state;
  serial_written.write(w);
  const MemorySlice serial_after = serial_written.read(w.nodes);

  for (const std::size_t threads : {1u, 2u, 3u, 4u, 7u}) {
    ThreadPool pool(threads);
    MemorySlice pooled;
    state.read_into(nodes, pooled, &pool);
    EXPECT_TRUE(slices_bit_equal(pooled, serial)) << threads << " threads";

    MemoryState pooled_written = state;
    pooled_written.write(w, &pool);
    const MemorySlice after = pooled_written.read(w.nodes);
    EXPECT_TRUE(slices_bit_equal(after, serial_after))
        << threads << " threads (scatter)";
  }
}

}  // namespace
}  // namespace disttgl
