// Node memory, mailbox, and MemoryState read/write round trips.
#include <gtest/gtest.h>

#include "memory/memory_state.hpp"

namespace disttgl {
namespace {

TEST(NodeMemory, GatherScatterRoundTrip) {
  NodeMemory mem(5, 3);
  std::vector<NodeId> nodes = {1, 4};
  Matrix rows(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<float> ts = {10.0f, 20.0f};
  mem.scatter(nodes, rows, ts);
  Matrix back = mem.gather(nodes);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_FLOAT_EQ(back.data()[i], rows.data()[i]);
  EXPECT_FLOAT_EQ(mem.last_update(4), 20.0f);
  EXPECT_FLOAT_EQ(mem.last_update(0), 0.0f);
}

TEST(NodeMemory, ResetZeroes) {
  NodeMemory mem(3, 2);
  std::vector<NodeId> nodes = {2};
  Matrix rows(1, 2, {7, 8});
  std::vector<float> ts = {1.0f};
  mem.scatter(nodes, rows, ts);
  mem.reset();
  EXPECT_FLOAT_EQ(mem.row(2)[0], 0.0f);
  EXPECT_FLOAT_EQ(mem.last_update(2), 0.0f);
}

TEST(Mailbox, FlagsTrackMailPresence) {
  Mailbox box(4, 2);
  EXPECT_FALSE(box.has_mail(1));
  std::vector<NodeId> nodes = {1};
  Matrix mails(1, 2, {0.5f, -0.5f});
  std::vector<float> ts = {3.0f};
  box.scatter(nodes, mails, ts);
  EXPECT_TRUE(box.has_mail(1));
  EXPECT_FLOAT_EQ(box.mail_ts(1), 3.0f);
  EXPECT_FLOAT_EQ(box.mail(1)[1], -0.5f);
  box.reset();
  EXPECT_FALSE(box.has_mail(1));
}

TEST(MemoryState, ReadReturnsAllFields) {
  MemoryState state(6, 3, 5);
  MemoryWrite w;
  w.nodes = {2, 5};
  w.mem = Matrix(2, 3, {1, 1, 1, 2, 2, 2});
  w.mem_ts = {10.0f, 11.0f};
  w.mail = Matrix(2, 5, 0.5f);
  w.mail_ts = {10.5f, 11.5f};
  state.write(w);

  std::vector<NodeId> nodes = {5, 0, 2};
  MemorySlice s = state.read(nodes);
  EXPECT_EQ(s.mem.rows(), 3u);
  EXPECT_FLOAT_EQ(s.mem(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.mem(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(s.mem(2, 2), 1.0f);
  EXPECT_EQ(s.has_mail[0], 1);
  EXPECT_EQ(s.has_mail[1], 0);
  EXPECT_FLOAT_EQ(s.mail_ts[2], 10.5f);
  EXPECT_FLOAT_EQ(s.mem_ts[0], 11.0f);
}

TEST(MemoryState, EmptyReadAndWriteAreNoOps) {
  MemoryState state(3, 2, 4);
  MemorySlice s = state.read({});
  EXPECT_EQ(s.mem.rows(), 0u);
  MemoryWrite w;
  w.mem = Matrix(0, 2);
  w.mail = Matrix(0, 4);
  state.write(w);  // must not throw
}

TEST(MemoryState, CopyIsIndependent) {
  MemoryState a(3, 2, 4);
  MemoryWrite w;
  w.nodes = {1};
  w.mem = Matrix(1, 2, {5, 6});
  w.mem_ts = {1.0f};
  w.mail = Matrix(1, 4, 1.0f);
  w.mail_ts = {1.0f};
  a.write(w);

  MemoryState b = a;  // memory-parallel copy semantics
  w.mem = Matrix(1, 2, {9, 9});
  b.write(w);
  EXPECT_FLOAT_EQ(a.read(std::vector<NodeId>{1}).mem(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(b.read(std::vector<NodeId>{1}).mem(0, 0), 9.0f);
}

TEST(MemoryWrite, ByteAccounting) {
  MemoryWrite w;
  w.nodes = {1, 2};
  w.mem = Matrix(2, 3);
  w.mem_ts = {0, 0};
  w.mail = Matrix(2, 5);
  w.mail_ts = {0, 0};
  // 2 ids ×4 + (6+10) floats ×4 + 4 ts ×4.
  EXPECT_EQ(w.bytes(), 2 * 4 + 16 * 4 + 4 * 4);
}

}  // namespace
}  // namespace disttgl
