// Static node memory pre-training (§3.1): the learned table must encode
// the dataset's static preference structure.
#include <gtest/gtest.h>

#include "core/static_memory.hpp"
#include "datagen/generator.hpp"
#include "util/rng.hpp"

namespace disttgl {
namespace {

TemporalGraph static_heavy_graph() {
  datagen::SynthSpec spec;
  spec.num_src = 60;
  spec.num_dst = 30;
  spec.num_events = 4000;
  spec.dynamic_weight = 0.1;  // destinations driven by static preferences
  spec.recurrence = 0.2;
  spec.preference_sharpness = 6.0;
  spec.seed = 77;
  return datagen::generate(spec);
}

TEST(StaticMemory, ShapeAndNormalization) {
  TemporalGraph g = static_heavy_graph();
  EventSplit split = chronological_split(g);
  StaticPretrainConfig cfg;
  cfg.dim = 12;
  cfg.epochs = 2;
  Matrix table = pretrain_static_memory(g, split, cfg);
  EXPECT_EQ(table.rows(), g.num_nodes());
  EXPECT_EQ(table.cols(), 12u);
  for (std::size_t v = 0; v < table.rows(); ++v) {
    double sq = 0.0;
    for (std::size_t c = 0; c < 12; ++c)
      sq += static_cast<double>(table(v, c)) * table(v, c);
    EXPECT_LE(sq, 1.0 + 1e-4);
  }
}

TEST(StaticMemory, Deterministic) {
  TemporalGraph g = static_heavy_graph();
  EventSplit split = chronological_split(g);
  StaticPretrainConfig cfg;
  cfg.epochs = 1;
  Matrix a = pretrain_static_memory(g, split, cfg);
  Matrix b = pretrain_static_memory(g, split, cfg);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

TEST(StaticMemory, CapturesPreferenceStructure) {
  // Score each held-out event's true destination against a random
  // destination by embedding similarity; trained embeddings must beat
  // chance. (This is what "static information" means in §3.1.)
  TemporalGraph g = static_heavy_graph();
  EventSplit split = chronological_split(g);
  StaticPretrainConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 8;
  Matrix table = pretrain_static_memory(g, split, cfg);

  Rng rng(123);
  std::size_t wins = 0, total = 0;
  for (std::size_t e = split.train_end; e < split.test_end; ++e) {
    const auto& ev = g.event(static_cast<EdgeId>(e));
    const NodeId rand_dst =
        g.dst_partition_begin() +
        static_cast<NodeId>(
            rng.uniform_int(g.num_nodes() - g.dst_partition_begin()));
    if (rand_dst == ev.dst) continue;
    auto dot = [&](NodeId a, NodeId b) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < table.cols(); ++c)
        acc += table(a, c) * table(b, c);
      return acc;
    };
    if (dot(ev.src, ev.dst) > dot(ev.src, rand_dst)) ++wins;
    ++total;
  }
  EXPECT_GT(static_cast<double>(wins) / total, 0.62)
      << "pre-trained static memory should rank true destinations above "
         "random ones well beyond chance (0.5)";
}

TEST(StaticMemory, NodeFeatureSeedingAccepted) {
  datagen::SynthSpec spec;
  spec.num_src = 40;
  spec.num_dst = 0;
  spec.num_events = 1000;
  spec.node_feat_dim = 8;
  spec.seed = 5;
  TemporalGraph g = datagen::generate(spec);
  ASSERT_TRUE(g.has_node_features());
  EventSplit split = chronological_split(g);
  StaticPretrainConfig cfg;
  cfg.epochs = 1;
  Matrix table = pretrain_static_memory(g, split, cfg);
  EXPECT_EQ(table.rows(), g.num_nodes());
}

}  // namespace
}  // namespace disttgl
