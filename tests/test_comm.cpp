// The gradient-sync layer (src/distributed/comm.*): chunked
// reduce-scatter + allgather semantics, bitwise determinism across
// thread counts / arrival orders / chunk sizes, odd payloads vs chunk
// boundaries, capacity growth, logical-byte accounting, and the fused
// allreduce→step path. The allocation contract lives in
// tests/test_comm_alloc.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "distributed/comm.hpp"

namespace disttgl::dist {
namespace {

// Reference: elementwise double accumulation in rank order, times
// 1/ranks — the exact arithmetic the reduce-scatter owner performs, so
// results must match bit for bit.
std::vector<float> reference_mean(const std::vector<std::vector<float>>& data) {
  const std::size_t ranks = data.size();
  std::vector<float> out(data[0].size());
  const double inv = 1.0 / static_cast<double>(ranks);
  for (std::size_t i = 0; i < out.size(); ++i) {
    double acc = 0.0;
    for (std::size_t r = 0; r < ranks; ++r)
      acc += static_cast<double>(data[r][i]);
    out[i] = static_cast<float>(acc * inv);
  }
  return out;
}

std::vector<std::vector<float>> make_payloads(std::size_t ranks,
                                              std::size_t size,
                                              std::uint32_t salt) {
  std::vector<std::vector<float>> data(ranks, std::vector<float>(size));
  for (std::size_t r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < size; ++i)
      data[r][i] = 0.25f * static_cast<float>((r * 31 + i * 7 + salt) % 23) -
                   1.5f + 1e-3f * static_cast<float>(i);
  return data;
}

// Runs one allreduce_mean on `comm` with one thread per rank; optional
// per-rank pre-call delays to force specific arrival orders.
void run_allreduce(ThreadComm& comm, std::vector<std::vector<float>>& data,
                   const std::vector<int>& delay_us = {}) {
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < comm.ranks(); ++r) {
    threads.emplace_back([&, r] {
      if (!delay_us.empty() && delay_us[r] > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us[r]));
      comm.allreduce_mean(r, data[r]);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ThreadCommRing, MatchesRankOrderedReferenceAcrossShapes) {
  for (const std::size_t ranks : {2u, 3u, 4u, 8u}) {
    for (const std::size_t size : {1u, 5u, 8u, 17u, 64u, 1000u}) {
      for (const std::size_t chunk : {0u, 1u, 3u, 8u, 64u}) {
        ThreadComm comm(ranks, ThreadComm::Options{.chunk_elems = chunk});
        auto data = make_payloads(ranks, size, 3);
        const std::vector<float> want = reference_mean(data);
        run_allreduce(comm, data);
        for (std::size_t r = 0; r < ranks; ++r)
          for (std::size_t i = 0; i < size; ++i)
            ASSERT_EQ(data[r][i], want[i])
                << "ranks=" << ranks << " size=" << size << " chunk=" << chunk
                << " rank=" << r << " i=" << i;
      }
    }
  }
}

TEST(ThreadCommRing, ChunkSizeDoesNotChangeBits) {
  // The owned-chunk partition is an implementation schedule, not a math
  // change: every chunking of the same payload must produce identical
  // bits (each element is still reduced in fixed rank order).
  const std::size_t ranks = 4, size = 237;
  auto base = make_payloads(ranks, size, 11);
  std::vector<float> want;
  {
    ThreadComm comm(ranks);
    auto data = base;
    run_allreduce(comm, data);
    want = data[0];
  }
  for (const std::size_t chunk : {1u, 2u, 7u, 16u, 100u, 237u, 1000u}) {
    ThreadComm comm(ranks, ThreadComm::Options{.chunk_elems = chunk});
    auto data = base;
    run_allreduce(comm, data);
    for (std::size_t r = 0; r < ranks; ++r)
      ASSERT_EQ(data[r], want) << "chunk=" << chunk << " rank=" << r;
  }
}

TEST(ThreadCommRing, ArrivalOrderGridIsDeterministic) {
  // Force every rank in turn to be the straggler (and one round with
  // reversed staggering): the fixed rank-order reduction must make the
  // result independent of who arrives last.
  const std::size_t ranks = 4, size = 53;
  auto base = make_payloads(ranks, size, 7);
  std::vector<float> want;
  {
    ThreadComm comm(ranks);
    auto data = base;
    run_allreduce(comm, data);
    want = data[0];
  }
  for (std::size_t straggler = 0; straggler <= ranks; ++straggler) {
    ThreadComm comm(ranks);
    auto data = base;
    std::vector<int> delays(ranks, 0);
    if (straggler < ranks) {
      delays[straggler] = 3000;
    } else {
      for (std::size_t r = 0; r < ranks; ++r)
        delays[r] = static_cast<int>((ranks - r) * 1000);
    }
    run_allreduce(comm, data, delays);
    for (std::size_t r = 0; r < ranks; ++r)
      ASSERT_EQ(data[r], want) << "straggler=" << straggler << " rank=" << r;
  }
}

TEST(ThreadCommRing, RepeatedRoundsReusePersistentStaging) {
  // Back-to-back rounds (no joins between calls inside a thread) must be
  // correct — this exercises the re-entry window where a fast rank
  // deposits round t+1 while slower ranks still allgather round t.
  const std::size_t ranks = 3, size = 40, rounds = 50;
  ThreadComm comm(ranks);
  comm.reserve(size);
  std::vector<std::vector<float>> data(ranks, std::vector<float>(size));
  std::vector<std::vector<float>> want(rounds);
  for (std::size_t t = 0; t < rounds; ++t)
    want[t] = reference_mean(make_payloads(ranks, size, static_cast<std::uint32_t>(t)));

  std::vector<int> failures(ranks, -1);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      for (std::size_t t = 0; t < rounds; ++t) {
        data[r] = make_payloads(ranks, size, static_cast<std::uint32_t>(t))[r];
        comm.allreduce_mean(r, data[r]);
        if (data[r] != want[t] && failures[r] < 0)
          failures[r] = static_cast<int>(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < ranks; ++r)
    EXPECT_EQ(failures[r], -1) << "rank " << r << " diverged at that round";
  EXPECT_EQ(comm.num_allreduces(), rounds);
}

TEST(ThreadCommRing, ZeroSpinBudgetCompletes) {
  // spin_polls = 0 makes every barrier wait park immediately — the
  // regression for the hoisted spin→park threshold (a barrier release
  // that only worked because waiters happened to re-poll would hang).
  const std::size_t ranks = 4, size = 129, rounds = 8;
  ThreadComm comm(ranks, ThreadComm::Options{
                             .wait = WaitPolicy{.spin_polls = 0}});
  comm.reserve(size);
  auto base = make_payloads(ranks, size, 13);
  const std::vector<float> want = reference_mean(base);
  std::vector<std::thread> threads;
  std::vector<int> failures(ranks, -1);
  for (std::size_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data;
      for (std::size_t t = 0; t < rounds; ++t) {
        data = base[r];
        comm.allreduce_mean(r, data);
        if (data != want && failures[r] < 0)
          failures[r] = static_cast<int>(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < ranks; ++r)
    EXPECT_EQ(failures[r], -1) << "rank " << r << " diverged at that round";
}

TEST(ThreadCommRing, SingleRankIsIdentity) {
  ThreadComm comm(1);
  std::vector<float> data = {1.0f, 2.0f};
  comm.allreduce_mean(0, data);
  EXPECT_FLOAT_EQ(data[0], 1.0f);
  EXPECT_FLOAT_EQ(data[1], 2.0f);
  EXPECT_EQ(comm.num_allreduces(), 0u);
  EXPECT_EQ(comm.logical_bytes(), 0u);
}

TEST(ThreadCommRing, EmptyPayloadIsANoOp) {
  const std::size_t ranks = 4;
  ThreadComm comm(ranks);
  std::vector<std::vector<float>> data(ranks);
  run_allreduce(comm, data);  // must not hang or touch anything
  EXPECT_EQ(comm.num_allreduces(), 1u);
  EXPECT_EQ(comm.logical_bytes(), 0u);
}

TEST(ThreadCommRing, PayloadSmallerThanRankCount) {
  // With auto chunking, size < ranks leaves trailing ranks owning no
  // chunk at all; they must still participate in the barriers.
  const std::size_t ranks = 8, size = 3;
  ThreadComm comm(ranks);
  auto data = make_payloads(ranks, size, 5);
  const std::vector<float> want = reference_mean(data);
  run_allreduce(comm, data);
  for (std::size_t r = 0; r < ranks; ++r) EXPECT_EQ(data[r], want);
}

TEST(ThreadCommRing, ReserveAndGrowth) {
  const std::size_t ranks = 2;
  ThreadComm comm(ranks);
  EXPECT_EQ(comm.capacity(), 0u);
  comm.reserve(100);
  EXPECT_EQ(comm.capacity(), 100u);
  comm.reserve(10);  // never shrinks
  EXPECT_EQ(comm.capacity(), 100u);

  // A payload beyond capacity grows inside the collective.
  auto data = make_payloads(ranks, 300, 1);
  const std::vector<float> want = reference_mean(data);
  run_allreduce(comm, data);
  EXPECT_GE(comm.capacity(), 300u);
  for (std::size_t r = 0; r < ranks; ++r) EXPECT_EQ(data[r], want);
}

TEST(ThreadCommRing, LogicalBytesFollowRingFormula) {
  const std::size_t ranks = 4, size = 128;
  ThreadComm comm(ranks);
  auto data = make_payloads(ranks, size, 2);
  run_allreduce(comm, data);
  const auto expected = static_cast<std::uint64_t>(
      2.0 * (ranks - 1) / ranks * size * sizeof(float) * ranks);
  EXPECT_EQ(comm.logical_bytes(), expected);
  EXPECT_EQ(comm.num_allreduces(), 1u);
}

// ---- fused allreduce→step ----

// A deterministic toy optimizer for the fused contract: clip to a global
// norm bound, then SGD. Mirrors what the trainer's Adam hook does
// without dragging the nn layer into this suite.
struct ToyStep {
  std::span<float> grads;
  std::span<float> params;
  float max_norm;
  float lr;
};

void toy_chunk_step(void* ctx, std::size_t lo, std::size_t hi, double sq) {
  auto* s = static_cast<ToyStep*>(ctx);
  const float norm = static_cast<float>(std::sqrt(sq));
  const float scale = (norm > s->max_norm && norm > 0.0f)
                          ? s->max_norm / norm
                          : 1.0f;
  for (std::size_t i = lo; i < hi; ++i)
    s->params[i] -= s->lr * scale * s->grads[i];
}

TEST(ThreadCommFused, MatchesUnfusedReference) {
  for (const std::size_t ranks : {1u, 2u, 4u, 8u}) {
    for (const std::size_t size : {1u, 17u, 96u}) {
      for (const std::size_t chunk : {0u, 5u}) {
        for (const float max_norm : {1e9f, 0.05f}) {  // clip off / on
          auto grads = make_payloads(ranks, size, 9);
          std::vector<std::vector<float>> params(
              ranks, make_payloads(1, size, 21)[0]);  // identical replicas

          // Reference: full mean, chunk-ordered global norm (the
          // collective's summation order), full toy step.
          std::vector<float> want_params = params[0];
          {
            const std::vector<float> mean = reference_mean(grads);
            ThreadComm probe(ranks,
                             ThreadComm::Options{.chunk_elems = chunk});
            const std::size_t ce = probe.chunk_elems_for(size);
            const std::size_t nc = probe.num_chunks_for(size);
            double sq = 0.0;
            for (std::size_t c = 0; c < nc; ++c) {
              double partial = 0.0;
              const std::size_t hi = std::min((c + 1) * ce, size);
              for (std::size_t i = c * ce; i < hi; ++i)
                partial += static_cast<double>(mean[i]) * mean[i];
              sq += partial;
            }
            std::vector<float> g = mean;
            ToyStep ref{g, want_params, max_norm, 0.1f};
            toy_chunk_step(&ref, 0, size, sq);
          }

          ThreadComm comm(ranks, ThreadComm::Options{.chunk_elems = chunk});
          std::vector<std::thread> threads;
          for (std::size_t r = 0; r < ranks; ++r) {
            threads.emplace_back([&, r] {
              ToyStep ctx{grads[r], params[r], max_norm, 0.1f};
              comm.allreduce_step(r, grads[r], params[r], &toy_chunk_step,
                                  &ctx);
            });
          }
          for (auto& t : threads) t.join();

          for (std::size_t r = 0; r < ranks; ++r)
            ASSERT_EQ(params[r], want_params)
                << "ranks=" << ranks << " size=" << size << " chunk=" << chunk
                << " max_norm=" << max_norm << " rank=" << r;
        }
      }
    }
  }
}

TEST(ThreadCommFused, RepeatedRoundsKeepReplicasIdentical) {
  const std::size_t ranks = 4, size = 61, rounds = 20;
  ThreadComm comm(ranks, ThreadComm::Options{.chunk_elems = 8});
  comm.reserve(size);
  std::vector<std::vector<float>> params(ranks,
                                         make_payloads(1, size, 40)[0]);
  std::vector<std::vector<float>> grads(ranks, std::vector<float>(size));

  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      for (std::size_t t = 0; t < rounds; ++t) {
        grads[r] = make_payloads(ranks, size, static_cast<std::uint32_t>(t))[r];
        ToyStep ctx{grads[r], params[r], 0.5f, 0.05f};
        comm.allreduce_step(r, grads[r], params[r], &toy_chunk_step, &ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 1; r < ranks; ++r)
    EXPECT_EQ(params[r], params[0]) << "replica " << r << " diverged";
  EXPECT_EQ(comm.num_allreduces(), rounds);
}

}  // namespace
}  // namespace disttgl::dist
