// Elastic fault tolerance, bottom to top: the checkpoint v2 container
// (atomic shard writes, checksummed reads, typed rejection of every
// corruption class), snapshot-set validation with fallback to the
// previous set, retention, and the supervisor restart loop driven by
// fabric.fault chaos knobs — injected kills on both fabrics, a hung
// rank caught by heartbeat silence, and a corrupted latest snapshot
// forcing the fallback path. The deterministic-resume contract itself
// (killed + resumed == uninterrupted, bitwise) is asserted here against
// supervised runs and again across the full {i,j,k} grid in
// tests/test_equivalence.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/proc_trainer.hpp"
#include "core/recovery.hpp"
#include "datagen/generator.hpp"
#include "distributed/fabric_error.hpp"
#include "memory/memory_state.hpp"

namespace disttgl {
namespace {

namespace fs = std::filesystem;

// Unique scratch dir per test, under the sweep fixture's root so the
// fabric_shm_sweep cleanup fixture reclaims (and leak-checks) it.
std::string fresh_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = "/tmp/disttgl-ckpt/" + tag + "." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  fs::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

CheckpointErrc code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckpointError& e) {
    return e.code();
  }
  return static_cast<CheckpointErrc>(0);  // did not throw
}

CoreShard sample_core(std::uint64_t fp = 0xfeedULL) {
  CoreShard core;
  core.fingerprint = fp;
  core.iteration = 5;
  core.world = 2;
  core.mem_copies = 1;
  core.weights = {0.5f, -1.25f, 3.0f, 0.0f, 42.0f, -0.125f, 7.5f, 2.0f};
  return core;
}

// ---- shard containers ----------------------------------------------------

TEST(CheckpointShards, CoreRoundTrip) {
  const std::string stem = fresh_dir("core_rt") + "/ckpt_5";
  const CoreShard core = sample_core();
  write_core_shard(stem, core);
  const CoreShard back = read_core_shard(stem);
  EXPECT_EQ(back.fingerprint, core.fingerprint);
  EXPECT_EQ(back.iteration, core.iteration);
  EXPECT_EQ(back.world, core.world);
  EXPECT_EQ(back.mem_copies, core.mem_copies);
  EXPECT_EQ(back.weights, core.weights);
}

TEST(CheckpointShards, MemShardRoundTripsFullState) {
  const std::string stem = fresh_dir("mem_rt") + "/ckpt_3";
  MemoryState state(7, 4, 6);
  {
    MemoryWrite w;
    w.nodes = {1, 3, 6};
    w.mem.resize(3, 4);
    w.mail.resize(3, 6);
    for (std::size_t x = 0; x < w.mem.size(); ++x)
      w.mem.data()[x] = 0.25f * static_cast<float>(x + 1);
    for (std::size_t x = 0; x < w.mail.size(); ++x)
      w.mail.data()[x] = -0.5f * static_cast<float>(x + 1);
    w.mem_ts = {1.0f, 2.0f, 3.0f};
    w.mail_ts = {4.0f, 5.0f, 6.0f};
    state.write(w);
  }

  write_mem_shard(stem, make_mem_shard(state, 0xabcULL, 3, 0));
  const MemShard shard = read_mem_shard(stem, 0);
  EXPECT_EQ(shard.fingerprint, 0xabcULL);
  EXPECT_EQ(shard.iteration, 3u);
  EXPECT_EQ(shard.nodes, 7u);

  MemoryState restored(7, 4, 6);
  apply_mem_shard(shard, restored);
  EXPECT_EQ(memory_digest(restored), memory_digest(state));
}

TEST(CheckpointShards, RankShardRoundTripsIncludingSlice) {
  const std::string stem = fresh_dir("rank_rt") + "/ckpt_4";
  RankShard rs;
  rs.fingerprint = 0x77ULL;
  rs.iteration = 4;
  rs.rank = 1;
  rs.loss_sum = 2.5;
  rs.loss_count = 9;
  rs.events = 123;
  rs.adam_steps = 4;
  rs.adam_m = {0.1f, 0.2f, 0.3f};
  rs.adam_v = {0.4f, 0.5f, 0.6f};
  rs.has_slice = true;
  rs.slice_nodes = 2;
  rs.slice_mem_dim = 3;
  rs.slice_mail_dim = 2;
  rs.slice_mem = {1, 2, 3, 4, 5, 6};
  rs.slice_mem_ts = {7, 8};
  rs.slice_mail = {9, 10, 11, 12};
  rs.slice_mail_ts = {13, 14};
  rs.slice_flags = {1, 0};
  write_rank_shard(stem, rs);

  const RankShard back = read_rank_shard(stem, 1);
  EXPECT_EQ(back.fingerprint, rs.fingerprint);
  EXPECT_EQ(back.loss_sum, rs.loss_sum);
  EXPECT_EQ(back.loss_count, rs.loss_count);
  EXPECT_EQ(back.events, rs.events);
  EXPECT_EQ(back.adam_steps, rs.adam_steps);
  EXPECT_EQ(back.adam_m, rs.adam_m);
  EXPECT_EQ(back.adam_v, rs.adam_v);
  ASSERT_TRUE(back.has_slice);
  EXPECT_EQ(back.slice_nodes, rs.slice_nodes);
  EXPECT_EQ(back.slice_mem, rs.slice_mem);
  EXPECT_EQ(back.slice_mem_ts, rs.slice_mem_ts);
  EXPECT_EQ(back.slice_mail, rs.slice_mail);
  EXPECT_EQ(back.slice_mail_ts, rs.slice_mail_ts);
  EXPECT_EQ(back.slice_flags, rs.slice_flags);
}

TEST(CheckpointShards, MissingFileIsTyped) {
  const std::string stem = fresh_dir("missing") + "/ckpt_9";
  try {
    (void)read_core_shard(stem);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kMissingFile);
    EXPECT_EQ(e.path(), stem + ".core");
  }
}

// A write interrupted at ANY byte boundary must read back as a typed
// truncation, never as garbage state: prefixes shorter than the header
// and prefixes cutting the payload are both kTruncated by construction
// (declared payload length vs bytes actually present).
TEST(CheckpointShards, TornWriteAtEveryByteRejected) {
  const std::string dir = fresh_dir("torn");
  write_core_shard(dir + "/ckpt_1", sample_core());
  const std::vector<std::uint8_t> full = slurp(dir + "/ckpt_1.core");
  ASSERT_GT(full.size(), 24u);

  const std::string torn = dir + "/ckpt_2";
  for (std::size_t len = 0; len < full.size(); ++len) {
    spit(torn + ".core", {full.begin(), full.begin() + len});
    EXPECT_EQ(code_of([&] { (void)read_core_shard(torn); }),
              CheckpointErrc::kTruncated)
        << "prefix of " << len << " bytes";
  }
}

TEST(CheckpointShards, BitFlipCaughtByChecksum) {
  const std::string dir = fresh_dir("flip");
  write_core_shard(dir + "/ckpt_1", sample_core());
  const std::vector<std::uint8_t> full = slurp(dir + "/ckpt_1.core");

  // Flip one bit in every payload byte position — the FNV-1a checksum
  // must catch each one.
  const std::string mut = dir + "/ckpt_2";
  for (std::size_t pos = 24; pos < full.size(); ++pos) {
    std::vector<std::uint8_t> bytes = full;
    bytes[pos] ^= 0x10;
    spit(mut + ".core", bytes);
    EXPECT_EQ(code_of([&] { (void)read_core_shard(mut); }),
              CheckpointErrc::kBadChecksum)
        << "payload byte " << pos;
  }
}

TEST(CheckpointShards, HeaderSkewRejectedTyped) {
  const std::string dir = fresh_dir("skew");
  write_core_shard(dir + "/ckpt_1", sample_core());
  const std::vector<std::uint8_t> full = slurp(dir + "/ckpt_1.core");
  const std::string mut = dir + "/ckpt_2";

  std::vector<std::uint8_t> bad_magic = full;
  bad_magic[0] ^= 0xff;
  spit(mut + ".core", bad_magic);
  EXPECT_EQ(code_of([&] { (void)read_core_shard(mut); }),
            CheckpointErrc::kBadMagic);

  std::vector<std::uint8_t> bad_version = full;
  bad_version[4] = 0x7f;  // future format version
  spit(mut + ".core", bad_version);
  EXPECT_EQ(code_of([&] { (void)read_core_shard(mut); }),
            CheckpointErrc::kBadVersion);

  // Kind confusion: a core container presented as a mem shard.
  fs::copy_file(dir + "/ckpt_1.core", mut + ".mem0",
                fs::copy_options::overwrite_existing);
  EXPECT_EQ(code_of([&] { (void)read_mem_shard(mut, 0); }),
            CheckpointErrc::kBadKind);
}

// ---- snapshot sets: validation, fallback, retention ----------------------

void write_snapshot_set(const std::string& dir, std::uint64_t fp,
                        std::size_t iter) {
  const std::string stem = snapshot_stem(dir, iter);
  CoreShard core = sample_core(fp);
  core.iteration = iter;
  write_core_shard(stem, core);
  MemoryState state(5, 3, 4);
  write_mem_shard(stem, make_mem_shard(state, fp, iter, 0));
  for (std::size_t r = 0; r < 2; ++r) {
    RankShard rs;
    rs.fingerprint = fp;
    rs.iteration = iter;
    rs.rank = r;
    rs.adam_m = {0.0f};
    rs.adam_v = {0.0f};
    write_rank_shard(stem, rs);
  }
  CommitShard commit;
  commit.fingerprint = fp;
  commit.iteration = iter;
  commit.world = 2;
  commit.mem_copies = 1;
  write_commit_shard(stem, commit);
}

TEST(Snapshots, LatestValidWinsAndCorruptionFallsBack) {
  const std::string dir = fresh_dir("fallback");
  const std::uint64_t fp = 0x1234ULL;
  write_snapshot_set(dir, fp, 3);
  write_snapshot_set(dir, fp, 6);

  auto latest = find_latest_snapshot(dir, fp, 2, 1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 6u);
  EXPECT_EQ(latest->stem, snapshot_stem(dir, 6));

  // Corrupt the newest core shard: the whole set stops validating and
  // discovery falls back to the previous snapshot.
  std::vector<std::uint8_t> bytes = slurp(snapshot_stem(dir, 6) + ".core");
  bytes.back() ^= 0x01;
  spit(snapshot_stem(dir, 6) + ".core", bytes);
  EXPECT_FALSE(validate_snapshot(snapshot_stem(dir, 6), fp, 2, 1));

  latest = find_latest_snapshot(dir, fp, 2, 1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 3u);
}

TEST(Snapshots, MissingShardInvalidatesTheSet) {
  const std::string dir = fresh_dir("missing_shard");
  write_snapshot_set(dir, 0x9ULL, 4);
  fs::remove(snapshot_stem(dir, 4) + ".rank1");
  EXPECT_FALSE(validate_snapshot(snapshot_stem(dir, 4), 0x9ULL, 2, 1));
  EXPECT_FALSE(find_latest_snapshot(dir, 0x9ULL, 2, 1).has_value());
}

TEST(Snapshots, FingerprintAndGeometryMismatchesSkipped) {
  const std::string dir = fresh_dir("fp_skip");
  write_snapshot_set(dir, 0xaaULL, 4);
  EXPECT_TRUE(validate_snapshot(snapshot_stem(dir, 4), 0xaaULL, 2, 1));
  EXPECT_FALSE(validate_snapshot(snapshot_stem(dir, 4), 0xbbULL, 2, 1));
  EXPECT_FALSE(validate_snapshot(snapshot_stem(dir, 4), 0xaaULL, 4, 1));
  EXPECT_FALSE(find_latest_snapshot(dir, 0xbbULL, 2, 1).has_value());
}

TEST(Snapshots, RetentionKeepsNewestAndSweepsTmp) {
  const std::string dir = fresh_dir("retain");
  const std::uint64_t fp = 0x5ULL;
  write_snapshot_set(dir, fp, 2);
  write_snapshot_set(dir, fp, 4);
  write_snapshot_set(dir, fp, 6);
  spit(dir + "/ckpt_8.core.tmp", {1, 2, 3});  // interrupted atomic write

  retain_snapshots(dir, 2);

  EXPECT_FALSE(fs::exists(snapshot_stem(dir, 2) + ".commit"));
  EXPECT_FALSE(fs::exists(snapshot_stem(dir, 2) + ".core"));
  EXPECT_FALSE(fs::exists(dir + "/ckpt_8.core.tmp"));
  EXPECT_TRUE(validate_snapshot(snapshot_stem(dir, 4), fp, 2, 1));
  EXPECT_TRUE(validate_snapshot(snapshot_stem(dir, 6), fp, 2, 1));
}

// ---- supervisor: restart, resume, chaos ----------------------------------

TemporalGraph recovery_graph() {
  datagen::SynthSpec spec;
  spec.num_src = 40;
  spec.num_dst = 20;
  spec.num_events = 800;
  spec.edge_feat_dim = 4;
  spec.seed = 7;
  return datagen::generate(spec);
}

TrainingConfig recovery_config() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 8;
  cfg.model.time_dim = 4;
  cfg.model.attn_dim = 8;
  cfg.model.emb_dim = 8;
  cfg.model.num_neighbors = 4;
  cfg.model.head_hidden = 8;
  cfg.local_batch = 40;  // 14 batches over the 560-event train split
  cfg.epochs = 1;
  cfg.seed = 11;
  cfg.recovery.backoff_ms = 1;
  return cfg;
}

void expect_bitwise_equal(const ThreadedTrainResult& base,
                          const ThreadedTrainResult& res) {
  ASSERT_EQ(base.weights.size(), res.weights.size());
  for (std::size_t x = 0; x < base.weights.size(); ++x)
    ASSERT_EQ(base.weights[x], res.weights[x]) << "weight " << x;
  EXPECT_EQ(base.loss_sum, res.loss_sum);
  EXPECT_EQ(base.loss_count, res.loss_count);
  EXPECT_DOUBLE_EQ(base.final_val, res.final_val);
  EXPECT_DOUBLE_EQ(base.final_test, res.final_test);
  ASSERT_EQ(base.memory_digests.size(), res.memory_digests.size());
  for (std::size_t m = 0; m < base.memory_digests.size(); ++m)
    EXPECT_EQ(base.memory_digests[m], res.memory_digests[m])
        << "memory copy " << m;
}

TEST(Supervisor, RestartBackoffIsJitteredCappedAndDeterministic) {
  RecoveryConfig rc;
  rc.backoff_ms = 100;
  rc.backoff_cap_ms = 5'000;
  for (std::size_t attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t base = std::min<std::uint64_t>(
        rc.backoff_ms << std::min<std::size_t>(attempt, 20),
        rc.backoff_cap_ms);
    const std::uint64_t got = restart_backoff_ms(rc, 7, attempt);
    // Jitter stays inside [base/2, base] — anti-stampede without ever
    // shortening the wait below half of the exponential schedule.
    EXPECT_GE(got, base / 2) << "attempt " << attempt;
    EXPECT_LE(got, base) << "attempt " << attempt;
    // Same (seed, attempt) replays the same delay; a different seed
    // lands elsewhere in the window (checked in aggregate below).
    EXPECT_EQ(got, restart_backoff_ms(rc, 7, attempt));
  }
  // Differently-seeded supervisors must actually desynchronise.
  bool any_differ = false;
  for (std::size_t attempt = 0; attempt < 12 && !any_differ; ++attempt)
    any_differ = restart_backoff_ms(rc, 7, attempt) !=
                 restart_backoff_ms(rc, 8, attempt);
  EXPECT_TRUE(any_differ) << "jitter ignores the seed";
  // Degenerate bases pass through unjittered (nothing to spread).
  rc.backoff_ms = 0;
  EXPECT_EQ(restart_backoff_ms(rc, 7, 0), 0u);
  rc.backoff_ms = 1;
  EXPECT_EQ(restart_backoff_ms(rc, 7, 0), 1u);
}

TEST(Supervisor, MaxRestartsZeroFailsFastTyped) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 1, .j = 2, .k = 1};
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = 1;
  cfg.fabric.fault.kill_iteration = 2;
  ASSERT_EQ(cfg.recovery.max_restarts, 0u);  // the fail-fast default
  try {
    (void)train_supervised(cfg, g);
    FAIL() << "expected FabricError";
  } catch (const dist::FabricError& e) {
    EXPECT_EQ(e.code(), dist::FabricErrc::kInjectedFault);
  }
}

TEST(Supervisor, KilledRunResumesBitwiseOnThreadFabric) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 1, .j = 2, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.recovery.checkpoint_dir = fresh_dir("thread_resume");
  cfg.recovery.checkpoint_every = 3;
  cfg.recovery.max_restarts = 2;
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = 1;
  cfg.fabric.fault.kill_iteration = 5;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.resume_stems.size(), 1u);
  EXPECT_EQ(sup.resume_stems[0],
            snapshot_stem(cfg.recovery.checkpoint_dir, 3));
  ASSERT_EQ(sup.failures.size(), 1u);
  EXPECT_NE(sup.failures[0].find("injected"), std::string::npos);
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, ScratchRestartWhenNoSnapshotExists) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.recovery.checkpoint_dir = fresh_dir("scratch");
  cfg.recovery.checkpoint_every = 100;  // never reached before the kill
  cfg.recovery.max_restarts = 1;
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = 0;
  cfg.fabric.fault.kill_iteration = 2;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.resume_stems.size(), 1u);
  EXPECT_TRUE(sup.resume_stems[0].empty()) << sup.resume_stems[0];
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, CorruptLatestSnapshotFallsBackToPrevious) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 1, .j = 2, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.recovery.checkpoint_dir = fresh_dir("corrupt_latest");
  cfg.recovery.checkpoint_every = 2;  // snapshots at 2, 4 (keep_last=2)
  cfg.recovery.max_restarts = 1;
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = 0;
  cfg.fabric.fault.kill_iteration = 5;
  cfg.fabric.fault.corrupt_latest_checkpoint = true;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.resume_stems.size(), 1u);
  EXPECT_EQ(sup.resume_stems[0],
            snapshot_stem(cfg.recovery.checkpoint_dir, 2));
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, KilledProcessRankResumesBitwise) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kProc;
  cfg.fabric.timeout_ms = 2'000;  // surviving ranks fail fast
  cfg.recovery.checkpoint_dir = fresh_dir("proc_resume");
  cfg.recovery.checkpoint_every = 3;
  cfg.recovery.max_restarts = 2;
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = 1;  // SIGKILLs itself mid-run
  cfg.fabric.fault.kill_iteration = 4;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.resume_stems.size(), 1u);
  EXPECT_EQ(sup.resume_stems[0],
            snapshot_stem(cfg.recovery.checkpoint_dir, 3));
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, HungRankCaughtByHeartbeatAndRecovered) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kProc;
  cfg.fabric.timeout_ms = 5'000;  // heartbeat must win, not the shm timeout
  cfg.recovery.heartbeat_ms = 50;
  cfg.recovery.heartbeat_timeout_ms = 400;
  cfg.recovery.max_restarts = 1;
  cfg.fabric.fault.stall_armed = true;
  cfg.fabric.fault.stall_rank = 0;
  cfg.fabric.fault.stall_iteration = 2;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.failures.size(), 1u);
  EXPECT_NE(sup.failures[0].find("heartbeat"), std::string::npos)
      << sup.failures[0];
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, FsyncBoundCheckpointIsNotAFalseHeartbeatLoss) {
  // A snapshot write longer than the heartbeat timeout must not read as
  // a hung rank: every rank announces the save (pre-write
  // kCheckpointNote), which extends its grace window in ProcGroup::wait.
  // Without the note, this config SIGKILLed a healthy group mid-fsync.
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kProc;
  cfg.recovery.checkpoint_dir = fresh_dir("slow_save");
  cfg.recovery.checkpoint_every = 3;
  cfg.recovery.heartbeat_ms = 50;
  cfg.recovery.heartbeat_timeout_ms = 400;
  cfg.recovery.checkpoint_grace_ms = 5'000;  // explicit knob
  cfg.fabric.fault.slow_save_ms = 1'200;     // 3x the heartbeat timeout

  const ThreadedTrainResult res = train_distributed(cfg, g, nullptr);
  expect_bitwise_equal(base, res);
}

TEST(Supervisor, CheckpointGraceDoesNotMaskARealStall) {
  // The grace is scoped to announced saves, not a blanket widening: a
  // rank that hangs in its iteration loop (last frame = plain heartbeat,
  // which clears any grace) is still caught at the beat cadence even
  // with checkpointing and slow saves active in the same run.
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kProc;
  cfg.fabric.timeout_ms = 5'000;  // heartbeat must win, not the shm timeout
  cfg.recovery.checkpoint_dir = fresh_dir("grace_stall");
  cfg.recovery.checkpoint_every = 3;
  cfg.recovery.heartbeat_ms = 50;
  cfg.recovery.heartbeat_timeout_ms = 400;
  cfg.recovery.max_restarts = 1;
  cfg.fabric.fault.slow_save_ms = 600;  // saves outlive the beat timeout
  cfg.fabric.fault.stall_armed = true;
  cfg.fabric.fault.stall_rank = 0;
  cfg.fabric.fault.stall_iteration = 4;  // after the iteration-3 snapshot

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.failures.size(), 1u);
  EXPECT_NE(sup.failures[0].find("heartbeat"), std::string::npos)
      << sup.failures[0];
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, KilledTcpRankResumesBitwise) {
  // The supervisor loop is fabric-agnostic: an injected SIGKILL on the
  // TCP fabric (which also severs the leader ring) restarts and resumes
  // bitwise from the latest snapshot, same as the process fabric.
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kTcp;
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.timeout_ms = 2'000;  // surviving ranks fail fast
  cfg.recovery.checkpoint_dir = fresh_dir("tcp_resume");
  cfg.recovery.checkpoint_every = 3;
  cfg.recovery.max_restarts = 2;
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = 1;
  cfg.fabric.fault.kill_iteration = 4;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);
  ASSERT_EQ(sup.resume_stems.size(), 1u);
  EXPECT_EQ(sup.resume_stems[0],
            snapshot_stem(cfg.recovery.checkpoint_dir, 3));
  expect_bitwise_equal(base, sup.result);
}

TEST(Supervisor, HungRankFailsTypedWithoutRestartBudget) {
  TemporalGraph g = recovery_graph();
  TrainingConfig cfg = recovery_config();
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  cfg.fabric.kind = FabricKind::kProc;
  cfg.fabric.timeout_ms = 5'000;
  cfg.recovery.heartbeat_ms = 50;
  cfg.recovery.heartbeat_timeout_ms = 400;
  cfg.fabric.fault.stall_armed = true;
  cfg.fabric.fault.stall_rank = 1;
  cfg.fabric.fault.stall_iteration = 2;
  try {
    (void)train_supervised(cfg, g);
    FAIL() << "expected FabricError";
  } catch (const dist::FabricError& e) {
    EXPECT_EQ(e.code(), dist::FabricErrc::kHeartbeatLost);
  }
}

}  // namespace
}  // namespace disttgl
