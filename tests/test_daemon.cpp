// Memory daemon (Algorithm 1): serialized order, WAR-hazard avoidance,
// epoch resets, and concurrency stress — re-verified under the
// zero-copy protocol (trainer-owned slice/write buffers lent to the
// daemon through pointer-carrying slots).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "memory/daemon.hpp"

namespace disttgl {
namespace {

// Runs `fn(rank)` on group_size threads and joins.
template <typename Fn>
void run_trainers(std::size_t group_size, Fn&& fn) {
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < group_size; ++r)
    threads.emplace_back([&fn, r] { fn(r); });
  for (auto& t : threads) t.join();
}

MemoryWrite make_write(NodeId node, float value, std::size_t mem_dim,
                       std::size_t mail_dim, float ts) {
  MemoryWrite w;
  w.nodes = {node};
  w.mem = Matrix(1, mem_dim, value);
  w.mem_ts = {ts};
  w.mail = Matrix(1, mail_dim, value);
  w.mail_ts = {ts};
  return w;
}

TEST(Daemon, SerializesRoundRobinBrackets) {
  // i=2, j=2 → expected trace (R0R1)(W0W1)(R2R3)(W2W3)(R0R1)(W0W1)…
  MemoryState state(8, 2, 3);
  DaemonConfig cfg;
  cfg.i = 2;
  cfg.j = 2;
  cfg.reset_before_round = {1, 0, 0, 0};  // 4 rounds
  MemoryDaemon daemon(state, cfg);
  daemon.enable_trace();
  daemon.start();

  run_trainers(4, [&](std::size_t rank) {
    const std::size_t sub = rank / 2;  // subgroup
    for (std::size_t round = sub; round < 4; round += 2) {
      std::vector<NodeId> nodes = {static_cast<NodeId>(rank)};
      daemon.read(rank, nodes);
      daemon.write(rank, make_write(static_cast<NodeId>(rank), 1.0f, 2, 3,
                                    static_cast<float>(round)));
    }
  });
  daemon.join();

  const auto trace = daemon.trace();
  ASSERT_EQ(trace.size(), 16u);  // 4 rounds × (2 reads + 2 writes)
  const std::vector<std::string> expected = {
      "R0", "R1", "W0", "W1", "R2", "R3", "W2", "W3",
      "R0", "R1", "W0", "W1", "R2", "R3", "W2", "W3"};
  EXPECT_EQ(trace, expected);
}

TEST(Daemon, ReadsSeePreviousRoundsWrites) {
  // j=2, i=1: rank 0 writes value v at round 2t; rank 1 reads at round
  // 2t+1 and must observe exactly rank 0's latest write.
  MemoryState state(4, 2, 2);
  DaemonConfig cfg;
  cfg.i = 1;
  cfg.j = 2;
  const std::size_t rounds = 6;
  cfg.reset_before_round.assign(rounds, 0);
  cfg.reset_before_round[0] = 1;
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  std::vector<float> observed;
  run_trainers(2, [&](std::size_t rank) {
    for (std::size_t round = rank; round < rounds; round += 2) {
      if (rank == 0) {
        daemon.read(0, std::vector<NodeId>{0});
        daemon.write(0, make_write(0, static_cast<float>(round + 1), 2, 2, 1.0f));
      } else {
        MemorySlice s = daemon.read(1, std::vector<NodeId>{0});
        observed.push_back(s.mem(0, 0));
        daemon.write(1, MemoryWrite{{}, Matrix(0, 2), {}, Matrix(0, 2), {}});
      }
    }
  });
  daemon.join();
  // Rank 1 reads at rounds 1,3,5 observe writes from rounds 0,2,4.
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_FLOAT_EQ(observed[0], 1.0f);
  EXPECT_FLOAT_EQ(observed[1], 3.0f);
  EXPECT_FLOAT_EQ(observed[2], 5.0f);
}

TEST(Daemon, WarHazardAvoided) {
  // Within one round, both trainers of a subgroup must read the state
  // BEFORE either's write applies (the WAR guarantee of §3.2.1).
  MemoryState state(2, 1, 1);
  DaemonConfig cfg;
  cfg.i = 2;
  cfg.j = 1;
  cfg.reset_before_round = {1, 0};
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  // Round 0: both write 7 to node 0; round 1: both read. If reads of
  // round 0 had seen writes of round 0 the observed round-0 values would
  // be 7 already.
  std::vector<float> round0(2), round1(2);
  run_trainers(2, [&](std::size_t rank) {
    MemorySlice s = daemon.read(rank, std::vector<NodeId>{0});
    round0[rank] = s.mem(0, 0);
    daemon.write(rank, make_write(0, 7.0f, 1, 1, 1.0f));
    s = daemon.read(rank, std::vector<NodeId>{0});
    round1[rank] = s.mem(0, 0);
    daemon.write(rank, make_write(0, 9.0f, 1, 1, 2.0f));
  });
  daemon.join();
  EXPECT_FLOAT_EQ(round0[0], 0.0f);
  EXPECT_FLOAT_EQ(round0[1], 0.0f);
  EXPECT_FLOAT_EQ(round1[0], 7.0f);
  EXPECT_FLOAT_EQ(round1[1], 7.0f);
}

TEST(Daemon, EpochResetZeroesState) {
  MemoryState state(2, 1, 1);
  DaemonConfig cfg;
  cfg.i = 1;
  cfg.j = 1;
  cfg.reset_before_round = {1, 0, 1};  // reset before rounds 0 and 2
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  std::vector<float> seen(3);
  run_trainers(1, [&](std::size_t) {
    for (int round = 0; round < 3; ++round) {
      MemorySlice s = daemon.read(0, std::vector<NodeId>{0});
      seen[round] = s.mem(0, 0);
      daemon.write(0, make_write(0, 5.0f, 1, 1, 1.0f));
    }
  });
  daemon.join();
  EXPECT_FLOAT_EQ(seen[0], 0.0f);
  EXPECT_FLOAT_EQ(seen[1], 5.0f);  // no reset before round 1
  EXPECT_FLOAT_EQ(seen[2], 0.0f);  // reset before round 2
}

// The zero-copy path: each trainer keeps ONE MemorySlice and ONE
// MemoryWrite for the whole run; the daemon gathers into / applies from
// them directly. The serialized trace must still obey the (R…R)(W…W)
// bracket order of Algorithm 1, and every recycled slice must be
// bit-exactly what a fresh allocating read would have produced.
TEST(Daemon, ZeroCopyRecycledSlicesMatchFreshAndKeepBracketOrder) {
  MemoryState state(8, 2, 3);
  MemoryState shadow(8, 2, 3);  // serial replica for fresh-slice reference
  DaemonConfig cfg;
  cfg.i = 2;
  cfg.j = 2;
  cfg.reset_before_round = {1, 0, 0, 0, 0, 0, 0, 0};  // 8 rounds
  MemoryDaemon daemon(state, cfg);
  daemon.enable_trace();
  daemon.start();

  // Per-rank recycled buffers + captured slice bytes per round.
  std::vector<std::vector<MemorySlice>> seen(4);
  run_trainers(4, [&](std::size_t rank) {
    const std::size_t sub = rank / 2;
    MemorySlice slice;  // recycled across all rounds
    MemoryWrite write;  // recycled across all rounds
    for (std::size_t round = sub; round < 8; round += 2) {
      // Vary the request size so the recycled buffers shrink and grow.
      std::vector<NodeId> nodes;
      for (std::size_t x = 0; x <= (round + rank) % 3; ++x)
        nodes.push_back(static_cast<NodeId>((rank + x) % 8));
      daemon.read(rank, nodes, slice);
      seen[rank].push_back(slice);  // copy for later comparison
      write = make_write(static_cast<NodeId>(rank),
                         static_cast<float>(round + 1), 2, 3,
                         static_cast<float>(round));
      daemon.write(rank, write);
    }
  });
  daemon.join();

  // Bracket order: rounds alternate subgroups {0,1} and {2,3}.
  // (Expected entries built via insert to dodge GCC 12's -Wrestrict
  // false positive on `"R" + std::to_string(r)`, as in daemon.cpp.)
  const auto op = [](char tag, std::size_t rank) {
    std::string s = std::to_string(rank);
    s.insert(s.begin(), tag);
    return s;
  };
  const auto trace = daemon.trace();
  ASSERT_EQ(trace.size(), 32u);  // 8 rounds × (2 reads + 2 writes)
  for (std::size_t round = 0; round < 8; ++round) {
    const std::size_t base = (round % 2) * 2;
    const auto* t = &trace[round * 4];
    EXPECT_EQ(t[0], op('R', base));
    EXPECT_EQ(t[1], op('R', base + 1));
    EXPECT_EQ(t[2], op('W', base));
    EXPECT_EQ(t[3], op('W', base + 1));
  }

  // Replay the same serialized schedule against the shadow state with
  // fresh allocating reads; every recycled slice must match bit-exactly.
  std::vector<std::size_t> next(4, 0);
  std::vector<std::size_t> round_of(4);
  for (std::size_t rank = 0; rank < 4; ++rank) round_of[rank] = rank / 2;
  shadow.reset();
  for (std::size_t round = 0; round < 8; ++round) {
    const std::size_t base = (round % 2) * 2;
    for (std::size_t rank = base; rank < base + 2; ++rank) {
      std::vector<NodeId> nodes;
      for (std::size_t x = 0; x <= (round + rank) % 3; ++x)
        nodes.push_back(static_cast<NodeId>((rank + x) % 8));
      const MemorySlice fresh = shadow.read(nodes);
      const MemorySlice& recycled = seen[rank][next[rank]++];
      ASSERT_EQ(recycled.size(), fresh.size());
      EXPECT_EQ(0, std::memcmp(recycled.mem.data(), fresh.mem.data(),
                               fresh.mem.size() * sizeof(float)));
      EXPECT_EQ(recycled.mem_ts, fresh.mem_ts);
      EXPECT_EQ(0, std::memcmp(recycled.mail.data(), fresh.mail.data(),
                               fresh.mail.size() * sizeof(float)));
      EXPECT_EQ(recycled.mail_ts, fresh.mail_ts);
      EXPECT_EQ(recycled.has_mail, fresh.has_mail);
    }
    for (std::size_t rank = base; rank < base + 2; ++rank) {
      shadow.write(make_write(static_cast<NodeId>(rank),
                              static_cast<float>(round + 1), 2, 3,
                              static_cast<float>(round)));
    }
  }
}

// A daemon given a gather pool must produce the same serialized
// behaviour (parallel_for fan-out is bit-identical and ordering is
// unchanged because the daemon still serves slots one at a time).
TEST(Daemon, GatherPoolKeepsProtocolSemantics) {
  MemoryState state(4096, 3, 2);
  {
    MemoryWrite w;
    for (NodeId v = 0; v < 4096; v += 2) w.nodes.push_back(v);
    const std::size_t n = w.nodes.size();
    w.mem.resize(n, 3, 1.25f);
    w.mem_ts.assign(n, 1.0f);
    w.mail.resize(n, 2, -0.5f);
    w.mail_ts.assign(n, 1.5f);
    state.write(w);
  }
  MemoryState reference = state;

  ThreadPool pool(3);
  DaemonConfig cfg;
  cfg.i = 1;
  cfg.j = 1;
  cfg.reset_before_round = {0, 0};
  cfg.gather_pool = &pool;
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  std::vector<NodeId> nodes(3000);
  for (std::size_t x = 0; x < nodes.size(); ++x)
    nodes[x] = static_cast<NodeId>((x * 7) % 4096);
  run_trainers(1, [&](std::size_t) {
    MemorySlice slice;
    MemoryWrite write;
    for (std::size_t round = 0; round < 2; ++round) {
      daemon.read(0, nodes, slice);
      const MemorySlice fresh = reference.read(nodes);
      EXPECT_EQ(0, std::memcmp(slice.mem.data(), fresh.mem.data(),
                               fresh.mem.size() * sizeof(float)));
      EXPECT_EQ(slice.has_mail, fresh.has_mail);
      write = make_write(0, static_cast<float>(round), 3, 2, 1.0f);
      daemon.write(0, write);
      reference.write(write);
    }
  });
  daemon.join();
}

TEST(Daemon, StressManyRoundsStaysConsistent) {
  // Single subgroup of 4, many rounds: the final value must equal the
  // highest-rank trainer's last write (rank-ordered writes).
  MemoryState state(1, 1, 1);
  DaemonConfig cfg;
  cfg.i = 4;
  cfg.j = 1;
  const std::size_t rounds = 200;
  cfg.reset_before_round.assign(rounds, 0);
  cfg.reset_before_round[0] = 1;
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  run_trainers(4, [&](std::size_t rank) {
    for (std::size_t round = 0; round < rounds; ++round) {
      daemon.read(rank, std::vector<NodeId>{0});
      daemon.write(rank, make_write(0, static_cast<float>(rank * 1000 + round),
                                    1, 1, 1.0f));
    }
  });
  daemon.join();
  EXPECT_FLOAT_EQ(state.read(std::vector<NodeId>{0}).mem(0, 0),
                  3000.0f + (rounds - 1));
}

TEST(Daemon, ZeroSpinBudgetCompletes) {
  // spin_polls = 0 parks every slot wait immediately — the regression
  // for the hoisted spin→park threshold: every wake path must issue a
  // real futex wake, not rely on waiters re-polling.
  MemoryState state(8, 2, 2);
  DaemonConfig cfg;
  cfg.i = 2;
  cfg.j = 2;
  const std::size_t rounds = 20;
  cfg.reset_before_round.assign(rounds, 0);
  cfg.reset_before_round[0] = 1;
  cfg.wait = WaitPolicy{.spin_polls = 0};
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  run_trainers(4, [&](std::size_t rank) {
    const std::size_t sub = rank / 2;
    for (std::size_t round = sub; round < rounds; round += 2) {
      daemon.read(rank, std::vector<NodeId>{static_cast<NodeId>(rank)});
      daemon.write(rank, make_write(static_cast<NodeId>(rank),
                                    static_cast<float>(round), 2, 2, 1.0f));
    }
  });
  daemon.join();
  // Rank 3's last write (round 19) must land; completion is the point.
  EXPECT_FLOAT_EQ(state.read(std::vector<NodeId>{3}).mem(0, 0), 19.0f);
}

}  // namespace
}  // namespace disttgl
