// Memory daemon (Algorithm 1): serialized order, WAR-hazard avoidance,
// epoch resets, and concurrency stress.
#include <gtest/gtest.h>

#include <thread>

#include "memory/daemon.hpp"

namespace disttgl {
namespace {

// Runs `fn(rank)` on group_size threads and joins.
template <typename Fn>
void run_trainers(std::size_t group_size, Fn&& fn) {
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < group_size; ++r)
    threads.emplace_back([&fn, r] { fn(r); });
  for (auto& t : threads) t.join();
}

MemoryWrite make_write(NodeId node, float value, std::size_t mem_dim,
                       std::size_t mail_dim, float ts) {
  MemoryWrite w;
  w.nodes = {node};
  w.mem = Matrix(1, mem_dim, value);
  w.mem_ts = {ts};
  w.mail = Matrix(1, mail_dim, value);
  w.mail_ts = {ts};
  return w;
}

TEST(Daemon, SerializesRoundRobinBrackets) {
  // i=2, j=2 → expected trace (R0R1)(W0W1)(R2R3)(W2W3)(R0R1)(W0W1)…
  MemoryState state(8, 2, 3);
  DaemonConfig cfg;
  cfg.i = 2;
  cfg.j = 2;
  cfg.reset_before_round = {1, 0, 0, 0};  // 4 rounds
  MemoryDaemon daemon(state, cfg);
  daemon.enable_trace();
  daemon.start();

  run_trainers(4, [&](std::size_t rank) {
    const std::size_t sub = rank / 2;  // subgroup
    for (std::size_t round = sub; round < 4; round += 2) {
      std::vector<NodeId> nodes = {static_cast<NodeId>(rank)};
      daemon.read(rank, nodes);
      daemon.write(rank, make_write(static_cast<NodeId>(rank), 1.0f, 2, 3,
                                    static_cast<float>(round)));
    }
  });
  daemon.join();

  const auto trace = daemon.trace();
  ASSERT_EQ(trace.size(), 16u);  // 4 rounds × (2 reads + 2 writes)
  const std::vector<std::string> expected = {
      "R0", "R1", "W0", "W1", "R2", "R3", "W2", "W3",
      "R0", "R1", "W0", "W1", "R2", "R3", "W2", "W3"};
  EXPECT_EQ(trace, expected);
}

TEST(Daemon, ReadsSeePreviousRoundsWrites) {
  // j=2, i=1: rank 0 writes value v at round 2t; rank 1 reads at round
  // 2t+1 and must observe exactly rank 0's latest write.
  MemoryState state(4, 2, 2);
  DaemonConfig cfg;
  cfg.i = 1;
  cfg.j = 2;
  const std::size_t rounds = 6;
  cfg.reset_before_round.assign(rounds, 0);
  cfg.reset_before_round[0] = 1;
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  std::vector<float> observed;
  run_trainers(2, [&](std::size_t rank) {
    for (std::size_t round = rank; round < rounds; round += 2) {
      if (rank == 0) {
        daemon.read(0, std::vector<NodeId>{0});
        daemon.write(0, make_write(0, static_cast<float>(round + 1), 2, 2, 1.0f));
      } else {
        MemorySlice s = daemon.read(1, std::vector<NodeId>{0});
        observed.push_back(s.mem(0, 0));
        daemon.write(1, MemoryWrite{{}, Matrix(0, 2), {}, Matrix(0, 2), {}});
      }
    }
  });
  daemon.join();
  // Rank 1 reads at rounds 1,3,5 observe writes from rounds 0,2,4.
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_FLOAT_EQ(observed[0], 1.0f);
  EXPECT_FLOAT_EQ(observed[1], 3.0f);
  EXPECT_FLOAT_EQ(observed[2], 5.0f);
}

TEST(Daemon, WarHazardAvoided) {
  // Within one round, both trainers of a subgroup must read the state
  // BEFORE either's write applies (the WAR guarantee of §3.2.1).
  MemoryState state(2, 1, 1);
  DaemonConfig cfg;
  cfg.i = 2;
  cfg.j = 1;
  cfg.reset_before_round = {1, 0};
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  // Round 0: both write 7 to node 0; round 1: both read. If reads of
  // round 0 had seen writes of round 0 the observed round-0 values would
  // be 7 already.
  std::vector<float> round0(2), round1(2);
  run_trainers(2, [&](std::size_t rank) {
    MemorySlice s = daemon.read(rank, std::vector<NodeId>{0});
    round0[rank] = s.mem(0, 0);
    daemon.write(rank, make_write(0, 7.0f, 1, 1, 1.0f));
    s = daemon.read(rank, std::vector<NodeId>{0});
    round1[rank] = s.mem(0, 0);
    daemon.write(rank, make_write(0, 9.0f, 1, 1, 2.0f));
  });
  daemon.join();
  EXPECT_FLOAT_EQ(round0[0], 0.0f);
  EXPECT_FLOAT_EQ(round0[1], 0.0f);
  EXPECT_FLOAT_EQ(round1[0], 7.0f);
  EXPECT_FLOAT_EQ(round1[1], 7.0f);
}

TEST(Daemon, EpochResetZeroesState) {
  MemoryState state(2, 1, 1);
  DaemonConfig cfg;
  cfg.i = 1;
  cfg.j = 1;
  cfg.reset_before_round = {1, 0, 1};  // reset before rounds 0 and 2
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  std::vector<float> seen(3);
  run_trainers(1, [&](std::size_t) {
    for (int round = 0; round < 3; ++round) {
      MemorySlice s = daemon.read(0, std::vector<NodeId>{0});
      seen[round] = s.mem(0, 0);
      daemon.write(0, make_write(0, 5.0f, 1, 1, 1.0f));
    }
  });
  daemon.join();
  EXPECT_FLOAT_EQ(seen[0], 0.0f);
  EXPECT_FLOAT_EQ(seen[1], 5.0f);  // no reset before round 1
  EXPECT_FLOAT_EQ(seen[2], 0.0f);  // reset before round 2
}

TEST(Daemon, StressManyRoundsStaysConsistent) {
  // Single subgroup of 4, many rounds: the final value must equal the
  // highest-rank trainer's last write (rank-ordered writes).
  MemoryState state(1, 1, 1);
  DaemonConfig cfg;
  cfg.i = 4;
  cfg.j = 1;
  const std::size_t rounds = 200;
  cfg.reset_before_round.assign(rounds, 0);
  cfg.reset_before_round[0] = 1;
  MemoryDaemon daemon(state, cfg);
  daemon.start();

  run_trainers(4, [&](std::size_t rank) {
    for (std::size_t round = 0; round < rounds; ++round) {
      daemon.read(rank, std::vector<NodeId>{0});
      daemon.write(rank, make_write(0, static_cast<float>(rank * 1000 + round),
                                    1, 1, 1.0f));
    }
  });
  daemon.join();
  EXPECT_FLOAT_EQ(state.read(std::vector<NodeId>{0}).mem(0, 0),
                  3000.0f + (rounds - 1));
}

}  // namespace
}  // namespace disttgl
