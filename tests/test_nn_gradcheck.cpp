// Finite-difference gradient checks for every layer's hand-written
// backward pass — parameters and inputs. These pin the numerics of the
// whole training stack.
#include <gtest/gtest.h>

#include <functional>

#include "nn/attention.hpp"
#include "nn/gru_cell.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/predictor.hpp"
#include "nn/time_encoding.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace disttgl {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng, float scale = 1.0f) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal()) * scale;
  return m;
}

// Weighted-sum scalar head so dL/dy is a fixed random matrix.
float weighted_sum(const Matrix& y, const Matrix& w) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < y.size(); ++i) acc += y.data()[i] * w.data()[i];
  return acc;
}

// Checks every entry of `param.grad` against central differences of
// `loss_fn` (which must re-run the forward pass from scratch).
void check_param_grads(nn::Parameter& param, const std::function<float()>& loss_fn,
                       float eps = 1e-2f, float tol = 2e-2f) {
  for (std::size_t i = 0; i < param.value.size(); ++i) {
    const float orig = param.value.data()[i];
    param.value.data()[i] = orig + eps;
    const float lp = loss_fn();
    param.value.data()[i] = orig - eps;
    const float lm = loss_fn();
    param.value.data()[i] = orig;
    const float fd = (lp - lm) / (2 * eps);
    const float an = param.grad.data()[i];
    const float denom = std::max({std::abs(fd), std::abs(an), 1.0f});
    ASSERT_NEAR(an / denom, fd / denom, tol)
        << param.name << " entry " << i << " analytic=" << an << " fd=" << fd;
  }
}

void check_input_grads(Matrix& input, const Matrix& analytic,
                       const std::function<float()>& loss_fn, float eps = 1e-2f,
                       float tol = 2e-2f) {
  ASSERT_TRUE(input.same_shape(analytic));
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const float lp = loss_fn();
    input.data()[i] = orig - eps;
    const float lm = loss_fn();
    input.data()[i] = orig;
    const float fd = (lp - lm) / (2 * eps);
    const float an = analytic.data()[i];
    const float denom = std::max({std::abs(fd), std::abs(an), 1.0f});
    ASSERT_NEAR(an / denom, fd / denom, tol)
        << "input entry " << i << " analytic=" << an << " fd=" << fd;
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  nn::Linear layer("lin", 4, 3, rng);
  Matrix x = random_matrix(5, 4, rng);
  Matrix dy = random_matrix(5, 3, rng);

  auto loss_fn = [&] { return weighted_sum(layer.forward(x), dy); };

  nn::Linear::Ctx ctx;
  Matrix y = layer.forward(x, &ctx);
  layer.zero_grad();
  Matrix dx = layer.backward(ctx, dy);

  check_param_grads(layer.weight(), loss_fn);
  check_param_grads(layer.bias(), loss_fn);
  check_input_grads(x, dx, loss_fn);
}

TEST(GradCheck, TimeEncoding) {
  Rng rng(2);
  nn::TimeEncoding enc("te", 6);
  std::vector<float> dt = {0.0f, 0.5f, 2.0f, 7.5f};
  Matrix dy = random_matrix(4, 6, rng);

  auto loss_fn = [&] { return weighted_sum(enc.forward(dt), dy); };

  nn::TimeEncoding::Ctx ctx;
  enc.forward(dt, &ctx);
  enc.zero_grad();
  enc.backward(ctx, dy);

  auto params = enc.parameters();
  for (nn::Parameter* p : params) check_param_grads(*p, loss_fn);
}

TEST(GradCheck, GRUCell) {
  Rng rng(3);
  nn::GRUCell cell("gru", 5, 4, rng);
  Matrix x = random_matrix(6, 5, rng);
  Matrix h = random_matrix(6, 4, rng);
  Matrix dy = random_matrix(6, 4, rng);

  auto loss_fn = [&] { return weighted_sum(cell.forward(x, h), dy); };

  nn::GRUCell::Ctx ctx;
  cell.forward(x, h, &ctx);
  cell.zero_grad();
  auto grads = cell.backward(ctx, dy);

  for (nn::Parameter* p : cell.parameters()) check_param_grads(*p, loss_fn);
  check_input_grads(x, grads.dx, loss_fn);
  check_input_grads(h, grads.dh, loss_fn);
}

TEST(GradCheck, TemporalAttention) {
  Rng rng(4);
  nn::AttentionDims dims;
  dims.node_dim = 5;
  dims.edge_dim = 3;
  dims.time_dim = 4;
  dims.attn_dim = 6;
  dims.out_dim = 4;
  dims.num_heads = 2;
  dims.max_neighbors = 3;
  nn::TemporalAttention attn("attn", dims, rng);

  const std::size_t n = 4, K = 3;
  Matrix node = random_matrix(n, dims.node_dim, rng);
  Matrix neigh = random_matrix(n * K, dims.node_dim, rng);
  Matrix edge = random_matrix(n * K, dims.edge_dim, rng);
  std::vector<float> dt = {0.1f, 0.2f, 0.3f, 1.0f, 2.0f, 0.0f,
                           0.5f, 0.6f, 0.7f, 3.0f, 0.0f, 0.0f};
  std::vector<std::size_t> valid = {3, 2, 3, 0};  // includes isolated root
  Matrix dy = random_matrix(n, dims.out_dim, rng);

  auto loss_fn = [&] {
    nn::TemporalAttention::Ctx c;
    return weighted_sum(attn.forward(node, neigh, edge, dt, valid, &c), dy);
  };

  nn::TemporalAttention::Ctx ctx;
  attn.forward(node, neigh, edge, dt, valid, &ctx);
  attn.zero_grad();
  auto grads = attn.backward(ctx, dy);

  for (nn::Parameter* p : attn.parameters())
    check_param_grads(*p, loss_fn, 1e-2f, 3e-2f);
  check_input_grads(node, grads.dnode_repr, loss_fn, 1e-2f, 3e-2f);
  // Only valid neighbor slots receive gradients; invalid slots must be 0.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = valid[r]; k < K; ++k)
      for (std::size_t c = 0; c < dims.node_dim; ++c)
        ASSERT_FLOAT_EQ(grads.dneigh_repr(r * K + k, c), 0.0f);
  check_input_grads(neigh, grads.dneigh_repr, loss_fn, 1e-2f, 3e-2f);
}

TEST(GradCheck, EdgePredictor) {
  Rng rng(5);
  nn::EdgePredictor pred("pred", 4, 6, rng);
  Matrix src = random_matrix(5, 4, rng);
  Matrix dst = random_matrix(5, 4, rng);
  Matrix dy = random_matrix(5, 1, rng);

  auto loss_fn = [&] {
    nn::EdgePredictor::Ctx c;
    return weighted_sum(pred.forward(src, dst, &c), dy);
  };

  nn::EdgePredictor::Ctx ctx;
  pred.forward(src, dst, &ctx);
  pred.zero_grad();
  auto grads = pred.backward(ctx, dy);
  for (nn::Parameter* p : pred.parameters()) check_param_grads(*p, loss_fn);
  check_input_grads(src, grads.dsrc, loss_fn);
  check_input_grads(dst, grads.ddst, loss_fn);
}

TEST(GradCheck, EdgeClassifier) {
  Rng rng(6);
  nn::EdgeClassifier cls("cls", 4, 5, 7, rng);
  Matrix src = random_matrix(3, 4, rng);
  Matrix dst = random_matrix(3, 4, rng);
  Matrix dy = random_matrix(3, 7, rng);

  auto loss_fn = [&] {
    nn::EdgeClassifier::Ctx c;
    return weighted_sum(cls.forward(src, dst, &c), dy);
  };

  nn::EdgeClassifier::Ctx ctx;
  cls.forward(src, dst, &ctx);
  cls.zero_grad();
  auto grads = cls.backward(ctx, dy);
  for (nn::Parameter* p : cls.parameters()) check_param_grads(*p, loss_fn);
  check_input_grads(src, grads.dsrc, loss_fn);
  check_input_grads(dst, grads.ddst, loss_fn);
}

TEST(GradCheck, LinkPredictionLossGradients) {
  Rng rng(7);
  Matrix pos = random_matrix(4, 1, rng);
  Matrix neg = random_matrix(4, 3, rng);
  Matrix dpos, dneg;
  nn::link_prediction_loss(pos, neg, dpos, dneg);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    Matrix dp, dn;
    pos.data()[i] += eps;
    const float lp = nn::link_prediction_loss(pos, neg, dp, dn);
    pos.data()[i] -= 2 * eps;
    const float lm = nn::link_prediction_loss(pos, neg, dp, dn);
    pos.data()[i] += eps;
    EXPECT_NEAR(dpos.data()[i], (lp - lm) / (2 * eps), 1e-3f);
  }
  for (std::size_t i = 0; i < neg.size(); ++i) {
    Matrix dp, dn;
    neg.data()[i] += eps;
    const float lp = nn::link_prediction_loss(pos, neg, dp, dn);
    neg.data()[i] -= 2 * eps;
    const float lm = nn::link_prediction_loss(pos, neg, dp, dn);
    neg.data()[i] += eps;
    EXPECT_NEAR(dneg.data()[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

TEST(GradCheck, MultilabelBceGradients) {
  Rng rng(8);
  Matrix logits = random_matrix(3, 5, rng);
  Matrix targets(3, 5);
  for (std::size_t i = 0; i < targets.size(); ++i)
    targets.data()[i] = rng.bernoulli(0.4) ? 1.0f : 0.0f;
  Matrix dlogits;
  nn::multilabel_bce_loss(logits, targets, dlogits);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix d;
    logits.data()[i] += eps;
    const float lp = nn::multilabel_bce_loss(logits, targets, d);
    logits.data()[i] -= 2 * eps;
    const float lm = nn::multilabel_bce_loss(logits, targets, d);
    logits.data()[i] += eps;
    EXPECT_NEAR(dlogits.data()[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

}  // namespace
}  // namespace disttgl
