// Sequential orchestrator integration: training improves validation MRR
// on every parallel strategy; parallel configs reduce iteration counts
// 1/n; diagnostics accumulate.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/trainer.hpp"
#include "datagen/generator.hpp"

namespace disttgl {
namespace {

TemporalGraph small_graph() {
  datagen::SynthSpec spec;
  spec.num_src = 40;
  spec.num_dst = 20;
  spec.num_events = 2400;
  spec.edge_feat_dim = 4;
  spec.recurrence = 0.8;
  spec.recency_window = 3;
  spec.preference_sharpness = 6.0;
  spec.seed = 51;
  return datagen::generate(spec);
}

TrainingConfig small_config() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 16;
  cfg.model.time_dim = 8;
  cfg.model.attn_dim = 16;
  cfg.model.emb_dim = 16;
  cfg.model.num_neighbors = 4;
  cfg.model.head_hidden = 16;
  cfg.local_batch = 70;   // 24 batches over the 1680-event train split
  cfg.epochs = 8;
  cfg.base_lr = 5e-3f;
  cfg.seed = 7;
  return cfg;
}

TEST(SequentialTrainer, SingleGpuLearns) {
  TemporalGraph g = small_graph();
  TrainingConfig cfg = small_config();
  SequentialTrainer trainer(cfg, g, nullptr);
  TrainResult res = trainer.train();
  ASSERT_FALSE(res.log.empty());
  const double first = res.log.points().front().val_metric;
  const double best = res.log.best_val();
  EXPECT_GT(best, first + 0.15) << "training must improve validation MRR";
  EXPECT_GT(res.final_test, 0.15);
}

struct ParallelCase {
  std::size_t i, j, k;
};

class ParallelStrategies : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelStrategies, RunsAndLearns) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = small_graph();
  TrainingConfig cfg = small_config();
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;
  validate(cfg);
  SequentialTrainer trainer(cfg, g, nullptr);
  TrainResult res = trainer.train();
  // Iterations reduced ~1/n relative to E*B of single GPU.
  const std::size_t n = i * j * k;
  const std::size_t single_iters = cfg.epochs * trainer.schedule().num_batches * i;
  EXPECT_LE(res.iterations, single_iters / n + j + 1);
  EXPECT_GT(res.log.best_val(), 0.25) << "parallel training still learns";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelStrategies,
    ::testing::Values(ParallelCase{2, 1, 1}, ParallelCase{1, 2, 1},
                      ParallelCase{1, 1, 2}, ParallelCase{1, 2, 2},
                      ParallelCase{2, 2, 1}, ParallelCase{1, 4, 1},
                      ParallelCase{1, 1, 4}, ParallelCase{2, 2, 2}));

TEST(SequentialTrainer, DeterministicAcrossRuns) {
  TemporalGraph g = small_graph();
  TrainingConfig cfg = small_config();
  cfg.epochs = 2;
  SequentialTrainer a(cfg, g, nullptr);
  SequentialTrainer b(cfg, g, nullptr);
  a.train();
  b.train();
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(SequentialTrainer, DiagnosticsAccumulate) {
  TemporalGraph g = small_graph();
  TrainingConfig cfg = small_config();
  cfg.epochs = 2;
  SequentialTrainer trainer(cfg, g, nullptr);
  TrainResult res = trainer.train();
  EXPECT_GT(res.diag.mails_generated, 0u);
  EXPECT_GT(res.diag.mails_kept, 0u);
  EXPECT_LE(res.diag.mails_kept, res.diag.mails_generated);
  EXPECT_GT(res.diag.staleness_count, 0u);
}

TEST(SequentialTrainer, ClassificationTask) {
  datagen::SynthSpec spec;
  spec.num_src = 60;
  spec.num_dst = 0;
  spec.num_events = 2000;
  spec.edge_feat_dim = 4;
  spec.num_classes = 8;
  spec.labels_per_edge = 2;
  spec.seed = 13;
  TemporalGraph g = datagen::generate(spec);
  TrainingConfig cfg = small_config();
  cfg.epochs = 4;
  SequentialTrainer trainer(cfg, g, nullptr);
  TrainResult res = trainer.train();
  ASSERT_FALSE(res.log.empty());
  // F1-micro must beat the random-guess rate (labels_per_edge/classes).
  EXPECT_GT(res.log.best_val(), 2.0 / 8.0 + 0.05);
}

TEST(Baselines, ConfigTransforms) {
  TrainingConfig base = small_config();
  base.model.static_dim = 16;
  base.parallel.j = 4;
  TrainingConfig tgn = tgn_baseline_config(base);
  EXPECT_EQ(tgn.parallel.total_trainers(), 1u);
  EXPECT_EQ(tgn.model.static_dim, 0u);
  TrainingConfig tgl = tgl_baseline_config(base, 8);
  EXPECT_EQ(tgl.parallel.i, 8u);
  EXPECT_EQ(tgl.parallel.j, 1u);
  EXPECT_EQ(tgl.parallel.k, 1u);
}

TEST(Baselines, IterationProfileIsPlausible) {
  TemporalGraph g = small_graph();
  EventSplit split = chronological_split(g);
  ModelConfig mc = small_config().model;
  auto p = make_iteration_profile(mc, g, split, 70, 1, 2);
  EXPECT_EQ(p.local_batch, 70u);
  EXPECT_GT(p.mem_read_bytes, p.mem_write_bytes);
  EXPECT_GT(p.gpu_flops, 1e4);
  EXPECT_GT(p.weight_bytes, 1e3);
}

}  // namespace
}  // namespace disttgl
