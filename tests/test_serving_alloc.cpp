// Allocation-freedom of the steady-state score path: once warm-up has
// grown every recycled buffer to its high-water mark, the full
//
//   request frame → FrameReader → decode → build batch → memory read →
//   infer_into → encode response → frame
//
// loop must never touch the allocator again — serially, and with
// several scorer threads running the same loop concurrently (each on
// its own context, as the ScoreServer's workers do). Same
// counting-global-allocator technique as test_memory_alloc; the
// counter lives in this binary only.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "datagen/generator.hpp"
#include "serving/model_server.hpp"
#include "util/barrier.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace disttgl {
namespace {

using serving::ModelServer;
using serving::ScoreRequest;
using serving::ScoreResponse;
using serving::ServingConfig;
using serving::ServingSnapshot;

struct Fixture {
  TemporalGraph graph;
  ModelConfig cfg;
  ModelServer server;
  // Three differently-shaped pre-encoded request frames, so the
  // recycled buffers shrink and grow across iterations as a real
  // client mix would make them.
  std::vector<std::vector<std::uint8_t>> frames;

  Fixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 50;
          spec.num_dst = 25;
          spec.num_events = 2400;
          spec.edge_feat_dim = 4;
          spec.seed = 29;
          return datagen::generate(spec);
        }()),
        cfg([] {
          ModelConfig c;
          c.mem_dim = 8;
          c.time_dim = 4;
          c.attn_dim = 8;
          c.num_heads = 2;
          c.emb_dim = 8;
          c.num_neighbors = 4;
          c.head_hidden = 8;
          return c;
        }()),
        server(cfg, ServingConfig{}, graph) {
    // One hand-built snapshot: fresh-model weights, lightly patterned
    // memory (contents are irrelevant here — only the path matters).
    Rng rng(41);
    TGNModel probe(cfg, graph, nullptr, rng);
    auto snap = std::make_shared<ServingSnapshot>();
    snap->iteration = 1;
    nn::flatten_values(probe.cached_parameters(), snap->weights);
    snap->states.emplace_back(graph.num_nodes(), cfg.mem_dim,
                              probe.mail_raw_dim());
    server.install_snapshot(std::move(snap));

    const std::size_t spans[][2] = {{0, 200}, {200, 260}, {260, 460}};
    for (const auto& sp : spans) {
      ScoreRequest req;
      req.id = sp[0];
      for (std::size_t i = sp[0]; i < sp[1]; ++i) {
        const TemporalEdge& e = graph.event(static_cast<EdgeId>(i));
        req.src.push_back(e.src);
        req.dst.push_back(e.dst);
        req.ts.push_back(e.ts);
      }
      dist::WireWriter w;
      serving::encode_score_request(req, w);
      std::vector<std::uint8_t> frame;
      dist::encode_frame(dist::MsgType::kScoreRequest, w.bytes(), frame);
      frames.push_back(std::move(frame));
    }
  }
};

// One worker's full in-process request loop over pre-framed bytes —
// exactly what ScoreServer::serve_connection does between the socket
// reads, which is the part with an allocation story to pin
// (read_frame's per-call payload vector is why the FrameReader path is
// the steady-state decode seam).
struct ScoreLoop {
  dist::FrameReader reader;
  dist::Frame frame;
  ScoreRequest req;
  ScoreResponse resp;
  dist::WireWriter writer;
  std::vector<std::uint8_t> out;
  std::unique_ptr<ModelServer::Scorer> scorer;

  explicit ScoreLoop(ModelServer& server) : scorer(server.make_scorer()) {}

  void run_once(const std::vector<std::uint8_t>& request_frame) {
    reader.feed(request_frame);
    ASSERT_TRUE(reader.poll(frame));
    serving::decode_score_request(frame.payload, req);
    scorer->score(req, resp);
    writer.clear();
    serving::encode_score_response(resp, writer);
    out.clear();
    dist::encode_frame(dist::MsgType::kScoreResponse, writer.bytes(), out);
  }
};

constexpr std::size_t kWarmup = 12;
constexpr std::size_t kMeasured = 30;

TEST(ServingAllocationFree, SerialScorePathSteadyState) {
  Fixture fx;
  ScoreLoop loop(fx.server);

  for (std::size_t it = 0; it < kWarmup; ++it)
    loop.run_once(fx.frames[it % fx.frames.size()]);

  const std::size_t before = g_alloc_count.load();
  for (std::size_t it = 0; it < kMeasured; ++it)
    loop.run_once(fx.frames[it % fx.frames.size()]);
  const std::size_t after = g_alloc_count.load();

  EXPECT_EQ(after - before, 0u)
      << "steady-state score path allocated " << (after - before) << " times";
  EXPECT_EQ(loop.scorer->stats().requests, kWarmup + kMeasured);
}

TEST(ServingAllocationFree, ConcurrentScorersSteadyState) {
  Fixture fx;
  constexpr std::size_t kThreads = 3;

  // Warm-up and measurement are phase-separated by barriers so the
  // global counter delta observes only steady-state iterations.
  SpinBarrier barrier(kThreads + 1);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &barrier, t] {
      BarrierToken token(barrier);
      ScoreLoop loop(fx.server);
      for (std::size_t it = 0; it < kWarmup; ++it)
        loop.run_once(fx.frames[(t + it) % fx.frames.size()]);
      ASSERT_TRUE(token.wait());  // warm-up done everywhere
      ASSERT_TRUE(token.wait());  // main thread has sampled the counter
      for (std::size_t it = 0; it < kMeasured; ++it)
        loop.run_once(fx.frames[(t + it) % fx.frames.size()]);
      ASSERT_TRUE(token.wait());  // measurement done everywhere
    });
  }

  BarrierToken token(barrier);
  ASSERT_TRUE(token.wait());
  const std::size_t before = g_alloc_count.load();
  ASSERT_TRUE(token.wait());
  ASSERT_TRUE(token.wait());
  const std::size_t after = g_alloc_count.load();
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(after - before, 0u)
      << "concurrent steady-state score path allocated " << (after - before)
      << " times";
}

}  // namespace
}  // namespace disttgl
