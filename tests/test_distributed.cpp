// Distributed substrate: deterministic allreduce, fabric cost model,
// partitioned-memory traffic (Fig 2b shape), event sim, throughput model
// (Fig 12 shape).
#include <gtest/gtest.h>

#include <thread>

#include "distributed/comm.hpp"
#include "distributed/event_sim.hpp"
#include "distributed/fabric.hpp"
#include "distributed/partition.hpp"
#include "distributed/throughput_model.hpp"

namespace disttgl::dist {
namespace {

TEST(ThreadComm, AllreduceMeanCorrect) {
  const std::size_t n = 4;
  ThreadComm comm(n);
  std::vector<std::vector<float>> data(n, std::vector<float>(8));
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < 8; ++i)
      data[r][i] = static_cast<float>(r * 10 + i);

  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < n; ++r)
    threads.emplace_back([&, r] { comm.allreduce_mean(r, data[r]); });
  for (auto& t : threads) t.join();

  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_FLOAT_EQ(data[r][i], 15.0f + static_cast<float>(i));
  EXPECT_EQ(comm.num_allreduces(), 1u);
  EXPECT_GT(comm.logical_bytes(), 0u);
}

TEST(ThreadComm, RepeatedRoundsDeterministic) {
  const std::size_t n = 3;
  ThreadComm comm(n);
  std::vector<float> results;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<float>> data(n, std::vector<float>(4, 0.0f));
    for (std::size_t r = 0; r < n; ++r) data[r][0] = 0.1f * (r + round);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < n; ++r)
      threads.emplace_back([&, r] { comm.allreduce_mean(r, data[r]); });
    for (auto& t : threads) t.join();
    results.push_back(data[0][0]);
    EXPECT_FLOAT_EQ(data[0][0], data[1][0]);
    EXPECT_FLOAT_EQ(data[0][0], data[2][0]);
  }
  // Re-run and compare bitwise.
  ThreadComm comm2(n);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<float>> data(n, std::vector<float>(4, 0.0f));
    for (std::size_t r = 0; r < n; ++r) data[r][0] = 0.1f * (r + round);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < n; ++r)
      threads.emplace_back([&, r] { comm2.allreduce_mean(r, data[r]); });
    for (auto& t : threads) t.join();
    EXPECT_EQ(data[0][0], results[round]);
  }
}

TEST(ThreadComm, SingleRankIsIdentity) {
  ThreadComm comm(1);
  std::vector<float> data = {1.0f, 2.0f};
  comm.allreduce_mean(0, data);
  EXPECT_FLOAT_EQ(data[0], 1.0f);
}

TEST(Fabric, AllreduceScalesWithRanksAndLink) {
  FabricSpec f;
  const std::size_t mb = 4 << 20;
  const double t2 = allreduce_seconds(f, mb, 2, 1);
  const double t8 = allreduce_seconds(f, mb, 8, 1);
  EXPECT_GT(t8, t2);
  // Cross-machine uses the slower Ethernet path.
  const double t8x = allreduce_seconds(f, mb, 8, 2);
  EXPECT_GT(t8x, 0.0);
  EXPECT_EQ(allreduce_seconds(f, mb, 1, 1), 0.0);
}

TEST(Fabric, HostMemSharing) {
  FabricSpec f;
  EXPECT_NEAR(host_mem_seconds(f, 1 << 20, 4),
              4.0 * host_mem_seconds(f, 1 << 20, 1), 1e-9);
}

TEST(Partition, SingleMachineHasNoRemoteTraffic) {
  FabricSpec f;
  PartitionWorkload w;
  w.num_nodes = 10000;
  w.events_per_epoch = 100000;
  w.batch_size = 600;
  const auto c1 = partitioned_memory_epoch_cost(f, w, 1);
  const auto c2 = partitioned_memory_epoch_cost(f, w, 2);
  const auto c4 = partitioned_memory_epoch_cost(f, w, 4);
  // Fig 2b shape: time grows sharply with machine count.
  EXPECT_GT(c2.total_seconds(), 2.0 * c1.total_seconds());
  EXPECT_GT(c4.total_seconds(), c2.total_seconds());
  EXPECT_GT(c1.read_seconds, c1.write_seconds);  // reads touch support sets
}

TEST(EventSim, OrdersByTimeWithFifoTieBreak) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(3); });  // same t, later seq
  const double end = sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 2.0);
}

TEST(EventSim, CallbacksCanSchedule) {
  EventSim sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.schedule(sim.now() + 1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Timeline, FifoReservation) {
  Timeline tl;
  EXPECT_DOUBLE_EQ(tl.reserve(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.reserve(1.0, 1.0), 3.0);  // queued behind first
  EXPECT_DOUBLE_EQ(tl.reserve(10.0, 1.0), 11.0);  // idle gap
  EXPECT_DOUBLE_EQ(tl.busy_time(), 4.0);
}

IterationProfile wiki_like_profile() {
  // Paper-scale Wikipedia volumes (see bench/paper_profiles.hpp).
  IterationProfile p;
  p.local_batch = 600;
  p.mem_read_bytes = 8.4e6;
  p.mem_write_bytes = 2.3e6;
  p.fetch_bytes = 4.0e5;
  p.feature_bytes = 9.9e6;
  p.gpu_flops = 15.0e9;
  p.weight_bytes = 1.1e6;
  return p;
}

TEST(Throughput, TGNSlowerThanTGLSlowerThanDistTGLOn1Gpu) {
  FabricSpec f;
  const auto profile = wiki_like_profile();
  ParallelPlan one;
  const auto tgn = estimate_throughput(SystemKind::kTGN, f, profile, one);
  const auto tgl = estimate_throughput(SystemKind::kTGL, f, profile, one);
  const auto dist = estimate_throughput(SystemKind::kDistTGL, f, profile, one);
  EXPECT_LT(tgn.events_per_second, tgl.events_per_second);
  EXPECT_LT(tgl.events_per_second, dist.events_per_second);
  // The paper's ~3x TGN→TGL gap at 1 GPU (Fig 12b), loosely.
  EXPECT_GT(tgl.events_per_second / tgn.events_per_second, 1.5);
}

TEST(Throughput, TGLScalesPoorlyDistTGLNearLinear) {
  FabricSpec f;
  const auto profile = wiki_like_profile();
  auto speedup = [&](SystemKind kind, ParallelPlan p8) {
    ParallelPlan one;
    const double t1 =
        estimate_throughput(kind, f, profile, one).events_per_second;
    const double t8 =
        estimate_throughput(kind, f, profile, p8).events_per_second;
    return t8 / t1;
  };
  ParallelPlan tgl8;
  tgl8.i = 8;  // TGL = mini-batch parallelism, one memory copy
  ParallelPlan dist8;
  dist8.k = 8;
  const double s_tgl = speedup(SystemKind::kTGL, tgl8);
  const double s_dist = speedup(SystemKind::kDistTGL, dist8);
  EXPECT_LT(s_tgl, 4.0);  // paper: 2–3× on 8 GPUs
  EXPECT_GT(s_dist, 6.0); // paper: ~7.3× on 8 GPUs
}

TEST(Throughput, MultiMachineMemoryParallelismKeepsScaling) {
  FabricSpec f;
  const auto profile = wiki_like_profile();
  ParallelPlan p32;
  p32.k = 32;
  p32.machines = 4;
  const auto est = estimate_throughput(SystemKind::kDistTGL, f, profile, p32);
  ParallelPlan one;
  const auto base = estimate_throughput(SystemKind::kDistTGL, f, profile, one);
  EXPECT_GT(est.events_per_second / base.events_per_second, 16.0);
}

TEST(Throughput, MemoryCopiesShareHostBandwidth) {
  // Large-batch profile (GDELT-like): k=8 daemons on one machine contend
  // on DRAM; spreading the same k across 4 machines relieves it.
  FabricSpec f;
  IterationProfile p = wiki_like_profile();
  p.local_batch = 3200;
  p.mem_read_bytes = 6.0e7;
  p.mem_write_bytes = 2.0e7;
  p.gpu_flops = 1.0e10;
  ParallelPlan k8_1m;
  k8_1m.k = 8;
  ParallelPlan k8_4m;
  k8_4m.k = 8;
  k8_4m.machines = 4;
  const auto single = estimate_throughput(SystemKind::kDistTGL, f, p, k8_1m);
  const auto spread = estimate_throughput(SystemKind::kDistTGL, f, p, k8_4m);
  EXPECT_GT(spread.events_per_second, single.events_per_second);
}

TEST(Throughput, InvalidPlansRejected) {
  FabricSpec f;
  const auto profile = wiki_like_profile();
  ParallelPlan bad;
  bad.machines = 2;
  bad.k = 1;  // memory copies cannot span machines
  EXPECT_THROW(estimate_throughput(SystemKind::kDistTGL, f, profile, bad),
               std::logic_error);
  ParallelPlan tgl_multi;
  tgl_multi.i = 8;
  tgl_multi.machines = 2;
  tgl_multi.k = 2;
  EXPECT_THROW(estimate_throughput(SystemKind::kTGL, f, profile, tgl_multi),
               std::logic_error);
}

}  // namespace
}  // namespace disttgl::dist
