// Kernel-layer tests for the blocked GEMM engine, the `_into` op
// variants, Workspace, and the three hot-path guarantees:
//
//   1. the blocked/packed GEMM matches a retained naive reference over
//      random and adversarial shapes (empty dims, K=1, single columns,
//      shapes far from any tile multiple);
//   2. results are bit-identical for every thread count (DistTGL's
//      determinism contract — test_equivalence depends on it);
//   3. steady-state forward/backward passes with reused Ctx scratch
//      perform zero heap allocations (counting global allocator).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>

#include "nn/attention.hpp"
#include "nn/gru_cell.hpp"
#include "nn/linear.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "util/rng.hpp"

// ---- counting global allocator ------------------------------------------
// Replaces ::operator new for this test binary only. The counter is what
// AllocationFree.* asserts on; everything else just passes through.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace disttgl {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

// Retained naive reference: plain i-j-p triple loop, double-accumulated
// so it is strictly more accurate than any float summation order. The
// blocked kernel sums in a different order (k-block partials, FMA where
// the ISA has it), so comparisons use a tolerance sized for float
// accumulation over the largest K in the gauntlet, not bit equality.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p)
        acc += static_cast<double>(a(i, p)) * b(p, j);
      c(i, j) = static_cast<float>(acc);
    }
  return c;
}

// Tolerance and the eps floor for max_rel_diff: elements of magnitude
// ≥ 1 are compared relatively, near-zero elements (catastrophic
// cancellation makes their *relative* error meaningless) absolutely.
constexpr float kGemmTol = 1e-3f;
constexpr float kGemmEps = 1.0f;

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  return t;
}

// ---- 1. blocked GEMM vs naive reference over a shape gauntlet ----------

struct GemmShape {
  std::size_t m, k, n;
};

class BlockedGemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(BlockedGemmTest, AllLayoutsMatchNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7919 + k * 104729 + n);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix expected = naive_matmul(a, b);

  EXPECT_LT(max_rel_diff(matmul(a, b), expected, kGemmEps), kGemmTol);
  EXPECT_LT(max_rel_diff(matmul_nt(a, transpose(b)), expected, kGemmEps), kGemmTol);
  EXPECT_LT(max_rel_diff(matmul_tn(transpose(a), b), expected, kGemmEps), kGemmTol);

  // Accumulating forms: C pre-seeded with ones.
  Matrix c_acc(m, n, 1.0f);
  matmul_acc(a, b, c_acc);
  Matrix c_nt(m, n, 1.0f);
  matmul_nt_acc(a, transpose(b), c_nt);
  Matrix c_tn(m, n, 1.0f);
  matmul_tn_acc(transpose(a), b, c_tn);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const float want = expected.data()[i] + 1.0f;
    EXPECT_NEAR(c_acc.data()[i], want, 4e-3f);
    EXPECT_NEAR(c_nt.data()[i], want, 4e-3f);
    EXPECT_NEAR(c_tn.data()[i], want, 4e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedGemmTest,
    ::testing::Values(
        // Adversarial: empty dims, scalars, K=1, single rows/columns.
        GemmShape{0, 3, 4}, GemmShape{3, 0, 4}, GemmShape{3, 4, 0},
        GemmShape{1, 1, 1}, GemmShape{5, 1, 7}, GemmShape{1, 64, 1},
        GemmShape{37, 1, 41},
        // Around and across the small-product fallback threshold.
        GemmShape{8, 8, 8}, GemmShape{17, 3, 9}, GemmShape{40, 16, 24},
        GemmShape{64, 64, 64},
        // Blocked path: exact tile multiples (MR=6, NR=32) and shapes
        // that are a multiple of neither, plus a K > KC=256 case.
        GemmShape{6, 64, 32}, GemmShape{12, 128, 64}, GemmShape{65, 33, 47},
        GemmShape{7, 45, 300}, GemmShape{128, 128, 128},
        GemmShape{130, 70, 90}, GemmShape{31, 513, 65}));

TEST(BlockedGemm, ZeroTimesNanPropagates) {
  // The old kernels skipped a == 0 entries, silently converting
  // 0 * NaN (= NaN) into 0. Both the fallback and the blocked path must
  // propagate non-finite values.
  {
    Matrix a(2, 2, {0.0f, 0.0f, 1.0f, 1.0f});
    Matrix b(2, 2, {std::nanf(""), 1.0f, 2.0f, 3.0f});
    Matrix c = matmul(a, b);  // small-product fallback path
    EXPECT_TRUE(std::isnan(c(0, 0)));
    EXPECT_TRUE(std::isnan(c(1, 0)));
  }
  {
    Rng rng(11);
    Matrix a = random_matrix(64, 64, rng);  // blocked path (64^3 madds)
    Matrix b = random_matrix(64, 64, rng);
    for (std::size_t p = 0; p < 64; ++p) a(0, p) = 0.0f;
    b(0, 5) = std::numeric_limits<float>::infinity();
    Matrix c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c(0, 5)));  // 0 * inf = NaN
  }
}

// ---- 2. determinism across thread counts --------------------------------

TEST(BlockedGemm, BitIdenticalAcrossThreadCounts) {
  const std::size_t saved = kernel::gemm_threads();
  Rng rng(42);
  // Big enough to clear the parallel threshold (517*301*203 ≈ 31.6M madds).
  Matrix a = random_matrix(517, 301, rng);
  Matrix b = random_matrix(301, 203, rng);
  Matrix at = transpose(a);
  Matrix bt = transpose(b);

  kernel::set_gemm_threads(1);
  Matrix c1 = matmul(a, b);
  Matrix c1_nt = matmul_nt(a, bt);
  Matrix c1_tn = matmul_tn(at, b);
  for (std::size_t threads : {2u, 3u, 4u}) {
    kernel::set_gemm_threads(threads);
    Matrix ct = matmul(a, b);
    Matrix ct_nt = matmul_nt(a, bt);
    Matrix ct_tn = matmul_tn(at, b);
    EXPECT_EQ(std::memcmp(c1.data(), ct.data(), c1.size() * sizeof(float)), 0)
        << "matmul diverged at " << threads << " threads";
    EXPECT_EQ(std::memcmp(c1_nt.data(), ct_nt.data(), c1_nt.size() * sizeof(float)), 0)
        << "matmul_nt diverged at " << threads << " threads";
    EXPECT_EQ(std::memcmp(c1_tn.data(), ct_tn.data(), c1_tn.size() * sizeof(float)), 0)
        << "matmul_tn diverged at " << threads << " threads";
  }
  kernel::set_gemm_threads(saved);
}

// ---- 3. `_into` variants and Workspace ----------------------------------

TEST(IntoOps, MatmulIntoReusesAcrossShapeChanges) {
  Rng rng(7);
  Matrix c;
  for (std::size_t s : {8u, 3u, 12u, 12u}) {
    Matrix a = random_matrix(s, s + 1, rng);
    Matrix b = random_matrix(s + 1, s + 2, rng);
    matmul_into(a, b, c);
    EXPECT_EQ(c.rows(), s);
    EXPECT_EQ(c.cols(), s + 2);
    EXPECT_LT(max_rel_diff(c, naive_matmul(a, b), kGemmEps), kGemmTol);
  }
}

TEST(IntoOps, BiasAndReductions) {
  Matrix m(2, 2, {1, 2, 3, 4});
  Matrix bias(1, 2, {10, 20});
  Matrix out;
  add_bias_into(m, bias, out);
  EXPECT_FLOAT_EQ(out(1, 1), 24.0f);
  Matrix inplace = m;
  add_bias_inplace(inplace, bias);
  EXPECT_FLOAT_EQ(inplace(0, 0), 11.0f);

  Matrix acc(1, 2, {100, 200});
  column_sums_acc(m, acc);
  EXPECT_FLOAT_EQ(acc(0, 0), 104.0f);
  EXPECT_FLOAT_EQ(acc(0, 1), 206.0f);
}

TEST(IntoOps, ActivationAliasingIsSafe) {
  Matrix x(1, 4, {-2.0f, -0.5f, 0.5f, 2.0f});
  Matrix y = relu(x);
  Matrix dy(1, 4, {1, 2, 3, 4});
  Matrix expected = relu_backward(y, dy);
  relu_backward_into(y, dy, dy);  // dx aliases dy
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(dy.data()[i], expected.data()[i]);

  Matrix s = sigmoid(x);
  Matrix dy2(1, 4, 1.0f);
  Matrix exp2 = sigmoid_backward(s, dy2);
  sigmoid_backward_into(s, dy2, dy2);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(dy2.data()[i], exp2.data()[i]);
}

TEST(IntoOps, ConcatGatherSlice) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 1, {9, 8});
  Matrix c(2, 2, {5, 6, 7, 8});
  Matrix out;
  Matrix::concat_cols_into(a, b, out);
  EXPECT_EQ(out.cols(), 3u);
  EXPECT_FLOAT_EQ(out(1, 2), 8.0f);
  Matrix out3;
  Matrix::concat_cols_into(a, b, c, out3);
  EXPECT_EQ(out3.cols(), 5u);
  EXPECT_FLOAT_EQ(out3(0, 3), 5.0f);

  std::vector<std::size_t> idx = {1, 0, 1};
  Matrix g;
  a.gather_rows_into(idx, g);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_FLOAT_EQ(g(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(g(2, 1), 4.0f);

  Matrix sc;
  out3.slice_cols_into(1, 4, sc);
  EXPECT_EQ(sc.cols(), 3u);
  EXPECT_FLOAT_EQ(sc(0, 0), 2.0f);
  Matrix sr;
  out3.slice_rows_into(1, 2, sr);
  EXPECT_EQ(sr.rows(), 1u);
  EXPECT_FLOAT_EQ(sr(0, 0), 3.0f);
}

TEST(WorkspaceTest, SlotsAreStableAndReused) {
  Workspace ws;
  Matrix& m1 = ws.mat(4, 4);
  Matrix& z1 = ws.zeros(2, 8);
  std::vector<float>& f1 = ws.floats(16, 1.5f);
  EXPECT_EQ(z1.abs_max(), 0.0f);
  EXPECT_FLOAT_EQ(f1[7], 1.5f);

  ws.reset();
  Matrix& m2 = ws.mat(4, 4);
  Matrix& z2 = ws.zeros(2, 8);
  std::vector<float>& f2 = ws.floats(16);
  EXPECT_EQ(&m1, &m2);  // same slots after reset, in order
  EXPECT_EQ(&z1, &z2);
  EXPECT_EQ(&f1, &f2);
  EXPECT_FLOAT_EQ(f2[7], 0.0f);  // refilled
  EXPECT_EQ(ws.num_slots(), 3u);
}

// ---- 4. zero heap allocations in steady state ---------------------------

// Warm-up runs grow every scratch buffer (Ctx fields, Workspace slots,
// the GEMM engine's thread-local packing buffers) to its high-water
// mark; after that, iterations must not touch the allocator. The pool
// submission path does allocate, so these pin the single-thread engine.
class AllocationFree : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = kernel::gemm_threads();
    kernel::set_gemm_threads(1);
  }
  void TearDown() override { kernel::set_gemm_threads(saved_threads_); }
  std::size_t saved_threads_ = 1;
};

TEST_F(AllocationFree, LinearForwardBackwardSteadyState) {
  Rng rng(1);
  nn::Linear layer("l", 48, 32, rng);
  Matrix x = random_matrix(200, 48, rng);
  Matrix dy = random_matrix(200, 32, rng);
  nn::Linear::Ctx ctx;
  Matrix y, dx;
  for (int i = 0; i < 2; ++i) {  // warm-up
    layer.forward_into(x, &ctx, y);
    layer.backward_into(ctx, dy, dx);
  }
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 3; ++i) {
    layer.forward_into(x, &ctx, y);
    layer.backward_into(ctx, dy, dx);
  }
  EXPECT_EQ(g_alloc_count.load(), before);
}

TEST_F(AllocationFree, GruCellForwardBackwardSteadyState) {
  Rng rng(2);
  nn::GRUCell cell("g", 72, 32, rng);
  Matrix x = random_matrix(300, 72, rng);
  Matrix h = random_matrix(300, 32, rng);
  Matrix dh_next = random_matrix(300, 32, rng);
  nn::GRUCell::Ctx ctx;
  nn::GRUCell::InputGrads grads;
  Matrix h_new;
  for (int i = 0; i < 2; ++i) {
    cell.forward_into(x, h, ctx, h_new);
    cell.backward_into(ctx, dh_next, grads);
  }
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 3; ++i) {
    cell.forward_into(x, h, ctx, h_new);
    cell.backward_into(ctx, dh_next, grads);
  }
  EXPECT_EQ(g_alloc_count.load(), before);
}

TEST_F(AllocationFree, TemporalAttentionForwardBackwardSteadyState) {
  // The BM_TemporalAttention configuration: steady-state iterations of
  // the attention forward path must not allocate (PR acceptance bar).
  const std::size_t n = 200, K = 10;
  Rng rng(4);
  nn::AttentionDims dims;
  dims.node_dim = 32;
  dims.edge_dim = 16;
  dims.time_dim = 8;
  dims.attn_dim = 32;
  dims.out_dim = 32;
  dims.num_heads = 2;
  dims.max_neighbors = K;
  nn::TemporalAttention attn("a", dims, rng);
  Matrix node = random_matrix(n, 32, rng);
  Matrix neigh = random_matrix(n * K, 32, rng);
  Matrix edge = random_matrix(n * K, 16, rng);
  Matrix dout = random_matrix(n, 32, rng);
  std::vector<float> dt(n * K, 1.0f);
  std::vector<std::size_t> valid(n, K);
  nn::TemporalAttention::Ctx ctx;
  nn::TemporalAttention::InputGrads grads;
  for (int i = 0; i < 2; ++i) {
    attn.forward(node, neigh, edge, dt, valid, &ctx);
    attn.backward_into(ctx, dout, grads);
  }
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 3; ++i) {
    const Matrix& out = attn.forward(node, neigh, edge, dt, valid, &ctx);
    EXPECT_EQ(out.rows(), n);
  }
  EXPECT_EQ(g_alloc_count.load(), before) << "attention forward allocated";
  const std::size_t before_bwd = g_alloc_count.load();
  for (int i = 0; i < 3; ++i) attn.backward_into(ctx, dout, grads);
  EXPECT_EQ(g_alloc_count.load(), before_bwd) << "attention backward allocated";
}

TEST_F(AllocationFree, WorkspaceSteadyState) {
  Workspace ws;
  auto iteration = [&] {
    ws.reset();
    Matrix& a = ws.mat(32, 16);
    Matrix& b = ws.zeros(8, 8);
    std::vector<float>& f = ws.floats(64);
    a(0, 0) = b(0, 0) + f[0];
  };
  for (int i = 0; i < 2; ++i) iteration();
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 5; ++i) iteration();
  EXPECT_EQ(g_alloc_count.load(), before);
}

}  // namespace
}  // namespace disttgl
