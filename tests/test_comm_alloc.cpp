// Allocation-freedom of the gradient-sync layer: once the persistent
// staging is at its high-water mark (reserve(), or the first call's
// barrier-protected growth), allreduce_mean / allreduce_step must never
// touch the allocator again — the per-iteration collective is pure
// memcpy + reduce over preallocated buffers, and the fused hook is a
// plain function pointer (no type-erased callable). Same
// counting-global-allocator technique as test_kernels /
// test_batch_alloc / test_memory_alloc; the counter lives in this
// binary only.
//
// Thread lifecycle matters for the measurement: the rank threads are
// spawned once (spawning allocates), warm rounds run, rank 0 snapshots
// the counter between rounds, measured rounds run, and the final count
// is compared after the join. The comm's own barriers keep ranks in
// lockstep, so when rank 0 snapshots after its round W every rank has
// passed round W's barriers and can only be executing non-allocating
// tail copies.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "distributed/comm.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace disttgl::dist {
namespace {

constexpr std::size_t kWarm = 3;
constexpr std::size_t kMeasured = 12;

struct ToyStep {
  std::span<float> grads;
  std::span<float> params;
};

void toy_chunk_step(void* ctx, std::size_t lo, std::size_t hi, double sq) {
  auto* s = static_cast<ToyStep*>(ctx);
  const float scale = sq > 0.0 ? 0.1f : 0.2f;
  for (std::size_t i = lo; i < hi; ++i) s->params[i] -= scale * s->grads[i];
}

// Runs kWarm + kMeasured rounds on `ranks` persistent threads; `fused`
// selects the collective. Returns the allocation delta observed across
// the measured rounds.
std::size_t measured_alloc_delta(ThreadComm& comm, std::size_t size,
                                 bool fused) {
  const std::size_t ranks = comm.ranks();
  std::vector<std::vector<float>> grads(ranks, std::vector<float>(size, 0.5f));
  std::vector<std::vector<float>> params(ranks, std::vector<float>(size, 1.0f));
  std::atomic<std::size_t> before{0};

  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      ToyStep ctx{grads[r], params[r]};
      for (std::size_t t = 0; t < kWarm + kMeasured; ++t) {
        if (r == 0 && t == kWarm)
          before.store(g_alloc_count.load(), std::memory_order_relaxed);
        if (fused) {
          comm.allreduce_step(r, grads[r], params[r], &toy_chunk_step, &ctx);
        } else {
          comm.allreduce_mean(r, grads[r]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return g_alloc_count.load() - before.load();
}

TEST(CommAllocationFree, ReservedAllreduceSteadyState) {
  ThreadComm comm(4);
  comm.reserve(4096);
  EXPECT_EQ(measured_alloc_delta(comm, 4096, /*fused=*/false), 0u)
      << "steady-state allreduce_mean allocated";
}

TEST(CommAllocationFree, FirstCallGrowsThenSteadyState) {
  // No reserve(): the first round's barrier-protected growth is the only
  // allocating event; warm rounds absorb it and the measured window must
  // stay clean.
  ThreadComm comm(3);
  EXPECT_EQ(measured_alloc_delta(comm, 1000, /*fused=*/false), 0u)
      << "post-growth allreduce_mean allocated";
  EXPECT_GE(comm.capacity(), 1000u);
}

TEST(CommAllocationFree, FusedStepSteadyState) {
  ThreadComm comm(4, ThreadComm::Options{.chunk_elems = 256});
  comm.reserve(4096);
  EXPECT_EQ(measured_alloc_delta(comm, 4096, /*fused=*/true), 0u)
      << "steady-state allreduce_step allocated";
}

TEST(CommAllocationFree, OddPayloadSteadyState) {
  // Payloads that straddle chunk boundaries exercise the partial tail
  // chunk on every round.
  ThreadComm comm(4, ThreadComm::Options{.chunk_elems = 64});
  comm.reserve(999);
  EXPECT_EQ(measured_alloc_delta(comm, 999, /*fused=*/false), 0u);
  EXPECT_EQ(measured_alloc_delta(comm, 999, /*fused=*/true), 0u);
}

}  // namespace
}  // namespace disttgl::dist
