// Metrics (MRR, AP, F1-micro) and the chronological evaluator.
#include <gtest/gtest.h>

#include "core/tgn_model.hpp"
#include "datagen/generator.hpp"
#include "eval/evaluator.hpp"
#include "eval/metrics.hpp"

namespace disttgl {
namespace {

TEST(Metrics, MrrPerfectRanking) {
  Matrix pos(2, 1, {5.0f, 5.0f});
  Matrix neg(2, 3, {1, 2, 3, 0, -1, 2});
  EXPECT_DOUBLE_EQ(mean_reciprocal_rank(pos, neg), 1.0);
}

TEST(Metrics, MrrWorstRanking) {
  Matrix pos(1, 1, {-10.0f});
  Matrix neg(1, 4, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(mean_reciprocal_rank(pos, neg), 1.0 / 5.0);
}

TEST(Metrics, MrrMiddleAndTies) {
  Matrix pos(1, 1, {2.0f});
  Matrix neg(1, 3, {3.0f, 1.0f, 2.0f});  // one above, one below, one tie
  // rank = 1 + 1 + 0.5 = 2.5.
  EXPECT_DOUBLE_EQ(mean_reciprocal_rank(pos, neg), 1.0 / 2.5);
}

TEST(Metrics, MrrAveragesRows) {
  Matrix pos(2, 1, {5.0f, -5.0f});
  Matrix neg(2, 1, {0.0f, 0.0f});
  EXPECT_DOUBLE_EQ(mean_reciprocal_rank(pos, neg), (1.0 + 0.5) / 2.0);
}

TEST(Metrics, F1MicroPerfect) {
  Matrix logits(2, 4, {9, 8, -1, -2, -5, 7, 9, -3});
  Matrix targets(2, 4, {1, 1, 0, 0, 0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(f1_micro_topl(logits, targets), 1.0);
}

TEST(Metrics, F1MicroHalf) {
  // Row with 2 labels; predictions hit exactly one.
  Matrix logits(1, 4, {9, -9, 8, -8});
  Matrix targets(1, 4, {1, 1, 0, 0});
  // top-2 = {0, 2}; TP=1, FP=1, FN=1 → F1 = 2/(2+1+1) = 0.5.
  EXPECT_DOUBLE_EQ(f1_micro_topl(logits, targets), 0.5);
}

TEST(Metrics, F1SkipsUnlabeledRows) {
  Matrix logits(2, 3, {1, 2, 3, 3, 2, 1});
  Matrix targets(2, 3, {0, 0, 0, 1, 0, 0});
  EXPECT_DOUBLE_EQ(f1_micro_topl(logits, targets), 1.0);
}

struct EvalFixture {
  TemporalGraph graph;
  ModelConfig cfg;
  NeighborSampler sampler;
  Rng rng;
  TGNModel model;
  MemoryState state;

  EvalFixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 50;
          spec.num_dst = 25;
          spec.num_events = 2000;
          spec.seed = 31;
          return datagen::generate(spec);
        }()),
        cfg([] {
          ModelConfig c;
          c.mem_dim = 8;
          c.time_dim = 4;
          c.attn_dim = 8;
          c.emb_dim = 8;
          c.num_neighbors = 4;
          c.head_hidden = 8;
          return c;
        }()),
        sampler(graph, cfg.num_neighbors),
        rng(11),
        model(cfg, graph, nullptr, rng),
        state(graph.num_nodes(), cfg.mem_dim, 2 * cfg.mem_dim) {}
};

TEST(Evaluator, ProducesMetricInRange) {
  EvalFixture fx;
  EvalConfig ec;
  ec.batch_size = 100;
  ec.num_negs = 9;
  auto res = evaluate_range(fx.model, fx.state, fx.graph, fx.sampler, 0, 600, ec);
  EXPECT_EQ(res.events, 600u);
  EXPECT_GT(res.metric, 0.0);
  EXPECT_LE(res.metric, 1.0);
  EXPECT_GT(res.loss, 0.0);
}

TEST(Evaluator, AdvancesMemoryStream) {
  EvalFixture fx;
  EvalConfig ec;
  ec.batch_size = 100;
  ec.num_negs = 5;
  evaluate_range(fx.model, fx.state, fx.graph, fx.sampler, 0, 400, ec);
  // Nodes involved in the evaluated range now have mails.
  std::size_t with_mail = 0;
  for (NodeId v = 0; v < fx.graph.num_nodes(); ++v)
    if (fx.state.has_mail(v)) ++with_mail;
  EXPECT_GT(with_mail, 0u);
}

TEST(Evaluator, UntrainedModelNearChance) {
  EvalFixture fx;
  EvalConfig ec;
  ec.batch_size = 100;
  ec.num_negs = 49;
  auto res = evaluate_range(fx.model, fx.state, fx.graph, fx.sampler, 0, 1000, ec);
  // Chance MRR with 49 negatives ≈ Σ 1/r /50 ≈ 0.09; untrained should be
  // in the same ballpark, far from 1.
  EXPECT_LT(res.metric, 0.5);
}

TEST(Evaluator, PerNodeCountsMatchEvents) {
  EvalFixture fx;
  EvalConfig ec;
  ec.batch_size = 100;
  ec.num_negs = 5;
  auto per = evaluate_per_node(fx.model, fx.state, fx.graph, fx.sampler, 0, 500, ec);
  std::size_t total = 0;
  for (std::size_t v = 0; v < per.count.size(); ++v) {
    total += per.count[v];
    EXPECT_LE(per.rr_sum[v], static_cast<double>(per.count[v]) + 1e-9);
  }
  EXPECT_EQ(total, 500u);
  // Only source-partition nodes accumulate counts on a bipartite graph.
  for (NodeId v = fx.graph.dst_partition_begin(); v < fx.graph.num_nodes(); ++v)
    EXPECT_EQ(per.count[v], 0u);
}

}  // namespace
}  // namespace disttgl
