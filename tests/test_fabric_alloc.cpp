// Allocation-freedom of the process fabric's steady state: once a
// ProcComm rank handle and a ShmDaemonChannel client have passed their
// first (high-water) round, collective and slot-protocol rounds must
// never touch the allocator — the data plane is memcpy + atomics over
// the pre-sized shm segment, and futex parking is a raw syscall. Same
// counting-global-allocator technique as tests/test_comm_alloc.cpp;
// the counter lives in this binary only.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "distributed/proc_comm.hpp"
#include "distributed/shm.hpp"
#include "memory/shm_channel.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace disttgl::dist {
namespace {

constexpr std::size_t kWarm = 3;
constexpr std::size_t kMeasured = 12;
constexpr std::chrono::milliseconds kTimeout{30'000};

struct ToyStep {
  std::span<float> grads;
  std::span<float> params;
};

void toy_chunk_step(void* ctx, std::size_t lo, std::size_t hi, double sq) {
  auto* s = static_cast<ToyStep*>(ctx);
  const float scale = sq > 0.0 ? 0.1f : 0.2f;
  for (std::size_t i = lo; i < hi; ++i) s->params[i] -= scale * s->grads[i];
}

// Two rank handles over one segment, driven by two threads in this
// process — the shm data plane is address-space agnostic, so in-process
// clients measure exactly what forked clients would execute, where the
// counting allocator can actually observe them.
std::size_t proc_comm_alloc_delta(ProcComm& rank0, ProcComm& rank1,
                                  std::size_t size, bool fused) {
  std::vector<std::vector<float>> grads(2, std::vector<float>(size, 0.5f));
  std::vector<std::vector<float>> params(2, std::vector<float>(size, 1.0f));
  std::atomic<std::size_t> before{0};
  ProcComm* comms[2] = {&rank0, &rank1};

  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      ToyStep ctx{grads[r], params[r]};
      for (std::size_t t = 0; t < kWarm + kMeasured; ++t) {
        if (r == 0 && t == kWarm)
          before.store(g_alloc_count.load(), std::memory_order_relaxed);
        if (fused) {
          comms[r]->allreduce_step(r, grads[r], params[r], &toy_chunk_step,
                                   &ctx);
        } else {
          comms[r]->allreduce_mean(r, grads[r]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return g_alloc_count.load() - before.load();
}

TEST(FabricAllocationFree, ProcCommAllreduceSteadyState) {
  const std::string prefix = make_session_prefix();
  {
    const Comm::Options opts{.chunk_elems = 64};
    ProcComm rank0 =
        ProcComm::create(prefix + ".comm", 2, 1000, opts, kTimeout);
    ProcComm rank1 =
        ProcComm::attach(prefix + ".comm", 2, opts, kTimeout);
    EXPECT_EQ(proc_comm_alloc_delta(rank0, rank1, 999, /*fused=*/false), 0u)
        << "steady-state cross-process allreduce_mean allocated";
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(FabricAllocationFree, ProcCommFusedStepSteadyState) {
  const std::string prefix = make_session_prefix();
  {
    const Comm::Options opts{.chunk_elems = 256};
    ProcComm rank0 =
        ProcComm::create(prefix + ".comm", 2, 4096, opts, kTimeout);
    ProcComm rank1 =
        ProcComm::attach(prefix + ".comm", 2, opts, kTimeout);
    EXPECT_EQ(proc_comm_alloc_delta(rank0, rank1, 4096, /*fused=*/true), 0u)
        << "steady-state cross-process allreduce_step allocated";
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(FabricAllocationFree, ShmDaemonChannelSteadyState) {
  const std::string prefix = make_session_prefix();
  {
    ShmDaemonSpec spec;
    spec.slots = 1;  // i=1, j=1: one client, pure protocol measurement
    spec.mem_dim = 8;
    spec.mail_dim = 12;
    spec.max_read_nodes = 32;
    spec.max_write_nodes = 16;
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", spec);
    ShmDaemonChannel ch =
        ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kTimeout);

    MemoryState state(64, 8, 12);
    DaemonConfig dc;
    dc.i = 1;
    dc.j = 1;
    dc.reset_before_round.assign(kWarm + kMeasured, 0);
    dc.reset_before_round[0] = 1;
    ShmDaemonServer server(state, dc, ch);
    server.start();

    // Client: fixed-shape read+write per round; buffers hit their
    // high-water mark during the warm rounds.
    MemorySlice slice;
    MemoryWrite write;
    std::vector<NodeId> nodes = {1, 5, 9, 13};
    write.nodes = {2, 6};
    write.mem = Matrix(2, 8, 0.5f);
    write.mem_ts = {1.0f, 2.0f};
    write.mail = Matrix(2, 12, -0.5f);
    write.mail_ts = {1.5f, 2.5f};

    std::size_t before = 0;
    for (std::size_t t = 0; t < kWarm + kMeasured; ++t) {
      if (t == kWarm) before = g_alloc_count.load();
      ch.read(0, nodes, slice);
      ch.write(0, write);
    }
    const std::size_t measured = g_alloc_count.load() - before;
    server.join();
    EXPECT_EQ(measured, 0u)
        << "steady-state shm daemon read/write rounds allocated";
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

}  // namespace
}  // namespace disttgl::dist
