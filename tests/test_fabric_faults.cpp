// Fault injection for the process fabric: every failure mode must be a
// typed FabricError and a clean shutdown — no hangs (every wait is
// deadline-bounded), no leaked /dev/shm segments (each test asserts its
// session prefix is swept by destructors, not by the post-suite sweep).
//   * SIGKILLed peer mid-collective → survivors throw kPeerTimeout or
//     kAborted; the launcher reports the corpse as kChildFailed.
//   * truncated / short socket writes → kTruncated / kPeerClosed.
//   * EINTR storms on blocking reads → invisible (loops retry).
//   * stale rendezvous socket file → silently recovered; a *live*
//     listener → kAddrInUse.
//   * duplicate rank / wrong world at rendezvous → kRankConflict.
//   * oversized daemon-channel request → kCapacity before any copy.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "distributed/hier_comm.hpp"
#include "distributed/launch.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/shm.hpp"
#include "memory/shm_channel.hpp"

namespace disttgl::dist {
namespace {

constexpr std::chrono::milliseconds kLong{30'000};

TEST(FabricFaults, KilledPeerMidCollectiveIsTypedNotAHang) {
  const std::size_t world = 3;
  const std::string prefix = make_session_prefix();
  {
    // Survivors' collective waits time out after 2s — the whole test is
    // bounded regardless of when the victim dies.
    const std::chrono::milliseconds collective_timeout{2'000};
    ProcComm owner = ProcComm::create(prefix + ".comm", world, 64,
                                      Comm::Options{}, collective_timeout);
    ProcGroup group = ProcGroup::spawn(world, [&](std::size_t rank) {
      ProcComm comm = ProcComm::attach(prefix + ".comm", world,
                                       Comm::Options{}, collective_timeout);
      std::vector<float> data(64, static_cast<float>(rank));
      comm.allreduce_mean(rank, data);  // round 1: everyone participates
      if (rank == 1) {
        // The victim parks here until SIGKILLed.
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
      }
      comm.allreduce_mean(rank, data);  // round 2: rank 1 never arrives
      return std::vector<std::uint8_t>{};
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    group.kill_rank(1);
    const std::vector<ChildResult> results = group.wait(kLong);
    ASSERT_EQ(results.size(), world);
    for (const std::size_t survivor : {0ul, 2ul}) {
      EXPECT_FALSE(results[survivor].ok);
      EXPECT_TRUE(results[survivor].errc == FabricErrc::kPeerTimeout ||
                  results[survivor].errc == FabricErrc::kAborted)
          << "rank " << survivor << " died with "
          << fabric_errc_name(results[survivor].errc) << ": "
          << results[survivor].message;
    }
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].errc, FabricErrc::kChildFailed);
  }
  // The owner's destructor — not any child — reclaims the segment.
  EXPECT_TRUE(list_shm(prefix).empty()) << "killed peer leaked shm";
}

TEST(FabricFaults, AbortUnparksAWaitingPeerImmediately) {
  const std::string prefix = make_session_prefix();
  {
    ProcComm owner = ProcComm::create(prefix + ".comm", 2, 16,
                                      Comm::Options{}, kLong);
    ProcComm peer =
        ProcComm::attach(prefix + ".comm", 2, Comm::Options{}, kLong);
    std::atomic<bool> aborted{false};
    const auto start = std::chrono::steady_clock::now();
    std::thread waiter([&] {
      std::vector<float> data(16, 1.0f);
      try {
        peer.allreduce_mean(1, data);  // rank 0 never arrives
      } catch (const FabricError& e) {
        aborted.store(e.code() == FabricErrc::kAborted);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    owner.abort_session();
    waiter.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(aborted.load());
    // Poison must propagate via the futex wake, not the 30s deadline.
    EXPECT_LT(elapsed, std::chrono::seconds(10));
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

// ---- socket-level faults -------------------------------------------------

struct SocketPair {
  FdHandle a, b;
  SocketPair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = FdHandle(sv[0]);
    b = FdHandle(sv[1]);
  }
};

TEST(FabricFaults, PeerClosingBeforeAnyBytesIsCleanEof) {
  SocketPair sp;
  sp.b.reset();  // peer gone, zero bytes sent
  Frame f;
  EXPECT_FALSE(read_frame(sp.a.get(), f, deadline_after(kLong)));
}

TEST(FabricFaults, TruncatedHeaderIsTyped) {
  SocketPair sp;
  std::vector<std::uint8_t> stream;
  encode_frame(MsgType::kResult, std::vector<std::uint8_t>(32, 1), stream);
  write_exact(sp.b.get(), {stream.data(), 10}, deadline_after(kLong));
  sp.b.reset();  // EOF mid-header
  Frame f;
  try {
    read_frame(sp.a.get(), f, deadline_after(kLong));
    FAIL() << "expected kTruncated";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kTruncated);
  }
}

TEST(FabricFaults, TruncatedPayloadIsTyped) {
  SocketPair sp;
  std::vector<std::uint8_t> stream;
  encode_frame(MsgType::kResult, std::vector<std::uint8_t>(32, 1), stream);
  write_exact(sp.b.get(), {stream.data(), stream.size() - 5},
              deadline_after(kLong));
  sp.b.reset();  // EOF mid-payload
  Frame f;
  try {
    read_frame(sp.a.get(), f, deadline_after(kLong));
    FAIL() << "expected kTruncated";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kTruncated);
  }
}

TEST(FabricFaults, WritingToAClosedPeerIsTypedNotASignal) {
  // MSG_NOSIGNAL turns the SIGPIPE a dead reader would raise into a
  // typed kPeerClosed (a raw write() would kill the whole process).
  SocketPair sp;
  sp.a.reset();  // reader gone
  const std::vector<std::uint8_t> chunk(1 << 16, 0xab);
  bool threw = false;
  for (int i = 0; i < 10 && !threw; ++i) {
    try {
      write_exact(sp.b.get(), chunk, deadline_after(kLong));
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kPeerClosed);
      threw = true;
    }
  }
  EXPECT_TRUE(threw) << "writes into a closed peer never failed";
}

void sigusr1_noop(int) {}

TEST(FabricFaults, EintrStormOnBlockingReadIsInvisible) {
  // Install a no-SA_RESTART handler so every signal interrupts the
  // blocking syscalls with EINTR; the fabric's read loops must retry.
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = &sigusr1_noop;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  Frame got;
  std::atomic<bool> ok{false};
  std::thread reader([&] {
    ok.store(read_frame(sp.a.get(), got, deadline_after(kLong)));
  });
  const pthread_t victim = reader.native_handle();
  for (int i = 0; i < 50; ++i) {
    pthread_kill(victim, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> payload(64, 0x5a);
  encode_frame(MsgType::kResult, payload, stream);
  write_exact(sp.b.get(), stream, deadline_after(kLong));
  reader.join();
  sigaction(SIGUSR1, &old, nullptr);

  EXPECT_TRUE(ok.load());
  EXPECT_EQ(got.payload, payload);
}

// ---- TCP fabric faults ---------------------------------------------------

TEST(FabricFaults, KilledPeerMidTcpCollectiveIsTypedNotAHang) {
  // World 4 over 2 simulated hosts; the victim is host 1's LEADER, so
  // its death severs the TCP ring mid-collective. Host 0's leader must
  // see the dead connection (kPeerClosed/kPeerTimeout), poison its local
  // barrier, and every survivor must fail typed within the collective
  // timeout — never hang on a half-open socket.
  const std::size_t world = 4, hosts = 2;
  const std::chrono::milliseconds collective_timeout{2'000};
  const std::string prefix = make_session_prefix();
  {
    ClusterMap map;
    map.world = static_cast<std::uint32_t>(world);
    map.session_prefix = prefix;
    map.bind_host = "127.0.0.1";
    std::vector<ProcComm> owners;
    for (std::size_t h = 0; h < hosts; ++h) {
      const auto [begin, end] = host_span(h, world, hosts);
      const std::string name = prefix + ".hc" + std::to_string(h);
      owners.push_back(ProcComm::create(name, end - begin, 64,
                                        Comm::Options{}, collective_timeout));
      map.host_comm_shms.push_back(name);
      map.spans.push_back({static_cast<std::uint32_t>(begin),
                           static_cast<std::uint32_t>(end), 0});
    }
    std::uint16_t rdv_port = 0;
    FdHandle listener = tcp_listen("127.0.0.1", 0, 16, rdv_port);
    ProcGroup group = ProcGroup::spawn(world, [&](std::size_t rank) {
      const auto topo = HierComm::topology_for(rank, world, hosts);
      FdHandle ring_listen;
      std::uint16_t ring_port = 0;
      if (topo.local_rank == 0)
        ring_listen = tcp_listen("127.0.0.1", 0, 16, ring_port);
      const ClusterMap m = tcp_rendezvous_client(
          "127.0.0.1", rdv_port, static_cast<std::uint32_t>(world),
          static_cast<std::uint32_t>(rank), ring_port, kLong);
      ProcComm local =
          ProcComm::attach(m.host_comm_shms[topo.host], topo.local_world,
                           Comm::Options{}, collective_timeout);
      RingEndpoints ring;
      if (topo.local_rank == 0)
        ring = connect_ring(ring_listen.get(), m, topo.host,
                            deadline_after(kLong), true);
      ring_listen.reset();
      HierComm comm(std::move(local), topo, std::move(ring),
                    collective_timeout);
      std::vector<float> data(64, static_cast<float>(rank));
      comm.allreduce_mean(rank, data);  // round 1: everyone participates
      if (rank == 2) {
        // Host 1's leader parks here until SIGKILLed.
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
      }
      comm.allreduce_mean(rank, data);  // round 2: the ring is severed
      return std::vector<std::uint8_t>{};
    });
    tcp_rendezvous_host(listener.get(), map, kLong);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    group.kill_rank(2);
    const std::vector<ChildResult> results = group.wait(kLong);
    ASSERT_EQ(results.size(), world);
    for (const std::size_t survivor : {0ul, 1ul, 3ul}) {
      EXPECT_FALSE(results[survivor].ok);
      EXPECT_TRUE(results[survivor].errc == FabricErrc::kPeerClosed ||
                  results[survivor].errc == FabricErrc::kPeerTimeout ||
                  results[survivor].errc == FabricErrc::kAborted)
          << "rank " << survivor << " died with "
          << fabric_errc_name(results[survivor].errc) << ": "
          << results[survivor].message;
    }
    EXPECT_FALSE(results[2].ok);
    EXPECT_EQ(results[2].errc, FabricErrc::kChildFailed);
  }
  EXPECT_TRUE(list_shm(prefix).empty()) << "killed TCP peer leaked shm";
}

TEST(FabricFaults, HalfOpenTcpPeerKilledBetweenFramesIsCleanEof) {
  // SIGKILL between frames closes the connection at a frame boundary:
  // the kernel FINs on process death, so the survivor's next recv is an
  // orderly false — the caller decides, no exception, no hang.
  std::uint16_t port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 4, port);
  ProcGroup group = ProcGroup::spawn(1, [&](std::size_t) {
    TcpEndpoint peer(
        tcp_connect("127.0.0.1", port, deadline_after(kLong)));
    const std::vector<std::uint8_t> payload(32, 0x7e);
    peer.send(MsgType::kCollective, payload, deadline_after(kLong));
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    return std::vector<std::uint8_t>{};
  });
  TcpEndpoint conn(accept_conn(listener.get(), deadline_after(kLong)));
  Frame f;
  ASSERT_TRUE(conn.recv(f, deadline_after(kLong)));  // the sent frame
  EXPECT_EQ(f.type, MsgType::kCollective);
  group.kill_rank(0);
  EXPECT_FALSE(conn.recv(f, deadline_after(kLong)));  // clean EOF
  group.wait(kLong);
}

TEST(FabricFaults, HalfOpenTcpPeerKilledMidFrameIsTruncated) {
  // SIGKILL mid-frame instead: the survivor has consumed a partial
  // header/payload when the FIN lands — that must be kTruncated, the
  // "peer died mid-message" signal, not a silent short read.
  std::uint16_t port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 4, port);
  ProcGroup group = ProcGroup::spawn(1, [&](std::size_t) {
    FdHandle peer = tcp_connect("127.0.0.1", port, deadline_after(kLong));
    std::vector<std::uint8_t> stream;
    encode_frame(MsgType::kCollective, std::vector<std::uint8_t>(64, 1),
                 stream);
    write_exact(peer.get(), {stream.data(), stream.size() - 7},
                deadline_after(kLong));
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    return std::vector<std::uint8_t>{};
  });
  FdHandle conn = accept_conn(listener.get(), deadline_after(kLong));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  group.kill_rank(0);
  Frame f;
  try {
    read_frame(conn.get(), f, deadline_after(kLong));
    FAIL() << "expected kTruncated";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kTruncated);
  }
  group.wait(kLong);
}

TEST(FabricFaults, SplitTcpFrameReadsAreInvisible) {
  // A TCP stream fragments arbitrarily; dribbling a frame byte by byte
  // over loopback is the adversarial version. read_frame must reassemble
  // it bit-for-bit, checksum included.
  std::uint16_t port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 4, port);
  FdHandle dialed = tcp_connect("127.0.0.1", port, deadline_after(kLong));
  FdHandle conn = accept_conn(listener.get(), deadline_after(kLong));

  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  std::vector<std::uint8_t> stream;
  encode_frame(MsgType::kCollective, payload, stream);
  std::thread dribbler([&] {
    for (const std::uint8_t byte : stream) {
      write_exact(dialed.get(), {&byte, 1}, deadline_after(kLong));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  Frame f;
  ASSERT_TRUE(read_frame(conn.get(), f, deadline_after(kLong)));
  dribbler.join();
  EXPECT_EQ(f.type, MsgType::kCollective);
  EXPECT_EQ(f.payload, payload);
}

// ---- rendezvous faults ---------------------------------------------------

std::string temp_sock_path() {
  return "/tmp" + make_session_prefix() + ".sock";
}

TEST(FabricFaults, StaleRendezvousSocketIsSilentlyRecovered) {
  const std::string path = temp_sock_path();
  {
    FdHandle crashed = unix_listen(path, 4);
    // "Crash": the listener fd closes but the socket file stays behind.
  }
  // A fresh host must probe, find nobody home, unlink, and rebind.
  std::thread host([&] {
    RendezvousInfo info;
    info.world = 1;
    info.session_prefix = "/disttgl.test";
    rendezvous_host(path, info, kLong);
  });
  const RendezvousInfo got = rendezvous_client(path, 1, 0, kLong);
  host.join();
  EXPECT_EQ(got.session_prefix, "/disttgl.test");
  ::unlink(path.c_str());
}

TEST(FabricFaults, LiveListenerIsAddrInUseNotSilentTheft) {
  const std::string path = temp_sock_path();
  FdHandle live = unix_listen(path, 4);
  try {
    FdHandle thief = unix_listen(path, 4);
    FAIL() << "binding over a live listener must throw";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kAddrInUse);
  }
  ::unlink(path.c_str());
}

TEST(FabricFaults, StaleSocketRecoveryIsSerializedByLockfile) {
  // The probe→unlink→rebind recovery used to be a TOCTOU window: two
  // processes could both probe-dead and race the rebind. It is now
  // serialized through an O_EXCL lockfile — while someone holds it, a
  // second recoverer gets a deterministic kAddrInUse instead of a race.
  const std::string path = temp_sock_path();
  {
    FdHandle crashed = unix_listen(path, 4);
  }  // stale socket file left behind
  const std::string lock = path + ".lock";
  const int lock_fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
  ASSERT_GE(lock_fd, 0);
  try {
    FdHandle contender = unix_listen(path, 4);
    FAIL() << "recovery while the lock is held must throw";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kAddrInUse);
  }
  ::close(lock_fd);
  ::unlink(lock.c_str());
  // Lock released: recovery proceeds and leaves no lockfile behind.
  FdHandle recovered = unix_listen(path, 4);
  EXPECT_TRUE(recovered.valid());
  EXPECT_NE(::access(path.c_str(), F_OK), -1);
  EXPECT_EQ(::access(lock.c_str(), F_OK), -1) << "lockfile leaked";
  ::unlink(path.c_str());
}

TEST(FabricFaults, DuplicateRankClaimIsRankConflictForBothSides) {
  const std::string path = temp_sock_path();
  std::exception_ptr host_error;
  std::thread host([&] {
    try {
      RendezvousInfo info;
      info.world = 2;
      rendezvous_host(path, info, kLong);
    } catch (...) {
      host_error = std::current_exception();
    }
  });
  // First claim of rank 0 succeeds…
  (void)rendezvous_client(path, 2, 0, kLong);
  // …the duplicate is rejected with a typed report, not an EOF.
  try {
    (void)rendezvous_client(path, 2, 0, kLong);
    FAIL() << "duplicate rank must be rejected";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kRankConflict);
  }
  host.join();
  ASSERT_TRUE(host_error != nullptr);
  try {
    std::rethrow_exception(host_error);
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kRankConflict);
  }
}

TEST(FabricFaults, WorldSizeDisagreementIsRankConflict) {
  const std::string path = temp_sock_path();
  std::exception_ptr host_error;
  std::thread host([&] {
    try {
      RendezvousInfo info;
      info.world = 2;
      rendezvous_host(path, info, kLong);
    } catch (...) {
      host_error = std::current_exception();
    }
  });
  try {
    (void)rendezvous_client(path, /*world=*/3, /*rank=*/0, kLong);
    FAIL() << "world mismatch must be rejected";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kRankConflict);
  }
  host.join();
  ASSERT_TRUE(host_error != nullptr);
}

TEST(FabricFaults, HalfOpenUnixRendezvousClientIsTypedTimeout) {
  // A client that connects and never says HELLO used to park its
  // connection until the whole session deadline. The per-connection
  // HELLO deadline must surface it as kPeerTimeout within ~hello_timeout
  // while the overall budget is still far away.
  const std::string path = temp_sock_path();
  std::thread silent([&] {
    FdHandle conn = unix_connect(path, deadline_after(kLong));
    // Connected, silent, and still open well past the HELLO deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
  });
  RendezvousInfo info;
  info.world = 1;
  const auto start = std::chrono::steady_clock::now();
  try {
    rendezvous_host(path, info, kLong, std::chrono::milliseconds(200));
    FAIL() << "half-open client must not be awaited forever";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kPeerTimeout);
    EXPECT_NE(std::string(e.what()).find("no HELLO"), std::string::npos);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5'000))
      << "HELLO deadline did not bound the wait";
  silent.join();
  ::unlink(path.c_str());
}

TEST(FabricFaults, HalfOpenTcpRendezvousClientIsTypedTimeout) {
  // Same contract for the cross-host flavour, whose parked-connection
  // design (collect every HELLO before answering any) made it the worse
  // offender: one silent client used to stall the entire cluster's
  // rendezvous until the launch deadline.
  std::uint16_t port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 4, port);
  ClusterMap map;
  map.world = 1;
  map.bind_host = "127.0.0.1";
  map.spans.push_back(HostSpan{0, 1, 0});
  FdHandle silent = tcp_connect("127.0.0.1", port, deadline_after(kLong));
  const auto start = std::chrono::steady_clock::now();
  try {
    tcp_rendezvous_host(listener.get(), map, kLong,
                        std::chrono::milliseconds(200));
    FAIL() << "half-open client must not be awaited forever";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kPeerTimeout);
    EXPECT_NE(std::string(e.what()).find("no HELLO"), std::string::npos);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5'000))
      << "HELLO deadline did not bound the wait";
}

// ---- daemon-channel faults -----------------------------------------------

TEST(FabricFaults, OversizedDaemonRequestIsCapacityBeforeAnyCopy) {
  const std::string prefix = make_session_prefix();
  {
    ShmDaemonSpec spec;
    spec.slots = 1;
    spec.mem_dim = 2;
    spec.mail_dim = 3;
    spec.max_read_nodes = 4;
    spec.max_write_nodes = 2;
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", spec);
    ShmDaemonChannel ch =
        ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kLong);

    // No server is running: a request that passed the capacity gate
    // would park until the deadline, so the *immediate* throw is itself
    // proof the check precedes the handshake and the copy.
    std::vector<NodeId> nodes(10);
    MemorySlice slice;
    try {
      ch.read(0, nodes, slice);
      FAIL() << "oversized read must throw";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kCapacity);
    }

    MemoryWrite w;
    w.nodes = {0, 1, 2};
    w.mem = Matrix(3, 2);
    w.mem_ts = {0, 0, 0};
    w.mail = Matrix(3, 3);
    w.mail_ts = {0, 0, 0};
    try {
      ch.write(0, w);
      FAIL() << "oversized write must throw";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kCapacity);
    }
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(FabricFaults, ChannelAbortPoisonsParkedClient) {
  const std::string prefix = make_session_prefix();
  {
    ShmDaemonSpec spec;
    spec.slots = 1;
    spec.mem_dim = 2;
    spec.mail_dim = 2;
    spec.max_read_nodes = 8;
    spec.max_write_nodes = 8;
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", spec);
    ShmDaemonChannel ch =
        ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kLong);
    std::atomic<bool> aborted{false};
    std::thread client([&] {
      std::vector<NodeId> nodes = {1, 2};
      MemorySlice slice;
      try {
        ch.read(0, nodes, slice);  // no server: parks until poisoned
      } catch (const FabricError& e) {
        aborted.store(e.code() == FabricErrc::kAborted);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ch.abort_session();
    client.join();
    EXPECT_TRUE(aborted.load());
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

}  // namespace
}  // namespace disttgl::dist
