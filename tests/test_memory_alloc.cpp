// Allocation-freedom of the memory I/O path: once warm-up has grown the
// recycled buffers (MemorySlice, MemoryWrite, the model's make_write
// scratch, the reused StepResult) to their high-water marks, the full
//
//   read → train_step → make_write → write
//
// loop must never touch the allocator again — directly against a
// MemoryState (serial and with the gather fanned over a thread pool)
// and through the MemoryDaemon's zero-copy protocol. Same
// counting-global-allocator technique as test_kernels/test_batch_alloc;
// the counter lives in this binary only.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "core/tgn_model.hpp"
#include "datagen/generator.hpp"
#include "memory/daemon.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace disttgl {
namespace {

struct Fixture {
  TemporalGraph graph;
  ModelConfig cfg;
  NeighborSampler sampler;
  NegativeSampler negatives;
  MiniBatchBuilder builder;
  MemoryState state;
  Rng rng;
  TGNModel model;
  // Rotation of three differently-shaped batches so the recycled
  // buffers shrink and grow across iterations, as in real training.
  std::vector<MiniBatch> batches;

  Fixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 50;
          spec.num_dst = 25;
          spec.num_events = 2400;
          spec.edge_feat_dim = 4;
          spec.seed = 29;
          return datagen::generate(spec);
        }()),
        cfg([] {
          ModelConfig c;
          c.mem_dim = 8;
          c.time_dim = 4;
          c.attn_dim = 8;
          c.num_heads = 2;
          c.emb_dim = 8;
          c.num_neighbors = 4;
          c.head_hidden = 8;
          return c;
        }()),
        sampler(graph, cfg.num_neighbors),
        negatives(graph, 4, 13),
        builder(graph, sampler, negatives, 1),
        state(graph.num_nodes(), cfg.mem_dim, 2 * cfg.mem_dim + 4),
        rng(41),
        model(cfg, graph, nullptr, rng) {
    batches.push_back(builder.build(0, 0, 200, std::size_t{0}));
    batches.push_back(builder.build(1, 200, 260, std::size_t{1}));
    batches.push_back(builder.build(2, 260, 460, std::size_t{2}));
  }
};

TEST(MemoryAllocationFree, SerialReadTrainWriteSteadyState) {
  Fixture fx;
  MemorySlice slice;
  MemoryWrite write;
  TGNModel::StepResult step;
  auto iteration = [&](std::size_t r) {
    const MiniBatch& mb = fx.batches[r % fx.batches.size()];
    fx.state.read_into(mb.unique_nodes, slice);
    fx.model.zero_grad();
    write.clear();
    fx.model.train_step_into(mb, slice, 0, &write, step);
    fx.state.write(write);
  };
  for (std::size_t r = 0; r < 9; ++r) iteration(r);  // warm up
  const std::size_t before = g_alloc_count.load();
  for (std::size_t r = 0; r < 12; ++r) iteration(r);
  EXPECT_EQ(g_alloc_count.load(), before)
      << "steady-state serial memory loop allocated";
}

TEST(MemoryAllocationFree, PooledGatherScatterSteadyState) {
  // Large gathers fanned over parallel_for: the fan-out itself must be
  // allocation-free (chunk claiming runs on an atomic counter).
  MemoryState state(20000, 16, 24);
  ThreadPool pool(3);
  Rng rng(5);
  std::vector<NodeId> nodes(4096);
  for (auto& v : nodes) v = static_cast<NodeId>(rng.uniform_int(20000));
  MemoryWrite w;
  w.nodes = nodes;  // duplicates are fine serially; dedupe for parallel
  std::sort(w.nodes.begin(), w.nodes.end());
  w.nodes.erase(std::unique(w.nodes.begin(), w.nodes.end()), w.nodes.end());
  const std::size_t n = w.nodes.size();
  w.mem.resize(n, 16, 0.5f);
  w.mem_ts.assign(n, 1.0f);
  w.mail.resize(n, 24, -0.5f);
  w.mail_ts.assign(n, 1.5f);

  MemorySlice slice;
  auto cycle = [&] {
    state.read_into(nodes, slice, &pool);
    state.write(w, &pool);
  };
  for (int r = 0; r < 4; ++r) cycle();
  const std::size_t before = g_alloc_count.load();
  for (int r = 0; r < 8; ++r) cycle();
  EXPECT_EQ(g_alloc_count.load(), before)
      << "pooled gather/scatter allocated";
}

TEST(MemoryAllocationFree, DaemonZeroCopyLoopSteadyState) {
  // The full protocol through the daemon: the trainer lends its slice /
  // write buffers via the zero-copy slots, so after warm-up neither
  // side of the protocol touches the allocator. i=1, j=1 makes the
  // round trip synchronous: when write() returns, the daemon has
  // finished the round and is parked awaiting the next read — no
  // daemon-thread allocation can leak past the measurement boundary.
  Fixture fx;
  constexpr std::size_t kWarm = 9;
  constexpr std::size_t kMeasured = 12;
  DaemonConfig dc;
  dc.i = 1;
  dc.j = 1;
  dc.reset_before_round.assign(kWarm + kMeasured, 0);
  dc.reset_before_round[0] = 1;
  MemoryDaemon daemon(fx.state, dc);
  daemon.start();

  MemorySlice slice;
  MemoryWrite write;
  TGNModel::StepResult step;
  auto iteration = [&](std::size_t r) {
    const MiniBatch& mb = fx.batches[r % fx.batches.size()];
    daemon.read(0, mb.unique_nodes, slice);
    fx.model.zero_grad();
    write.clear();
    fx.model.train_step_into(mb, slice, 0, &write, step);
    daemon.write(0, write);
  };
  for (std::size_t r = 0; r < kWarm; ++r) iteration(r);
  const std::size_t before = g_alloc_count.load();
  for (std::size_t r = 0; r < kMeasured; ++r) iteration(r);
  EXPECT_EQ(g_alloc_count.load(), before)
      << "steady-state zero-copy daemon loop allocated";
  daemon.join();
}

}  // namespace
}  // namespace disttgl
