// TemporalGraph storage, incidence index, and dataset statistics.
#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "graph/temporal_graph.hpp"

namespace disttgl {
namespace {

TemporalGraph tiny_graph() {
  // 4 nodes (2 src + 2 dst), 5 events.
  std::vector<TemporalEdge> events = {
      {0, 2, 1.0f, 0}, {1, 3, 2.0f, 0}, {0, 3, 3.0f, 0},
      {0, 2, 4.0f, 0}, {1, 2, 5.0f, 0},
  };
  return TemporalGraph::from_events("tiny", 4, std::move(events), 2);
}

TEST(TemporalGraph, BasicProperties) {
  TemporalGraph g = tiny_graph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_events(), 5u);
  EXPECT_TRUE(g.bipartite());
  EXPECT_EQ(g.dst_partition_begin(), 2u);
  EXPECT_FLOAT_EQ(g.max_timestamp(), 5.0f);
}

TEST(TemporalGraph, EventIdsAssignedInOrder) {
  TemporalGraph g = tiny_graph();
  for (EdgeId i = 0; i < g.num_events(); ++i) EXPECT_EQ(g.event(i).id, i);
}

TEST(TemporalGraph, RejectsOutOfOrderTimestamps) {
  std::vector<TemporalEdge> events = {{0, 1, 2.0f, 0}, {0, 1, 1.0f, 0}};
  EXPECT_THROW(TemporalGraph::from_events("bad", 2, std::move(events)),
               std::logic_error);
}

TEST(TemporalGraph, RejectsNodeIdOutOfRange) {
  std::vector<TemporalEdge> events = {{0, 5, 1.0f, 0}};
  EXPECT_THROW(TemporalGraph::from_events("bad", 2, std::move(events)),
               std::logic_error);
}

TEST(TemporalGraph, IncidenceListsAreTimeSorted) {
  TemporalGraph g = tiny_graph();
  auto inc0 = g.incident(0);  // events 0, 2, 3
  ASSERT_EQ(inc0.size(), 3u);
  EXPECT_EQ(inc0[0], 0u);
  EXPECT_EQ(inc0[1], 2u);
  EXPECT_EQ(inc0[2], 3u);
  auto inc2 = g.incident(2);  // node 2 is dst of events 0, 3, 4
  ASSERT_EQ(inc2.size(), 3u);
  EXPECT_EQ(inc2[2], 4u);
}

TEST(TemporalGraph, EventsBeforeBinarySearch) {
  TemporalGraph g = tiny_graph();
  EXPECT_EQ(g.events_before(0, 0.5f), 0u);
  EXPECT_EQ(g.events_before(0, 1.0f), 0u);  // strictly before
  EXPECT_EQ(g.events_before(0, 3.5f), 2u);
  EXPECT_EQ(g.events_before(0, 100.0f), 3u);
}

TEST(TemporalGraph, SelfLoopCountedOnce) {
  std::vector<TemporalEdge> events = {{1, 1, 1.0f, 0}};
  TemporalGraph g = TemporalGraph::from_events("loop", 2, std::move(events));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(TemporalGraph, FeatureAttachment) {
  TemporalGraph g = tiny_graph();
  EXPECT_FALSE(g.has_edge_features());
  Matrix ef(5, 3, 1.0f);
  g.set_edge_features(std::move(ef));
  EXPECT_TRUE(g.has_edge_features());
  EXPECT_EQ(g.edge_feat_dim(), 3u);
  Matrix wrong(4, 3);
  EXPECT_THROW(g.set_edge_features(std::move(wrong)), std::logic_error);
}

TEST(TemporalGraph, LabelAttachment) {
  TemporalGraph g = tiny_graph();
  EXPECT_FALSE(g.has_edge_labels());
  Matrix labels(5, 7, 0.0f);
  g.set_edge_labels(std::move(labels));
  EXPECT_TRUE(g.has_edge_labels());
  EXPECT_EQ(g.num_classes(), 7u);
}

TEST(Stats, ComputesBasicCounts) {
  TemporalGraph g = tiny_graph();
  DatasetStats s = compute_stats(g);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_events, 5u);
  EXPECT_TRUE(s.bipartite);
  EXPECT_FLOAT_EQ(s.max_timestamp, 5.0f);
  // Degrees: node0=3, node1=2, node2=3, node3=2 → mean 2.5, max 3.
  EXPECT_DOUBLE_EQ(s.mean_degree, 2.5);
  EXPECT_EQ(s.max_degree, 3u);
  // (0,2) appears twice → 1 repeat out of 5.
  EXPECT_DOUBLE_EQ(s.repeat_edge_fraction, 0.2);
}

TEST(Stats, GiniZeroForUniformDegrees) {
  std::vector<TemporalEdge> events = {
      {0, 1, 1.0f, 0}, {2, 3, 2.0f, 0}, {4, 5, 3.0f, 0}};
  TemporalGraph g = TemporalGraph::from_events("uniform", 6, std::move(events));
  DatasetStats s = compute_stats(g);
  EXPECT_NEAR(s.degree_gini, 0.0, 1e-9);
}

TEST(Stats, FormattingContainsName) {
  DatasetStats s = compute_stats(tiny_graph());
  EXPECT_NE(format_stats_row(s).find("tiny"), std::string::npos);
  EXPECT_NE(stats_header().find("dataset"), std::string::npos);
}

}  // namespace
}  // namespace disttgl
