// CSV event-stream loading and checkpoint save/load round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/tgn_model.hpp"
#include "datagen/generator.hpp"
#include "eval/evaluator.hpp"
#include "graph/csv_loader.hpp"

namespace disttgl {
namespace {

TEST(CsvLoader, ParsesBasicStream) {
  std::istringstream in(
      "src,dst,ts\n"
      "0,3,1.0\n"
      "1,4,2.5\n"
      "0,4,3.0\n");
  TemporalGraph g = load_temporal_csv(in, "csv");
  EXPECT_EQ(g.num_events(), 3u);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_FALSE(g.bipartite());
  EXPECT_FLOAT_EQ(g.event(1).ts, 2.5f);
  EXPECT_EQ(g.event(2).src, 0u);
  EXPECT_FALSE(g.has_edge_features());
}

TEST(CsvLoader, LoadsEdgeFeatures) {
  std::istringstream in(
      "src,dst,ts,f0,f1\n"
      "0,1,1.0,0.5,-0.5\n"
      "1,0,2.0,1.5,2.5\n");
  TemporalGraph g = load_temporal_csv(in, "csv");
  ASSERT_TRUE(g.has_edge_features());
  EXPECT_EQ(g.edge_feat_dim(), 2u);
  EXPECT_FLOAT_EQ(g.edge_features()(1, 1), 2.5f);
}

TEST(CsvLoader, SkipColumnsAndLimitFeatures) {
  std::istringstream in(
      "src,dst,ts,label,f0,f1\n"
      "0,1,1.0,0,0.5,9.0\n");
  CsvLoadOptions opts;
  opts.skip_columns = 1;       // drop the Jodie state-change label
  opts.edge_feature_dims = 1;  // keep only f0
  TemporalGraph g = load_temporal_csv(in, "csv", opts);
  ASSERT_TRUE(g.has_edge_features());
  EXPECT_EQ(g.edge_feat_dim(), 1u);
  EXPECT_FLOAT_EQ(g.edge_features()(0, 0), 0.5f);
}

TEST(CsvLoader, BipartiteReindexOffsetsDestinations) {
  std::istringstream in(
      "src,dst,ts\n"
      "0,0,1.0\n"
      "2,1,2.0\n");
  CsvLoadOptions opts;
  opts.bipartite_reindex = true;
  TemporalGraph g = load_temporal_csv(in, "csv", opts);
  EXPECT_TRUE(g.bipartite());
  EXPECT_EQ(g.dst_partition_begin(), 3u);  // max src id + 1
  EXPECT_EQ(g.num_nodes(), 5u);            // 3 users + 2 items
  EXPECT_EQ(g.event(0).dst, 3u);
  EXPECT_EQ(g.event(1).dst, 4u);
}

TEST(CsvLoader, RejectsMalformedInput) {
  {
    std::istringstream in("src,dst,ts\n0,1\n");
    EXPECT_THROW(load_temporal_csv(in, "bad"), std::logic_error);
  }
  {
    std::istringstream in("src,dst,ts\n0,1,abc\n");
    EXPECT_THROW(load_temporal_csv(in, "bad"), std::logic_error);
  }
  {
    std::istringstream in("src,dst,ts\n0,1,5.0\n0,1,4.0\n");
    EXPECT_THROW(load_temporal_csv(in, "bad"), std::logic_error)
        << "decreasing timestamps must be rejected";
  }
  {
    std::istringstream in("src,dst,ts,f0\n0,1,1.0,0.5\n0,1,2.0\n");
    EXPECT_THROW(load_temporal_csv(in, "bad"), std::logic_error)
        << "inconsistent feature columns must be rejected";
  }
  {
    std::istringstream in("src,dst,ts\n");
    EXPECT_THROW(load_temporal_csv(in, "bad"), std::logic_error) << "no events";
  }
}

TEST(CsvLoader, MissingFileThrows) {
  EXPECT_THROW(load_temporal_csv_file("/nonexistent/x.csv", "x"),
               std::logic_error);
}

struct CheckpointFixture {
  TemporalGraph graph;
  ModelConfig cfg;
  Rng rng;
  TGNModel model;
  MemoryState state;

  CheckpointFixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 30;
          spec.num_dst = 15;
          spec.num_events = 600;
          spec.seed = 5;
          return datagen::generate(spec);
        }()),
        cfg([] {
          ModelConfig c;
          c.mem_dim = 8;
          c.time_dim = 4;
          c.attn_dim = 8;
          c.emb_dim = 8;
          c.num_neighbors = 3;
          c.head_hidden = 8;
          return c;
        }()),
        rng(1),
        model(cfg, graph, nullptr, rng),
        state(graph.num_nodes(), cfg.mem_dim, 2 * cfg.mem_dim) {}
};

TEST(Checkpoint, RoundTripsWeightsAndMemory) {
  CheckpointFixture a;
  // Advance the stream a little so memory/mailbox are non-trivial.
  NeighborSampler sampler(a.graph, a.cfg.num_neighbors);
  NegativeSampler negs(a.graph, 1, 2);
  MiniBatchBuilder builder(a.graph, sampler, negs, 1);
  for (std::size_t b = 0; b < 4; ++b) {
    MiniBatch mb = builder.build(b, b * 50, (b + 1) * 50, std::size_t{0});
    MemorySlice slice = a.state.read(mb.unique_nodes);
    MemoryWrite w;
    a.model.infer(mb, slice, &w);
    a.state.write(w);
  }

  const std::string path = "/tmp/disttgl_ckpt_test.bin";
  auto params_a = a.model.parameters();
  save_checkpoint(path, params_a, {&a.state});

  // A differently-seeded instance must converge to identical state.
  CheckpointFixture b;
  Rng rng2(99);
  TGNModel model_b(b.cfg, b.graph, nullptr, rng2);
  MemoryState state_b(b.graph.num_nodes(), b.cfg.mem_dim, 2 * b.cfg.mem_dim);
  auto params_b = model_b.parameters();
  std::vector<MemoryState*> states_b = {&state_b};
  load_checkpoint(path, params_b, states_b);

  std::vector<float> wa, wb;
  nn::flatten_values(params_a, wa);
  nn::flatten_values(params_b, wb);
  EXPECT_EQ(wa, wb);

  std::vector<NodeId> all(a.graph.num_nodes());
  for (NodeId v = 0; v < all.size(); ++v) all[v] = v;
  MemorySlice sa = a.state.read(all);
  MemorySlice sb = state_b.read(all);
  for (std::size_t i = 0; i < sa.mem.size(); ++i)
    ASSERT_EQ(sa.mem.data()[i], sb.mem.data()[i]);
  EXPECT_EQ(sa.mem_ts, sb.mem_ts);
  EXPECT_EQ(sa.mail_ts, sb.mail_ts);
  EXPECT_EQ(sa.has_mail, sb.has_mail);

  // And identical downstream behaviour: same scores on the next batch.
  MiniBatch mb = builder.build(9, 200, 250, std::size_t{0});
  MemorySlice slice_a = a.state.read(mb.unique_nodes);
  MemorySlice slice_b = state_b.read(mb.unique_nodes);
  auto res_a = a.model.infer(mb, slice_a, nullptr);
  auto res_b = model_b.infer(mb, slice_b, nullptr);
  for (std::size_t e = 0; e < mb.num_pos(); ++e)
    ASSERT_EQ(res_a.pos_scores(e, 0), res_b.pos_scores(e, 0));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsShapeMismatch) {
  CheckpointFixture a;
  const std::string path = "/tmp/disttgl_ckpt_mismatch.bin";
  auto params = a.model.parameters();
  save_checkpoint(path, params, {&a.state});

  // Wrong memory dimensions: the typed error names the path and carries
  // the expected/got pair that disagreed.
  MemoryState small(a.graph.num_nodes(), a.cfg.mem_dim / 2, a.cfg.mem_dim);
  std::vector<MemoryState*> states = {&small};
  try {
    load_checkpoint(path, params, states);
    FAIL() << "shape mismatch not detected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointErrc::kShapeMismatch);
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.expected(), a.cfg.mem_dim / 2);  // the live state's dim
    EXPECT_EQ(e.got(), a.cfg.mem_dim);           // the checkpoint's dim
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = "/tmp/disttgl_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  CheckpointFixture a;
  auto params = a.model.parameters();
  std::vector<MemoryState*> states = {&a.state};
  try {
    load_checkpoint(path, params, states);
    FAIL() << "garbage file not detected";
  } catch (const CheckpointError& e) {
    // 16 bytes of prose is shorter than the container header.
    EXPECT_EQ(e.code(), CheckpointErrc::kTruncated);
    EXPECT_EQ(e.path(), path);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace disttgl
