// Property tests pinning the sampling layer to brute-force references
// on randomized graphs: NeighborSampler (newest-first order, strictly
// before t, ≤ K), sample_many ≡ one-at-a-time (serial and pooled), and
// the MiniBatch invariants every consumer relies on (root layout
// [src|dst|variant negs], unique_nodes dedup, neg_variants coverage).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/generator.hpp"
#include "sampling/minibatch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace disttgl {
namespace {

// Random multigraph with duplicate timestamps (integer draws) and
// self-referencing repeat edges — harsher than the datagen presets,
// which never emit equal-timestamp bursts this dense.
TemporalGraph random_graph(std::uint64_t seed, std::size_t num_nodes,
                           std::size_t num_events, std::size_t num_src = 0) {
  Rng rng(seed);
  std::vector<float> stamps(num_events);
  for (auto& t : stamps)
    t = static_cast<float>(rng.uniform_int(num_events / 2 + 1));
  std::sort(stamps.begin(), stamps.end());
  std::vector<TemporalEdge> events(num_events);
  const std::size_t src_lim = num_src != 0 ? num_src : num_nodes;
  for (std::size_t i = 0; i < num_events; ++i) {
    events[i].src = static_cast<NodeId>(rng.uniform_int(src_lim));
    events[i].dst = num_src != 0
                        ? static_cast<NodeId>(
                              num_src + rng.uniform_int(num_nodes - num_src))
                        : static_cast<NodeId>(rng.uniform_int(num_nodes));
    events[i].ts = stamps[i];
  }
  return TemporalGraph::from_events("random", num_nodes, std::move(events),
                                    num_src);
}

// Brute-force most-recent-K: scan the full event table in id order
// (ids ascend with time, so this matches the CSR's (ts, id) order),
// keep incident events strictly before t, take the last K, newest first.
std::vector<NeighborSample> brute_force(const TemporalGraph& g, NodeId v,
                                        float t, std::size_t k) {
  std::vector<NeighborSample> hits;
  for (const TemporalEdge& e : g.events()) {
    if (e.ts >= t) break;  // events are time-sorted
    if (e.src != v && e.dst != v) continue;
    hits.push_back({e.src == v ? e.dst : e.src, e.id, e.ts});
  }
  std::vector<NeighborSample> out;
  const std::size_t n = std::min(k, hits.size());
  for (std::size_t i = 0; i < n; ++i) out.push_back(hits[hits.size() - 1 - i]);
  return out;
}

TEST(NeighborSamplerProperty, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    TemporalGraph g = random_graph(seed, 40, 500);
    for (std::size_t k : {1u, 3u, 7u}) {
      NeighborSampler sampler(g, k);
      std::vector<NeighborSample> out(k);
      Rng rng(seed ^ 0xabcdULL);
      for (int q = 0; q < 200; ++q) {
        const NodeId v = static_cast<NodeId>(rng.uniform_int(40));
        const float t = static_cast<float>(rng.uniform(0.0, 260.0));
        const std::size_t n = sampler.sample(v, t, out);
        const auto want = brute_force(g, v, t, k);
        ASSERT_EQ(n, want.size()) << "seed=" << seed << " v=" << v << " t=" << t;
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i].edge, want[i].edge);
          EXPECT_EQ(out[i].neighbor, want[i].neighbor);
          EXPECT_FLOAT_EQ(out[i].ts, want[i].ts);
          EXPECT_LT(out[i].ts, t) << "strictly before t";
          if (i > 0) EXPECT_GE(want[i - 1].ts, want[i].ts) << "newest first";
        }
      }
    }
  }
}

TEST(NeighborSamplerProperty, SampleManyMatchesOneAtATime) {
  TemporalGraph g = random_graph(11, 60, 900);
  NeighborSampler sampler(g, 5);
  Rng rng(77);
  SampledRoots roots;
  for (int q = 0; q < 700; ++q) {
    roots.nodes.push_back(static_cast<NodeId>(rng.uniform_int(60)));
    roots.ts.push_back(static_cast<float>(rng.uniform(0.0, 460.0)));
  }
  sampler.sample_many(roots);

  std::vector<NeighborSample> one(5);
  for (std::size_t r = 0; r < roots.size(); ++r) {
    const std::size_t n = sampler.sample(roots.nodes[r], roots.ts[r], one);
    ASSERT_EQ(roots.valid[r], n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(roots.neigh_node[r * 5 + i], one[i].neighbor);
      EXPECT_EQ(roots.neigh_edge[r * 5 + i], one[i].edge);
      EXPECT_FLOAT_EQ(roots.neigh_dt[r * 5 + i], roots.ts[r] - one[i].ts);
    }
    for (std::size_t i = n; i < 5; ++i) {
      EXPECT_EQ(roots.neigh_node[r * 5 + i], kInvalidNode);
      EXPECT_EQ(roots.neigh_edge[r * 5 + i], kInvalidEdge);
    }
  }
}

TEST(NeighborSamplerProperty, SampleManyIdenticalAcrossThreadCounts) {
  TemporalGraph g = random_graph(21, 80, 1200);
  NeighborSampler sampler(g, 4);
  Rng rng(5);
  SampledRoots serial;
  for (int q = 0; q < 2000; ++q) {  // enough roots to clear the fan-out grain
    serial.nodes.push_back(static_cast<NodeId>(rng.uniform_int(80)));
    serial.ts.push_back(static_cast<float>(rng.uniform(0.0, 620.0)));
  }
  SampledRoots pooled;
  pooled.nodes = serial.nodes;
  pooled.ts = serial.ts;

  sampler.sample_many(serial);
  for (std::size_t threads : {2u, 3u, 5u}) {
    ThreadPool pool(threads);
    sampler.sample_many(pooled, &pool);
    EXPECT_EQ(pooled.valid, serial.valid) << threads << " threads";
    EXPECT_EQ(pooled.neigh_node, serial.neigh_node);
    EXPECT_EQ(pooled.neigh_edge, serial.neigh_edge);
    EXPECT_EQ(pooled.neigh_dt, serial.neigh_dt);
  }
}

TEST(NeighborSamplerProperty, SampleManyEmptyAndRecycled) {
  TemporalGraph g = random_graph(31, 20, 100);
  NeighborSampler sampler(g, 3);
  SampledRoots roots;
  sampler.sample_many(roots);  // empty batch is legal
  EXPECT_EQ(roots.size(), 0u);
  // Refill after a larger use: stale state must not leak through.
  roots.nodes = {1, 2, 3, 4, 5};
  roots.ts = {50.f, 50.f, 50.f, 50.f, 50.f};
  sampler.sample_many(roots);
  roots.clear();
  roots.nodes = {1};
  roots.ts = {50.f};
  sampler.sample_many(roots);
  EXPECT_EQ(roots.valid.size(), 1u);
  EXPECT_EQ(roots.neigh_node.size(), 3u);
}

// ---- MiniBatch invariants on randomized builds ---------------------------

TEST(MiniBatchProperty, InvariantsHoldOnRandomBatches) {
  for (std::uint64_t seed : {3u, 9u}) {
    TemporalGraph g = random_graph(seed, 50, 800, /*num_src=*/30);
    NeighborSampler sampler(g, 4);
    NegativeSampler negs(g, 6, 17);
    for (std::size_t num_neg : {1u, 2u}) {
      MiniBatchBuilder builder(g, sampler, negs, num_neg);
      Rng rng(seed);
      for (int trial = 0; trial < 12; ++trial) {
        const std::size_t begin = rng.uniform_int(700);
        const std::size_t end = begin + 1 + rng.uniform_int(90);
        std::vector<std::size_t> groups;
        for (std::size_t v = 0, J = 1 + rng.uniform_int(3); v < J; ++v)
          groups.push_back(rng.uniform_int(6));
        MiniBatch mb = builder.build(trial, begin, end, groups);

        const std::size_t n = end - begin;
        const std::size_t K = mb.roots.k;
        ASSERT_EQ(mb.num_pos(), n);
        ASSERT_EQ(mb.neg_variants, groups.size());
        ASSERT_EQ(mb.num_roots(), n * 2 + n * num_neg * groups.size());

        // Root layout: [src | dst | variant negs], all at event times.
        for (std::size_t i = 0; i < n; ++i) {
          const TemporalEdge& e = g.event(static_cast<EdgeId>(begin + i));
          EXPECT_EQ(mb.roots.nodes[mb.src_begin() + i], e.src);
          EXPECT_EQ(mb.roots.nodes[mb.dst_begin() + i], e.dst);
          EXPECT_FLOAT_EQ(mb.roots.ts[i], e.ts);
          EXPECT_FLOAT_EQ(mb.roots.ts[mb.dst_begin() + i], e.ts);
        }
        // neg_variants coverage: block v holds exactly group v's draw.
        for (std::size_t v = 0; v < groups.size(); ++v) {
          const auto want = negs.sample(groups[v], trial, n * num_neg);
          for (std::size_t x = 0; x < n * num_neg; ++x) {
            EXPECT_EQ(mb.neg_dst[v * n * num_neg + x], want[x]);
            EXPECT_EQ(mb.roots.nodes[mb.neg_begin(v) + x], want[x]);
            EXPECT_FLOAT_EQ(mb.roots.ts[mb.neg_begin(v) + x],
                            mb.ts[x / num_neg]);
          }
        }

        // unique_nodes: no duplicates, covers roots ∪ valid neighbors,
        // and the index maps agree.
        std::set<NodeId> uniq(mb.unique_nodes.begin(), mb.unique_nodes.end());
        ASSERT_EQ(uniq.size(), mb.unique_nodes.size());
        for (std::size_t r = 0; r < mb.num_roots(); ++r) {
          ASSERT_LE(mb.roots.valid[r], sampler.k());
          EXPECT_EQ(mb.unique_nodes[mb.root_to_unique[r]], mb.roots.nodes[r]);
          for (std::size_t k = 0; k < mb.roots.valid[r]; ++k) {
            EXPECT_EQ(mb.unique_nodes[mb.neigh_to_unique[r * K + k]],
                      mb.roots.neigh_node[r * K + k]);
            EXPECT_GT(mb.roots.neigh_dt[r * K + k], 0.0f)
                << "neighbors are strictly before the query time";
          }
        }
      }
    }
  }
}

TEST(MiniBatchProperty, BuildIntoRecycledBatchMatchesFreshBuild) {
  TemporalGraph g = random_graph(13, 40, 600, /*num_src=*/25);
  NeighborSampler sampler(g, 3);
  NegativeSampler negs(g, 4, 9);
  MiniBatchBuilder builder(g, sampler, negs, 2);

  MiniBatch recycled;
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    // Shrinking and growing ranges stress stale-capacity leaks.
    const std::size_t begin = rng.uniform_int(500);
    const std::size_t end = begin + 1 + rng.uniform_int(80);
    std::vector<std::size_t> groups;
    for (std::size_t v = 0, J = 1 + rng.uniform_int(2); v < J; ++v)
      groups.push_back(rng.uniform_int(4));
    builder.build_into(trial, begin, end, groups, recycled);
    const MiniBatch fresh = builder.build(trial, begin, end, groups);

    EXPECT_EQ(recycled.events, fresh.events);
    EXPECT_EQ(recycled.src, fresh.src);
    EXPECT_EQ(recycled.dst, fresh.dst);
    EXPECT_EQ(recycled.neg_dst, fresh.neg_dst);
    EXPECT_EQ(recycled.roots.nodes, fresh.roots.nodes);
    EXPECT_EQ(recycled.roots.valid, fresh.roots.valid);
    EXPECT_EQ(recycled.roots.neigh_node, fresh.roots.neigh_node);
    EXPECT_EQ(recycled.roots.neigh_edge, fresh.roots.neigh_edge);
    EXPECT_EQ(recycled.unique_nodes, fresh.unique_nodes);
    EXPECT_EQ(recycled.root_to_unique, fresh.root_to_unique);
  }
}

TEST(MiniBatchProperty, PooledSamplerBuilderMatchesSerial) {
  TemporalGraph g = random_graph(17, 45, 700, /*num_src=*/30);
  NeighborSampler sampler(g, 4);
  NegativeSampler negs(g, 4, 9);
  MiniBatchBuilder serial_builder(g, sampler, negs, 1);
  ThreadPool pool(3);
  MiniBatchBuilder pooled_builder(g, sampler, negs, 1, &pool);
  const std::vector<std::size_t> groups = {1, 3};
  const MiniBatch a = serial_builder.build(0, 0, 400, groups);
  const MiniBatch b = pooled_builder.build(0, 0, 400, groups);
  EXPECT_EQ(a.unique_nodes, b.unique_nodes);
  EXPECT_EQ(a.roots.neigh_node, b.roots.neigh_node);
  EXPECT_EQ(a.roots.valid, b.roots.valid);
  EXPECT_EQ(a.neigh_to_unique, b.neigh_to_unique);
}

}  // namespace
}  // namespace disttgl
