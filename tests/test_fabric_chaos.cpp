// Network-chaos suite (distributed/chaos.hpp): every injected wire
// fault — drop, duplicate, bit flip, truncation, bounded delay, one-shot
// connection reset — must surface as a *typed* FabricError or deliver
// bitwise-intact frames; never a hang, never silently wrong data. Three
// layers:
//   1. per-knob unit tests on a single ChaosEndpoint pair, over both
//      socket families (TCP loopback and a UNIX socketpair — the
//      endpoint is fd-level);
//   2. a seeded wire-level soak grid (fault mixes × families × seeds)
//      pumping frame streams through the production decoder;
//   3. a training-level soak grid on the kTcp fabric where each cell
//      must end either bitwise-identical to the thread-fabric baseline
//      or in a typed FabricError — the chaos contract end to end,
//      including the ring-reconnect tier healing injected resets;
// plus the supervisor's sliding-window restart budget (kRestartStorm)
// and a leak sweep (tools/sweep_shm.py) proving chaos-killed
// connections leave no shm segments, socket files, or listener fds.
//
// CI runs this file under the `chaos_soak` CTest label with
// DISTTGL_CHAOS_ITERS bounding the seeded grid width.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/proc_trainer.hpp"
#include "core/recovery.hpp"
#include "datagen/generator.hpp"
#include "distributed/chaos.hpp"
#include "distributed/hier_comm.hpp"
#include "distributed/socket.hpp"
#include "distributed/wire.hpp"

namespace disttgl::dist {
namespace {

constexpr std::chrono::milliseconds kTimeout{30'000};

// Seeded-grid width; CI bounds it via DISTTGL_CHAOS_ITERS.
std::size_t soak_iters(std::size_t dflt) {
  if (const char* env = std::getenv("DISTTGL_CHAOS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return dflt;
}

// A connected stream pair of the given family. The listener (TCP only)
// rides along so it closes with the pair.
struct StreamPair {
  TcpEndpoint a;
  TcpEndpoint b;
  FdHandle listener;
};

StreamPair make_stream_pair(bool tcp_family) {
  StreamPair p;
  if (tcp_family) {
    std::uint16_t port = 0;
    p.listener = tcp_listen("127.0.0.1", 0, 4, port);
    FdHandle dial = tcp_connect("127.0.0.1", port, deadline_after(kTimeout));
    FdHandle acc = accept_conn(p.listener.get(), deadline_after(kTimeout));
    p.a = TcpEndpoint(std::move(dial));
    p.b = TcpEndpoint(std::move(acc));
    return p;
  }
  int sv[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  p.a = TcpEndpoint(FdHandle(sv[0]));
  p.b = TcpEndpoint(FdHandle(sv[1]));
  return p;
}

std::vector<std::uint8_t> indexed_payload(std::uint64_t index) {
  WireWriter w;
  w.put_u64(index);
  w.put_string("chaos-frame-" + std::to_string(index));
  return w.take();
}

// ---- per-knob unit tests -------------------------------------------------

TEST(ChaosEndpoint, DisabledIsPassthroughBothFamilies) {
  for (const bool tcp : {true, false}) {
    StreamPair p = make_stream_pair(tcp);
    ChaosEndpoint sender(std::move(p.a));  // chaos disabled
    for (std::uint64_t i = 0; i < 8; ++i)
      sender.send(MsgType::kResult, indexed_payload(i),
                  deadline_after(kTimeout));
    Frame f;
    for (std::uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(p.b.recv(f, deadline_after(kTimeout))) << "tcp=" << tcp;
      EXPECT_EQ(f.payload, indexed_payload(i));
    }
    EXPECT_EQ(sender.faults_injected(), 0u);
  }
}

TEST(ChaosEndpoint, BitFlipSurfacesAsBadChecksumBothFamilies) {
  for (const bool tcp : {true, false}) {
    StreamPair p = make_stream_pair(tcp);
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 11;
    cfg.flip_prob = 1.0;
    ChaosEndpoint sender(std::move(p.a), cfg, 0);
    sender.send(MsgType::kResult, indexed_payload(7),
                deadline_after(kTimeout));
    Frame f;
    try {
      p.b.recv(f, deadline_after(kTimeout));
      FAIL() << "flipped frame decoded cleanly (tcp=" << tcp << ")";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kBadChecksum);
    }
    EXPECT_EQ(sender.faults_injected(), 1u);
  }
}

TEST(ChaosEndpoint, EmptyPayloadFlipStillSurfacesAsBadChecksum) {
  StreamPair p = make_stream_pair(true);
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.flip_prob = 1.0;
  ChaosEndpoint sender(std::move(p.a), cfg, 0);
  sender.send(MsgType::kHello, {}, deadline_after(kTimeout));
  Frame f;
  try {
    p.b.recv(f, deadline_after(kTimeout));
    FAIL() << "flipped empty frame decoded cleanly";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kBadChecksum);
  }
}

TEST(ChaosEndpoint, TruncationTypedAtBothEnds) {
  for (const bool tcp : {true, false}) {
    StreamPair p = make_stream_pair(tcp);
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 5;
    cfg.truncate_prob = 1.0;
    ChaosEndpoint sender(std::move(p.a), cfg, 0);
    try {
      sender.send(MsgType::kResult, indexed_payload(0),
                  deadline_after(kTimeout));
      FAIL() << "truncating send did not fail (tcp=" << tcp << ")";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kPeerClosed);
    }
    // Receiver: kTruncated mid-frame, or orderly EOF if the cut landed
    // exactly on the (empty-stream) frame boundary. Either is typed and
    // well-defined; silent success with a frame is the only failure.
    Frame f;
    try {
      EXPECT_FALSE(p.b.recv(f, deadline_after(kTimeout)))
          << "truncated stream yielded a whole frame (tcp=" << tcp << ")";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kTruncated);
    }
  }
}

TEST(ChaosEndpoint, ResetAtByteDeliversPrefixThenFiresOnce) {
  StreamPair p = make_stream_pair(true);
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.reset_at_byte = 40;  // frame 1 (< 40 cumulative bytes) passes
  ChaosEndpoint sender(std::move(p.a), cfg, 0);
  const std::vector<std::uint8_t> payload(8, 0x5a);  // 24 wire bytes
  sender.send(MsgType::kResult, payload, deadline_after(kTimeout));
  try {
    sender.send(MsgType::kResult, payload, deadline_after(kTimeout));
    FAIL() << "send across the reset boundary did not fail";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kPeerClosed);
    EXPECT_NE(std::string(e.what()).find("injected connection reset"),
              std::string::npos);
  }
  EXPECT_FALSE(sender.valid()) << "reset must close the connection";
  // The peer sees the pre-reset frame intact, then a typed cut.
  Frame f;
  ASSERT_TRUE(p.b.recv(f, deadline_after(kTimeout)));
  EXPECT_EQ(f.payload, payload);
  try {
    EXPECT_FALSE(p.b.recv(f, deadline_after(kTimeout)))
        << "post-reset bytes decoded into a whole frame";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kTruncated);
  }
}

TEST(ChaosEndpoint, DuplicateDeliversTheFrameTwice) {
  StreamPair p = make_stream_pair(true);
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.duplicate_prob = 1.0;
  ChaosEndpoint sender(std::move(p.a), cfg, 0);
  sender.send(MsgType::kResult, indexed_payload(3), deadline_after(kTimeout));
  Frame f;
  for (int copy = 0; copy < 2; ++copy) {
    ASSERT_TRUE(p.b.recv(f, deadline_after(kTimeout))) << "copy " << copy;
    EXPECT_EQ(f.payload, indexed_payload(3));
  }
}

TEST(ChaosEndpoint, DropIsSilentAtSenderTimeoutAtReceiver) {
  StreamPair p = make_stream_pair(true);
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.drop_prob = 1.0;
  ChaosEndpoint sender(std::move(p.a), cfg, 0);
  sender.send(MsgType::kResult, indexed_payload(0), deadline_after(kTimeout));
  EXPECT_EQ(sender.faults_injected(), 1u);
  Frame f;
  try {
    p.b.recv(f, deadline_after(std::chrono::milliseconds(150)));
    FAIL() << "dropped frame arrived";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kPeerTimeout);
  }
}

TEST(ChaosEndpoint, DelayDeliversIntact) {
  StreamPair p = make_stream_pair(true);
  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.delay_prob = 1.0;
  cfg.delay_ms = 20;
  ChaosEndpoint sender(std::move(p.a), cfg, 0);
  sender.send(MsgType::kResult, indexed_payload(9), deadline_after(kTimeout));
  Frame f;
  ASSERT_TRUE(p.b.recv(f, deadline_after(kTimeout)));
  EXPECT_EQ(f.payload, indexed_payload(9));
  EXPECT_EQ(sender.faults_injected(), 1u);
}

TEST(ChaosEndpoint, FaultStreamIsDeterministicPerSeedAndStream) {
  // Same (seed, stream id) must replay the same fault decisions — the
  // property that makes a failing soak cell reproducible.
  auto run = [](std::uint64_t seed, std::uint64_t stream) {
    StreamPair p = make_stream_pair(false);
    ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = seed;
    cfg.drop_prob = 0.5;
    ChaosEndpoint sender(std::move(p.a), cfg, stream);
    std::uint64_t delivered = 0;
    Frame f;
    for (std::uint64_t i = 0; i < 64; ++i) {
      sender.send(MsgType::kResult, indexed_payload(i),
                  deadline_after(kTimeout));
      // Drain what actually hit the wire (every non-dropped frame) so
      // the socketpair buffer never fills; drops are the only fault
      // here, so arithmetic on the fault counter is exact.
      while (delivered < i + 1 - sender.faults_injected()) {
        if (!p.b.recv(f, deadline_after(kTimeout))) {
          ADD_FAILURE() << "unexpected EOF mid-stream";
          break;
        }
        ++delivered;
      }
    }
    return std::pair<std::uint64_t, std::uint64_t>(sender.faults_injected(),
                                                   delivered);
  };
  EXPECT_EQ(run(42, 1), run(42, 1));
  EXPECT_NE(run(42, 1).first, 0u);
  EXPECT_NE(run(42, 1).first, 64u) << "p=0.5 dropped everything";
}

// ---- wire-level seeded soak grid -----------------------------------------

struct WireCell {
  const char* name;
  ChaosConfig cfg;
};

std::vector<WireCell> wire_cells() {
  std::vector<WireCell> cells;
  ChaosConfig c;
  c.enabled = true;
  c.drop_prob = 0.2;
  cells.push_back({"drop", c});
  c = ChaosConfig{};
  c.enabled = true;
  c.flip_prob = 0.2;
  cells.push_back({"flip", c});
  c = ChaosConfig{};
  c.enabled = true;
  c.truncate_prob = 0.2;
  cells.push_back({"truncate", c});
  c = ChaosConfig{};
  c.enabled = true;
  c.duplicate_prob = 0.2;
  cells.push_back({"duplicate", c});
  c = ChaosConfig{};
  c.enabled = true;
  c.delay_prob = 0.3;
  c.delay_ms = 2;
  cells.push_back({"delay", c});
  c = ChaosConfig{};
  c.enabled = true;
  c.drop_prob = 0.1;
  c.duplicate_prob = 0.1;
  c.flip_prob = 0.1;
  c.truncate_prob = 0.1;
  c.delay_prob = 0.1;
  c.delay_ms = 1;
  c.reset_at_byte = 2'000;
  cells.push_back({"mix", c});
  return cells;
}

TEST(ChaosSoak, WireGridTypedErrorOrIntactOrderedDelivery) {
  // Every cell of {fault mix} × {tcp, unix} × seeds pumps a numbered
  // frame stream through the production decoder. The contract per cell:
  // the receiver sees only bitwise-intact payloads, in non-decreasing
  // index order (drops skip, duplicates repeat), and any abnormal end is
  // a typed FabricError — bounded by deadlines, so no cell can hang.
  constexpr std::uint64_t kFrames = 40;
  const std::size_t seeds = soak_iters(3);
  for (const WireCell& cell : wire_cells()) {
    for (const bool tcp : {true, false}) {
      for (std::size_t seed = 1; seed <= seeds; ++seed) {
        StreamPair p = make_stream_pair(tcp);
        ChaosConfig cfg = cell.cfg;
        cfg.seed = seed;
        ChaosEndpoint sender(std::move(p.a), cfg, seed);
        std::thread pump([&] {
          try {
            for (std::uint64_t i = 0; i < kFrames; ++i)
              sender.send(MsgType::kResult, indexed_payload(i),
                          deadline_after(kTimeout));
          } catch (const FabricError&) {
            // Injected cut: typed at the sender, stream ends for the
            // receiver. Exactly the contract.
          }
          sender.close();  // orderly EOF ends the receive loop
        });
        std::uint64_t last = 0, got = 0;
        try {
          Frame f;
          while (p.b.recv(f, deadline_after(kTimeout))) {
            WireCursor c(f.payload);
            const std::uint64_t index = c.get_u64();
            EXPECT_EQ(c.get_string(), "chaos-frame-" + std::to_string(index))
                << cell.name << " corrupt payload decoded cleanly";
            EXPECT_LT(index, kFrames) << cell.name;
            EXPECT_GE(index, last) << cell.name << " reordered delivery";
            last = index;
            ++got;
          }
        } catch (const FabricError& e) {
          // Typed failure is an accepted cell outcome; record which.
          SCOPED_TRACE(e.what());
          EXPECT_NE(fabric_errc_name(e.code()), std::string("aborted"))
              << cell.name << ": chaos must never surface as kAborted here";
        }
        pump.join();
        EXPECT_LE(got, 2 * kFrames) << cell.name;
      }
    }
  }
}

// ---- training-level soak grid on the TCP fabric --------------------------

TemporalGraph chaos_graph() {
  datagen::SynthSpec spec;
  spec.num_src = 40;
  spec.num_dst = 20;
  spec.num_events = 1200;
  spec.edge_feat_dim = 4;
  spec.seed = 77;
  return datagen::generate(spec);
}

TrainingConfig chaos_config() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 8;
  cfg.model.time_dim = 4;
  cfg.model.attn_dim = 8;
  cfg.model.emb_dim = 8;
  cfg.model.num_neighbors = 4;
  cfg.model.head_hidden = 8;
  cfg.local_batch = 60;
  cfg.epochs = 1;
  cfg.seed = 23;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  return cfg;
}

struct TrainCell {
  const char* name;
  ChaosConfig chaos;
  RetryConfig retry;
};

std::vector<TrainCell> train_cells() {
  std::vector<TrainCell> cells;
  ChaosConfig c;
  RetryConfig healed;  // reconnect tier armed
  healed.max_attempts = 3;
  healed.backoff_ms = 1;

  c = ChaosConfig{};
  c.enabled = true;
  c.flip_prob = 0.05;
  cells.push_back({"flip", c, RetryConfig{}});
  cells.push_back({"flip_retry", c, healed});
  c = ChaosConfig{};
  c.enabled = true;
  c.drop_prob = 0.03;
  cells.push_back({"drop", c, RetryConfig{}});
  cells.push_back({"drop_retry", c, healed});
  c = ChaosConfig{};
  c.enabled = true;
  c.duplicate_prob = 0.05;
  cells.push_back({"duplicate_retry", c, healed});
  c = ChaosConfig{};
  c.enabled = true;
  c.truncate_prob = 0.03;
  cells.push_back({"truncate_retry", c, healed});
  c = ChaosConfig{};
  c.enabled = true;
  c.delay_prob = 0.25;
  c.delay_ms = 2;
  cells.push_back({"delay", c, RetryConfig{}});
  c = ChaosConfig{};
  c.enabled = true;
  // Mid-run for this config's ~40-60 KB of total ring traffic — probed,
  // not guessed: a boundary past the total would never fire and the
  // cell would pass vacuously.
  c.reset_at_byte = 20'000;
  cells.push_back({"reset_retry", c, healed});
  return cells;
}

TEST(ChaosSoak, TrainingGridTypedErrorOrBitwiseCorrect) {
  // End-to-end contract over the real kTcp fabric: under every chaos
  // cell the run either completes bitwise-identical to the pristine
  // thread-fabric baseline (chaos absorbed — delay always, others when
  // the reconnect tier heals them) or dies with a typed FabricError.
  // Anything else — a hang (deadlines forbid it), a crash, or a
  // *different* completed result — fails the cell.
  const TemporalGraph g = chaos_graph();
  TrainingConfig base_cfg = chaos_config();
  base_cfg.fabric.kind = FabricKind::kThread;
  const ThreadedTrainResult base = train_distributed(base_cfg, g, nullptr);

  const std::size_t seeds = soak_iters(2);
  for (const TrainCell& cell : train_cells()) {
    for (std::size_t seed = 1; seed <= seeds; ++seed) {
      SCOPED_TRACE(std::string(cell.name) + " seed " + std::to_string(seed));
      TrainingConfig cfg = chaos_config();
      cfg.fabric.kind = FabricKind::kTcp;
      cfg.fabric.tcp.hosts = 2;
      cfg.fabric.timeout_ms = 2'000;  // dropped frames fail fast
      cfg.fabric.chaos = cell.chaos;
      cfg.fabric.chaos.seed = seed;
      cfg.fabric.retry = cell.retry;
      try {
        const ThreadedTrainResult got = train_distributed(cfg, g, nullptr);
        ASSERT_EQ(got.weights.size(), base.weights.size());
        for (std::size_t x = 0; x < base.weights.size(); ++x)
          ASSERT_EQ(got.weights[x], base.weights[x])
              << "weight " << x << " diverged under surviving chaos";
        EXPECT_EQ(got.loss_sum, base.loss_sum);
        EXPECT_EQ(got.iterations, base.iterations);
      } catch (const FabricError& e) {
        // Typed failure: acceptable. The code set is the protocol's own
        // vocabulary — anything else would be an unclassified fault.
        SUCCEED() << "typed: " << e.what();
      }
    }
  }
}

// ---- supervisor: sliding-window restart budget ---------------------------

TEST(ChaosRecovery, RestartStormFailsFastTyped) {
  // flip_prob = 1 corrupts the ring handshake itself, so every attempt
  // dies in setup and the supervisor would happily burn all 10 restarts
  // one backoff at a time. The sliding window must cut that short with
  // a typed kRestartStorm after 2 restarts inside its 60 s window.
  const TemporalGraph g = chaos_graph();
  TrainingConfig cfg = chaos_config();
  cfg.fabric.kind = FabricKind::kTcp;
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.timeout_ms = 2'000;
  cfg.fabric.chaos.enabled = true;
  cfg.fabric.chaos.flip_prob = 1.0;
  cfg.recovery.max_restarts = 10;
  cfg.recovery.backoff_ms = 1;
  cfg.recovery.restart_window_ms = 60'000;
  cfg.recovery.restart_window_max = 2;
  try {
    train_supervised(cfg, g);
    FAIL() << "crash-looping run completed";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kRestartStorm);
    EXPECT_NE(std::string(e.what()).find("crash loop"), std::string::npos);
  }
}

// ---- leak sweep after chaos-killed connections ---------------------------

TEST(ChaosLeakSweep, NoLeakedSegmentsSocketsOrFdsAfterChaos) {
  // Run a reset-and-reconnect cell and a hard-failure cell in this
  // process, then exec tools/sweep_shm.py against THIS pid: zero leaked
  // shm segments, checkpoint scratch, rendezvous socket files, or open
  // listener fds may survive. The prefix is pid-scoped so concurrently
  // running fabric tests (other processes) cannot cross-talk.
  if (std::system("python3 --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 unavailable";
  const TemporalGraph g = chaos_graph();

  TrainingConfig cfg = chaos_config();
  cfg.fabric.kind = FabricKind::kTcp;
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.timeout_ms = 2'000;
  cfg.fabric.chaos.enabled = true;
  cfg.fabric.chaos.reset_at_byte = 20'000;  // mid-run (see train_cells)
  cfg.fabric.retry.max_attempts = 3;
  cfg.fabric.retry.backoff_ms = 1;
  try {
    (void)train_distributed(cfg, g, nullptr);
  } catch (const FabricError&) {
  }

  cfg.fabric.chaos = ChaosConfig{};
  cfg.fabric.chaos.enabled = true;
  cfg.fabric.chaos.truncate_prob = 0.5;  // dies fast, no reconnect
  cfg.fabric.retry = RetryConfig{};
  try {
    (void)train_distributed(cfg, g, nullptr);
  } catch (const FabricError&) {
  }

  const std::string ckpt_dir =
      "/tmp/disttgl-ckpt/chaos_sweep." + std::to_string(::getpid());
  std::filesystem::create_directories(ckpt_dir);
  const std::string cmd =
      "python3 " DISTTGL_TEST_DIR "/../tools/sweep_shm.py --fail-on-leak"
      " --prefix disttgl." + std::to_string(::getpid()) +
      " --ckpt-dir " + ckpt_dir +
      " --check-fds --fd-pid " + std::to_string(::getpid());
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "sweep found leaked segments/sockets/fds after chaos";
}

}  // namespace
}  // namespace disttgl::dist
