// Synthetic data generator: determinism, statistical knobs, presets
// matching their Table 2-style roles.
#include <gtest/gtest.h>

#include "datagen/generator.hpp"
#include "datagen/presets.hpp"
#include "graph/stats.hpp"

namespace disttgl {
namespace {

using datagen::SynthSpec;

SynthSpec small_spec() {
  SynthSpec s;
  s.name = "t";
  s.num_src = 50;
  s.num_dst = 20;
  s.num_events = 2000;
  s.max_time = 1e4;
  s.seed = 7;
  return s;
}

TEST(Generator, DeterministicFromSeed) {
  TemporalGraph a = datagen::generate(small_spec());
  TemporalGraph b = datagen::generate(small_spec());
  ASSERT_EQ(a.num_events(), b.num_events());
  for (EdgeId i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.event(i).src, b.event(i).src);
    EXPECT_EQ(a.event(i).dst, b.event(i).dst);
    EXPECT_FLOAT_EQ(a.event(i).ts, b.event(i).ts);
  }
}

TEST(Generator, SeedChangesOutput) {
  SynthSpec s2 = small_spec();
  s2.seed = 8;
  TemporalGraph a = datagen::generate(small_spec());
  TemporalGraph b = datagen::generate(s2);
  std::size_t same = 0;
  for (EdgeId i = 0; i < a.num_events(); ++i)
    if (a.event(i).dst == b.event(i).dst) ++same;
  EXPECT_LT(same, a.num_events());
}

TEST(Generator, TimestampsSortedAndScaled) {
  TemporalGraph g = datagen::generate(small_spec());
  float prev = 0.0f;
  for (const TemporalEdge& e : g.events()) {
    EXPECT_GE(e.ts, prev);
    prev = e.ts;
  }
  EXPECT_NEAR(g.max_timestamp(), 1e4, 1.0);
}

TEST(Generator, BipartiteRespectsPartition) {
  TemporalGraph g = datagen::generate(small_spec());
  EXPECT_TRUE(g.bipartite());
  for (const TemporalEdge& e : g.events()) {
    EXPECT_LT(e.src, 50u);
    EXPECT_GE(e.dst, 50u);
  }
}

TEST(Generator, UnipartiteNoSelfLoops) {
  SynthSpec s = small_spec();
  s.num_dst = 0;
  TemporalGraph g = datagen::generate(s);
  EXPECT_FALSE(g.bipartite());
  for (const TemporalEdge& e : g.events()) EXPECT_NE(e.src, e.dst);
}

TEST(Generator, RecurrenceKnobControlsRepeats) {
  SynthSpec lo = small_spec();
  lo.recurrence = 0.05;
  SynthSpec hi = small_spec();
  hi.recurrence = 0.9;
  const double lo_rep = compute_stats(datagen::generate(lo)).repeat_edge_fraction;
  const double hi_rep = compute_stats(datagen::generate(hi)).repeat_edge_fraction;
  EXPECT_GT(hi_rep, lo_rep + 0.15);
}

TEST(Generator, ActivitySkewControlsGini) {
  SynthSpec flat = small_spec();
  flat.activity_alpha = 0.0;
  SynthSpec skew = small_spec();
  skew.activity_alpha = 1.5;
  const double flat_gini = compute_stats(datagen::generate(flat)).degree_gini;
  const double skew_gini = compute_stats(datagen::generate(skew)).degree_gini;
  EXPECT_GT(skew_gini, flat_gini);
}

TEST(Generator, EmitsFeaturesAndLabels) {
  SynthSpec s = small_spec();
  s.edge_feat_dim = 6;
  s.node_feat_dim = 5;
  s.num_classes = 9;
  s.labels_per_edge = 3;
  TemporalGraph g = datagen::generate(s);
  EXPECT_EQ(g.edge_feat_dim(), 6u);
  EXPECT_EQ(g.node_feat_dim(), 5u);
  EXPECT_EQ(g.num_classes(), 9u);
  // Every event carries exactly labels_per_edge labels.
  for (EdgeId i = 0; i < g.num_events(); ++i) {
    int count = 0;
    for (std::size_t c = 0; c < 9; ++c)
      if (g.edge_labels()(i, c) > 0.5f) ++count;
    EXPECT_EQ(count, 3);
  }
}

TEST(Presets, AllFiveGenerateAndMatchRoles) {
  // Tiny scale for test speed; shape properties must still hold.
  const double scale = 0.2;
  auto specs = datagen::all_presets(scale);
  ASSERT_EQ(specs.size(), 5u);

  TemporalGraph wiki = datagen::generate(specs[0]);
  TemporalGraph reddit = datagen::generate(specs[1]);
  TemporalGraph mooc = datagen::generate(specs[2]);
  TemporalGraph flights = datagen::generate(specs[3]);
  TemporalGraph gdelt = datagen::generate(specs[4]);

  // Bipartite interaction graphs vs unipartite graphs (Table 2 roles).
  EXPECT_TRUE(wiki.bipartite());
  EXPECT_TRUE(reddit.bipartite());
  EXPECT_TRUE(mooc.bipartite());
  EXPECT_FALSE(flights.bipartite());
  EXPECT_FALSE(gdelt.bipartite());

  // MOOC and Flights carry no edge features (Table 2: |de| empty).
  EXPECT_FALSE(mooc.has_edge_features());
  EXPECT_FALSE(flights.has_edge_features());
  EXPECT_TRUE(wiki.has_edge_features());

  // Only GDELT has labels (edge classification task) and node features.
  EXPECT_TRUE(gdelt.has_edge_labels());
  EXPECT_TRUE(gdelt.has_node_features());
  EXPECT_FALSE(wiki.has_edge_labels());

  // Flights has the weakest recurrence (most unique edges, §4.1).
  const double rep_flights = compute_stats(flights).repeat_edge_fraction;
  const double rep_reddit = compute_stats(reddit).repeat_edge_fraction;
  EXPECT_LT(rep_flights, rep_reddit);
}

TEST(Presets, ScaleParameterScalesCounts) {
  auto s1 = datagen::wikipedia_like(1.0);
  auto s2 = datagen::wikipedia_like(0.5);
  EXPECT_NEAR(static_cast<double>(s2.num_events),
              0.5 * static_cast<double>(s1.num_events), 2.0);
  EXPECT_NEAR(static_cast<double>(s2.num_src),
              0.5 * static_cast<double>(s1.num_src), 2.0);
}

}  // namespace
}  // namespace disttgl
