// Behavioural tests for NN layers beyond raw gradients: shapes, masking,
// optimizer dynamics, parameter flattening.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.hpp"
#include "nn/gru_cell.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/time_encoding.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace disttgl {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear layer("l", 3, 2, rng);
  Matrix x(4, 3, 0.0f);
  Matrix y = layer.forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  // Zero input -> output equals bias on every row.
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_FLOAT_EQ(y(r, c), layer.bias().value(0, c));
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  nn::Linear layer("l", 3, 2, rng, /*bias=*/false);
  Matrix x(1, 3, 0.0f);
  Matrix y = layer.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(layer.parameters().size(), 1u);
}

TEST(TimeEncoding, ZeroDeltaGivesCosPhase) {
  nn::TimeEncoding enc("te", 4);
  std::vector<float> dt = {0.0f};
  Matrix y = enc.forward(dt);
  // φ initialized to 0 ⇒ cos(0) = 1 everywhere.
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(y(0, c), 1.0f, 1e-6f);
}

TEST(TimeEncoding, DistinguishesScales) {
  nn::TimeEncoding enc("te", 8);
  std::vector<float> dt = {1.0f, 1000.0f};
  Matrix y = enc.forward(dt);
  float diff = 0.0f;
  for (std::size_t c = 0; c < 8; ++c) diff += std::abs(y(0, c) - y(1, c));
  EXPECT_GT(diff, 0.1f);
}

TEST(GRUCell, InterpolatesBetweenInputAndHidden) {
  Rng rng(3);
  nn::GRUCell cell("g", 2, 3, rng);
  Matrix x = random_matrix(4, 2, rng);
  Matrix h = random_matrix(4, 3, rng);
  Matrix y = cell.forward(x, h);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 3u);
  // h' = (1−z)n + zh with n ∈ (−1,1): outputs are bounded by the convex
  // combination of tanh range and previous hidden values.
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float bound = std::max(1.0f, std::abs(h.data()[i])) + 1e-5f;
    EXPECT_LE(std::abs(y.data()[i]), bound);
  }
}

TEST(GRUCell, StateDependsOnInput) {
  Rng rng(4);
  nn::GRUCell cell("g", 2, 3, rng);
  Matrix h = random_matrix(1, 3, rng);
  Matrix x1(1, 2, {1.0f, -1.0f});
  Matrix x2(1, 2, {-1.0f, 1.0f});
  Matrix y1 = cell.forward(x1, h);
  Matrix y2 = cell.forward(x2, h);
  EXPECT_GT(max_rel_diff(y1, y2), 1e-3f);
}

TEST(Attention, OutputShapesAndIsolatedRoots) {
  Rng rng(5);
  nn::AttentionDims dims;
  dims.node_dim = 4;
  dims.edge_dim = 0;  // no edge features (MOOC/Flights style)
  dims.time_dim = 4;
  dims.attn_dim = 8;
  dims.out_dim = 6;
  dims.num_heads = 2;
  dims.max_neighbors = 4;
  nn::TemporalAttention attn("a", dims, rng);

  const std::size_t n = 3, K = 4;
  Matrix node = random_matrix(n, 4, rng);
  Matrix neigh = random_matrix(n * K, 4, rng);
  Matrix edge(n * K, 0);
  std::vector<float> dt(n * K, 1.0f);
  std::vector<std::size_t> valid = {4, 0, 2};
  nn::TemporalAttention::Ctx ctx;
  Matrix out = attn.forward(node, neigh, edge, dt, valid, &ctx);
  EXPECT_EQ(out.rows(), n);
  EXPECT_EQ(out.cols(), dims.out_dim);
  // The isolated root (valid = 0) still produces an embedding (from its
  // own representation through W_o), generally nonzero.
  float norm1 = 0.0f;
  for (std::size_t c = 0; c < dims.out_dim; ++c) norm1 += std::abs(out(1, c));
  EXPECT_GT(norm1, 0.0f);
}

TEST(Attention, AttendsToRelevantNeighbor) {
  // A root whose query matches one specific key should weight that
  // neighbor's value most. Engineer it via identical node dims and a
  // near-identity setup: just check the alpha distribution is not flat
  // when keys differ strongly.
  Rng rng(6);
  nn::AttentionDims dims;
  dims.node_dim = 3;
  dims.edge_dim = 0;
  dims.time_dim = 2;
  dims.attn_dim = 4;
  dims.out_dim = 3;
  dims.num_heads = 1;
  dims.max_neighbors = 2;
  nn::TemporalAttention attn("a", dims, rng);
  Matrix node = random_matrix(1, 3, rng);
  Matrix neigh(2, 3);
  neigh.copy_row_from(0, node.row(0));  // neighbor 0 similar to root
  for (std::size_t c = 0; c < 3; ++c) neigh(1, c) = -node(0, c);
  Matrix edge(2, 0);
  std::vector<float> dt = {0.0f, 0.0f};
  std::vector<std::size_t> valid = {2};
  nn::TemporalAttention::Ctx ctx;
  attn.forward(node, neigh, edge, dt, valid, &ctx);
  const Matrix& alpha = ctx.alpha[0];
  EXPECT_NEAR(alpha(0, 0) + alpha(0, 1), 1.0f, 1e-5f);
  EXPECT_NE(alpha(0, 0), alpha(0, 1));
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||w - target||² with Adam through the Parameter interface.
  nn::Parameter w("w", 1, 4);
  Matrix target(1, 4, {1.0f, -2.0f, 3.0f, 0.5f});
  nn::Adam opt({&w}, nn::AdamOptions{.lr = 0.05f});
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < 4; ++i)
      w.grad.data()[i] = 2.0f * (w.value.data()[i] - target.data()[i]);
    opt.step();
    opt.zero_grad();
  }
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(w.value.data()[i], target.data()[i], 1e-2f);
}

TEST(Sgd, MomentumAccelerates) {
  nn::Parameter a("a", 1, 1), b("b", 1, 1);
  a.value(0, 0) = b.value(0, 0) = 10.0f;
  nn::Sgd plain({&a}, 0.01f);
  nn::Sgd momentum({&b}, 0.01f, 0.9f);
  for (int step = 0; step < 50; ++step) {
    a.grad(0, 0) = 2.0f * a.value(0, 0);
    b.grad(0, 0) = 2.0f * b.value(0, 0);
    plain.step();
    momentum.step();
  }
  EXPECT_LT(std::abs(b.value(0, 0)), std::abs(a.value(0, 0)));
}

TEST(Optim, ClipGradNorm) {
  nn::Parameter w("w", 1, 3);
  w.grad = Matrix(1, 3, {3.0f, 4.0f, 0.0f});  // norm 5
  const float pre = nn::clip_grad_norm({&w}, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(std::sqrt(w.grad.squared_norm()), 1.0f, 1e-5f);
  // Below the limit: untouched.
  w.grad = Matrix(1, 3, {0.1f, 0.0f, 0.0f});
  nn::clip_grad_norm({&w}, 1.0f);
  EXPECT_FLOAT_EQ(w.grad(0, 0), 0.1f);
}

TEST(Module, FlattenRoundTrip) {
  Rng rng(9);
  nn::Linear l1("l1", 3, 2, rng);
  nn::Linear l2("l2", 2, 2, rng);
  std::vector<nn::Parameter*> params;
  l1.collect_parameters(params);
  l2.collect_parameters(params);

  std::vector<float> flat;
  nn::flatten_values(params, flat);
  EXPECT_EQ(flat.size(), nn::flat_size(params));

  std::vector<float> modified = flat;
  for (float& v : modified) v += 1.0f;
  nn::unflatten_values(modified, params);
  std::vector<float> flat2;
  nn::flatten_values(params, flat2);
  for (std::size_t i = 0; i < flat.size(); ++i)
    EXPECT_FLOAT_EQ(flat2[i], flat[i] + 1.0f);
}

// Minimal Module wrapping two Linears — the flat-storage test subject.
struct TwoLayer : nn::Module {
  nn::Linear a, b;
  TwoLayer(Rng& rng) : a("a", 3, 4, rng), b("b", 4, 2, rng) {}
  void collect_parameters(std::vector<nn::Parameter*>& out) override {
    a.collect_parameters(out);
    b.collect_parameters(out);
  }
};

TEST(Module, FreezeFlatStoragePreservesValuesAndAliases) {
  Rng rng(31);
  TwoLayer m(rng);
  std::vector<float> before;
  nn::flatten_values(m.cached_parameters(), before);

  EXPECT_FALSE(m.has_flat_storage());
  m.freeze_flat_storage();
  m.freeze_flat_storage();  // idempotent
  EXPECT_TRUE(m.has_flat_storage());

  // Contents preserved, layout identical to flatten_values order.
  const std::span<const float> flat = m.flat_values();
  ASSERT_EQ(flat.size(), before.size());
  for (std::size_t i = 0; i < flat.size(); ++i)
    EXPECT_EQ(flat[i], before[i]) << "element " << i;

  // Parameters are now contiguous views: writing through a parameter is
  // visible in the flat span and vice versa.
  std::vector<nn::Parameter*> params = m.parameters();
  EXPECT_TRUE(params[0]->value.is_view());
  const float* base = params[0]->value.data();
  std::size_t off = 0;
  for (const nn::Parameter* p : params) {
    EXPECT_EQ(p->value.data(), base + off);
    off += p->size();
  }
  params[1]->value.data()[0] = 42.0f;
  EXPECT_EQ(m.flat_values()[params[0]->size()], 42.0f);
  m.flat_grads()[0] = 7.0f;
  EXPECT_EQ(params[0]->grad.data()[0], 7.0f);
  m.zero_grad();
  EXPECT_EQ(params[0]->grad.data()[0], 0.0f);
}

TEST(Adam, StepRangeMatchesFullStepOnFlatStorage) {
  Rng rng_a(5);
  Rng rng_b(5);
  TwoLayer ma(rng_a), mb(rng_b);
  ma.freeze_flat_storage();
  mb.freeze_flat_storage();
  nn::AdamOptions opts{.lr = 1e-2f, .weight_decay = 1e-3f};
  nn::Adam oa(ma.parameters(), opts), ob(mb.parameters(), opts);
  ASSERT_EQ(oa.num_elements(), ma.flat_values().size());

  Rng grng(77);
  for (int iter = 0; iter < 5; ++iter) {
    for (std::size_t i = 0; i < ma.flat_grads().size(); ++i) {
      const float g = static_cast<float>(grng.normal());
      ma.flat_grads()[i] = g;
      mb.flat_grads()[i] = g;
    }
    oa.step();
    // Odd-sized chunks, out of order — must not matter.
    ob.begin_step();
    const std::size_t total = ob.num_elements();
    const std::size_t cut1 = total / 3, cut2 = 2 * total / 3 + 1;
    ob.step_range(cut2, total);
    ob.step_range(0, cut1);
    ob.step_range(cut1, cut2);
    for (std::size_t i = 0; i < total; ++i)
      ASSERT_EQ(ma.flat_values()[i], mb.flat_values()[i])
          << "iter " << iter << " element " << i;
  }
}

TEST(Loss, LinkPredictionDirection) {
  // High positive score + low negative score ⇒ small loss.
  Matrix good_pos(2, 1, {5.0f, 6.0f}), good_neg(2, 2, {-5.0f, -6.0f, -4.0f, -7.0f});
  Matrix bad_pos(2, 1, {-5.0f, -6.0f}), bad_neg(2, 2, {5.0f, 6.0f, 4.0f, 7.0f});
  Matrix d1, d2;
  const float good = nn::link_prediction_loss(good_pos, good_neg, d1, d2);
  const float bad = nn::link_prediction_loss(bad_pos, bad_neg, d1, d2);
  EXPECT_LT(good, 0.1f);
  EXPECT_GT(bad, 2.0f);
}

}  // namespace
}  // namespace disttgl
