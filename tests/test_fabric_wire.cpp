// Wire-protocol property/fuzz suite: random frame streams must decode
// identically no matter how the bytes are split across feeds, garbage
// must poison the reader with a typed error (never a crash, never a
// resync), and the checked-in seed corpus (tests/wire_corpus.txt) must
// keep producing the same verdicts byte-split or whole. The corpus is
// deterministic and versioned so a decoder change that alters any
// verdict shows up as a diff here, not as a silent protocol fork.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "distributed/wire.hpp"
#include "serving/score_wire.hpp"

namespace disttgl::dist {
namespace {

// Feeds `stream` to a FrameReader in the given split sizes and polls to
// exhaustion. Returns the decoded frames plus the poison code (if any).
struct DecodeResult {
  std::vector<Frame> frames;
  bool poisoned = false;
  FabricErrc code = FabricErrc::kPeerClosed;  // valid when poisoned

  bool operator==(const DecodeResult& o) const {
    if (poisoned != o.poisoned || frames.size() != o.frames.size())
      return false;
    if (poisoned && code != o.code) return false;
    for (std::size_t i = 0; i < frames.size(); ++i)
      if (frames[i].type != o.frames[i].type ||
          frames[i].payload != o.frames[i].payload)
        return false;
    return true;
  }
};

DecodeResult decode_with_splits(std::span<const std::uint8_t> stream,
                                const std::vector<std::size_t>& splits) {
  DecodeResult out;
  FrameReader reader;
  std::size_t pos = 0;
  std::size_t split_idx = 0;
  while (pos < stream.size() || split_idx == 0) {
    std::size_t take = stream.size() - pos;
    if (split_idx < splits.size())
      take = std::min(take, splits[split_idx]);
    ++split_idx;
    reader.feed(stream.subspan(pos, take));
    pos += take;
    try {
      Frame f;
      while (reader.poll(f)) out.frames.push_back(std::move(f));
    } catch (const FabricError& e) {
      out.poisoned = true;
      out.code = e.code();
      return out;
    }
    if (pos >= stream.size()) break;
  }
  return out;
}

DecodeResult decode_whole(std::span<const std::uint8_t> stream) {
  return decode_with_splits(stream, {});
}

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

std::vector<std::size_t> random_splits(std::mt19937_64& rng,
                                       std::size_t total) {
  std::vector<std::size_t> splits;
  std::size_t covered = 0;
  while (covered < total) {
    const std::size_t take =
        1 + static_cast<std::size_t>(rng() % std::min<std::size_t>(
                                               total - covered, 97));
    splits.push_back(take);
    covered += take;
  }
  return splits;
}

TEST(WireFuzz, RoundTripSurvivesArbitrarySplitBoundaries) {
  std::mt19937_64 rng(0xd15c0ULL);  // deterministic seed — this is a test
  for (int iter = 0; iter < 50; ++iter) {
    // A stream of 1–6 random frames.
    std::vector<std::uint8_t> stream;
    std::vector<Frame> want;
    const std::size_t n_frames = 1 + rng() % 6;
    for (std::size_t f = 0; f < n_frames; ++f) {
      Frame frame;
      frame.type = static_cast<MsgType>(1 + rng() % 5);
      frame.payload = random_bytes(rng, rng() % 4096);
      encode_frame(frame.type, frame.payload, stream);
      want.push_back(std::move(frame));
    }
    // Decode whole and under three random split patterns; all agree.
    const DecodeResult whole = decode_whole(stream);
    ASSERT_FALSE(whole.poisoned);
    ASSERT_EQ(whole.frames.size(), want.size());
    for (std::size_t f = 0; f < want.size(); ++f) {
      EXPECT_EQ(whole.frames[f].type, want[f].type);
      EXPECT_EQ(whole.frames[f].payload, want[f].payload);
    }
    for (int s = 0; s < 3; ++s) {
      const DecodeResult split =
          decode_with_splits(stream, random_splits(rng, stream.size()));
      ASSERT_TRUE(split == whole) << "iter " << iter << " split run " << s;
    }
  }
}

TEST(WireFuzz, JunkPrefixPoisonsWithBadMagicAndStaysPoisoned) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::uint8_t> stream = random_bytes(rng, 16 + rng() % 64);
    stream[0] ^= 0xff;  // guarantee the magic cannot match
    std::vector<std::uint8_t> valid;
    encode_frame(MsgType::kHello, {}, valid);
    stream.insert(stream.end(), valid.begin(), valid.end());

    FrameReader reader;
    reader.feed(stream);
    Frame f;
    EXPECT_THROW(reader.poll(f), FabricError);
    // No resynchronization: the trailing valid frame is unreachable.
    EXPECT_THROW(reader.poll(f), FabricError);
    try {
      reader.poll(f);
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kBadMagic);
    }
  }
}

std::vector<std::uint8_t> valid_header(std::uint16_t version,
                                       std::uint32_t len,
                                       std::uint32_t checksum) {
  std::vector<std::uint8_t> h;
  auto u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) h.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto u16 = [&](std::uint16_t v) {
    h.push_back(static_cast<std::uint8_t>(v));
    h.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  u32(kWireMagic);
  u16(version);
  u16(1);  // type
  u32(len);
  u32(checksum);
  return h;
}

TEST(WireFuzz, UnknownVersionIsTyped) {
  FrameReader reader;
  reader.feed(valid_header(kWireVersion + 1, 0, wire_checksum({})));
  Frame f;
  try {
    reader.poll(f);
    FAIL() << "expected poison";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kBadVersion);
  }
}

TEST(WireFuzz, OversizeLengthRejectedFromHeaderAlone) {
  // Only the 16 header bytes are fed — a reader that trusted the length
  // field would wait for (or allocate) 512 MiB. It must reject from the
  // header alone.
  FrameReader reader;
  reader.feed(valid_header(kWireVersion, 1u << 29, 0));
  Frame f;
  try {
    reader.poll(f);
    FAIL() << "expected poison";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kOversize);
  }
}

TEST(WireFuzz, CorruptedPayloadIsBadChecksum) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::uint8_t> payload = random_bytes(rng, 1 + rng() % 512);
    std::vector<std::uint8_t> stream;
    encode_frame(MsgType::kResult, payload, stream);
    // Flip one payload bit (never a header byte).
    const std::size_t victim =
        kWireHeaderBytes + rng() % (stream.size() - kWireHeaderBytes);
    stream[victim] ^= 1u << (rng() % 8);
    const DecodeResult got = decode_whole(stream);
    ASSERT_TRUE(got.poisoned) << "iter " << iter;
    EXPECT_EQ(got.code, FabricErrc::kBadChecksum);
    EXPECT_TRUE(got.frames.empty());
  }
}

TEST(WireFuzz, PartialFrameIsWaitingNotError) {
  std::vector<std::uint8_t> stream;
  encode_frame(MsgType::kResult, std::vector<std::uint8_t>(100, 7), stream);
  FrameReader reader;
  Frame f;
  for (std::size_t cut : {1ul, 8ul, 15ul, 16ul, 17ul, 115ul}) {
    FrameReader r;
    r.feed({stream.data(), cut});
    EXPECT_FALSE(r.poll(f)) << "cut=" << cut;  // waiting, not poisoned
  }
  // Completing the bytes later yields the frame.
  reader.feed({stream.data(), 20});
  EXPECT_FALSE(reader.poll(f));
  reader.feed({stream.data() + 20, stream.size() - 20});
  EXPECT_TRUE(reader.poll(f));
  EXPECT_EQ(f.payload.size(), 100u);
}

TEST(WireCursorFuzz, TruncatedFieldsAreTyped) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    WireWriter w;
    w.put_u32(7);
    w.put_string("hello");
    w.put_f32s(std::vector<float>(17, 1.0f));
    std::vector<std::uint8_t> full(w.bytes().begin(), w.bytes().end());
    const std::size_t cut = rng() % full.size();  // strictly short
    WireCursor c({full.data(), cut});
    try {
      (void)c.get_u32();
      (void)c.get_string();
      (void)c.get_f32s();
      FAIL() << "truncated payload decoded cleanly at cut " << cut;
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kTruncated) << "cut=" << cut;
    }
  }
}

TEST(WireCursorFuzz, HugeDeclaredCountsDoNotAllocate) {
  // A count field of 2^60 must be rejected by the bounds guard before
  // any sizing arithmetic can overflow or allocate.
  WireWriter w;
  w.put_u64(std::uint64_t{1} << 60);
  std::vector<std::uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  {
    WireCursor c(bytes);
    EXPECT_THROW((void)c.get_f32s(), FabricError);
  }
  {
    WireCursor c(bytes);
    EXPECT_THROW((void)c.get_bytes(), FabricError);
  }
  {
    WireCursor c(bytes);
    EXPECT_THROW((void)c.get_string(), FabricError);
  }
}

// ---- score frames (serving/score_wire.hpp) -------------------------------

serving::ScoreRequest sample_score_request(std::size_t n) {
  serving::ScoreRequest req;
  req.id = 0x1122334455667788ULL;
  req.copy = 1;
  for (std::size_t i = 0; i < n; ++i) {
    req.src.push_back(static_cast<std::uint32_t>(i * 3));
    req.dst.push_back(static_cast<std::uint32_t>(i * 7 + 1));
    req.ts.push_back(0.5f * static_cast<float>(i) - 2.0f);
  }
  return req;
}

TEST(ScoreWire, RequestRoundTripsSplitInvariant) {
  std::mt19937_64 rng(0x5c0eULL);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{300}}) {
    const serving::ScoreRequest req = sample_score_request(n);
    WireWriter w;
    serving::encode_score_request(req, w);
    std::vector<std::uint8_t> stream;
    encode_frame(MsgType::kScoreRequest, w.bytes(), stream);

    const DecodeResult whole = decode_whole(stream);
    ASSERT_FALSE(whole.poisoned);
    ASSERT_EQ(whole.frames.size(), 1u);
    EXPECT_EQ(whole.frames[0].type, MsgType::kScoreRequest);
    for (int s = 0; s < 3; ++s) {
      const DecodeResult split =
          decode_with_splits(stream, random_splits(rng, stream.size()));
      ASSERT_TRUE(split == whole) << "n=" << n;
    }

    serving::ScoreRequest back;
    serving::decode_score_request(whole.frames[0].payload, back);
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.copy, req.copy);
    EXPECT_EQ(back.src, req.src);
    EXPECT_EQ(back.dst, req.dst);
    EXPECT_EQ(back.ts, req.ts);
  }
}

TEST(ScoreWire, ResponseRoundTrips) {
  serving::ScoreResponse resp;
  resp.id = 42;
  resp.version = 9;
  resp.iteration = 300;
  resp.scores = {0.125f, -3.5f, 0.0f, 17.0f};
  WireWriter w;
  serving::encode_score_response(resp, w);
  std::vector<std::uint8_t> stream;
  encode_frame(MsgType::kScoreResponse, w.bytes(), stream);

  const DecodeResult whole = decode_whole(stream);
  ASSERT_FALSE(whole.poisoned);
  ASSERT_EQ(whole.frames.size(), 1u);
  serving::ScoreResponse back;
  serving::decode_score_response(whole.frames[0].payload, back);
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.version, resp.version);
  EXPECT_EQ(back.iteration, resp.iteration);
  EXPECT_EQ(back.scores, resp.scores);
}

TEST(ScoreWire, OversizedNodeCountRejectedBeforeAnyCopy) {
  // A hostile count field one past the cap must be rejected from the
  // leading n alone — before any array is decoded and before the output
  // buffers are touched (capacity stays zero: no allocation happened).
  WireWriter w;
  w.put_u64(1);  // id
  w.put_u32(0);  // copy
  w.put_u32(static_cast<std::uint32_t>(serving::kMaxScoreBatch + 1));
  // No array bytes at all: the count gate must fire before the decoder
  // ever notices the arrays are missing.
  serving::ScoreRequest out;
  try {
    serving::decode_score_request(w.bytes(), out);
    FAIL() << "oversized count decoded";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kOversize);
  }
  EXPECT_EQ(out.src.capacity(), 0u);
  EXPECT_EQ(out.dst.capacity(), 0u);
  EXPECT_EQ(out.ts.capacity(), 0u);
}

TEST(ScoreWire, TruncatedSkewedAndTrailingPayloadsAreTyped) {
  const serving::ScoreRequest req = sample_score_request(5);
  WireWriter w;
  serving::encode_score_request(req, w);
  const std::span<const std::uint8_t> full = w.bytes();

  // Every strict prefix is kTruncated (count gates before array reads).
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    serving::ScoreRequest out;
    try {
      serving::decode_score_request(full.subspan(0, cut), out);
      FAIL() << "prefix of " << cut << " bytes decoded";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kTruncated) << "cut=" << cut;
    }
  }

  // Trailing bytes are an error, not silently ignored.
  std::vector<std::uint8_t> padded(full.begin(), full.end());
  padded.push_back(0);
  serving::ScoreRequest out;
  try {
    serving::decode_score_request(padded, out);
    FAIL() << "trailing byte accepted";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kTruncated);
  }

  // An array whose own count disagrees with the leading n is typed.
  WireWriter skewed;
  skewed.put_u64(1);
  skewed.put_u32(0);
  skewed.put_u32(3);  // n = 3 ...
  skewed.put_u32s(std::vector<std::uint32_t>(2, 9));  // ... but src has 2
  try {
    serving::decode_score_request(skewed.bytes(), out);
    FAIL() << "skewed array count accepted";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kTruncated);
  }
}

// ---- seed corpus ---------------------------------------------------------

std::vector<std::uint8_t> parse_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return out;
}

TEST(WireCorpus, SeedCorpusVerdictsAreSplitInvariant) {
  const std::string path = std::string(DISTTGL_TEST_DIR) + "/wire_corpus.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing corpus at " << path;
  std::mt19937_64 rng(0xc0ffeeULL);
  std::string line;
  std::size_t cases = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name, verdict, hex;
    fields >> name >> verdict >> hex;
    ASSERT_FALSE(verdict.empty()) << "malformed corpus line: " << line;
    const std::vector<std::uint8_t> stream = parse_hex(hex);
    ++cases;

    const DecodeResult whole = decode_whole(stream);
    // The checked-in verdict: "ok:<nframes>" or an error-code name.
    if (verdict.rfind("ok:", 0) == 0) {
      EXPECT_FALSE(whole.poisoned) << name;
      EXPECT_EQ(std::to_string(whole.frames.size()), verdict.substr(3))
          << name;
    } else {
      ASSERT_TRUE(whole.poisoned) << name;
      EXPECT_EQ(fabric_errc_name(whole.code), verdict) << name;
    }
    // Split-invariance: byte-at-a-time and random splits agree.
    const DecodeResult bytewise = decode_with_splits(
        stream, std::vector<std::size_t>(stream.size(), 1));
    EXPECT_TRUE(bytewise == whole) << name << " (byte-at-a-time diverged)";
    for (int s = 0; s < 2; ++s) {
      const DecodeResult split =
          decode_with_splits(stream, random_splits(rng, stream.size()));
      EXPECT_TRUE(split == whole) << name << " (random split diverged)";
    }
  }
  EXPECT_GE(cases, 8u) << "corpus lost cases";
}

}  // namespace
}  // namespace disttgl::dist
