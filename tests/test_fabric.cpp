// Process-fabric correctness: the cross-process collective (ProcComm)
// and daemon channel (ShmDaemonChannel) must be drop-in equivalents of
// their in-process counterparts — bit-identical collective results,
// bit-identical served slices, same accounting — plus the rendezvous
// handshake and the spin→park threshold regression (threshold 0 must
// complete on every transport). Fault injection lives in
// tests/test_fabric_faults.cpp, wire fuzzing in tests/test_fabric_wire.cpp,
// allocation pinning in tests/test_fabric_alloc.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <functional>

#include "distributed/hier_comm.hpp"
#include "distributed/launch.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/shm.hpp"
#include "distributed/socket.hpp"
#include "distributed/wire.hpp"
#include "memory/shm_channel.hpp"

namespace disttgl::dist {
namespace {

constexpr std::chrono::milliseconds kTimeout{30'000};

std::vector<std::vector<float>> make_payloads(std::size_t ranks,
                                              std::size_t size,
                                              std::uint32_t salt) {
  std::vector<std::vector<float>> data(ranks, std::vector<float>(size));
  for (std::size_t r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < size; ++i)
      data[r][i] = 0.25f * static_cast<float>((r * 31 + i * 7 + salt) % 23) -
                   1.5f + 1e-3f * static_cast<float>(i);
  return data;
}

// ThreadComm result for the same inputs — the bit-exactness reference.
std::vector<float> thread_comm_mean(std::vector<std::vector<float>> data,
                                    Comm::Options opts) {
  const std::size_t ranks = data.size();
  ThreadComm comm(ranks, opts);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < ranks; ++r)
    threads.emplace_back([&, r] { comm.allreduce_mean(r, data[r]); });
  for (auto& t : threads) t.join();
  return data[0];
}

TEST(ProcCommFabric, AllreduceMeanBitIdenticalToThreadComm) {
  for (const std::size_t world : {2u, 4u}) {
    for (const std::size_t chunk : {0u, 37u}) {
      const std::size_t size = 500;
      const auto data = make_payloads(world, size, 3);
      const Comm::Options opts{.chunk_elems = chunk};
      const std::vector<float> want = thread_comm_mean(data, opts);

      const std::string prefix = make_session_prefix();
      {
        ProcComm owner =
            ProcComm::create(prefix + ".comm", world, size, opts, kTimeout);
        const auto payloads = disttgl_launch(
            world,
            [&](std::size_t rank) {
              ProcComm comm =
                  ProcComm::attach(prefix + ".comm", world, opts, kTimeout);
              std::vector<float> mine = data[rank];
              comm.allreduce_mean(rank, mine);
              WireWriter w;
              w.put_f32s(mine);
              return w.take();
            },
            kTimeout);
        for (std::size_t r = 0; r < world; ++r) {
          WireCursor c(payloads[r]);
          const std::vector<float> got = c.get_f32s();
          ASSERT_EQ(got, want) << "world=" << world << " chunk=" << chunk
                               << " rank=" << r;
        }
        // Accounting lives in the segment: the parent's owning handle
        // observes the children's traffic.
        EXPECT_EQ(owner.num_allreduces(), 1u);
        EXPECT_EQ(owner.logical_bytes(),
                  static_cast<std::uint64_t>(2.0 * (world - 1) / world * size *
                                             sizeof(float) * world));
      }
      EXPECT_TRUE(list_shm(prefix).empty()) << "leaked shm segment";
    }
  }
}

// The fused allreduce→step contract across processes: same toy
// optimizer as tests/test_comm.cpp, replicas must agree bitwise with the
// in-process fused run after several rounds.
struct ToyStep {
  std::span<float> grads;
  std::span<float> params;
};

void toy_chunk_step(void* ctx, std::size_t lo, std::size_t hi, double sq) {
  auto* s = static_cast<ToyStep*>(ctx);
  const float norm = static_cast<float>(std::sqrt(sq));
  const float scale = norm > 0.5f ? 0.5f / norm : 1.0f;
  for (std::size_t i = lo; i < hi; ++i)
    s->params[i] -= 0.1f * scale * s->grads[i];
}

TEST(ProcCommFabric, FusedStepBitIdenticalToThreadComm) {
  const std::size_t world = 3, size = 131, rounds = 5;
  const Comm::Options opts{.chunk_elems = 16};
  const std::vector<float> init = make_payloads(1, size, 21)[0];

  // In-process reference.
  std::vector<float> want;
  {
    ThreadComm comm(world, opts);
    std::vector<std::vector<float>> params(world, init);
    std::vector<std::vector<float>> grads(world, std::vector<float>(size));
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        for (std::size_t t = 0; t < rounds; ++t) {
          grads[r] =
              make_payloads(world, size, static_cast<std::uint32_t>(t))[r];
          ToyStep ctx{grads[r], params[r]};
          comm.allreduce_step(r, grads[r], params[r], &toy_chunk_step, &ctx);
        }
      });
    }
    for (auto& t : threads) t.join();
    want = params[0];
  }

  const std::string prefix = make_session_prefix();
  {
    ProcComm owner =
        ProcComm::create(prefix + ".comm", world, size, opts, kTimeout);
    const auto payloads = disttgl_launch(
        world,
        [&](std::size_t rank) {
          ProcComm comm =
              ProcComm::attach(prefix + ".comm", world, opts, kTimeout);
          std::vector<float> params = init;
          std::vector<float> grads(size);
          for (std::size_t t = 0; t < rounds; ++t) {
            grads = make_payloads(world, size, static_cast<std::uint32_t>(t))
                        [rank];
            ToyStep ctx{grads, params};
            comm.allreduce_step(rank, grads, params, &toy_chunk_step, &ctx);
          }
          WireWriter w;
          w.put_f32s(params);
          return w.take();
        },
        kTimeout);
    for (std::size_t r = 0; r < world; ++r) {
      WireCursor c(payloads[r]);
      ASSERT_EQ(c.get_f32s(), want) << "rank " << r << " replica diverged";
    }
    EXPECT_EQ(owner.num_allreduces(), rounds);
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(ProcCommFabric, ZeroSpinBudgetCompletes) {
  // spin_polls = 0 parks on the futex immediately at every wait site —
  // the regression for the hoisted spin→park threshold (a wake that only
  // worked because a spinning waiter happened to re-poll would hang).
  const std::size_t world = 2, size = 64;
  const Comm::Options opts{.wait = WaitPolicy{.spin_polls = 0}};
  const auto data = make_payloads(world, size, 5);
  const std::vector<float> want = thread_comm_mean(data, opts);

  const std::string prefix = make_session_prefix();
  {
    ProcComm owner =
        ProcComm::create(prefix + ".comm", world, size, opts, kTimeout);
    const auto payloads = disttgl_launch(
        world,
        [&](std::size_t rank) {
          ProcComm comm =
              ProcComm::attach(prefix + ".comm", world, opts, kTimeout);
          std::vector<float> mine = data[rank];
          comm.allreduce_mean(rank, mine);
          WireWriter w;
          w.put_f32s(mine);
          return w.take();
        },
        kTimeout);
    for (std::size_t r = 0; r < world; ++r) {
      WireCursor c(payloads[r]);
      ASSERT_EQ(c.get_f32s(), want);
    }
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(ProcCommFabric, ReserveBeyondSegmentCapacityIsTyped) {
  const std::string prefix = make_session_prefix();
  {
    ProcComm owner = ProcComm::create(prefix + ".comm", 2, 100,
                                      Comm::Options{}, kTimeout);
    EXPECT_EQ(owner.capacity(), 100u);
    owner.reserve(100);  // at capacity: fine
    try {
      owner.reserve(101);
      FAIL() << "reserve beyond a fixed segment must throw";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kCapacity);
    }
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

// ---- hierarchical TCP comm (simulated multi-machine) ---------------------

TEST(HierTopology, BalancedSpansCoverTheWorldInOrder) {
  for (const std::size_t world : {1u, 2u, 4u, 5u, 7u}) {
    for (std::size_t hosts = 1; hosts <= world; ++hosts) {
      std::size_t prev_end = 0;
      std::size_t min_len = world, max_len = 0;
      for (std::size_t h = 0; h < hosts; ++h) {
        const auto [begin, end] = host_span(h, world, hosts);
        ASSERT_EQ(begin, prev_end) << "gap before host " << h;
        ASSERT_LT(begin, end) << "empty host " << h;
        min_len = std::min(min_len, end - begin);
        max_len = std::max(max_len, end - begin);
        for (std::size_t r = begin; r < end; ++r)
          ASSERT_EQ(host_of_rank(r, world, hosts), h);
        prev_end = end;
      }
      ASSERT_EQ(prev_end, world);
      ASSERT_LE(max_len - min_len, 1u) << "unbalanced split";
    }
  }
}

TEST(HierTopology, TopologyForAgreesWithSpans) {
  const std::size_t world = 5, hosts = 2;  // spans [0,3) and [3,5)
  for (std::size_t r = 0; r < world; ++r) {
    const auto t = HierComm::topology_for(r, world, hosts);
    EXPECT_EQ(t.world, world);
    EXPECT_EQ(t.hosts, hosts);
    EXPECT_EQ(t.global_rank, r);
    EXPECT_EQ(t.host, r < 3 ? 0u : 1u);
    EXPECT_EQ(t.local_rank, r < 3 ? r : r - 3);
    EXPECT_EQ(t.local_world, r < 3 ? 3u : 2u);
  }
}

// Forked multi-host harness mirroring train_multiprocess's TCP setup:
// per-host shm segments, a loopback TCP rendezvous, leaders on a real
// loopback ring. `fn` runs inside each forked rank with its HierComm.
std::vector<std::vector<std::uint8_t>> run_hier(
    std::size_t world, std::size_t hosts, Comm::Options opts,
    std::size_t max_elems,
    const std::function<std::vector<std::uint8_t>(std::size_t, HierComm&)>&
        fn) {
  const std::string prefix = make_session_prefix();
  ClusterMap map;
  map.world = static_cast<std::uint32_t>(world);
  map.session_prefix = prefix;
  map.bind_host = "127.0.0.1";
  std::vector<ProcComm> owners;
  for (std::size_t h = 0; h < hosts; ++h) {
    const auto [begin, end] = host_span(h, world, hosts);
    const std::string name = prefix + ".hc" + std::to_string(h);
    owners.push_back(
        ProcComm::create(name, end - begin, max_elems, opts, kTimeout));
    map.host_comm_shms.push_back(name);
    map.spans.push_back({static_cast<std::uint32_t>(begin),
                         static_cast<std::uint32_t>(end), 0});
  }
  std::uint16_t rdv_port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 16, rdv_port);

  ProcGroup group = ProcGroup::spawn(world, [&](std::size_t rank) {
    const auto topo = HierComm::topology_for(rank, world, hosts);
    FdHandle ring_listen;
    std::uint16_t ring_port = 0;
    if (topo.local_rank == 0 && hosts > 1)
      ring_listen = tcp_listen("127.0.0.1", 0, 16, ring_port);
    const ClusterMap m = tcp_rendezvous_client(
        "127.0.0.1", rdv_port, static_cast<std::uint32_t>(world),
        static_cast<std::uint32_t>(rank), ring_port, kTimeout);
    ProcComm local = ProcComm::attach(m.host_comm_shms[topo.host],
                                      topo.local_world, opts, kTimeout);
    RingEndpoints ring;
    if (topo.local_rank == 0 && hosts > 1)
      ring = connect_ring(ring_listen.get(), m, topo.host,
                          deadline_after(kTimeout), true);
    ring_listen.reset();
    HierComm comm(std::move(local), topo, std::move(ring), kTimeout);
    return fn(rank, comm);
  });
  tcp_rendezvous_host(listener.get(), map, kTimeout);

  std::vector<ChildResult> results = group.wait(kTimeout);
  for (const ChildResult& r : results)
    if (!r.ok)
      throw_fabric(r.errc, "rank " + std::to_string(r.rank) +
                               " failed: " + r.message);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(world);
  for (ChildResult& r : results) payloads.push_back(std::move(r.payload));
  return payloads;
}

TEST(HierCommFabric, AllreduceMeanBitIdenticalToThreadComm) {
  struct Cell {
    std::size_t world, hosts;
  };
  for (const Cell cell : {Cell{4, 2}, Cell{5, 2}, Cell{4, 4}, Cell{3, 1}}) {
    for (const std::size_t chunk : {0u, 37u}) {
      const std::size_t size = 500;
      const auto data = make_payloads(cell.world, size, 9);
      const Comm::Options opts{.chunk_elems = chunk};
      const std::vector<float> want = thread_comm_mean(data, opts);

      const auto payloads = run_hier(
          cell.world, cell.hosts, opts, size,
          [&](std::size_t rank, HierComm& comm) {
            std::vector<float> mine = data[rank];
            comm.allreduce_mean(rank, mine);
            WireWriter w;
            w.put_f32s(mine);
            return w.take();
          });
      for (std::size_t r = 0; r < cell.world; ++r) {
        WireCursor c(payloads[r]);
        ASSERT_EQ(c.get_f32s(), want)
            << "world=" << cell.world << " hosts=" << cell.hosts
            << " chunk=" << chunk << " rank=" << r;
      }
    }
  }
}

TEST(HierCommFabric, FusedStepBitIdenticalToThreadComm) {
  const std::size_t world = 5, hosts = 2, size = 131, rounds = 5;
  const Comm::Options opts{.chunk_elems = 16};
  const std::vector<float> init = make_payloads(1, size, 21)[0];

  // In-process reference (same toy optimizer as the ProcComm test).
  std::vector<float> want;
  {
    ThreadComm comm(world, opts);
    std::vector<std::vector<float>> params(world, init);
    std::vector<std::vector<float>> grads(world, std::vector<float>(size));
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        for (std::size_t t = 0; t < rounds; ++t) {
          grads[r] =
              make_payloads(world, size, static_cast<std::uint32_t>(t))[r];
          ToyStep ctx{grads[r], params[r]};
          comm.allreduce_step(r, grads[r], params[r], &toy_chunk_step, &ctx);
        }
      });
    }
    for (auto& t : threads) t.join();
    want = params[0];
  }

  const auto payloads = run_hier(
      world, hosts, opts, size, [&](std::size_t rank, HierComm& comm) {
        std::vector<float> params = init;
        std::vector<float> grads(size);
        for (std::size_t t = 0; t < rounds; ++t) {
          grads =
              make_payloads(world, size, static_cast<std::uint32_t>(t))[rank];
          ToyStep ctx{grads, params};
          comm.allreduce_step(rank, grads, params, &toy_chunk_step, &ctx);
        }
        WireWriter w;
        w.put_f32s(params);
        return w.take();
      });
  for (std::size_t r = 0; r < world; ++r) {
    WireCursor c(payloads[r]);
    ASSERT_EQ(c.get_f32s(), want) << "rank " << r << " replica diverged";
  }
}

TEST(HierCommFabric, AccountingMatchesThreadCommConvention) {
  // Global rank 0 accounts into host 0's segment header with the GLOBAL
  // ring_bytes formula — so the parent's owning handle for host 0 sees
  // exactly what a ThreadComm/ProcComm of the same world would report.
  const std::size_t world = 4, hosts = 2, size = 256;
  const Comm::Options opts{};
  const auto data = make_payloads(world, size, 2);

  const std::string prefix = make_session_prefix();
  ClusterMap map;
  map.world = static_cast<std::uint32_t>(world);
  map.session_prefix = prefix;
  map.bind_host = "127.0.0.1";
  std::vector<ProcComm> owners;
  for (std::size_t h = 0; h < hosts; ++h) {
    const auto [begin, end] = host_span(h, world, hosts);
    const std::string name = prefix + ".hc" + std::to_string(h);
    owners.push_back(
        ProcComm::create(name, end - begin, size, opts, kTimeout));
    map.host_comm_shms.push_back(name);
    map.spans.push_back({static_cast<std::uint32_t>(begin),
                         static_cast<std::uint32_t>(end), 0});
  }
  std::uint16_t rdv_port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 16, rdv_port);
  ProcGroup group = ProcGroup::spawn(world, [&](std::size_t rank) {
    const auto topo = HierComm::topology_for(rank, world, hosts);
    FdHandle ring_listen;
    std::uint16_t ring_port = 0;
    if (topo.local_rank == 0)
      ring_listen = tcp_listen("127.0.0.1", 0, 16, ring_port);
    const ClusterMap m = tcp_rendezvous_client(
        "127.0.0.1", rdv_port, static_cast<std::uint32_t>(world),
        static_cast<std::uint32_t>(rank), ring_port, kTimeout);
    ProcComm local = ProcComm::attach(m.host_comm_shms[topo.host],
                                      topo.local_world, opts, kTimeout);
    RingEndpoints ring;
    if (topo.local_rank == 0)
      ring = connect_ring(ring_listen.get(), m, topo.host,
                          deadline_after(kTimeout), true);
    ring_listen.reset();
    HierComm comm(std::move(local), topo, std::move(ring), kTimeout);
    std::vector<float> mine = data[rank];
    comm.allreduce_mean(rank, mine);
    return std::vector<std::uint8_t>{};
  });
  tcp_rendezvous_host(listener.get(), map, kTimeout);
  for (const ChildResult& r : group.wait(kTimeout))
    ASSERT_TRUE(r.ok) << "rank " << r.rank << ": " << r.message;

  EXPECT_EQ(owners[0].num_allreduces(), 1u);
  EXPECT_EQ(owners[0].logical_bytes(),
            static_cast<std::uint64_t>(2.0 * (world - 1) / world * size *
                                       sizeof(float) * world));
  // Host 1's segment carries no global counters (rank 0 lives on host 0).
  EXPECT_EQ(owners[1].num_allreduces(), 0u);
}

// ---- TCP endpoint + deadline plumbing ------------------------------------

TEST(TcpSocket, FramedRoundTripOverLoopback) {
  std::uint16_t port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 4, port);
  ASSERT_GT(port, 0);

  const Deadline deadline = deadline_after(kTimeout);
  FdHandle dialed = tcp_connect("127.0.0.1", port, deadline);
  FdHandle accepted = accept_conn(listener.get(), deadline);
  tcp_set_nodelay(accepted.get());

  TcpEndpoint a(std::move(dialed));
  TcpEndpoint b(std::move(accepted));
  const std::vector<std::uint8_t> payload = {1, 2, 3, 42, 0, 255};
  a.send(MsgType::kCollective, payload, deadline);
  Frame f;
  ASSERT_TRUE(b.recv(f, deadline));
  EXPECT_EQ(f.type, MsgType::kCollective);
  EXPECT_EQ(f.payload, payload);
  // Header (16B) + payload, counted on the sender.
  EXPECT_EQ(a.bytes_sent(), 16u + payload.size());
  EXPECT_EQ(b.bytes_sent(), 0u);

  // Duplex: the accepted side answers on the same connection.
  b.send(MsgType::kHeartbeat, {}, deadline);
  ASSERT_TRUE(a.recv(f, deadline));
  EXPECT_EQ(f.type, MsgType::kHeartbeat);
  EXPECT_TRUE(f.payload.empty());
}

TEST(TcpSocket, SecondListenerOnSamePortIsAddrInUse) {
  std::uint16_t port = 0;
  FdHandle listener = tcp_listen("127.0.0.1", 0, 4, port);
  std::uint16_t other = 0;
  try {
    FdHandle second = tcp_listen("127.0.0.1", port, 4, other);
    FAIL() << "binding a live TCP port must throw";
  } catch (const FabricError& e) {
    EXPECT_EQ(e.code(), FabricErrc::kAddrInUse);
  }
}

TEST(SocketDeadline, DeadlineAfterSaturatesInsteadOfOverflowing) {
  // milliseconds::max() used to overflow now + ms into the distant past,
  // which turned every poll timeout into 0 ms — a busy spin.
  const Deadline d = deadline_after(std::chrono::milliseconds::max());
  EXPECT_EQ(d, kNoDeadline);
  EXPECT_EQ(poll_timeout_ms(d), 60'000);  // bounded slice, not 0

  // A deadline already in the past polls 0 (immediate), never negative.
  const Deadline past =
      std::chrono::steady_clock::now() - std::chrono::seconds(5);
  EXPECT_EQ(poll_timeout_ms(past), 0);

  // A near deadline yields a positive bounded slice.
  const Deadline soon = deadline_after(std::chrono::milliseconds(1'500));
  const int ms = poll_timeout_ms(soon);
  EXPECT_GT(ms, 0);
  EXPECT_LE(ms, 1'500);
}

// ---- rendezvous ----------------------------------------------------------

TEST(Rendezvous, HandshakeDeliversSessionInfoToEveryRank) {
  const std::string prefix = make_session_prefix();
  const std::string sock = "/tmp" + prefix + ".sock";
  RendezvousInfo info;
  info.world = 3;
  info.session_prefix = prefix;
  info.comm_shm = prefix + ".comm";
  info.daemon_shms = {prefix + ".mem0", prefix + ".mem1"};

  ProcGroup group = ProcGroup::spawn(3, [&](std::size_t rank) {
    const RendezvousInfo got = rendezvous_client(
        sock, 3, static_cast<std::uint32_t>(rank), kTimeout);
    return encode_rendezvous_info(got);
  });
  rendezvous_host(sock, info, kTimeout);
  const std::vector<ChildResult> results = group.wait(kTimeout);

  const std::vector<std::uint8_t> want = encode_rendezvous_info(info);
  for (const ChildResult& r : results) {
    ASSERT_TRUE(r.ok) << "rank " << r.rank << ": " << r.message;
    EXPECT_EQ(r.payload, want) << "rank " << r.rank;
  }
}

// ---- cross-process daemon channel ----------------------------------------

ShmDaemonSpec small_spec() {
  ShmDaemonSpec spec;
  spec.slots = 2;  // i=2, j=1
  spec.mem_dim = 3;
  spec.mail_dim = 5;
  spec.max_read_nodes = 16;
  spec.max_write_nodes = 8;
  return spec;
}

DaemonConfig daemon_config(std::size_t rounds) {
  DaemonConfig dc;
  dc.i = 2;
  dc.j = 1;
  dc.reset_before_round.assign(rounds, 0);
  dc.reset_before_round[0] = 1;
  return dc;
}

// One client rank's scripted protocol run: `rounds` rounds of
// read-then-write with per-round varying shapes, appending every served
// slice to a WireWriter so runs can be compared byte-for-byte.
template <typename Channel>
std::vector<std::uint8_t> run_daemon_client(Channel& ch, std::size_t rank,
                                            std::size_t rounds) {
  WireWriter log;
  MemorySlice slice;
  MemoryWrite write;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<NodeId> nodes;
    for (std::size_t x = 0; x <= (round + rank) % 3; ++x)
      nodes.push_back(static_cast<NodeId>((rank * 7 + round + x) % 10));
    ch.read(rank, nodes, slice);
    log.put_u64(slice.size());
    for (std::size_t n = 0; n < slice.size(); ++n) {
      log.put_f32s(std::span<const float>(slice.mem.row(n)));
      log.put_f32s(std::span<const float>(slice.mail.row(n)));
      log.put_f32s(std::span<const float>(&slice.mem_ts[n], 1));
      log.put_f32s(std::span<const float>(&slice.mail_ts[n], 1));
      log.put_u32(slice.has_mail[n]);
    }
    write.clear();
    // Disjoint per-rank node sets keep the round's writes commutative.
    const auto node = static_cast<NodeId>(rank * 5 + round % 5);
    write.nodes = {node};
    write.mem = Matrix(1, 3, static_cast<float>(rank + 1) + 0.1f * round);
    write.mem_ts = {static_cast<float>(round)};
    write.mail = Matrix(1, 5, static_cast<float>(rank) - 0.2f * round);
    write.mail_ts = {static_cast<float>(round) + 0.5f};
    ch.write(rank, write);
  }
  return log.take();
}

TEST(ShmDaemonFabric, ServedSlicesAndFinalStateMatchInProcessDaemon) {
  constexpr std::size_t kRounds = 6;

  // In-process reference: MemoryDaemon over the same scripted protocol.
  MemoryState ref_state(10, 3, 5);
  std::vector<std::vector<std::uint8_t>> ref_logs(2);
  {
    MemoryDaemon daemon(ref_state, daemon_config(kRounds));
    daemon.start();
    std::vector<std::thread> clients;
    for (std::size_t rank = 0; rank < 2; ++rank)
      clients.emplace_back([&, rank] {
        ref_logs[rank] = run_daemon_client(daemon, rank, kRounds);
      });
    for (auto& t : clients) t.join();
    daemon.join();
  }

  // Cross-process: clients in forked ranks, server in the parent.
  const std::string prefix = make_session_prefix();
  MemoryState shm_state(10, 3, 5);
  {
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", small_spec());
    ProcGroup group = ProcGroup::spawn(2, [&](std::size_t rank) {
      ShmDaemonChannel ch =
          ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kTimeout);
      return run_daemon_client(ch, rank, kRounds);
    });
    ShmDaemonChannel host =
        ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kTimeout);
    ShmDaemonServer server(shm_state, daemon_config(kRounds), host);
    server.start();
    const std::vector<ChildResult> results = group.wait(kTimeout);
    server.join();
    for (const ChildResult& r : results) {
      ASSERT_TRUE(r.ok) << "rank " << r.rank << ": " << r.message;
      EXPECT_EQ(r.payload, ref_logs[r.rank])
          << "rank " << r.rank << " saw different slices across fabrics";
    }
  }
  EXPECT_EQ(memory_digest(shm_state), memory_digest(ref_state));
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(ShmDaemonFabric, InProcessClientsZeroSpinCompletes) {
  // Same channel + server, single process, spin_polls = 0 everywhere:
  // the park-immediately regression for the shm slot handshake.
  constexpr std::size_t kRounds = 4;
  const std::string prefix = make_session_prefix();
  MemoryState state(10, 3, 5);
  {
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", small_spec());
    const WaitPolicy park_now{.spin_polls = 0};
    ShmDaemonChannel ch =
        ShmDaemonChannel::attach(prefix + ".mem0", park_now, kTimeout);
    DaemonConfig dc = daemon_config(kRounds);
    dc.wait = park_now;
    ShmDaemonServer server(state, dc, ch);
    server.start();
    std::vector<std::thread> clients;
    for (std::size_t rank = 0; rank < 2; ++rank)
      clients.emplace_back([&, rank] { run_daemon_client(ch, rank, kRounds); });
    for (auto& t : clients) t.join();
    server.join();
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

}  // namespace
}  // namespace disttgl::dist
