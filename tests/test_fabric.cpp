// Process-fabric correctness: the cross-process collective (ProcComm)
// and daemon channel (ShmDaemonChannel) must be drop-in equivalents of
// their in-process counterparts — bit-identical collective results,
// bit-identical served slices, same accounting — plus the rendezvous
// handshake and the spin→park threshold regression (threshold 0 must
// complete on every transport). Fault injection lives in
// tests/test_fabric_faults.cpp, wire fuzzing in tests/test_fabric_wire.cpp,
// allocation pinning in tests/test_fabric_alloc.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "distributed/launch.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/shm.hpp"
#include "distributed/wire.hpp"
#include "memory/shm_channel.hpp"

namespace disttgl::dist {
namespace {

constexpr std::chrono::milliseconds kTimeout{30'000};

std::vector<std::vector<float>> make_payloads(std::size_t ranks,
                                              std::size_t size,
                                              std::uint32_t salt) {
  std::vector<std::vector<float>> data(ranks, std::vector<float>(size));
  for (std::size_t r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < size; ++i)
      data[r][i] = 0.25f * static_cast<float>((r * 31 + i * 7 + salt) % 23) -
                   1.5f + 1e-3f * static_cast<float>(i);
  return data;
}

// ThreadComm result for the same inputs — the bit-exactness reference.
std::vector<float> thread_comm_mean(std::vector<std::vector<float>> data,
                                    Comm::Options opts) {
  const std::size_t ranks = data.size();
  ThreadComm comm(ranks, opts);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < ranks; ++r)
    threads.emplace_back([&, r] { comm.allreduce_mean(r, data[r]); });
  for (auto& t : threads) t.join();
  return data[0];
}

TEST(ProcCommFabric, AllreduceMeanBitIdenticalToThreadComm) {
  for (const std::size_t world : {2u, 4u}) {
    for (const std::size_t chunk : {0u, 37u}) {
      const std::size_t size = 500;
      const auto data = make_payloads(world, size, 3);
      const Comm::Options opts{.chunk_elems = chunk};
      const std::vector<float> want = thread_comm_mean(data, opts);

      const std::string prefix = make_session_prefix();
      {
        ProcComm owner =
            ProcComm::create(prefix + ".comm", world, size, opts, kTimeout);
        const auto payloads = disttgl_launch(
            world,
            [&](std::size_t rank) {
              ProcComm comm =
                  ProcComm::attach(prefix + ".comm", world, opts, kTimeout);
              std::vector<float> mine = data[rank];
              comm.allreduce_mean(rank, mine);
              WireWriter w;
              w.put_f32s(mine);
              return w.take();
            },
            kTimeout);
        for (std::size_t r = 0; r < world; ++r) {
          WireCursor c(payloads[r]);
          const std::vector<float> got = c.get_f32s();
          ASSERT_EQ(got, want) << "world=" << world << " chunk=" << chunk
                               << " rank=" << r;
        }
        // Accounting lives in the segment: the parent's owning handle
        // observes the children's traffic.
        EXPECT_EQ(owner.num_allreduces(), 1u);
        EXPECT_EQ(owner.logical_bytes(),
                  static_cast<std::uint64_t>(2.0 * (world - 1) / world * size *
                                             sizeof(float) * world));
      }
      EXPECT_TRUE(list_shm(prefix).empty()) << "leaked shm segment";
    }
  }
}

// The fused allreduce→step contract across processes: same toy
// optimizer as tests/test_comm.cpp, replicas must agree bitwise with the
// in-process fused run after several rounds.
struct ToyStep {
  std::span<float> grads;
  std::span<float> params;
};

void toy_chunk_step(void* ctx, std::size_t lo, std::size_t hi, double sq) {
  auto* s = static_cast<ToyStep*>(ctx);
  const float norm = static_cast<float>(std::sqrt(sq));
  const float scale = norm > 0.5f ? 0.5f / norm : 1.0f;
  for (std::size_t i = lo; i < hi; ++i)
    s->params[i] -= 0.1f * scale * s->grads[i];
}

TEST(ProcCommFabric, FusedStepBitIdenticalToThreadComm) {
  const std::size_t world = 3, size = 131, rounds = 5;
  const Comm::Options opts{.chunk_elems = 16};
  const std::vector<float> init = make_payloads(1, size, 21)[0];

  // In-process reference.
  std::vector<float> want;
  {
    ThreadComm comm(world, opts);
    std::vector<std::vector<float>> params(world, init);
    std::vector<std::vector<float>> grads(world, std::vector<float>(size));
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        for (std::size_t t = 0; t < rounds; ++t) {
          grads[r] =
              make_payloads(world, size, static_cast<std::uint32_t>(t))[r];
          ToyStep ctx{grads[r], params[r]};
          comm.allreduce_step(r, grads[r], params[r], &toy_chunk_step, &ctx);
        }
      });
    }
    for (auto& t : threads) t.join();
    want = params[0];
  }

  const std::string prefix = make_session_prefix();
  {
    ProcComm owner =
        ProcComm::create(prefix + ".comm", world, size, opts, kTimeout);
    const auto payloads = disttgl_launch(
        world,
        [&](std::size_t rank) {
          ProcComm comm =
              ProcComm::attach(prefix + ".comm", world, opts, kTimeout);
          std::vector<float> params = init;
          std::vector<float> grads(size);
          for (std::size_t t = 0; t < rounds; ++t) {
            grads = make_payloads(world, size, static_cast<std::uint32_t>(t))
                        [rank];
            ToyStep ctx{grads, params};
            comm.allreduce_step(rank, grads, params, &toy_chunk_step, &ctx);
          }
          WireWriter w;
          w.put_f32s(params);
          return w.take();
        },
        kTimeout);
    for (std::size_t r = 0; r < world; ++r) {
      WireCursor c(payloads[r]);
      ASSERT_EQ(c.get_f32s(), want) << "rank " << r << " replica diverged";
    }
    EXPECT_EQ(owner.num_allreduces(), rounds);
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(ProcCommFabric, ZeroSpinBudgetCompletes) {
  // spin_polls = 0 parks on the futex immediately at every wait site —
  // the regression for the hoisted spin→park threshold (a wake that only
  // worked because a spinning waiter happened to re-poll would hang).
  const std::size_t world = 2, size = 64;
  const Comm::Options opts{.wait = WaitPolicy{.spin_polls = 0}};
  const auto data = make_payloads(world, size, 5);
  const std::vector<float> want = thread_comm_mean(data, opts);

  const std::string prefix = make_session_prefix();
  {
    ProcComm owner =
        ProcComm::create(prefix + ".comm", world, size, opts, kTimeout);
    const auto payloads = disttgl_launch(
        world,
        [&](std::size_t rank) {
          ProcComm comm =
              ProcComm::attach(prefix + ".comm", world, opts, kTimeout);
          std::vector<float> mine = data[rank];
          comm.allreduce_mean(rank, mine);
          WireWriter w;
          w.put_f32s(mine);
          return w.take();
        },
        kTimeout);
    for (std::size_t r = 0; r < world; ++r) {
      WireCursor c(payloads[r]);
      ASSERT_EQ(c.get_f32s(), want);
    }
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(ProcCommFabric, ReserveBeyondSegmentCapacityIsTyped) {
  const std::string prefix = make_session_prefix();
  {
    ProcComm owner = ProcComm::create(prefix + ".comm", 2, 100,
                                      Comm::Options{}, kTimeout);
    EXPECT_EQ(owner.capacity(), 100u);
    owner.reserve(100);  // at capacity: fine
    try {
      owner.reserve(101);
      FAIL() << "reserve beyond a fixed segment must throw";
    } catch (const FabricError& e) {
      EXPECT_EQ(e.code(), FabricErrc::kCapacity);
    }
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

// ---- rendezvous ----------------------------------------------------------

TEST(Rendezvous, HandshakeDeliversSessionInfoToEveryRank) {
  const std::string prefix = make_session_prefix();
  const std::string sock = "/tmp" + prefix + ".sock";
  RendezvousInfo info;
  info.world = 3;
  info.session_prefix = prefix;
  info.comm_shm = prefix + ".comm";
  info.daemon_shms = {prefix + ".mem0", prefix + ".mem1"};

  ProcGroup group = ProcGroup::spawn(3, [&](std::size_t rank) {
    const RendezvousInfo got = rendezvous_client(
        sock, 3, static_cast<std::uint32_t>(rank), kTimeout);
    return encode_rendezvous_info(got);
  });
  rendezvous_host(sock, info, kTimeout);
  const std::vector<ChildResult> results = group.wait(kTimeout);

  const std::vector<std::uint8_t> want = encode_rendezvous_info(info);
  for (const ChildResult& r : results) {
    ASSERT_TRUE(r.ok) << "rank " << r.rank << ": " << r.message;
    EXPECT_EQ(r.payload, want) << "rank " << r.rank;
  }
}

// ---- cross-process daemon channel ----------------------------------------

ShmDaemonSpec small_spec() {
  ShmDaemonSpec spec;
  spec.slots = 2;  // i=2, j=1
  spec.mem_dim = 3;
  spec.mail_dim = 5;
  spec.max_read_nodes = 16;
  spec.max_write_nodes = 8;
  return spec;
}

DaemonConfig daemon_config(std::size_t rounds) {
  DaemonConfig dc;
  dc.i = 2;
  dc.j = 1;
  dc.reset_before_round.assign(rounds, 0);
  dc.reset_before_round[0] = 1;
  return dc;
}

// One client rank's scripted protocol run: `rounds` rounds of
// read-then-write with per-round varying shapes, appending every served
// slice to a WireWriter so runs can be compared byte-for-byte.
template <typename Channel>
std::vector<std::uint8_t> run_daemon_client(Channel& ch, std::size_t rank,
                                            std::size_t rounds) {
  WireWriter log;
  MemorySlice slice;
  MemoryWrite write;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<NodeId> nodes;
    for (std::size_t x = 0; x <= (round + rank) % 3; ++x)
      nodes.push_back(static_cast<NodeId>((rank * 7 + round + x) % 10));
    ch.read(rank, nodes, slice);
    log.put_u64(slice.size());
    for (std::size_t n = 0; n < slice.size(); ++n) {
      log.put_f32s(std::span<const float>(slice.mem.row(n)));
      log.put_f32s(std::span<const float>(slice.mail.row(n)));
      log.put_f32s(std::span<const float>(&slice.mem_ts[n], 1));
      log.put_f32s(std::span<const float>(&slice.mail_ts[n], 1));
      log.put_u32(slice.has_mail[n]);
    }
    write.clear();
    // Disjoint per-rank node sets keep the round's writes commutative.
    const auto node = static_cast<NodeId>(rank * 5 + round % 5);
    write.nodes = {node};
    write.mem = Matrix(1, 3, static_cast<float>(rank + 1) + 0.1f * round);
    write.mem_ts = {static_cast<float>(round)};
    write.mail = Matrix(1, 5, static_cast<float>(rank) - 0.2f * round);
    write.mail_ts = {static_cast<float>(round) + 0.5f};
    ch.write(rank, write);
  }
  return log.take();
}

TEST(ShmDaemonFabric, ServedSlicesAndFinalStateMatchInProcessDaemon) {
  constexpr std::size_t kRounds = 6;

  // In-process reference: MemoryDaemon over the same scripted protocol.
  MemoryState ref_state(10, 3, 5);
  std::vector<std::vector<std::uint8_t>> ref_logs(2);
  {
    MemoryDaemon daemon(ref_state, daemon_config(kRounds));
    daemon.start();
    std::vector<std::thread> clients;
    for (std::size_t rank = 0; rank < 2; ++rank)
      clients.emplace_back([&, rank] {
        ref_logs[rank] = run_daemon_client(daemon, rank, kRounds);
      });
    for (auto& t : clients) t.join();
    daemon.join();
  }

  // Cross-process: clients in forked ranks, server in the parent.
  const std::string prefix = make_session_prefix();
  MemoryState shm_state(10, 3, 5);
  {
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", small_spec());
    ProcGroup group = ProcGroup::spawn(2, [&](std::size_t rank) {
      ShmDaemonChannel ch =
          ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kTimeout);
      return run_daemon_client(ch, rank, kRounds);
    });
    ShmDaemonChannel host =
        ShmDaemonChannel::attach(prefix + ".mem0", WaitPolicy{}, kTimeout);
    ShmDaemonServer server(shm_state, daemon_config(kRounds), host);
    server.start();
    const std::vector<ChildResult> results = group.wait(kTimeout);
    server.join();
    for (const ChildResult& r : results) {
      ASSERT_TRUE(r.ok) << "rank " << r.rank << ": " << r.message;
      EXPECT_EQ(r.payload, ref_logs[r.rank])
          << "rank " << r.rank << " saw different slices across fabrics";
    }
  }
  EXPECT_EQ(memory_digest(shm_state), memory_digest(ref_state));
  EXPECT_TRUE(list_shm(prefix).empty());
}

TEST(ShmDaemonFabric, InProcessClientsZeroSpinCompletes) {
  // Same channel + server, single process, spin_polls = 0 everywhere:
  // the park-immediately regression for the shm slot handshake.
  constexpr std::size_t kRounds = 4;
  const std::string prefix = make_session_prefix();
  MemoryState state(10, 3, 5);
  {
    ShmSegment segment =
        ShmDaemonChannel::create_segment(prefix + ".mem0", small_spec());
    const WaitPolicy park_now{.spin_polls = 0};
    ShmDaemonChannel ch =
        ShmDaemonChannel::attach(prefix + ".mem0", park_now, kTimeout);
    DaemonConfig dc = daemon_config(kRounds);
    dc.wait = park_now;
    ShmDaemonServer server(state, dc, ch);
    server.start();
    std::vector<std::thread> clients;
    for (std::size_t rank = 0; rank < 2; ++rank)
      clients.emplace_back([&, rank] { run_daemon_client(ch, rank, kRounds); });
    for (auto& t : clients) t.join();
    server.join();
  }
  EXPECT_TRUE(list_shm(prefix).empty());
}

}  // namespace
}  // namespace disttgl::dist
