// Allocation-freedom of the batch-construction path: after warm-up has
// grown every recycled buffer (MiniBatch arrays, SampledRoots windows,
// the NodeIndexMap table) to its high-water mark, build_into must never
// touch the allocator again — serial and with the sampler fanned out
// over a thread pool — and MiniBatchPool checkout/return cycles must be
// free too. Same counting-global-allocator technique as test_kernels;
// the counter lives in this binary only.
//
// The deliberate exceptions, pinned by *absence* here: ThreadPool::
// submit (type-erased job, one per prefetch dispatch, not per-root) and
// the MemorySlice/MemoryWrite payloads (owned by the memory layer).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "datagen/generator.hpp"
#include "sampling/minibatch_pool.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace disttgl {
namespace {

struct Fixture {
  TemporalGraph graph;
  NeighborSampler sampler;
  NegativeSampler negatives;

  Fixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 60;
          spec.num_dst = 30;
          spec.num_events = 3000;
          spec.seed = 23;
          return datagen::generate(spec);
        }()),
        sampler(graph, 6),
        negatives(graph, 4, 11) {}
};

// The iteration pattern of a real trainer: a rotation of batch ranges
// (including a short tail chunk) and variant groups, repeated forever
// into the same recycled MiniBatch.
void build_rotation(const MiniBatchBuilder& builder, MiniBatch& mb,
                    std::size_t round) {
  static constexpr std::size_t kRanges[][2] = {
      {0, 200}, {200, 400}, {400, 430}, {430, 630}};
  const std::size_t groups[2] = {round % 4, (round + 1) % 4};
  const auto& range = kRanges[round % 4];
  builder.build_into(round, range[0], range[1],
                     std::span<const std::size_t>(groups), mb);
}

TEST(BatchAllocationFree, SerialBuildIntoSteadyState) {
  Fixture fx;
  MiniBatchBuilder builder(fx.graph, fx.sampler, fx.negatives, 2);
  MiniBatch mb;
  for (std::size_t r = 0; r < 8; ++r) build_rotation(builder, mb, r);  // warm up
  const std::size_t before = g_alloc_count.load();
  for (std::size_t r = 0; r < 12; ++r) build_rotation(builder, mb, r);
  EXPECT_EQ(g_alloc_count.load(), before)
      << "steady-state build_into allocated";
}

TEST(BatchAllocationFree, PooledSamplerBuildIntoSteadyState) {
  Fixture fx;
  ThreadPool pool(3);
  MiniBatchBuilder builder(fx.graph, fx.sampler, fx.negatives, 2, &pool);
  MiniBatch mb;
  for (std::size_t r = 0; r < 8; ++r) build_rotation(builder, mb, r);
  const std::size_t before = g_alloc_count.load();
  for (std::size_t r = 0; r < 12; ++r) build_rotation(builder, mb, r);
  EXPECT_EQ(g_alloc_count.load(), before)
      << "parallel_for batch construction allocated";
}

TEST(BatchAllocationFree, PoolCheckoutCycleSteadyState) {
  Fixture fx;
  MiniBatchBuilder builder(fx.graph, fx.sampler, fx.negatives, 1);
  MiniBatchPool pool(2);
  // Warm-up: cycle both slots through the builder so each buffer's
  // capacity reaches the high-water mark.
  for (std::size_t r = 0; r < 8; ++r) {
    PooledBatch a = pool.acquire();
    PooledBatch b = pool.acquire();
    build_rotation(builder, *a, r);
    build_rotation(builder, *b, r + 1);
  }
  EXPECT_EQ(pool.created(), 2u);
  const std::size_t before = g_alloc_count.load();
  for (std::size_t r = 0; r < 12; ++r) {
    PooledBatch a = pool.acquire();
    PooledBatch b = pool.acquire();
    build_rotation(builder, *a, r);
    build_rotation(builder, *b, r + 1);
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "pool checkout/build/return cycle allocated";
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.created(), 2u) << "steady state must not grow the pool";
}

TEST(BatchAllocationFree, SampleManySteadyState) {
  Fixture fx;
  SampledRoots roots;
  Rng rng(3);
  auto refill = [&] {
    roots.clear();
    for (int i = 0; i < 500; ++i) {
      roots.nodes.push_back(static_cast<NodeId>(rng.uniform_int(90)));
      roots.ts.push_back(static_cast<float>(rng.uniform(0.0, 1e6)));
    }
    fx.sampler.sample_many(roots);
  };
  for (int i = 0; i < 3; ++i) refill();
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 5; ++i) refill();
  EXPECT_EQ(g_alloc_count.load(), before);
}

}  // namespace
}  // namespace disttgl
