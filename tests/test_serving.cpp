// The read-only serving tier, bottom to top: snapshot loading (newest
// committed set wins, torn sets fall back), the versioned publication
// seam (geometry validation, version monotonicity, typed request
// rejection), snapshot isolation under concurrent installs (N readers
// score sentinel-patterned snapshots while a writer churns versions —
// every response must be attributable to exactly one published version,
// bitwise; run under TSan in CI), checkpoint→serve equivalence across
// the {i,j,k} grid (served scores bitwise equal to an inline infer_into
// at the checkpoint's iteration), and the socket front end (UNIX + TCP
// round trips, typed error propagation, the directory poller).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/proc_trainer.hpp"
#include "datagen/generator.hpp"
#include "serving/model_server.hpp"
#include "serving/score_server.hpp"
#include "serving/snapshot.hpp"

namespace disttgl {
namespace {

namespace fs = std::filesystem;
using serving::ModelServer;
using serving::ScoreClient;
using serving::ScoreRequest;
using serving::ScoreResponse;
using serving::ScoreServer;
using serving::ScoreServerConfig;
using serving::ServingConfig;
using serving::ServingErrc;
using serving::ServingError;
using serving::ServingSnapshot;

// Scratch dirs/sockets live under the fabric_shm_sweep fixture's roots.
std::string fresh_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = "/tmp/disttgl-ckpt/serve_" + tag + "." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  fs::create_directories(dir);
  return dir;
}

std::string fresh_socket(const std::string& tag) {
  static std::atomic<int> counter{0};
  return "/tmp/disttgl." + tag + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

TemporalGraph serving_graph() {
  datagen::SynthSpec spec;
  spec.num_src = 50;
  spec.num_dst = 25;
  spec.num_events = 1600;
  spec.edge_feat_dim = 4;
  spec.seed = 91;
  return datagen::generate(spec);
}

TrainingConfig serving_training_config() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 8;
  cfg.model.time_dim = 4;
  cfg.model.attn_dim = 8;
  cfg.model.emb_dim = 8;
  cfg.model.num_neighbors = 4;
  cfg.model.head_hidden = 8;
  cfg.local_batch = 56;
  cfg.epochs = 2;
  cfg.seed = 17;
  return cfg;
}

// A request over real graph events [begin, end) — served edges carry
// the events' (src, dst, ts) but no identity beyond that.
ScoreRequest request_over_events(const TemporalGraph& g, std::size_t begin,
                                 std::size_t end, std::uint32_t copy = 0,
                                 std::uint64_t id = 1) {
  ScoreRequest req;
  req.id = id;
  req.copy = copy;
  for (std::size_t i = begin; i < end; ++i) {
    const TemporalEdge& e = g.event(static_cast<EdgeId>(i));
    req.src.push_back(e.src);
    req.dst.push_back(e.dst);
    req.ts.push_back(e.ts);
  }
  return req;
}

// Initial weights of a freshly-built model for (cfg, graph, seed) — the
// sentinel snapshots all share these values so only the memory pattern
// distinguishes versions.
std::vector<float> probe_weights(const ModelConfig& cfg,
                                 const TemporalGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  TGNModel model(cfg, g, nullptr, rng);
  std::vector<float> w;
  nn::flatten_values(model.cached_parameters(), w);
  return w;
}

// Hand-built snapshot whose node-memory rows carry a per-pattern
// sentinel (mails empty, so scores read the pattern directly through
// the attention path). iteration = pattern + 1 makes every response
// attributable: resp.iteration − 1 names the pattern it was served
// from.
std::shared_ptr<const ServingSnapshot> sentinel_snapshot(
    const ModelConfig& cfg, const TemporalGraph& g, std::vector<float> weights,
    std::size_t pattern, std::size_t copies = 1) {
  const std::size_t n = g.num_nodes();
  const std::size_t mail_dim = 2 * cfg.mem_dim + 4;  // edge_feat_dim = 4
  auto snap = std::make_shared<ServingSnapshot>();
  snap->iteration = pattern + 1;
  snap->fingerprint = 0xfeedULL;
  snap->world = 1;
  snap->weights = std::move(weights);
  for (std::size_t c = 0; c < copies; ++c) {
    MemoryState state(n, cfg.mem_dim, mail_dim);
    std::vector<NodeId> nodes(n);
    Matrix mem(n, cfg.mem_dim);
    Matrix mail(n, mail_dim);
    std::vector<float> mem_ts(n, 0.0f), mail_ts(n, 0.0f);
    std::vector<std::uint8_t> flags(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      nodes[v] = static_cast<NodeId>(v);
      for (std::size_t d = 0; d < cfg.mem_dim; ++d)
        mem(v, d) = 0.25f * static_cast<float>(pattern + 1 + c) +
                    0.01f * static_cast<float>(d) -
                    0.002f * static_cast<float>(v % 7);
    }
    state.restore(nodes, mem, mem_ts, mail, mail_ts, flags);
    snap->states.push_back(std::move(state));
  }
  return snap;
}

// ---- snapshot loading ----------------------------------------------------

TEST(ServingSnapshot, LoadsNewestCommittedSetFromTrainedRun) {
  TemporalGraph g = serving_graph();
  TrainingConfig cfg = serving_training_config();
  cfg.recovery.checkpoint_dir = fresh_dir("load");
  cfg.recovery.checkpoint_every = 3;
  (void)train_distributed(cfg, g, nullptr);

  const std::vector<SnapshotRef> refs =
      list_snapshots(cfg.recovery.checkpoint_dir);
  ASSERT_FALSE(refs.empty());
  // committed_iterations sorts newest first, and list_snapshots must
  // preserve that order (load_latest_servable's fallback depends on it).
  for (std::size_t i = 1; i < refs.size(); ++i)
    EXPECT_GT(refs[i - 1].iteration, refs[i].iteration);

  auto snap = serving::load_latest_servable(cfg.recovery.checkpoint_dir);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->iteration, refs.front().iteration);
  EXPECT_EQ(snap->states.size(), 1u);
  EXPECT_EQ(snap->states[0].num_nodes(), g.num_nodes());
  EXPECT_EQ(snap->states[0].mem_dim(), cfg.model.mem_dim);

  Rng rng(1);
  TGNModel probe(cfg.model, g, nullptr, rng);
  EXPECT_EQ(snap->weights.size(), probe.num_parameters());
}

TEST(ServingSnapshot, TornNewestSetFallsBackToPrevious) {
  TemporalGraph g = serving_graph();
  TrainingConfig cfg = serving_training_config();
  cfg.recovery.checkpoint_dir = fresh_dir("fallback");
  cfg.recovery.checkpoint_every = 3;
  (void)train_distributed(cfg, g, nullptr);

  const std::vector<SnapshotRef> refs =
      list_snapshots(cfg.recovery.checkpoint_dir);
  ASSERT_GE(refs.size(), 2u);

  // A commit marker with its mem shard missing is a torn set: loading
  // must fall back to the next-newest snapshot, not fail.
  fs::remove(refs.front().stem + ".mem0");
  auto snap = serving::load_latest_servable(cfg.recovery.checkpoint_dir);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->iteration, refs[1].iteration);
}

TEST(ServingSnapshot, EmptyDirectoryYieldsNull) {
  EXPECT_EQ(serving::load_latest_servable(fresh_dir("empty")), nullptr);
}

// ---- publication seam ----------------------------------------------------

TEST(ServingPublication, InstallValidatesGeometryTyped) {
  TemporalGraph g = serving_graph();
  const ModelConfig mc = serving_training_config().model;
  ModelServer server(mc, ServingConfig{}, g);
  const std::vector<float> w = probe_weights(mc, g, 5);

  const auto code_of = [&](std::shared_ptr<const ServingSnapshot> s) {
    try {
      server.install_snapshot(std::move(s));
    } catch (const ServingError& e) {
      return e.code();
    }
    return static_cast<ServingErrc>(0);
  };

  // Wrong weight count.
  auto bad_w = sentinel_snapshot(mc, g, w, 0);
  std::const_pointer_cast<ServingSnapshot>(bad_w)->weights.push_back(0.0f);
  EXPECT_EQ(code_of(bad_w), ServingErrc::kShapeMismatch);

  // No memory copies.
  auto no_mem = sentinel_snapshot(mc, g, w, 0);
  std::const_pointer_cast<ServingSnapshot>(no_mem)->states.clear();
  EXPECT_EQ(code_of(no_mem), ServingErrc::kShapeMismatch);

  // Wrong memory geometry.
  auto bad_mem = sentinel_snapshot(mc, g, w, 0);
  std::const_pointer_cast<ServingSnapshot>(bad_mem)->states[0] =
      MemoryState(g.num_nodes(), mc.mem_dim + 1, 2 * mc.mem_dim + 4);
  EXPECT_EQ(code_of(bad_mem), ServingErrc::kShapeMismatch);

  // Nothing above may have published.
  EXPECT_EQ(server.version(), 0u);
  EXPECT_EQ(server.installs(), 0u);

  EXPECT_EQ(server.install_snapshot(sentinel_snapshot(mc, g, w, 0)), 1u);
  EXPECT_EQ(server.version(), 1u);
  EXPECT_EQ(server.iteration(), 1u);
}

TEST(ServingPublication, ScoreRejectsBadRequestsTyped) {
  TemporalGraph g = serving_graph();
  const ModelConfig mc = serving_training_config().model;
  ServingConfig sc;
  sc.max_batch = 16;
  ModelServer server(mc, sc, g);
  auto scorer = server.make_scorer();
  ScoreResponse resp;

  const auto code_of = [&](const ScoreRequest& req) {
    try {
      scorer->score(req, resp);
    } catch (const ServingError& e) {
      return e.code();
    }
    return static_cast<ServingErrc>(0);
  };

  // Before any install, a well-formed request has no snapshot to hit.
  ScoreRequest ok = request_over_events(g, 0, 4);
  EXPECT_EQ(code_of(ok), ServingErrc::kNoSnapshot);

  server.install_snapshot(
      sentinel_snapshot(mc, g, probe_weights(mc, g, 5), 0));

  ScoreRequest empty;
  EXPECT_EQ(code_of(empty), ServingErrc::kBadRequest);

  ScoreRequest skewed = request_over_events(g, 0, 4);
  skewed.ts.pop_back();
  EXPECT_EQ(code_of(skewed), ServingErrc::kBadRequest);

  ScoreRequest out_of_range = request_over_events(g, 0, 4);
  out_of_range.dst[2] = static_cast<NodeId>(g.num_nodes());
  EXPECT_EQ(code_of(out_of_range), ServingErrc::kBadRequest);

  ScoreRequest oversized = request_over_events(g, 0, 17);
  EXPECT_EQ(code_of(oversized), ServingErrc::kBadRequest);

  ScoreRequest wrong_copy = request_over_events(g, 0, 4, /*copy=*/1);
  EXPECT_EQ(code_of(wrong_copy), ServingErrc::kWrongCopy);

  EXPECT_EQ(code_of(ok), static_cast<ServingErrc>(0));
  EXPECT_EQ(resp.version, 1u);
  EXPECT_EQ(resp.iteration, 1u);
  EXPECT_EQ(resp.scores.size(), 4u);
}

TEST(ServingPublication, VersionsAdvanceAndResponsesTrackInstalls) {
  TemporalGraph g = serving_graph();
  const ModelConfig mc = serving_training_config().model;
  ModelServer server(mc, ServingConfig{}, g);
  const std::vector<float> w = probe_weights(mc, g, 5);
  auto scorer = server.make_scorer();
  const ScoreRequest req = request_over_events(g, 100, 140);
  ScoreResponse resp;

  server.install_snapshot(sentinel_snapshot(mc, g, w, 0));
  scorer->score(req, resp);
  EXPECT_EQ(resp.version, 1u);
  EXPECT_EQ(resp.iteration, 1u);
  const std::vector<float> before = resp.scores;

  server.install_snapshot(sentinel_snapshot(mc, g, w, 1));
  scorer->score(req, resp);
  EXPECT_EQ(resp.version, 2u);
  EXPECT_EQ(resp.iteration, 2u);
  // Different sentinel memory must actually change the scores —
  // otherwise the isolation stress below could not detect a torn read.
  EXPECT_NE(before, resp.scores);
  EXPECT_EQ(server.installs(), 2u);
  EXPECT_EQ(scorer->stats().requests, 2u);
  EXPECT_EQ(scorer->stats().rebinds, 2u);
}

// ---- snapshot isolation under concurrent installs ------------------------

// N reader threads score while a writer installs successive sentinel
// snapshots. Every response names the snapshot version/iteration it was
// computed from; its scores must be bitwise identical to the serially
// precomputed scores for that sentinel pattern — any torn read (scores
// from pattern A attributed to pattern B, or a mix) is a failure. TSan
// additionally checks the pin/publish protocol for data races.
TEST(ServingIsolation, ConcurrentInstallsNeverTearReads) {
  TemporalGraph g = serving_graph();
  const ModelConfig mc = serving_training_config().model;
  ServingConfig sc;
  sc.slots = 4;
  ModelServer server(mc, sc, g);
  const std::vector<float> w = probe_weights(mc, g, 5);

  constexpr std::size_t kPatterns = 4;
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kInstalls = 120;

  std::vector<std::shared_ptr<const ServingSnapshot>> snaps;
  for (std::size_t p = 0; p < kPatterns; ++p)
    snaps.push_back(sentinel_snapshot(mc, g, w, p));

  const std::vector<ScoreRequest> shapes = {
      request_over_events(g, 0, 40),
      request_over_events(g, 700, 716),
      request_over_events(g, 1200, 1260),
  };

  // Serial phase: the ground truth per (pattern, shape).
  std::vector<std::vector<std::vector<float>>> expected(kPatterns);
  {
    auto scorer = server.make_scorer();
    ScoreResponse resp;
    for (std::size_t p = 0; p < kPatterns; ++p) {
      server.install_snapshot(snaps[p]);
      for (const ScoreRequest& req : shapes) {
        scorer->score(req, resp);
        ASSERT_EQ(resp.iteration, p + 1);
        expected[p].push_back(resp.scores);
      }
    }
  }
  ASSERT_NE(expected[0][0], expected[1][0]);  // sentinels distinguishable

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto scorer = server.make_scorer();
      ScoreResponse resp;
      std::size_t s = r;
      while (!done.load(std::memory_order_acquire)) {
        const ScoreRequest& req = shapes[s++ % shapes.size()];
        scorer->score(req, resp);
        const std::size_t p = static_cast<std::size_t>(resp.iteration - 1);
        if (p >= kPatterns ||
            resp.scores != expected[p][(s - 1) % shapes.size()])
          mismatches.fetch_add(1, std::memory_order_relaxed);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t torn_drains = 0;
  for (std::size_t i = 0; i < kInstalls; ++i) {
    try {
      server.install_snapshot(snaps[i % kPatterns]);
    } catch (const ServingError& e) {
      ASSERT_EQ(e.code(), ServingErrc::kDrainTimeout);
      ++torn_drains;
    }
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(torn_drains, 0u);
  EXPECT_GT(served.load(), kReaders);  // readers actually overlapped writes
}

// ---- checkpoint → serve equivalence --------------------------------------

struct ServeEqCase {
  std::size_t i, j, k;
};

class CheckpointServeEquivalence
    : public ::testing::TestWithParam<ServeEqCase> {};

// Served scores must be bitwise equal to infer_into run inline against
// the same checkpoint: an independently constructed model (weights
// copied into flat storage, exactly the trainer's restore path) over an
// independently restored MemoryState, batched by the same builder
// contract. Covers every memory copy the checkpoint carries.
TEST_P(CheckpointServeEquivalence, ServedScoresMatchInlineInference) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = serving_graph();
  TrainingConfig cfg = serving_training_config();
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;
  cfg.recovery.checkpoint_dir =
      fresh_dir("eq_" + std::to_string(i) + std::to_string(j) +
                std::to_string(k));
  cfg.recovery.checkpoint_every = 3;
  (void)train_distributed(cfg, g, nullptr);

  auto snap = serving::load_latest_servable(cfg.recovery.checkpoint_dir);
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->states.size(), k);

  ModelServer server(cfg.model, ServingConfig{}, g);
  server.install_snapshot(snap);
  auto scorer = server.make_scorer();

  // Inline reference: the trainer's restore recipe.
  Rng rng(cfg.seed);
  TGNModel ref_model(cfg.model, g, nullptr, rng);
  ref_model.freeze_flat_storage();
  ASSERT_EQ(snap->weights.size(), ref_model.flat_values().size());
  std::copy(snap->weights.begin(), snap->weights.end(),
            ref_model.flat_values().begin());
  NeighborSampler ref_sampler(g, cfg.model.num_neighbors);
  MiniBatch ref_mb;
  MemorySlice ref_slice;
  TGNModel::StepResult ref_step;

  // Eval-range edges (the 70/15/15 split puts [1120, 1600) past
  // training), over every memory copy and several batch shapes.
  const std::size_t shapes[][2] = {{1120, 1160}, {1300, 1316}, {1500, 1556}};
  for (std::uint32_t copy = 0; copy < k; ++copy) {
    for (const auto& sh : shapes) {
      const ScoreRequest req = request_over_events(g, sh[0], sh[1], copy);
      ScoreResponse resp;
      scorer->score(req, resp);
      ASSERT_EQ(resp.iteration, snap->iteration);
      ASSERT_EQ(resp.scores.size(), req.size());

      serving::build_score_batch(ref_sampler, req, ref_mb);
      snap->states[copy].read_into(ref_mb.unique_nodes, ref_slice);
      ref_model.infer_into(ref_mb, ref_slice, nullptr, ref_step);
      for (std::size_t x = 0; x < req.size(); ++x)
        ASSERT_EQ(resp.scores[x], ref_step.pos_scores.data()[x])
            << "copy " << copy << " edge " << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CheckpointServeEquivalence,
                         ::testing::Values(ServeEqCase{1, 1, 1},
                                           ServeEqCase{2, 1, 1},
                                           ServeEqCase{1, 2, 1},
                                           ServeEqCase{1, 1, 2},
                                           ServeEqCase{2, 2, 1},
                                           ServeEqCase{1, 2, 2}));

// ---- socket front end ----------------------------------------------------

TEST(ScoreServerSocket, UnixRoundTripMatchesInProcessScoring) {
  TemporalGraph g = serving_graph();
  const ModelConfig mc = serving_training_config().model;
  ModelServer server(mc, ServingConfig{}, g);
  server.install_snapshot(
      sentinel_snapshot(mc, g, probe_weights(mc, g, 5), 2));

  ScoreServerConfig ssc;
  ssc.unix_path = fresh_socket("score");
  ssc.reader_threads = 2;
  ScoreServer front(server, ssc);

  const auto deadline =
      dist::deadline_after(std::chrono::milliseconds(10'000));
  ScoreClient client = ScoreClient::connect_unix(ssc.unix_path, deadline);

  auto local = server.make_scorer();
  ScoreResponse expected, resp;
  for (std::uint64_t q = 0; q < 8; ++q) {
    ScoreRequest req =
        request_over_events(g, 50 * q, 50 * q + 20 + q, 0, /*id=*/q + 10);
    local->score(req, expected);
    client.score(req, resp, deadline);
    EXPECT_EQ(resp.id, req.id);
    EXPECT_EQ(resp.version, expected.version);
    EXPECT_EQ(resp.iteration, expected.iteration);
    ASSERT_EQ(resp.scores, expected.scores) << "request " << q;
  }
  EXPECT_EQ(front.requests_served(), 8u);

  // A serving error crosses the wire typed; the connection closes, and
  // a fresh connection serves again.
  ScoreRequest bad = request_over_events(g, 0, 4, /*copy=*/3);
  try {
    client.score(bad, resp, deadline);
    FAIL() << "expected ServingError";
  } catch (const ServingError& e) {
    EXPECT_EQ(e.code(), ServingErrc::kWrongCopy);
  }
  ScoreClient again = ScoreClient::connect_unix(ssc.unix_path, deadline);
  ScoreRequest ok = request_over_events(g, 0, 4);
  again.score(ok, resp, deadline);
  EXPECT_EQ(resp.scores.size(), 4u);
  EXPECT_EQ(front.errors(), 1u);

  front.stop();
  EXPECT_FALSE(fs::exists(ssc.unix_path));  // sweep-clean teardown
}

TEST(ScoreServerSocket, TcpRoundTrip) {
  TemporalGraph g = serving_graph();
  const ModelConfig mc = serving_training_config().model;
  ModelServer server(mc, ServingConfig{}, g);
  server.install_snapshot(
      sentinel_snapshot(mc, g, probe_weights(mc, g, 5), 1));

  ScoreServerConfig ssc;  // empty unix_path → TCP, ephemeral port
  ssc.reader_threads = 1;
  ScoreServer front(server, ssc);
  ASSERT_NE(front.port(), 0);

  const auto deadline =
      dist::deadline_after(std::chrono::milliseconds(10'000));
  ScoreClient client =
      ScoreClient::connect_tcp("127.0.0.1", front.port(), deadline);

  auto local = server.make_scorer();
  ScoreRequest req = request_over_events(g, 400, 440, 0, 77);
  ScoreResponse expected, resp;
  local->score(req, expected);
  client.score(req, resp, deadline);
  EXPECT_EQ(resp.id, 77u);
  ASSERT_EQ(resp.scores, expected.scores);
}

TEST(ScoreServerSocket, PollerInstallsNewestCheckpoint) {
  TemporalGraph g = serving_graph();
  TrainingConfig cfg = serving_training_config();
  cfg.recovery.checkpoint_dir = fresh_dir("poll");
  cfg.recovery.checkpoint_every = 3;
  (void)train_distributed(cfg, g, nullptr);
  const std::vector<SnapshotRef> refs =
      list_snapshots(cfg.recovery.checkpoint_dir);
  ASSERT_FALSE(refs.empty());

  ServingConfig sc;
  sc.poll_ms = 5;
  ModelServer server(cfg.model, sc, g);
  EXPECT_EQ(server.version(), 0u);
  server.start_poller(cfg.recovery.checkpoint_dir);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.version() == 0 && std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.stop_poller();
  ASSERT_EQ(server.version(), 1u);
  EXPECT_EQ(server.iteration(), refs.front().iteration);

  // The published snapshot actually serves.
  auto scorer = server.make_scorer();
  ScoreResponse resp;
  scorer->score(request_over_events(g, 0, 8), resp);
  EXPECT_EQ(resp.iteration, refs.front().iteration);
}

}  // namespace
}  // namespace disttgl
