// The cross-orchestrator contract: the threaded system (daemon threads,
// prefetchers, allreduce) must produce results identical to the
// deterministic sequential reference for the same configuration — for
// every parallel strategy, pipeline mode, prefetch depth and buffer-pool
// size. The pipeline grid is what guarantees buffer recycling can never
// leak state between iterations: a stale byte in any recycled MiniBatch
// would diverge the weights bit-for-bit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>

#include "core/proc_trainer.hpp"
#include "core/recovery.hpp"
#include "core/threaded_trainer.hpp"
#include "core/trainer.hpp"
#include "datagen/generator.hpp"

namespace disttgl {
namespace {

TemporalGraph graph_for_equivalence() {
  datagen::SynthSpec spec;
  spec.num_src = 50;
  spec.num_dst = 25;
  spec.num_events = 1600;
  spec.edge_feat_dim = 4;
  spec.seed = 91;
  return datagen::generate(spec);
}

TrainingConfig config_for_equivalence() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 8;
  cfg.model.time_dim = 4;
  cfg.model.attn_dim = 8;
  cfg.model.emb_dim = 8;
  cfg.model.num_neighbors = 4;
  cfg.model.head_hidden = 8;
  cfg.local_batch = 56;  // 20 batches over the 1120-event train split
  cfg.epochs = 4;
  cfg.seed = 17;
  return cfg;
}

void expect_equivalent(const TrainingConfig& cfg, const TemporalGraph& g) {
  SequentialTrainer seq(cfg, g, nullptr);
  TrainResult seq_res = seq.train();

  ThreadedTrainer thr(cfg, g, nullptr);
  ThreadedTrainResult thr_res = thr.train();

  const std::vector<float> seq_w = seq.weights();
  ASSERT_EQ(seq_w.size(), thr_res.weights.size());
  for (std::size_t x = 0; x < seq_w.size(); ++x)
    ASSERT_EQ(seq_w[x], thr_res.weights[x]) << "weight " << x << " diverged";

  EXPECT_DOUBLE_EQ(seq_res.final_val, thr_res.final_val);
  EXPECT_DOUBLE_EQ(seq_res.final_test, thr_res.final_test);
  EXPECT_EQ(seq_res.iterations, thr_res.iterations);
}

struct EqCase {
  std::size_t i, j, k;
};

class OrchestratorEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(OrchestratorEquivalence, IdenticalWeightsAndMetrics) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;
  expect_equivalent(cfg, g);
}

INSTANTIATE_TEST_SUITE_P(Configs, OrchestratorEquivalence,
                         ::testing::Values(EqCase{1, 1, 1}, EqCase{2, 1, 1},
                                           EqCase{1, 2, 1}, EqCase{1, 1, 2},
                                           EqCase{2, 2, 1}, EqCase{1, 2, 2}));

// ---- pipeline grid: {i,j,k} × prefetch ahead × pool sizes ----------------

struct PipelineCase {
  std::size_t i, j, k;
  std::size_t ahead;
  std::size_t pool_slots;
  PipelineMode mode;
};

std::string pipeline_case_name(
    const ::testing::TestParamInfo<PipelineCase>& info) {
  const PipelineCase& c = info.param;
  std::string s = std::to_string(c.i) + "x" + std::to_string(c.j) + "x" +
                  std::to_string(c.k) + "_ahead" + std::to_string(c.ahead) +
                  "_slots" + std::to_string(c.pool_slots) +
                  (c.mode == PipelineMode::kPooled ? "_pooled" : "_legacy");
  return s;
}

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, IdenticalWeightsAcrossPipelineShapes) {
  const PipelineCase c = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;  // the grid is wide; keep each cell cheap
  cfg.parallel.i = c.i;
  cfg.parallel.j = c.j;
  cfg.parallel.k = c.k;
  cfg.pipeline = c.mode;
  cfg.prefetch_ahead = c.ahead;
  cfg.batch_pool_slots = c.pool_slots;
  expect_equivalent(cfg, g);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineEquivalence,
    ::testing::Values(
        // Pooled mode: every (ahead, pool) shape must recycle cleanly.
        PipelineCase{2, 2, 1, 1, 1, PipelineMode::kPooled},
        PipelineCase{2, 2, 1, 2, 1, PipelineMode::kPooled},
        PipelineCase{2, 2, 1, 4, 1, PipelineMode::kPooled},
        PipelineCase{2, 2, 1, 1, 4, PipelineMode::kPooled},
        PipelineCase{2, 2, 1, 2, 4, PipelineMode::kPooled},
        PipelineCase{2, 2, 1, 4, 4, PipelineMode::kPooled},
        PipelineCase{1, 2, 2, 1, 1, PipelineMode::kPooled},
        PipelineCase{1, 2, 2, 2, 2, PipelineMode::kPooled},
        PipelineCase{1, 2, 2, 4, 4, PipelineMode::kPooled},
        PipelineCase{2, 1, 2, 2, 1, PipelineMode::kPooled},
        // Legacy mode: the allocate-per-batch baseline stays equivalent.
        PipelineCase{2, 2, 1, 2, 0, PipelineMode::kLegacy},
        PipelineCase{1, 2, 2, 1, 0, PipelineMode::kLegacy}),
    pipeline_case_name);

// A shared worker pool smaller than the trainer count must still
// deliver identical results (jobs from all prefetchers interleave).
TEST(PipelineEquivalence, SharedWorkerPoolSmallerThanTrainerCount) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.prefetch_workers = 1;
  expect_equivalent(cfg, g);
}

// ---- gradient-sync layer knobs ------------------------------------------

// The reduce-scatter chunk size is an ownership schedule, not a math
// change: every element is still reduced in fixed rank order, so any
// chunking must stay bit-identical to the sequential reference.
TEST(GradientSyncEquivalence, CommChunkSizeDoesNotChangeWeights) {
  TemporalGraph g = graph_for_equivalence();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{37},
                                  std::size_t{1} << 20}) {
    TrainingConfig cfg = config_for_equivalence();
    cfg.epochs = 2;
    cfg.parallel = {.i = 2, .j = 2, .k = 1};
    cfg.comm_chunk_elems = chunk;
    expect_equivalent(cfg, g);
  }
}

// With clipping inert, the fused allreduce→step path must reproduce the
// default path bit for bit: the mean gradients are identical, and each
// chunk owner's Adam state evolved from exactly the same inputs.
TEST(GradientSyncEquivalence, FusedStepBitExactWhenClipInert) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.grad_clip = 1e9f;  // never triggers

  ThreadedTrainer unfused(cfg, g, nullptr);
  ThreadedTrainResult base = unfused.train();

  cfg.comm_fused_step = true;
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{64}}) {
    cfg.comm_chunk_elems = chunk;
    ThreadedTrainer fused(cfg, g, nullptr);
    ThreadedTrainResult res = fused.train();
    ASSERT_EQ(base.weights.size(), res.weights.size());
    for (std::size_t x = 0; x < base.weights.size(); ++x)
      ASSERT_EQ(base.weights[x], res.weights[x])
          << "weight " << x << " diverged (chunk=" << chunk << ")";
    EXPECT_DOUBLE_EQ(base.final_val, res.final_val);
  }
}

// With real clipping the fused path's global norm sums per-chunk
// partials (chunk order) instead of per-parameter partials, so bits may
// differ — but training must stay healthy and land close.
TEST(GradientSyncEquivalence, FusedStepCloseWithDefaultClipping) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};

  ThreadedTrainer unfused(cfg, g, nullptr);
  ThreadedTrainResult base = unfused.train();

  cfg.comm_fused_step = true;
  ThreadedTrainer fused(cfg, g, nullptr);
  ThreadedTrainResult res = fused.train();
  ASSERT_EQ(base.weights.size(), res.weights.size());
  for (std::size_t x = 0; x < res.weights.size(); ++x)
    ASSERT_TRUE(std::isfinite(res.weights[x])) << "weight " << x;
  EXPECT_NEAR(base.final_val, res.final_val, 0.05);
}

// ---- cross-fabric grid: thread fabric vs process fabric ------------------

// The process fabric runs the *same* training loop over POSIX shm +
// UNIX sockets, so for every {i,j,k} × chunk × fused cell it must land
// bit-identically where the thread fabric lands: final weights,
// metrics, rank-order-summed loss totals, and the FNV digest of every
// memory copy (the only way to compare memory states across address
// spaces). Fork safety: every trainer joins its threads and pools
// before train_distributed returns, so the process is single-threaded
// again whenever the proc fabric forks.
void expect_cross_fabric_equivalent(TrainingConfig cfg, const TemporalGraph& g,
                                    FabricKind kind = FabricKind::kProc) {
  cfg.fabric.kind = kind;
  const ThreadedTrainResult proc = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kThread;
  const ThreadedTrainResult thr = train_distributed(cfg, g, nullptr);

  ASSERT_EQ(thr.weights.size(), proc.weights.size());
  for (std::size_t x = 0; x < thr.weights.size(); ++x)
    ASSERT_EQ(thr.weights[x], proc.weights[x])
        << "weight " << x << " diverged across fabrics";
  EXPECT_DOUBLE_EQ(thr.final_val, proc.final_val);
  EXPECT_DOUBLE_EQ(thr.final_test, proc.final_test);
  EXPECT_EQ(thr.iterations, proc.iterations);
  EXPECT_EQ(thr.raw_events, proc.raw_events);
  EXPECT_EQ(thr.loss_sum, proc.loss_sum) << "rank-ordered loss sum diverged";
  EXPECT_EQ(thr.loss_count, proc.loss_count);
  ASSERT_EQ(thr.memory_digests.size(), proc.memory_digests.size());
  for (std::size_t m = 0; m < thr.memory_digests.size(); ++m)
    EXPECT_EQ(thr.memory_digests[m], proc.memory_digests[m])
        << "memory copy " << m << " diverged across fabrics";
}

class ProcFabricEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(ProcFabricEquivalence, BitIdenticalAcrossAddressSpaces) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;  // each cell pays a fork + per-child model build
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;
  expect_cross_fabric_equivalent(cfg, g);
}

INSTANTIATE_TEST_SUITE_P(Configs, ProcFabricEquivalence,
                         ::testing::Values(EqCase{1, 1, 1}, EqCase{2, 1, 1},
                                           EqCase{1, 2, 1}, EqCase{1, 1, 2},
                                           EqCase{2, 2, 1}, EqCase{1, 2, 2}));

TEST(ProcFabricEquivalence, ChunkedCollectiveStaysBitIdentical) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.comm_chunk_elems = 64;
  expect_cross_fabric_equivalent(cfg, g);
}

TEST(ProcFabricEquivalence, FusedStepStaysBitIdentical) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.comm_fused_step = true;
  expect_cross_fabric_equivalent(cfg, g);
}

TEST(ProcFabricEquivalence, ZeroSpinBudgetCompletesAndMatches) {
  // The hoisted spin→park threshold at its degenerate setting: every
  // fabric wait (collective barrier, slot protocol, shm handshake)
  // parks immediately, end to end through a real training run.
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  cfg.fabric.spin_polls = 0;
  expect_cross_fabric_equivalent(cfg, g);
}

// ---- cross-fabric grid: thread fabric vs TCP (multi-machine) fabric ------

// The TCP fabric splits the world into `hosts` simulated machines —
// shm staging intra-host, a framed-TCP leader ring inter-host — and the
// hierarchical reduction is REQUIRED to stay a single rank-order double
// fold (hier_comm.hpp), so every cell must land bit-identically where
// the thread fabric lands. The grid covers ring sizes 2..4, one rank
// per host (pure-TCP reduction, empty intra fold), and an unbalanced
// split (world % hosts != 0), all over real loopback sockets.
struct TcpCase {
  std::size_t i, j, k, hosts;
};

std::string tcp_case_name(const ::testing::TestParamInfo<TcpCase>& info) {
  const TcpCase& c = info.param;
  return std::to_string(c.i) + "x" + std::to_string(c.j) + "x" +
         std::to_string(c.k) + "_hosts" + std::to_string(c.hosts);
}

class TcpFabricEquivalence : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpFabricEquivalence, BitIdenticalAcrossSimulatedHosts) {
  const TcpCase c = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel.i = c.i;
  cfg.parallel.j = c.j;
  cfg.parallel.k = c.k;
  cfg.fabric.tcp.hosts = c.hosts;
  expect_cross_fabric_equivalent(cfg, g, FabricKind::kTcp);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TcpFabricEquivalence,
    ::testing::Values(TcpCase{2, 1, 1, 2},   // 2 ranks, 1 per host
                      TcpCase{1, 2, 1, 2},   // version parallelism split
                      TcpCase{1, 1, 2, 2},   // memory groups split
                      TcpCase{2, 2, 1, 2},   // 2 ranks per host
                      TcpCase{1, 2, 2, 2},   // mixed j×k over 2 hosts
                      TcpCase{2, 2, 1, 4},   // ring of 4, 1 rank each
                      TcpCase{1, 2, 2, 3}),  // unbalanced spans 2/1/1
    tcp_case_name);

TEST(TcpFabricEquivalence, SingleHostDegeneratesToProcPath) {
  // hosts=1: no ring at all — HierComm must still match bit for bit
  // through its local-only reduction.
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.fabric.tcp.hosts = 1;
  expect_cross_fabric_equivalent(cfg, g, FabricKind::kTcp);
}

TEST(TcpFabricEquivalence, ChunkedCollectiveStaysBitIdentical) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.comm_chunk_elems = 64;
  cfg.fabric.tcp.hosts = 2;
  expect_cross_fabric_equivalent(cfg, g, FabricKind::kTcp);
}

TEST(TcpFabricEquivalence, FusedStepStaysBitIdentical) {
  // The fused path is the hard case: chunk norms and the step itself
  // are re-derived per rank from the broadcast means, and the allgather
  // ships each host's stepped chunks around the ring.
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.comm_fused_step = true;
  cfg.fabric.tcp.hosts = 2;
  expect_cross_fabric_equivalent(cfg, g, FabricKind::kTcp);
}

TEST(TcpFabricEquivalence, NagleOnStaysBitIdentical) {
  // nodelay=false only changes packet coalescing, never bytes or order.
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 1, .k = 1};
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.tcp.nodelay = false;
  expect_cross_fabric_equivalent(cfg, g, FabricKind::kTcp);
}

// ---- reconnect tier: transient ring fault healed without restart ---------

// The reconnect contract (hier_comm.hpp ReconnectPolicy): a transient
// leader-connection reset mid-run is healed by a ring re-dial plus a
// leader-phase retry — no group restart, no snapshot. train_distributed
// has NO restart capability at all, so mere completion already proves
// the reconnect tier absorbed the fault; the bitwise check against the
// thread fabric proves that re-running a leader phase from its last
// completed barrier epoch is exact, not just close.
//
// The thread-fabric baseline runs with chaos/retry disarmed (they are
// TCP-only knobs and validate() rightly rejects them elsewhere), so the
// comparison is chaos-and-reconnect vs a pristine run.
void expect_reconnect_equivalent(TrainingConfig cfg, const TemporalGraph& g) {
  cfg.fabric.kind = FabricKind::kTcp;
  const ThreadedTrainResult tcp = train_distributed(cfg, g, nullptr);

  cfg.fabric.kind = FabricKind::kThread;
  cfg.fabric.chaos = dist::ChaosConfig{};
  cfg.fabric.retry = dist::RetryConfig{};
  const ThreadedTrainResult thr = train_distributed(cfg, g, nullptr);

  ASSERT_EQ(thr.weights.size(), tcp.weights.size());
  for (std::size_t x = 0; x < thr.weights.size(); ++x)
    ASSERT_EQ(thr.weights[x], tcp.weights[x])
        << "weight " << x << " diverged after ring reconnect";
  EXPECT_DOUBLE_EQ(thr.final_val, tcp.final_val);
  EXPECT_DOUBLE_EQ(thr.final_test, tcp.final_test);
  EXPECT_EQ(thr.loss_sum, tcp.loss_sum);
  EXPECT_EQ(thr.loss_count, tcp.loss_count);
  ASSERT_EQ(thr.memory_digests.size(), tcp.memory_digests.size());
  for (std::size_t m = 0; m < thr.memory_digests.size(); ++m)
    EXPECT_EQ(thr.memory_digests[m], tcp.memory_digests[m])
        << "memory copy " << m << " diverged after ring reconnect";
}

TEST(ReconnectEquivalence, InjectedResetHealsWithoutRestartBitIdentical) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.chaos.enabled = true;
  cfg.fabric.chaos.reset_at_byte = 100'000;  // mid-run, well past setup
  cfg.fabric.retry.max_attempts = 3;
  cfg.fabric.retry.backoff_ms = 1;
  expect_reconnect_equivalent(cfg, g);
}

TEST(ReconnectEquivalence, InjectedResetHealsUnderFusedStepBitIdentical) {
  // Same contract through the fused allreduce→step path, whose
  // allgather phase ships stepped parameter blocks around the ring —
  // the retried phase must re-ship identical bytes.
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.grad_clip = 1e9f;  // keep the fused path bit-exact (see above)
  cfg.comm_fused_step = true;
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.chaos.enabled = true;
  cfg.fabric.chaos.reset_at_byte = 100'000;
  cfg.fabric.retry.max_attempts = 3;
  cfg.fabric.retry.backoff_ms = 1;
  expect_reconnect_equivalent(cfg, g);
}

// ---- elastic recovery: deterministic resume ------------------------------

// The recovery contract on top of the equivalence contract: a run
// killed at iteration n and restarted from its latest snapshot must
// land bitwise where the uninterrupted run lands — weights, rank-order
// loss totals, and the digest of every memory copy — for every {i,j,k}
// cell on BOTH fabrics. Snapshot cadence 3 with the kill at iteration 5
// makes most cells resume mid version-chain (j > 1), exercising the
// held-slice restore path, not just clean boundaries.
void expect_resume_equivalent(TrainingConfig cfg, const TemporalGraph& g,
                              const std::string& tag) {
  static std::atomic<int> counter{0};
  const ThreadedTrainResult base = train_distributed(cfg, g, nullptr);

  cfg.recovery.checkpoint_dir =
      "/tmp/disttgl-ckpt/eq_" + tag + "." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1));
  std::filesystem::create_directories(cfg.recovery.checkpoint_dir);
  cfg.recovery.checkpoint_every = 3;
  cfg.recovery.max_restarts = 2;
  cfg.recovery.backoff_ms = 1;
  cfg.fabric.fault.kill_armed = true;
  cfg.fabric.fault.kill_rank = cfg.parallel.total_trainers() - 1;
  cfg.fabric.fault.kill_iteration = 5;

  const SupervisedResult sup = train_supervised(cfg, g);
  EXPECT_EQ(sup.restarts, 1u);

  ASSERT_EQ(base.weights.size(), sup.result.weights.size());
  for (std::size_t x = 0; x < base.weights.size(); ++x)
    ASSERT_EQ(base.weights[x], sup.result.weights[x])
        << "weight " << x << " diverged after resume";
  EXPECT_EQ(base.loss_sum, sup.result.loss_sum);
  EXPECT_EQ(base.loss_count, sup.result.loss_count);
  EXPECT_DOUBLE_EQ(base.final_val, sup.result.final_val);
  EXPECT_DOUBLE_EQ(base.final_test, sup.result.final_test);
  ASSERT_EQ(base.memory_digests.size(), sup.result.memory_digests.size());
  for (std::size_t m = 0; m < base.memory_digests.size(); ++m)
    EXPECT_EQ(base.memory_digests[m], sup.result.memory_digests[m])
        << "memory copy " << m << " diverged after resume";
}

class ResumeEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(ResumeEquivalence, KilledAndResumedMatchesUninterruptedThreadFabric) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;
  expect_resume_equivalent(cfg, g, "thr");
}

TEST_P(ResumeEquivalence, KilledAndResumedMatchesUninterruptedProcFabric) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;
  cfg.fabric.kind = FabricKind::kProc;
  cfg.fabric.timeout_ms = 2'000;  // survivors of the SIGKILL fail fast
  expect_resume_equivalent(cfg, g, "proc");
}

INSTANTIATE_TEST_SUITE_P(Grid, ResumeEquivalence,
                         ::testing::Values(EqCase{1, 1, 1}, EqCase{2, 1, 1},
                                           EqCase{1, 2, 1}, EqCase{1, 1, 2},
                                           EqCase{2, 2, 1}, EqCase{1, 2, 2}));

TEST(ResumeEquivalence, KilledAndResumedMatchesUninterruptedTcpFabric) {
  // The elastic-recovery contract carries over the TCP fabric unchanged:
  // a rank SIGKILLed mid-iteration takes its host's ring connection with
  // it, the supervisor reaps the group, and the restarted run (resuming
  // from the latest atomic snapshot over a *fresh* ring) must land
  // bitwise where the uninterrupted run lands.
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 2, .j = 2, .k = 1};
  cfg.fabric.kind = FabricKind::kTcp;
  cfg.fabric.tcp.hosts = 2;
  cfg.fabric.timeout_ms = 2'000;  // survivors of the SIGKILL fail fast
  expect_resume_equivalent(cfg, g, "tcp");
}

TEST(ThreadedTrainer, ReportsThroughputAndAttribution) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  cfg.parallel = {.i = 1, .j = 2, .k = 1};
  ThreadedTrainer trainer(cfg, g, nullptr);
  auto res = trainer.train();
  EXPECT_GT(res.wall_seconds, 0.0);
  EXPECT_GT(res.events_per_second, 0.0);
  EXPECT_GT(res.traversals_per_second, 0.0);
  // Traversals are chronological passes: epochs × training events,
  // derived from the config. raw_events is *measured* — the positives
  // every executed work item actually trained, versions included. In a
  // correct schedule the two coincide (epoch parallelism spreads the j
  // variants inside the same epoch budget, it does not multiply work),
  // so measured == derived is itself a schedule-execution check; a
  // dropped or duplicated work item would break it.
  EXPECT_EQ(res.traversals, cfg.epochs * trainer.split().num_train());
  EXPECT_EQ(res.raw_events, res.traversals);
  EXPECT_GT(res.batch_build_seconds, 0.0);
  EXPECT_GT(res.compute_seconds, 0.0);
  // Rank 0 logs one (wait, compute) pair per iteration.
  EXPECT_EQ(res.rank0_timings.size(), res.iterations);
  EXPECT_GE(res.rank0_timings.total_batch_gen(), 0.0);
  EXPECT_GT(res.rank0_timings.total_compute(), 0.0);
}

}  // namespace
}  // namespace disttgl
