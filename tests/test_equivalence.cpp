// The cross-orchestrator contract: the threaded system (daemon threads,
// prefetchers, allreduce) must produce results identical to the
// deterministic sequential reference for the same configuration.
#include <gtest/gtest.h>

#include "core/threaded_trainer.hpp"
#include "core/trainer.hpp"
#include "datagen/generator.hpp"

namespace disttgl {
namespace {

TemporalGraph graph_for_equivalence() {
  datagen::SynthSpec spec;
  spec.num_src = 50;
  spec.num_dst = 25;
  spec.num_events = 1600;
  spec.edge_feat_dim = 4;
  spec.seed = 91;
  return datagen::generate(spec);
}

TrainingConfig config_for_equivalence() {
  TrainingConfig cfg;
  cfg.model.mem_dim = 8;
  cfg.model.time_dim = 4;
  cfg.model.attn_dim = 8;
  cfg.model.emb_dim = 8;
  cfg.model.num_neighbors = 4;
  cfg.model.head_hidden = 8;
  cfg.local_batch = 56;  // 20 batches over the 1120-event train split
  cfg.epochs = 4;
  cfg.seed = 17;
  return cfg;
}

struct EqCase {
  std::size_t i, j, k;
};

class OrchestratorEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(OrchestratorEquivalence, IdenticalWeightsAndMetrics) {
  const auto [i, j, k] = GetParam();
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.parallel.i = i;
  cfg.parallel.j = j;
  cfg.parallel.k = k;

  SequentialTrainer seq(cfg, g, nullptr);
  TrainResult seq_res = seq.train();

  ThreadedTrainer thr(cfg, g, nullptr);
  ThreadedTrainResult thr_res = thr.train();

  const std::vector<float> seq_w = seq.weights();
  ASSERT_EQ(seq_w.size(), thr_res.weights.size());
  for (std::size_t x = 0; x < seq_w.size(); ++x)
    ASSERT_EQ(seq_w[x], thr_res.weights[x]) << "weight " << x << " diverged";

  EXPECT_DOUBLE_EQ(seq_res.final_val, thr_res.final_val);
  EXPECT_DOUBLE_EQ(seq_res.final_test, thr_res.final_test);
  EXPECT_EQ(seq_res.iterations, thr_res.iterations);
}

INSTANTIATE_TEST_SUITE_P(Configs, OrchestratorEquivalence,
                         ::testing::Values(EqCase{1, 1, 1}, EqCase{2, 1, 1},
                                           EqCase{1, 2, 1}, EqCase{1, 1, 2},
                                           EqCase{2, 2, 1}, EqCase{1, 2, 2}));

TEST(ThreadedTrainer, ReportsThroughput) {
  TemporalGraph g = graph_for_equivalence();
  TrainingConfig cfg = config_for_equivalence();
  cfg.epochs = 2;
  ThreadedTrainer trainer(cfg, g, nullptr);
  auto res = trainer.train();
  EXPECT_GT(res.wall_seconds, 0.0);
  EXPECT_GT(res.events_per_second, 0.0);
}

}  // namespace
}  // namespace disttgl
