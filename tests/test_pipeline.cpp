// Prefetcher: ordering, bounded queue, exhaustion, teardown mid-stream.
#include <gtest/gtest.h>

#include <thread>

#include "datagen/generator.hpp"
#include "pipeline/prefetcher.hpp"

namespace disttgl {
namespace {

struct Fixture {
  TemporalGraph graph;
  NeighborSampler sampler;
  NegativeSampler negatives;
  MiniBatchBuilder builder;

  Fixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 30;
          spec.num_dst = 15;
          spec.num_events = 600;
          spec.seed = 3;
          return datagen::generate(spec);
        }()),
        sampler(graph, 4),
        negatives(graph, 4, 9),
        builder(graph, sampler, negatives, 1) {}

  std::vector<Prefetcher::Request> requests(std::size_t count,
                                            std::size_t batch = 50) {
    std::vector<Prefetcher::Request> out;
    for (std::size_t b = 0; b < count; ++b) {
      Prefetcher::Request r;
      r.batch_idx = b;
      r.begin = b * batch;
      r.end = (b + 1) * batch;
      r.neg_groups = {b % 4};
      out.push_back(r);
    }
    return out;
  }
};

TEST(Prefetcher, DeliversInOrder) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(8), 2);
  for (std::size_t b = 0; b < 8; ++b) {
    auto mb = pf.next();
    ASSERT_TRUE(mb.has_value());
    EXPECT_EQ(mb->batch_idx, b);
    EXPECT_EQ(mb->events.front(), b * 50);
  }
  EXPECT_FALSE(pf.next().has_value());
}

TEST(Prefetcher, MatchesDirectBuild) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(4), 3);
  for (std::size_t b = 0; b < 4; ++b) {
    auto mb = pf.next();
    ASSERT_TRUE(mb.has_value());
    MiniBatch direct = fx.builder.build(b, b * 50, (b + 1) * 50,
                                        std::size_t{b % 4});
    EXPECT_EQ(mb->unique_nodes, direct.unique_nodes);
    EXPECT_EQ(mb->neg_dst, direct.neg_dst);
  }
}

TEST(Prefetcher, SlowConsumerStillGetsEverything) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(6), 1);  // tight bound
  std::size_t seen = 0;
  while (auto mb = pf.next()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(mb->batch_idx, seen);
    ++seen;
  }
  EXPECT_EQ(seen, 6u);
}

TEST(Prefetcher, DestructorMidStreamDoesNotHang) {
  Fixture fx;
  auto pf = std::make_unique<Prefetcher>(fx.builder, fx.requests(10), 2);
  auto first = pf->next();
  ASSERT_TRUE(first.has_value());
  pf.reset();  // must join cleanly with work outstanding
  SUCCEED();
}

TEST(Prefetcher, EmptyRequestListExhaustsImmediately) {
  Fixture fx;
  Prefetcher pf(fx.builder, {}, 2);
  EXPECT_FALSE(pf.next().has_value());
}

}  // namespace
}  // namespace disttgl
