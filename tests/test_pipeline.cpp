// Prefetcher: ordering, bounded in-flight window, exhaustion, teardown
// mid-stream, pooled-mode buffer recycling, shared-worker fan-out,
// randomized consumer stress, and error propagation.
#include <gtest/gtest.h>

#include <thread>

#include "datagen/generator.hpp"
#include "pipeline/prefetcher.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace disttgl {
namespace {

struct Fixture {
  TemporalGraph graph;
  NeighborSampler sampler;
  NegativeSampler negatives;
  MiniBatchBuilder builder;

  Fixture()
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 30;
          spec.num_dst = 15;
          spec.num_events = 600;
          spec.seed = 3;
          return datagen::generate(spec);
        }()),
        sampler(graph, 4),
        negatives(graph, 4, 9),
        builder(graph, sampler, negatives, 1) {}

  std::vector<Prefetcher::Request> requests(std::size_t count,
                                            std::size_t batch = 50) {
    std::vector<Prefetcher::Request> out;
    for (std::size_t b = 0; b < count; ++b) {
      Prefetcher::Request r;
      r.batch_idx = b;
      r.begin = b * batch;
      r.end = (b + 1) * batch;
      r.neg_groups = {b % 4};
      out.push_back(r);
    }
    return out;
  }
};

TEST(Prefetcher, DeliversInOrder) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(8), 2);
  for (std::size_t b = 0; b < 8; ++b) {
    auto mb = pf.next();
    ASSERT_TRUE(mb.has_value());
    EXPECT_EQ(mb->batch_idx, b);
    EXPECT_EQ(mb->events.front(), b * 50);
  }
  EXPECT_FALSE(pf.next().has_value());
}

TEST(Prefetcher, MatchesDirectBuild) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(4), 3);
  for (std::size_t b = 0; b < 4; ++b) {
    auto mb = pf.next();
    ASSERT_TRUE(mb.has_value());
    MiniBatch direct = fx.builder.build(b, b * 50, (b + 1) * 50,
                                        std::size_t{b % 4});
    EXPECT_EQ(mb->unique_nodes, direct.unique_nodes);
    EXPECT_EQ(mb->neg_dst, direct.neg_dst);
  }
}

TEST(Prefetcher, SlowConsumerStillGetsEverything) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(6), 1);  // tight bound
  std::size_t seen = 0;
  while (auto mb = pf.next()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(mb->batch_idx, seen);
    ++seen;
  }
  EXPECT_EQ(seen, 6u);
}

TEST(Prefetcher, DestructorMidStreamDoesNotHang) {
  Fixture fx;
  auto pf = std::make_unique<Prefetcher>(fx.builder, fx.requests(10), 2);
  auto first = pf->next();
  ASSERT_TRUE(first.has_value());
  pf.reset();  // must join cleanly with work outstanding
  SUCCEED();
}

TEST(Prefetcher, EmptyRequestListExhaustsImmediately) {
  Fixture fx;
  Prefetcher pf(fx.builder, {}, 2);
  EXPECT_FALSE(pf.next().has_value());
}

TEST(Prefetcher, ReportsBuildSeconds) {
  Fixture fx;
  Prefetcher pf(fx.builder, fx.requests(5), 2);
  while (pf.next().has_value()) {
  }
  EXPECT_GT(pf.build_seconds(), 0.0);
}

// ---- pooled mode ---------------------------------------------------------

TEST(PrefetcherPooled, SharedWorkersAndPoolDeliverInOrder) {
  Fixture fx;
  ThreadPool workers(3);
  MiniBatchPool pool(2);
  {
    Prefetcher pf(fx.builder, fx.requests(10), 4, &workers, &pool);
    for (std::size_t b = 0; b < 10; ++b) {
      PooledBatch mb = pf.next();
      ASSERT_TRUE(mb.has_value());
      EXPECT_EQ(mb->batch_idx, b);
      MiniBatch direct = fx.builder.build(b, b * 50, (b + 1) * 50,
                                          std::size_t{b % 4});
      EXPECT_EQ(mb->unique_nodes, direct.unique_nodes);
      EXPECT_EQ(mb->neg_dst, direct.neg_dst);
    }
    EXPECT_FALSE(pf.next().has_value());
  }
  EXPECT_EQ(pool.outstanding(), 0u) << "every checkout must be returned";
  // ahead=4 in flight + 1 held by the consumer bounds the population.
  EXPECT_LE(pool.created(), 5u);
}

TEST(PrefetcherPooled, ManyPrefetchersShareOneWorkerPool) {
  Fixture fx;
  ThreadPool workers(2);
  MiniBatchPool pool_a(1), pool_b(1);
  Prefetcher pa(fx.builder, fx.requests(6), 2, &workers, &pool_a);
  Prefetcher pb(fx.builder, fx.requests(6), 2, &workers, &pool_b);
  for (std::size_t b = 0; b < 6; ++b) {
    PooledBatch x = pa.next();
    PooledBatch y = pb.next();
    ASSERT_TRUE(x.has_value());
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(x->batch_idx, b);
    EXPECT_EQ(y->batch_idx, b);
    EXPECT_EQ(x->unique_nodes, y->unique_nodes);
  }
}

TEST(PrefetcherPooled, StressRandomizedConsumerBalancesPool) {
  Fixture fx;
  ThreadPool workers(4);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (std::size_t ahead : {1u, 2u, 5u}) {
      MiniBatchPool pool(1);
      Rng rng(seed);
      {
        Prefetcher pf(fx.builder, fx.requests(12), ahead, &workers, &pool);
        PooledBatch held;  // trainer-style: hold one batch across pops
        for (std::size_t b = 0; b < 12; ++b) {
          if (rng.bernoulli(0.4)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng.uniform_int(800)));
          }
          held = pf.next();
          ASSERT_TRUE(held.has_value());
          ASSERT_EQ(held->batch_idx, b) << "in-order delivery";
        }
        EXPECT_FALSE(pf.next().has_value());
      }
      EXPECT_EQ(pool.outstanding(), 0u)
          << "seed=" << seed << " ahead=" << ahead;
    }
  }
}

TEST(PrefetcherPooled, EarlyDestructionMidStreamReturnsEverything) {
  Fixture fx;
  ThreadPool workers(3);
  MiniBatchPool pool(2);
  for (std::size_t pops : {0u, 1u, 3u}) {
    {
      Prefetcher pf(fx.builder, fx.requests(10), 3, &workers, &pool);
      PooledBatch held;
      for (std::size_t b = 0; b < pops; ++b) {
        held = pf.next();
        ASSERT_TRUE(held.has_value());
      }
      // Prefetcher destroyed with requests outstanding and (for pops>0)
      // a batch still checked out by the consumer.
    }
    EXPECT_EQ(pool.outstanding(), 0u) << "pops=" << pops;
  }
}

TEST(PrefetcherPooled, BuildErrorPropagatesToConsumer) {
  Fixture fx;
  ThreadPool workers(2);
  MiniBatchPool pool(1);
  // Request 1 is out of range: its construction job throws and next()
  // must rethrow instead of hanging.
  auto reqs = fx.requests(2);
  reqs[1].begin = 10'000;
  reqs[1].end = 10'050;
  {
    Prefetcher pf(fx.builder, std::move(reqs), 2, &workers, &pool);
    EXPECT_THROW(
        {
          while (pf.next().has_value()) {
          }
        },
        std::logic_error);
    // The stream is poisoned: later pops keep rethrowing instead of
    // deadlocking on the never-filled ring slot.
    EXPECT_THROW(pf.next(), std::logic_error);
    EXPECT_THROW(pf.next(), std::logic_error);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

}  // namespace
}  // namespace disttgl
