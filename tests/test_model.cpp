// TGNModel behaviour: shapes, memory-write semantics (COMB, staleness
// accounting, leak avoidance), static-memory wiring, and a tiny
// overfitting check proving the full forward/backward stack learns.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/tgn_model.hpp"
#include "datagen/generator.hpp"
#include "nn/optim.hpp"

namespace disttgl {
namespace {

struct Fixture {
  TemporalGraph graph;
  ModelConfig cfg;
  NeighborSampler sampler;
  NegativeSampler negatives;
  MiniBatchBuilder builder;
  MemoryState state;
  Rng rng;
  TGNModel model;

  explicit Fixture(std::size_t static_dim = 0, const Matrix* static_mem = nullptr)
      : graph([] {
          datagen::SynthSpec spec;
          spec.num_src = 40;
          spec.num_dst = 20;
          spec.num_events = 1500;
          spec.edge_feat_dim = 4;
          spec.seed = 21;
          return datagen::generate(spec);
        }()),
        cfg([&] {
          ModelConfig c;
          c.mem_dim = 8;
          c.time_dim = 4;
          c.attn_dim = 8;
          c.num_heads = 2;
          c.emb_dim = 8;
          c.num_neighbors = 4;
          c.static_dim = static_dim;
          c.head_hidden = 8;
          return c;
        }()),
        sampler(graph, cfg.num_neighbors),
        negatives(graph, 4, 17),
        builder(graph, sampler, negatives, 1),
        state(graph.num_nodes(), cfg.mem_dim, 2 * cfg.mem_dim + 4),
        rng(33),
        model(cfg, graph, static_mem, rng) {}
};

TEST(Model, StepResultShapes) {
  Fixture fx;
  MiniBatch mb = fx.builder.build(0, 0, 50, std::size_t{0});
  MemorySlice slice = fx.state.read(mb.unique_nodes);
  MemoryWrite write;
  auto res = fx.model.train_step(mb, slice, 0, &write);
  EXPECT_EQ(res.pos_scores.rows(), 50u);
  EXPECT_EQ(res.pos_scores.cols(), 1u);
  EXPECT_EQ(res.neg_scores.rows(), 50u);
  EXPECT_EQ(res.neg_scores.cols(), 1u);
  EXPECT_GT(res.loss, 0.0f);
}

TEST(Model, WriteCoversExactlyPositiveRoots) {
  Fixture fx;
  MiniBatch mb = fx.builder.build(0, 0, 50, std::size_t{0});
  MemorySlice slice = fx.state.read(mb.unique_nodes);
  MemoryWrite write;
  fx.model.train_step(mb, slice, 0, &write);

  std::set<NodeId> expected;
  for (std::size_t e = 0; e < mb.num_pos(); ++e) {
    expected.insert(mb.src[e]);
    expected.insert(mb.dst[e]);
  }
  std::set<NodeId> written(write.nodes.begin(), write.nodes.end());
  EXPECT_EQ(written, expected) << "negatives and plain neighbors never written";
}

TEST(Model, CombKeepsMostRecentMail) {
  Fixture fx;
  // Find a source with ≥2 events in the first 80 to exercise COMB.
  MiniBatch mb = fx.builder.build(0, 0, 80, std::size_t{0});
  MemorySlice slice = fx.state.read(mb.unique_nodes);
  MemoryWrite write;
  auto res = fx.model.train_step(mb, slice, 0, &write);
  EXPECT_EQ(res.diag.mails_generated, 160u);  // 2 per event
  EXPECT_EQ(res.diag.mails_kept, write.nodes.size());
  EXPECT_LT(res.diag.mails_kept, res.diag.mails_generated)
      << "batched COMB must collapse some mails on this dataset";
  // Each written node's mail timestamp = its LAST event time in batch.
  for (std::size_t s = 0; s < write.nodes.size(); ++s) {
    float last_ts = -1.0f;
    for (std::size_t e = 0; e < mb.num_pos(); ++e)
      if (mb.src[e] == write.nodes[s] || mb.dst[e] == write.nodes[s])
        last_ts = std::max(last_ts, mb.ts[e]);
    EXPECT_FLOAT_EQ(write.mail_ts[s], last_ts);
  }
}

TEST(Model, MemoryUpdateUsesCachedMailsNotCurrentBatch) {
  // Leak avoidance: with a fresh (zero) memory and empty mailbox, the
  // first batch's embeddings must not depend on its own events' mails —
  // no GRU rows should be touched.
  Fixture fx;
  MiniBatch mb = fx.builder.build(0, 0, 30, std::size_t{0});
  MemorySlice slice = fx.state.read(mb.unique_nodes);
  for (auto flag : slice.has_mail) EXPECT_EQ(flag, 0);
  MemoryWrite write;
  fx.model.train_step(mb, slice, 0, &write);
  // Post-UPDT memory written back equals the (zero) input memory since no
  // mails existed — only the mailbox gains entries.
  for (std::size_t i = 0; i < write.mem.size(); ++i)
    EXPECT_FLOAT_EQ(write.mem.data()[i], 0.0f);
  for (std::size_t s = 0; s < write.nodes.size(); ++s)
    EXPECT_GT(write.mail_ts[s], 0.0f);
}

TEST(Model, SecondBatchAppliesGru) {
  Fixture fx;
  MiniBatch mb1 = fx.builder.build(0, 0, 30, std::size_t{0});
  MemorySlice s1 = fx.state.read(mb1.unique_nodes);
  MemoryWrite w1;
  fx.model.train_step(mb1, s1, 0, &w1);
  fx.state.write(w1);

  MiniBatch mb2 = fx.builder.build(1, 30, 60, std::size_t{0});
  MemorySlice s2 = fx.state.read(mb2.unique_nodes);
  MemoryWrite w2;
  fx.model.train_step(mb2, s2, 0, &w2);
  // Nodes seen in batch 1 now carry mails; their updated memory differs
  // from zero.
  bool any_nonzero = false;
  for (std::size_t i = 0; i < w2.mem.size(); ++i)
    if (w2.mem.data()[i] != 0.0f) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
}

TEST(Model, VersionsShareInputsButDifferInNegatives) {
  Fixture fx;
  std::vector<std::size_t> groups = {0, 1};
  MiniBatch mb = fx.builder.build(0, 0, 40, groups);
  MemorySlice slice = fx.state.read(mb.unique_nodes);
  MemoryWrite write;
  auto r0 = fx.model.train_step(mb, slice, 0, &write);
  auto r1 = fx.model.train_step(mb, slice, 1, nullptr);
  // Same positives (same weights): identical positive scores.
  for (std::size_t e = 0; e < mb.num_pos(); ++e)
    EXPECT_FLOAT_EQ(r0.pos_scores(e, 0), r1.pos_scores(e, 0));
  // Negative scores differ (different negative destinations).
  bool differ = false;
  for (std::size_t i = 0; i < r0.neg_scores.size(); ++i)
    if (r0.neg_scores.data()[i] != r1.neg_scores.data()[i]) differ = true;
  EXPECT_TRUE(differ);
}

TEST(Model, StaticMemoryChangesOutputs) {
  Matrix static_mem(60, 6);
  Rng srng(5);
  for (std::size_t i = 0; i < static_mem.size(); ++i)
    static_mem.data()[i] = static_cast<float>(srng.normal());
  Fixture with(6, &static_mem);
  Fixture without(0, nullptr);
  MiniBatch mb = with.builder.build(0, 0, 30, std::size_t{0});
  MemorySlice slice = with.state.read(mb.unique_nodes);
  MemoryWrite w;
  auto res_with = with.model.train_step(mb, slice, 0, &w);
  auto res_without = without.model.train_step(mb, slice, 0, &w);
  bool differ = false;
  for (std::size_t e = 0; e < mb.num_pos(); ++e)
    if (res_with.pos_scores(e, 0) != res_without.pos_scores(e, 0)) differ = true;
  EXPECT_TRUE(differ);
}

TEST(Model, InferDoesNotAccumulateGradients) {
  Fixture fx;
  MiniBatch mb = fx.builder.build(0, 0, 30, std::size_t{0});
  MemorySlice slice = fx.state.read(mb.unique_nodes);
  fx.model.zero_grad();
  MemoryWrite w;
  fx.model.infer(mb, slice, &w);
  for (nn::Parameter* p : fx.model.parameters())
    EXPECT_FLOAT_EQ(p->grad.abs_max(), 0.0f);
}

TEST(Model, OverfitsTinyStream) {
  // Repeatedly training on the same two batches must drive loss down —
  // end-to-end sanity of the full backward stack.
  Fixture fx;
  nn::Adam opt(fx.model.parameters(), nn::AdamOptions{.lr = 1e-2f});
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 250; ++step) {
    fx.state.reset();
    float loss = 0.0f;
    for (std::size_t b = 0; b < 2; ++b) {
      MiniBatch mb = fx.builder.build(b, b * 40, (b + 1) * 40, std::size_t{0});
      MemorySlice slice = fx.state.read(mb.unique_nodes);
      MemoryWrite w;
      fx.model.zero_grad();
      auto res = fx.model.train_step(mb, slice, 0, &w);
      fx.state.write(w);
      nn::clip_grad_norm(fx.model.parameters(), 10.0f);
      opt.step();
      loss += res.loss;
    }
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.6f);
}

TEST(Model, CombMeanAveragesMails) {
  // A node with multiple events in the batch gets the average of its
  // mails under kMean, vs the last one under kMostRecent.
  Fixture recent;
  Fixture mean;
  mean.cfg.comb = CombPolicy::kMean;
  Rng r2(33);
  TGNModel mean_model(mean.cfg, mean.graph, nullptr, r2);

  MiniBatch mb = recent.builder.build(0, 0, 80, std::size_t{0});
  MemorySlice slice = recent.state.read(mb.unique_nodes);
  MemoryWrite w_recent, w_mean;
  recent.model.train_step(mb, slice, 0, &w_recent);
  mean_model.train_step(mb, slice, 0, &w_mean);

  ASSERT_EQ(w_recent.nodes, w_mean.nodes);
  // Count events per written node; single-event nodes must agree
  // exactly, multi-event nodes generally differ.
  bool multi_differs = false;
  for (std::size_t s = 0; s < w_recent.nodes.size(); ++s) {
    std::size_t events = 0;
    for (std::size_t e = 0; e < mb.num_pos(); ++e)
      if (mb.src[e] == w_recent.nodes[s] || mb.dst[e] == w_recent.nodes[s])
        ++events;
    float diff = 0.0f;
    for (std::size_t c = 0; c < w_recent.mail.cols(); ++c)
      diff += std::abs(w_recent.mail(s, c) - w_mean.mail(s, c));
    if (events == 1) {
      EXPECT_LT(diff, 1e-5f) << "single-event node mails must match";
    } else if (diff > 1e-4f) {
      multi_differs = true;
    }
    EXPECT_FLOAT_EQ(w_recent.mail_ts[s], w_mean.mail_ts[s]);
  }
  EXPECT_TRUE(multi_differs) << "mean and most-recent must differ somewhere";
}

TEST(Model, RawNodeFeaturesEnterRepresentation) {
  datagen::SynthSpec spec;
  spec.num_src = 40;
  spec.num_dst = 20;
  spec.num_events = 800;
  spec.node_feat_dim = 6;
  spec.seed = 44;
  TemporalGraph g = datagen::generate(spec);
  ASSERT_TRUE(g.has_node_features());
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.attn_dim = 8;
  cfg.emb_dim = 8;
  cfg.num_neighbors = 4;
  cfg.head_hidden = 8;
  Rng rng(5);
  TGNModel model(cfg, g, nullptr, rng);

  NeighborSampler sampler(g, 4);
  NegativeSampler negs(g, 1, 3);
  MiniBatchBuilder builder(g, sampler, negs, 1);
  MiniBatch mb = builder.build(0, 0, 40, std::size_t{0});
  MemoryState state(g.num_nodes(), cfg.mem_dim, 2 * cfg.mem_dim);
  MemorySlice slice = state.read(mb.unique_nodes);
  MemoryWrite w;
  model.zero_grad();
  auto res = model.train_step(mb, slice, 0, &w);
  EXPECT_TRUE(std::isfinite(res.loss));
  // With zero memory and no mails, embeddings still differ across roots
  // because the raw node features distinguish them.
  bool differ = false;
  for (std::size_t e = 1; e < mb.num_pos(); ++e)
    if (res.pos_scores(e, 0) != res.pos_scores(0, 0)) differ = true;
  EXPECT_TRUE(differ);
  // Gradients flow through the attention despite all-zero memory.
  float gmax = 0.0f;
  for (nn::Parameter* p : model.parameters())
    gmax = std::max(gmax, p->grad.abs_max());
  EXPECT_GT(gmax, 0.0f);
}

TEST(Model, StaticOnlyVariantSkipsGru) {
  Matrix static_mem(60, 6, 0.5f);
  Fixture fx(6, &static_mem);
  Rng rng(3);
  ModelConfig cfg = fx.cfg;
  cfg.dynamic_memory = false;
  TGNModel static_model(cfg, fx.graph, &static_mem, rng);

  // Process two consecutive batches; with the GRU disabled the written
  // memory stays zero even after mails exist.
  MiniBatch mb1 = fx.builder.build(0, 0, 30, std::size_t{0});
  MemorySlice s1 = fx.state.read(mb1.unique_nodes);
  MemoryWrite w1;
  static_model.train_step(mb1, s1, 0, &w1);
  fx.state.write(w1);
  MiniBatch mb2 = fx.builder.build(1, 30, 60, std::size_t{0});
  MemorySlice s2 = fx.state.read(mb2.unique_nodes);
  MemoryWrite w2;
  static_model.train_step(mb2, s2, 0, &w2);
  for (std::size_t i = 0; i < w2.mem.size(); ++i)
    EXPECT_FLOAT_EQ(w2.mem.data()[i], 0.0f);
}

TEST(Model, ClassificationTaskProducesLogits) {
  datagen::SynthSpec spec;
  spec.num_src = 50;
  spec.num_dst = 0;
  spec.num_events = 800;
  spec.edge_feat_dim = 4;
  spec.num_classes = 6;
  spec.labels_per_edge = 2;
  spec.seed = 9;
  TemporalGraph g = datagen::generate(spec);
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.attn_dim = 8;
  cfg.emb_dim = 8;
  cfg.num_neighbors = 4;
  cfg.head_hidden = 8;
  Rng rng(3);
  TGNModel model(cfg, g, nullptr, rng);
  EXPECT_EQ(model.task(), TGNModel::Task::kEdgeClassification);

  NeighborSampler sampler(g, 4);
  NegativeSampler negs(g, 1, 3);
  MiniBatchBuilder builder(g, sampler, negs, 0);
  MiniBatch mb = builder.build(0, 0, 40, std::span<const std::size_t>{});
  MemoryState state(g.num_nodes(), cfg.mem_dim, 2 * cfg.mem_dim + 4);
  MemorySlice slice = state.read(mb.unique_nodes);
  MemoryWrite w;
  auto res = model.train_step(mb, slice, 0, &w);
  EXPECT_EQ(res.logits.rows(), 40u);
  EXPECT_EQ(res.logits.cols(), 6u);
  EXPECT_GT(res.loss, 0.0f);
}

}  // namespace
}  // namespace disttgl
