// Planner heuristics (§3.2.4) and the captured-dependency metric (Fig 8).
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

namespace disttgl {
namespace {

TemporalGraph test_graph() {
  datagen::SynthSpec spec = datagen::wikipedia_like(0.3);
  return datagen::generate(spec);
}

TEST(CapturedFraction, DecreasesWithBatchSize) {
  TemporalGraph g = test_graph();
  const std::size_t n = g.num_events();
  double prev = 1.1;
  for (std::size_t bs : {10u, 40u, 160u, 640u}) {
    const double f = captured_fraction(g, 0, n, bs);
    EXPECT_LE(f, prev + 1e-9) << "capture must not increase with batch size";
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(CapturedFraction, BatchOfOneCapturesEverything) {
  TemporalGraph g = test_graph();
  EXPECT_DOUBLE_EQ(captured_fraction(g, 0, 100, 1), 1.0);
}

TEST(Planner, ProducesValidGrid) {
  TemporalGraph g = test_graph();
  EventSplit split = chronological_split(g);
  PlannerInputs in;
  in.machines = 2;
  in.gpus_per_machine = 8;
  in.gpu_saturation_batch = 300;
  Plan plan = plan_training(g, split, in);
  EXPECT_EQ(plan.parallel.total_trainers(), 16u);
  EXPECT_GE(plan.parallel.k, in.machines);
  EXPECT_GT(plan.local_batch, 0u);
  EXPECT_EQ(plan.global_batch, plan.local_batch * plan.parallel.i);
}

TEST(Planner, PrefersMemoryOverEpochParallelism) {
  TemporalGraph g = test_graph();
  EventSplit split = chronological_split(g);
  PlannerInputs in;
  in.machines = 1;
  in.gpus_per_machine = 8;
  in.mem_copies_per_machine = 8;  // plenty of host memory
  Plan plan = plan_training(g, split, in);
  // With memory to spare, all residual parallelism should be memory
  // parallelism (the paper's 1×1×8 recommendation): no epoch parallelism.
  EXPECT_EQ(plan.parallel.j, 1u);
  EXPECT_EQ(plan.parallel.k * plan.parallel.i, 8u);
}

TEST(Planner, LimitedHostMemoryForcesEpochParallelism) {
  TemporalGraph g = test_graph();
  EventSplit split = chronological_split(g);
  PlannerInputs in;
  in.machines = 1;
  in.gpus_per_machine = 8;
  in.mem_copies_per_machine = 2;  // only two copies fit
  Plan plan = plan_training(g, split, in);
  EXPECT_LE(plan.parallel.k, 2u);
  EXPECT_EQ(plan.parallel.total_trainers(), 8u);
  EXPECT_GT(plan.parallel.j, 1u);
}

TEST(Planner, CaptureThresholdLimitsBatch) {
  TemporalGraph g = test_graph();
  EventSplit split = chronological_split(g);
  PlannerInputs strict;
  strict.capture_threshold = 0.98;
  PlannerInputs loose;
  loose.capture_threshold = 0.3;
  const Plan p_strict = plan_training(g, split, strict);
  const Plan p_loose = plan_training(g, split, loose);
  EXPECT_LE(p_strict.global_batch, p_loose.global_batch);
  // Stricter thresholds never pick a worse-capturing batch size.
  EXPECT_GE(p_strict.capture_fraction, p_loose.capture_fraction);
}

TEST(Planner, MoreMachinesMeansMoreCopies) {
  TemporalGraph g = test_graph();
  EventSplit split = chronological_split(g);
  PlannerInputs in;
  in.machines = 4;
  in.gpus_per_machine = 8;
  Plan plan = plan_training(g, split, in);
  EXPECT_GE(plan.parallel.k, 4u);
  EXPECT_EQ(plan.parallel.total_trainers(), 32u);
}

}  // namespace
}  // namespace disttgl
