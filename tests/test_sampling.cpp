// Neighbor sampler, negative sampler, chronological batching and
// mini-batch construction (including the multi-variant negative layout
// that epoch parallelism depends on).
#include <gtest/gtest.h>

#include <set>

#include "datagen/generator.hpp"
#include "sampling/batching.hpp"
#include "sampling/minibatch.hpp"

namespace disttgl {
namespace {

TemporalGraph chain_graph() {
  // Node 0 interacts with 2,3,4,2 at times 1..4 (bipartite 2+3).
  std::vector<TemporalEdge> events = {
      {0, 2, 1.0f, 0}, {0, 3, 2.0f, 0}, {0, 4, 3.0f, 0}, {0, 2, 4.0f, 0},
      {1, 3, 5.0f, 0},
  };
  return TemporalGraph::from_events("chain", 5, std::move(events), 2);
}

TEST(NeighborSampler, MostRecentFirstStrictlyBefore) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 3);
  std::vector<NeighborSample> out(3);
  // Query node 0 at t=3.5: events at 3.0, 2.0, 1.0 in that order.
  std::size_t n = sampler.sample(0, 3.5f, out);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(out[0].neighbor, 4u);
  EXPECT_FLOAT_EQ(out[0].ts, 3.0f);
  EXPECT_EQ(out[1].neighbor, 3u);
  EXPECT_EQ(out[2].neighbor, 2u);
  // At exactly t=3.0 the event at 3.0 is excluded (strictly before).
  n = sampler.sample(0, 3.0f, out);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(out[0].neighbor, 3u);
}

TEST(NeighborSampler, CapsAtK) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 2);
  std::vector<NeighborSample> out(2);
  const std::size_t n = sampler.sample(0, 100.0f, out);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out[0].neighbor, 2u);  // most recent (t=4)
  EXPECT_EQ(out[1].neighbor, 4u);
}

TEST(NeighborSampler, NoHistoryReturnsZero) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 2);
  std::vector<NeighborSample> out(2);
  EXPECT_EQ(sampler.sample(1, 1.0f, out), 0u);
  EXPECT_EQ(sampler.sample(0, 0.5f, out), 0u);
}

TEST(NegativeSampler, DrawsFromDstPartition) {
  TemporalGraph g = chain_graph();
  NegativeSampler negs(g, 4, 11);
  auto sample = negs.sample(0, 0, 500);
  for (NodeId v : sample) {
    EXPECT_GE(v, 2u);
    EXPECT_LT(v, 5u);
  }
}

TEST(NegativeSampler, DeterministicPerGroupAndBatch) {
  TemporalGraph g = chain_graph();
  NegativeSampler negs(g, 4, 11);
  EXPECT_EQ(negs.sample(1, 5, 20), negs.sample(1, 5, 20));
  EXPECT_NE(negs.sample(1, 5, 20), negs.sample(2, 5, 20));
  EXPECT_NE(negs.sample(1, 5, 20), negs.sample(1, 6, 20));
}

TEST(Batching, ChronologicalSplitFractions) {
  TemporalGraph g = chain_graph();
  EventSplit s = chronological_split(g, 0.6, 0.2);
  EXPECT_EQ(s.num_train(), 3u);
  EXPECT_EQ(s.num_val(), 1u);
  EXPECT_EQ(s.num_test(), 1u);
}

TEST(Batching, MakeBatchesKeepsTail) {
  auto batches = make_batches(0, 10, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[2].begin, 8u);
  EXPECT_EQ(batches[2].end, 10u);
}

TEST(MiniBatch, RootLayoutAndRanges) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 2);
  NegativeSampler negs(g, 4, 11);
  MiniBatchBuilder builder(g, sampler, negs, /*num_neg=*/2);
  std::vector<std::size_t> groups = {0, 1, 2};  // three variants
  MiniBatch mb = builder.build(0, 0, 3, groups);

  EXPECT_EQ(mb.num_pos(), 3u);
  EXPECT_EQ(mb.neg_variants, 3u);
  EXPECT_EQ(mb.num_neg, 2u);
  // Roots: 3 src + 3 dst + 3 variants × 3 pos × 2 neg = 24.
  EXPECT_EQ(mb.num_roots(), 24u);
  EXPECT_EQ(mb.neg_begin(0), 6u);
  EXPECT_EQ(mb.neg_begin(2), 18u);
  // Src roots are the event sources at the event timestamps.
  EXPECT_EQ(mb.roots.nodes[0], 0u);
  EXPECT_FLOAT_EQ(mb.roots.ts[0], 1.0f);
  EXPECT_EQ(mb.roots.nodes[mb.dst_begin() + 1], 3u);
}

TEST(MiniBatch, VariantsUseDifferentNegatives) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 2);
  NegativeSampler negs(g, 4, 11);
  MiniBatchBuilder builder(g, sampler, negs, 2);
  std::vector<std::size_t> groups = {0, 1};
  MiniBatch mb = builder.build(0, 0, 3, groups);
  // Variant blocks in neg_dst differ somewhere.
  const std::size_t per = 3 * 2;
  bool differ = false;
  for (std::size_t i = 0; i < per; ++i)
    if (mb.neg_dst[i] != mb.neg_dst[per + i]) differ = true;
  EXPECT_TRUE(differ);
}

TEST(MiniBatch, UniqueNodesCoverRootsAndNeighbors) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 2);
  NegativeSampler negs(g, 4, 11);
  MiniBatchBuilder builder(g, sampler, negs, 1);
  MiniBatch mb = builder.build(1, 3, 5, std::size_t{0});

  std::set<NodeId> uniq(mb.unique_nodes.begin(), mb.unique_nodes.end());
  EXPECT_EQ(uniq.size(), mb.unique_nodes.size()) << "no duplicates";
  for (std::size_t r = 0; r < mb.num_roots(); ++r) {
    EXPECT_EQ(mb.unique_nodes[mb.root_to_unique[r]], mb.roots.nodes[r]);
    for (std::size_t k = 0; k < mb.roots.valid[r]; ++k) {
      EXPECT_EQ(mb.unique_nodes[mb.neigh_to_unique[r * mb.roots.k + k]],
                mb.roots.neigh_node[r * mb.roots.k + k]);
    }
  }
}

TEST(MiniBatch, NeighborWindowsRespectEventTime) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 3);
  NegativeSampler negs(g, 4, 11);
  MiniBatchBuilder builder(g, sampler, negs, 1);
  // Batch of the last two events (t=4, t=5).
  MiniBatch mb = builder.build(0, 3, 5, std::size_t{0});
  // First src root = node 0 at t=4: neighbors strictly before 4 → 3.
  EXPECT_EQ(mb.roots.valid[0], 3u);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_GT(mb.roots.neigh_dt[k], 0.0f);
}

TEST(MiniBatch, ClassificationModeNoNegatives) {
  TemporalGraph g = chain_graph();
  NeighborSampler sampler(g, 2);
  NegativeSampler negs(g, 1, 11);
  MiniBatchBuilder builder(g, sampler, negs, 0);
  MiniBatch mb = builder.build(0, 0, 3, std::span<const std::size_t>{});
  EXPECT_EQ(mb.neg_variants, 0u);
  EXPECT_EQ(mb.num_roots(), 6u);  // src + dst only
}

TEST(MiniBatch, DeterministicConstruction) {
  datagen::SynthSpec spec;
  spec.num_src = 40;
  spec.num_dst = 20;
  spec.num_events = 1000;
  spec.seed = 5;
  TemporalGraph g = datagen::generate(spec);
  NeighborSampler sampler(g, 5);
  NegativeSampler negs(g, 4, 11);
  MiniBatchBuilder builder(g, sampler, negs, 1);
  MiniBatch a = builder.build(3, 100, 200, std::size_t{2});
  MiniBatch b = builder.build(3, 100, 200, std::size_t{2});
  EXPECT_EQ(a.unique_nodes, b.unique_nodes);
  EXPECT_EQ(a.neg_dst, b.neg_dst);
  EXPECT_EQ(a.roots.valid, b.roots.valid);
}

}  // namespace
}  // namespace disttgl
