// Unit tests for src/util: RNG determinism/distributions, spin barrier,
// thread pool, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "util/barrier.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace disttgl {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.uniform_int(17), 17u);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.uniform_int(8)];
  for (int h : hits) EXPECT_GT(h, 700);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PowerlawSkewsTowardSmallIndices) {
  Rng rng(19);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.powerlaw_int(1000, 1.2);
    ASSERT_LT(v, 1000u);
    if (v < 100) ++low;
    if (v >= 900) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Rng, PowerlawZeroAlphaIsUniform) {
  Rng rng(23);
  int low = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.powerlaw_int(100, 0.0) < 50) ++low;
  EXPECT_NEAR(low, 10000, 600);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<float> w = {1.0f, 0.0f, 3.0f};
  int c0 = 0, c1 = 0, c2 = 0;
  for (int i = 0; i < 20000; ++i) {
    switch (rng.categorical(w)) {
      case 0: ++c0; break;
      case 1: ++c1; break;
      default: ++c2; break;
    }
  }
  EXPECT_EQ(c1, 0);
  EXPECT_NEAR(static_cast<double>(c2) / c0, 3.0, 0.3);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(
      { DT_CHECK_MSG(false, "custom " << 42); }, std::logic_error);
  try {
    DT_CHECK_EQ(1, 2);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("lhs=1"), std::string::npos);
  }
}

TEST(SpinBarrier, SynchronizesThreads) {
  const std::size_t n = 4;
  SpinBarrier barrier(n);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (std::size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      BarrierToken token(barrier);
      for (int round = 0; round < 50; ++round) {
        phase_counter.fetch_add(1);
        (void)token.wait();
        // Between the two waits every thread must observe the full count.
        if (phase_counter.load() != static_cast<int>(n) * (round + 1))
          mismatch.store(true);
        (void)token.wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&] { count.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(WallTimer, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
}

TEST(ScopedAccumulator, AddsOnDestruction) {
  double acc = 0.0;
  {
    ScopedAccumulator s(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(acc, 0.005);
}

}  // namespace
}  // namespace disttgl
