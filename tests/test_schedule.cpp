// Property tests for the i×j×k schedule builder — these pin the paper's
// algorithmic claims: same captured dependencies as single-GPU for epoch/
// memory parallelism, chronological sweeps per memory copy, 1/n iteration
// reduction, serialized memory-op rounds.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/schedule.hpp"

namespace disttgl {
namespace {

struct Config {
  std::size_t i, j, k, B, E;
};

class ScheduleProperties : public ::testing::TestWithParam<Config> {
 protected:
  Schedule build() {
    const auto [i, j, k, B, E] = GetParam();
    ParallelConfig par;
    par.i = i;
    par.j = j;
    par.k = k;
    return build_schedule(par, B, E, /*neg_groups=*/10);
  }
};

TEST_P(ScheduleProperties, SizesAndIterationCounts) {
  const auto [i, j, k, B, E] = GetParam();
  Schedule s = build();
  EXPECT_EQ(s.trainers.size(), i * j * k);
  EXPECT_EQ(s.groups.size(), k);
  EXPECT_EQ(s.rounds_per_group, E * B / (j * k));
  EXPECT_EQ(s.total_iterations, s.rounds_per_group + j - 1);
}

TEST_P(ScheduleProperties, ItemsSortedOnePerIteration) {
  Schedule s = build();
  for (const auto& ts : s.trainers) {
    for (std::size_t x = 1; x < ts.items.size(); ++x)
      EXPECT_EQ(ts.items[x].iteration, ts.items[x - 1].iteration + 1)
          << "trainer busy every iteration between first and last item";
  }
}

TEST_P(ScheduleProperties, VersionZeroAlignsWithSubgroupRounds) {
  const auto [i, j, k, B, E] = GetParam();
  (void)i; (void)k; (void)B; (void)E;
  Schedule s = build();
  for (const auto& ts : s.trainers) {
    for (const auto& item : ts.items) {
      if (item.version == 0) {
        EXPECT_TRUE(item.memory_ops);
        EXPECT_EQ(item.iteration % j, ts.subgroup);
      } else {
        EXPECT_FALSE(item.memory_ops);
      }
    }
  }
}

TEST_P(ScheduleProperties, EveryBatchChunkTrainedExactlyETimes) {
  const auto [i, j, k, B, E] = GetParam();
  Schedule s = build();
  // counts[chunk][batch] = number of versions trained.
  std::vector<std::vector<std::size_t>> counts(i, std::vector<std::size_t>(B, 0));
  for (const auto& ts : s.trainers)
    for (const auto& item : ts.items) ++counts[ts.chunk][item.global_batch];
  for (std::size_t c = 0; c < i; ++c)
    for (std::size_t b = 0; b < B; ++b)
      EXPECT_EQ(counts[c][b], E) << "chunk " << c << " batch " << b;
}

TEST_P(ScheduleProperties, GroupsSweepChronologicallyWithResetAtWrap) {
  const auto [i, j, k, B, E] = GetParam();
  (void)i; (void)j; (void)E;
  Schedule s = build();
  for (std::size_t m = 0; m < k; ++m) {
    const GroupSchedule& g = s.groups[m];
    EXPECT_EQ(g.reset_before_round[0], 1);
    for (std::size_t r = 1; r < g.round_to_batch.size(); ++r) {
      EXPECT_EQ(g.round_to_batch[r], (g.round_to_batch[r - 1] + 1) % B)
          << "memory copies process batches in chronological cyclic order";
      EXPECT_EQ(g.reset_before_round[r], g.round_to_batch[r] == 0 ? 1 : 0);
    }
  }
}

TEST_P(ScheduleProperties, MemoryOpsSerializePerRound) {
  const auto [i, j, k, B, E] = GetParam();
  (void)B; (void)E;
  Schedule s = build();
  // ops[group][round] = set of group_ranks doing memory ops.
  std::map<std::pair<std::size_t, std::size_t>, std::set<std::size_t>> ops;
  for (const auto& ts : s.trainers)
    for (const auto& item : ts.items)
      if (item.memory_ops)
        ops[{ts.mem_copy, item.iteration}].insert(ts.group_rank);
  for (const auto& [key, ranks] : ops) {
    const std::size_t round = key.second;
    EXPECT_EQ(ranks.size(), i) << "exactly the i chunks of one subgroup";
    const std::size_t sub = round % j;
    for (std::size_t rank : ranks) EXPECT_EQ(rank / i, sub);
  }
  // Every round of every group has its ops.
  for (std::size_t m = 0; m < k; ++m)
    for (std::size_t r = 0; r < s.rounds_per_group; ++r)
      EXPECT_TRUE(ops.count({m, r})) << "group " << m << " round " << r;
}

TEST_P(ScheduleProperties, VersionsOfOneBatchUseDistinctNegGroups) {
  const auto [i, j, k, B, E] = GetParam();
  (void)i; (void)k; (void)B; (void)E;
  if (j > 10) GTEST_SKIP();  // fewer groups than versions
  Schedule s = build();
  for (const auto& ts : s.trainers) {
    for (std::size_t x = 0; x + 1 < ts.items.size(); ++x) {
      if (ts.items[x].global_batch == ts.items[x + 1].global_batch &&
          ts.items[x].cycle == ts.items[x + 1].cycle) {
        EXPECT_NE(ts.items[x].neg_group, ts.items[x + 1].neg_group);
      }
    }
  }
}

TEST_P(ScheduleProperties, MemoryParallelGroupsAreStaggered) {
  const auto [i, j, k, B, E] = GetParam();
  (void)i; (void)j; (void)E;
  if (k == 1) GTEST_SKIP();
  Schedule s = build();
  std::set<std::size_t> starts;
  for (std::size_t m = 0; m < k; ++m)
    starts.insert(s.groups[m].round_to_batch[0]);
  // Different groups start at different time segments (Fig 7c).
  EXPECT_EQ(starts.size(), std::min(k, B));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ScheduleProperties,
    ::testing::Values(Config{1, 1, 1, 12, 4}, Config{1, 2, 1, 12, 4},
                      Config{1, 4, 1, 12, 4}, Config{1, 1, 4, 12, 4},
                      Config{1, 2, 2, 12, 4}, Config{2, 1, 1, 12, 4},
                      Config{2, 2, 2, 16, 8}, Config{4, 1, 2, 8, 4},
                      Config{1, 8, 1, 16, 8}, Config{1, 1, 8, 16, 8}));

TEST(Schedule, SingleGpuMatchesVanillaTraining) {
  ParallelConfig par;  // 1×1×1
  Schedule s = build_schedule(par, 10, 3, 10);
  EXPECT_EQ(s.total_iterations, 30u);
  const auto& items = s.trainers[0].items;
  ASSERT_EQ(items.size(), 30u);
  for (std::size_t t = 0; t < 30; ++t) {
    EXPECT_EQ(items[t].iteration, t);
    EXPECT_EQ(items[t].global_batch, t % 10);
    EXPECT_TRUE(items[t].memory_ops);
  }
}

TEST(Schedule, RejectsDegenerateInputs) {
  ParallelConfig par;
  EXPECT_THROW(build_schedule(par, 0, 1, 10), std::logic_error);
  EXPECT_THROW(build_schedule(par, 10, 0, 10), std::logic_error);
  par.j = 64;
  par.k = 64;
  // E*B too small to give each group a round.
  EXPECT_THROW(build_schedule(par, 4, 1, 10), std::logic_error);
}

}  // namespace
}  // namespace disttgl
