// Unit + property tests for the tensor substrate. GEMM kernels are
// cross-checked against a naive triple loop over randomized shapes
// (TEST_P sweeps), masked softmax against invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace disttgl {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal());
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(p, j);
      c(i, j) = acc;
    }
  return c;
}

TEST(Matrix, BasicAccessors) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 6.0f);
  m(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(m(0, 0), 9.0f);
}

TEST(Matrix, OutOfBoundsThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  a += b;
  EXPECT_FLOAT_EQ(a(0, 1), 7.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(0, 1), 2.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a(0, 2), 6.0f);
  a.hadamard(b);
  EXPECT_FLOAT_EQ(a(0, 0), 8.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a(0, 0), 10.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::logic_error);
  EXPECT_THROW(a.hadamard(b), std::logic_error);
}

TEST(Matrix, GatherScatterRows) {
  Matrix m(4, 2, {0, 1, 10, 11, 20, 21, 30, 31});
  std::vector<std::size_t> idx = {3, 0};
  Matrix g = m.gather_rows(idx);
  EXPECT_FLOAT_EQ(g(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(g(1, 1), 1.0f);
  Matrix s(2, 2, {-1, -2, -3, -4});
  m.scatter_rows(idx, s);
  EXPECT_FLOAT_EQ(m(3, 0), -1.0f);
  EXPECT_FLOAT_EQ(m(0, 1), -4.0f);
}

TEST(Matrix, ConcatAndSlice) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 1, {9, 8});
  Matrix c = Matrix::concat_cols(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c(0, 2), 9.0f);
  Matrix s = c.slice_cols(1, 3);
  EXPECT_FLOAT_EQ(s(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(s(1, 1), 8.0f);
  Matrix r = c.slice_rows(1, 2);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_FLOAT_EQ(r(0, 0), 3.0f);
}

TEST(Matrix, Reshape) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  m.reshape(3, 2);
  EXPECT_FLOAT_EQ(m(2, 1), 6.0f);
  EXPECT_THROW(m.reshape(4, 2), std::logic_error);
}

TEST(Matrix, Norms) {
  Matrix m(1, 3, {3, 4, 0});
  EXPECT_FLOAT_EQ(m.squared_norm(), 25.0f);
  EXPECT_FLOAT_EQ(m.abs_max(), 4.0f);
}

TEST(Matrix, ExternalBinding) {
  // bind_external re-bases a matrix onto caller storage (the
  // Module::freeze_flat_storage primitive): contents move, reads and
  // writes alias the buffer, element count is pinned.
  std::vector<float> storage(6, -1.0f);
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FALSE(m.is_view());
  m.bind_external(storage.data());
  EXPECT_TRUE(m.is_view());
  EXPECT_EQ(m.data(), storage.data());
  EXPECT_FLOAT_EQ(storage[4], 5.0f);  // contents copied in
  storage[0] = 9.0f;
  EXPECT_FLOAT_EQ(m(0, 0), 9.0f);     // reads alias
  m(1, 2) = 8.0f;
  EXPECT_FLOAT_EQ(storage[5], 8.0f);  // writes alias

  m.reshape(3, 2);                    // same element count: fine
  EXPECT_THROW(m.resize(4, 4), std::logic_error);  // growth: not fine

  // Copying a view yields an owning matrix; copy-assigning into a view
  // writes through the binding.
  Matrix copy = m;
  EXPECT_FALSE(copy.is_view());
  copy(0, 0) = -5.0f;
  EXPECT_FLOAT_EQ(m(0, 0), 9.0f);  // original untouched
  m = Matrix(3, 2, {10, 11, 12, 13, 14, 15});
  EXPECT_TRUE(m.is_view());
  EXPECT_FLOAT_EQ(storage[0], 10.0f);

  // Moving transfers the binding.
  Matrix moved = std::move(m);
  EXPECT_TRUE(moved.is_view());
  EXPECT_EQ(moved.data(), storage.data());
}

struct GemmShape {
  std::size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  EXPECT_LT(max_rel_diff(matmul(a, b), naive_matmul(a, b)), 1e-4f);
}

TEST_P(GemmTest, TransposedVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 999 + k * 77 + n);
  Matrix a = random_matrix(m, k, rng);
  Matrix bt = random_matrix(n, k, rng);  // for A·Bᵀ
  // Build B = btᵀ naively for reference.
  Matrix b(k, n);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = bt(j, i);
  EXPECT_LT(max_rel_diff(matmul_nt(a, bt), naive_matmul(a, b)), 1e-4f);

  Matrix at = random_matrix(k, m, rng);  // for Aᵀ·B
  Matrix a2(m, k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) a2(i, j) = at(j, i);
  Matrix b2 = random_matrix(k, n, rng);
  EXPECT_LT(max_rel_diff(matmul_tn(at, b2), naive_matmul(a2, b2)), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 2}, GemmShape{8, 8, 8},
                      GemmShape{17, 3, 9}, GemmShape{2, 31, 7},
                      GemmShape{40, 16, 24}));

TEST(Ops, MatmulAccAddsInPlace) {
  Rng rng(5);
  Matrix a = random_matrix(4, 3, rng);
  Matrix b = random_matrix(3, 5, rng);
  Matrix c(4, 5, 1.0f);
  matmul_acc(a, b, c);
  Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c.data()[i], expected.data()[i] + 1.0f, 1e-4f);
}

TEST(Ops, AddBiasAndColumnSums) {
  Matrix m(2, 2, {1, 2, 3, 4});
  Matrix bias(1, 2, {10, 20});
  Matrix y = add_bias(m, bias);
  EXPECT_FLOAT_EQ(y(1, 1), 24.0f);
  Matrix cs = column_sums(m);
  EXPECT_FLOAT_EQ(cs(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(cs(0, 1), 6.0f);
}

class SoftmaxTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoftmaxTest, RowsSumToOneOverValidPrefix) {
  const std::size_t cols = 8;
  Rng rng(GetParam());
  Matrix scores = random_matrix(6, cols, rng);
  std::vector<std::size_t> valid = {0, 1, 3, 8, 5, 2};
  Matrix y = masked_row_softmax(scores, valid);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      if (c >= valid[r]) {
        EXPECT_FLOAT_EQ(y(r, c), 0.0f) << "masked entries must be zero";
      } else {
        EXPECT_GT(y(r, c), 0.0f);
      }
      sum += y(r, c);
    }
    if (valid[r] > 0) EXPECT_NEAR(sum, 1.0f, 1e-5f);
    else EXPECT_FLOAT_EQ(sum, 0.0f);
  }
}

TEST_P(SoftmaxTest, InvariantToConstantShift) {
  Rng rng(GetParam() + 100);
  Matrix scores = random_matrix(3, 5, rng);
  std::vector<std::size_t> valid = {5, 3, 4};
  Matrix y1 = masked_row_softmax(scores, valid);
  Matrix shifted = scores;
  for (std::size_t i = 0; i < shifted.size(); ++i) shifted.data()[i] += 100.0f;
  Matrix y2 = masked_row_softmax(shifted, valid);
  EXPECT_LT(max_rel_diff(y1, y2), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxTest, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Ops, SoftmaxBackwardMatchesFiniteDifference) {
  Rng rng(77);
  Matrix scores = random_matrix(2, 4, rng);
  std::vector<std::size_t> valid = {4, 3};
  Matrix dy = random_matrix(2, 4, rng);
  // Zero out dy on masked entries (their outputs are fixed at 0).
  dy(1, 3) = 0.0f;
  Matrix y = masked_row_softmax(scores, valid);
  Matrix dx = masked_row_softmax_backward(y, dy, valid);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < valid[r]; ++c) {
      Matrix sp = scores, sm = scores;
      sp(r, c) += eps;
      sm(r, c) -= eps;
      const Matrix yp = masked_row_softmax(sp, valid);
      const Matrix ym = masked_row_softmax(sm, valid);
      float fd = 0.0f;
      for (std::size_t cc = 0; cc < 4; ++cc)
        fd += dy(r, cc) * (yp(r, cc) - ym(r, cc)) / (2 * eps);
      EXPECT_NEAR(dx(r, c), fd, 5e-3f);
    }
  }
}

TEST(Ops, ActivationsAndBackwards) {
  Matrix x(1, 4, {-2.0f, -0.5f, 0.5f, 2.0f});
  Matrix s = sigmoid(x);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(s.data()[i], 1.0f / (1.0f + std::exp(-x.data()[i])), 1e-6f);
  Matrix t = tanh_m(x);
  EXPECT_NEAR(t(0, 3), std::tanh(2.0f), 1e-6f);
  Matrix r = relu(x);
  EXPECT_FLOAT_EQ(r(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r(0, 3), 2.0f);

  Matrix dy(1, 4, 1.0f);
  Matrix ds = sigmoid_backward(s, dy);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(ds.data()[i], s.data()[i] * (1 - s.data()[i]), 1e-6f);
  Matrix dt = tanh_backward(t, dy);
  EXPECT_NEAR(dt(0, 3), 1 - t(0, 3) * t(0, 3), 1e-6f);
  Matrix dr = relu_backward(r, dy);
  EXPECT_FLOAT_EQ(dr(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dr(0, 3), 1.0f);
}

TEST(Ops, LogSigmoidStable) {
  EXPECT_NEAR(log_sigmoid(0.0f), std::log(0.5f), 1e-6f);
  EXPECT_LT(log_sigmoid(-100.0f), -99.0f);   // ≈ x
  EXPECT_GT(log_sigmoid(100.0f), -1e-6f);    // ≈ 0
  EXPECT_FALSE(std::isnan(log_sigmoid(-1000.0f)));
  EXPECT_FALSE(std::isnan(log_sigmoid(1000.0f)));
}

}  // namespace
}  // namespace disttgl
