#!/usr/bin/env python3
"""Docs-consistency check (CI).

1. Every BENCH_*.json at the repo root parses as JSON and is a non-empty
   list of labelled entries ({label, date, ...}).
2. Every repo-relative path referenced from README.md and docs/*.md
   (src/..., tests/..., bench/..., docs/..., examples/..., tools/...,
   BENCH_*.json, *.sh) exists. Paths under build/ are generated and
   skipped; tokens containing glob/placeholder characters are skipped.

Run from anywhere: the repo root is located relative to this file.
"""
import glob
import json
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Repo-relative path tokens: known top-level dirs or BENCH json files,
# with an extension or shell suffix. `fig07` style bare names, URLs, and
# build/ artifacts are not matched.
PATH_RE = re.compile(
    r"\b((?:src|tests|bench|docs|examples|tools)/[A-Za-z0-9_./-]+"
    r"\.(?:cpp|hpp|h|md|sh|py|txt|json)|BENCH_[A-Za-z0-9_]+\.json"
    r"|(?:README|ROADMAP|CHANGES|PAPERS?|SNIPPETS)\.md|CMakePresets\.json)\b")

SKIP_CHARS = ("*", "<", ">", "{", "}")

def fail(msg: str) -> None:
    print(f"check_docs: FAIL: {msg}")
    sys.exit(1)

def check_bench_json() -> int:
    files = sorted(glob.glob(os.path.join(ROOT, "BENCH_*.json")))
    if not files:
        fail("no BENCH_*.json files found at the repo root")
    for path in files:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                data = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{name} does not parse: {e}")
        if not isinstance(data, list) or not data:
            fail(f"{name} must be a non-empty list of entries")
        for i, entry in enumerate(data):
            for key in ("label", "date"):
                if key not in entry:
                    fail(f"{name} entry {i} is missing '{key}'")
        print(f"check_docs: {name}: {len(data)} entr{'y' if len(data) == 1 else 'ies'} ok")
    return len(files)

def check_bench_fabric() -> None:
    """BENCH_fabric.json carries the measured-vs-model contract: every
    entry must cover ranks {2,4,8} for both fabric ops, each config
    pairing a positive measured_us with a positive model_us. An entry
    with "fabric": "tcp" follows the tcp-entry convention
    (docs/BENCHMARKS.md): its allreduce configs measured HierComm over
    the TCP ring, so each must also carry hosts >= 2 (the throughput
    model's `machines` argument)."""
    path = os.path.join(ROOT, "BENCH_fabric.json")
    if not os.path.exists(path):
        fail("BENCH_fabric.json is missing at the repo root")
    with open(path) as f:
        data = json.load(f)
    tcp_entries = 0
    for i, entry in enumerate(data):
        is_tcp = entry.get("fabric") == "tcp"
        tcp_entries += is_tcp
        for op in ("allreduce", "daemon_round"):
            configs = entry.get(op)
            if not isinstance(configs, dict):
                fail(f"BENCH_fabric.json entry {i} is missing '{op}'")
            for ranks in (2, 4, 8):
                cfg = configs.get(f"ranks_{ranks}")
                if not isinstance(cfg, dict):
                    fail(f"BENCH_fabric.json entry {i} {op} lacks ranks_{ranks}")
                for key in ("measured_us", "model_us"):
                    if not (isinstance(cfg.get(key), (int, float))
                            and cfg[key] > 0):
                        fail(f"BENCH_fabric.json entry {i} {op} ranks_{ranks} "
                             f"'{key}' must be a positive number")
                if is_tcp and op == "allreduce":
                    if not (isinstance(cfg.get("hosts"), int)
                            and cfg["hosts"] >= 2):
                        fail(f"BENCH_fabric.json entry {i} (fabric=tcp) "
                             f"allreduce ranks_{ranks} must record "
                             "hosts >= 2")
    print(f"check_docs: BENCH_fabric.json: {len(data)} "
          f"entr{'y' if len(data) == 1 else 'ies'} cover ranks 2/4/8 "
          f"with measured+model latencies ({tcp_entries} tcp)")

def check_bench_recovery() -> None:
    """BENCH_recovery.json records the recovery-path costs: every entry
    must carry snapshot save+load measurements (positive latency and
    nonzero payload) and a restart block whose supervised run actually
    restarted.  Entries may additionally carry a 'reconnect' block (the
    ring-reconnect tier, docs/BENCHMARKS.md): it must show at least one
    heal, positive latencies on both sides of the comparison, and the
    ladder's ordering claim — reconnect at least 5x cheaper than
    restart.  At least one entry in the file must carry it, so the
    reconnect-vs-restart trajectory can never silently disappear."""
    path = os.path.join(ROOT, "BENCH_recovery.json")
    if not os.path.exists(path):
        fail("BENCH_recovery.json is missing at the repo root")
    with open(path) as f:
        data = json.load(f)
    reconnect_entries = 0
    for i, entry in enumerate(data):
        snapshot = entry.get("snapshot")
        if not isinstance(snapshot, dict):
            fail(f"BENCH_recovery.json entry {i} is missing 'snapshot'")
        for op in ("snapshot_save", "snapshot_load"):
            cfg = snapshot.get(op)
            if not isinstance(cfg, dict):
                fail(f"BENCH_recovery.json entry {i} lacks '{op}'")
            for key in ("measured_us", "mb"):
                if not (isinstance(cfg.get(key), (int, float)) and cfg[key] > 0):
                    fail(f"BENCH_recovery.json entry {i} {op} '{key}' "
                         "must be a positive number")
        restart = entry.get("restart")
        if not isinstance(restart, dict):
            fail(f"BENCH_recovery.json entry {i} is missing 'restart'")
        if not restart.get("restarts"):
            fail(f"BENCH_recovery.json entry {i} restart block shows no "
                 "restart happened")
        if not (isinstance(restart.get("recover_ms"), (int, float))
                and restart["recover_ms"] > 0):
            fail(f"BENCH_recovery.json entry {i} 'recover_ms' must be a "
                 "positive number")
        reconnect = entry.get("reconnect")
        if reconnect is None:
            continue
        reconnect_entries += 1
        if not isinstance(reconnect, dict):
            fail(f"BENCH_recovery.json entry {i} 'reconnect' must be an "
                 "object")
        if not (isinstance(reconnect.get("reconnects"), int)
                and reconnect["reconnects"] >= 1):
            fail(f"BENCH_recovery.json entry {i} reconnect block shows no "
                 "heal happened (reconnects must be >= 1)")
        for key in ("reconnect_ms", "restart_ms"):
            if not (isinstance(reconnect.get(key), (int, float))
                    and reconnect[key] > 0):
                fail(f"BENCH_recovery.json entry {i} reconnect '{key}' "
                     "must be a positive number")
        speedup = reconnect.get("speedup_vs_restart")
        if not (isinstance(speedup, (int, float)) and speedup >= 5):
            fail(f"BENCH_recovery.json entry {i} reconnect "
                 "'speedup_vs_restart' must be >= 5 (the recovery "
                 "ladder's ordering claim)")
    if reconnect_entries == 0:
        fail("BENCH_recovery.json has no entry with a 'reconnect' block "
             "(reconnect-vs-restart trajectory lost)")
    print(f"check_docs: BENCH_recovery.json: {len(data)} "
          f"entr{'y' if len(data) == 1 else 'ies'} cover snapshot save/load "
          f"+ supervised restart ({reconnect_entries} with ring reconnect)")

def check_bench_serving() -> None:
    """BENCH_serving.json records the serving-tier load trajectory: every
    entry must cover at least two reader-thread configs (the scaling
    claim needs more than one point), each with p50 <= p99 and a
    positive saturation QPS.  Entries may additionally carry a 'churn'
    block (scoring while snapshots install); it must show at least one
    install actually happened during the measurement."""
    path = os.path.join(ROOT, "BENCH_serving.json")
    if not os.path.exists(path):
        fail("BENCH_serving.json is missing at the repo root")
    with open(path) as f:
        data = json.load(f)
    churn_entries = 0
    for i, entry in enumerate(data):
        configs = entry.get("configs")
        if not isinstance(configs, dict):
            fail(f"BENCH_serving.json entry {i} is missing 'configs'")
        thread_cfgs = [k for k in configs if re.fullmatch(r"threads_\d+", k)]
        if len(thread_cfgs) < 2:
            fail(f"BENCH_serving.json entry {i} must cover at least two "
                 "reader-thread configs (threads_N)")
        for key in thread_cfgs:
            cfg = configs[key]
            for field in ("p50_us", "p99_us", "qps"):
                if not (isinstance(cfg.get(field), (int, float))
                        and cfg[field] > 0):
                    fail(f"BENCH_serving.json entry {i} {key} '{field}' "
                         "must be a positive number")
            if cfg["p50_us"] > cfg["p99_us"]:
                fail(f"BENCH_serving.json entry {i} {key} has p50_us > "
                     "p99_us (percentiles out of order)")
        churn = entry.get("churn")
        if churn is None:
            continue
        churn_entries += 1
        if not (isinstance(churn.get("installs"), int)
                and churn["installs"] >= 1):
            fail(f"BENCH_serving.json entry {i} churn block shows no "
                 "install happened (installs must be >= 1)")
    print(f"check_docs: BENCH_serving.json: {len(data)} "
          f"entr{'y' if len(data) == 1 else 'ies'} cover >= 2 reader "
          f"configs with ordered percentiles ({churn_entries} with churn)")

def check_doc_paths() -> int:
    docs = [os.path.join(ROOT, "README.md")] + sorted(
        glob.glob(os.path.join(ROOT, "docs", "*.md")))
    checked = 0
    missing = []
    for doc in docs:
        with open(doc) as f:
            text = f.read()
        for token in sorted(set(PATH_RE.findall(text))):
            if any(c in token for c in SKIP_CHARS):
                continue
            checked += 1
            # `.{hpp,cpp}`-style shorthand is expanded by SKIP_CHARS;
            # plain tokens must exist verbatim.
            if not os.path.exists(os.path.join(ROOT, token)):
                missing.append(f"{os.path.relpath(doc, ROOT)} -> {token}")
    if missing:
        fail("referenced files do not exist:\n  " + "\n  ".join(missing))
    print(f"check_docs: {checked} referenced paths across {len(docs)} docs ok")
    return checked

def main() -> None:
    check_bench_json()
    check_bench_fabric()
    check_bench_recovery()
    check_bench_serving()
    check_doc_paths()
    print("check_docs: OK")

if __name__ == "__main__":
    main()
