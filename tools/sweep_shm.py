#!/usr/bin/env python3
"""Sweep leaked DistTGL shared-memory segments from /dev/shm.

Every shm segment the fabric creates is named "/disttgl.<pid>.<n>..."
(see src/distributed/shm.hpp).  A correct run unlinks all of them; a
crashed or SIGKILLed run can leave segments behind.  This script is
wired into CTest as the `fabric_shm_sweep` cleanup fixture: it runs
after the fabric suites and, with --fail-on-leak, turns any leftover
segment into a test failure while still deleting it so one leaky run
cannot poison the next.

The same contract extends to checkpoint scratch space: checkpoint.cpp's
atomic writes stage every shard as "<name>.tmp" and rename it into
place, so a surviving *.tmp under --ckpt-dir means an interrupted write
that nothing reclaimed.  The sweep fails on those too (recursively),
then removes the whole scratch directory so runs stay hermetic.

It also covers the socket plane (src/distributed/socket.cpp): the UNIX
rendezvous leaves "/tmp/disttgl.*.sock" files (plus "*.sock.lock" from
the serialized stale-socket recovery) that the host unlinks on clean
exit, and the TCP fabric holds listener sockets that FdHandle closes on
every path.  A surviving socket/lock file, or a listener fd still open
in THIS process (--check-fds, used by tests that exec the sweep after
closing everything), is a leak.

Usage:
    sweep_shm.py [--fail-on-leak] [--prefix PREFIX] [--ckpt-dir DIR]
                 [--sock-dir DIR] [--check-fds] [--dry-run]
"""

import argparse
import os
import shutil
import sys

SHM_DIR = "/dev/shm"
DEFAULT_PREFIX = "disttgl."  # /dev/shm entries drop the leading '/'
DEFAULT_CKPT_DIR = "/tmp/disttgl-ckpt"
DEFAULT_SOCK_DIR = "/tmp"


def find_segments(prefix: str) -> list[str]:
    try:
        entries = os.listdir(SHM_DIR)
    except FileNotFoundError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def find_tmp_shards(ckpt_dir: str) -> list[str]:
    leaked = []
    for root, _dirs, files in os.walk(ckpt_dir):
        leaked.extend(
            os.path.join(root, f) for f in files if f.endswith(".tmp")
        )
    return sorted(leaked)


def find_socket_litter(sock_dir: str, prefix: str) -> list[str]:
    """Rendezvous socket files and recovery lockfiles left behind by a
    crashed session (a clean host unlinks both)."""
    try:
        entries = os.listdir(sock_dir)
    except FileNotFoundError:
        return []
    return sorted(
        os.path.join(sock_dir, e)
        for e in entries
        if e.startswith(prefix) and (e.endswith(".sock")
                                     or e.endswith(".lock"))
    )


def find_open_listener_fds(pid: str = "self") -> list[str]:
    """Listener sockets still open in process `pid` (Linux: /proc/<pid>/fd
    + /proc/net). A test that swept its fabric should hold none; tests
    that exec this sweep pass --fd-pid with their own pid, since
    /proc/self would be the python interpreter, not the test."""
    fd_dir = f"/proc/{pid}/fd"
    try:
        fds = os.listdir(fd_dir)
    except FileNotFoundError:
        return []  # not Linux; nothing to check
    # Inodes of listening TCP sockets (state 0A) and of bound UNIX
    # listeners whose path matches the fabric's naming.
    listening = set()
    try:
        with open("/proc/net/tcp") as f:
            for line in list(f)[1:]:
                parts = line.split()
                if len(parts) > 9 and parts[3] == "0A":
                    listening.add(parts[9])
    except OSError:
        pass
    try:
        with open("/proc/net/unix") as f:
            for line in list(f)[1:]:
                parts = line.split()
                if len(parts) >= 8 and "disttgl" in parts[-1]:
                    listening.add(parts[6])
    except OSError:
        pass
    leaked = []
    for fd in fds:
        try:
            target = os.readlink(os.path.join(fd_dir, fd))
        except OSError:
            continue
        if target.startswith("socket:["):
            inode = target[len("socket:["):-1]
            if inode in listening:
                leaked.append(f"fd {fd} -> {target}")
    return leaked


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fail-on-leak",
        action="store_true",
        help="exit nonzero if any segment was found (after removing it)",
    )
    parser.add_argument(
        "--prefix",
        default=DEFAULT_PREFIX,
        help=f"segment name prefix to sweep (default: {DEFAULT_PREFIX})",
    )
    parser.add_argument(
        "--ckpt-dir",
        default=DEFAULT_CKPT_DIR,
        help="checkpoint scratch dir to sweep for leaked *.tmp shards "
        f"(default: {DEFAULT_CKPT_DIR})",
    )
    parser.add_argument(
        "--sock-dir",
        default=DEFAULT_SOCK_DIR,
        help="directory to sweep for leaked rendezvous *.sock files and "
        f"recovery *.lock files (default: {DEFAULT_SOCK_DIR})",
    )
    parser.add_argument(
        "--check-fds",
        action="store_true",
        help="also fail on listener sockets still open in this process",
    )
    parser.add_argument(
        "--fd-pid",
        default="self",
        help="pid whose fd table --check-fds inspects (default: self; "
        "tests that exec the sweep pass their own pid)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="list leaked segments without removing them",
    )
    args = parser.parse_args()

    leaked = find_segments(args.prefix)
    for name in leaked:
        path = os.path.join(SHM_DIR, name)
        if args.dry_run:
            print(f"leaked (not removed): {path}")
            continue
        try:
            os.unlink(path)
            print(f"removed leaked segment: {path}")
        except OSError as err:
            print(f"failed to remove {path}: {err}", file=sys.stderr)

    leaked_tmp = find_tmp_shards(args.ckpt_dir)
    for path in leaked_tmp:
        if args.dry_run:
            print(f"leaked tmp shard (not removed): {path}")
        else:
            print(f"leaked tmp shard: {path}")
    if not args.dry_run and os.path.isdir(args.ckpt_dir):
        shutil.rmtree(args.ckpt_dir, ignore_errors=True)
        print(f"removed checkpoint scratch dir: {args.ckpt_dir}")

    leaked_sock = find_socket_litter(args.sock_dir, args.prefix)
    for path in leaked_sock:
        if args.dry_run:
            print(f"leaked socket artifact (not removed): {path}")
            continue
        try:
            os.unlink(path)
            print(f"removed leaked socket artifact: {path}")
        except OSError as err:
            print(f"failed to remove {path}: {err}", file=sys.stderr)

    leaked_fds = find_open_listener_fds(args.fd_pid) if args.check_fds else []
    for desc in leaked_fds:
        print(f"leaked listener socket: {desc}")

    failures = (len(leaked) + len(leaked_tmp) + len(leaked_sock)
                + len(leaked_fds))
    if failures and args.fail_on_leak:
        print(
            f"FAIL: {len(leaked)} leaked shm segment(s) with prefix "
            f"'{args.prefix}', {len(leaked_tmp)} leaked *.tmp shard(s) "
            f"under '{args.ckpt_dir}', {len(leaked_sock)} leaked socket "
            f"artifact(s) under '{args.sock_dir}', {len(leaked_fds)} open "
            "listener fd(s)",
            file=sys.stderr,
        )
        return 1
    if not failures:
        print(
            f"no leaked shm segments with prefix '{args.prefix}', no "
            f"*.tmp shards under '{args.ckpt_dir}', no socket artifacts "
            f"under '{args.sock_dir}'"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
