#!/usr/bin/env python3
"""Sweep leaked DistTGL shared-memory segments from /dev/shm.

Every shm segment the fabric creates is named "/disttgl.<pid>.<n>..."
(see src/distributed/shm.hpp).  A correct run unlinks all of them; a
crashed or SIGKILLed run can leave segments behind.  This script is
wired into CTest as the `fabric_shm_sweep` cleanup fixture: it runs
after the fabric suites and, with --fail-on-leak, turns any leftover
segment into a test failure while still deleting it so one leaky run
cannot poison the next.

The same contract extends to checkpoint scratch space: checkpoint.cpp's
atomic writes stage every shard as "<name>.tmp" and rename it into
place, so a surviving *.tmp under --ckpt-dir means an interrupted write
that nothing reclaimed.  The sweep fails on those too (recursively),
then removes the whole scratch directory so runs stay hermetic.

Usage:
    sweep_shm.py [--fail-on-leak] [--prefix PREFIX] [--ckpt-dir DIR]
                 [--dry-run]
"""

import argparse
import os
import shutil
import sys

SHM_DIR = "/dev/shm"
DEFAULT_PREFIX = "disttgl."  # /dev/shm entries drop the leading '/'
DEFAULT_CKPT_DIR = "/tmp/disttgl-ckpt"


def find_segments(prefix: str) -> list[str]:
    try:
        entries = os.listdir(SHM_DIR)
    except FileNotFoundError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def find_tmp_shards(ckpt_dir: str) -> list[str]:
    leaked = []
    for root, _dirs, files in os.walk(ckpt_dir):
        leaked.extend(
            os.path.join(root, f) for f in files if f.endswith(".tmp")
        )
    return sorted(leaked)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fail-on-leak",
        action="store_true",
        help="exit nonzero if any segment was found (after removing it)",
    )
    parser.add_argument(
        "--prefix",
        default=DEFAULT_PREFIX,
        help=f"segment name prefix to sweep (default: {DEFAULT_PREFIX})",
    )
    parser.add_argument(
        "--ckpt-dir",
        default=DEFAULT_CKPT_DIR,
        help="checkpoint scratch dir to sweep for leaked *.tmp shards "
        f"(default: {DEFAULT_CKPT_DIR})",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="list leaked segments without removing them",
    )
    args = parser.parse_args()

    leaked = find_segments(args.prefix)
    for name in leaked:
        path = os.path.join(SHM_DIR, name)
        if args.dry_run:
            print(f"leaked (not removed): {path}")
            continue
        try:
            os.unlink(path)
            print(f"removed leaked segment: {path}")
        except OSError as err:
            print(f"failed to remove {path}: {err}", file=sys.stderr)

    leaked_tmp = find_tmp_shards(args.ckpt_dir)
    for path in leaked_tmp:
        if args.dry_run:
            print(f"leaked tmp shard (not removed): {path}")
        else:
            print(f"leaked tmp shard: {path}")
    if not args.dry_run and os.path.isdir(args.ckpt_dir):
        shutil.rmtree(args.ckpt_dir, ignore_errors=True)
        print(f"removed checkpoint scratch dir: {args.ckpt_dir}")

    failures = len(leaked) + len(leaked_tmp)
    if failures and args.fail_on_leak:
        print(
            f"FAIL: {len(leaked)} leaked shm segment(s) with prefix "
            f"'{args.prefix}', {len(leaked_tmp)} leaked *.tmp shard(s) "
            f"under '{args.ckpt_dir}'",
            file=sys.stderr,
        )
        return 1
    if not failures:
        print(
            f"no leaked shm segments with prefix '{args.prefix}' and no "
            f"*.tmp shards under '{args.ckpt_dir}'"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
