#!/usr/bin/env python3
"""Sweep leaked DistTGL shared-memory segments from /dev/shm.

Every shm segment the fabric creates is named "/disttgl.<pid>.<n>..."
(see src/distributed/shm.hpp).  A correct run unlinks all of them; a
crashed or SIGKILLed run can leave segments behind.  This script is
wired into CTest as the `fabric_shm_sweep` cleanup fixture: it runs
after the fabric suites and, with --fail-on-leak, turns any leftover
segment into a test failure while still deleting it so one leaky run
cannot poison the next.

Usage:
    sweep_shm.py [--fail-on-leak] [--prefix PREFIX] [--dry-run]
"""

import argparse
import os
import sys

SHM_DIR = "/dev/shm"
DEFAULT_PREFIX = "disttgl."  # /dev/shm entries drop the leading '/'


def find_segments(prefix: str) -> list[str]:
    try:
        entries = os.listdir(SHM_DIR)
    except FileNotFoundError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fail-on-leak",
        action="store_true",
        help="exit nonzero if any segment was found (after removing it)",
    )
    parser.add_argument(
        "--prefix",
        default=DEFAULT_PREFIX,
        help=f"segment name prefix to sweep (default: {DEFAULT_PREFIX})",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="list leaked segments without removing them",
    )
    args = parser.parse_args()

    leaked = find_segments(args.prefix)
    for name in leaked:
        path = os.path.join(SHM_DIR, name)
        if args.dry_run:
            print(f"leaked (not removed): {path}")
            continue
        try:
            os.unlink(path)
            print(f"removed leaked segment: {path}")
        except OSError as err:
            print(f"failed to remove {path}: {err}", file=sys.stderr)

    if leaked and args.fail_on_leak:
        print(
            f"FAIL: {len(leaked)} leaked shm segment(s) with prefix "
            f"'{args.prefix}'",
            file=sys.stderr,
        )
        return 1
    if not leaked:
        print(f"no leaked shm segments with prefix '{args.prefix}'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
