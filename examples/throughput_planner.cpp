// What-if throughput tool: given a dataset and a cluster shape, compare
// the simulated training throughput of TGN / TGL / DistTGL configurations
// on the paper's hardware model (T4 GPUs, 100 Gbps Ethernet), using
// per-iteration volumes measured from real mini-batches.
#include <cstdio>

#include "core/baselines.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;

  TemporalGraph graph = datagen::generate(datagen::wikipedia_like(0.5));
  EventSplit split = chronological_split(graph);

  ModelConfig model;
  model.mem_dim = 100;  // paper-scale model for the cost estimates
  model.time_dim = 16;
  model.attn_dim = 100;
  model.emb_dim = 100;
  model.head_hidden = 100;

  const std::size_t local_batch = 600;
  dist::IterationProfile profile =
      make_iteration_profile(model, graph, split, local_batch, 1, 1);
  std::printf("measured per-iteration profile (local batch %zu):\n"
              "  memory read %.2f MB, write %.2f MB, fetch %.2f MB, "
              "gpu %.2f GFLOP, weights %.2f MB\n\n",
              local_batch, profile.mem_read_bytes / 1e6,
              profile.mem_write_bytes / 1e6, profile.fetch_bytes / 1e6,
              profile.gpu_flops / 1e9, profile.weight_bytes / 1e6);

  dist::FabricSpec fabric;  // g4dn.metal-like constants
  std::printf("%-26s %8s %12s %12s\n", "system / config", "gpus", "kE/s",
              "kE/s per GPU");

  auto report = [&](const char* label, dist::SystemKind kind,
                    dist::ParallelPlan plan) {
    const auto est = dist::estimate_throughput(kind, fabric, profile, plan);
    std::printf("%-26s %8zu %12.1f %12.2f\n", label, plan.total_gpus(),
                est.events_per_second / 1e3,
                est.per_gpu_events_per_second / 1e3);
  };

  report("TGN 1x1x1", dist::SystemKind::kTGN, {});
  report("TGL 1 GPU", dist::SystemKind::kTGL, {});
  {
    dist::ParallelPlan p;
    p.i = 8;
    report("TGL 8 GPU", dist::SystemKind::kTGL, p);
  }
  report("DistTGL 1x1x1", dist::SystemKind::kDistTGL, {});
  {
    dist::ParallelPlan p;
    p.k = 8;
    report("DistTGL 1x1x8", dist::SystemKind::kDistTGL, p);
  }
  {
    dist::ParallelPlan p;
    p.j = 8;
    p.k = 2;
    p.machines = 2;
    report("DistTGL 1x8x2 (2 nodes)", dist::SystemKind::kDistTGL, p);
  }
  {
    dist::ParallelPlan p;
    p.k = 32;
    p.machines = 4;
    report("DistTGL 1x1x32 (4 nodes)", dist::SystemKind::kDistTGL, p);
  }
  std::printf("\n(simulated on the paper's g4dn.metal hardware model; shapes "
              "— not absolute numbers — are the claim)\n");
  return 0;
}
