// Fraud-detection-style workload: burst interactions where high-frequency
// temporal signal matters (the scenario §3.1 argues static-only memory
// fails on). Trains the DistTGL model with and without static node
// memory and reports both, demonstrating the §3.1 model enhancement on a
// workload with both static preference structure and bursty dynamics.
#include <cstdio>

#include "core/static_memory.hpp"
#include "core/trainer.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;

  // Transaction-like stream: skewed account activity, strong recency
  // (fraud rings fire in bursts), moderate static preference.
  datagen::SynthSpec spec;
  spec.name = "transactions";
  spec.num_src = 300;
  spec.num_dst = 120;
  spec.num_events = 9000;
  spec.max_time = 5e4;
  spec.edge_feat_dim = 8;
  spec.activity_alpha = 1.2;   // a few very hot accounts
  spec.recurrence = 0.75;      // bursts repeat counterparties
  spec.dynamic_weight = 0.65;  // recent behaviour dominates
  spec.drift = 0.4;
  spec.seed = 2024;
  TemporalGraph graph = datagen::generate(spec);
  std::printf("dataset: %s, %zu nodes, %zu events\n", graph.name().c_str(),
              graph.num_nodes(), graph.num_events());

  TrainingConfig cfg;
  cfg.model.mem_dim = 16;
  cfg.model.time_dim = 8;
  cfg.model.attn_dim = 16;
  cfg.model.emb_dim = 16;
  cfg.model.head_hidden = 16;
  cfg.local_batch = 150;
  cfg.epochs = 8;
  cfg.base_lr = 2e-3f;

  // Without static node memory.
  SequentialTrainer plain(cfg, graph, nullptr);
  TrainResult plain_res = plain.train();

  // With pre-trained static node memory (§3.1): pre-train on the training
  // split, freeze, and concatenate with the dynamic memory.
  EventSplit split = chronological_split(graph, cfg.train_frac, cfg.val_frac);
  StaticPretrainConfig pre;
  pre.dim = 16;
  pre.epochs = 10;
  Matrix static_mem = pretrain_static_memory(graph, split, pre);

  TrainingConfig cfg_static = cfg;
  cfg_static.model.static_dim = pre.dim;
  SequentialTrainer enhanced(cfg_static, graph, &static_mem);
  TrainResult enhanced_res = enhanced.train();

  std::printf("\n%-28s val MRR   test MRR\n", "model");
  std::printf("%-28s %.4f    %.4f\n", "dynamic memory only",
              plain_res.final_val, plain_res.final_test);
  std::printf("%-28s %.4f    %.4f\n", "dynamic + static memory",
              enhanced_res.final_val, enhanced_res.final_test);
  std::printf("\nThe static table captures stable counterparty preferences; "
              "the GRU memory captures the bursts.\n");
  return 0;
}
