// Quickstart: train a memory-based TGNN on a synthetic interaction graph
// and evaluate temporal link prediction — the 60-second tour of the API.
//
//   1. generate (or load) a temporal graph,
//   2. pick a training configuration (validate() checks it),
//   3. train with SequentialTrainer — the deterministic single-thread
//      reference; ThreadedTrainer runs the same config on the real
//      multi-threaded system with identical results,
//   4. read the metrics.
#include <cstdio>

#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;

  // A Wikipedia-like bipartite user→page interaction stream, scaled small.
  TemporalGraph graph = datagen::generate(datagen::wikipedia_like(0.4));
  std::printf("dataset: %s, %zu nodes, %zu events\n", graph.name().c_str(),
              graph.num_nodes(), graph.num_events());

  // Single-GPU-equivalent training configuration.
  TrainingConfig cfg;
  cfg.model.mem_dim = 16;
  cfg.model.time_dim = 8;
  cfg.model.attn_dim = 16;
  cfg.model.emb_dim = 16;
  cfg.model.head_hidden = 16;
  cfg.local_batch = 100;
  cfg.epochs = 10;
  cfg.base_lr = 2e-3f;
  validate(cfg);

  SequentialTrainer trainer(cfg, graph, /*static_memory=*/nullptr);
  TrainResult result = trainer.train();

  std::printf("\nvalidation MRR over training:\n");
  result.log.print_series("  quickstart");
  std::printf("\nfinal: val MRR %.4f | test MRR %.4f (49 negatives)\n",
              result.final_val, result.final_test);
  return 0;
}
