// Distributed training end-to-end: plan an i×j×k configuration for a
// simulated cluster with the §3.2.4 heuristics, run it on the real
// threaded system (trainer threads, zero-copy memory daemons, pooled
// prefetch pipeline, chunked reduce-scatter gradient sync), and compare
// convergence/iterations against single-GPU. Set
// cfg.comm_fused_step = true to fuse grad-clip + Adam into the
// collective (docs/TUNING.md).
#include <cstdio>

#include "core/planner.hpp"
#include "core/threaded_trainer.hpp"
#include "core/trainer.hpp"
#include "datagen/presets.hpp"
#include "datagen/generator.hpp"

int main() {
  using namespace disttgl;

  TemporalGraph graph = datagen::generate(datagen::mooc_like(0.4));
  EventSplit split = chronological_split(graph);
  std::printf("dataset: %s, %zu nodes, %zu events (train %zu)\n",
              graph.name().c_str(), graph.num_nodes(), graph.num_events(),
              split.num_train());

  // Ask the planner for the best configuration on one 8-GPU machine.
  PlannerInputs hw;
  hw.machines = 1;
  hw.gpus_per_machine = 8;
  hw.mem_copies_per_machine = 8;
  hw.gpu_saturation_batch = 100;
  Plan plan = plan_training(graph, split, hw);
  std::printf("planned configuration: %zux%zux%zu (ixjxk), local batch %zu, "
              "capture fraction %.3f\n",
              plan.parallel.i, plan.parallel.j, plan.parallel.k,
              plan.local_batch, plan.capture_fraction);

  TrainingConfig cfg;
  cfg.model.mem_dim = 16;
  cfg.model.time_dim = 8;
  cfg.model.attn_dim = 16;
  cfg.model.emb_dim = 16;
  cfg.model.head_hidden = 16;
  cfg.local_batch = std::min<std::size_t>(plan.local_batch, 120);
  cfg.epochs = 8;
  cfg.base_lr = 1e-3f;

  // Single-GPU reference.
  SequentialTrainer single(cfg, graph, nullptr);
  TrainResult single_res = single.train();

  // Planned distributed configuration on the threaded system.
  TrainingConfig dist_cfg = cfg;
  dist_cfg.parallel = plan.parallel;
  validate(dist_cfg);
  ThreadedTrainer distributed(dist_cfg, graph, nullptr);
  ThreadedTrainResult dist_res = distributed.train();

  std::printf("\n%-24s iterations  val MRR   test MRR\n", "configuration");
  std::printf("%-24s %9zu  %.4f    %.4f\n", "1x1x1 (single GPU)",
              single_res.iterations, single_res.final_val,
              single_res.final_test);
  char label[64];
  std::snprintf(label, sizeof(label), "%zux%zux%zu (threaded)",
                dist_cfg.parallel.i, dist_cfg.parallel.j, dist_cfg.parallel.k);
  std::printf("%-24s %9zu  %.4f    %.4f\n", label, dist_res.iterations,
              dist_res.final_val, dist_res.final_test);
  std::printf("\niteration reduction: %.1fx with %zu trainers\n",
              static_cast<double>(single_res.iterations) / dist_res.iterations,
              dist_cfg.parallel.total_trainers());
  return 0;
}
