// Chronological evaluation loop.
//
// Replays validation/test events in order against a (cloned) memory
// state, exactly like inference in production: embeddings are computed
// before the batch's own mails update the memory (the reversed order of
// §2.1 that avoids information leaks), then the write advances the
// stream. Link prediction ranks the true destination against `num_negs`
// sampled negatives (49 in the paper); classification reports F1-micro.
#pragma once

#include "core/tgn_model.hpp"
#include "memory/memory_state.hpp"
#include "sampling/batching.hpp"

namespace disttgl {

struct EvalConfig {
  std::size_t batch_size = 200;
  std::size_t num_negs = 49;
  std::uint64_t seed = 9999;
};

struct EvalResult {
  double metric = 0.0;  // MRR (link prediction) or F1-micro
  double loss = 0.0;
  std::size_t events = 0;
};

// Evaluates events [begin, end); mutates `state` (callers pass a clone
// when the training stream must not be disturbed).
EvalResult evaluate_range(TGNModel& model, MemoryState& state,
                          const TemporalGraph& graph,
                          const NeighborSampler& sampler, std::size_t begin,
                          std::size_t end, const EvalConfig& cfg);

// Per-source-node reciprocal-rank sums — the Fig 5 breakdown (accuracy
// per node, later sorted by degree). rr_sum[v] / count[v] is node v's MRR
// as a source.
struct PerNodeEval {
  std::vector<double> rr_sum;
  std::vector<std::size_t> count;
};
PerNodeEval evaluate_per_node(TGNModel& model, MemoryState& state,
                              const TemporalGraph& graph,
                              const NeighborSampler& sampler, std::size_t begin,
                              std::size_t end, const EvalConfig& cfg);

}  // namespace disttgl
