#include "eval/evaluator.hpp"

#include "eval/metrics.hpp"

namespace disttgl {

namespace {

// Shared replay loop; `on_batch` sees each batch's scores.
template <typename Fn>
void replay(TGNModel& model, MemoryState& state, const TemporalGraph& graph,
            const NeighborSampler& sampler, std::size_t begin, std::size_t end,
            const EvalConfig& cfg, Fn&& on_batch) {
  DT_CHECK_LT(begin, end);
  const bool link = model.task() == TGNModel::Task::kLinkPrediction;
  NegativeSampler negatives(graph, 1, cfg.seed);
  MiniBatchBuilder builder(graph, sampler, negatives,
                           link ? cfg.num_negs : 0);
  const auto batches = make_batches(begin, end, cfg.batch_size);
  // All replay buffers recycle across batches (build_into / read_into /
  // in-place write), matching the trainers' allocation-free memory path.
  std::vector<std::size_t> groups;
  if (link) groups.push_back(0);
  MiniBatch mb;
  MemorySlice slice;
  MemoryWrite write;
  TGNModel::StepResult res;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    builder.build_into(b, batches[b].begin, batches[b].end, groups, mb);
    state.read_into(mb.unique_nodes, slice);
    write.clear();
    model.infer_into(mb, slice, &write, res);
    state.write(write);
    on_batch(mb, res);
  }
}

// Reciprocal rank of event e's positive among its negatives, skipping
// sampled negatives that collide with the true destination. On the
// paper's datasets (10⁴+ destinations) collisions are negligible; on
// scaled-down synthetic graphs they would systematically depress MRR, so
// they are masked here to keep the metric faithful.
double reciprocal_rank_masked(const MiniBatch& mb,
                              const TGNModel::StepResult& res, std::size_t e) {
  const float p = res.pos_scores(e, 0);
  double rank = 1.0;
  for (std::size_t q = 0; q < res.neg_scores.cols(); ++q) {
    if (mb.neg_dst[e * mb.num_neg + q] == mb.dst[e]) continue;
    const float s = res.neg_scores(e, q);
    if (s > p) rank += 1.0;
    else if (s == p) rank += 0.5;
  }
  return 1.0 / rank;
}

}  // namespace

EvalResult evaluate_range(TGNModel& model, MemoryState& state,
                          const TemporalGraph& graph,
                          const NeighborSampler& sampler, std::size_t begin,
                          std::size_t end, const EvalConfig& cfg) {
  EvalResult out;
  double metric_weighted = 0.0;
  replay(model, state, graph, sampler, begin, end, cfg,
         [&](const MiniBatch& mb, const TGNModel::StepResult& res) {
           const auto n = mb.num_pos();
           double m = 0.0;
           if (model.task() == TGNModel::Task::kLinkPrediction) {
             for (std::size_t e = 0; e < n; ++e)
               m += reciprocal_rank_masked(mb, res, e);
             m /= static_cast<double>(n);
           } else {
             Matrix t(n, graph.num_classes());
             for (std::size_t e = 0; e < n; ++e)
               t.copy_row_from(e, graph.edge_labels().row(mb.events[e]));
             m = f1_micro_topl(res.logits, t);
           }
           metric_weighted += m * static_cast<double>(n);
           out.loss += res.loss * static_cast<double>(n);
           out.events += n;
         });
  if (out.events > 0) {
    out.metric = metric_weighted / static_cast<double>(out.events);
    out.loss /= static_cast<double>(out.events);
  }
  return out;
}

PerNodeEval evaluate_per_node(TGNModel& model, MemoryState& state,
                              const TemporalGraph& graph,
                              const NeighborSampler& sampler, std::size_t begin,
                              std::size_t end, const EvalConfig& cfg) {
  PerNodeEval out;
  out.rr_sum.assign(graph.num_nodes(), 0.0);
  out.count.assign(graph.num_nodes(), 0);
  DT_CHECK(model.task() == TGNModel::Task::kLinkPrediction);
  replay(model, state, graph, sampler, begin, end, cfg,
         [&](const MiniBatch& mb, const TGNModel::StepResult& res) {
           for (std::size_t e = 0; e < mb.num_pos(); ++e) {
             out.rr_sum[mb.src[e]] += reciprocal_rank_masked(mb, res, e);
             ++out.count[mb.src[e]];
           }
         });
  return out;
}

}  // namespace disttgl
