// Evaluation metrics (§4: MRR over 49 sampled negatives; F1-micro for
// the multi-label dynamic edge classification task).
#pragma once

#include "tensor/matrix.hpp"

namespace disttgl {

// Mean reciprocal rank: for each row, the positive's rank among
// {positive} ∪ {negatives of that row}; ties count as half a place.
double mean_reciprocal_rank(const Matrix& pos_scores, const Matrix& neg_scores);

// Average precision (area under precision-recall, single positive per
// row) — a secondary link-prediction metric.
double average_precision(const Matrix& pos_scores, const Matrix& neg_scores);

// Micro-averaged F1 for multi-label prediction: per row, the top-L_r
// logits are predicted where L_r = number of true labels in that row
// (the paper's fixed-cardinality protocol: "56-class 6-label").
double f1_micro_topl(const Matrix& logits, const Matrix& targets);

}  // namespace disttgl
