#include "eval/metrics.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace disttgl {

double mean_reciprocal_rank(const Matrix& pos_scores, const Matrix& neg_scores) {
  DT_CHECK_EQ(pos_scores.cols(), 1u);
  DT_CHECK_EQ(pos_scores.rows(), neg_scores.rows());
  DT_CHECK_GT(pos_scores.rows(), 0u);
  double acc = 0.0;
  for (std::size_t r = 0; r < pos_scores.rows(); ++r) {
    const float p = pos_scores(r, 0);
    double rank = 1.0;
    for (std::size_t q = 0; q < neg_scores.cols(); ++q) {
      const float s = neg_scores(r, q);
      if (s > p) rank += 1.0;
      else if (s == p) rank += 0.5;
    }
    acc += 1.0 / rank;
  }
  return acc / static_cast<double>(pos_scores.rows());
}

double average_precision(const Matrix& pos_scores, const Matrix& neg_scores) {
  DT_CHECK_EQ(pos_scores.cols(), 1u);
  DT_CHECK_EQ(pos_scores.rows(), neg_scores.rows());
  DT_CHECK_GT(pos_scores.rows(), 0u);
  // With a single positive per row, AP reduces to 1/rank — identical to
  // reciprocal rank per row but kept separate for API clarity.
  return mean_reciprocal_rank(pos_scores, neg_scores);
}

double f1_micro_topl(const Matrix& logits, const Matrix& targets) {
  DT_CHECK(logits.same_shape(targets));
  DT_CHECK_GT(logits.rows(), 0u);
  std::size_t tp = 0, fp = 0, fn = 0;
  std::vector<std::pair<float, std::size_t>> scored(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::size_t l = 0;
    for (std::size_t c = 0; c < targets.cols(); ++c)
      if (targets(r, c) > 0.5f) ++l;
    if (l == 0) continue;
    for (std::size_t c = 0; c < logits.cols(); ++c)
      scored[c] = {logits(r, c), c};
    std::partial_sort(scored.begin(), scored.begin() + l, scored.end(),
                      [](auto& a, auto& b) { return a.first > b.first; });
    for (std::size_t p = 0; p < l; ++p) {
      if (targets(r, scored[p].second) > 0.5f) ++tp;
      else ++fp;
    }
  }
  // FN = total positives − TP.
  std::size_t total_pos = 0;
  for (std::size_t i = 0; i < targets.size(); ++i)
    if (targets.data()[i] > 0.5f) ++total_pos;
  fn = total_pos - tp;
  const double denom = 2.0 * tp + fp + fn;
  return denom == 0.0 ? 0.0 : 2.0 * tp / denom;
}

}  // namespace disttgl
