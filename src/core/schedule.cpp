#include "core/schedule.hpp"

#include "util/check.hpp"

namespace disttgl {

Schedule build_schedule(const ParallelConfig& parallel, std::size_t num_batches,
                        std::size_t epochs, std::size_t neg_groups) {
  const std::size_t i = parallel.i, j = parallel.j, k = parallel.k;
  DT_CHECK_GT(i, 0u);
  DT_CHECK_GT(j, 0u);
  DT_CHECK_GT(k, 0u);
  DT_CHECK_GT(num_batches, 0u);
  DT_CHECK_GT(epochs, 0u);
  DT_CHECK_GT(neg_groups, 0u);

  Schedule sched;
  sched.i = i;
  sched.j = j;
  sched.k = k;
  sched.num_batches = num_batches;
  sched.epochs = epochs;
  // Total batch-versions to run: E·B, split evenly over groups (k) with j
  // versions produced per started batch.
  sched.rounds_per_group = (epochs * num_batches) / (j * k);
  DT_CHECK_MSG(sched.rounds_per_group > 0,
               "epochs*batches too small for j*k trainers");
  sched.total_iterations = sched.rounds_per_group + j - 1;

  const std::size_t B = num_batches;
  const std::size_t stagger = (B + k - 1) / k;  // memory-parallel offset

  // ---- per-group round streams (also consumed by the daemons) ----
  sched.groups.resize(k);
  for (std::size_t m = 0; m < k; ++m) {
    GroupSchedule& g = sched.groups[m];
    g.reset_before_round.resize(sched.rounds_per_group);
    g.round_to_batch.resize(sched.rounds_per_group);
    const std::size_t offset = (m * stagger) % B;
    for (std::size_t r = 0; r < sched.rounds_per_group; ++r) {
      const std::size_t pos = offset + r;
      g.round_to_batch[r] = pos % B;
      // Reset at the very first round (fresh memory) and at every wrap
      // back to batch 0 (epoch boundary for this copy).
      g.reset_before_round[r] = (r == 0 || g.round_to_batch[r] == 0) ? 1 : 0;
    }
  }

  // ---- per-trainer work items ----
  sched.trainers.resize(parallel.total_trainers());
  for (std::size_t m = 0; m < k; ++m) {
    const std::size_t offset = (m * stagger) % B;
    for (std::size_t s = 0; s < j; ++s) {
      for (std::size_t c = 0; c < i; ++c) {
        const std::size_t rank = (m * j + s) * i + c;
        TrainerSchedule& ts = sched.trainers[rank];
        ts.rank = rank;
        ts.mem_copy = m;
        ts.subgroup = s;
        ts.chunk = c;
        ts.group_rank = s * i + c;
        // This subgroup starts a new batch at rounds r ≡ s (mod j).
        for (std::size_t r = s; r < sched.rounds_per_group; r += j) {
          const std::size_t pos = offset + r;
          const std::size_t batch = pos % B;
          const std::size_t cycle = pos / B;
          for (std::size_t v = 0; v < j; ++v) {
            WorkItem item;
            item.iteration = r + v;
            item.global_batch = batch;
            item.cycle = cycle;
            item.version = v;
            item.memory_ops = (v == 0);
            // Negative groups must differ across the j versions of one
            // batch and decorrelate across groups and cycles.
            item.neg_group = (cycle * j * k + m * j + v) % neg_groups;
            ts.items.push_back(item);
          }
        }
      }
    }
  }
  return sched;
}

}  // namespace disttgl
