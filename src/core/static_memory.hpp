// Static node memory (§3.1).
//
// DistTGL's model improvement: alongside the dynamic GRU memory, every
// node carries a *static* embedding capturing time-invariant information.
// Because it is batch-size independent, it restores the information that
// large-batch training loses, and it is pre-trained (then frozen) with
// the same self-supervised objective but no temporal signal — the paper
// pre-trains with a static GNN in DGL; here the pre-trainer is an
// embedding-table + MLP factorization of the training events, which
// plays the identical role (time-agnostic, task-supervised, no test-set
// leakage: only training-split events are used).
#pragma once

#include "graph/temporal_graph.hpp"
#include "sampling/batching.hpp"
#include "tensor/matrix.hpp"

namespace disttgl {

struct StaticPretrainConfig {
  std::size_t dim = 32;
  std::size_t epochs = 10;  // paper: 10 epochs (1 on GDELT)
  float lr = 0.05f;
  std::uint64_t seed = 1234;
};

// Pre-trains static embeddings on the training split only. If the graph
// carries raw node features, they seed the embedding table through a
// random projection before training (the GDELT case).
Matrix pretrain_static_memory(const TemporalGraph& graph, const EventSplit& split,
                              const StaticPretrainConfig& cfg);

}  // namespace disttgl
