#include "core/planner.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace disttgl {

double captured_fraction(const TemporalGraph& g, std::size_t begin,
                         std::size_t end, std::size_t batch_size) {
  DT_CHECK_LT(begin, end);
  DT_CHECK_GT(batch_size, 0u);
  std::size_t generated = 0, kept = 0;
  std::unordered_set<NodeId> uniq;
  for (std::size_t b = begin; b < end; b += batch_size) {
    const std::size_t e = std::min(b + batch_size, end);
    uniq.clear();
    for (std::size_t idx = b; idx < e; ++idx) {
      const TemporalEdge& ev = g.event(static_cast<EdgeId>(idx));
      generated += 2;  // one mail at each endpoint
      uniq.insert(ev.src);
      uniq.insert(ev.dst);
    }
    kept += uniq.size();  // COMB keeps one mail per node per batch
  }
  return generated == 0 ? 1.0
                        : static_cast<double>(kept) / static_cast<double>(generated);
}

Plan plan_training(const TemporalGraph& g, const EventSplit& split,
                   const PlannerInputs& in) {
  DT_CHECK_GT(in.gpus_per_machine, 0u);
  DT_CHECK_GT(in.machines, 0u);
  const std::size_t total_gpus = in.machines * in.gpus_per_machine;

  // 1. Largest global batch above the capture threshold (geometric scan,
  //    capped so one epoch still has a few batches).
  const std::size_t train_n = split.num_train();
  const std::size_t cap = std::max<std::size_t>(in.min_batch, train_n / 4);
  std::size_t best_batch = in.min_batch;
  double best_fraction =
      captured_fraction(g, split.train_begin, split.train_end, best_batch);
  for (std::size_t bs = in.min_batch * 2; bs <= cap; bs *= 2) {
    const double f = captured_fraction(g, split.train_begin, split.train_end, bs);
    if (f < in.capture_threshold) break;
    best_batch = bs;
    best_fraction = f;
  }

  Plan plan;
  plan.capture_fraction = best_fraction;

  // 2. Mini-batch parallelism up to GPU saturation.
  std::size_t i = std::max<std::size_t>(1, best_batch / in.gpu_saturation_batch);
  i = std::min(i, total_gpus);
  // i must divide the trainer grid.
  while (total_gpus % i != 0) --i;
  plan.parallel.i = i;
  plan.local_batch = std::max<std::size_t>(1, best_batch / i);
  plan.global_batch = plan.local_batch * i;

  // 3. Memory parallelism: as many copies as host memory allows, at
  //    least one per machine, and dividing the remaining trainer grid.
  const std::size_t remaining = total_gpus / i;
  std::size_t k = std::min(remaining, in.machines * in.mem_copies_per_machine);
  while (remaining % k != 0) --k;
  k = std::max(k, in.machines);  // memory never crosses machines
  while (remaining % k != 0) ++k;
  DT_CHECK_LE(k, remaining);
  plan.parallel.k = k;

  // 4. Epoch parallelism fills the rest.
  plan.parallel.j = remaining / k;
  plan.parallel.machines = in.machines;
  plan.parallel.gpus_per_machine = in.gpus_per_machine;
  DT_CHECK_EQ(plan.parallel.total_trainers(), total_gpus);
  return plan;
}

}  // namespace disttgl
