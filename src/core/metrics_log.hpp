// Convergence recording: the data behind Figures 1, 6, 9, 10, 11.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace disttgl {

struct ConvergencePoint {
  std::size_t iteration = 0;
  double val_metric = 0.0;  // MRR or F1-micro
};

class ConvergenceLog {
 public:
  void add(std::size_t iteration, double val_metric) {
    points_.push_back({iteration, val_metric});
  }

  const std::vector<ConvergencePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  double best_val() const;
  // First iteration whose validation metric reaches `fraction` of the
  // best — the paper's "iterations before convergence" (Fig 10b).
  // Returns the last iteration if never reached.
  std::size_t iterations_to_fraction(double fraction) const;

  // Prints "iter metric" rows prefixed by `label`.
  void print_series(const std::string& label) const;

 private:
  std::vector<ConvergencePoint> points_;
};

// Per-iteration pipeline phase attribution: seconds spent generating
// (or, in the threaded system, blocked waiting on) the iteration's
// mini-batches, seconds computing on them, and seconds inside the
// memory protocol — blocked in a daemon read/write (threaded) or
// gathering/scattering directly (sequential). This is what lets
// bench/training_throughput attribute an end-to-end win to batch
// generation or memory I/O rather than to the kernels.
struct IterationTiming {
  double batch_gen_seconds = 0.0;
  double compute_seconds = 0.0;
  double mem_read_wait_seconds = 0.0;
  double mem_write_wait_seconds = 0.0;
};

class TimingLog {
 public:
  void add(double batch_gen_seconds, double compute_seconds,
           double mem_read_wait_seconds = 0.0,
           double mem_write_wait_seconds = 0.0) {
    entries_.push_back({batch_gen_seconds, compute_seconds,
                        mem_read_wait_seconds, mem_write_wait_seconds});
  }

  const std::vector<IterationTiming>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  double total_batch_gen() const;
  double total_compute() const;
  double total_mem_read_wait() const;
  double total_mem_write_wait() const;

 private:
  std::vector<IterationTiming> entries_;
};

}  // namespace disttgl
