#include "core/config.hpp"

#include "util/check.hpp"

namespace disttgl {

// Validation lives out-of-line so every orchestrator shares one set of
// invariants (and so the header stays cheap to include).
void validate(const TrainingConfig& cfg) {
  DT_CHECK_GT(cfg.model.mem_dim, 0u);
  DT_CHECK_GT(cfg.model.time_dim, 0u);
  DT_CHECK_GT(cfg.model.num_heads, 0u);
  DT_CHECK_EQ(cfg.model.attn_dim % cfg.model.num_heads, 0u);
  DT_CHECK_GT(cfg.model.num_neighbors, 0u);
  DT_CHECK_GT(cfg.parallel.i, 0u);
  DT_CHECK_GT(cfg.parallel.j, 0u);
  DT_CHECK_GT(cfg.parallel.k, 0u);
  DT_CHECK_GE(cfg.parallel.k, cfg.parallel.machines);
  DT_CHECK_GT(cfg.local_batch, 0u);
  DT_CHECK_GT(cfg.epochs, 0u);
  DT_CHECK_GT(cfg.neg_groups, 0u);
  DT_CHECK_GT(cfg.base_lr, 0.0f);
  // The process fabrics are single-machine (POSIX shm; the TCP fabric
  // simulates hosts over loopback); cross-machine layouts stay on the
  // simulated fabric model.
  DT_CHECK_MSG(cfg.fabric.kind == FabricKind::kThread ||
                   cfg.parallel.machines <= 1,
               "FabricKind::kProc/kTcp require machines == 1");
  DT_CHECK_GT(cfg.fabric.timeout_ms, 0u);
  DT_CHECK_GT(cfg.fabric.launch_timeout_ms, 0u);
  if (cfg.fabric.kind == FabricKind::kTcp) {
    DT_CHECK_GT(cfg.fabric.tcp.hosts, 0u);
    DT_CHECK_MSG(cfg.fabric.tcp.hosts <= cfg.parallel.total_trainers(),
                 "fabric.tcp.hosts must not exceed the trainer world");
    DT_CHECK_MSG(!cfg.fabric.tcp.bind_host.empty(),
                 "fabric.tcp.bind_host must be set");
    DT_CHECK_GT(cfg.fabric.tcp.connect_timeout_ms, 0u);
    DT_CHECK_GT(cfg.fabric.tcp.listen_backlog, 0u);
  }
  DT_CHECK_MSG(cfg.recovery.checkpoint_every == 0 ||
                   !cfg.recovery.checkpoint_dir.empty(),
               "recovery.checkpoint_every requires recovery.checkpoint_dir");
  DT_CHECK_GT(cfg.recovery.keep_last, 0u);
  // A stalled *thread* would wedge the whole in-process group (no parent
  // to kill it); stall injection is a forked-fabric chaos knob only.
  DT_CHECK_MSG(!cfg.fabric.fault.stall_armed ||
                   cfg.fabric.kind != FabricKind::kThread,
               "fabric.fault.stall_armed requires a forked fabric");
  DT_CHECK_MSG(cfg.recovery.heartbeat_ms == 0 ||
                   cfg.fabric.kind != FabricKind::kThread,
               "recovery.heartbeat_ms requires a forked fabric");
  // Chaos injection wraps the leader-ring endpoints, which only exist on
  // the TCP fabric.
  DT_CHECK_MSG(!cfg.fabric.chaos.enabled ||
                   cfg.fabric.kind == FabricKind::kTcp,
               "fabric.chaos requires FabricKind::kTcp");
  const auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  DT_CHECK_MSG(prob_ok(cfg.fabric.chaos.drop_prob) &&
                   prob_ok(cfg.fabric.chaos.duplicate_prob) &&
                   prob_ok(cfg.fabric.chaos.delay_prob) &&
                   prob_ok(cfg.fabric.chaos.flip_prob) &&
                   prob_ok(cfg.fabric.chaos.truncate_prob),
               "fabric.chaos probabilities must lie in [0, 1]");
  DT_CHECK_MSG(cfg.fabric.chaos.delay_ms <= 60'000,
               "fabric.chaos.delay_ms above 60 s would outlive every "
               "fabric deadline");
  DT_CHECK_MSG(cfg.fabric.retry.max_attempts == 0 ||
                   cfg.fabric.kind == FabricKind::kTcp,
               "fabric.retry (ring reconnect) requires FabricKind::kTcp");
  DT_CHECK_MSG((cfg.recovery.restart_window_ms == 0) ==
                   (cfg.recovery.restart_window_max == 0),
               "recovery.restart_window_ms and restart_window_max must be "
               "set together");
}

}  // namespace disttgl
