#include "core/config.hpp"

#include "util/check.hpp"

namespace disttgl {

// Validation lives out-of-line so every orchestrator shares one set of
// invariants (and so the header stays cheap to include).
void validate(const TrainingConfig& cfg) {
  DT_CHECK_GT(cfg.model.mem_dim, 0u);
  DT_CHECK_GT(cfg.model.time_dim, 0u);
  DT_CHECK_GT(cfg.model.num_heads, 0u);
  DT_CHECK_EQ(cfg.model.attn_dim % cfg.model.num_heads, 0u);
  DT_CHECK_GT(cfg.model.num_neighbors, 0u);
  DT_CHECK_GT(cfg.parallel.i, 0u);
  DT_CHECK_GT(cfg.parallel.j, 0u);
  DT_CHECK_GT(cfg.parallel.k, 0u);
  DT_CHECK_GE(cfg.parallel.k, cfg.parallel.machines);
  DT_CHECK_GT(cfg.local_batch, 0u);
  DT_CHECK_GT(cfg.epochs, 0u);
  DT_CHECK_GT(cfg.neg_groups, 0u);
  DT_CHECK_GT(cfg.base_lr, 0.0f);
  // The process fabric is single-machine (POSIX shm + UNIX sockets);
  // cross-machine layouts stay on the simulated fabric model.
  DT_CHECK_MSG(cfg.fabric.kind == FabricKind::kThread ||
                   cfg.parallel.machines <= 1,
               "FabricKind::kProc requires machines == 1");
  DT_CHECK_GT(cfg.fabric.timeout_ms, 0u);
  DT_CHECK_GT(cfg.fabric.launch_timeout_ms, 0u);
  DT_CHECK_MSG(cfg.recovery.checkpoint_every == 0 ||
                   !cfg.recovery.checkpoint_dir.empty(),
               "recovery.checkpoint_every requires recovery.checkpoint_dir");
  DT_CHECK_GT(cfg.recovery.keep_last, 0u);
  // A stalled *thread* would wedge the whole in-process group (no parent
  // to kill it); stall injection is a proc-fabric chaos knob only.
  DT_CHECK_MSG(!cfg.fabric.fault.stall_armed ||
                   cfg.fabric.kind == FabricKind::kProc,
               "fabric.fault.stall_armed requires FabricKind::kProc");
  DT_CHECK_MSG(cfg.recovery.heartbeat_ms == 0 ||
                   cfg.fabric.kind == FabricKind::kProc,
               "recovery.heartbeat_ms requires FabricKind::kProc");
}

}  // namespace disttgl
