#include "core/config.hpp"

#include "util/check.hpp"

namespace disttgl {

// Validation lives out-of-line so every orchestrator shares one set of
// invariants (and so the header stays cheap to include).
void validate(const TrainingConfig& cfg) {
  DT_CHECK_GT(cfg.model.mem_dim, 0u);
  DT_CHECK_GT(cfg.model.time_dim, 0u);
  DT_CHECK_GT(cfg.model.num_heads, 0u);
  DT_CHECK_EQ(cfg.model.attn_dim % cfg.model.num_heads, 0u);
  DT_CHECK_GT(cfg.model.num_neighbors, 0u);
  DT_CHECK_GT(cfg.parallel.i, 0u);
  DT_CHECK_GT(cfg.parallel.j, 0u);
  DT_CHECK_GT(cfg.parallel.k, 0u);
  DT_CHECK_GE(cfg.parallel.k, cfg.parallel.machines);
  DT_CHECK_GT(cfg.local_batch, 0u);
  DT_CHECK_GT(cfg.epochs, 0u);
  DT_CHECK_GT(cfg.neg_groups, 0u);
  DT_CHECK_GT(cfg.base_lr, 0.0f);
  // The process fabrics are single-machine (POSIX shm; the TCP fabric
  // simulates hosts over loopback); cross-machine layouts stay on the
  // simulated fabric model.
  DT_CHECK_MSG(cfg.fabric.kind == FabricKind::kThread ||
                   cfg.parallel.machines <= 1,
               "FabricKind::kProc/kTcp require machines == 1");
  DT_CHECK_GT(cfg.fabric.timeout_ms, 0u);
  DT_CHECK_GT(cfg.fabric.launch_timeout_ms, 0u);
  if (cfg.fabric.kind == FabricKind::kTcp) {
    DT_CHECK_GT(cfg.fabric.tcp.hosts, 0u);
    DT_CHECK_MSG(cfg.fabric.tcp.hosts <= cfg.parallel.total_trainers(),
                 "fabric.tcp.hosts must not exceed the trainer world");
    DT_CHECK_MSG(!cfg.fabric.tcp.bind_host.empty(),
                 "fabric.tcp.bind_host must be set");
    DT_CHECK_GT(cfg.fabric.tcp.connect_timeout_ms, 0u);
    DT_CHECK_GT(cfg.fabric.tcp.listen_backlog, 0u);
  }
  DT_CHECK_MSG(cfg.recovery.checkpoint_every == 0 ||
                   !cfg.recovery.checkpoint_dir.empty(),
               "recovery.checkpoint_every requires recovery.checkpoint_dir");
  DT_CHECK_GT(cfg.recovery.keep_last, 0u);
  // A stalled *thread* would wedge the whole in-process group (no parent
  // to kill it); stall injection is a forked-fabric chaos knob only.
  DT_CHECK_MSG(!cfg.fabric.fault.stall_armed ||
                   cfg.fabric.kind != FabricKind::kThread,
               "fabric.fault.stall_armed requires a forked fabric");
  DT_CHECK_MSG(cfg.recovery.heartbeat_ms == 0 ||
                   cfg.fabric.kind != FabricKind::kThread,
               "recovery.heartbeat_ms requires a forked fabric");
}

}  // namespace disttgl
