#include "core/metrics_log.hpp"

#include <algorithm>

namespace disttgl {

double ConvergenceLog::best_val() const {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.val_metric);
  return best;
}

std::size_t ConvergenceLog::iterations_to_fraction(double fraction) const {
  if (points_.empty()) return 0;
  const double target = best_val() * fraction;
  for (const auto& p : points_) {
    if (p.val_metric >= target) return p.iteration;
  }
  return points_.back().iteration;
}

void ConvergenceLog::print_series(const std::string& label) const {
  for (const auto& p : points_) {
    std::printf("%s iter=%zu val=%.4f\n", label.c_str(), p.iteration,
                p.val_metric);
  }
}

double TimingLog::total_batch_gen() const {
  double s = 0.0;
  for (const auto& e : entries_) s += e.batch_gen_seconds;
  return s;
}

double TimingLog::total_compute() const {
  double s = 0.0;
  for (const auto& e : entries_) s += e.compute_seconds;
  return s;
}

double TimingLog::total_mem_read_wait() const {
  double s = 0.0;
  for (const auto& e : entries_) s += e.mem_read_wait_seconds;
  return s;
}

double TimingLog::total_mem_write_wait() const {
  double s = 0.0;
  for (const auto& e : entries_) s += e.mem_write_wait_seconds;
  return s;
}

}  // namespace disttgl
