#include "core/threaded_trainer.hpp"

#include <algorithm>
#include <thread>

#include "util/timer.hpp"

namespace disttgl {

ThreadedTrainer::ThreadedTrainer(const TrainingConfig& cfg,
                                 const TemporalGraph& graph,
                                 const Matrix* static_memory)
    : cfg_(cfg),
      graph_(&graph),
      static_memory_(static_memory),
      split_(chronological_split(graph, cfg.train_frac, cfg.val_frac)) {
  const auto& par = cfg_.parallel;
  const std::size_t global_batch = cfg_.local_batch * par.i;
  batches_ = make_batches(split_.train_begin, split_.train_end, global_batch);
  schedule_ = build_schedule(par, batches_.size(), cfg_.epochs, cfg_.neg_groups);

  sampler_ = std::make_unique<NeighborSampler>(graph, cfg_.model.num_neighbors);
  negatives_ = std::make_unique<NegativeSampler>(graph, cfg_.neg_groups,
                                                 cfg_.seed ^ 0x5eedULL);
  const bool link = !graph.has_edge_labels();
  builder_ = std::make_unique<MiniBatchBuilder>(graph, *sampler_, *negatives_,
                                                link ? cfg_.num_neg : 0);

  // Every replica must be initialized with an identical RNG stream —
  // reproduce SequentialTrainer's derivation exactly.
  const std::size_t n = par.total_trainers();
  models_.reserve(n);
  optimizers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    Rng root(cfg_.seed);
    Rng model_rng = root.split();
    models_.push_back(
        std::make_unique<TGNModel>(cfg_.model, graph, static_memory, model_rng));
    optimizers_.push_back(std::make_unique<nn::Adam>(
        models_.back()->parameters(), nn::AdamOptions{.lr = cfg_.lr()}));
  }

  const std::size_t mail_dim = models_[0]->mail_raw_dim();
  states_.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m)
    states_.emplace_back(graph.num_nodes(), cfg_.model.mem_dim, mail_dim);

  comm_ = std::make_unique<dist::ThreadComm>(n);
}

std::pair<std::size_t, std::size_t> ThreadedTrainer::chunk_events(
    std::size_t global_batch, std::size_t chunk) const {
  const BatchRange& range = batches_[global_batch];
  const std::size_t per = (range.size() + cfg_.parallel.i - 1) / cfg_.parallel.i;
  const std::size_t begin = std::min(range.begin + chunk * per, range.end);
  const std::size_t end = std::min(begin + per, range.end);
  return {begin, end};
}

void ThreadedTrainer::trainer_thread(std::size_t rank) {
  const auto& par = cfg_.parallel;
  const TrainerSchedule& ts = schedule_.trainers[rank];
  TGNModel& model = *models_[rank];
  nn::Adam& opt = *optimizers_[rank];
  auto params = model.parameters();
  MemoryDaemon& daemon = *daemons_[ts.mem_copy];

  // Prefetch requests: one per version-0 (memory-op) item. Empty chunks
  // yield no request but still take part in the daemon protocol.
  std::vector<Prefetcher::Request> requests;
  for (const WorkItem& item : ts.items) {
    if (!item.memory_ops) continue;
    const auto [begin, end] = chunk_events(item.global_batch, ts.chunk);
    if (begin >= end) continue;
    Prefetcher::Request req;
    req.batch_idx = item.global_batch * par.i + ts.chunk;
    req.begin = begin;
    req.end = end;
    if (model.task() == TGNModel::Task::kLinkPrediction) {
      for (std::size_t v = 0; v < par.j; ++v)
        req.neg_groups.push_back(
            (item.cycle * par.j * par.k + ts.mem_copy * par.j + v) %
            cfg_.neg_groups);
    }
    requests.push_back(std::move(req));
  }
  Prefetcher prefetcher(*builder_, std::move(requests), /*ahead=*/par.j + 1);

  std::optional<MiniBatch> batch;
  std::optional<MemorySlice> slice;
  std::vector<float> grads(nn::flat_size(params));
  double local_loss = 0.0;
  std::size_t local_count = 0;

  std::size_t cursor = 0;
  for (std::size_t t = 0; t < schedule_.total_iterations; ++t) {
    const WorkItem* item = nullptr;
    if (cursor < ts.items.size() && ts.items[cursor].iteration == t)
      item = &ts.items[cursor];

    std::fill(grads.begin(), grads.end(), 0.0f);
    bool computed = false;
    MemoryWrite write;
    bool post_write = false;

    if (item != nullptr) {
      if (item->memory_ops) {
        const auto [begin, end] = chunk_events(item->global_batch, ts.chunk);
        if (begin >= end) {
          // Empty chunk: keep the daemon protocol in lockstep.
          batch.reset();
          slice.reset();
          daemon.read(ts.group_rank, {});
          post_write = true;  // empty write below
        } else {
          batch = prefetcher.next();
          DT_CHECK(batch.has_value());
          slice = daemon.read(ts.group_rank, batch->unique_nodes);
          post_write = true;
        }
      }
      if (batch.has_value()) {
        model.zero_grad();
        TGNModel::StepResult res =
            model.train_step(*batch, *slice, item->version,
                             item->memory_ops ? &write : nullptr);
        local_loss += res.loss;
        ++local_count;
        computed = true;
      }
      ++cursor;
    }

    if (post_write) daemon.write(ts.group_rank, std::move(write));

    if (computed) {
      nn::flatten_grads(params, grads);
    }
    comm_->allreduce_mean(rank, grads);
    nn::unflatten_grads(grads, params);
    nn::clip_grad_norm(params, cfg_.grad_clip);
    opt.step();
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    loss_sum_ += local_loss;
    loss_count_ += local_count;
  }
}

ThreadedTrainResult ThreadedTrainer::train() {
  const auto& par = cfg_.parallel;
  const std::size_t n = par.total_trainers();

  daemons_.clear();
  for (std::size_t m = 0; m < par.k; ++m) {
    DaemonConfig dc;
    dc.i = par.i;
    dc.j = par.j;
    dc.reset_before_round = schedule_.groups[m].reset_before_round;
    daemons_.push_back(std::make_unique<MemoryDaemon>(states_[m], dc));
    daemons_.back()->start();
  }

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    threads.emplace_back([this, r] { trainer_thread(r); });
  for (auto& th : threads) th.join();
  for (auto& d : daemons_) d->join();

  ThreadedTrainResult result;
  result.wall_seconds = timer.seconds();
  result.iterations = schedule_.total_iterations;
  const double traversals = static_cast<double>(cfg_.epochs) *
                            static_cast<double>(split_.num_train());
  result.events_per_second = traversals / result.wall_seconds;

  // Final evaluation on memory copy 0 (validation then test, one clone).
  MemoryState clone = states_[0];
  EvalConfig ec;
  ec.batch_size = cfg_.local_batch;
  ec.num_negs = cfg_.eval_negs;
  ec.seed = cfg_.seed ^ 0xe7a1ULL;
  result.final_val = evaluate_range(*models_[0], clone, *graph_, *sampler_,
                                    split_.train_end, split_.val_end, ec)
                         .metric;
  result.final_test = evaluate_range(*models_[0], clone, *graph_, *sampler_,
                                     split_.val_end, split_.test_end, ec)
                          .metric;
  nn::flatten_values(models_[0]->parameters(), result.weights);
  return result;
}

}  // namespace disttgl
