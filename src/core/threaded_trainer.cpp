#include "core/threaded_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <span>
#include <thread>

#include "core/checkpoint.hpp"
#include "distributed/launch.hpp"
#include "distributed/socket.hpp"
#include "distributed/wire.hpp"
#include "util/timer.hpp"

namespace disttgl {

ThreadedTrainer::ThreadedTrainer(const TrainingConfig& cfg,
                                 const TemporalGraph& graph,
                                 const Matrix* static_memory)
    : cfg_(cfg),
      graph_(&graph),
      static_memory_(static_memory),
      split_(chronological_split(graph, cfg.train_frac, cfg.val_frac)) {
  const auto& par = cfg_.parallel;
  const std::size_t global_batch = cfg_.local_batch * par.i;
  batches_ = make_batches(split_.train_begin, split_.train_end, global_batch);
  schedule_ = build_schedule(par, batches_.size(), cfg_.epochs, cfg_.neg_groups);

  sampler_ = std::make_unique<NeighborSampler>(graph, cfg_.model.num_neighbors);
  negatives_ = std::make_unique<NegativeSampler>(graph, cfg_.neg_groups,
                                                 cfg_.seed ^ 0x5eedULL);

  const std::size_t n = par.total_trainers();
  prefetch_ahead_ = cfg_.prefetch_ahead != 0 ? cfg_.prefetch_ahead : par.j + 1;
  if (cfg_.pipeline == PipelineMode::kPooled) {
    const std::size_t workers =
        cfg_.prefetch_workers != 0 ? cfg_.prefetch_workers : n;
    prefetch_workers_ = std::make_unique<ThreadPool>(workers);
    // +1: the trainer holds one batch while `ahead` more are in flight.
    const std::size_t slots = cfg_.batch_pool_slots != 0
                                  ? cfg_.batch_pool_slots
                                  : prefetch_ahead_ + 1;
    batch_pools_.reserve(n);
    for (std::size_t r = 0; r < n; ++r)
      batch_pools_.push_back(std::make_unique<MiniBatchPool>(slots));
  }

  // In pooled mode on a multi-core host the prefetch workers double as
  // the sample_many fan-out pool: a construction job's root ranges
  // spread over idle workers (parallel_for's caller participation makes
  // calling it from a job on the same pool safe), and output is
  // thread-count independent so the equivalence contract is unaffected.
  // On a single hardware thread the fan-out is pure handoff overhead
  // (measured +2x batch_gen in BENCH_training.json), so it stays serial.
  ThreadPool* sampler_fanout = std::thread::hardware_concurrency() > 1
                                   ? prefetch_workers_.get()
                                   : nullptr;
  const bool link = !graph.has_edge_labels();
  builder_ = std::make_unique<MiniBatchBuilder>(graph, *sampler_, *negatives_,
                                                link ? cfg_.num_neg : 0,
                                                sampler_fanout);

  // Every replica must be initialized with an identical RNG stream —
  // reproduce SequentialTrainer's derivation exactly.
  models_.reserve(n);
  optimizers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    Rng root(cfg_.seed);
    Rng model_rng = root.split();
    models_.push_back(
        std::make_unique<TGNModel>(cfg_.model, graph, static_memory, model_rng));
    // Flat storage feeds the gradient-sync layer zero-copy: the comm
    // operates directly on the replica's contiguous grad/value buffers.
    models_.back()->freeze_flat_storage();
    optimizers_.push_back(std::make_unique<nn::Adam>(
        models_.back()->parameters(), nn::AdamOptions{.lr = cfg_.lr()}));
  }

  const std::size_t mail_dim = models_[0]->mail_raw_dim();
  states_.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m)
    states_.emplace_back(graph.num_nodes(), cfg_.model.mem_dim, mail_dim);

  comm_ = std::make_unique<dist::ThreadComm>(
      n, dist::Comm::Options{
             .chunk_elems = cfg_.comm_chunk_elems,
             .wait = WaitPolicy{.spin_polls = cfg_.fabric.spin_polls}});
  comm_->reserve(models_[0]->num_parameters());

  rank_loss_.assign(n, 0.0);
  rank_loss_count_.assign(n, 0);
  rank_events_.assign(n, 0);

  fingerprint_ =
      config_fingerprint(cfg_, graph.num_nodes(), graph.num_events());
  if (!cfg_.recovery.resume_from.empty()) restore_from_snapshot();
}

void ThreadedTrainer::restore_from_snapshot() {
  const std::string& stem = cfg_.recovery.resume_from;
  const auto& par = cfg_.parallel;
  const CoreShard core = read_core_shard(stem);
  if (core.fingerprint != fingerprint_)
    throw CheckpointError(
        CheckpointErrc::kFingerprintMismatch, stem + ".core",
        "snapshot " + stem + " belongs to a different run configuration",
        fingerprint_, core.fingerprint);
  if (core.world != par.total_trainers() || core.mem_copies != par.k)
    throw CheckpointError(CheckpointErrc::kShapeMismatch, stem + ".core",
                          "snapshot " + stem + " world/memory geometry "
                          "disagrees with the configuration",
                          par.total_trainers(), core.world);
  if (core.weights.size() != models_[0]->num_parameters())
    throw CheckpointError(CheckpointErrc::kShapeMismatch, stem + ".core",
                          "snapshot weight count disagrees with the model",
                          models_[0]->num_parameters(), core.weights.size());
  if (core.iteration >= schedule_.total_iterations)
    throw CheckpointError(CheckpointErrc::kShapeMismatch, stem + ".core",
                          "snapshot iteration is past the end of the run",
                          schedule_.total_iterations, core.iteration);
  for (auto& model : models_) {
    const std::span<float> values = model->flat_values();
    std::copy(core.weights.begin(), core.weights.end(), values.begin());
  }
  for (std::size_t m = 0; m < par.k; ++m)
    apply_mem_shard(read_mem_shard(stem, m), states_[m]);
  start_iteration_ = core.iteration;
}

// Fused allreduce→step chunk hook: global grad-clip scale from the
// collective's deterministic norm, then Adam over the owned flat range.
namespace {
struct FusedStepCtx {
  nn::Adam* opt;
  std::span<float> grads;
  float max_norm;
};

void fused_chunk_step(void* ctx, std::size_t lo, std::size_t hi,
                      double mean_grad_sq_norm) {
  auto* s = static_cast<FusedStepCtx*>(ctx);
  const float norm = static_cast<float>(std::sqrt(mean_grad_sq_norm));
  if (norm > s->max_norm && norm > 0.0f) {
    const float scale = s->max_norm / norm;
    for (std::size_t i = lo; i < hi; ++i) s->grads[i] *= scale;
  }
  s->opt->step_range(lo, hi);
}
}  // namespace

std::pair<std::size_t, std::size_t> ThreadedTrainer::chunk_events(
    std::size_t global_batch, std::size_t chunk) const {
  const BatchRange& range = batches_[global_batch];
  const std::size_t per = (range.size() + cfg_.parallel.i - 1) / cfg_.parallel.i;
  const std::size_t begin = std::min(range.begin + chunk * per, range.end);
  const std::size_t end = std::min(begin + per, range.end);
  return {begin, end};
}

void ThreadedTrainer::trainer_thread(std::size_t rank) {
  try {
    run_rank(rank, *daemons_[schedule_.trainers[rank].mem_copy], *comm_);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (!first_failure_) first_failure_ = std::current_exception();
    }
    // Poison every rendezvous point so siblings blocked in the
    // collective or the daemon protocol fail kAborted instead of
    // hanging on a partner that will never arrive.
    comm_->abort_session();
    for (auto& d : daemons_) d->abort();
  }
}

void ThreadedTrainer::run_rank(std::size_t rank, DaemonChannel& daemon,
                               dist::Comm& comm) {
  const auto& par = cfg_.parallel;
  const TrainerSchedule& ts = schedule_.trainers[rank];
  TGNModel& model = *models_[rank];
  nn::Adam& opt = *optimizers_[rank];
  const std::vector<nn::Parameter*>& params = model.cached_parameters();

  const std::size_t t0 = start_iteration_;

  // Prefetch requests: one per version-0 (memory-op) item. Empty chunks
  // yield no request but still take part in the daemon protocol. On
  // resume, items already executed by the snapshot yield none either.
  std::vector<Prefetcher::Request> requests;
  for (const WorkItem& item : ts.items) {
    if (!item.memory_ops || item.iteration < t0) continue;
    const auto [begin, end] = chunk_events(item.global_batch, ts.chunk);
    if (begin >= end) continue;
    Prefetcher::Request req;
    req.batch_idx = item.global_batch * par.i + ts.chunk;
    req.begin = begin;
    req.end = end;
    if (model.task() == TGNModel::Task::kLinkPrediction) {
      for (std::size_t v = 0; v < par.j; ++v)
        req.neg_groups.push_back(
            (item.cycle * par.j * par.k + ts.mem_copy * par.j + v) %
            cfg_.neg_groups);
    }
    requests.push_back(std::move(req));
  }
  const bool pooled = cfg_.pipeline == PipelineMode::kPooled;
  Prefetcher prefetcher(*builder_, std::move(requests), prefetch_ahead_,
                        pooled ? prefetch_workers_.get() : nullptr,
                        pooled ? batch_pools_[rank].get() : nullptr);

  PooledBatch batch;
  // The trainer's persistent memory-protocol buffers: the daemon gathers
  // straight into `slice` and applies writes straight from `write`
  // (zero-copy slots), so both keep their heap capacity for the whole
  // run — the memory path allocates nothing at steady state.
  MemorySlice slice;
  MemoryWrite write;
  TGNModel::StepResult step;  // reused result buffers (train_step_into)
  // Flat storage makes the gradient hand-off zero-copy: `grads` IS the
  // replica's parameter-gradient buffer, so the allreduce reduces it in
  // place and there is nothing to flatten or unflatten per iteration.
  const std::span<float> grads = model.flat_grads();
  const std::span<float> values = model.flat_values();
  const bool fused = cfg_.comm_fused_step;
  FusedStepCtx fused_ctx{&opt, grads, cfg_.grad_clip};
  double local_loss = 0.0;
  std::size_t local_count = 0;
  std::size_t local_events = 0;
  double wait_seconds = 0.0;
  double compute_seconds = 0.0;
  double read_wait_seconds = 0.0;
  double write_wait_seconds = 0.0;
  TimingLog iteration_log;  // filled for rank 0 only

  std::size_t cursor = 0;
  while (cursor < ts.items.size() && ts.items[cursor].iteration < t0) ++cursor;

  // A rank snapshotted mid version-chain resumes with the chain's read
  // slice from its shard and the chain's batch rebuilt here — the
  // builder is a pure function of (graph, batch range, negative
  // groups), so the rebuild is bit-identical to the batch the
  // interrupted run popped.
  MiniBatch resume_batch;
  bool resume_active = false;
  if (t0 > 0) {
    const RankShard shard = read_rank_shard(cfg_.recovery.resume_from, rank);
    if (shard.fingerprint != fingerprint_)
      throw CheckpointError(CheckpointErrc::kFingerprintMismatch,
                            cfg_.recovery.resume_from + ".rank" +
                                std::to_string(rank),
                            "rank shard belongs to a different run",
                            fingerprint_, shard.fingerprint);
    local_loss = shard.loss_sum;
    local_count = shard.loss_count;
    local_events = shard.events;
    opt.restore_state(shard.adam_steps, shard.adam_m, shard.adam_v);
    if (shard.has_slice) {
      DT_CHECK(cursor < ts.items.size());
      const WorkItem& item = ts.items[cursor];
      DT_CHECK(!item.memory_ops);  // mid-chain ⇒ next item recomputes
      slice.mem.resize(shard.slice_nodes, shard.slice_mem_dim);
      std::copy(shard.slice_mem.begin(), shard.slice_mem.end(),
                slice.mem.data());
      slice.mem_ts = shard.slice_mem_ts;
      slice.mail.resize(shard.slice_nodes, shard.slice_mail_dim);
      std::copy(shard.slice_mail.begin(), shard.slice_mail.end(),
                slice.mail.data());
      slice.mail_ts = shard.slice_mail_ts;
      slice.has_mail = shard.slice_flags;
      const auto [begin, end] = chunk_events(item.global_batch, ts.chunk);
      DT_CHECK_LT(begin, end);  // an empty chunk never holds a batch
      std::vector<std::size_t> groups;
      if (model.task() == TGNModel::Task::kLinkPrediction) {
        for (std::size_t v = 0; v < par.j; ++v)
          groups.push_back(
              (item.cycle * par.j * par.k + ts.mem_copy * par.j + v) %
              cfg_.neg_groups);
        DT_CHECK_EQ(groups[item.version], item.neg_group);
      }
      builder_->build_into(item.global_batch * par.i + ts.chunk, begin, end,
                           groups, resume_batch);
      resume_active = true;
    }
  }

  // Fault injection + heartbeat state (both inert by default).
  const FaultConfig& fault = cfg_.fabric.fault;
  // Forked fabrics (proc, tcp) have a parent process supervising: an
  // injected kill can be a real SIGKILL and a stall is survivable.
  const bool proc_fabric = cfg_.fabric.kind != FabricKind::kThread;
  const int control_fd = dist::child_control_fd();
  const auto beat_every = std::chrono::milliseconds(cfg_.recovery.heartbeat_ms);
  const bool beat = cfg_.recovery.heartbeat_ms != 0 && control_fd >= 0;
  // First beat fires on the first iteration: supervision starts at a
  // rank's first frame, so beating must begin before any injected stall
  // can silence the rank.
  auto last_beat = std::chrono::steady_clock::now() - beat_every;
  const std::size_t ckpt_every = cfg_.recovery.checkpoint_every;
  const bool snapshots = ckpt_every != 0 && !cfg_.recovery.checkpoint_dir.empty();

  for (std::size_t t = t0; t < schedule_.total_iterations; ++t) {
    if (fault.kill_armed && rank == fault.kill_rank &&
        t == fault.kill_iteration) {
      // Proc fabric: die exactly as a crashed worker does. Thread
      // fabric: a SIGKILL would take the whole test process, so the
      // typed throw stands in for the death.
      if (proc_fabric) ::raise(SIGKILL);
      dist::throw_fabric(dist::FabricErrc::kInjectedFault,
                         "injected kill on rank " + std::to_string(rank) +
                             " at iteration " + std::to_string(t));
    }
    if (fault.stall_armed && proc_fabric && rank == fault.stall_rank &&
        t == fault.stall_iteration) {
      // Hang without dying (and without heartbeating) — the supervisor
      // must notice via heartbeat silence, not via an EOF.
      std::this_thread::sleep_for(std::chrono::hours(24));
    }
    if (beat) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_beat >= beat_every) {
        dist::WireWriter w;
        w.put_u64(rank);
        w.put_u64(t);
        dist::write_frame(control_fd, dist::MsgType::kHeartbeat, w.bytes(),
                          dist::deadline_after(std::chrono::milliseconds(
                              cfg_.fabric.timeout_ms)));
        last_beat = now;
      }
    }
    const WorkItem* item = nullptr;
    if (cursor < ts.items.size() && ts.items[cursor].iteration == t)
      item = &ts.items[cursor];

    // Inactive iterations contribute zero gradients to the collective;
    // active ones overwrite this with train_step's accumulation.
    model.zero_grad();
    bool post_write = false;
    double iter_wait = 0.0;
    double iter_compute = 0.0;
    double iter_read_wait = 0.0;
    double iter_write_wait = 0.0;

    if (item != nullptr) {
      if (item->memory_ops) {
        resume_active = false;  // a fresh chain replaces the resumed one
        write.clear();  // train_step refills it for non-empty chunks
        const auto [begin, end] = chunk_events(item->global_batch, ts.chunk);
        if (begin >= end) {
          // Empty chunk: keep the daemon protocol in lockstep.
          batch.release();
          ScopedAccumulator acc(iter_read_wait);
          daemon.read(ts.group_rank, {}, slice);
          post_write = true;  // empty write below
        } else {
          {
            // Popping releases the previous batch back to the pool and
            // blocks only when generation hasn't kept ahead of compute.
            ScopedAccumulator acc(iter_wait);
            batch = prefetcher.next();
          }
          DT_CHECK(batch.has_value());
          {
            ScopedAccumulator acc(iter_read_wait);
            daemon.read(ts.group_rank, batch->unique_nodes, slice);
          }
          post_write = true;
        }
      }
      const MiniBatch* mb = batch.has_value()
                                ? &*batch
                                : (resume_active ? &resume_batch : nullptr);
      if (mb != nullptr) {
        ScopedAccumulator acc(iter_compute);
        model.train_step_into(*mb, slice, item->version,
                              item->memory_ops ? &write : nullptr, step);
        local_loss += step.loss;
        ++local_count;
        local_events += mb->num_pos();
      }
      ++cursor;
    }

    if (post_write) {
      ScopedAccumulator acc(iter_write_wait);
      daemon.write(ts.group_rank, write);
    }

    if (fused) {
      // One collective: reduce-scatter mean grads, clip + Adam on the
      // owned chunks only, allgather updated weights.
      opt.begin_step();
      comm.allreduce_step(rank, grads, values, &fused_chunk_step, &fused_ctx);
    } else {
      comm.allreduce_mean(rank, grads);
      nn::clip_grad_norm(params, cfg_.grad_clip);
      opt.step();
    }

    wait_seconds += iter_wait;
    compute_seconds += iter_compute;
    read_wait_seconds += iter_read_wait;
    write_wait_seconds += iter_write_wait;
    if (rank == 0)
      iteration_log.add(iter_wait, iter_compute, iter_read_wait,
                        iter_write_wait);

    if (snapshots && (t + 1) % ckpt_every == 0 &&
        t + 1 < schedule_.total_iterations) {
      // Mid-chain ⇔ the next item recomputes on the currently held
      // batch+slice, so the read slice must ride along in the shard.
      const bool mid_chain = cursor < ts.items.size() &&
                             !ts.items[cursor].memory_ops &&
                             (batch.has_value() || resume_active);
      write_snapshot(rank, t + 1, daemon, comm, opt, local_loss, local_count,
                     local_events, mid_chain, slice);
    }
  }

  batch.release();  // hand the buffer back before the prefetcher drains
  const double build_seconds = prefetcher.build_seconds();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    rank_loss_[rank] = local_loss;
    rank_loss_count_[rank] = local_count;
    rank_events_[rank] = local_events;
    batch_build_seconds_ += build_seconds;
    prefetch_wait_seconds_ += wait_seconds;
    compute_seconds_ += compute_seconds;
    mem_read_wait_seconds_ += read_wait_seconds;
    mem_write_wait_seconds_ += write_wait_seconds;
    if (rank == 0) rank0_timings_ = std::move(iteration_log);
  }
}

void ThreadedTrainer::write_snapshot(std::size_t rank, std::size_t done,
                                     DaemonChannel& daemon, dist::Comm& comm,
                                     nn::Adam& opt, double loss_sum,
                                     std::size_t loss_count,
                                     std::size_t events, bool mid_chain,
                                     const MemorySlice& slice) {
  const TrainerSchedule& ts = schedule_.trainers[rank];
  const std::string stem =
      snapshot_stem(cfg_.recovery.checkpoint_dir, done);

  // Announce the save *before* the fsync-bound shard writes: the
  // supervisor widens this rank's heartbeat window (checkpoint grace in
  // ProcGroup::wait) so a slow disk doesn't read as a dead rank.
  {
    const int control_fd = dist::child_control_fd();
    if (control_fd >= 0) {
      dist::WireWriter w;
      w.put_u64(done);
      dist::write_frame(control_fd, dist::MsgType::kCheckpointNote, w.bytes(),
                        dist::deadline_after(std::chrono::milliseconds(
                            cfg_.fabric.timeout_ms)));
    }
  }
  if (cfg_.fabric.fault.slow_save_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.fabric.fault.slow_save_ms));

  RankShard rs;
  rs.fingerprint = fingerprint_;
  rs.iteration = done;
  rs.rank = rank;
  rs.loss_sum = loss_sum;
  rs.loss_count = loss_count;
  rs.events = events;
  rs.adam_steps = opt.steps_taken();
  rs.adam_m.assign(opt.moment1().begin(), opt.moment1().end());
  rs.adam_v.assign(opt.moment2().begin(), opt.moment2().end());
  rs.has_slice = mid_chain;
  if (mid_chain) {
    rs.slice_nodes = slice.size();
    rs.slice_mem_dim = slice.mem.cols();
    rs.slice_mail_dim = slice.mail.cols();
    rs.slice_mem.assign(slice.mem.data(), slice.mem.data() + slice.mem.size());
    rs.slice_mem_ts = slice.mem_ts;
    rs.slice_mail.assign(slice.mail.data(),
                         slice.mail.data() + slice.mail.size());
    rs.slice_mail_ts = slice.mail_ts;
    rs.slice_flags = slice.has_mail;
  }
  write_rank_shard(stem, rs);

  if (ts.group_rank == 0) {
    // Quiesce the group's daemon: every round before `done` is fully
    // served (writes applied), and no round-`done` traffic can start
    // until every rank passes the barrier below — so this capture races
    // nothing, including the (deferred) epoch-wrap reset.
    daemon.await_rounds(std::min(done, schedule_.rounds_per_group));
    write_mem_shard(stem, make_mem_shard(states_[ts.mem_copy], fingerprint_,
                                         done, ts.mem_copy));
  }
  if (rank == 0) {
    CoreShard cs;
    cs.fingerprint = fingerprint_;
    cs.iteration = done;
    cs.world = cfg_.parallel.total_trainers();
    cs.mem_copies = cfg_.parallel.k;
    const std::span<const float> values = models_[rank]->flat_values();
    cs.weights.assign(values.begin(), values.end());
    write_core_shard(stem, cs);
  }

  // Every shard durable ⇒ commit. Only rank 0 lingers to write the
  // marker and prune; everyone else resumes training immediately.
  comm.barrier(rank);
  if (rank == 0) {
    CommitShard commit;
    commit.fingerprint = fingerprint_;
    commit.iteration = done;
    commit.world = cfg_.parallel.total_trainers();
    commit.mem_copies = cfg_.parallel.k;
    write_commit_shard(stem, commit);
    retain_snapshots(cfg_.recovery.checkpoint_dir, cfg_.recovery.keep_last);
    const int control_fd = dist::child_control_fd();
    if (control_fd >= 0) {
      dist::WireWriter w;
      w.put_u64(done);
      dist::write_frame(control_fd, dist::MsgType::kCheckpointNote, w.bytes(),
                        dist::deadline_after(std::chrono::milliseconds(
                            cfg_.fabric.timeout_ms)));
    }
  }
}

ThreadedTrainResult ThreadedTrainer::train() {
  const auto& par = cfg_.parallel;
  const std::size_t n = par.total_trainers();

  daemons_.clear();
  for (std::size_t m = 0; m < par.k; ++m) {
    DaemonConfig dc;
    dc.i = par.i;
    dc.j = par.j;
    dc.reset_before_round = schedule_.groups[m].reset_before_round;
    dc.start_round = std::min(start_iteration_, schedule_.rounds_per_group);
    // Fan large gathers/scatters over the shared prefetch workers on
    // multi-core hosts (parallel_for's caller participation means a busy
    // pool can never stall the daemon; output is thread-count
    // independent). On one hardware thread the handoff is pure overhead.
    dc.gather_pool = std::thread::hardware_concurrency() > 1
                         ? prefetch_workers_.get()
                         : nullptr;
    dc.wait = WaitPolicy{.spin_polls = cfg_.fabric.spin_polls};
    daemons_.push_back(std::make_unique<MemoryDaemon>(states_[m], dc));
    daemons_.back()->start();
  }

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    threads.emplace_back([this, r] { trainer_thread(r); });
  for (auto& th : threads) th.join();
  for (auto& d : daemons_) {
    try {
      d->join();
    } catch (...) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (!first_failure_) first_failure_ = std::current_exception();
    }
  }

  // A failed rank poisons everything, every thread and daemon is joined
  // above — now surface the root cause, not a secondary kAborted.
  if (first_failure_) std::rethrow_exception(first_failure_);

  ThreadedTrainResult result;
  result.wall_seconds = timer.seconds();
  result.iterations = schedule_.total_iterations;
  // Rank-ordered reductions: independent of thread completion order.
  for (std::size_t r = 0; r < n; ++r) {
    result.raw_events += rank_events_[r];
    result.loss_sum += rank_loss_[r];
    result.loss_count += rank_loss_count_[r];
  }
  result.events_per_second =
      static_cast<double>(result.raw_events) / result.wall_seconds;
  result.traversals = cfg_.epochs * split_.num_train();
  result.traversals_per_second =
      static_cast<double>(result.traversals) / result.wall_seconds;
  result.batch_build_seconds = batch_build_seconds_;
  result.prefetch_wait_seconds = prefetch_wait_seconds_;
  result.compute_seconds = compute_seconds_;
  result.mem_read_wait_seconds = mem_read_wait_seconds_;
  result.mem_write_wait_seconds = mem_write_wait_seconds_;
  result.rank0_timings = rank0_timings_;

  result.memory_digests.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m)
    result.memory_digests.push_back(memory_digest(states_[m]));

  final_eval_into(result);
  return result;
}

void ThreadedTrainer::final_eval_into(ThreadedTrainResult& result) {
  // Final evaluation on memory copy 0 (validation then test, one clone).
  MemoryState clone = states_[0];
  EvalConfig ec;
  ec.batch_size = cfg_.local_batch;
  ec.num_negs = cfg_.eval_negs;
  ec.seed = cfg_.seed ^ 0xe7a1ULL;
  result.final_val = evaluate_range(*models_[0], clone, *graph_, *sampler_,
                                    split_.train_end, split_.val_end, ec)
                         .metric;
  result.final_test = evaluate_range(*models_[0], clone, *graph_, *sampler_,
                                     split_.val_end, split_.test_end, ec)
                          .metric;
  const std::span<const float> weights = models_[0]->flat_values();
  result.weights.assign(weights.begin(), weights.end());
}

}  // namespace disttgl
