#include "core/threaded_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <thread>

#include "util/timer.hpp"

namespace disttgl {

ThreadedTrainer::ThreadedTrainer(const TrainingConfig& cfg,
                                 const TemporalGraph& graph,
                                 const Matrix* static_memory)
    : cfg_(cfg),
      graph_(&graph),
      static_memory_(static_memory),
      split_(chronological_split(graph, cfg.train_frac, cfg.val_frac)) {
  const auto& par = cfg_.parallel;
  const std::size_t global_batch = cfg_.local_batch * par.i;
  batches_ = make_batches(split_.train_begin, split_.train_end, global_batch);
  schedule_ = build_schedule(par, batches_.size(), cfg_.epochs, cfg_.neg_groups);

  sampler_ = std::make_unique<NeighborSampler>(graph, cfg_.model.num_neighbors);
  negatives_ = std::make_unique<NegativeSampler>(graph, cfg_.neg_groups,
                                                 cfg_.seed ^ 0x5eedULL);

  const std::size_t n = par.total_trainers();
  prefetch_ahead_ = cfg_.prefetch_ahead != 0 ? cfg_.prefetch_ahead : par.j + 1;
  if (cfg_.pipeline == PipelineMode::kPooled) {
    const std::size_t workers =
        cfg_.prefetch_workers != 0 ? cfg_.prefetch_workers : n;
    prefetch_workers_ = std::make_unique<ThreadPool>(workers);
    // +1: the trainer holds one batch while `ahead` more are in flight.
    const std::size_t slots = cfg_.batch_pool_slots != 0
                                  ? cfg_.batch_pool_slots
                                  : prefetch_ahead_ + 1;
    batch_pools_.reserve(n);
    for (std::size_t r = 0; r < n; ++r)
      batch_pools_.push_back(std::make_unique<MiniBatchPool>(slots));
  }

  // In pooled mode on a multi-core host the prefetch workers double as
  // the sample_many fan-out pool: a construction job's root ranges
  // spread over idle workers (parallel_for's caller participation makes
  // calling it from a job on the same pool safe), and output is
  // thread-count independent so the equivalence contract is unaffected.
  // On a single hardware thread the fan-out is pure handoff overhead
  // (measured +2x batch_gen in BENCH_training.json), so it stays serial.
  ThreadPool* sampler_fanout = std::thread::hardware_concurrency() > 1
                                   ? prefetch_workers_.get()
                                   : nullptr;
  const bool link = !graph.has_edge_labels();
  builder_ = std::make_unique<MiniBatchBuilder>(graph, *sampler_, *negatives_,
                                                link ? cfg_.num_neg : 0,
                                                sampler_fanout);

  // Every replica must be initialized with an identical RNG stream —
  // reproduce SequentialTrainer's derivation exactly.
  models_.reserve(n);
  optimizers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    Rng root(cfg_.seed);
    Rng model_rng = root.split();
    models_.push_back(
        std::make_unique<TGNModel>(cfg_.model, graph, static_memory, model_rng));
    // Flat storage feeds the gradient-sync layer zero-copy: the comm
    // operates directly on the replica's contiguous grad/value buffers.
    models_.back()->freeze_flat_storage();
    optimizers_.push_back(std::make_unique<nn::Adam>(
        models_.back()->parameters(), nn::AdamOptions{.lr = cfg_.lr()}));
  }

  const std::size_t mail_dim = models_[0]->mail_raw_dim();
  states_.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m)
    states_.emplace_back(graph.num_nodes(), cfg_.model.mem_dim, mail_dim);

  comm_ = std::make_unique<dist::ThreadComm>(
      n, dist::Comm::Options{
             .chunk_elems = cfg_.comm_chunk_elems,
             .wait = WaitPolicy{.spin_polls = cfg_.fabric.spin_polls}});
  comm_->reserve(models_[0]->num_parameters());

  rank_loss_.assign(n, 0.0);
  rank_loss_count_.assign(n, 0);
  rank_events_.assign(n, 0);
}

// Fused allreduce→step chunk hook: global grad-clip scale from the
// collective's deterministic norm, then Adam over the owned flat range.
namespace {
struct FusedStepCtx {
  nn::Adam* opt;
  std::span<float> grads;
  float max_norm;
};

void fused_chunk_step(void* ctx, std::size_t lo, std::size_t hi,
                      double mean_grad_sq_norm) {
  auto* s = static_cast<FusedStepCtx*>(ctx);
  const float norm = static_cast<float>(std::sqrt(mean_grad_sq_norm));
  if (norm > s->max_norm && norm > 0.0f) {
    const float scale = s->max_norm / norm;
    for (std::size_t i = lo; i < hi; ++i) s->grads[i] *= scale;
  }
  s->opt->step_range(lo, hi);
}
}  // namespace

std::pair<std::size_t, std::size_t> ThreadedTrainer::chunk_events(
    std::size_t global_batch, std::size_t chunk) const {
  const BatchRange& range = batches_[global_batch];
  const std::size_t per = (range.size() + cfg_.parallel.i - 1) / cfg_.parallel.i;
  const std::size_t begin = std::min(range.begin + chunk * per, range.end);
  const std::size_t end = std::min(begin + per, range.end);
  return {begin, end};
}

void ThreadedTrainer::trainer_thread(std::size_t rank) {
  run_rank(rank, *daemons_[schedule_.trainers[rank].mem_copy], *comm_);
}

void ThreadedTrainer::run_rank(std::size_t rank, DaemonChannel& daemon,
                               dist::Comm& comm) {
  const auto& par = cfg_.parallel;
  const TrainerSchedule& ts = schedule_.trainers[rank];
  TGNModel& model = *models_[rank];
  nn::Adam& opt = *optimizers_[rank];
  const std::vector<nn::Parameter*>& params = model.cached_parameters();

  // Prefetch requests: one per version-0 (memory-op) item. Empty chunks
  // yield no request but still take part in the daemon protocol.
  std::vector<Prefetcher::Request> requests;
  for (const WorkItem& item : ts.items) {
    if (!item.memory_ops) continue;
    const auto [begin, end] = chunk_events(item.global_batch, ts.chunk);
    if (begin >= end) continue;
    Prefetcher::Request req;
    req.batch_idx = item.global_batch * par.i + ts.chunk;
    req.begin = begin;
    req.end = end;
    if (model.task() == TGNModel::Task::kLinkPrediction) {
      for (std::size_t v = 0; v < par.j; ++v)
        req.neg_groups.push_back(
            (item.cycle * par.j * par.k + ts.mem_copy * par.j + v) %
            cfg_.neg_groups);
    }
    requests.push_back(std::move(req));
  }
  const bool pooled = cfg_.pipeline == PipelineMode::kPooled;
  Prefetcher prefetcher(*builder_, std::move(requests), prefetch_ahead_,
                        pooled ? prefetch_workers_.get() : nullptr,
                        pooled ? batch_pools_[rank].get() : nullptr);

  PooledBatch batch;
  // The trainer's persistent memory-protocol buffers: the daemon gathers
  // straight into `slice` and applies writes straight from `write`
  // (zero-copy slots), so both keep their heap capacity for the whole
  // run — the memory path allocates nothing at steady state.
  MemorySlice slice;
  MemoryWrite write;
  TGNModel::StepResult step;  // reused result buffers (train_step_into)
  // Flat storage makes the gradient hand-off zero-copy: `grads` IS the
  // replica's parameter-gradient buffer, so the allreduce reduces it in
  // place and there is nothing to flatten or unflatten per iteration.
  const std::span<float> grads = model.flat_grads();
  const std::span<float> values = model.flat_values();
  const bool fused = cfg_.comm_fused_step;
  FusedStepCtx fused_ctx{&opt, grads, cfg_.grad_clip};
  double local_loss = 0.0;
  std::size_t local_count = 0;
  std::size_t local_events = 0;
  double wait_seconds = 0.0;
  double compute_seconds = 0.0;
  double read_wait_seconds = 0.0;
  double write_wait_seconds = 0.0;
  TimingLog iteration_log;  // filled for rank 0 only

  std::size_t cursor = 0;
  for (std::size_t t = 0; t < schedule_.total_iterations; ++t) {
    const WorkItem* item = nullptr;
    if (cursor < ts.items.size() && ts.items[cursor].iteration == t)
      item = &ts.items[cursor];

    // Inactive iterations contribute zero gradients to the collective;
    // active ones overwrite this with train_step's accumulation.
    model.zero_grad();
    bool post_write = false;
    double iter_wait = 0.0;
    double iter_compute = 0.0;
    double iter_read_wait = 0.0;
    double iter_write_wait = 0.0;

    if (item != nullptr) {
      if (item->memory_ops) {
        write.clear();  // train_step refills it for non-empty chunks
        const auto [begin, end] = chunk_events(item->global_batch, ts.chunk);
        if (begin >= end) {
          // Empty chunk: keep the daemon protocol in lockstep.
          batch.release();
          ScopedAccumulator acc(iter_read_wait);
          daemon.read(ts.group_rank, {}, slice);
          post_write = true;  // empty write below
        } else {
          {
            // Popping releases the previous batch back to the pool and
            // blocks only when generation hasn't kept ahead of compute.
            ScopedAccumulator acc(iter_wait);
            batch = prefetcher.next();
          }
          DT_CHECK(batch.has_value());
          {
            ScopedAccumulator acc(iter_read_wait);
            daemon.read(ts.group_rank, batch->unique_nodes, slice);
          }
          post_write = true;
        }
      }
      if (batch.has_value()) {
        ScopedAccumulator acc(iter_compute);
        model.train_step_into(*batch, slice, item->version,
                              item->memory_ops ? &write : nullptr, step);
        local_loss += step.loss;
        ++local_count;
        local_events += batch->num_pos();
      }
      ++cursor;
    }

    if (post_write) {
      ScopedAccumulator acc(iter_write_wait);
      daemon.write(ts.group_rank, write);
    }

    if (fused) {
      // One collective: reduce-scatter mean grads, clip + Adam on the
      // owned chunks only, allgather updated weights.
      opt.begin_step();
      comm.allreduce_step(rank, grads, values, &fused_chunk_step, &fused_ctx);
    } else {
      comm.allreduce_mean(rank, grads);
      nn::clip_grad_norm(params, cfg_.grad_clip);
      opt.step();
    }

    wait_seconds += iter_wait;
    compute_seconds += iter_compute;
    read_wait_seconds += iter_read_wait;
    write_wait_seconds += iter_write_wait;
    if (rank == 0)
      iteration_log.add(iter_wait, iter_compute, iter_read_wait,
                        iter_write_wait);
  }

  batch.release();  // hand the buffer back before the prefetcher drains
  const double build_seconds = prefetcher.build_seconds();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    rank_loss_[rank] = local_loss;
    rank_loss_count_[rank] = local_count;
    rank_events_[rank] = local_events;
    batch_build_seconds_ += build_seconds;
    prefetch_wait_seconds_ += wait_seconds;
    compute_seconds_ += compute_seconds;
    mem_read_wait_seconds_ += read_wait_seconds;
    mem_write_wait_seconds_ += write_wait_seconds;
    if (rank == 0) rank0_timings_ = std::move(iteration_log);
  }
}

ThreadedTrainResult ThreadedTrainer::train() {
  const auto& par = cfg_.parallel;
  const std::size_t n = par.total_trainers();

  daemons_.clear();
  for (std::size_t m = 0; m < par.k; ++m) {
    DaemonConfig dc;
    dc.i = par.i;
    dc.j = par.j;
    dc.reset_before_round = schedule_.groups[m].reset_before_round;
    // Fan large gathers/scatters over the shared prefetch workers on
    // multi-core hosts (parallel_for's caller participation means a busy
    // pool can never stall the daemon; output is thread-count
    // independent). On one hardware thread the handoff is pure overhead.
    dc.gather_pool = std::thread::hardware_concurrency() > 1
                         ? prefetch_workers_.get()
                         : nullptr;
    dc.wait = WaitPolicy{.spin_polls = cfg_.fabric.spin_polls};
    daemons_.push_back(std::make_unique<MemoryDaemon>(states_[m], dc));
    daemons_.back()->start();
  }

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    threads.emplace_back([this, r] { trainer_thread(r); });
  for (auto& th : threads) th.join();
  for (auto& d : daemons_) d->join();

  ThreadedTrainResult result;
  result.wall_seconds = timer.seconds();
  result.iterations = schedule_.total_iterations;
  // Rank-ordered reductions: independent of thread completion order.
  for (std::size_t r = 0; r < n; ++r) {
    result.raw_events += rank_events_[r];
    result.loss_sum += rank_loss_[r];
    result.loss_count += rank_loss_count_[r];
  }
  result.events_per_second =
      static_cast<double>(result.raw_events) / result.wall_seconds;
  result.traversals = cfg_.epochs * split_.num_train();
  result.traversals_per_second =
      static_cast<double>(result.traversals) / result.wall_seconds;
  result.batch_build_seconds = batch_build_seconds_;
  result.prefetch_wait_seconds = prefetch_wait_seconds_;
  result.compute_seconds = compute_seconds_;
  result.mem_read_wait_seconds = mem_read_wait_seconds_;
  result.mem_write_wait_seconds = mem_write_wait_seconds_;
  result.rank0_timings = rank0_timings_;

  result.memory_digests.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m)
    result.memory_digests.push_back(memory_digest(states_[m]));

  final_eval_into(result);
  return result;
}

void ThreadedTrainer::final_eval_into(ThreadedTrainResult& result) {
  // Final evaluation on memory copy 0 (validation then test, one clone).
  MemoryState clone = states_[0];
  EvalConfig ec;
  ec.batch_size = cfg_.local_batch;
  ec.num_negs = cfg_.eval_negs;
  ec.seed = cfg_.seed ^ 0xe7a1ULL;
  result.final_val = evaluate_range(*models_[0], clone, *graph_, *sampler_,
                                    split_.train_end, split_.val_end, ec)
                         .metric;
  result.final_test = evaluate_range(*models_[0], clone, *graph_, *sampler_,
                                     split_.val_end, split_.test_end, ec)
                          .metric;
  const std::span<const float> weights = models_[0]->flat_values();
  result.weights.assign(weights.begin(), weights.end());
}

}  // namespace disttgl
