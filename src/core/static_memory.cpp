#include "core/static_memory.hpp"

#include <cmath>

#include "nn/init.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace disttgl {

Matrix pretrain_static_memory(const TemporalGraph& graph, const EventSplit& split,
                              const StaticPretrainConfig& cfg) {
  Rng rng(cfg.seed);
  const std::size_t V = graph.num_nodes();
  const std::size_t D = cfg.dim;

  // Embedding table; seeded from raw node features when available (the
  // GDELT case, where 413-dim features exist).
  Matrix table(V, D);
  nn::normal_init(table, rng, 0.1f);
  if (graph.has_node_features()) {
    const Matrix& nf = graph.node_features();
    Matrix proj(nf.cols(), D);
    nn::xavier_uniform(proj, rng, nf.cols(), D);
    Matrix seeded = matmul(nf, proj);
    seeded *= 0.5f;
    table += seeded;
  }

  const NodeId dst_begin = graph.bipartite() ? graph.dst_partition_begin() : 0;
  const std::size_t dst_count = graph.num_nodes() - dst_begin;
  const std::size_t train_n = split.num_train();

  // Matrix-factorization pre-training: score(u, v) = e_u · e_v, BCE
  // against sampled negatives. Time-agnostic by construction — events are
  // drawn stochastically, which is exactly what makes the signal
  // "static" (§3.1). Only training-split events are used: no test leak.
  std::vector<float> grad_u(D);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const std::size_t samples = train_n;
    for (std::size_t s = 0; s < samples; ++s) {
      const auto& e = graph.event(
          static_cast<EdgeId>(split.train_begin + rng.uniform_int(train_n)));
      const NodeId neg =
          dst_begin + static_cast<NodeId>(rng.uniform_int(dst_count));
      float* eu = table.row_ptr(e.src);
      float* ev = table.row_ptr(e.dst);
      float* en = table.row_ptr(neg);

      float pos_score = 0.0f, neg_score = 0.0f;
      for (std::size_t c = 0; c < D; ++c) {
        pos_score += eu[c] * ev[c];
        neg_score += eu[c] * en[c];
      }
      // d/ds of -logσ(s) is σ(s)−1; of -logσ(-s) is σ(s).
      const float gpos = stable_sigmoid(pos_score) - 1.0f;
      const float gneg = stable_sigmoid(neg_score);
      for (std::size_t c = 0; c < D; ++c) {
        grad_u[c] = gpos * ev[c] + gneg * en[c];
        ev[c] -= cfg.lr * gpos * eu[c];
        en[c] -= cfg.lr * gneg * eu[c];
      }
      for (std::size_t c = 0; c < D; ++c) eu[c] -= cfg.lr * grad_u[c];
    }
  }

  // L2-normalize rows: downstream usage concatenates the table with the
  // dynamic memory, so a bounded scale keeps attention inputs balanced.
  for (std::size_t v = 0; v < V; ++v) {
    float* row = table.row_ptr(v);
    double sq = 0.0;
    for (std::size_t c = 0; c < D; ++c) sq += static_cast<double>(row[c]) * row[c];
    if (sq > 1e-12) {
      const float inv = static_cast<float>(1.0 / std::sqrt(sq));
      for (std::size_t c = 0; c < D; ++c) row[c] *= inv;
    }
  }
  return table;
}

}  // namespace disttgl
