#include "core/proc_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "distributed/hier_comm.hpp"
#include "distributed/launch.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/wire.hpp"
#include "memory/shm_channel.hpp"
#include "util/timer.hpp"

namespace disttgl {

namespace {

// Capacity of one rank's shm read slot, in nodes. A read request carries
// a super-batch's unique_nodes: deduplicated positive/negative roots
// plus their sampled neighbors — at most
//   local_batch · (2 + num_neg·j) roots · (1 + num_neighbors)
// and never more than the graph has nodes (they are unique). Generous
// by construction; an overflow is a typed kCapacity, not a corruption.
std::size_t auto_read_nodes(const TrainingConfig& cfg,
                            const TemporalGraph& graph) {
  if (cfg.fabric.slot_read_nodes != 0) return cfg.fabric.slot_read_nodes;
  const std::size_t roots =
      cfg.local_batch * (2 + cfg.num_neg * cfg.parallel.j);
  return std::min<std::size_t>(graph.num_nodes(),
                               roots * (1 + cfg.model.num_neighbors) + 64);
}

// Write slots carry the unique positive roots only: ≤ 2·local_batch.
std::size_t auto_write_nodes(const TrainingConfig& cfg,
                             const TemporalGraph& graph) {
  if (cfg.fabric.slot_write_nodes != 0) return cfg.fabric.slot_write_nodes;
  return std::min<std::size_t>(graph.num_nodes(), 2 * cfg.local_batch + 64);
}

// Shared tail of a forked rank's life, once its collective is wired
// (ProcComm for the process fabric, HierComm for the TCP fabric): host
// the group daemon on group_rank 0, train, and serialize the rank's
// subtotals for the launcher's result pipe.
std::vector<std::uint8_t> run_rank_and_report(
    const TrainingConfig& cfg, ThreadedTrainer& trainer, dist::Comm& comm,
    const std::vector<std::string>& daemon_shms, std::size_t rank) {
  const auto timeout = std::chrono::milliseconds(cfg.fabric.timeout_ms);
  const WaitPolicy wait{.spin_polls = cfg.fabric.spin_polls};
  const TrainerSchedule& ts = trainer.schedule().trainers[rank];
  const std::size_t m = ts.mem_copy;

  // Declared before the server so the server (which borrows it) is
  // destroyed first on every path, including exceptional unwinds.
  ShmDaemonChannel channel =
      ShmDaemonChannel::attach(daemon_shms[m], wait, timeout);

  // group_rank 0 (= rank m·i·j) hosts its group's daemon. Rank 0 is
  // therefore always a host, and always hosts memory copy 0 — which is
  // what makes the final evaluation below valid in rank 0's process.
  std::unique_ptr<ShmDaemonServer> server;
  if (ts.group_rank == 0) {
    DaemonConfig dc;
    dc.i = cfg.parallel.i;
    dc.j = cfg.parallel.j;
    dc.reset_before_round =
        trainer.schedule().groups[m].reset_before_round;
    dc.start_round = std::min(trainer.start_iteration(),
                              trainer.schedule().rounds_per_group);
    dc.wait = wait;
    server = std::make_unique<ShmDaemonServer>(trainer.state(m), dc, channel);
    server->start();
  }

  trainer.run_rank(rank, channel, comm);
  if (server) server->join();  // rethrows a daemon-side FabricError

  dist::WireWriter w;
  w.put_u64(trainer.rank_events(rank));
  w.put_f64(trainer.rank_loss(rank));
  w.put_u64(trainer.rank_loss_count(rank));
  const bool hosted = ts.group_rank == 0;
  w.put_u32(hosted ? 1 : 0);
  if (hosted) {
    w.put_u32(static_cast<std::uint32_t>(m));
    w.put_u64(memory_digest(trainer.state(m)));
  }
  w.put_u32(rank == 0 ? 1 : 0);
  if (rank == 0) {
    ThreadedTrainResult ev;
    trainer.final_eval_into(ev);
    w.put_f64(ev.final_val);
    w.put_f64(ev.final_test);
    w.put_f32s(ev.weights);
  }
  return w.take();
}

// One rank's whole life on the process fabric, run inside a forked
// child. The returned bytes ride the launcher's result pipe back.
std::vector<std::uint8_t> run_child(const TrainingConfig& cfg,
                                    const TemporalGraph& graph,
                                    const Matrix* static_memory,
                                    const std::string& socket_path,
                                    std::size_t rank) {
  const std::size_t world = cfg.parallel.total_trainers();
  const auto timeout = std::chrono::milliseconds(cfg.fabric.timeout_ms);
  const WaitPolicy wait{.spin_polls = cfg.fabric.spin_polls};

  // Rendezvous FIRST (cheap), heavy construction after: the host's
  // accept deadline only has to cover process startup, not model build.
  const dist::RendezvousInfo info =
      dist::rendezvous_client(socket_path, static_cast<std::uint32_t>(world),
                              static_cast<std::uint32_t>(rank), timeout);

  // Own trainer, constructed post-fork: the schedule, replicas, and
  // negative streams are pure functions of cfg + graph, so every process
  // derives identical state — and no pre-fork threads are inherited.
  ThreadedTrainer trainer(cfg, graph, static_memory);

  dist::ProcComm comm = dist::ProcComm::attach(
      info.comm_shm, world,
      dist::Comm::Options{.chunk_elems = cfg.comm_chunk_elems, .wait = wait},
      timeout);
  comm.reserve(trainer.num_parameters());
  return run_rank_and_report(cfg, trainer, comm, info.daemon_shms, rank);
}

// One rank's whole life on the TCP fabric. The `hosts` simulated
// machines each get a private ProcComm staging segment; host leaders
// additionally join the inter-host TCP ring. Daemon channels stay shm —
// the simulated hosts share one machine, and memory groups never span a
// host boundary larger than the segment allows (see train_multiprocess).
std::vector<std::uint8_t> run_child_tcp(const TrainingConfig& cfg,
                                        const TemporalGraph& graph,
                                        const Matrix* static_memory,
                                        std::uint16_t rendezvous_port,
                                        std::size_t rank) {
  const std::size_t world = cfg.parallel.total_trainers();
  const auto timeout = std::chrono::milliseconds(cfg.fabric.timeout_ms);
  const WaitPolicy wait{.spin_polls = cfg.fabric.spin_polls};
  const TcpFabricConfig& tcp = cfg.fabric.tcp;

  const dist::HierComm::Topology topo =
      dist::HierComm::topology_for(rank, world, tcp.hosts);

  // Leaders bind their ring listener BEFORE rendezvous so the port they
  // announce in HELLO is live by the time any peer learns it.
  dist::FdHandle ring_listen;
  std::uint16_t leader_port = 0;
  if (topo.local_rank == 0 && topo.hosts > 1)
    ring_listen = dist::tcp_listen(tcp.bind_host, 0,
                                   static_cast<int>(tcp.listen_backlog),
                                   leader_port);

  const dist::ClusterMap map = dist::tcp_rendezvous_client(
      tcp.bind_host, rendezvous_port, static_cast<std::uint32_t>(world),
      static_cast<std::uint32_t>(rank), leader_port, timeout);

  ThreadedTrainer trainer(cfg, graph, static_memory);

  dist::ProcComm local = dist::ProcComm::attach(
      map.host_comm_shms[topo.host], topo.local_world,
      dist::Comm::Options{.chunk_elems = cfg.comm_chunk_elems, .wait = wait},
      timeout);

  dist::RingEndpoints ring;
  if (topo.local_rank == 0 && topo.hosts > 1) {
    // The ring handshake waits on peers that are also mid-model-build;
    // bound it by the launch deadline, not the per-op fabric timeout.
    ring = dist::connect_ring(
        ring_listen.get(), map, topo.host,
        dist::deadline_after(
            std::chrono::milliseconds(cfg.fabric.launch_timeout_ms)),
        tcp.nodelay, cfg.fabric.chaos);
  }

  dist::HierComm comm(std::move(local), topo, std::move(ring), timeout);
  if (topo.local_rank == 0 && topo.hosts > 1 &&
      cfg.fabric.retry.max_attempts > 0) {
    // Reconnect tier armed: the ring listener stays alive inside the
    // policy so a transient mid-run connection loss is healed by a
    // re-dial instead of a group restart.
    dist::HierComm::ReconnectPolicy policy;
    policy.listener = std::move(ring_listen);
    policy.map = map;
    policy.nodelay = tcp.nodelay;
    policy.retry = cfg.fabric.retry;
    policy.chaos = cfg.fabric.chaos;
    policy.jitter_seed =
        cfg.seed ^ (0x9e3779b97f4a7c15ULL * (topo.host + 1));
    comm.enable_reconnect(std::move(policy));
  } else {
    ring_listen.reset();  // ring wired (or follower): stop listening
  }
  comm.reserve(trainer.num_parameters());
  return run_rank_and_report(cfg, trainer, comm, map.daemon_shms, rank);
}

}  // namespace

ThreadedTrainResult train_multiprocess(const TrainingConfig& cfg,
                                       const TemporalGraph& graph,
                                       const Matrix* static_memory) {
  validate(cfg);
  const auto& par = cfg.parallel;
  const std::size_t world = par.total_trainers();
  const auto timeout = std::chrono::milliseconds(cfg.fabric.timeout_ms);
  const auto launch_timeout =
      std::chrono::milliseconds(cfg.fabric.launch_timeout_ms);
  const WaitPolicy wait{.spin_polls = cfg.fabric.spin_polls};

  // Parent-side accounting only (split/schedule are cheap and
  // thread-free; the children re-derive the identical ones).
  const EventSplit split =
      chronological_split(graph, cfg.train_frac, cfg.val_frac);
  const std::vector<BatchRange> batches = make_batches(
      split.train_begin, split.train_end, cfg.local_batch * par.i);
  const Schedule schedule =
      build_schedule(par, batches.size(), cfg.epochs, cfg.neg_groups);

  // Probe the model once for segment geometry — a bare TGNModel spawns
  // no threads, so the parent stays fork-safe.
  std::size_t num_params = 0;
  std::size_t mail_dim = 0;
  {
    Rng root(cfg.seed);
    Rng model_rng = root.split();
    TGNModel probe(cfg.model, graph, static_memory, model_rng);
    num_params = probe.num_parameters();
    mail_dim = probe.mail_raw_dim();
  }

  // All session resources live under one prefix: the collective
  // segment(s), k daemon segments, and the rendezvous endpoint. The
  // parent is the only creator and the only unlinker (see shm.hpp) —
  // every exit path out of this function reclaims everything via these
  // owning locals.
  const bool tcp_fabric = cfg.fabric.kind == FabricKind::kTcp;
  const std::string prefix = dist::make_session_prefix();
  const std::string socket_path = "/tmp" + prefix + ".sock";

  ShmDaemonSpec spec;
  spec.slots = par.i * par.j;
  spec.mem_dim = cfg.model.mem_dim;
  spec.mail_dim = mail_dim;
  spec.max_read_nodes = auto_read_nodes(cfg, graph);
  spec.max_write_nodes = auto_write_nodes(cfg, graph);

  std::vector<std::string> daemon_shms;
  std::vector<ShmSegment> daemon_segments;
  daemon_segments.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m) {
    const std::string name = prefix + ".mem" + std::to_string(m);
    daemon_segments.push_back(ShmDaemonChannel::create_segment(name, spec));
    daemon_shms.push_back(name);
  }

  const dist::Comm::Options comm_opts{.chunk_elems = cfg.comm_chunk_elems,
                                      .wait = wait};
  // kProc: one world-wide segment. kTcp: one segment per simulated host
  // (the intra-host staging plane); the inter-host plane is TCP.
  std::vector<dist::ProcComm> comm_owners;
  dist::RendezvousInfo info;   // kProc bootstrap payload
  dist::ClusterMap map;        // kTcp bootstrap payload
  dist::FdHandle rdv_listen;   // kTcp rendezvous listener, bound pre-fork
  std::uint16_t rdv_port = 0;  // inherited by children through the fork
  if (!tcp_fabric) {
    comm_owners.push_back(
        dist::ProcComm::create(prefix + ".comm", world, num_params, comm_opts,
                               timeout));
    info.world = static_cast<std::uint32_t>(world);
    info.session_prefix = prefix;
    info.comm_shm = comm_owners.back().shm_name();
    info.daemon_shms = daemon_shms;
  } else {
    const std::size_t hosts = cfg.fabric.tcp.hosts;
    map.world = static_cast<std::uint32_t>(world);
    map.session_prefix = prefix;
    map.bind_host = cfg.fabric.tcp.bind_host;
    map.daemon_shms = daemon_shms;
    for (std::size_t h = 0; h < hosts; ++h) {
      const auto [begin, end] = dist::host_span(h, world, hosts);
      const std::string name = prefix + ".hc" + std::to_string(h);
      comm_owners.push_back(
          dist::ProcComm::create(name, end - begin, num_params, comm_opts,
                                 timeout));
      map.host_comm_shms.push_back(name);
      map.spans.push_back({static_cast<std::uint32_t>(begin),
                           static_cast<std::uint32_t>(end), 0});
    }
    // Bind before forking so every child knows the port without any
    // out-of-band channel; leaders fill in their ring ports at HELLO.
    rdv_listen = dist::tcp_listen(
        cfg.fabric.tcp.bind_host, cfg.fabric.tcp.port,
        static_cast<int>(cfg.fabric.tcp.listen_backlog), rdv_port);
  }

  WallTimer timer;
  // Fork while single-threaded; only then serve rendezvous (which is
  // also the startup barrier: a child past rendezvous knows every peer
  // exists and every segment above is created).
  dist::ProcGroup group = dist::ProcGroup::spawn(
      world, [&](std::size_t rank) {
        return tcp_fabric
                   ? run_child_tcp(cfg, graph, static_memory, rdv_port, rank)
                   : run_child(cfg, graph, static_memory, socket_path, rank);
      });
  if (tcp_fabric)
    dist::tcp_rendezvous_host(rdv_listen.get(), map, launch_timeout);
  else
    dist::rendezvous_host(socket_path, info, launch_timeout);

  // Heartbeat supervision (recovery.heartbeat_ms > 0): hold each rank to
  // its beat cadence once it starts framing; the explicit timeout wins,
  // else 10 beats of grace.
  const auto hb_timeout = std::chrono::milliseconds(
      cfg.recovery.heartbeat_ms > 0
          ? (cfg.recovery.heartbeat_timeout_ms > 0
                 ? cfg.recovery.heartbeat_timeout_ms
                 : 10 * cfg.recovery.heartbeat_ms)
          : 0);
  // Checkpoint grace (see ProcGroup::wait): explicit knob wins, else
  // auto — wide enough that an fsync-bound save never reads as a lost
  // heartbeat, narrow enough that a genuinely hung rank still dies.
  const auto ckpt_grace = std::chrono::milliseconds(
      hb_timeout.count() > 0
          ? (cfg.recovery.checkpoint_grace_ms > 0
                 ? static_cast<long long>(cfg.recovery.checkpoint_grace_ms)
                 : std::max<long long>(30'000, 10 * hb_timeout.count()))
          : 0);

  std::vector<dist::ChildResult> results =
      group.wait(launch_timeout, hb_timeout, ckpt_grace);
  // A lost heartbeat SIGKILLs the whole group, so sibling ranks also die
  // "killed by signal 9" — prefer the root-cause result when throwing.
  for (const dist::ChildResult& r : results) {
    if (!r.ok && r.errc == dist::FabricErrc::kHeartbeatLost)
      throw dist::FabricError(
          r.errc, "rank " + std::to_string(r.rank) + ": " + r.message);
  }
  for (const dist::ChildResult& r : results) {
    if (!r.ok)
      throw dist::FabricError(
          r.errc, "rank " + std::to_string(r.rank) + ": " + r.message);
  }

  ThreadedTrainResult result;
  result.wall_seconds = timer.seconds();
  result.iterations = schedule.total_iterations;
  result.memory_digests.assign(par.k, 0);
  // Rank-ordered reductions over the shipped per-rank subtotals — the
  // exact summation order ThreadedTrainer::train() uses, so totals are
  // bit-identical across fabrics.
  for (std::size_t rank = 0; rank < world; ++rank) {
    const dist::ChildResult& r = results[rank];
    DT_CHECK_EQ(r.rank, rank);
    dist::WireCursor c(r.payload);
    result.raw_events += c.get_u64();
    result.loss_sum += c.get_f64();
    result.loss_count += c.get_u64();
    if (c.get_u32() != 0) {  // hosted a memory group
      const std::uint32_t g = c.get_u32();
      DT_CHECK_LT(g, par.k);
      result.memory_digests[g] = c.get_u64();
    }
    if (c.get_u32() != 0) {  // rank 0: final evaluation + weights
      result.final_val = c.get_f64();
      result.final_test = c.get_f64();
      result.weights = c.get_f32s();
    }
  }
  result.events_per_second =
      static_cast<double>(result.raw_events) / result.wall_seconds;
  result.traversals = cfg.epochs * split.num_train();
  result.traversals_per_second =
      static_cast<double>(result.traversals) / result.wall_seconds;
  return result;
}

ThreadedTrainResult train_distributed(const TrainingConfig& cfg,
                                      const TemporalGraph& graph,
                                      const Matrix* static_memory) {
  if (cfg.fabric.kind != FabricKind::kThread)
    return train_multiprocess(cfg, graph, static_memory);
  ThreadedTrainer trainer(cfg, graph, static_memory);
  return trainer.train();
}

}  // namespace disttgl
