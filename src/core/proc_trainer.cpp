#include "core/proc_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "distributed/launch.hpp"
#include "distributed/proc_comm.hpp"
#include "distributed/rendezvous.hpp"
#include "distributed/wire.hpp"
#include "memory/shm_channel.hpp"
#include "util/timer.hpp"

namespace disttgl {

namespace {

// Capacity of one rank's shm read slot, in nodes. A read request carries
// a super-batch's unique_nodes: deduplicated positive/negative roots
// plus their sampled neighbors — at most
//   local_batch · (2 + num_neg·j) roots · (1 + num_neighbors)
// and never more than the graph has nodes (they are unique). Generous
// by construction; an overflow is a typed kCapacity, not a corruption.
std::size_t auto_read_nodes(const TrainingConfig& cfg,
                            const TemporalGraph& graph) {
  if (cfg.fabric.slot_read_nodes != 0) return cfg.fabric.slot_read_nodes;
  const std::size_t roots =
      cfg.local_batch * (2 + cfg.num_neg * cfg.parallel.j);
  return std::min<std::size_t>(graph.num_nodes(),
                               roots * (1 + cfg.model.num_neighbors) + 64);
}

// Write slots carry the unique positive roots only: ≤ 2·local_batch.
std::size_t auto_write_nodes(const TrainingConfig& cfg,
                             const TemporalGraph& graph) {
  if (cfg.fabric.slot_write_nodes != 0) return cfg.fabric.slot_write_nodes;
  return std::min<std::size_t>(graph.num_nodes(), 2 * cfg.local_batch + 64);
}

// One rank's whole life, run inside a forked child. The returned bytes
// ride the launcher's result pipe back to the parent.
std::vector<std::uint8_t> run_child(const TrainingConfig& cfg,
                                    const TemporalGraph& graph,
                                    const Matrix* static_memory,
                                    const std::string& socket_path,
                                    std::size_t rank) {
  const std::size_t world = cfg.parallel.total_trainers();
  const auto timeout = std::chrono::milliseconds(cfg.fabric.timeout_ms);
  const WaitPolicy wait{.spin_polls = cfg.fabric.spin_polls};

  // Rendezvous FIRST (cheap), heavy construction after: the host's
  // accept deadline only has to cover process startup, not model build.
  const dist::RendezvousInfo info =
      dist::rendezvous_client(socket_path, static_cast<std::uint32_t>(world),
                              static_cast<std::uint32_t>(rank), timeout);

  // Own trainer, constructed post-fork: the schedule, replicas, and
  // negative streams are pure functions of cfg + graph, so every process
  // derives identical state — and no pre-fork threads are inherited.
  ThreadedTrainer trainer(cfg, graph, static_memory);
  const TrainerSchedule& ts = trainer.schedule().trainers[rank];
  const std::size_t m = ts.mem_copy;

  dist::ProcComm comm = dist::ProcComm::attach(
      info.comm_shm, world,
      dist::Comm::Options{.chunk_elems = cfg.comm_chunk_elems, .wait = wait},
      timeout);
  comm.reserve(trainer.num_parameters());

  // Declared before the server so the server (which borrows it) is
  // destroyed first on every path, including exceptional unwinds.
  ShmDaemonChannel channel =
      ShmDaemonChannel::attach(info.daemon_shms[m], wait, timeout);

  // group_rank 0 (= rank m·i·j) hosts its group's daemon. Rank 0 is
  // therefore always a host, and always hosts memory copy 0 — which is
  // what makes the final evaluation below valid in rank 0's process.
  std::unique_ptr<ShmDaemonServer> server;
  if (ts.group_rank == 0) {
    DaemonConfig dc;
    dc.i = cfg.parallel.i;
    dc.j = cfg.parallel.j;
    dc.reset_before_round =
        trainer.schedule().groups[m].reset_before_round;
    dc.start_round = std::min(trainer.start_iteration(),
                              trainer.schedule().rounds_per_group);
    dc.wait = wait;
    server = std::make_unique<ShmDaemonServer>(trainer.state(m), dc, channel);
    server->start();
  }

  trainer.run_rank(rank, channel, comm);
  if (server) server->join();  // rethrows a daemon-side FabricError

  dist::WireWriter w;
  w.put_u64(trainer.rank_events(rank));
  w.put_f64(trainer.rank_loss(rank));
  w.put_u64(trainer.rank_loss_count(rank));
  const bool hosted = ts.group_rank == 0;
  w.put_u32(hosted ? 1 : 0);
  if (hosted) {
    w.put_u32(static_cast<std::uint32_t>(m));
    w.put_u64(memory_digest(trainer.state(m)));
  }
  w.put_u32(rank == 0 ? 1 : 0);
  if (rank == 0) {
    ThreadedTrainResult ev;
    trainer.final_eval_into(ev);
    w.put_f64(ev.final_val);
    w.put_f64(ev.final_test);
    w.put_f32s(ev.weights);
  }
  return w.take();
}

}  // namespace

ThreadedTrainResult train_multiprocess(const TrainingConfig& cfg,
                                       const TemporalGraph& graph,
                                       const Matrix* static_memory) {
  validate(cfg);
  const auto& par = cfg.parallel;
  const std::size_t world = par.total_trainers();
  const auto timeout = std::chrono::milliseconds(cfg.fabric.timeout_ms);
  const auto launch_timeout =
      std::chrono::milliseconds(cfg.fabric.launch_timeout_ms);
  const WaitPolicy wait{.spin_polls = cfg.fabric.spin_polls};

  // Parent-side accounting only (split/schedule are cheap and
  // thread-free; the children re-derive the identical ones).
  const EventSplit split =
      chronological_split(graph, cfg.train_frac, cfg.val_frac);
  const std::vector<BatchRange> batches = make_batches(
      split.train_begin, split.train_end, cfg.local_batch * par.i);
  const Schedule schedule =
      build_schedule(par, batches.size(), cfg.epochs, cfg.neg_groups);

  // Probe the model once for segment geometry — a bare TGNModel spawns
  // no threads, so the parent stays fork-safe.
  std::size_t num_params = 0;
  std::size_t mail_dim = 0;
  {
    Rng root(cfg.seed);
    Rng model_rng = root.split();
    TGNModel probe(cfg.model, graph, static_memory, model_rng);
    num_params = probe.num_parameters();
    mail_dim = probe.mail_raw_dim();
  }

  // All session resources live under one prefix: the collective segment,
  // k daemon segments, and the rendezvous socket. The parent is the only
  // creator and the only unlinker (see shm.hpp) — every exit path out of
  // this function reclaims everything via these owning locals.
  const std::string prefix = dist::make_session_prefix();
  const std::string socket_path = "/tmp" + prefix + ".sock";

  dist::ProcComm comm_owner = dist::ProcComm::create(
      prefix + ".comm", world, num_params,
      dist::Comm::Options{.chunk_elems = cfg.comm_chunk_elems, .wait = wait},
      timeout);

  ShmDaemonSpec spec;
  spec.slots = par.i * par.j;
  spec.mem_dim = cfg.model.mem_dim;
  spec.mail_dim = mail_dim;
  spec.max_read_nodes = auto_read_nodes(cfg, graph);
  spec.max_write_nodes = auto_write_nodes(cfg, graph);

  dist::RendezvousInfo info;
  info.world = static_cast<std::uint32_t>(world);
  info.session_prefix = prefix;
  info.comm_shm = comm_owner.shm_name();
  std::vector<ShmSegment> daemon_segments;
  daemon_segments.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m) {
    const std::string name = prefix + ".mem" + std::to_string(m);
    daemon_segments.push_back(ShmDaemonChannel::create_segment(name, spec));
    info.daemon_shms.push_back(name);
  }

  WallTimer timer;
  // Fork while single-threaded; only then serve rendezvous (which is
  // also the startup barrier: a child past rendezvous knows every peer
  // exists and every segment above is created).
  dist::ProcGroup group = dist::ProcGroup::spawn(
      world, [&](std::size_t rank) {
        return run_child(cfg, graph, static_memory, socket_path, rank);
      });
  dist::rendezvous_host(socket_path, info, launch_timeout);

  // Heartbeat supervision (recovery.heartbeat_ms > 0): hold each rank to
  // its beat cadence once it starts framing; the explicit timeout wins,
  // else 10 beats of grace.
  const auto hb_timeout = std::chrono::milliseconds(
      cfg.recovery.heartbeat_ms > 0
          ? (cfg.recovery.heartbeat_timeout_ms > 0
                 ? cfg.recovery.heartbeat_timeout_ms
                 : 10 * cfg.recovery.heartbeat_ms)
          : 0);

  std::vector<dist::ChildResult> results = group.wait(launch_timeout,
                                                      hb_timeout);
  // A lost heartbeat SIGKILLs the whole group, so sibling ranks also die
  // "killed by signal 9" — prefer the root-cause result when throwing.
  for (const dist::ChildResult& r : results) {
    if (!r.ok && r.errc == dist::FabricErrc::kHeartbeatLost)
      throw dist::FabricError(
          r.errc, "rank " + std::to_string(r.rank) + ": " + r.message);
  }
  for (const dist::ChildResult& r : results) {
    if (!r.ok)
      throw dist::FabricError(
          r.errc, "rank " + std::to_string(r.rank) + ": " + r.message);
  }

  ThreadedTrainResult result;
  result.wall_seconds = timer.seconds();
  result.iterations = schedule.total_iterations;
  result.memory_digests.assign(par.k, 0);
  // Rank-ordered reductions over the shipped per-rank subtotals — the
  // exact summation order ThreadedTrainer::train() uses, so totals are
  // bit-identical across fabrics.
  for (std::size_t rank = 0; rank < world; ++rank) {
    const dist::ChildResult& r = results[rank];
    DT_CHECK_EQ(r.rank, rank);
    dist::WireCursor c(r.payload);
    result.raw_events += c.get_u64();
    result.loss_sum += c.get_f64();
    result.loss_count += c.get_u64();
    if (c.get_u32() != 0) {  // hosted a memory group
      const std::uint32_t g = c.get_u32();
      DT_CHECK_LT(g, par.k);
      result.memory_digests[g] = c.get_u64();
    }
    if (c.get_u32() != 0) {  // rank 0: final evaluation + weights
      result.final_val = c.get_f64();
      result.final_test = c.get_f64();
      result.weights = c.get_f32s();
    }
  }
  result.events_per_second =
      static_cast<double>(result.raw_events) / result.wall_seconds;
  result.traversals = cfg.epochs * split.num_train();
  result.traversals_per_second =
      static_cast<double>(result.traversals) / result.wall_seconds;
  return result;
}

ThreadedTrainResult train_distributed(const TrainingConfig& cfg,
                                      const TemporalGraph& graph,
                                      const Matrix* static_memory) {
  if (cfg.fabric.kind == FabricKind::kProc)
    return train_multiprocess(cfg, graph, static_memory);
  ThreadedTrainer trainer(cfg, graph, static_memory);
  return trainer.train();
}

}  // namespace disttgl
