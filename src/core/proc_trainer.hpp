// Multi-process orchestrator: ThreadedTrainer's training loop, one OS
// process per rank, over the process fabric (docs/ARCHITECTURE.md "The
// process fabric").
//
// The launcher parent owns every cross-process resource — the ProcComm
// collective segment, one ShmDaemonChannel segment per memory group,
// and the rendezvous socket — creates them all before forking, forks
// `world` children while still single-threaded, then serves rendezvous.
// Each child connects, constructs its OWN ThreadedTrainer from the
// shared config (deterministic from cfg.seed, so every process derives
// the identical schedule, model initialization, and negative streams —
// nothing model-sized ever crosses the fork), attaches the segments,
// and drives ThreadedTrainer::run_rank over ProcComm +
// ShmDaemonChannel. The rank hosting a memory group (group_rank 0, i.e.
// rank m·i·j) additionally runs the group's ShmDaemonServer thread.
//
// Results travel back on the launcher's framed result pipes: every rank
// ships its per-rank loss/count/event subtotals (summed parent-side in
// rank order — bit-identical to the threaded fabric's totals), hosts
// ship their group's memory_digest, and rank 0 ships the final
// evaluation + replica weights. The cross-fabric equivalence grid
// (tests/test_equivalence.cpp) compares all of these bit-exactly
// against ThreadComm runs of the same config.
//
// Caveats vs the threaded fabric: wall_seconds includes fork + per-child
// model construction (so throughput numbers are not comparable across
// fabrics), and the pipeline attribution fields (batch_build_seconds
// etc.) stay zero — per-child timing attribution is not shipped back.
#pragma once

#include "core/threaded_trainer.hpp"

namespace disttgl {

// Forks cfg.parallel.total_trainers() processes and trains over the
// process fabric. Requires cfg.fabric.kind semantics (machines == 1).
// Throws FabricError (typed, naming the rank) on any child failure.
ThreadedTrainResult train_multiprocess(const TrainingConfig& cfg,
                                       const TemporalGraph& graph,
                                       const Matrix* static_memory);

// Fabric dispatch: routes to ThreadedTrainer::train() (kThread) or
// train_multiprocess (kProc). Trainers and tests select the transport
// with cfg.fabric.kind alone; everything downstream is transport-blind.
ThreadedTrainResult train_distributed(const TrainingConfig& cfg,
                                      const TemporalGraph& graph,
                                      const Matrix* static_memory);

}  // namespace disttgl
