// Sequential orchestrator: deterministic reference execution of an
// i×j×k DistTGL schedule.
//
// Executes the exact computation the threaded system performs — same
// batches, same memory read/write serialization, same gradient averaging
// — but on one thread, making every convergence experiment reproducible
// from a seed. Per iteration:
//
//   phase A  all version-0 trainers of this round build their super-batch
//            (one positive set + j negative variants, §3.2.2) and read
//            memory — reads before any write, the daemon's (R…R) bracket;
//   phase B  every active trainer runs forward/backward with the current
//            weights; per-trainer gradients are flattened and summed in
//            rank order (bitwise-identical to ThreadComm's staged
//            reduction);
//   phase C  version-0 writes apply in rank order — the (W…W) bracket;
//   step     gradients are averaged over all n trainers, clipped, and
//            applied by Adam (lr scaled linearly with world size).
//
// Validation runs every iterations_per_epoch() on a clone of memory copy
// 0 (§4.0.1), test once at the end continuing from the validation state.
#pragma once

#include <optional>

#include "core/metrics_log.hpp"
#include "core/schedule.hpp"
#include "core/tgn_model.hpp"
#include "eval/evaluator.hpp"
#include "sampling/minibatch_pool.hpp"

namespace disttgl {

struct TrainResult {
  ConvergenceLog log;
  double final_val = 0.0;
  double final_test = 0.0;
  std::size_t iterations = 0;
  BatchDiagnostics diag;        // accumulated over training
  double train_loss_last = 0.0; // mean loss over the final epoch
  // Per-iteration batch-generation vs compute seconds (summed over the
  // trainers active in that iteration).
  TimingLog timings;
  // Per-iteration averaged-gradient statistics (filled when
  // TrainingConfig::collect_grad_stats): the Table 1 gradient-variance
  // measurement. grad_cos_prev is the cosine similarity between the mean
  // gradients of consecutive iterations — epoch parallelism trains the
  // same positives consecutively, which shows up as higher correlation
  // (i.e. the effective samples are fewer; variance of SGD increases).
  std::vector<float> grad_norms;
  std::vector<float> grad_cos_prev;
};

class SequentialTrainer {
 public:
  // `static_memory` may be null; it must outlive the trainer.
  SequentialTrainer(const TrainingConfig& cfg, const TemporalGraph& graph,
                    const Matrix* static_memory);

  const Schedule& schedule() const { return schedule_; }
  const EventSplit& split() const { return split_; }
  TGNModel& model() { return *model_; }
  // Memory copy m (valid after construction; reset during training).
  const MemoryState& state(std::size_t m) const { return states_[m]; }

  TrainResult train();

  // Runs a single iteration (exposed for the equivalence tests).
  void run_iteration(std::size_t t);
  // Weight snapshot for cross-orchestrator comparison.
  std::vector<float> weights() const;

 private:
  struct TrainerSlot {
    std::size_t cursor = 0;  // next item index
    PooledBatch batch;       // recycled through batch_pool_
    // Persistent memory-protocol buffers: read_into gathers into
    // `slice`, train_step assembles `write` in place, phase C applies
    // it — all capacity-preserving, so the memory path allocates
    // nothing at steady state. `batch.has_value()` gates their use;
    // `has_write` marks a pending phase-C application.
    MemorySlice slice;
    MemoryWrite write;
    bool has_write = false;
  };

  std::vector<std::size_t> chunk_events(std::size_t global_batch,
                                        std::size_t chunk) const;
  double evaluate_validation();

  TrainingConfig cfg_;
  const TemporalGraph* graph_;
  const Matrix* static_memory_;
  EventSplit split_;
  std::vector<BatchRange> batches_;  // global batches over the train range
  Schedule schedule_;

  Rng rng_;
  std::unique_ptr<NeighborSampler> sampler_;
  std::unique_ptr<NegativeSampler> negatives_;
  std::unique_ptr<MiniBatchBuilder> builder_;
  std::unique_ptr<TGNModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<MemoryState> states_;
  // Declared before slots_: the slots' PooledBatch handles must release
  // into a still-live pool.
  MiniBatchPool batch_pool_;
  std::vector<TrainerSlot> slots_;

  // Reused step-result buffers (train_step_into).
  TGNModel::StepResult step_result_;
  // Double accumulation in rank order — bitwise identical to
  // ThreadComm's staged reduction, which the equivalence tests rely on.
  std::vector<double> grad_accum_;
  std::vector<float> prev_mean_grads_;
  std::vector<float> grad_norms_;
  std::vector<float> grad_cos_prev_;
  BatchDiagnostics diag_;
  TimingLog timings_;
  double epoch_loss_sum_ = 0.0;
  std::size_t epoch_loss_count_ = 0;
};

}  // namespace disttgl
