// Threaded orchestrator: the real DistTGL system (§3.3).
//
// One OS thread per trainer, one memory-daemon thread per memory copy
// (Algorithm 1), per-trainer prefetchers preparing super-batches ahead
// of schedule, and a deterministic in-process chunked reduce-scatter
// allreduce for gradient averaging, fed zero-copy from each replica's
// flat parameter storage (cfg.comm_fused_step additionally folds
// grad-clip + the Adam update into the collective's owned-chunk
// window). Each trainer owns a full model replica and optimizer (the
// data-parallel pattern); replicas start identical and stay identical
// because the allreduce is bitwise deterministic.
//
// Batch generation runs through the pooled pipeline by default
// (PipelineMode::kPooled): every prefetcher dispatches its construction
// jobs to one shared worker pool, building into per-trainer
// MiniBatchPool buffers that trainers hold while training and release
// back on the next pop — steady-state batch construction allocates
// nothing. kLegacy keeps the pre-pipeline behaviour (a dedicated worker
// thread per prefetcher, a fresh heap batch per build) as the
// before/after baseline for bench/training_throughput.
//
// The protocol per iteration, per trainer:
//   version-0 item : pop prefetched batch → daemon read (blocks until the
//                    serialized order admits it) → compute → daemon write
//                    → allreduce → local optimizer step.
//   version>0 item : recompute on cached inputs with fresh weights and
//                    the variant's negatives → allreduce → step.
//   no item        : contribute zero gradients to the allreduce.
// Trainers whose chunk of the global batch is empty still post empty
// reads/writes to keep the daemon's round protocol in lockstep.
//
// Produces results identical to SequentialTrainer for the same config
// (asserted by tests/test_equivalence).
#pragma once

#include "core/metrics_log.hpp"
#include "core/schedule.hpp"
#include "core/tgn_model.hpp"
#include "distributed/comm.hpp"
#include "eval/evaluator.hpp"
#include "memory/daemon.hpp"
#include "pipeline/prefetcher.hpp"
#include "util/thread_pool.hpp"

#include <exception>

namespace disttgl {

struct ThreadedTrainResult {
  double final_val = 0.0;
  double final_test = 0.0;
  std::size_t iterations = 0;
  double wall_seconds = 0.0;

  // Raw positive events processed: every executed work item counts its
  // chunk, so epoch-parallel recomputes (version > 0) count each time.
  std::size_t raw_events = 0;
  double events_per_second = 0.0;  // raw_events / wall_seconds
  // Chronological traversals of the training range: epochs × train
  // events — what one epoch-equivalent of progress costs. This was the
  // quantity the old `events_per_second` actually measured.
  std::size_t traversals = 0;
  double traversals_per_second = 0.0;

  // Pipeline attribution, summed across trainers/prefetch jobs:
  double batch_build_seconds = 0.0;    // inside build_into on workers
  double prefetch_wait_seconds = 0.0;  // trainers blocked popping a batch
  double compute_seconds = 0.0;        // inside train_step
  // Memory-protocol attribution: seconds trainers spent blocked in
  // daemon.read / daemon.write (serialization wait + the gather/scatter
  // itself). Previously this time was folded into the iteration's
  // compute share; splitting it out is what lets BENCH_training show
  // where memory-protocol time goes.
  double mem_read_wait_seconds = 0.0;
  double mem_write_wait_seconds = 0.0;
  // Rank 0's per-iteration (wait, compute, mem-read, mem-write) tuple —
  // the threaded analogue of TrainResult::timings (batch gen happens
  // off-thread, so the wait is what generation failed to hide).
  TimingLog rank0_timings;

  std::vector<float> weights;  // final replica-0 weights

  // Training-loss totals, summed over per-rank subtotals in rank order
  // (deterministic regardless of thread/process completion order — the
  // cross-fabric equivalence grid compares these bit-exactly).
  double loss_sum = 0.0;
  std::size_t loss_count = 0;
  // memory_digest() of each memory copy at end of training, indexed by
  // copy. Lets equivalence tests compare final memory state across
  // address spaces without shipping whole states.
  std::vector<std::uint64_t> memory_digests;
};

class ThreadedTrainer {
 public:
  ThreadedTrainer(const TrainingConfig& cfg, const TemporalGraph& graph,
                  const Matrix* static_memory);

  ThreadedTrainResult train();

  const Schedule& schedule() const { return schedule_; }
  const EventSplit& split() const { return split_; }

  // ---- process-fabric hooks (core/proc_trainer.cpp) ----
  // Runs exactly one rank's training loop over externally provided
  // transports. train() routes every rank here with the in-process
  // MemoryDaemon + ThreadComm; a forked rank of the process fabric calls
  // it directly with its ShmDaemonChannel + ProcComm attachments — the
  // loop itself is transport-blind.
  void run_rank(std::size_t rank, DaemonChannel& daemon, dist::Comm& comm);
  // Final evaluation + weight harvest from replica 0 against memory
  // copy 0 (valid on the process that hosts copy 0 after training).
  void final_eval_into(ThreadedTrainResult& result);

  MemoryState& state(std::size_t m) { return states_[m]; }
  std::size_t num_parameters() const { return models_[0]->num_parameters(); }
  std::size_t mail_raw_dim() const { return models_[0]->mail_raw_dim(); }
  // Iterations already completed by the snapshot this trainer resumed
  // from (0 = fresh start). run_rank starts its loop here; daemons must
  // be started at round min(start_iteration, rounds_per_group).
  std::size_t start_iteration() const { return start_iteration_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  double rank_loss(std::size_t r) const { return rank_loss_[r]; }
  std::size_t rank_loss_count(std::size_t r) const {
    return rank_loss_count_[r];
  }
  std::size_t rank_events(std::size_t r) const { return rank_events_[r]; }

 private:
  void trainer_thread(std::size_t rank);
  std::pair<std::size_t, std::size_t> chunk_events(std::size_t global_batch,
                                                   std::size_t chunk) const;
  // Replicated-state restore from cfg.recovery.resume_from: weights into
  // every replica, every memory copy, start_iteration_. Per-rank state
  // (Adam moments, loss subtotals, in-flight slice) is restored inside
  // run_rank from that rank's own shard.
  void restore_from_snapshot();
  // The coordinated snapshot at an iteration boundary (`done` iterations
  // complete): every rank writes its rank shard; group hosts quiesce
  // their daemon (await_rounds) and capture the memory copy; rank 0
  // writes weights — then one barrier, and rank 0 commits + prunes.
  void write_snapshot(std::size_t rank, std::size_t done,
                      DaemonChannel& daemon, dist::Comm& comm, nn::Adam& opt,
                      double loss_sum, std::size_t loss_count,
                      std::size_t events, bool mid_chain,
                      const MemorySlice& slice);

  TrainingConfig cfg_;
  const TemporalGraph* graph_;
  const Matrix* static_memory_;
  EventSplit split_;
  std::vector<BatchRange> batches_;
  Schedule schedule_;

  std::unique_ptr<NeighborSampler> sampler_;
  std::unique_ptr<NegativeSampler> negatives_;
  std::unique_ptr<MiniBatchBuilder> builder_;
  std::vector<MemoryState> states_;
  std::vector<std::unique_ptr<MemoryDaemon>> daemons_;
  std::unique_ptr<dist::Comm> comm_;

  // Pooled pipeline (PipelineMode::kPooled): one worker pool shared by
  // every prefetcher (and by the builder's sample_many fan-out), one
  // buffer pool per trainer. Both outlive the trainer threads, which
  // join inside train(). prefetch_ahead_ is the resolved in-flight
  // bound — computed once so the pool pre-sizing and the prefetcher
  // ring can never desync.
  std::unique_ptr<ThreadPool> prefetch_workers_;
  std::vector<std::unique_ptr<MiniBatchPool>> batch_pools_;
  std::size_t prefetch_ahead_ = 1;

  // Per-trainer replicas (created identically from the shared seed).
  std::vector<std::unique_ptr<TGNModel>> models_;
  std::vector<std::unique_ptr<nn::Adam>> optimizers_;

  // Aggregated stats (guarded by stats_mu_; written once per trainer).
  // Loss/event totals are kept per rank and summed in rank order so the
  // totals are independent of thread completion order (and comparable
  // bit-for-bit across fabrics).
  // Elastic-recovery state: the config fingerprint stamped into every
  // shard, and the resume position (0 = fresh).
  std::uint64_t fingerprint_ = 0;
  std::size_t start_iteration_ = 0;

  // Thread-fabric failure funnel: the first exception a trainer thread
  // (or daemon) dies with; siblings then fail kAborted via the poisoned
  // comm/daemons and train() rethrows this one after joining everything.
  std::exception_ptr first_failure_;

  std::mutex stats_mu_;
  std::vector<double> rank_loss_;
  std::vector<std::size_t> rank_loss_count_;
  std::vector<std::size_t> rank_events_;
  double batch_build_seconds_ = 0.0;
  double prefetch_wait_seconds_ = 0.0;
  double compute_seconds_ = 0.0;
  double mem_read_wait_seconds_ = 0.0;
  double mem_write_wait_seconds_ = 0.0;
  TimingLog rank0_timings_;
};

}  // namespace disttgl
