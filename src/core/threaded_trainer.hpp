// Threaded orchestrator: the real DistTGL system (§3.3).
//
// One OS thread per trainer, one memory-daemon thread per memory copy
// (Algorithm 1), a per-trainer prefetcher preparing super-batches ahead
// of schedule, and a deterministic in-process allreduce for gradient
// averaging. Each trainer owns a full model replica and optimizer (the
// data-parallel pattern); replicas start identical and stay identical
// because the allreduce is bitwise deterministic.
//
// The protocol per iteration, per trainer:
//   version-0 item : pop prefetched batch → daemon read (blocks until the
//                    serialized order admits it) → compute → daemon write
//                    → allreduce → local optimizer step.
//   version>0 item : recompute on cached inputs with fresh weights and
//                    the variant's negatives → allreduce → step.
//   no item        : contribute zero gradients to the allreduce.
// Trainers whose chunk of the global batch is empty still post empty
// reads/writes to keep the daemon's round protocol in lockstep.
//
// Produces results identical to SequentialTrainer for the same config
// (asserted by tests/test_orchestrator_equivalence).
#pragma once

#include "core/metrics_log.hpp"
#include "core/schedule.hpp"
#include "core/tgn_model.hpp"
#include "distributed/comm.hpp"
#include "eval/evaluator.hpp"
#include "memory/daemon.hpp"
#include "pipeline/prefetcher.hpp"

namespace disttgl {

struct ThreadedTrainResult {
  double final_val = 0.0;
  double final_test = 0.0;
  std::size_t iterations = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  std::vector<float> weights;  // final replica-0 weights
};

class ThreadedTrainer {
 public:
  ThreadedTrainer(const TrainingConfig& cfg, const TemporalGraph& graph,
                  const Matrix* static_memory);

  ThreadedTrainResult train();

  const Schedule& schedule() const { return schedule_; }
  const EventSplit& split() const { return split_; }

 private:
  void trainer_thread(std::size_t rank);
  std::pair<std::size_t, std::size_t> chunk_events(std::size_t global_batch,
                                                   std::size_t chunk) const;

  TrainingConfig cfg_;
  const TemporalGraph* graph_;
  const Matrix* static_memory_;
  EventSplit split_;
  std::vector<BatchRange> batches_;
  Schedule schedule_;

  std::unique_ptr<NeighborSampler> sampler_;
  std::unique_ptr<NegativeSampler> negatives_;
  std::unique_ptr<MiniBatchBuilder> builder_;
  std::vector<MemoryState> states_;
  std::vector<std::unique_ptr<MemoryDaemon>> daemons_;
  std::unique_ptr<dist::ThreadComm> comm_;

  // Per-trainer replicas (created identically from the shared seed).
  std::vector<std::unique_ptr<TGNModel>> models_;
  std::vector<std::unique_ptr<nn::Adam>> optimizers_;

  // Aggregated training loss (for smoke checks).
  std::mutex stats_mu_;
  double loss_sum_ = 0.0;
  std::size_t loss_count_ = 0;
};

}  // namespace disttgl
