#include "core/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "distributed/socket.hpp"
#include "util/timer.hpp"

namespace disttgl {

namespace fs = std::filesystem;

namespace {

// fabric.fault.corrupt_latest_checkpoint: flip one payload byte of the
// newest valid snapshot's core shard. The container checksum then fails,
// validate_snapshot rejects the whole set, and recovery must fall back
// to the previous snapshot — the torn-write drill, end to end.
void corrupt_latest(const std::string& dir, std::uint64_t fingerprint,
                    std::size_t world, std::size_t mem_copies) {
  const auto latest =
      find_latest_snapshot(dir, fingerprint, world, mem_copies);
  if (!latest) return;
  const std::string path = latest->stem + ".core";
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size < 32) return;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return;
  f.seekg(-1, std::ios::end);
  char byte = 0;
  f.get(byte);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(byte ^ 0x5a));
}

// Stale atomic-write leftovers from the killed attempt. Committed
// snapshots are never *.tmp, so this can only reclaim garbage.
void sweep_tmp(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
}

}  // namespace

SupervisedResult train_supervised(const TrainingConfig& cfg,
                                  const TemporalGraph& graph,
                                  const Matrix* static_memory) {
  SupervisedResult sup;
  TrainingConfig attempt_cfg = cfg;
  const std::uint64_t fingerprint =
      config_fingerprint(cfg, graph.num_nodes(), graph.num_events());
  const std::size_t world = cfg.parallel.total_trainers();

  for (std::size_t attempt = 0;; ++attempt) {
    try {
      sup.result = train_distributed(attempt_cfg, graph, static_memory);
      return sup;
    } catch (const dist::FabricError& e) {
      if (attempt >= cfg.recovery.max_restarts) throw;
      sup.failures.push_back(e.what());

      WallTimer recovery_timer;
      // The injected fault fired; a real transient fault would not
      // recur either. Disarm everything before the retry.
      attempt_cfg.fabric.fault = FaultConfig{};
      if (attempt == 0 && cfg.fabric.fault.corrupt_latest_checkpoint &&
          !cfg.recovery.checkpoint_dir.empty())
        corrupt_latest(cfg.recovery.checkpoint_dir, fingerprint, world,
                       cfg.parallel.k);
      if (!cfg.recovery.checkpoint_dir.empty())
        sweep_tmp(cfg.recovery.checkpoint_dir);

      // Newest snapshot whose every shard validates (checksum, version,
      // fingerprint, geometry); torn or corrupted sets are skipped, so
      // this is also the fallback-to-previous path.
      attempt_cfg.recovery.resume_from.clear();
      if (!cfg.recovery.checkpoint_dir.empty()) {
        if (const auto snap = find_latest_snapshot(
                cfg.recovery.checkpoint_dir, fingerprint, world,
                cfg.parallel.k))
          attempt_cfg.recovery.resume_from = snap->stem;
      }
      sup.resume_stems.push_back(attempt_cfg.recovery.resume_from);

      const std::uint64_t backoff = std::min<std::uint64_t>(
          cfg.recovery.backoff_ms << std::min<std::size_t>(attempt, 20),
          cfg.recovery.backoff_cap_ms);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));

      ++sup.restarts;
      sup.restart_latency_seconds.push_back(recovery_timer.seconds());
    }
  }
}

}  // namespace disttgl
