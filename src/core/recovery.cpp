#include "core/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "distributed/socket.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace disttgl {

namespace fs = std::filesystem;

namespace {

// fabric.fault.corrupt_latest_checkpoint: flip one payload byte of the
// newest valid snapshot's core shard. The container checksum then fails,
// validate_snapshot rejects the whole set, and recovery must fall back
// to the previous snapshot — the torn-write drill, end to end.
void corrupt_latest(const std::string& dir, std::uint64_t fingerprint,
                    std::size_t world, std::size_t mem_copies) {
  const auto latest =
      find_latest_snapshot(dir, fingerprint, world, mem_copies);
  if (!latest) return;
  const std::string path = latest->stem + ".core";
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size < 32) return;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return;
  f.seekg(-1, std::ios::end);
  char byte = 0;
  f.get(byte);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(byte ^ 0x5a));
}

// Stale atomic-write leftovers from the killed attempt. Committed
// snapshots are never *.tmp, so this can only reclaim garbage.
void sweep_tmp(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
}

}  // namespace

std::uint64_t restart_backoff_ms(const RecoveryConfig& rc,
                                 std::uint64_t seed, std::size_t attempt) {
  const std::uint64_t base = std::min<std::uint64_t>(
      rc.backoff_ms << std::min<std::size_t>(attempt, 20), rc.backoff_cap_ms);
  if (base <= 1) return base;
  // Per-(seed, attempt) stream: the same run replays the same delays,
  // while differently-seeded supervisors spread across [base/2, base].
  Rng jitter(seed ^ (0x9e3779b97f4a7c15ULL * (attempt + 1)));
  return base / 2 + jitter.uniform_int(base - base / 2 + 1);
}

SupervisedResult train_supervised(const TrainingConfig& cfg,
                                  const TemporalGraph& graph,
                                  const Matrix* static_memory) {
  SupervisedResult sup;
  TrainingConfig attempt_cfg = cfg;
  const std::uint64_t fingerprint =
      config_fingerprint(cfg, graph.num_nodes(), graph.num_events());
  const std::size_t world = cfg.parallel.total_trainers();
  // Sliding window of recent restart times for the crash-loop detector.
  std::deque<std::chrono::steady_clock::time_point> restart_times;

  for (std::size_t attempt = 0;; ++attempt) {
    try {
      sup.result = train_distributed(attempt_cfg, graph, static_memory);
      return sup;
    } catch (const dist::FabricError& e) {
      if (attempt >= cfg.recovery.max_restarts) throw;
      if (cfg.recovery.restart_window_max > 0) {
        const auto now = std::chrono::steady_clock::now();
        const auto window =
            std::chrono::milliseconds(cfg.recovery.restart_window_ms);
        restart_times.push_back(now);
        while (!restart_times.empty() && now - restart_times.front() > window)
          restart_times.pop_front();
        if (restart_times.size() > cfg.recovery.restart_window_max)
          throw dist::FabricError(
              dist::FabricErrc::kRestartStorm,
              "supervisor: " + std::to_string(restart_times.size()) +
                  " restarts inside " +
                  std::to_string(cfg.recovery.restart_window_ms) +
                  " ms (budget " +
                  std::to_string(cfg.recovery.restart_window_max) +
                  ") — crash loop, failing fast; last error: " + e.what());
      }
      sup.failures.push_back(e.what());

      WallTimer recovery_timer;
      // The injected fault fired; a real transient fault would not
      // recur either. Disarm everything before the retry.
      attempt_cfg.fabric.fault = FaultConfig{};
      if (attempt == 0 && cfg.fabric.fault.corrupt_latest_checkpoint &&
          !cfg.recovery.checkpoint_dir.empty())
        corrupt_latest(cfg.recovery.checkpoint_dir, fingerprint, world,
                       cfg.parallel.k);
      if (!cfg.recovery.checkpoint_dir.empty())
        sweep_tmp(cfg.recovery.checkpoint_dir);

      // Newest snapshot whose every shard validates (checksum, version,
      // fingerprint, geometry); torn or corrupted sets are skipped, so
      // this is also the fallback-to-previous path.
      attempt_cfg.recovery.resume_from.clear();
      if (!cfg.recovery.checkpoint_dir.empty()) {
        if (const auto snap = find_latest_snapshot(
                cfg.recovery.checkpoint_dir, fingerprint, world,
                cfg.parallel.k))
          attempt_cfg.recovery.resume_from = snap->stem;
      }
      sup.resume_stems.push_back(attempt_cfg.recovery.resume_from);

      const std::uint64_t backoff =
          restart_backoff_ms(cfg.recovery, cfg.seed, attempt);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));

      ++sup.restarts;
      sup.restart_latency_seconds.push_back(recovery_timer.seconds());
    }
  }
}

}  // namespace disttgl
