#include "core/tgn_model.hpp"

#include <cstring>

#include "tensor/ops.hpp"

namespace disttgl {

TGNModel::TGNModel(const ModelConfig& cfg, const TemporalGraph& graph,
                   const Matrix* static_memory, Rng& rng)
    : cfg_(cfg),
      graph_(&graph),
      static_memory_(static_memory),
      task_(graph.has_edge_labels() ? Task::kEdgeClassification
                                    : Task::kLinkPrediction),
      mail_raw_dim_(2 * cfg.mem_dim + graph.edge_feat_dim()),
      node_feat_dim_(graph.node_feat_dim()),
      mail_time_enc_("tgn.mail_time", cfg.time_dim),
      updater_("tgn.updater", mail_raw_dim_ + cfg.time_dim, cfg.mem_dim, rng),
      attention_("tgn.attn",
                 nn::AttentionDims{
                     .node_dim =
                         cfg.mem_dim + cfg.static_dim + graph.node_feat_dim(),
                     .edge_dim = graph.edge_feat_dim(),
                     .time_dim = cfg.time_dim,
                     .attn_dim = cfg.attn_dim,
                     .out_dim = cfg.emb_dim,
                     .num_heads = cfg.num_heads,
                     .max_neighbors = cfg.num_neighbors,
                 },
                 rng) {
  if (static_memory_ != nullptr) {
    DT_CHECK_EQ(static_memory_->rows(), graph.num_nodes());
    DT_CHECK_EQ(static_memory_->cols(), cfg.static_dim);
  } else {
    DT_CHECK_EQ(cfg.static_dim, 0u);
  }
  if (task_ == Task::kLinkPrediction) {
    predictor_.emplace("tgn.pred", cfg.emb_dim, cfg.head_hidden, rng);
  } else {
    classifier_.emplace("tgn.cls", cfg.emb_dim, cfg.head_hidden,
                        graph.num_classes(), rng);
  }
}

const Matrix& TGNModel::embed(const MiniBatch& mb, const MemorySlice& slice,
                              std::size_t version, EmbedCtx& ctx) {
  Workspace& ws = scratch_.ws;
  const std::size_t U = mb.unique_nodes.size();
  const std::size_t n = mb.num_pos();
  const std::size_t K = cfg_.num_neighbors;
  DT_CHECK_EQ(slice.mem.rows(), U);
  DT_CHECK_EQ(mb.root_to_unique.size(), mb.roots.size());
  ctx.n = n;

  // ---- 1. UPDT: batched GRU over unique nodes holding a mail. ----
  ctx.gru_rows.clear();
  if (cfg_.dynamic_memory) {
    for (std::size_t u = 0; u < U; ++u) {
      if (slice.has_mail[u]) ctx.gru_rows.push_back(u);
    }
  }
  ctx.s_new = slice.mem;  // nodes without mail keep their memory
  if (!ctx.gru_rows.empty()) {
    Matrix& mail_rows = ws.mat(0, 0);
    slice.mail.gather_rows_into(ctx.gru_rows, mail_rows);
    Matrix& mem_rows = ws.mat(0, 0);
    slice.mem.gather_rows_into(ctx.gru_rows, mem_rows);
    std::vector<float>& dts = ws.floats(ctx.gru_rows.size());
    for (std::size_t r = 0; r < ctx.gru_rows.size(); ++r) {
      const std::size_t u = ctx.gru_rows[r];
      dts[r] = slice.mail_ts[u] - slice.mem_ts[u];
    }
    Matrix& phi = ws.mat(0, 0);
    mail_time_enc_.forward_into(dts, &ctx.mail_time_ctx, phi);
    Matrix& gru_in = ws.mat(0, 0);
    Matrix::concat_cols_into(mail_rows, phi, gru_in);
    Matrix& updated = ws.mat(0, 0);
    updater_.forward_into(gru_in, mem_rows, ctx.gru_ctx, updated);
    ctx.s_new.scatter_rows(ctx.gru_rows, updated);
  }

  // ---- 2. Node representations {s_new || static || node features}. ----
  const Matrix* repr_unique = &ctx.s_new;
  if (static_memory_ != nullptr || node_feat_dim_ > 0) {
    Matrix& extended = ws.mat(U, cfg_.mem_dim + cfg_.static_dim + node_feat_dim_);
    for (std::size_t u = 0; u < U; ++u) {
      float* dst = extended.row_ptr(u);
      std::memcpy(dst, ctx.s_new.row_ptr(u), cfg_.mem_dim * sizeof(float));
      dst += cfg_.mem_dim;
      if (static_memory_ != nullptr) {
        std::memcpy(dst, static_memory_->row_ptr(mb.unique_nodes[u]),
                    cfg_.static_dim * sizeof(float));
        dst += cfg_.static_dim;
      }
      if (node_feat_dim_ > 0) {
        std::memcpy(dst, graph_->node_features().row_ptr(mb.unique_nodes[u]),
                    node_feat_dim_ * sizeof(float));
      }
    }
    repr_unique = &extended;
  }

  // ---- 3. Gather the version-v root subset and its neighbor windows. ----
  ctx.root_rows.clear();
  ctx.root_rows.reserve(n * (2 + mb.num_neg));
  for (std::size_t r = 0; r < 2 * n; ++r) ctx.root_rows.push_back(r);
  const std::size_t negs = mb.num_neg * (mb.neg_variants > 0 ? n : 0);
  if (negs > 0) {
    DT_CHECK_LT(version, mb.neg_variants);
    const std::size_t nb = mb.neg_begin(version);
    for (std::size_t r = 0; r < n * mb.num_neg; ++r)
      ctx.root_rows.push_back(nb + r);
  }
  const std::size_t Rv = ctx.root_rows.size();

  Matrix& root_repr = ws.mat(Rv, repr_unique->cols());
  Matrix& neigh_repr = ws.zeros(Rv * K, repr_unique->cols());
  Matrix& edge_feat = ws.zeros(Rv * K, graph_->edge_feat_dim());
  std::vector<float>& dt = ws.floats(Rv * K);
  std::vector<std::size_t>& valid = ws.indices();
  valid.resize(Rv);
  const bool has_ef = graph_->has_edge_features();
  for (std::size_t r = 0; r < Rv; ++r) {
    const std::size_t g = ctx.root_rows[r];  // row in the full root list
    root_repr.copy_row_from(r, repr_unique->row(mb.root_to_unique[g]));
    valid[r] = mb.roots.valid[g];
    for (std::size_t k = 0; k < valid[r]; ++k) {
      const std::size_t uidx = mb.neigh_to_unique[g * K + k];
      neigh_repr.copy_row_from(r * K + k, repr_unique->row(uidx));
      // Δt for Φ in Eq. 5: query time − neighbor edge time (the TGN/TGL
      // convention; it directly encodes how recent the relationship is,
      // which the recency-driven workloads need).
      dt[r * K + k] = mb.roots.neigh_dt[g * K + k];
      if (has_ef) {
        edge_feat.copy_row_from(
            r * K + k,
            graph_->edge_features().row(mb.roots.neigh_edge[g * K + k]));
      }
    }
  }

  return attention_.forward(root_repr, neigh_repr, edge_feat, dt, valid,
                            &ctx.attn_ctx);
}

void TGNModel::embed_backward(const MiniBatch& mb, EmbedCtx& ctx,
                              const Matrix& demb) {
  Workspace& ws = scratch_.ws;
  const std::size_t U = mb.unique_nodes.size();
  const std::size_t K = cfg_.num_neighbors;

  nn::TemporalAttention::InputGrads& grads = scratch_.attn_grads;
  attention_.backward_into(ctx.attn_ctx, demb, grads);

  // Scatter-add root and neighbor representation gradients back to the
  // unique-node axis, then split off the dynamic-memory block (the
  // static block is frozen; raw node features are data).
  Matrix& drepr = ws.zeros(U, cfg_.mem_dim + cfg_.static_dim + node_feat_dim_);
  for (std::size_t r = 0; r < ctx.root_rows.size(); ++r) {
    const std::size_t g = ctx.root_rows[r];
    drepr.add_row_from(mb.root_to_unique[g], grads.dnode_repr.row(r));
    for (std::size_t k = 0; k < mb.roots.valid[g]; ++k) {
      drepr.add_row_from(mb.neigh_to_unique[g * K + k],
                         grads.dneigh_repr.row(r * K + k));
    }
  }
  const Matrix* ds_new = &drepr;
  if (drepr.cols() > cfg_.mem_dim) {
    Matrix& sliced = ws.mat(0, 0);
    drepr.slice_cols_into(0, cfg_.mem_dim, sliced);
    ds_new = &sliced;
  }

  // Through the GRU for the rows it touched; the chain stops at the
  // previous memory and the mail contents (both inputs from storage).
  if (!ctx.gru_rows.empty()) {
    Matrix& dh = ws.mat(0, 0);
    ds_new->gather_rows_into(ctx.gru_rows, dh);
    updater_.backward_into(ctx.gru_ctx, dh, scratch_.gru_grads);
    // The trailing time_dim columns of dx feed the mail time encoding.
    mail_time_enc_.backward_cols(ctx.mail_time_ctx, scratch_.gru_grads.dx,
                                 mail_raw_dim_);
  }
}

void TGNModel::make_write(const MiniBatch& mb, const MemorySlice& slice,
                          const EmbedCtx& ctx, BatchDiagnostics& diag,
                          MemoryWrite& w) {
  const std::size_t n = mb.num_pos();

  // COMB = most recent: iterate events chronologically; the last mail per
  // node survives. Track per-unique-node write slots for positive roots.
  // All working buffers persist in scratch_ (capacity-preserving).
  std::vector<std::size_t>& slot_of_unique = scratch_.slot_of_unique;
  slot_of_unique.assign(mb.unique_nodes.size(), static_cast<std::size_t>(-1));
  const std::size_t edim = graph_->edge_feat_dim();
  std::vector<float>& mail_row = scratch_.mail_row;
  mail_row.resize(mail_raw_dim_);

  // First pass: count distinct positive roots to size the buffers.
  std::vector<std::size_t>& uniq_roots = scratch_.uniq_roots;
  uniq_roots.clear();
  for (std::size_t r = 0; r < 2 * n; ++r) {
    const std::size_t u = mb.root_to_unique[r];
    if (slot_of_unique[u] == static_cast<std::size_t>(-1)) {
      slot_of_unique[u] = uniq_roots.size();
      uniq_roots.push_back(u);
    }
  }
  const bool comb_mean = cfg_.comb == CombPolicy::kMean;
  w.nodes.resize(uniq_roots.size());
  w.mem.reset_shape(uniq_roots.size(), cfg_.mem_dim);
  w.mem_ts.resize(uniq_roots.size());
  // Every distinct positive root receives at least one mail below, so
  // most-recent rows need no clearing; mean rows accumulate from zero.
  if (comb_mean) {
    w.mail.resize(uniq_roots.size(), mail_raw_dim_, 0.0f);
  } else {
    w.mail.reset_shape(uniq_roots.size(), mail_raw_dim_);
  }
  w.mail_ts.resize(uniq_roots.size());
  std::vector<float>& mail_counts = scratch_.mail_counts;
  mail_counts.assign(comb_mean ? uniq_roots.size() : 0, 0.0f);

  // Memory rows: post-UPDT values; last-update time = consumed mail's
  // timestamp for GRU-touched rows, previous value otherwise.
  for (std::size_t s = 0; s < uniq_roots.size(); ++s) {
    const std::size_t u = uniq_roots[s];
    w.nodes[s] = mb.unique_nodes[u];
    w.mem.copy_row_from(s, ctx.s_new.row(u));
    w.mem_ts[s] = slice.has_mail[u] ? slice.mail_ts[u] : slice.mem_ts[u];
  }

  // Mails, in event order so the most recent one per node wins.
  for (std::size_t e = 0; e < n; ++e) {
    const std::size_t u_src = mb.root_to_unique[e];
    const std::size_t u_dst = mb.root_to_unique[n + e];
    const float t = mb.ts[e];
    diag.mails_generated += 2;
    diag.staleness_sum += (t - slice.mem_ts[u_src]) + (t - slice.mem_ts[u_dst]);
    diag.staleness_count += 2;
    auto fill = [&](std::size_t u_self, std::size_t u_other) {
      std::memcpy(mail_row.data(), ctx.s_new.row_ptr(u_self),
                  cfg_.mem_dim * sizeof(float));
      std::memcpy(mail_row.data() + cfg_.mem_dim, ctx.s_new.row_ptr(u_other),
                  cfg_.mem_dim * sizeof(float));
      if (edim > 0) {
        std::memcpy(mail_row.data() + 2 * cfg_.mem_dim,
                    graph_->edge_features().row_ptr(mb.events[e]),
                    edim * sizeof(float));
      }
      const std::size_t s = slot_of_unique[u_self];
      if (comb_mean) {
        // COMB = mean: accumulate now, normalize after the event loop.
        w.mail.add_row_from(s, mail_row);
        mail_counts[s] += 1.0f;
      } else {
        // COMB = most recent: later events overwrite (chronological loop).
        w.mail.copy_row_from(s, mail_row);
      }
      w.mail_ts[s] = t;
    };
    fill(u_src, u_dst);
    fill(u_dst, u_src);
  }
  if (comb_mean) {
    for (std::size_t s = 0; s < uniq_roots.size(); ++s) {
      const float inv = mail_counts[s] > 0.0f ? 1.0f / mail_counts[s] : 0.0f;
      float* row = w.mail.row_ptr(s);
      for (std::size_t c = 0; c < mail_raw_dim_; ++c) row[c] *= inv;
    }
  }
  diag.mails_kept += uniq_roots.size();
}

void TGNModel::run(const MiniBatch& mb, const MemorySlice& slice,
                   std::size_t version, MemoryWrite* write, bool train,
                   StepResult& result) {
  Scratch& s = scratch_;
  s.ws.reset();
  EmbedCtx& ctx = s.embed;
  const Matrix& emb = embed(mb, slice, version, ctx);
  const std::size_t n = mb.num_pos();
  const std::size_t Q = mb.num_neg;

  result.loss = 0.0f;
  result.diag = BatchDiagnostics{};
  s.demb.resize(emb.rows(), emb.cols(), 0.0f);

  if (task_ == Task::kLinkPrediction) {
    DT_CHECK_GT(mb.neg_variants, 0u);
    Matrix& src_emb = s.ws.mat(0, 0);
    emb.slice_rows_into(0, n, src_emb);
    Matrix& dst_emb = s.ws.mat(0, 0);
    emb.slice_rows_into(n, 2 * n, dst_emb);
    // Repeat each src row Q times to pair with its negatives.
    Matrix& neg_emb = s.ws.mat(0, 0);
    emb.slice_rows_into(2 * n, 2 * n + n * Q, neg_emb);
    Matrix& src_rep = s.ws.mat(n * Q, emb.cols());
    for (std::size_t e = 0; e < n; ++e)
      for (std::size_t q = 0; q < Q; ++q)
        src_rep.copy_row_from(e * Q + q, src_emb.row(e));

    predictor_->forward_into(src_emb, dst_emb, &s.pos_ctx, result.pos_scores);
    Matrix& neg_flat = s.ws.mat(0, 0);
    predictor_->forward_into(src_rep, neg_emb, &s.neg_ctx, neg_flat);

    Matrix& dpos = s.ws.mat(0, 0);
    Matrix& dneg = s.ws.mat(0, 0);
    result.loss = nn::link_prediction_loss(result.pos_scores, neg_flat, dpos, dneg);
    result.neg_scores = neg_flat;
    result.neg_scores.reshape(n, Q);

    if (train) {
      predictor_->backward_into(s.pos_ctx, dpos, s.gpos);
      predictor_->backward_into(s.neg_ctx, dneg, s.gneg);
      for (std::size_t e = 0; e < n; ++e) {
        s.demb.add_row_from(e, s.gpos.dsrc.row(e));
        s.demb.add_row_from(n + e, s.gpos.ddst.row(e));
        for (std::size_t q = 0; q < Q; ++q) {
          s.demb.add_row_from(e, s.gneg.dsrc.row(e * Q + q));
          s.demb.add_row_from(2 * n + e * Q + q, s.gneg.ddst.row(e * Q + q));
        }
      }
    }
  } else {
    Matrix& src_emb = s.ws.mat(0, 0);
    emb.slice_rows_into(0, n, src_emb);
    Matrix& dst_emb = s.ws.mat(0, 0);
    emb.slice_rows_into(n, 2 * n, dst_emb);
    classifier_->forward_into(src_emb, dst_emb, &s.cls_ctx, result.logits);
    Matrix& targets = s.ws.mat(n, classifier_->num_classes());
    for (std::size_t e = 0; e < n; ++e)
      targets.copy_row_from(e, graph_->edge_labels().row(mb.events[e]));
    Matrix& dlogits = s.ws.mat(0, 0);
    result.loss = nn::multilabel_bce_loss(result.logits, targets, dlogits);
    if (train) {
      classifier_->backward_into(s.cls_ctx, dlogits, s.gcls);
      for (std::size_t e = 0; e < n; ++e) {
        s.demb.add_row_from(e, s.gcls.dsrc.row(e));
        s.demb.add_row_from(n + e, s.gcls.ddst.row(e));
      }
    }
  }

  if (train) embed_backward(mb, ctx, s.demb);
  if (write != nullptr) make_write(mb, slice, ctx, result.diag, *write);
}

void TGNModel::train_step_into(const MiniBatch& mb, const MemorySlice& slice,
                               std::size_t version, MemoryWrite* write,
                               StepResult& out) {
  run(mb, slice, version, write, /*train=*/true, out);
}

TGNModel::StepResult TGNModel::train_step(const MiniBatch& mb,
                                          const MemorySlice& slice,
                                          std::size_t version,
                                          MemoryWrite* write) {
  StepResult result;
  run(mb, slice, version, write, /*train=*/true, result);
  return result;
}

void TGNModel::infer_into(const MiniBatch& mb, const MemorySlice& slice,
                          MemoryWrite* write, StepResult& out) {
  run(mb, slice, /*version=*/0, write, /*train=*/false, out);
}

TGNModel::StepResult TGNModel::infer(const MiniBatch& mb,
                                     const MemorySlice& slice,
                                     MemoryWrite* write) {
  StepResult result;
  run(mb, slice, /*version=*/0, write, /*train=*/false, result);
  return result;
}

void TGNModel::collect_parameters(std::vector<nn::Parameter*>& out) {
  mail_time_enc_.collect_parameters(out);
  updater_.collect_parameters(out);
  attention_.collect_parameters(out);
  if (predictor_) predictor_->collect_parameters(out);
  if (classifier_) classifier_->collect_parameters(out);
}

}  // namespace disttgl
