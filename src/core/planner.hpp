// Heuristic training-configuration planner (§3.2.4).
//
// Given dataset characteristics and hardware limits, pick (i, j, k):
//   1. Measure the captured-dependency fraction as a function of batch
//      size (the Fig. 8 curve: larger batches mean more same-batch mails
//      collapsed by COMB, i.e. lost graph events) and find the largest
//      global batch keeping it above the user threshold.
//   2. i = global batch / GPU-saturation batch (mini-batch parallelism
//      only as far as the accuracy budget allows).
//   3. k as large as host memory and the k ≥ machines constraint allow —
//      memory parallelism is always preferred (§3.2.4, validated in
//      Fig 9/10).
//   4. j fills the remainder: j = (machines·gpus)/(i·k).
#pragma once

#include "core/config.hpp"
#include "graph/temporal_graph.hpp"
#include "sampling/batching.hpp"

namespace disttgl {

struct PlannerInputs {
  std::size_t machines = 1;
  std::size_t gpus_per_machine = 8;
  // Host-memory capacity expressed as node-memory copies per machine.
  std::size_t mem_copies_per_machine = 8;
  // Local batch size beyond which the GPU shows no throughput gain.
  std::size_t gpu_saturation_batch = 600;
  // Minimum acceptable captured-dependency fraction (Fig 8 threshold).
  double capture_threshold = 0.85;
  std::size_t min_batch = 60;
};

struct Plan {
  ParallelConfig parallel;
  std::size_t local_batch = 0;
  std::size_t global_batch = 0;
  double capture_fraction = 0.0;  // at the chosen global batch
};

// Fraction of graph events whose mail survives COMB when training events
// [begin, end) are processed in batches of `batch_size` — the planner's
// dependency-capture metric and the quantity plotted in Fig 8.
double captured_fraction(const TemporalGraph& g, std::size_t begin,
                         std::size_t end, std::size_t batch_size);

Plan plan_training(const TemporalGraph& g, const EventSplit& split,
                   const PlannerInputs& in);

}  // namespace disttgl
