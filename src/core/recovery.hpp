// Elastic supervisor: restart-on-failure around train_distributed.
//
// train_supervised runs the configured fabric under a restart loop
// driven by cfg.recovery: a training attempt that dies with a
// FabricError (crashed rank, lost heartbeat, poisoned collective) is
// torn down — the proc fabric's owning locals reclaim shm and the
// launcher SIGKILLs stragglers on unwind — and retried up to
// recovery.max_restarts times with exponential backoff. Each retry
// resumes from the newest *valid* snapshot in recovery.checkpoint_dir
// (checkpoint.hpp's find_latest_snapshot skips torn or corrupt
// snapshot sets, falling back to the previous one), or from scratch
// when no valid snapshot exists yet.
//
// Determinism contract (tests/test_equivalence): a run killed at
// iteration n and resumed from its snapshot produces final weights,
// loss totals, and memory digests bitwise equal to the uninterrupted
// run — on both fabrics.
//
// With recovery.max_restarts == 0 (the default) the supervisor adds
// nothing: the first FabricError propagates to the caller unchanged
// (fail fast, typed).
#pragma once

#include "core/proc_trainer.hpp"

namespace disttgl {

struct SupervisedResult {
  ThreadedTrainResult result;
  // Restart accounting for bench/recovery_ops and the recovery tests.
  std::size_t restarts = 0;
  // Per-restart recovery latency: teardown already happened when the
  // error surfaced; this measures snapshot discovery + backoff + the
  // decision overhead between "attempt died" and "next attempt starts".
  std::vector<double> restart_latency_seconds;
  // what() of each failed attempt's error, in order.
  std::vector<std::string> failures;
  // Stem each restart resumed from ("" = from scratch).
  std::vector<std::string> resume_stems;
};

// Runs train_distributed under the restart policy above. Fault-injection
// knobs (cfg.fabric.fault) fire on the first attempt only — the
// supervisor disarms them in its working copy before retrying, exactly
// like a real transient fault that does not recur. Chaos knobs
// (cfg.fabric.chaos) stay armed: they model the environment, which a
// restart does not fix. With recovery.restart_window_{ms,max} set, a
// crash-looping group (more restarts than the budget inside the sliding
// window) fails fast with a typed kRestartStorm.
SupervisedResult train_supervised(const TrainingConfig& cfg,
                                  const TemporalGraph& graph,
                                  const Matrix* static_memory = nullptr);

// Backoff before restart attempt `attempt` (0-based): capped exponential
// base backoff_ms * 2^attempt (cap backoff_cap_ms) with deterministic
// seeded jitter drawn uniformly from [base/2, base] — anti-stampede, so
// co-scheduled supervisors with different seeds desynchronise while any
// single run stays reproducible. Bases of 0/1 ms are returned as-is
// (nothing to jitter).
std::uint64_t restart_backoff_ms(const RecoveryConfig& rc,
                                 std::uint64_t seed, std::size_t attempt);

}  // namespace disttgl
