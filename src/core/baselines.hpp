// Baseline configurations and throughput-profile extraction.
//
// The paper compares DistTGL against TGN (the reference implementation,
// single GPU, fully serial) and TGL-TGN (TGL's multi-GPU training, which
// is exactly mini-batch parallelism on one machine). Convergence-wise
// both baselines are i×1×1 schedules of this repo's trainer (without the
// static node memory); system-wise they differ in pipeline structure,
// captured by distributed/throughput_model.
//
// make_iteration_profile measures real per-iteration volumes (unique
// nodes, neighbor occupancy, feature bytes, flops) by building a sample
// of actual mini-batches, so the Fig 12 simulation runs on measured
// inputs rather than guessed ones.
#pragma once

#include "core/config.hpp"
#include "core/tgn_model.hpp"
#include "distributed/throughput_model.hpp"
#include "sampling/batching.hpp"

namespace disttgl {

// TGN baseline: vanilla single-GPU M-TGNN (no static memory).
TrainingConfig tgn_baseline_config(const TrainingConfig& base);
// TGL-TGN baseline on n GPUs: mini-batch parallelism only.
TrainingConfig tgl_baseline_config(const TrainingConfig& base, std::size_t gpus);

// Measures an IterationProfile for the given model/dataset/batch shape by
// building `sample_batches` real mini-batches from the training split.
dist::IterationProfile make_iteration_profile(const ModelConfig& model,
                                              const TemporalGraph& graph,
                                              const EventSplit& split,
                                              std::size_t local_batch,
                                              std::size_t num_neg,
                                              std::size_t neg_variants,
                                              std::size_t sample_batches = 8);

}  // namespace disttgl
