// TGN-attn with static node memory — the DistTGL model (§2.1, §3.1).
//
// One training step, given a mini-batch and the memory slice for its
// unique nodes (read through the daemon or directly from a MemoryState):
//
//   1. UPDT: for every unique node with a cached mail, update its memory
//      with one GRU application on {mail || Φ(t_mail − t_mem)} (Eq. 3/8;
//      COMB already applied at mailbox-write time). Gradients train the
//      GRU within the cell — the chain stops at the previous memory, as
//      in the paper (no BPTT).
//   2. Node representation = {s_new || static_memory[v]} (§3.1). The
//      static table is pre-trained and frozen.
//   3. Temporal attention (Eq. 4–7) over the version-v root subset
//      {src, dst, variant-v negatives} produces output embeddings. Δt
//      for neighbor w is query-time − last-update-time of w's memory.
//   4. Task head: link-prediction BCE against the variant's negatives,
//      or multi-label classification against edge labels.
//   5. Version 0 additionally assembles the MemoryWrite: updated memory
//      rows for positive roots and fresh mails {s'_u || s'_v || e_uv}
//      with COMB = most-recent (the last event per node in the batch
//      wins), using the *updated-but-pre-batch* memory — exactly the
//      staleness/information-loss behaviour of Fig. 3.
//
// The model owns learnable weights plus a private Scratch of reusable
// per-batch buffers (layer Ctx structs and a Workspace arena), so
// steady-state iterations perform no heap allocations on the embed /
// backward hot path. The Scratch makes an instance stateful across
// calls but still safe to replicate per trainer thread (each trainer
// rank owns its own TGNModel).
#pragma once

#include <optional>

#include "core/config.hpp"
#include "memory/memory_state.hpp"
#include "nn/attention.hpp"
#include "nn/gru_cell.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/predictor.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/workspace.hpp"

namespace disttgl {

// Per-batch bookkeeping for the diagnostics figures (Fig 3 / Fig 8).
struct BatchDiagnostics {
  std::size_t mails_generated = 0;  // 2 per event (src and dst sides)
  std::size_t mails_kept = 0;       // after COMB (unique positive roots)
  double staleness_sum = 0.0;       // Σ (event_ts − mem_ts) over roots
  std::size_t staleness_count = 0;
};

class TGNModel : public nn::Module {
 public:
  enum class Task { kLinkPrediction, kEdgeClassification };

  // `static_memory` may be null (model without the §3.1 enhancement);
  // if given it must outlive the model and have one row per node.
  TGNModel(const ModelConfig& cfg, const TemporalGraph& graph,
           const Matrix* static_memory, Rng& rng);

  const ModelConfig& config() const { return cfg_; }
  Task task() const { return task_; }
  std::size_t mail_raw_dim() const { return mail_raw_dim_; }

  struct StepResult {
    float loss = 0.0f;
    // Link prediction: scores for MRR-style metrics.
    Matrix pos_scores;  // [n x 1]
    Matrix neg_scores;  // [n x num_neg]
    // Classification: logits [n x C].
    Matrix logits;
    BatchDiagnostics diag;
  };

  // Forward + backward for version `version` of the batch; accumulates
  // parameter gradients. If `write` is non-null (version 0 only), fills
  // the memory write-back for the positive roots. The `_into` form
  // reuses a caller-owned StepResult (capacity-preserving score/logit
  // buffers), closing the last per-iteration allocation of the training
  // loop; the value-returning forms are allocating conveniences.
  void train_step_into(const MiniBatch& mb, const MemorySlice& slice,
                       std::size_t version, MemoryWrite* write,
                       StepResult& out);
  StepResult train_step(const MiniBatch& mb, const MemorySlice& slice,
                        std::size_t version, MemoryWrite* write);

  // Forward only (no gradients); used by the evaluator. Fills `write`
  // when non-null so evaluation advances the memory stream.
  void infer_into(const MiniBatch& mb, const MemorySlice& slice,
                  MemoryWrite* write, StepResult& out);
  StepResult infer(const MiniBatch& mb, const MemorySlice& slice,
                   MemoryWrite* write);

  void collect_parameters(std::vector<nn::Parameter*>& out) override;

 private:
  struct EmbedCtx {
    nn::GRUCell::Ctx gru_ctx;
    nn::TimeEncoding::Ctx mail_time_ctx;
    nn::TemporalAttention::Ctx attn_ctx;
    Matrix s_new;                        // [U x mem] post-UPDT memory
    std::vector<std::size_t> gru_rows;   // unique rows the GRU touched
    std::vector<std::size_t> root_rows;  // version root rows (global ids)
    std::size_t n = 0;                   // positives in the batch
  };

  // All reusable per-batch buffers. Reset (shape-wise) every run(); heap
  // capacity persists across iterations.
  struct Scratch {
    EmbedCtx embed;
    Workspace ws;                               // loose temporaries
    nn::TemporalAttention::InputGrads attn_grads;
    nn::GRUCell::InputGrads gru_grads;
    nn::EdgePredictor::Ctx pos_ctx, neg_ctx;
    nn::EdgePredictor::InputGrads gpos, gneg;
    nn::EdgeClassifier::Ctx cls_ctx;
    nn::EdgeClassifier::InputGrads gcls;
    Matrix demb;                                // dL/d(embeddings)
    // make_write working set (persists so assembling the MemoryWrite
    // allocates nothing at steady state).
    std::vector<std::size_t> slot_of_unique;    // unique idx → write slot
    std::vector<std::size_t> uniq_roots;        // distinct positive roots
    std::vector<float> mail_row;                // one staged mail payload
    std::vector<float> mail_counts;             // COMB=mean normalizers
  };

  // Shared forward: UPDT + representations + attention for one version.
  // Returns embeddings [n*(2+num_neg) x emb_dim] for roots
  // {src, dst, neg_v}, in that order (reference into the attention Ctx).
  const Matrix& embed(const MiniBatch& mb, const MemorySlice& slice,
                      std::size_t version, EmbedCtx& ctx);
  // Backward through embed (grads accumulate into parameters).
  void embed_backward(const MiniBatch& mb, EmbedCtx& ctx, const Matrix& demb);

  // Loss + head forward (and backward when `train`), into a reusable
  // caller-owned result.
  void run(const MiniBatch& mb, const MemorySlice& slice, std::size_t version,
           MemoryWrite* write, bool train, StepResult& result);

  // Assembles the write-back into `w` in place (capacity-preserving;
  // the working buffers live in scratch_, hence non-const).
  void make_write(const MiniBatch& mb, const MemorySlice& slice,
                  const EmbedCtx& ctx, BatchDiagnostics& diag, MemoryWrite& w);

  ModelConfig cfg_;
  const TemporalGraph* graph_;
  const Matrix* static_memory_;
  Task task_;
  std::size_t mail_raw_dim_;  // 2*mem_dim + edge_feat_dim
  std::size_t node_feat_dim_; // raw node features appended to the repr

  nn::TimeEncoding mail_time_enc_;  // Φ inside UPDT input
  nn::GRUCell updater_;
  nn::TemporalAttention attention_;
  std::optional<nn::EdgePredictor> predictor_;
  std::optional<nn::EdgeClassifier> classifier_;

  Scratch scratch_;
};

}  // namespace disttgl
