#include "core/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/check.hpp"

namespace disttgl {

namespace {

constexpr std::uint32_t kMagic = 0x4c475444;  // "DTGL"
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DT_CHECK_MSG(in.good(), "checkpoint truncated");
  return v;
}

void write_floats(std::ostream& out, const float* data, std::size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(float)));
}

void read_floats(std::istream& in, float* data, std::size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  DT_CHECK_MSG(in.good(), "checkpoint truncated");
}

}  // namespace

bool params_are_flat(const std::vector<nn::Parameter*>& params) {
  if (params.empty()) return false;
  const float* base = params[0]->value.data();
  std::size_t off = 0;
  for (const nn::Parameter* p : params) {
    if (p->value.data() != base + off) return false;
    off += p->size();
  }
  return true;
}

void save_checkpoint(const std::string& path, std::span<const float> weights,
                     const std::vector<const MemoryState*>& states) {
  std::ofstream out(path, std::ios::binary);
  DT_CHECK_MSG(out.good(), "cannot open checkpoint for writing: " << path);
  std::uint32_t head[2] = {kMagic, kVersion};
  out.write(reinterpret_cast<const char*>(head), sizeof(head));

  write_u64(out, weights.size());
  write_floats(out, weights.data(), weights.size());

  write_u64(out, states.size());
  for (const MemoryState* s : states) {
    write_u64(out, s->num_nodes());
    write_u64(out, s->mem_dim());
    write_u64(out, s->mail_dim());
    // Gather all rows in node order (also serializes timestamps/flags).
    std::vector<NodeId> all(s->num_nodes());
    for (NodeId v = 0; v < s->num_nodes(); ++v) all[v] = v;
    MemorySlice slice;
    s->read_into(all, slice);
    write_floats(out, slice.mem.data(), slice.mem.size());
    write_floats(out, slice.mem_ts.data(), slice.mem_ts.size());
    write_floats(out, slice.mail.data(), slice.mail.size());
    write_floats(out, slice.mail_ts.data(), slice.mail_ts.size());
    std::vector<float> flags(slice.has_mail.begin(), slice.has_mail.end());
    write_floats(out, flags.data(), flags.size());
  }
  DT_CHECK_MSG(out.good(), "checkpoint write failed: " << path);
}

void save_checkpoint(const std::string& path,
                     const std::vector<nn::Parameter*>& params,
                     const std::vector<const MemoryState*>& states) {
  if (params_are_flat(params)) {
    // Flat storage: the concatenated-value buffer already exists.
    save_checkpoint(
        path, std::span<const float>(params[0]->value.data(),
                                     nn::flat_size(params)),
        states);
    return;
  }
  std::vector<float> weights;
  nn::flatten_values(params, weights);
  save_checkpoint(path, weights, states);
}

void load_checkpoint(const std::string& path, std::span<float> weights,
                     std::vector<MemoryState*>& states) {
  std::ifstream in(path, std::ios::binary);
  DT_CHECK_MSG(in.good(), "cannot open checkpoint: " << path);
  std::uint32_t head[2] = {0, 0};
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  DT_CHECK_MSG(head[0] == kMagic, "not a DistTGL checkpoint: " << path);
  DT_CHECK_MSG(head[1] == kVersion, "unsupported checkpoint version "
                                        << head[1]);

  const std::uint64_t weight_count = read_u64(in);
  DT_CHECK_MSG(weight_count == weights.size(),
               "checkpoint weight count " << weight_count
                                          << " != model parameter count "
                                          << weights.size());
  read_floats(in, weights.data(), weights.size());

  const std::uint64_t num_states = read_u64(in);
  DT_CHECK_EQ(num_states, states.size());
  for (MemoryState* s : states) {
    const std::uint64_t nodes = read_u64(in);
    const std::uint64_t mem_dim = read_u64(in);
    const std::uint64_t mail_dim = read_u64(in);
    DT_CHECK_EQ(nodes, s->num_nodes());
    DT_CHECK_EQ(mem_dim, s->mem_dim());
    DT_CHECK_EQ(mail_dim, s->mail_dim());

    MemoryWrite w;
    w.nodes.resize(nodes);
    for (NodeId v = 0; v < nodes; ++v) w.nodes[v] = v;
    w.mem.resize(nodes, mem_dim);
    read_floats(in, w.mem.data(), w.mem.size());
    w.mem_ts.resize(nodes);
    read_floats(in, w.mem_ts.data(), w.mem_ts.size());
    w.mail.resize(nodes, mail_dim);
    read_floats(in, w.mail.data(), w.mail.size());
    w.mail_ts.resize(nodes);
    read_floats(in, w.mail_ts.data(), w.mail_ts.size());
    std::vector<float> flags(nodes);
    read_floats(in, flags.data(), flags.size());

    // Full-row restore, flags included — restore() is the one writer
    // that can clear a has_mail flag, so the loaded state reproduces the
    // saved one exactly (unflagged rows carry the zero mail the save-side
    // slice serialized for them).
    std::vector<std::uint8_t> flag_bytes(nodes);
    for (NodeId v = 0; v < nodes; ++v)
      flag_bytes[v] = flags[v] != 0.0f ? 1 : 0;
    s->reset();
    s->restore(w.nodes, w.mem, w.mem_ts, w.mail, w.mail_ts, flag_bytes);
  }
}

void load_checkpoint(const std::string& path,
                     std::vector<nn::Parameter*>& params,
                     std::vector<MemoryState*>& states) {
  if (params_are_flat(params)) {
    // Flat storage: read straight into the parameters' backing buffer.
    load_checkpoint(path,
                    std::span<float>(params[0]->value.data(),
                                     nn::flat_size(params)),
                    states);
    return;
  }
  std::vector<float> weights(nn::flat_size(params));
  load_checkpoint(path, std::span<float>(weights), states);
  nn::unflatten_values(weights, params);
}

}  // namespace disttgl
