#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "distributed/wire.hpp"

namespace disttgl {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4c475444;  // "DTGL"
constexpr std::uint32_t kVersion = 2;

// Container kinds. kModel is the deployable weights+memory checkpoint;
// the rest are recovery-snapshot shards.
enum ShardKind : std::uint32_t {
  kModel = 1,
  kCore = 2,
  kMem = 3,
  kRank = 4,
  kCommit = 5,
};

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// magic + version + kind + payload_len + checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 4;

[[noreturn]] void throw_io(const std::string& path, const char* op) {
  std::ostringstream msg;
  msg << op << " failed for checkpoint file " << path << ": "
      << std::strerror(errno);
  throw CheckpointError(CheckpointErrc::kIoError, path, msg.str());
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io(path, "write");
    }
    off += static_cast<std::size_t>(n);
  }
}

// Whole-file atomic write: header+payload → `<path>.tmp`, fsync, rename
// over the final name, fsync the directory. Readers either see the old
// file or the complete new one, never a torn mix.
void atomic_write(const std::string& path, std::uint32_t kind,
                  std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kHeaderBytes + payload.size());
  put_le32(buf, kMagic);
  put_le32(buf, kVersion);
  put_le32(buf, kind);
  put_le64(buf, payload.size());
  put_le32(buf, dist::wire_checksum(payload));
  buf.insert(buf.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io(tmp, "open");
  write_all(fd, buf.data(), buf.size(), tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io(tmp, "fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) throw_io(path, "rename");

  // Persist the rename itself: fsync the containing directory.
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort: some filesystems reject dir fsync
    ::close(dfd);
  }
}

// Reads + verifies a container, returning the checksummed payload.
std::vector<std::uint8_t> read_container(const std::string& path,
                                         std::uint32_t want_kind) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT)
      throw CheckpointError(CheckpointErrc::kMissingFile, path,
                            "checkpoint file missing: " + path);
    throw_io(path, "open");
  }
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io(path, "read");
    }
    if (n == 0) break;
    buf.insert(buf.end(), chunk, chunk + n);
  }
  ::close(fd);

  if (buf.size() < kHeaderBytes) {
    std::ostringstream msg;
    msg << "checkpoint file truncated before the header: " << path << " ("
        << buf.size() << " of " << kHeaderBytes << " header bytes)";
    throw CheckpointError(CheckpointErrc::kTruncated, path, msg.str(),
                          kHeaderBytes, buf.size());
  }
  const std::uint32_t magic = get_le32(buf.data());
  if (magic != kMagic)
    throw CheckpointError(CheckpointErrc::kBadMagic, path,
                          "not a DistTGL checkpoint: " + path, kMagic, magic);
  const std::uint32_t version = get_le32(buf.data() + 4);
  if (version != kVersion) {
    std::ostringstream msg;
    msg << "unsupported checkpoint version " << version << " (want "
        << kVersion << "): " << path;
    throw CheckpointError(CheckpointErrc::kBadVersion, path, msg.str(),
                          kVersion, version);
  }
  const std::uint32_t kind = get_le32(buf.data() + 8);
  if (kind != want_kind) {
    std::ostringstream msg;
    msg << "checkpoint shard kind " << kind << " where kind " << want_kind
        << " was expected: " << path;
    throw CheckpointError(CheckpointErrc::kBadKind, path, msg.str(), want_kind,
                          kind);
  }
  const std::uint64_t payload_len = get_le64(buf.data() + 12);
  if (buf.size() - kHeaderBytes != payload_len) {
    std::ostringstream msg;
    msg << "checkpoint payload truncated: " << path << " declares "
        << payload_len << " payload bytes, file holds "
        << (buf.size() - kHeaderBytes);
    throw CheckpointError(CheckpointErrc::kTruncated, path, msg.str(),
                          kHeaderBytes + payload_len, buf.size());
  }
  const std::uint32_t want_sum = get_le32(buf.data() + 20);
  std::vector<std::uint8_t> payload(buf.begin() + kHeaderBytes, buf.end());
  const std::uint32_t got_sum = dist::wire_checksum(payload);
  if (got_sum != want_sum) {
    std::ostringstream msg;
    msg << "checkpoint checksum mismatch: " << path << " (stored " << std::hex
        << want_sum << ", computed " << got_sum << ")";
    throw CheckpointError(CheckpointErrc::kBadChecksum, path, msg.str(),
                          want_sum, got_sum);
  }
  return payload;
}

// WireCursor overruns are FabricError kTruncated; at the checkpoint
// layer a payload that parses short is the same defect class as a short
// file, so rethrow in-type.
template <typename Fn>
auto parse_payload(const std::string& path, Fn&& fn) {
  try {
    return fn();
  } catch (const dist::FabricError& e) {
    throw CheckpointError(CheckpointErrc::kTruncated, path,
                          std::string("checkpoint payload underruns its "
                                      "declared fields: ") +
                              path + " (" + e.what() + ")");
  }
}

void expect_drained(dist::WireCursor& cur, const std::string& path) {
  if (cur.remaining() != 0) {
    std::ostringstream msg;
    msg << "checkpoint payload has " << cur.remaining()
        << " trailing bytes past the last field: " << path;
    throw CheckpointError(CheckpointErrc::kTruncated, path, msg.str(), 0,
                          cur.remaining());
  }
}

void check_size(const std::string& path, const char* field,
                std::uint64_t want, std::uint64_t got) {
  if (want == got) return;
  std::ostringstream msg;
  msg << "checkpoint " << field << " mismatch: " << path << " holds " << got
      << ", the live target needs " << want;
  throw CheckpointError(CheckpointErrc::kShapeMismatch, path, msg.str(), want,
                        got);
}

std::span<const float> matrix_span(const Matrix& m) {
  return {m.data(), m.size()};
}

// Serializes one MemoryState's full contents in node order.
void put_state(dist::WireWriter& w, const MemoryState& s) {
  w.put_u64(s.num_nodes());
  w.put_u64(s.mem_dim());
  w.put_u64(s.mail_dim());
  std::vector<NodeId> all(s.num_nodes());
  for (NodeId v = 0; v < s.num_nodes(); ++v) all[v] = v;
  MemorySlice slice;
  s.read_into(all, slice);
  w.put_f32s(matrix_span(slice.mem));
  w.put_f32s(slice.mem_ts);
  w.put_f32s(matrix_span(slice.mail));
  w.put_f32s(slice.mail_ts);
  w.put_bytes(slice.has_mail);
}

void check_state_shapes(const MemoryState& s, std::uint64_t nodes,
                        std::uint64_t mem_dim, std::uint64_t mail_dim,
                        std::size_t mem_n, std::size_t mem_ts_n,
                        std::size_t mail_n, std::size_t mail_ts_n,
                        std::size_t flags_n, const std::string& path) {
  check_size(path, "memory node count", s.num_nodes(), nodes);
  check_size(path, "memory dim", s.mem_dim(), mem_dim);
  check_size(path, "mail dim", s.mail_dim(), mail_dim);
  check_size(path, "memory row payload", nodes * mem_dim, mem_n);
  check_size(path, "memory timestamp payload", nodes, mem_ts_n);
  check_size(path, "mail row payload", nodes * mail_dim, mail_n);
  check_size(path, "mail timestamp payload", nodes, mail_ts_n);
  check_size(path, "mail flag payload", nodes, flags_n);
}

// Full-row restore, flags included — restore() is the one writer that
// can clear a has_mail flag, so the loaded state reproduces the saved
// one exactly. Shapes must have been checked already.
void apply_state(MemoryState& s, std::uint64_t nodes, std::uint64_t mem_dim,
                 std::uint64_t mail_dim, const std::vector<float>& mem,
                 const std::vector<float>& mem_ts,
                 const std::vector<float>& mail,
                 const std::vector<float>& mail_ts,
                 const std::vector<std::uint8_t>& flags) {
  std::vector<NodeId> all(nodes);
  for (NodeId v = 0; v < nodes; ++v) all[v] = v;
  Matrix mem_m(nodes, mem_dim), mail_m(nodes, mail_dim);
  std::copy(mem.begin(), mem.end(), mem_m.data());
  std::copy(mail.begin(), mail.end(), mail_m.data());
  s.reset();
  s.restore(all, mem_m, mem_ts, mail_m, mail_ts, flags);
}

std::string shard_path(const std::string& stem, const char* ext) {
  return stem + ext;
}

std::string mem_path(const std::string& stem, std::uint64_t copy) {
  return stem + ".mem" + std::to_string(copy);
}

std::string rank_path(const std::string& stem, std::uint64_t rank) {
  return stem + ".rank" + std::to_string(rank);
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Parses `ckpt_<digits>.commit`; nullopt for anything else.
std::optional<std::uint64_t> commit_iteration(const std::string& name) {
  constexpr std::string_view prefix = "ckpt_";
  constexpr std::string_view suffix = ".commit";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t iter = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    iter = iter * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return iter;
}

// Committed snapshot iterations in `dir`, newest first.
std::vector<std::uint64_t> committed_iterations(const std::string& dir) {
  std::vector<std::uint64_t> iters;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (const auto iter = commit_iteration(entry.path().filename().string()))
      iters.push_back(*iter);
  }
  std::sort(iters.rbegin(), iters.rend());
  return iters;
}

}  // namespace

const char* checkpoint_errc_name(CheckpointErrc code) {
  switch (code) {
    case CheckpointErrc::kIoError:
      return "io_error";
    case CheckpointErrc::kBadMagic:
      return "bad_magic";
    case CheckpointErrc::kBadVersion:
      return "bad_version";
    case CheckpointErrc::kBadKind:
      return "bad_kind";
    case CheckpointErrc::kTruncated:
      return "truncated";
    case CheckpointErrc::kBadChecksum:
      return "bad_checksum";
    case CheckpointErrc::kShapeMismatch:
      return "shape_mismatch";
    case CheckpointErrc::kFingerprintMismatch:
      return "fingerprint_mismatch";
    case CheckpointErrc::kMissingFile:
      return "missing_file";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointErrc code, std::string path,
                                 const std::string& what,
                                 std::uint64_t expected, std::uint64_t got)
    : std::runtime_error("[checkpoint:" +
                         std::string(checkpoint_errc_name(code)) + "] " + what),
      code_(code),
      path_(std::move(path)),
      expected_(expected),
      got_(got) {}

// ---- shard I/O -----------------------------------------------------------

std::string snapshot_stem(const std::string& dir, std::uint64_t iteration) {
  return (fs::path(dir) / ("ckpt_" + std::to_string(iteration))).string();
}

void write_core_shard(const std::string& stem, const CoreShard& s) {
  dist::WireWriter w;
  w.put_u64(s.fingerprint);
  w.put_u64(s.iteration);
  w.put_u64(s.world);
  w.put_u64(s.mem_copies);
  w.put_f32s(s.weights);
  atomic_write(shard_path(stem, ".core"), kCore, w.bytes());
}

void write_mem_shard(const std::string& stem, const MemShard& s) {
  dist::WireWriter w;
  w.put_u64(s.fingerprint);
  w.put_u64(s.iteration);
  w.put_u64(s.copy);
  w.put_u64(s.nodes);
  w.put_u64(s.mem_dim);
  w.put_u64(s.mail_dim);
  w.put_f32s(s.mem);
  w.put_f32s(s.mem_ts);
  w.put_f32s(s.mail);
  w.put_f32s(s.mail_ts);
  w.put_bytes(s.flags);
  atomic_write(mem_path(stem, s.copy), kMem, w.bytes());
}

void write_rank_shard(const std::string& stem, const RankShard& s) {
  dist::WireWriter w;
  w.put_u64(s.fingerprint);
  w.put_u64(s.iteration);
  w.put_u64(s.rank);
  w.put_f64(s.loss_sum);
  w.put_u64(s.loss_count);
  w.put_u64(s.events);
  w.put_u64(s.adam_steps);
  w.put_f32s(s.adam_m);
  w.put_f32s(s.adam_v);
  w.put_u32(s.has_slice ? 1 : 0);
  if (s.has_slice) {
    w.put_u64(s.slice_nodes);
    w.put_u64(s.slice_mem_dim);
    w.put_u64(s.slice_mail_dim);
    w.put_f32s(s.slice_mem);
    w.put_f32s(s.slice_mem_ts);
    w.put_f32s(s.slice_mail);
    w.put_f32s(s.slice_mail_ts);
    w.put_bytes(s.slice_flags);
  }
  atomic_write(rank_path(stem, s.rank), kRank, w.bytes());
}

void write_commit_shard(const std::string& stem, const CommitShard& s) {
  dist::WireWriter w;
  w.put_u64(s.fingerprint);
  w.put_u64(s.iteration);
  w.put_u64(s.world);
  w.put_u64(s.mem_copies);
  atomic_write(shard_path(stem, ".commit"), kCommit, w.bytes());
}

CoreShard read_core_shard(const std::string& stem) {
  const std::string path = shard_path(stem, ".core");
  const auto payload = read_container(path, kCore);
  return parse_payload(path, [&] {
    dist::WireCursor c(payload);
    CoreShard s;
    s.fingerprint = c.get_u64();
    s.iteration = c.get_u64();
    s.world = c.get_u64();
    s.mem_copies = c.get_u64();
    s.weights = c.get_f32s();
    expect_drained(c, path);
    return s;
  });
}

MemShard read_mem_shard(const std::string& stem, std::uint64_t copy) {
  const std::string path = mem_path(stem, copy);
  const auto payload = read_container(path, kMem);
  return parse_payload(path, [&] {
    dist::WireCursor c(payload);
    MemShard s;
    s.fingerprint = c.get_u64();
    s.iteration = c.get_u64();
    s.copy = c.get_u64();
    s.nodes = c.get_u64();
    s.mem_dim = c.get_u64();
    s.mail_dim = c.get_u64();
    s.mem = c.get_f32s();
    s.mem_ts = c.get_f32s();
    s.mail = c.get_f32s();
    s.mail_ts = c.get_f32s();
    s.flags = c.get_bytes();
    expect_drained(c, path);
    check_size(path, "memory-copy index", copy, s.copy);
    return s;
  });
}

RankShard read_rank_shard(const std::string& stem, std::uint64_t rank) {
  const std::string path = rank_path(stem, rank);
  const auto payload = read_container(path, kRank);
  return parse_payload(path, [&] {
    dist::WireCursor c(payload);
    RankShard s;
    s.fingerprint = c.get_u64();
    s.iteration = c.get_u64();
    s.rank = c.get_u64();
    s.loss_sum = c.get_f64();
    s.loss_count = c.get_u64();
    s.events = c.get_u64();
    s.adam_steps = c.get_u64();
    s.adam_m = c.get_f32s();
    s.adam_v = c.get_f32s();
    s.has_slice = c.get_u32() != 0;
    if (s.has_slice) {
      s.slice_nodes = c.get_u64();
      s.slice_mem_dim = c.get_u64();
      s.slice_mail_dim = c.get_u64();
      s.slice_mem = c.get_f32s();
      s.slice_mem_ts = c.get_f32s();
      s.slice_mail = c.get_f32s();
      s.slice_mail_ts = c.get_f32s();
      s.slice_flags = c.get_bytes();
    }
    expect_drained(c, path);
    check_size(path, "rank index", rank, s.rank);
    return s;
  });
}

CommitShard read_commit_shard(const std::string& stem) {
  const std::string path = shard_path(stem, ".commit");
  const auto payload = read_container(path, kCommit);
  return parse_payload(path, [&] {
    dist::WireCursor c(payload);
    CommitShard s;
    s.fingerprint = c.get_u64();
    s.iteration = c.get_u64();
    s.world = c.get_u64();
    s.mem_copies = c.get_u64();
    expect_drained(c, path);
    return s;
  });
}

MemShard make_mem_shard(const MemoryState& state, std::uint64_t fingerprint,
                        std::uint64_t iteration, std::uint64_t copy) {
  MemShard s;
  s.fingerprint = fingerprint;
  s.iteration = iteration;
  s.copy = copy;
  s.nodes = state.num_nodes();
  s.mem_dim = state.mem_dim();
  s.mail_dim = state.mail_dim();
  std::vector<NodeId> all(state.num_nodes());
  for (NodeId v = 0; v < state.num_nodes(); ++v) all[v] = v;
  MemorySlice slice;
  state.read_into(all, slice);
  s.mem.assign(slice.mem.data(), slice.mem.data() + slice.mem.size());
  s.mem_ts = std::move(slice.mem_ts);
  s.mail.assign(slice.mail.data(), slice.mail.data() + slice.mail.size());
  s.mail_ts = std::move(slice.mail_ts);
  s.flags = std::move(slice.has_mail);
  return s;
}

void apply_mem_shard(const MemShard& s, MemoryState& state) {
  const std::string label = "<mem shard " + std::to_string(s.copy) + ">";
  check_state_shapes(state, s.nodes, s.mem_dim, s.mail_dim, s.mem.size(),
                     s.mem_ts.size(), s.mail.size(), s.mail_ts.size(),
                     s.flags.size(), label);
  apply_state(state, s.nodes, s.mem_dim, s.mail_dim, s.mem, s.mem_ts, s.mail,
              s.mail_ts, s.flags);
}

// ---- snapshot discovery / retention --------------------------------------

bool validate_snapshot(const std::string& stem, std::uint64_t fingerprint,
                       std::uint64_t world, std::uint64_t mem_copies) {
  try {
    const CommitShard commit = read_commit_shard(stem);
    if (commit.fingerprint != fingerprint || commit.world != world ||
        commit.mem_copies != mem_copies)
      return false;
    const CoreShard core = read_core_shard(stem);
    if (core.fingerprint != fingerprint || core.iteration != commit.iteration ||
        core.world != world || core.mem_copies != mem_copies)
      return false;
    for (std::uint64_t m = 0; m < mem_copies; ++m) {
      const MemShard shard = read_mem_shard(stem, m);
      if (shard.fingerprint != fingerprint ||
          shard.iteration != commit.iteration)
        return false;
    }
    for (std::uint64_t r = 0; r < world; ++r) {
      const RankShard shard = read_rank_shard(stem, r);
      if (shard.fingerprint != fingerprint ||
          shard.iteration != commit.iteration)
        return false;
    }
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

std::vector<SnapshotRef> list_snapshots(const std::string& dir) {
  std::vector<SnapshotRef> out;
  for (const std::uint64_t iter : committed_iterations(dir))
    out.push_back(SnapshotRef{snapshot_stem(dir, iter), iter});
  return out;
}

std::optional<SnapshotRef> find_latest_snapshot(const std::string& dir,
                                                std::uint64_t fingerprint,
                                                std::uint64_t world,
                                                std::uint64_t mem_copies) {
  for (const std::uint64_t iter : committed_iterations(dir)) {
    const std::string stem = snapshot_stem(dir, iter);
    if (validate_snapshot(stem, fingerprint, world, mem_copies))
      return SnapshotRef{stem, iter};
  }
  return std::nullopt;
}

void retain_snapshots(const std::string& dir, std::size_t keep) {
  const std::vector<std::uint64_t> iters = committed_iterations(dir);
  std::error_code ec;
  for (std::size_t n = keep; n < iters.size(); ++n) {
    const std::string stem = snapshot_stem(dir, iters[n]);
    // Marker first: once it is gone the set is uncommitted, and a sweep
    // interrupted mid-shard-delete leaves garbage, not a torn snapshot.
    fs::remove(shard_path(stem, ".commit"), ec);
    const std::string prefix = "ckpt_" + std::to_string(iters[n]) + ".";
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0) fs::remove(entry.path(), ec);
    }
  }
  // Stale `*.tmp` orphans from a crash mid-atomic-write.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)
      fs::remove(entry.path(), ec);
  }
}

std::uint64_t config_fingerprint(const TrainingConfig& cfg,
                                 std::size_t num_nodes,
                                 std::size_t num_events) {
  dist::WireWriter w;
  const ModelConfig& m = cfg.model;
  w.put_u64(m.mem_dim);
  w.put_u64(m.time_dim);
  w.put_u64(m.attn_dim);
  w.put_u64(m.num_heads);
  w.put_u64(m.emb_dim);
  w.put_u64(m.num_neighbors);
  w.put_u64(m.static_dim);
  w.put_u64(m.head_hidden);
  w.put_u32(static_cast<std::uint32_t>(m.comb));
  w.put_u32(m.dynamic_memory ? 1 : 0);
  w.put_u64(cfg.parallel.i);
  w.put_u64(cfg.parallel.j);
  w.put_u64(cfg.parallel.k);
  w.put_u64(cfg.local_batch);
  w.put_u64(cfg.num_neg);
  w.put_u64(cfg.neg_groups);
  w.put_u64(cfg.epochs);
  w.put_u32(std::bit_cast<std::uint32_t>(cfg.base_lr));
  w.put_u32(cfg.scale_lr_with_world ? 1 : 0);
  w.put_u32(std::bit_cast<std::uint32_t>(cfg.grad_clip));
  w.put_u64(cfg.seed);
  w.put_u64(cfg.eval_negs);
  w.put_f64(cfg.train_frac);
  w.put_f64(cfg.val_frac);
  w.put_u32(cfg.comm_fused_step ? 1 : 0);
  w.put_u64(cfg.comm_chunk_elems);
  w.put_u64(num_nodes);
  w.put_u64(num_events);
  return fnv1a64(w.bytes());
}

// ---- deployable weights+memory checkpoints -------------------------------

bool params_are_flat(const std::vector<nn::Parameter*>& params) {
  if (params.empty()) return false;
  const float* base = params[0]->value.data();
  std::size_t off = 0;
  for (const nn::Parameter* p : params) {
    if (p->value.data() != base + off) return false;
    off += p->size();
  }
  return true;
}

void save_checkpoint(const std::string& path, std::span<const float> weights,
                     const std::vector<const MemoryState*>& states) {
  dist::WireWriter w;
  w.put_f32s(weights);
  w.put_u64(states.size());
  for (const MemoryState* s : states) put_state(w, *s);
  atomic_write(path, kModel, w.bytes());
}

void save_checkpoint(const std::string& path,
                     const std::vector<nn::Parameter*>& params,
                     const std::vector<const MemoryState*>& states) {
  if (params_are_flat(params)) {
    // Flat storage: the concatenated-value buffer already exists.
    save_checkpoint(
        path, std::span<const float>(params[0]->value.data(),
                                     nn::flat_size(params)),
        states);
    return;
  }
  std::vector<float> weights;
  nn::flatten_values(params, weights);
  save_checkpoint(path, weights, states);
}

void load_checkpoint(const std::string& path, std::span<float> weights,
                     std::vector<MemoryState*>& states) {
  const auto payload = read_container(path, kModel);
  parse_payload(path, [&] {
    dist::WireCursor c(payload);
    const std::vector<float> file_weights = c.get_f32s();
    check_size(path, "weight count", weights.size(), file_weights.size());
    const std::uint64_t num_states = c.get_u64();
    check_size(path, "memory-state count", states.size(), num_states);

    // Parse + shape-check every state's payload before touching live
    // state: a checkpoint that fails mid-file leaves the target intact.
    struct Parsed {
      std::uint64_t nodes, mem_dim, mail_dim;
      std::vector<float> mem, mem_ts, mail, mail_ts;
      std::vector<std::uint8_t> flags;
    };
    std::vector<Parsed> parsed;
    parsed.reserve(states.size());
    for (std::size_t s = 0; s < states.size(); ++s) {
      Parsed p;
      p.nodes = c.get_u64();
      p.mem_dim = c.get_u64();
      p.mail_dim = c.get_u64();
      p.mem = c.get_f32s();
      p.mem_ts = c.get_f32s();
      p.mail = c.get_f32s();
      p.mail_ts = c.get_f32s();
      p.flags = c.get_bytes();
      check_state_shapes(*states[s], p.nodes, p.mem_dim, p.mail_dim,
                         p.mem.size(), p.mem_ts.size(), p.mail.size(),
                         p.mail_ts.size(), p.flags.size(), path);
      parsed.push_back(std::move(p));
    }
    expect_drained(c, path);
    for (std::size_t s = 0; s < states.size(); ++s) {
      const Parsed& p = parsed[s];
      apply_state(*states[s], p.nodes, p.mem_dim, p.mail_dim, p.mem, p.mem_ts,
                  p.mail, p.mail_ts, p.flags);
    }
    std::copy(file_weights.begin(), file_weights.end(), weights.begin());
    return 0;
  });
}

void load_checkpoint(const std::string& path,
                     std::vector<nn::Parameter*>& params,
                     std::vector<MemoryState*>& states) {
  if (params_are_flat(params)) {
    // Flat storage: read straight into the parameters' backing buffer.
    load_checkpoint(path,
                    std::span<float>(params[0]->value.data(),
                                     nn::flat_size(params)),
                    states);
    return;
  }
  std::vector<float> weights(nn::flat_size(params));
  load_checkpoint(path, std::span<float>(weights), states);
  nn::unflatten_values(weights, params);
}

}  // namespace disttgl
