// i×j×k training schedules (§3.2, Figure 7), with the cross-trainer
// reorderings the paper introduces for epoch and memory parallelism.
//
// Terminology (one memory-copy group = i·j trainers sharing a
// MemoryState through one daemon; there are k such groups):
//
//  * round r of a group = one served (R…R)(W…W) bracket of the daemon;
//    exactly one *subgroup* (the i mini-batch-parallel trainers with the
//    same epoch-parallel index s = r mod j) starts a new global batch.
//  * trainer address: rank = ((copy·j) + subgroup)·i + chunk.
//  * reordered epoch parallelism: a trainer starting global batch b at
//    round r trains versions 0…j−1 of b at iterations r…r+j−1, each with
//    a different negative group, reading memory once (version 0) and
//    writing once (after version 0) — Fig 7(b) right.
//  * reordered memory parallelism: group m starts its sweep at batch
//    offset m·⌈B/k⌉ and cycles through all B batches chronologically,
//    resetting its memory copy whenever the cycle wraps past batch 0 —
//    Fig 7(c) right. No memory ever crosses groups.
//
// Accounting: with B global batches, E epochs (total traversals of the
// training events) and n = i·j·k trainers, each group serves
// R = E·B/(j·k) rounds and the whole run takes R + j − 1 synchronized
// iterations — the paper's "iterations on x GPUs = 1/x of a single GPU"
// up to pipeline fill/drain.
#pragma once

#include <vector>

#include "core/config.hpp"

namespace disttgl {

struct WorkItem {
  std::size_t iteration = 0;     // synchronized global iteration index
  std::size_t global_batch = 0;  // batch index within the epoch, [0, B)
  std::size_t cycle = 0;         // how many times this group wrapped
  std::size_t version = 0;       // epoch-parallel version, [0, j)
  std::size_t neg_group = 0;     // negative group for this version
  bool memory_ops = false;       // true on version 0: read + write
};

struct TrainerSchedule {
  std::size_t rank = 0;
  std::size_t mem_copy = 0;    // group index, [0, k)
  std::size_t group_rank = 0;  // rank within the group, [0, i*j)
  std::size_t subgroup = 0;    // epoch-parallel index, [0, j)
  std::size_t chunk = 0;       // mini-batch-parallel index, [0, i)
  std::vector<WorkItem> items; // ascending by iteration, at most 1 per iter
};

struct GroupSchedule {
  // reset_before_round[r] = 1 ⇔ the daemon must zero the memory copy
  // before serving round r (epoch wrap).
  std::vector<std::uint8_t> reset_before_round;
  // Global batch started at round r.
  std::vector<std::size_t> round_to_batch;
};

struct Schedule {
  std::size_t i = 1, j = 1, k = 1;
  std::size_t num_batches = 0;      // B (global batches per epoch)
  std::size_t epochs = 0;           // E
  std::size_t rounds_per_group = 0; // R
  std::size_t total_iterations = 0; // R + j − 1
  std::vector<TrainerSchedule> trainers;  // size i*j*k
  std::vector<GroupSchedule> groups;      // size k

  // Iterations that complete one traversal of the training events —
  // the evaluation cadence (B/(j·k), at least 1).
  std::size_t iterations_per_epoch() const {
    const std::size_t d = j * k;
    return std::max<std::size_t>(1, num_batches / d);
  }
};

// Builds the full schedule. Requirements: E divisible by j·k would make
// the accounting exact; otherwise rounds are rounded up and the final
// partial sweep is dropped (benches choose divisible configurations).
Schedule build_schedule(const ParallelConfig& parallel, std::size_t num_batches,
                        std::size_t epochs, std::size_t neg_groups);

}  // namespace disttgl
