// Model and training configuration.
#pragma once

#include <cstdint>
#include <string>

#include "distributed/chaos.hpp"
#include "memory/mailbox.hpp"

namespace disttgl {

// TGN-attn architecture hyperparameters (§4.0.1: memory dim 100, 10 most
// recent neighbors, one attention layer). Defaults here are scaled to the
// synthetic datasets; benches override as needed.
struct ModelConfig {
  std::size_t mem_dim = 32;         // node memory width (paper: 100)
  std::size_t time_dim = 8;         // time encoding width
  std::size_t attn_dim = 32;        // attention q/K/V width (all heads)
  std::size_t num_heads = 2;
  std::size_t emb_dim = 32;         // output embedding width
  std::size_t num_neighbors = 10;   // K most recent neighbors
  std::size_t static_dim = 0;       // 0 = no static node memory (§3.1)
  std::size_t head_hidden = 32;     // predictor/classifier MLP hidden
  CombPolicy comb = CombPolicy::kMostRecent;
  // false disables the GRU dynamic memory entirely (static-only ablation
  // used by the Fig 5 study and the EDGE-style comparison).
  bool dynamic_memory = true;
};

// Parallel training configuration i×j×k (§3.2.4): i = mini-batch
// parallelism, j = epoch parallelism, k = memory parallelism, laid out on
// `machines` × `gpus_per_machine` trainers.
struct ParallelConfig {
  std::size_t i = 1;
  std::size_t j = 1;
  std::size_t k = 1;
  std::size_t machines = 1;
  std::size_t gpus_per_machine = 1;

  std::size_t total_trainers() const { return i * j * k; }
};

// Mini-batch generation pipeline (docs/ARCHITECTURE.md "The batch
// pipeline"). kPooled is the system path: prefetchers dispatch
// construction jobs to a shared worker pool and recycle buffers through
// per-trainer MiniBatchPools (steady-state allocation-free). kLegacy is
// the pre-pipeline behaviour — one dedicated worker thread per
// prefetcher, a fresh heap MiniBatch per build — kept as the
// before/after baseline for bench/training_throughput.
enum class PipelineMode : std::uint8_t { kLegacy, kPooled };

// Transport fabric for collective + daemon traffic (docs/ARCHITECTURE.md
// "The process fabric"). kThread is the in-process system path: trainer
// threads over shared vectors. kProc forks one OS process per rank and
// runs the identical algorithms over POSIX shared memory, with control
// traffic on UNIX sockets — the single-machine analogue of the paper's
// per-GPU worker processes. kTcp layers the multi-machine topology on
// top: ranks are grouped into `fabric.tcp.hosts` simulated hosts, the
// collective runs shm intra-host and a framed-TCP leader ring
// inter-host (docs/ARCHITECTURE.md "The multi-machine fabric"), with
// reduction order fixed by global rank so results stay bitwise
// identical to the other two fabrics.
enum class FabricKind : std::uint8_t { kThread, kProc, kTcp };

// Chaos-injection knobs for the recovery test/bench harness
// (docs/TUNING.md "Fault injection"). All default-off; armed faults fire
// exactly once inside run_rank and are disarmed by the supervisor before
// it restarts the group, so a restarted run trains clean.
struct FaultConfig {
  // SIGKILL (proc fabric) / throw kInjectedFault (thread fabric) on rank
  // `kill_rank` at the top of global iteration `kill_iteration`.
  bool kill_armed = false;
  std::size_t kill_rank = 0;
  std::size_t kill_iteration = 0;
  // Stop making progress (and heartbeating) on `stall_rank` at iteration
  // `stall_iteration` without dying — exercises hung-rank detection.
  // Proc fabric only: a stalled thread would wedge the in-process group.
  bool stall_armed = false;
  std::size_t stall_rank = 0;
  std::size_t stall_iteration = 0;
  // Supervisor-side: flip one payload byte in the newest snapshot before
  // the first restart, forcing the fallback-to-previous path.
  bool corrupt_latest_checkpoint = false;
  // Sleep this long inside every snapshot write, after the pre-save
  // kCheckpointNote is emitted — deterministically simulates an
  // fsync-bound save that outlasts heartbeat_timeout_ms, exercising the
  // checkpoint grace window in ProcGroup::wait. 0 = off.
  std::size_t slow_save_ms = 0;
};

// TCP-fabric knobs (FabricKind::kTcp only; docs/TUNING.md "Fabric").
struct TcpFabricConfig {
  // Simulated host count: ranks are split into `hosts` contiguous,
  // balanced spans; each span shares one shm segment and elects its
  // first rank as leader for the inter-host TCP ring.
  std::size_t hosts = 2;
  // Interface the rendezvous listener and the leader rings bind. The
  // simulated topology runs everything over loopback.
  std::string bind_host = "127.0.0.1";
  // Rendezvous listener port; 0 = ephemeral (kernel-assigned).
  std::uint16_t port = 0;
  // TCP_NODELAY on every fabric connection: collective frames are
  // latency-bound request/response pairs, so Nagle only hurts.
  bool nodelay = true;
  // Per-connect bound while dialing the rendezvous host / ring peers.
  std::size_t connect_timeout_ms = 10'000;
  std::size_t listen_backlog = 64;
};

struct FabricConfig {
  FabricKind kind = FabricKind::kThread;
  // Bounded-spin budget before every fabric wait parks on a futex
  // (collective barrier, daemon slot protocol, shm handshakes); 0 parks
  // immediately. One knob for all sites — previously hardcoded per call
  // site (docs/TUNING.md).
  std::uint32_t spin_polls = 4096;
  // Per-wait deadline inside collectives / slot protocol. A peer absent
  // past this is a typed kPeerTimeout, never a hang.
  std::size_t timeout_ms = 30'000;
  // Parent-side bound on the whole multi-process run; stragglers past it
  // are SIGKILLed and reported kChildFailed.
  std::size_t launch_timeout_ms = 600'000;
  // Fixed per-rank shm slot capacities for the cross-process daemon
  // channel, in nodes; 0 = auto from the config (bounded by the graph's
  // node count). An oversized request is a typed kCapacity error.
  std::size_t slot_read_nodes = 0;
  std::size_t slot_write_nodes = 0;
  // Multi-machine (simulated) topology knobs, used when kind == kTcp.
  TcpFabricConfig tcp;
  // Chaos harness (tests/benches only in practice; defaults are inert).
  FaultConfig fault;
  // Wire-level chaos injection (kTcp only): seeded per-frame faults on
  // the leader ring, surfacing as typed FabricErrors (docs/TUNING.md
  // "Network chaos"). Defaults are inert.
  dist::ChaosConfig chaos;
  // Ring reconnect tier: on a transient leader-connection failure the
  // leaders re-dial and retry the in-flight collective from its last
  // completed barrier epoch, up to max_attempts times before escalating
  // to checkpoint restart. 0 attempts = tier disabled (fail straight to
  // the supervisor, the pre-chaos behaviour).
  dist::RetryConfig retry;
};

// Elastic-recovery knobs (docs/TUNING.md "Recovery",
// docs/ARCHITECTURE.md "Recovery"). Defaults keep every PR 6 behaviour:
// no snapshots, no restarts, no heartbeats — a dead rank is a fail-fast
// typed FabricError exactly as before.
struct RecoveryConfig {
  // Write a full-state snapshot after every N global iterations
  // (0 = never). Snapshots land in `checkpoint_dir` as ckpt_<iter>.*
  // shard sets committed by an atomically-renamed .commit marker.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  // Retain the newest K committed snapshots (>=1); older sets are
  // deleted marker-first so an interrupted sweep never leaves a
  // commit pointing at missing shards.
  std::size_t keep_last = 2;
  // Supervisor restart budget for train_supervised; 0 = fail fast on the
  // first FabricError (identical to calling train_distributed).
  std::size_t max_restarts = 0;
  // Exponential backoff between restart attempts: backoff_ms * 2^attempt
  // capped at backoff_cap_ms.
  std::size_t backoff_ms = 100;
  std::size_t backoff_cap_ms = 5'000;
  // Proc fabric: children emit a heartbeat frame on the result pipe at
  // least every heartbeat_ms (0 = off); the parent SIGKILLs the group
  // and reports kHeartbeatLost when a rank goes silent longer than
  // heartbeat_timeout_ms (0 = auto: 10 x heartbeat_ms).
  std::size_t heartbeat_ms = 0;
  std::size_t heartbeat_timeout_ms = 0;
  // Extra silence allowed after a rank announces a snapshot write (the
  // pre-save kCheckpointNote): an fsync-bound save stalls the beat loop
  // without the rank being dead or hung, so the supervisor widens the
  // window instead of firing a false kHeartbeatLost. 0 = auto:
  // max(30 s, 10 x the effective heartbeat timeout).
  std::size_t checkpoint_grace_ms = 0;
  // Resume from this snapshot stem (".../ckpt_<iter>", no extension);
  // empty = fresh start. Set by the supervisor, settable by hand.
  std::string resume_from;
  // Sliding-window restart budget: more than restart_window_max restarts
  // inside any restart_window_ms span is a crash loop — the supervisor
  // fails fast with a typed kRestartStorm instead of burning the whole
  // max_restarts budget one backoff at a time. 0/0 = disabled; both must
  // be set together.
  std::size_t restart_window_ms = 0;
  std::size_t restart_window_max = 0;
};

struct TrainingConfig {
  ModelConfig model;
  ParallelConfig parallel;

  std::size_t local_batch = 200;    // positive events per trainer iteration
  std::size_t num_neg = 1;          // training negatives per positive
  std::size_t neg_groups = 10;      // pre-generated negative groups (§4.0.2)
  std::size_t epochs = 10;          // traversals of the training events
  float base_lr = 1e-3f;
  bool scale_lr_with_world = true;  // lr linear in global batch (§4.0.1)
  float grad_clip = 10.0f;
  std::uint64_t seed = 7;

  std::size_t eval_negs = 49;       // MRR negatives (§4: 49 sampled)
  double train_frac = 0.70;
  double val_frac = 0.15;
  bool collect_grad_stats = false;  // record TrainResult::grad_* series

  // Batch-generation pipeline (ThreadedTrainer; SequentialTrainer always
  // recycles buffers but never threads).
  PipelineMode pipeline = PipelineMode::kPooled;
  std::size_t prefetch_ahead = 0;    // in-flight bound; 0 = auto (j + 1)
  std::size_t prefetch_workers = 0;  // shared pool size; 0 = auto (one/trainer)
  std::size_t batch_pool_slots = 0;  // initial buffers per trainer pool

  // Gradient-sync layer (ThreadedTrainer; docs/ARCHITECTURE.md "The
  // gradient-sync layer", docs/TUNING.md). comm_chunk_elems sets the
  // reduce-scatter chunk size (0 = one balanced chunk per rank); results
  // are identical for every value. comm_fused_step fuses grad-clip + the
  // Adam update into the reduce-scatter window (each rank steps only its
  // owned chunks, the allgather distributes updated weights). The fused
  // path is bit-identical to the default whenever clipping does not
  // trigger; when it does, the global-norm summation order differs
  // (chunk-ordered vs parameter-ordered), so the strict
  // sequential≡threaded equivalence contract holds for the default path.
  std::size_t comm_chunk_elems = 0;
  bool comm_fused_step = false;

  // Transport fabric selection + knobs (docs/TUNING.md "Fabric").
  FabricConfig fabric;

  // Checkpointing + supervised-restart knobs (docs/TUNING.md "Recovery").
  RecoveryConfig recovery;

  float lr() const {
    return scale_lr_with_world
               ? base_lr * static_cast<float>(parallel.total_trainers())
               : base_lr;
  }
};

// Throws on invalid configurations (dimension mismatches, k < machines…).
void validate(const TrainingConfig& cfg);

}  // namespace disttgl
