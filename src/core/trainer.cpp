#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "util/timer.hpp"

namespace disttgl {

SequentialTrainer::SequentialTrainer(const TrainingConfig& cfg,
                                     const TemporalGraph& graph,
                                     const Matrix* static_memory)
    : cfg_(cfg),
      graph_(&graph),
      static_memory_(static_memory),
      split_(chronological_split(graph, cfg.train_frac, cfg.val_frac)),
      rng_(cfg.seed) {
  const auto& par = cfg_.parallel;
  const std::size_t global_batch = cfg_.local_batch * par.i;
  batches_ = make_batches(split_.train_begin, split_.train_end, global_batch);
  schedule_ = build_schedule(par, batches_.size(), cfg_.epochs, cfg_.neg_groups);

  sampler_ = std::make_unique<NeighborSampler>(graph, cfg_.model.num_neighbors);
  negatives_ = std::make_unique<NegativeSampler>(graph, cfg_.neg_groups,
                                                 cfg_.seed ^ 0x5eedULL);
  const bool link = !graph.has_edge_labels();
  builder_ = std::make_unique<MiniBatchBuilder>(graph, *sampler_, *negatives_,
                                                link ? cfg_.num_neg : 0);
  Rng model_rng = rng_.split();
  model_ = std::make_unique<TGNModel>(cfg_.model, graph, static_memory, model_rng);
  // Same flat parameter storage as the threaded replicas: gradient
  // accumulation and weight export read the contiguous buffers directly.
  model_->freeze_flat_storage();
  optimizer_ = std::make_unique<nn::Adam>(
      model_->parameters(), nn::AdamOptions{.lr = cfg_.lr()});

  const std::size_t mail_dim = model_->mail_raw_dim();
  states_.reserve(par.k);
  for (std::size_t m = 0; m < par.k; ++m)
    states_.emplace_back(graph.num_nodes(), cfg_.model.mem_dim, mail_dim);
  slots_.resize(par.total_trainers());
}

std::vector<std::size_t> SequentialTrainer::chunk_events(
    std::size_t global_batch, std::size_t chunk) const {
  const BatchRange& range = batches_[global_batch];
  const std::size_t per =
      (range.size() + cfg_.parallel.i - 1) / cfg_.parallel.i;
  const std::size_t begin = std::min(range.begin + chunk * per, range.end);
  const std::size_t end = std::min(begin + per, range.end);
  return {begin, end};
}

void SequentialTrainer::run_iteration(std::size_t t) {
  const auto& par = cfg_.parallel;
  const std::size_t n = par.total_trainers();

  // Epoch resets for groups whose round t requires one.
  if (t < schedule_.rounds_per_group) {
    for (std::size_t m = 0; m < par.k; ++m) {
      if (schedule_.groups[m].reset_before_round[t] != 0) states_[m].reset();
    }
  }

  // Collect this iteration's work item per trainer (ranks are cheap to
  // scan: one item per iteration at most, in ascending order).
  std::vector<const WorkItem*> items(n, nullptr);
  for (std::size_t r = 0; r < n; ++r) {
    TrainerSlot& slot = slots_[r];
    const auto& list = schedule_.trainers[r].items;
    if (slot.cursor < list.size() && list[slot.cursor].iteration == t)
      items[r] = &list[slot.cursor];
  }

  // ---- phase A: version-0 reads (daemon (R…R) bracket, rank order) ----
  double gen_seconds = 0.0;
  double read_seconds = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    if (items[r] == nullptr || !items[r]->memory_ops) continue;
    const TrainerSchedule& ts = schedule_.trainers[r];
    const WorkItem& item = *items[r];
    const auto ev = chunk_events(item.global_batch, ts.chunk);
    if (ev[0] >= ev[1]) {  // empty trailing chunk
      slots_[r].batch.release();
      continue;
    }
    std::vector<std::size_t> groups;
    if (model_->task() == TGNModel::Task::kLinkPrediction) {
      groups.reserve(par.j);
      for (std::size_t v = 0; v < par.j; ++v)
        groups.push_back((item.cycle * par.j * par.k + ts.mem_copy * par.j + v) %
                         cfg_.neg_groups);
    }
    {
      ScopedAccumulator acc(gen_seconds);
      slots_[r].batch = batch_pool_.acquire();
      builder_->build_into(item.global_batch * par.i + ts.chunk, ev[0], ev[1],
                           groups, *slots_[r].batch);
    }
    {
      ScopedAccumulator acc(read_seconds);
      states_[ts.mem_copy].read_into(slots_[r].batch->unique_nodes,
                                     slots_[r].slice);
    }
  }

  // ---- phase B: compute (all active trainers, current weights) ----
  const std::vector<nn::Parameter*>& params = model_->cached_parameters();
  const std::span<float> flat_grads = model_->flat_grads();
  const std::size_t flat = flat_grads.size();
  grad_accum_.assign(flat, 0.0);
  double compute_seconds = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    if (items[r] == nullptr) continue;
    TrainerSlot& slot = slots_[r];
    if (!slot.batch.has_value()) {  // empty chunk
      ++slot.cursor;
      continue;
    }
    const WorkItem& item = *items[r];
    ScopedAccumulator acc(compute_seconds);
    model_->zero_grad();
    TGNModel::StepResult& res = step_result_;
    model_->train_step_into(*slot.batch, slot.slice, item.version,
                            item.memory_ops ? &slot.write : nullptr, res);
    slot.has_write = item.memory_ops;
    // Flat storage: the model's gradient buffer is already the
    // contiguous vector the old flatten_grads produced.
    for (std::size_t x = 0; x < flat; ++x)
      grad_accum_[x] += static_cast<double>(flat_grads[x]);

    diag_.mails_generated += res.diag.mails_generated;
    diag_.mails_kept += res.diag.mails_kept;
    diag_.staleness_sum += res.diag.staleness_sum;
    diag_.staleness_count += res.diag.staleness_count;
    epoch_loss_sum_ += res.loss;
    ++epoch_loss_count_;
    ++slot.cursor;
  }

  // ---- phase C: version-0 writes (daemon (W…W) bracket, rank order) ----
  double write_seconds = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    if (!slots_[r].has_write) continue;
    slots_[r].has_write = false;
    ScopedAccumulator acc(write_seconds);
    states_[schedule_.trainers[r].mem_copy].write(slots_[r].write);
  }

  // ---- optimizer step: mean over all n trainers, written straight
  // back into the model's flat gradient buffer (no unflatten pass) ----
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t x = 0; x < flat; ++x)
    flat_grads[x] = static_cast<float>(grad_accum_[x] * inv);

  if (cfg_.collect_grad_stats) {
    double norm_sq = 0.0, dot = 0.0, prev_sq = 0.0;
    for (std::size_t x = 0; x < flat; ++x) {
      norm_sq += static_cast<double>(flat_grads[x]) * flat_grads[x];
      if (!prev_mean_grads_.empty()) {
        dot += static_cast<double>(flat_grads[x]) * prev_mean_grads_[x];
        prev_sq += static_cast<double>(prev_mean_grads_[x]) * prev_mean_grads_[x];
      }
    }
    grad_norms_.push_back(static_cast<float>(std::sqrt(norm_sq)));
    if (!prev_mean_grads_.empty() && norm_sq > 0 && prev_sq > 0) {
      grad_cos_prev_.push_back(
          static_cast<float>(dot / std::sqrt(norm_sq * prev_sq)));
    }
    prev_mean_grads_.assign(flat_grads.begin(), flat_grads.end());
  }

  nn::clip_grad_norm(params, cfg_.grad_clip);
  optimizer_->step();
  timings_.add(gen_seconds, compute_seconds, read_seconds, write_seconds);
}

double SequentialTrainer::evaluate_validation() {
  MemoryState clone = states_[0];
  EvalConfig ec;
  ec.batch_size = cfg_.local_batch;
  ec.num_negs = cfg_.eval_negs;
  ec.seed = cfg_.seed ^ 0xe7a1ULL;
  return evaluate_range(*model_, clone, *graph_, *sampler_, split_.train_end,
                        split_.val_end, ec)
      .metric;
}

TrainResult SequentialTrainer::train() {
  TrainResult result;
  const std::size_t eval_every = schedule_.iterations_per_epoch();
  for (std::size_t t = 0; t < schedule_.total_iterations; ++t) {
    run_iteration(t);
    if ((t + 1) % eval_every == 0 || t + 1 == schedule_.total_iterations) {
      result.log.add(t + 1, evaluate_validation());
      result.train_loss_last =
          epoch_loss_count_ ? epoch_loss_sum_ / epoch_loss_count_ : 0.0;
      epoch_loss_sum_ = 0.0;
      epoch_loss_count_ = 0;
    }
  }
  result.iterations = schedule_.total_iterations;
  result.final_val = result.log.empty() ? 0.0 : result.log.points().back().val_metric;

  // Test: continue the chronological stream (val then test) on a clone.
  MemoryState clone = states_[0];
  EvalConfig ec;
  ec.batch_size = cfg_.local_batch;
  ec.num_negs = cfg_.eval_negs;
  ec.seed = cfg_.seed ^ 0xe7a1ULL;
  evaluate_range(*model_, clone, *graph_, *sampler_, split_.train_end,
                 split_.val_end, ec);
  result.final_test = evaluate_range(*model_, clone, *graph_, *sampler_,
                                     split_.val_end, split_.test_end, ec)
                          .metric;
  result.diag = diag_;
  result.grad_norms = grad_norms_;
  result.grad_cos_prev = grad_cos_prev_;
  result.timings = timings_;
  return result;
}

std::vector<float> SequentialTrainer::weights() const {
  const std::span<const float> w = model_->flat_values();
  return {w.begin(), w.end()};
}

}  // namespace disttgl
