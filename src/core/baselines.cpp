#include "core/baselines.hpp"

#include <algorithm>

namespace disttgl {

TrainingConfig tgn_baseline_config(const TrainingConfig& base) {
  TrainingConfig cfg = base;
  cfg.parallel = ParallelConfig{};  // 1×1×1 on one machine
  cfg.model.static_dim = 0;
  return cfg;
}

TrainingConfig tgl_baseline_config(const TrainingConfig& base, std::size_t gpus) {
  TrainingConfig cfg = base;
  cfg.parallel = ParallelConfig{};
  cfg.parallel.i = gpus;  // TGL = mini-batch parallelism, single machine
  cfg.parallel.gpus_per_machine = gpus;
  cfg.model.static_dim = 0;
  return cfg;
}

dist::IterationProfile make_iteration_profile(
    const ModelConfig& model, const TemporalGraph& graph, const EventSplit& split,
    std::size_t local_batch, std::size_t num_neg, std::size_t neg_variants,
    std::size_t sample_batches) {
  NeighborSampler sampler(graph, model.num_neighbors);
  NegativeSampler negatives(graph, std::max<std::size_t>(1, neg_variants), 99);
  const bool link = !graph.has_edge_labels();
  MiniBatchBuilder builder(graph, sampler, negatives, link ? num_neg : 0);

  std::vector<std::size_t> groups;
  for (std::size_t v = 0; v < neg_variants && link; ++v) groups.push_back(v);

  // Sample batches evenly across the training range to average out the
  // cold start (early batches have few neighbors).
  const std::size_t train_n = split.num_train();
  const std::size_t usable =
      std::max<std::size_t>(1, train_n / std::max<std::size_t>(1, local_batch));
  const std::size_t take = std::min(sample_batches, usable);

  double sum_unique = 0.0, sum_roots = 0.0, sum_neigh = 0.0, sum_pos_roots = 0.0;
  for (std::size_t s = 0; s < take; ++s) {
    const std::size_t b = (s * usable) / take;
    const std::size_t begin = split.train_begin + b * local_batch;
    const std::size_t end = std::min(begin + local_batch, split.train_end);
    if (begin >= end) continue;
    MiniBatch mb = builder.build(b, begin, end, groups);
    sum_unique += static_cast<double>(mb.unique_nodes.size());
    sum_roots += static_cast<double>(mb.num_roots());
    for (std::size_t r = 0; r < mb.num_roots(); ++r)
      sum_neigh += static_cast<double>(mb.roots.valid[r]);
    // Positive roots (deduped) are what gets written back.
    std::vector<std::uint8_t> seen(mb.unique_nodes.size(), 0);
    for (std::size_t r = 0; r < 2 * mb.num_pos(); ++r)
      seen[mb.root_to_unique[r]] = 1;
    sum_pos_roots += static_cast<double>(
        std::count(seen.begin(), seen.end(), static_cast<std::uint8_t>(1)));
  }
  const double inv = take > 0 ? 1.0 / static_cast<double>(take) : 0.0;
  const double U = sum_unique * inv;         // unique nodes per batch
  const double R = sum_roots * inv;          // root rows
  const double NB = sum_neigh * inv;         // occupied neighbor slots
  const double W = sum_pos_roots * inv;      // rows written back

  const double mem = static_cast<double>(model.mem_dim);
  const double mail = 2.0 * mem + static_cast<double>(graph.edge_feat_dim());
  const double node_dim = mem + static_cast<double>(model.static_dim);
  const double kv_in = node_dim + static_cast<double>(graph.edge_feat_dim()) +
                       static_cast<double>(model.time_dim);
  const double attn = static_cast<double>(model.attn_dim);
  const double emb = static_cast<double>(model.emb_dim);

  dist::IterationProfile p;
  p.local_batch = local_batch;
  p.mem_read_bytes = U * (mem + mail + 3.0) * 4.0;
  p.mem_write_bytes = W * (mem + mail + 2.0) * 4.0;
  // Presampled blob: neighbor ids/edge ids/timestamps + root lists.
  p.fetch_bytes = NB * 12.0 + R * 12.0;
  // Feature slicing: edge features for occupied slots (+ static rows).
  p.feature_bytes = NB * graph.edge_feat_dim() * 4.0 +
                    U * static_cast<double>(model.static_dim) * 4.0;

  // FLOPs (forward ≈, backward ≈ 2× forward — standard rule of thumb).
  const double gru_in = mail + static_cast<double>(model.time_dim);
  const double f_gru = U * 2.0 * 3.0 * (gru_in * mem + mem * mem);
  const double f_proj = 2.0 * NB * kv_in * attn * 2.0 +      // K and V
                        2.0 * R * (node_dim + model.time_dim) * attn;  // q
  const double f_attn = 2.0 * NB * attn * 2.0;               // scores+mix
  const double f_out = 2.0 * R * (attn + node_dim) * emb;
  const double f_head =
      2.0 * R * (2.0 * emb * model.head_hidden + model.head_hidden);
  p.gpu_flops = 3.0 * (f_gru + f_proj + f_attn + f_out + f_head);

  // Model weights: count the same layers TGNModel owns.
  const double w_gru = 3.0 * (gru_in * mem + mem * mem + 2.0 * mem);
  const double w_attn = (node_dim + model.time_dim + 1.0) * attn +
                        2.0 * (kv_in + 1.0) * attn +
                        (attn + node_dim + 1.0) * emb +
                        2.0 * model.time_dim;
  const double w_head = (2.0 * emb + 1.0) * model.head_hidden +
                        (model.head_hidden + 1.0) *
                            (graph.has_edge_labels() ? graph.num_classes() : 1);
  p.weight_bytes = (w_gru + w_attn + w_head + 2.0 * model.time_dim) * 4.0;
  return p;
}

}  // namespace disttgl
