// Checkpointing: model weights + node-memory state, and the sharded
// full-training-state snapshots behind elastic recovery.
//
// M-TGNN inference needs more than the weights — the node memory and
// mailbox ARE the model's state for a given point in the event stream,
// so a deployable checkpoint carries both. Recovery needs more still:
// optimizer moments, loss subtotals, and any in-flight memory slice,
// per rank, so a restarted run replays the exact update stream.
//
// Every checkpoint file is one self-verifying container:
//
//   u32 magic "DTGL" | u32 version (2) | u32 kind |
//   u64 payload_len  | u32 FNV-1a checksum | payload
//
// with the payload built/parsed by the wire codecs (wire.hpp), so the
// corruption story is the same as the fabric control plane's: a torn
// write is kTruncated, a flipped bit is kBadChecksum, never UB or a
// silent bad load. Integers are little-endian (byte-by-byte), floats
// are bit-cast — identical encoding on any host.
//
// Writes are atomic: payload → `<path>.tmp`, fsync, rename over the
// final name, fsync the directory. A reader never observes a
// half-written file under its final name; a crash leaves at most a
// `*.tmp` orphan (swept by tools/sweep_shm.py and retain_snapshots).
//
// A full snapshot at iteration T is a shard SET under one stem
// `<dir>/ckpt_<T>`:
//
//   <stem>.core     rank 0: fingerprint, iteration, geometry, weights
//   <stem>.mem<m>   group host m: one MemoryState copy, full rows
//   <stem>.rank<r>  every rank: loss subtotals, Adam (t, m, v), and the
//                   in-flight MemorySlice when r was mid version-chain
//   <stem>.commit   rank 0, written LAST — the atomic commit point; a
//                   snapshot without its commit marker does not exist
//
// All shards carry the config fingerprint + iteration, so a mixed or
// stale set is rejected shard-by-shard (kFingerprintMismatch /
// kShapeMismatch), and find_latest_snapshot falls back to the previous
// committed set when the newest fails validation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "memory/memory_state.hpp"
#include "nn/module.hpp"

namespace disttgl {

// ---- typed errors --------------------------------------------------------

enum class CheckpointErrc : std::uint8_t {
  kIoError = 1,       // open/read/write/fsync/rename failed
  kBadMagic,          // not a DistTGL checkpoint
  kBadVersion,        // container version skew
  kBadKind,           // wrong shard kind for this reader
  kTruncated,         // short file / short payload / trailing bytes
  kBadChecksum,       // payload checksum mismatch (bit rot, torn write)
  kShapeMismatch,     // sizes in file disagree with the live model/state
  kFingerprintMismatch,  // snapshot belongs to a different run config
  kMissingFile,       // shard file absent (distinct from unreadable)
};

const char* checkpoint_errc_name(CheckpointErrc code);

// Carries the failing path and, where meaningful, the expected/got pair
// (sizes, versions, fingerprints) that disagreed.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrc code, std::string path, const std::string& what,
                  std::uint64_t expected = 0, std::uint64_t got = 0);

  CheckpointErrc code() const { return code_; }
  const std::string& path() const { return path_; }
  std::uint64_t expected() const { return expected_; }
  std::uint64_t got() const { return got_; }

 private:
  CheckpointErrc code_;
  std::string path_;
  std::uint64_t expected_;
  std::uint64_t got_;
};

// ---- shard payloads ------------------------------------------------------

// Replicated training state, written once per snapshot by rank 0.
struct CoreShard {
  std::uint64_t fingerprint = 0;
  std::uint64_t iteration = 0;   // iterations completed when snapshotted
  std::uint64_t world = 0;
  std::uint64_t mem_copies = 0;  // k
  std::vector<float> weights;    // flat, Module::flat_values order
};

// One memory copy's full state, written by that group's host rank after
// a daemon round barrier (so it is the post-round-T state exactly).
struct MemShard {
  std::uint64_t fingerprint = 0;
  std::uint64_t iteration = 0;
  std::uint64_t copy = 0;  // memory-parallel index in [0, k)
  std::uint64_t nodes = 0;
  std::uint64_t mem_dim = 0;
  std::uint64_t mail_dim = 0;
  std::vector<float> mem, mem_ts, mail, mail_ts;  // node order
  std::vector<std::uint8_t> flags;                // has_mail per node
};

// Per-rank private state. Adam moments are per-rank by design on the
// fused step path (each rank only steps its owned chunks), so each rank
// snapshots its own. `has_slice` marks a rank caught mid version-chain:
// it had read memory for a super-batch and not yet finished training
// all j versions, so the read slice must survive the restart.
struct RankShard {
  std::uint64_t fingerprint = 0;
  std::uint64_t iteration = 0;
  std::uint64_t rank = 0;
  double loss_sum = 0.0;
  std::uint64_t loss_count = 0;
  std::uint64_t events = 0;       // raw events processed so far
  std::uint64_t adam_steps = 0;   // Adam t_
  std::vector<float> adam_m, adam_v;
  bool has_slice = false;
  std::uint64_t slice_nodes = 0, slice_mem_dim = 0, slice_mail_dim = 0;
  std::vector<float> slice_mem, slice_mem_ts, slice_mail, slice_mail_ts;
  std::vector<std::uint8_t> slice_flags;
};

// The commit marker. Written last; its presence IS the snapshot.
struct CommitShard {
  std::uint64_t fingerprint = 0;
  std::uint64_t iteration = 0;
  std::uint64_t world = 0;
  std::uint64_t mem_copies = 0;
};

// ---- shard I/O -----------------------------------------------------------

// `<dir>/ckpt_<iteration>` — the stem every shard path derives from.
std::string snapshot_stem(const std::string& dir, std::uint64_t iteration);

void write_core_shard(const std::string& stem, const CoreShard& s);
void write_mem_shard(const std::string& stem, const MemShard& s);
void write_rank_shard(const std::string& stem, const RankShard& s);
void write_commit_shard(const std::string& stem, const CommitShard& s);

CoreShard read_core_shard(const std::string& stem);
MemShard read_mem_shard(const std::string& stem, std::uint64_t copy);
RankShard read_rank_shard(const std::string& stem, std::uint64_t rank);
CommitShard read_commit_shard(const std::string& stem);

// Captures one memory copy's full contents (node order) into a shard /
// applies a shard back onto a live state (full-row restore, flags
// included). apply throws kShapeMismatch when the shard's geometry
// disagrees with the state — before touching any row.
MemShard make_mem_shard(const MemoryState& state, std::uint64_t fingerprint,
                        std::uint64_t iteration, std::uint64_t copy);
void apply_mem_shard(const MemShard& s, MemoryState& state);

// ---- snapshot discovery / retention --------------------------------------

struct SnapshotRef {
  std::string stem;
  std::uint64_t iteration = 0;
};

// Full validation of one committed snapshot: commit marker, core shard,
// every mem shard, every rank shard — fingerprint, iteration, and
// geometry all consistent. False (never throws) on any defect.
bool validate_snapshot(const std::string& stem, std::uint64_t fingerprint,
                       std::uint64_t world, std::uint64_t mem_copies);

// Every committed snapshot in `dir` (commit markers present), newest
// first. Presence of the marker is all this checks — callers that need
// more (the trainers' full validate_snapshot, the serving tier's
// core+mem-only check) validate per stem and fall back down the list.
std::vector<SnapshotRef> list_snapshots(const std::string& dir);

// Newest fully-valid snapshot in `dir`, scanning commit markers in
// descending iteration order — a torn/corrupt newest set falls back to
// the previous one. nullopt when nothing valid exists (fresh start).
std::optional<SnapshotRef> find_latest_snapshot(const std::string& dir,
                                                std::uint64_t fingerprint,
                                                std::uint64_t world,
                                                std::uint64_t mem_copies);

// Keep the newest `keep` committed snapshots, delete the rest —
// commit marker FIRST, so an interrupted sweep leaves an uncommitted
// (invisible) shard pile, never a commit pointing at missing shards.
// Also sweeps stale `*.tmp` orphans. Best-effort: I/O errors ignored.
void retain_snapshots(const std::string& dir, std::size_t keep);

// FNV-1a-64 over every config field that shapes the training
// trajectory (model dims, i/j/k, batch/optimizer/seed/split knobs, graph
// size). Deliberately EXCLUDES fabric kind and tuning-only knobs: a
// snapshot from the thread fabric resumes on the proc fabric and
// vice versa — the fabrics are bit-identical, so the trajectory is too.
std::uint64_t config_fingerprint(const TrainingConfig& cfg,
                                 std::size_t num_nodes,
                                 std::size_t num_events);

// ---- deployable weights+memory checkpoints (single file) -----------------

// Writes the flat weight buffer and the given memory states. For a
// flat-frozen module, pass Module::flat_values() — a pure span handoff.
void save_checkpoint(const std::string& path, std::span<const float> weights,
                     const std::vector<const MemoryState*>& states);

// Writes weights (flattened from `params`) and the given memory states.
// Flat-frozen parameter sets are saved without the intermediate copy.
void save_checkpoint(const std::string& path,
                     const std::vector<nn::Parameter*>& params,
                     const std::vector<const MemoryState*>& states);

// Restores straight into the flat weight buffer (Module::flat_values())
// and pre-constructed states. Sizes must match the checkpoint exactly
// (throws CheckpointError kShapeMismatch with expected/got otherwise;
// corruption surfaces as kTruncated / kBadChecksum / kBadMagic).
void load_checkpoint(const std::string& path, std::span<float> weights,
                     std::vector<MemoryState*>& states);

// Restores into pre-constructed params/states. Shapes must match the
// checkpoint exactly (throws CheckpointError otherwise).
void load_checkpoint(const std::string& path,
                     std::vector<nn::Parameter*>& params,
                     std::vector<MemoryState*>& states);

// True when `params` already form one contiguous flat buffer (the
// Module::freeze_flat_storage layout), i.e. flatten/unflatten would be
// identity copies.
bool params_are_flat(const std::vector<nn::Parameter*>& params);

}  // namespace disttgl
