// Checkpointing: model weights + node-memory state.
//
// M-TGNN inference needs more than the weights — the node memory and
// mailbox ARE the model's state for a given point in the event stream,
// so a deployable checkpoint carries both. Format: a small
// header-checked binary ("DTGL" magic, version, sizes), then the flat
// weight vector, then each memory copy's matrices. Endianness follows
// the host (single-machine reload is the use case).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "memory/memory_state.hpp"
#include "nn/module.hpp"

namespace disttgl {

// Writes the flat weight buffer and the given memory states. For a
// flat-frozen module, pass Module::flat_values() — a pure span handoff.
void save_checkpoint(const std::string& path, std::span<const float> weights,
                     const std::vector<const MemoryState*>& states);

// Writes weights (flattened from `params`) and the given memory states.
// Flat-frozen parameter sets are saved without the intermediate copy.
void save_checkpoint(const std::string& path,
                     const std::vector<nn::Parameter*>& params,
                     const std::vector<const MemoryState*>& states);

// Restores straight into the flat weight buffer (Module::flat_values())
// and pre-constructed states. Sizes must match the checkpoint exactly
// (throws std::logic_error otherwise).
void load_checkpoint(const std::string& path, std::span<float> weights,
                     std::vector<MemoryState*>& states);

// Restores into pre-constructed params/states. Shapes must match the
// checkpoint exactly (throws std::logic_error otherwise).
void load_checkpoint(const std::string& path,
                     std::vector<nn::Parameter*>& params,
                     std::vector<MemoryState*>& states);

// True when `params` already form one contiguous flat buffer (the
// Module::freeze_flat_storage layout), i.e. flatten/unflatten would be
// identity copies.
bool params_are_flat(const std::vector<nn::Parameter*>& params);

}  // namespace disttgl
