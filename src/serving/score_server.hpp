// ScoreServer / ScoreClient: the serving tier's network front end.
//
// A ScoreServer owns one listener (UNIX-domain when `unix_path` is set,
// TCP otherwise — the same two endpoints the training fabric uses) and
// N worker threads. Each worker holds its own ModelServer::Scorer, so
// workers score concurrently against the published snapshot without
// sharing any mutable state; a connection is handled by one worker from
// accept to close (requests on one connection are served in order, a
// natural fit for a closed-loop client).
//
// Per-connection loop: read one kScoreRequest frame → decode into the
// worker's recycled request struct → score → encode into the worker's
// recycled writer → write one kScoreResponse frame. Any failure —
// malformed frame, bad request, no snapshot — answers with a
// kErrorReport frame {u32 code, string message} and closes the
// connection (the framing layer may already be poisoned, so per-error
// connection teardown is the only safe protocol state to re-enter).
// The steady-state success path performs no allocations once buffers
// reach their high-water sizes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "distributed/socket.hpp"
#include "serving/model_server.hpp"

namespace disttgl::serving {

struct ScoreServerConfig {
  // UNIX socket path; empty → TCP on tcp_host:tcp_port (0 = ephemeral,
  // actual port via ScoreServer::port()).
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  std::size_t reader_threads = 2;
  int backlog = 64;
  // Per-frame I/O deadline; also bounds how long a worker waits for the
  // next request before checking the stop flag.
  std::uint64_t io_timeout_ms = 30'000;
};

class ScoreServer {
 public:
  // Binds the listener and starts the workers; `server` must outlive
  // this object.
  ScoreServer(ModelServer& server, const ScoreServerConfig& cfg);
  ~ScoreServer();

  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  // Joins the workers, closes the listener, and removes the UNIX socket
  // file. Idempotent.
  void stop();

  // Actual TCP port (0 for a UNIX server).
  std::uint16_t port() const { return port_; }
  const std::string& unix_path() const { return cfg_.unix_path; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t idx);
  void serve_connection(int fd, ModelServer::Scorer& scorer);

  ModelServer* server_;
  ScoreServerConfig cfg_;
  dist::FdHandle listener_;
  std::uint16_t port_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  // Live per-worker connection fds (−1 = idle), so stop() can shutdown()
  // a blocked read without racing the worker's close.
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

// Blocking request/response client over one connection. Not
// thread-safe; give each load-generator thread its own client.
class ScoreClient {
 public:
  static ScoreClient connect_unix(const std::string& path,
                                  dist::Deadline deadline);
  static ScoreClient connect_tcp(const std::string& host, std::uint16_t port,
                                 dist::Deadline deadline);

  // Sends `req`, waits for the matching response (ids must agree).
  // Throws ServingError when the server answered kErrorReport with a
  // serving code, FabricError for transport/protocol failures.
  void score(const ScoreRequest& req, ScoreResponse& resp,
             dist::Deadline deadline);

 private:
  explicit ScoreClient(dist::FdHandle fd) : fd_(std::move(fd)) {}

  dist::FdHandle fd_;
  dist::WireWriter writer_;          // recycled request encoder
  std::vector<std::uint8_t> frame_;  // recycled framed bytes
  dist::Frame in_;                   // recycled response frame
};

}  // namespace disttgl::serving
