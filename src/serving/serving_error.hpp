// Typed errors for the read-only serving tier.
//
// Same philosophy as FabricError/CheckpointError: every failure a
// client, a stale checkpoint directory, or a scheduling hiccup can
// inflict on the scorer surfaces as a machine-checkable code — never a
// hang, never a silently wrong score. The socket front end forwards the
// code inside a kErrorReport frame so a remote client sees the same
// taxonomy an in-process caller does.
#pragma once

#include <stdexcept>
#include <string>

namespace disttgl::serving {

enum class ServingErrc : std::uint8_t {
  kNoSnapshot = 1,  // score() before the first install_snapshot
  kBadRequest,      // empty batch, mismatched src/dst/ts lengths,
                    // node id out of range, batch over max_batch
  kWrongCopy,       // request names a memory copy the snapshot lacks
  kShapeMismatch,   // snapshot geometry disagrees with the live model
  kDrainTimeout,    // install could not drain a slot's pinned readers
};

inline const char* serving_errc_name(ServingErrc c) {
  switch (c) {
    case ServingErrc::kNoSnapshot: return "no_snapshot";
    case ServingErrc::kBadRequest: return "bad_request";
    case ServingErrc::kWrongCopy: return "wrong_copy";
    case ServingErrc::kShapeMismatch: return "shape_mismatch";
    case ServingErrc::kDrainTimeout: return "drain_timeout";
  }
  return "unknown";
}

class ServingError : public std::runtime_error {
 public:
  ServingError(ServingErrc code, const std::string& what)
      : std::runtime_error(std::string("serving[") + serving_errc_name(code) +
                           "]: " + what),
        code_(code) {}

  ServingErrc code() const { return code_; }

 private:
  ServingErrc code_;
};

[[noreturn]] inline void throw_serving(ServingErrc code,
                                       const std::string& what) {
  throw ServingError(code, what);
}

}  // namespace disttgl::serving
