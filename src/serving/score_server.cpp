#include "serving/score_server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

namespace disttgl::serving {

using dist::Deadline;
using dist::deadline_after;
using dist::FabricErrc;
using dist::FabricError;
using dist::Frame;
using dist::MsgType;
using dist::WireCursor;
using dist::WireWriter;

namespace {

// kErrorReport payloads carry {u32 code, string}; fabric codes travel
// as themselves, serving codes offset into a disjoint range so the
// client can reconstruct the right exception type.
constexpr std::uint32_t kServingCodeBase = 0x100;

void send_error(int fd, std::uint32_t code, const std::string& what,
                Deadline deadline) {
  WireWriter w;
  w.put_u32(code);
  w.put_string(what);
  try {
    dist::write_frame(fd, MsgType::kErrorReport, w.bytes(), deadline);
  } catch (...) {
    // Peer already gone; the connection is being torn down regardless.
  }
}

}  // namespace

ScoreServer::ScoreServer(ModelServer& server, const ScoreServerConfig& cfg)
    : server_(&server), cfg_(cfg) {
  DT_CHECK_GT(cfg_.reader_threads, 0u);
  if (!cfg_.unix_path.empty()) {
    listener_ = dist::unix_listen(cfg_.unix_path, cfg_.backlog);
  } else {
    listener_ =
        dist::tcp_listen(cfg_.tcp_host, cfg_.tcp_port, cfg_.backlog, port_);
  }
  // Non-blocking listener: N workers accept on the same fd, and a
  // worker that loses the race must fall back to accept_conn's poll
  // loop (which honors the stop-check deadline) instead of parking in
  // accept4 until the next connection.
  ::fcntl(listener_.get(), F_SETFL,
          ::fcntl(listener_.get(), F_GETFL) | O_NONBLOCK);
  conn_fds_.assign(cfg_.reader_threads, -1);
  workers_.reserve(cfg_.reader_threads);
  for (std::size_t i = 0; i < cfg_.reader_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ScoreServer::~ScoreServer() { stop(); }

void ScoreServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  // Unblock accept() and any in-flight read_frame: shutdown() forces an
  // orderly EOF on live connections without racing the worker's close
  // (entries are cleared under the lock before the fd is closed).
  ::shutdown(listener_.get(), SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_)
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  listener_.reset();
  if (!cfg_.unix_path.empty()) std::remove(cfg_.unix_path.c_str());
}

void ScoreServer::worker_loop(std::size_t idx) {
  // One scorer per worker: private model replica + recycled buffers.
  std::unique_ptr<ModelServer::Scorer> scorer = server_->make_scorer();
  while (!stop_.load(std::memory_order_acquire)) {
    dist::FdHandle conn;
    try {
      conn = dist::accept_conn(listener_.get(),
                               deadline_after(std::chrono::milliseconds(250)));
    } catch (const FabricError&) {
      // Timeout tick (re-check the stop flag) or listener torn down.
      continue;
    }
    if (cfg_.unix_path.empty()) dist::tcp_set_nodelay(conn.get());
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_fds_[idx] = conn.get();
    }
    serve_connection(conn.get(), *scorer);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_fds_[idx] = -1;
    }
  }
}

void ScoreServer::serve_connection(int fd, ModelServer::Scorer& scorer) {
  // All per-connection state is recycled across requests: the frame, the
  // decoded request, the response, the payload writer, and the framed
  // output bytes all keep their capacity, so a warm connection's request
  // loop is allocation-free (tests/test_serving_alloc pins the in-
  // process equivalent of exactly this loop).
  Frame in;
  ScoreRequest req;
  ScoreResponse resp;
  WireWriter payload;
  std::vector<std::uint8_t> out;
  while (!stop_.load(std::memory_order_acquire)) {
    const Deadline deadline =
        deadline_after(std::chrono::milliseconds(cfg_.io_timeout_ms));
    try {
      if (!dist::read_frame(fd, in, deadline)) return;  // orderly EOF
    } catch (const FabricError&) {
      // Torn frame, poisoned stream, timeout, or stop()'s shutdown.
      return;
    }
    try {
      if (in.type != MsgType::kScoreRequest)
        dist::throw_fabric(FabricErrc::kBadMagic,
                           "expected SCORE_REQUEST, got frame type " +
                               std::to_string(static_cast<int>(in.type)));
      decode_score_request(in.payload, req);
      scorer.score(req, resp);
    } catch (const ServingError& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      send_error(fd, kServingCodeBase + static_cast<std::uint32_t>(e.code()),
                 e.what(), deadline);
      return;
    } catch (const FabricError& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      send_error(fd, static_cast<std::uint32_t>(e.code()), e.what(), deadline);
      return;
    }
    payload.clear();
    encode_score_response(resp, payload);
    out.clear();
    dist::encode_frame(MsgType::kScoreResponse, payload.bytes(), out);
    // Count before the write so the increment happens-before the client
    // can observe the response: a caller that has N answers in hand is
    // guaranteed to read requests_served() >= N.
    requests_.fetch_add(1, std::memory_order_relaxed);
    try {
      dist::write_exact(fd, out, deadline);
    } catch (const FabricError&) {
      return;  // client went away mid-response
    }
  }
}

// ---- ScoreClient ---------------------------------------------------------

ScoreClient ScoreClient::connect_unix(const std::string& path,
                                      Deadline deadline) {
  return ScoreClient(dist::unix_connect(path, deadline));
}

ScoreClient ScoreClient::connect_tcp(const std::string& host,
                                     std::uint16_t port, Deadline deadline) {
  return ScoreClient(dist::tcp_connect(host, port, deadline));
}

void ScoreClient::score(const ScoreRequest& req, ScoreResponse& resp,
                        Deadline deadline) {
  writer_.clear();
  encode_score_request(req, writer_);
  frame_.clear();
  dist::encode_frame(MsgType::kScoreRequest, writer_.bytes(), frame_);
  dist::write_exact(fd_.get(), frame_, deadline);

  if (!dist::read_frame(fd_.get(), in_, deadline))
    dist::throw_fabric(FabricErrc::kPeerClosed,
                       "server closed before responding");
  if (in_.type == MsgType::kErrorReport) {
    WireCursor c(in_.payload);
    const std::uint32_t code = c.get_u32();
    const std::string what = c.get_string();
    if (code >= kServingCodeBase)
      throw ServingError(static_cast<ServingErrc>(code - kServingCodeBase),
                         what);
    dist::throw_fabric(static_cast<FabricErrc>(code), "server: " + what);
  }
  if (in_.type != MsgType::kScoreResponse)
    dist::throw_fabric(FabricErrc::kBadMagic,
                       "expected SCORE_RESPONSE, got frame type " +
                           std::to_string(static_cast<int>(in_.type)));
  decode_score_response(in_.payload, resp);
  if (resp.id != req.id)
    dist::throw_fabric(FabricErrc::kBadChecksum,
                       "response id " + std::to_string(resp.id) +
                           " does not match request " +
                           std::to_string(req.id));
}

}  // namespace disttgl::serving
