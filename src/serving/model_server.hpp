// ModelServer: versioned snapshot publication + lock-free batched
// scoring for the read-only serving tier.
//
// Publication protocol (tinySTM-style validated reads over a slot ring):
//
//   - A fixed ring of S slots each holds {snapshot, version, reader
//     count}. `version_` names the newest published version; version
//     v lives in slot v % S, and 0 means "nothing published yet".
//   - Readers pin optimistically: load `version_` → bump the slot's
//     reader count → re-check the slot still carries that version. A
//     torn window (the writer recycled the slot between the two steps)
//     is detected, counted, and retried — never served. The version is
//     validated again after scoring as defense in depth; with S ≥ 2 the
//     writer would have to lap the entire ring past a pinned reader for
//     the post-check to matter, and a pinned slot cannot be recycled at
//     all (the writer drains it first).
//   - The writer (install_snapshot, serialized by a mutex) claims slot
//     (v+1) % S, marks it unpublished (version ← 0, the store half of
//     the store/load fence against the reader's pin), waits for its
//     reader count to drain, swaps the snapshot in, then publishes:
//     slot version ← v+1, `version_` ← v+1. Readers arriving mid-swap
//     either see the old `version_` (old slot, still valid) or the new
//     one; nobody ever observes a half-installed snapshot.
//
// Scoring runs through per-thread Scorer contexts — each owns a private
// TGNModel (the Scratch makes a model stateful), a recycled MiniBatch /
// MemorySlice / StepResult, and rebinds its parameters onto the pinned
// snapshot's weight buffer only when the version actually moved. After
// warm-up a score() call is allocation-free end to end
// (tests/test_serving_alloc pins this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/tgn_model.hpp"
#include "util/rng.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "serving/score_wire.hpp"
#include "serving/serving_error.hpp"
#include "serving/snapshot.hpp"

namespace disttgl::serving {

struct ServingConfig {
  std::size_t max_batch = 1024;  // per-request positive cap (≤ wire cap)
  std::size_t slots = 4;         // publication ring size (≥ 2)
  std::uint64_t drain_timeout_ms = 10'000;  // install's wait for readers
  std::uint64_t poll_ms = 50;    // checkpoint-directory poll interval
  std::uint64_t seed = 1;        // scorer model construction seed
};

// Replicates MiniBatchBuilder::build_into for a score request: the
// requested (src, dst, ts) edges as positives, zero negatives, one
// variant, and the exact same root staging + serial first-seen dedup —
// so a served batch is bit-identical to what the trainer's builder
// produces for the same edges. Shared with the equivalence tests, which
// call it to build the inline reference batch. Capacity-preserving.
void build_score_batch(const NeighborSampler& sampler, const ScoreRequest& req,
                       MiniBatch& mb);

class ModelServer {
 public:
  // `graph` supplies the neighbor windows (and edge features) scores
  // attend over; `static_memory`, when the config has static_dim > 0,
  // must have one row per node. Both must outlive the server.
  ModelServer(const ModelConfig& model_cfg, const ServingConfig& cfg,
              const TemporalGraph& graph,
              const Matrix* static_memory = nullptr);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  // Validates geometry against the live model (weight count, node
  // count, memory/mail dims, ≥ 1 memory copy — kShapeMismatch
  // otherwise), then publishes through the slot ring. Throws
  // kDrainTimeout if the claimed slot's readers do not drain in time
  // (the ring is left as it was). Returns the new version.
  std::uint64_t install_snapshot(std::shared_ptr<const ServingSnapshot> snap);

  // Newest published version (0 ⇔ nothing installed) / its iteration.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  std::uint64_t iteration() const {
    return iteration_.load(std::memory_order_acquire);
  }
  std::uint64_t installs() const {
    return installs_.load(std::memory_order_relaxed);
  }

  // Background poller: watches a checkpoint directory and installs any
  // committed snapshot newer than the published iteration. Load/install
  // failures are counted and retried next tick, never fatal.
  void start_poller(const std::string& checkpoint_dir);
  void stop_poller();
  std::uint64_t poll_failures() const {
    return poll_failures_.load(std::memory_order_relaxed);
  }

  struct ScorerStats {
    std::uint64_t requests = 0;      // successfully scored batches
    std::uint64_t torn_retries = 0;  // pin validations that failed
    std::uint64_t rebinds = 0;       // weight rebinds (version moved)
  };

  // One reader thread's private scoring context. Create one per thread
  // (make_scorer); score() may run concurrently with other scorers and
  // with install_snapshot.
  class Scorer {
   public:
    // Scores req against the newest published snapshot; fills resp
    // (capacity-preserving) with one logit per (src, dst, ts) edge plus
    // the snapshot version/iteration it was computed from. Throws
    // ServingError: kNoSnapshot before the first install, kBadRequest
    // for a malformed batch, kWrongCopy for a missing memory copy.
    void score(const ScoreRequest& req, ScoreResponse& resp);

    const ScorerStats& stats() const { return stats_; }

   private:
    friend class ModelServer;
    Scorer(ModelServer& server, std::uint64_t seed);

    ModelServer* server_;
    Rng rng_;  // declared before model_: the ctor consumes it
    TGNModel model_;
    MiniBatch mb_;
    MemorySlice slice_;
    TGNModel::StepResult step_;
    std::uint64_t bound_version_ = 0;
    ScorerStats stats_;
  };

  // Heap-allocated so a scorer can move to its owning thread; seeds
  // derive from cfg.seed + an internal counter (seeding only affects
  // the throwaway initial weights — every score rebinds to a snapshot).
  std::unique_ptr<Scorer> make_scorer();

  const ServingConfig& config() const { return cfg_; }
  const TemporalGraph& graph() const { return *graph_; }
  const NeighborSampler& sampler() const { return sampler_; }

 private:
  struct Slot {
    std::shared_ptr<const ServingSnapshot> snap;
    std::atomic<std::uint64_t> version{0};  // 0 ⇔ unpublished
    std::atomic<std::uint32_t> readers{0};
  };

  void poll_loop(std::string dir);

  ModelConfig model_cfg_;
  ServingConfig cfg_;
  const TemporalGraph* graph_;
  const Matrix* static_memory_;
  NeighborSampler sampler_;
  std::size_t param_count_ = 0;   // probed from a live model at ctor
  std::size_t mail_raw_dim_ = 0;  // ditto — snapshot mail_dim must match

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> iteration_{0};
  std::atomic<std::uint64_t> installs_{0};
  std::mutex install_mu_;  // serializes writers; readers never take it

  std::atomic<std::uint64_t> scorer_seq_{0};

  std::thread poller_;
  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool poll_stop_ = false;
  std::atomic<std::uint64_t> poll_failures_{0};
};

}  // namespace disttgl::serving
