#include "serving/score_wire.hpp"

#include <string>

namespace disttgl::serving {

using dist::FabricErrc;
using dist::throw_fabric;
using dist::WireCursor;
using dist::WireWriter;

namespace {

// The leading count is the gate: reject a hostile or corrupt n before
// any array is decoded or any output buffer sized.
std::uint32_t checked_count(WireCursor& c, const char* what) {
  const std::uint32_t n = c.get_u32();
  if (n > kMaxScoreBatch)
    throw_fabric(FabricErrc::kOversize, std::string(what) + " count " +
                                            std::to_string(n) + " exceeds " +
                                            std::to_string(kMaxScoreBatch));
  return n;
}

void check_array(std::size_t got, std::uint32_t n, const char* what) {
  if (got != n)
    throw_fabric(FabricErrc::kTruncated,
                 std::string(what) + " array length " + std::to_string(got) +
                     " disagrees with count " + std::to_string(n));
}

void check_consumed(const WireCursor& c, const char* what) {
  if (c.remaining() != 0)
    throw_fabric(FabricErrc::kTruncated,
                 std::string(what) + ": " + std::to_string(c.remaining()) +
                     " trailing bytes");
}

}  // namespace

void encode_score_request(const ScoreRequest& req, WireWriter& w) {
  w.put_u64(req.id);
  w.put_u32(req.copy);
  w.put_u32(static_cast<std::uint32_t>(req.size()));
  w.put_u32s(req.src);
  w.put_u32s(req.dst);
  w.put_f32s(req.ts);
}

void encode_score_response(const ScoreResponse& resp, WireWriter& w) {
  w.put_u64(resp.id);
  w.put_u64(resp.version);
  w.put_u64(resp.iteration);
  w.put_u32(static_cast<std::uint32_t>(resp.scores.size()));
  w.put_f32s(resp.scores);
}

void decode_score_request(std::span<const std::uint8_t> payload,
                          ScoreRequest& out) {
  WireCursor c(payload);
  out.id = c.get_u64();
  out.copy = c.get_u32();
  const std::uint32_t n = checked_count(c, "score request");
  c.get_u32s_into(out.src);
  check_array(out.src.size(), n, "src");
  c.get_u32s_into(out.dst);
  check_array(out.dst.size(), n, "dst");
  c.get_f32s_into(out.ts);
  check_array(out.ts.size(), n, "ts");
  check_consumed(c, "score request");
}

void decode_score_response(std::span<const std::uint8_t> payload,
                           ScoreResponse& out) {
  WireCursor c(payload);
  out.id = c.get_u64();
  out.version = c.get_u64();
  out.iteration = c.get_u64();
  const std::uint32_t n = checked_count(c, "score response");
  c.get_f32s_into(out.scores);
  check_array(out.scores.size(), n, "scores");
  check_consumed(c, "score response");
}

}  // namespace disttgl::serving
