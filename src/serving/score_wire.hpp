// Score request/response payloads and their wire codecs.
//
// The serving tier speaks the existing framed protocol (dist/wire.hpp):
// a request travels as one kScoreRequest frame, the answer as one
// kScoreResponse frame, so it inherits the fabric's corruption story
// (checksummed frames, typed poisoning) and its sockets unchanged.
//
// Payload layouts (little-endian, fixed field order; `u32s`/`f32s` are
// the protocol's standard u64-count-prefixed arrays and every array's
// own count must equal the leading n):
//
//   kScoreRequest   u64 id | u32 copy | u32 n |
//                   u32s src | u32s dst | f32s ts
//   kScoreResponse  u64 id | u64 version | u64 iteration | u32 n |
//                   f32s scores
//
// Decoders are written against an adversarial client: the node count is
// validated against kMaxScoreBatch and the remaining payload length
// BEFORE any buffer is sized or any byte copied — a hostile 4-billion
// count field costs nothing — and trailing bytes are a typed error, not
// silently ignored. Both sides are capacity-preserving: encode into a
// recycled WireWriter, decode into recycled request/response structs,
// so the steady-state score path never touches the allocator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "distributed/wire.hpp"
#include "graph/types.hpp"

namespace disttgl::serving {

// Hard wire-level cap on positives per request; the server's max_batch
// knob may only tighten it. Bounds a hostile request's work and keeps
// every per-request buffer's high-water mark small.
inline constexpr std::size_t kMaxScoreBatch = 8192;

// One batched link-prediction query: score edges (src[e], dst[e]) as of
// time ts[e], against memory copy `copy` of the pinned snapshot.
struct ScoreRequest {
  std::uint64_t id = 0;    // client-chosen correlation id, echoed back
  std::uint32_t copy = 0;  // memory-parallel copy to read
  std::vector<NodeId> src, dst;
  std::vector<float> ts;

  std::size_t size() const { return src.size(); }
  void clear() {
    src.clear();
    dst.clear();
    ts.clear();
  }
};

struct ScoreResponse {
  std::uint64_t id = 0;         // echo of the request id
  std::uint64_t version = 0;    // published snapshot version served
  std::uint64_t iteration = 0;  // training iteration of that snapshot
  std::vector<float> scores;    // [n] edge scores (pre-sigmoid logits)

  void clear() { scores.clear(); }
};

// Encoders append to a caller-owned (recycled) writer; callers frame the
// bytes with encode_frame(kScoreRequest / kScoreResponse, ...).
void encode_score_request(const ScoreRequest& req, dist::WireWriter& w);
void encode_score_response(const ScoreResponse& resp, dist::WireWriter& w);

// Decoders throw FabricError (kOversize for a count past kMaxScoreBatch,
// kTruncated for short or trailing payload) before touching `out`'s
// contents on the failure paths that matter (oversize, short count
// field).
void decode_score_request(std::span<const std::uint8_t> payload,
                          ScoreRequest& out);
void decode_score_response(std::span<const std::uint8_t> payload,
                           ScoreResponse& out);

}  // namespace disttgl::serving
