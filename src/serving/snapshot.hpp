// ServingSnapshot: one immutable, self-contained model state for the
// read-only serving tier.
//
// A training checkpoint (core/checkpoint.hpp) already carries everything
// an online scorer needs — the flat weight vector plus every memory
// copy's full node-memory/mailbox state, which for an M-TGNN *is* part
// of the model at that point in the event stream. Loading binds them
// into one value: weights in Module::flat_values order (reader models
// rebind their parameters onto this buffer zero-copy) and one blocked
// MemoryState per memory-parallel copy, restored row-for-row.
//
// Once constructed a snapshot is never mutated; the ModelServer
// publishes it through an atomic version seam and many reader threads
// score against it concurrently without locks. Rank shards (optimizer
// moments, in-flight slices) are training-private and deliberately not
// read — serving only needs the post-round model state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "memory/memory_state.hpp"

namespace disttgl::serving {

struct ServingSnapshot {
  std::uint64_t iteration = 0;    // training iterations completed
  std::uint64_t fingerprint = 0;  // config fingerprint of the producing run
  std::uint64_t world = 0;        // trainer count that produced it
  std::vector<float> weights;     // flat, Module::flat_values order
  std::vector<MemoryState> states;  // one per memory-parallel copy

  std::size_t mem_copies() const { return states.size(); }
};

// Reads `<stem>.commit` + `<stem>.core` + every `<stem>.mem<m>` into an
// immutable snapshot, cross-checking fingerprint/iteration/geometry
// between shards. Throws CheckpointError on any defect (missing shard,
// corruption, mixed set).
std::shared_ptr<const ServingSnapshot> load_snapshot(const std::string& stem);

// Newest committed snapshot set in `dir` whose *serving* shards (commit
// + core + every mem shard) load cleanly; a torn or corrupt newest set
// falls back to the previous one, mirroring find_latest_snapshot.
// Returns nullptr when nothing servable exists.
std::shared_ptr<const ServingSnapshot> load_latest_servable(
    const std::string& dir);

}  // namespace disttgl::serving
