#include "serving/model_server.hpp"

#include <chrono>
#include <cstring>

#include "util/check.hpp"

namespace disttgl::serving {

void build_score_batch(const NeighborSampler& sampler, const ScoreRequest& req,
                       MiniBatch& mb) {
  const std::size_t n = req.size();
  mb.batch_idx = 0;
  mb.num_neg = 0;
  mb.neg_variants = 1;  // run() iterates variants; variant 0 has 0 negs
  mb.events.clear();
  mb.src.clear();
  mb.dst.clear();
  mb.ts.clear();
  mb.events.reserve(n);
  mb.src.reserve(n);
  mb.dst.reserve(n);
  mb.ts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Served edges are hypothetical — they carry no event id. The id is
    // only consumed by the write-back path, which inference with a null
    // write never takes.
    mb.events.push_back(static_cast<EdgeId>(i));
    mb.src.push_back(req.src[i]);
    mb.dst.push_back(req.dst[i]);
    mb.ts.push_back(req.ts[i]);
  }
  mb.neg_dst.clear();

  // Root staging + dedup mirror MiniBatchBuilder::build_into exactly
  // (first-seen order is load-bearing: it defines the unique-node
  // indexing the memory read and GRU update key on).
  const std::size_t R = n * 2;
  SampledRoots& roots = mb.roots;
  roots.clear();
  roots.nodes.reserve(R);
  roots.ts.reserve(R);
  for (std::size_t i = 0; i < n; ++i) {
    roots.nodes.push_back(mb.src[i]);
    roots.ts.push_back(mb.ts[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    roots.nodes.push_back(mb.dst[i]);
    roots.ts.push_back(mb.ts[i]);
  }

  sampler.sample_many(roots);
  const std::size_t K = roots.k;

  mb.unique_nodes.clear();
  mb.dedup.reset(R);
  mb.root_to_unique.resize(R);
  mb.neigh_to_unique.assign(R * K, 0);
  for (std::size_t r = 0; r < R; ++r) {
    mb.root_to_unique[r] = mb.dedup.intern(roots.nodes[r], mb.unique_nodes);
    for (std::size_t k = 0; k < roots.valid[r]; ++k)
      mb.neigh_to_unique[r * K + k] =
          mb.dedup.intern(roots.neigh_node[r * K + k], mb.unique_nodes);
  }
}

ModelServer::ModelServer(const ModelConfig& model_cfg, const ServingConfig& cfg,
                         const TemporalGraph& graph,
                         const Matrix* static_memory)
    : model_cfg_(model_cfg),
      cfg_(cfg),
      graph_(&graph),
      static_memory_(static_memory),
      sampler_(graph, model_cfg.num_neighbors) {
  DT_CHECK_GE(cfg_.slots, 2u);
  if (cfg_.max_batch > kMaxScoreBatch) cfg_.max_batch = kMaxScoreBatch;
  // Probe a throwaway model for the geometry every snapshot must match.
  {
    Rng rng(cfg_.seed);
    TGNModel probe(model_cfg_, *graph_, static_memory_, rng);
    if (probe.task() != TGNModel::Task::kLinkPrediction)
      throw_serving(ServingErrc::kShapeMismatch,
                    "serving supports link-prediction models only");
    param_count_ = probe.num_parameters();
    mail_raw_dim_ = probe.mail_raw_dim();
  }
  slots_.reserve(cfg_.slots);
  for (std::size_t s = 0; s < cfg_.slots; ++s)
    slots_.push_back(std::make_unique<Slot>());
}

ModelServer::~ModelServer() { stop_poller(); }

std::uint64_t ModelServer::install_snapshot(
    std::shared_ptr<const ServingSnapshot> snap) {
  if (!snap) throw_serving(ServingErrc::kShapeMismatch, "null snapshot");
  if (snap->weights.size() != param_count_)
    throw_serving(ServingErrc::kShapeMismatch,
                  "snapshot carries " + std::to_string(snap->weights.size()) +
                      " weights, model has " + std::to_string(param_count_));
  if (snap->states.empty())
    throw_serving(ServingErrc::kShapeMismatch, "snapshot has no memory copy");
  for (const MemoryState& st : snap->states) {
    if (st.num_nodes() != graph_->num_nodes() ||
        st.mem_dim() != model_cfg_.mem_dim || st.mail_dim() != mail_raw_dim_)
      throw_serving(ServingErrc::kShapeMismatch,
                    "memory copy geometry (" + std::to_string(st.num_nodes()) +
                        " nodes, mem " + std::to_string(st.mem_dim()) +
                        ", mail " + std::to_string(st.mail_dim()) +
                        ") does not fit the serving model");
  }

  std::lock_guard<std::mutex> lock(install_mu_);
  const std::uint64_t nv = version_.load(std::memory_order_acquire) + 1;
  Slot& slot = *slots_[nv % cfg_.slots];
  const std::uint64_t prev = slot.version.load(std::memory_order_acquire);

  // Unpublish the slot. seq_cst pairs with the reader's seq_cst
  // fetch_add + version load: after this store, a reader that pins the
  // slot will fail validation; a reader already pinned is visible in
  // `readers` below.
  slot.version.store(0, std::memory_order_seq_cst);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.drain_timeout_ms);
  while (slot.readers.load(std::memory_order_acquire) != 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      // Put the slot back the way it was — the ring stays consistent
      // and the old version (if this slot held one) is servable again.
      slot.version.store(prev, std::memory_order_seq_cst);
      throw_serving(ServingErrc::kDrainTimeout,
                    "slot " + std::to_string(nv % cfg_.slots) +
                        " still pinned after " +
                        std::to_string(cfg_.drain_timeout_ms) + " ms");
    }
    std::this_thread::yield();
  }

  slot.snap = std::move(snap);
  iteration_.store(slot.snap->iteration, std::memory_order_release);
  slot.version.store(nv, std::memory_order_seq_cst);
  version_.store(nv, std::memory_order_seq_cst);
  installs_.fetch_add(1, std::memory_order_relaxed);
  return nv;
}

// ---- Scorer --------------------------------------------------------------

namespace {

// Unpins a slot on every exit path (torn-retry `continue`, error throw,
// success) so a reader can never wedge the writer's drain.
class PinGuard {
 public:
  explicit PinGuard(std::atomic<std::uint32_t>& readers) : readers_(&readers) {
    readers_->fetch_add(1, std::memory_order_seq_cst);
  }
  ~PinGuard() {
    if (readers_) readers_->fetch_sub(1, std::memory_order_release);
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  std::atomic<std::uint32_t>* readers_;
};

}  // namespace

ModelServer::Scorer::Scorer(ModelServer& server, std::uint64_t seed)
    : server_(&server),
      rng_(seed),
      model_(server.model_cfg_, *server.graph_, server.static_memory_, rng_) {}

std::unique_ptr<ModelServer::Scorer> ModelServer::make_scorer() {
  const std::uint64_t seq = scorer_seq_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Scorer>(new Scorer(*this, cfg_.seed + 1 + seq));
}

void ModelServer::Scorer::score(const ScoreRequest& req, ScoreResponse& resp) {
  const std::size_t n = req.size();
  if (n == 0) throw_serving(ServingErrc::kBadRequest, "empty batch");
  if (n > server_->cfg_.max_batch)
    throw_serving(ServingErrc::kBadRequest,
                  "batch " + std::to_string(n) + " exceeds max_batch " +
                      std::to_string(server_->cfg_.max_batch));
  if (req.dst.size() != n || req.ts.size() != n)
    throw_serving(ServingErrc::kBadRequest, "src/dst/ts lengths disagree");
  const std::size_t num_nodes = server_->graph_->num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    if (req.src[i] >= num_nodes || req.dst[i] >= num_nodes)
      throw_serving(ServingErrc::kBadRequest,
                    "node id out of range at row " + std::to_string(i));
  }

  const std::size_t S = server_->cfg_.slots;
  for (;;) {
    const std::uint64_t v = server_->version_.load(std::memory_order_seq_cst);
    if (v == 0)
      throw_serving(ServingErrc::kNoSnapshot, "no snapshot installed yet");
    Slot& slot = *server_->slots_[v % S];
    PinGuard pin(slot.readers);
    if (slot.version.load(std::memory_order_seq_cst) != v) {
      // Torn window: the writer recycled this slot between our version
      // load and the pin. Nothing was read — retry against the ring.
      ++stats_.torn_retries;
      continue;
    }
    // Pinned and validated: `snap` cannot be swapped until we unpin.
    const ServingSnapshot& snap = *slot.snap;
    if (req.copy >= snap.mem_copies())
      throw_serving(ServingErrc::kWrongCopy,
                    "copy " + std::to_string(req.copy) + " of " +
                        std::to_string(snap.mem_copies()));

    if (bound_version_ != v) {
      model_.bind_external_values(snap.weights.data());
      bound_version_ = v;
      ++stats_.rebinds;
    }

    build_score_batch(server_->sampler_, req, mb_);
    snap.states[req.copy].read_into(mb_.unique_nodes, slice_);
    model_.infer_into(mb_, slice_, nullptr, step_);

    // Defense in depth: with the slot pinned this cannot fail (the
    // writer drains pinned slots before recycling), but a validated
    // read costs one atomic load and turns any future protocol
    // regression into a counted retry instead of a torn response.
    if (slot.version.load(std::memory_order_seq_cst) != v) {
      ++stats_.torn_retries;
      continue;
    }

    resp.id = req.id;
    resp.version = v;
    resp.iteration = snap.iteration;
    resp.scores.resize(n);
    std::memcpy(resp.scores.data(), step_.pos_scores.data(),
                n * sizeof(float));
    ++stats_.requests;
    return;
  }
}

// ---- poller --------------------------------------------------------------

void ModelServer::start_poller(const std::string& checkpoint_dir) {
  stop_poller();
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    poll_stop_ = false;
  }
  poller_ = std::thread([this, checkpoint_dir] { poll_loop(checkpoint_dir); });
}

void ModelServer::stop_poller() {
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    poll_stop_ = true;
  }
  poll_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

void ModelServer::poll_loop(std::string dir) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(poll_mu_);
      poll_cv_.wait_for(lock, std::chrono::milliseconds(cfg_.poll_ms),
                        [this] { return poll_stop_; });
      if (poll_stop_) return;
    }
    try {
      // Cheap directory scan first; only deserialize when something
      // newer than the published iteration has committed.
      const std::vector<SnapshotRef> refs = list_snapshots(dir);
      if (refs.empty() || refs.front().iteration <= iteration()) continue;
      auto snap = load_latest_servable(dir);
      if (snap && (version() == 0 || snap->iteration > iteration()))
        install_snapshot(std::move(snap));
    } catch (const std::exception&) {
      // Torn set mid-write, drain timeout, transient FS error — count
      // and retry next tick.
      poll_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace disttgl::serving
