#include "serving/snapshot.hpp"

namespace disttgl::serving {

std::shared_ptr<const ServingSnapshot> load_snapshot(const std::string& stem) {
  const CommitShard commit = read_commit_shard(stem);
  CoreShard core = read_core_shard(stem);
  if (core.fingerprint != commit.fingerprint ||
      core.iteration != commit.iteration || core.world != commit.world ||
      core.mem_copies != commit.mem_copies)
    throw CheckpointError(CheckpointErrc::kFingerprintMismatch, stem + ".core",
                          "core shard disagrees with the commit marker",
                          commit.fingerprint, core.fingerprint);

  auto snap = std::make_shared<ServingSnapshot>();
  snap->iteration = core.iteration;
  snap->fingerprint = core.fingerprint;
  snap->world = core.world;
  snap->weights = std::move(core.weights);
  snap->states.reserve(commit.mem_copies);
  for (std::uint64_t m = 0; m < commit.mem_copies; ++m) {
    const MemShard shard = read_mem_shard(stem, m);
    if (shard.fingerprint != commit.fingerprint ||
        shard.iteration != commit.iteration)
      throw CheckpointError(CheckpointErrc::kFingerprintMismatch,
                            stem + ".mem" + std::to_string(m),
                            "mem shard belongs to a different snapshot",
                            commit.fingerprint, shard.fingerprint);
    MemoryState state(shard.nodes, shard.mem_dim, shard.mail_dim);
    apply_mem_shard(shard, state);
    snap->states.push_back(std::move(state));
  }
  return snap;
}

std::shared_ptr<const ServingSnapshot> load_latest_servable(
    const std::string& dir) {
  for (const SnapshotRef& ref : list_snapshots(dir)) {
    try {
      return load_snapshot(ref.stem);
    } catch (const CheckpointError&) {
      // Torn or mixed set — fall back to the next-newest commit.
    }
  }
  return nullptr;
}

}  // namespace disttgl::serving
