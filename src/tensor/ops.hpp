// Kernel-level linear algebra on Matrix.
//
// These free functions are the compute hot path (the "GPU kernels" of
// this CPU reproduction). The three GEMM products share one blocked,
// packed, register-tiled implementation (tensor/gemm.hpp) selected by
// layout tags; everything else is a fused elementwise or reduction loop.
//
// Every op comes in two forms:
//   * a Matrix-returning form — convenient, allocates the result;
//   * an `_into` / `_acc` / `_inplace` form writing a caller-owned
//     output, which `reset_shape`s (capacity-reusing) so steady-state
//     training iterations perform no heap allocations.
// The hot path (nn/ layers, core/tgn_model) uses the second form with
// scratch held in layer Ctx structs and Workspace arenas.
#pragma once

#include <cmath>

#include "tensor/matrix.hpp"

namespace disttgl {

// ---- GEMM family: C = A·B, A·Bᵀ, Aᵀ·B (overwrite / accumulate) ----

// C = A * B ([m x k] * [k x n]).
Matrix matmul(const Matrix& a, const Matrix& b);
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);
// C += A * B.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);

// C = A * Bᵀ ([m x k] * [n x k]ᵀ) — attention scores, dx = dy·Wᵀ.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c);

// C = Aᵀ * B ([k x m]ᵀ * [k x n]) — weight gradients.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c);

// ---- bias / reductions ----

// out[r] = m[r] + bias (bias is [1 x cols]).
Matrix add_bias(const Matrix& m, const Matrix& bias);
void add_bias_into(const Matrix& m, const Matrix& bias, Matrix& out);
// m[r] += bias, in place — the hot-path form after matmul_into.
void add_bias_inplace(Matrix& m, const Matrix& bias);

// bias_grad[0][c] = sum_r dy(r, c).
Matrix column_sums(const Matrix& dy);
// acc[0][c] += sum_r dy(r, c) — accumulating form for bias gradients.
void column_sums_acc(const Matrix& dy, Matrix& acc);

// ---- masked softmax ----

// Row-wise softmax over the leading `valid[r]` entries of each row;
// entries at and beyond valid[r] receive probability 0. Used to mask
// variable neighbor counts in temporal attention.
Matrix masked_row_softmax(const Matrix& scores, std::span<const std::size_t> valid);
void masked_row_softmax_into(const Matrix& scores,
                             std::span<const std::size_t> valid, Matrix& out);
// Backward of masked_row_softmax: given y = softmax(x) and dL/dy,
// returns dL/dx with the same masking.
Matrix masked_row_softmax_backward(const Matrix& y, const Matrix& dy,
                                   std::span<const std::size_t> valid);
void masked_row_softmax_backward_into(const Matrix& y, const Matrix& dy,
                                      std::span<const std::size_t> valid,
                                      Matrix& dx);

// ---- elementwise activations and backwards expressed in terms of the
//      *outputs* (cheap for sigmoid/tanh). The `_into` forms allow
//      dx aliasing dy (pure elementwise). ----
Matrix sigmoid(const Matrix& x);
void sigmoid_into(const Matrix& x, Matrix& out);
Matrix tanh_m(const Matrix& x);
void tanh_into(const Matrix& x, Matrix& out);
Matrix relu(const Matrix& x);
void relu_into(const Matrix& x, Matrix& out);
void relu_inplace(Matrix& x);
// dx = dy ⊙ y(1-y), where y = sigmoid(x).
Matrix sigmoid_backward(const Matrix& y, const Matrix& dy);
void sigmoid_backward_into(const Matrix& y, const Matrix& dy, Matrix& dx);
// dx = dy ⊙ (1-y²), where y = tanh(x).
Matrix tanh_backward(const Matrix& y, const Matrix& dy);
void tanh_backward_into(const Matrix& y, const Matrix& dy, Matrix& dx);
// dx = dy ⊙ 1[y > 0].
Matrix relu_backward(const Matrix& y, const Matrix& dy);
void relu_backward_into(const Matrix& y, const Matrix& dy, Matrix& dx);

// Numerically-stable log-sigmoid, elementwise.
float log_sigmoid(float x);

// Numerically-stable scalar sigmoid (never exponentiates a positive
// argument) — the single definition behind sigmoid_into, the GRU gates,
// and the loss/static-memory score paths.
inline float stable_sigmoid(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

// Max relative elementwise difference; utility for gradient checks.
float max_rel_diff(const Matrix& a, const Matrix& b, float eps = 1e-6f);

}  // namespace disttgl
