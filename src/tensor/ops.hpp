// Kernel-level linear algebra on Matrix.
//
// These free functions are the compute hot path (the "GPU kernels" of
// this CPU reproduction). They are written as straightforward
// cache-friendly loops: the i-k-j GEMM ordering streams the B matrix
// row-wise, which is the single most important optimization at the sizes
// DistTGL uses (batch x 100-dim memory).
#pragma once

#include "tensor/matrix.hpp"

namespace disttgl {

// C = A * B ([m x k] * [k x n]).
Matrix matmul(const Matrix& a, const Matrix& b);
// C = A * B^T ([m x k] * [n x k]^T) — attention scores.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
// C = A^T * B ([k x m]^T * [k x n]) — weight gradients.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
// C += A * B.
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c);

// out[r] = m[r] + bias (bias is [1 x cols]).
Matrix add_bias(const Matrix& m, const Matrix& bias);
// bias_grad[0][c] = sum_r dy(r, c).
Matrix column_sums(const Matrix& dy);

// Row-wise softmax over the leading `valid[r]` entries of each row;
// entries at and beyond valid[r] receive probability 0. Used to mask
// variable neighbor counts in temporal attention.
Matrix masked_row_softmax(const Matrix& scores, std::span<const std::size_t> valid);
// Backward of masked_row_softmax: given y = softmax(x) and dL/dy,
// returns dL/dx with the same masking.
Matrix masked_row_softmax_backward(const Matrix& y, const Matrix& dy,
                                   std::span<const std::size_t> valid);

// ---- elementwise activations (returning new matrices) and backwards
//      expressed in terms of the *outputs* (cheap for sigmoid/tanh). ----
Matrix sigmoid(const Matrix& x);
Matrix tanh_m(const Matrix& x);
Matrix relu(const Matrix& x);
// dx = dy ⊙ y(1-y), where y = sigmoid(x).
Matrix sigmoid_backward(const Matrix& y, const Matrix& dy);
// dx = dy ⊙ (1-y²), where y = tanh(x).
Matrix tanh_backward(const Matrix& y, const Matrix& dy);
// dx = dy ⊙ 1[y > 0].
Matrix relu_backward(const Matrix& y, const Matrix& dy);

// Numerically-stable log-sigmoid, elementwise.
float log_sigmoid(float x);

// Max relative elementwise difference; utility for gradient checks.
float max_rel_diff(const Matrix& a, const Matrix& b, float eps = 1e-6f);

}  // namespace disttgl
