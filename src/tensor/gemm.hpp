// Blocked single-precision GEMM engine — the one micro-kernel behind
// matmul / matmul_nt / matmul_tn (tensor/ops.hpp).
//
// Layout tags describe how each operand is *read*, so the three public
// products are one implementation: C = op(A) · op(B) with
// op ∈ {identity, transpose}. Operands are packed into cache-resident
// panels (B into NR-wide column panels, A into MR-high row panels) and
// multiplied by a register-blocked MR x NR micro-kernel written with GCC
// vector extensions; on x86-64 the kernel is function-multiversioned
// (`target_clones`) so one portable binary dispatches to AVX2/AVX-512 at
// load time.
//
// Determinism: the k (reduction) dimension is never split across
// threads. Parallelism partitions C's rows; every (i, j) element is
// accumulated by exactly one thread in the same k-ascending block order
// the serial path uses, so results are bit-identical for any thread
// count. Tiny products (below kGemmSmallFlops multiply-adds) skip the
// packing machinery and run simple dense loops — a shape-based choice,
// also independent of thread count.
#pragma once

#include <cstddef>

namespace disttgl::kernel {

// How an operand matrix is read by the gemm driver.
enum class Layout {
  kNormal,      // logical (i, j) at data[i * ld + j]
  kTransposed,  // logical (i, j) at data[j * ld + i]
};

// Products with fewer multiply-adds than this run the unblocked
// fallback loops (packing would cost more than it saves).
inline constexpr std::size_t kGemmSmallFlops = 16 * 1024;

// C[m x n] (row-major, leading dimension ldc) = op(A) · op(B), or
// += when `accumulate`. Logical shapes after op: A is [m x k],
// B is [k x n]. lda/ldb are the *storage* leading dimensions.
void gemm(Layout layout_a, Layout layout_b, std::size_t m, std::size_t n,
          std::size_t k, const float* a, std::size_t lda, const float* b,
          std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

// Worker threads large GEMMs may fan out over (row-block parallelism).
// Defaults to std::thread::hardware_concurrency(). 1 disables the pool.
// Not safe to call concurrently with in-flight gemm() calls.
std::size_t gemm_threads();
void set_gemm_threads(std::size_t n);

}  // namespace disttgl::kernel
