// Dense row-major float matrix — the single tensor type of DistTGL.
//
// Everything in the training stack (node memory, mails, activations,
// weights) is 2-D; batching is always along rows. Keeping a single
// concrete type with contiguous storage makes the daemon's shared-buffer
// slicing (memcpy of row ranges) and the GEMM kernels trivial, and keeps
// compile times low compared to an expression-template tensor.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace disttgl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill), ptr_(data_.data()) {}
  // Row-major literal constructor, used heavily in tests.
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<float> values);

  // Copying always yields an owning matrix; copy-assigning *into* a view
  // copies the elements through the view (shapes must carry the same
  // element count). Moving transfers the view binding.
  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  // Re-bases this matrix onto caller-owned storage of size() floats:
  // current contents are copied in, owned heap memory is released, and
  // the matrix becomes a *view* — all reads/writes go through `storage`,
  // which must outlive the matrix. Views keep a fixed element count
  // (reshape is fine, growth is not). This is the primitive behind
  // nn::Module::freeze_flat_storage(): parameters stay ordinary Matrices
  // while their elements live in one contiguous buffer.
  void bind_external(float* storage);
  // As bind_external, but *adopting*: current contents are discarded and
  // `storage` is read as-is — nothing is written through the pointer, so
  // many matrices may rebind onto one shared immutable buffer (the
  // serving tier points every reader model's weights at the published
  // snapshot this way). Callable repeatedly, including on an existing
  // view; after the first call it never touches the heap, which keeps
  // snapshot swaps on the score path allocation-free.
  void rebind_external(float* storage);
  bool is_view() const { return view_; }

  float& operator()(std::size_t r, std::size_t c) {
    DT_CHECK_LT(r, rows_);
    DT_CHECK_LT(c, cols_);
    return ptr_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    DT_CHECK_LT(r, rows_);
    DT_CHECK_LT(c, cols_);
    return ptr_[r * cols_ + c];
  }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  float* row_ptr(std::size_t r) { return ptr_ + r * cols_; }
  const float* row_ptr(std::size_t r) const { return ptr_ + r * cols_; }
  std::span<float> row(std::size_t r) { return {row_ptr(r), cols_}; }
  std::span<const float> row(std::size_t r) const { return {row_ptr(r), cols_}; }

  void fill(float value);
  void zero() { fill(0.0f); }
  // Reshape preserving element count.
  void reshape(std::size_t rows, std::size_t cols);
  // Resize discarding contents (fills with `fill`).
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f);
  // Resize without the fill pass: contents are unspecified. Reuses heap
  // capacity, so repeated same-shape calls never allocate — the shape
  // primitive behind Workspace and the `_into` kernels.
  void reset_shape(std::size_t rows, std::size_t cols);

  // ---- in-place elementwise ----
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);
  // Hadamard product.
  Matrix& hadamard(const Matrix& other);
  // this += s * other (axpy).
  Matrix& add_scaled(const Matrix& other, float s);

  // ---- row-level ops ----
  void copy_row_from(std::size_t r, std::span<const float> src);
  void add_row_from(std::size_t r, std::span<const float> src);

  // Extract rows listed in `index` into a new [index.size() x cols] matrix.
  Matrix gather_rows(std::span<const std::size_t> index) const;
  // As gather_rows, but into a caller-owned output (reshaped in place).
  void gather_rows_into(std::span<const std::size_t> index, Matrix& out) const;
  // Scatter rows of `src` into the rows listed in `index` (overwrite).
  void scatter_rows(std::span<const std::size_t> index, const Matrix& src);

  // Column-wise concatenation {A || B}: both must share row counts.
  static Matrix concat_cols(const Matrix& a, const Matrix& b);
  static Matrix concat_cols(const Matrix& a, const Matrix& b, const Matrix& c);
  // Allocation-free concatenation into a caller-owned output.
  static void concat_cols_into(const Matrix& a, const Matrix& b, Matrix& out);
  static void concat_cols_into(const Matrix& a, const Matrix& b, const Matrix& c,
                               Matrix& out);
  // Slice columns [lo, hi) into a new matrix.
  Matrix slice_cols(std::size_t lo, std::size_t hi) const;
  // As slice_cols, but into a caller-owned output.
  void slice_cols_into(std::size_t lo, std::size_t hi, Matrix& out) const;
  // Slice rows [lo, hi) into a new matrix.
  Matrix slice_rows(std::size_t lo, std::size_t hi) const;
  // As slice_rows, but into a caller-owned output.
  void slice_rows_into(std::size_t lo, std::size_t hi, Matrix& out) const;

  // Frobenius norms / reductions, used by grad-clipping and tests.
  float squared_norm() const;
  float abs_max() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  // Invariant: owning matrices (view_ == false) keep ptr_ == data_.data();
  // views keep data_ empty and ptr_ pointing at external storage.
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
  float* ptr_ = nullptr;
  bool view_ = false;
};

}  // namespace disttgl
