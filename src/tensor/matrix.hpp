// Dense row-major float matrix — the single tensor type of DistTGL.
//
// Everything in the training stack (node memory, mails, activations,
// weights) is 2-D; batching is always along rows. Keeping a single
// concrete type with contiguous storage makes the daemon's shared-buffer
// slicing (memcpy of row ranges) and the GEMM kernels trivial, and keeps
// compile times low compared to an expression-template tensor.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace disttgl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Row-major literal constructor, used heavily in tests.
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<float> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    DT_CHECK_LT(r, rows_);
    DT_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    DT_CHECK_LT(r, rows_);
    DT_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const float* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }
  std::span<float> row(std::size_t r) { return {row_ptr(r), cols_}; }
  std::span<const float> row(std::size_t r) const { return {row_ptr(r), cols_}; }

  void fill(float value);
  void zero() { fill(0.0f); }
  // Reshape preserving element count.
  void reshape(std::size_t rows, std::size_t cols);
  // Resize discarding contents (fills with `fill`).
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f);
  // Resize without the fill pass: contents are unspecified. Reuses heap
  // capacity, so repeated same-shape calls never allocate — the shape
  // primitive behind Workspace and the `_into` kernels.
  void reset_shape(std::size_t rows, std::size_t cols);

  // ---- in-place elementwise ----
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);
  // Hadamard product.
  Matrix& hadamard(const Matrix& other);
  // this += s * other (axpy).
  Matrix& add_scaled(const Matrix& other, float s);

  // ---- row-level ops ----
  void copy_row_from(std::size_t r, std::span<const float> src);
  void add_row_from(std::size_t r, std::span<const float> src);

  // Extract rows listed in `index` into a new [index.size() x cols] matrix.
  Matrix gather_rows(std::span<const std::size_t> index) const;
  // As gather_rows, but into a caller-owned output (reshaped in place).
  void gather_rows_into(std::span<const std::size_t> index, Matrix& out) const;
  // Scatter rows of `src` into the rows listed in `index` (overwrite).
  void scatter_rows(std::span<const std::size_t> index, const Matrix& src);

  // Column-wise concatenation {A || B}: both must share row counts.
  static Matrix concat_cols(const Matrix& a, const Matrix& b);
  static Matrix concat_cols(const Matrix& a, const Matrix& b, const Matrix& c);
  // Allocation-free concatenation into a caller-owned output.
  static void concat_cols_into(const Matrix& a, const Matrix& b, Matrix& out);
  static void concat_cols_into(const Matrix& a, const Matrix& b, const Matrix& c,
                               Matrix& out);
  // Slice columns [lo, hi) into a new matrix.
  Matrix slice_cols(std::size_t lo, std::size_t hi) const;
  // As slice_cols, but into a caller-owned output.
  void slice_cols_into(std::size_t lo, std::size_t hi, Matrix& out) const;
  // Slice rows [lo, hi) into a new matrix.
  Matrix slice_rows(std::size_t lo, std::size_t hi) const;
  // As slice_rows, but into a caller-owned output.
  void slice_rows_into(std::size_t lo, std::size_t hi, Matrix& out) const;

  // Frobenius norms / reductions, used by grad-clipping and tests.
  float squared_norm() const;
  float abs_max() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace disttgl
