#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace disttgl {

Matrix::Matrix(std::size_t rows, std::size_t cols,
               std::initializer_list<float> values)
    : rows_(rows), cols_(cols), data_(values), ptr_(data_.data()) {
  DT_CHECK_EQ(data_.size(), rows * cols);
}

Matrix::Matrix(const Matrix& other) : rows_(other.rows_), cols_(other.cols_) {
  if (other.size() > 0) data_.assign(other.ptr_, other.ptr_ + other.size());
  ptr_ = data_.data();
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  if (view_) {
    // A view's element count is fixed by its binding; copy through it.
    DT_CHECK_EQ(size(), other.size());
    rows_ = other.rows_;
    cols_ = other.cols_;
    if (size() > 0) std::memcpy(ptr_, other.ptr_, size() * sizeof(float));
  } else {
    rows_ = other.rows_;
    cols_ = other.cols_;
    if (other.size() > 0) {
      data_.assign(other.ptr_, other.ptr_ + other.size());
    } else {
      data_.clear();
    }
    ptr_ = data_.data();
  }
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      data_(std::move(other.data_)),
      view_(other.view_) {
  ptr_ = view_ ? other.ptr_ : data_.data();
  other.rows_ = other.cols_ = 0;
  other.data_.clear();
  other.ptr_ = other.data_.data();
  other.view_ = false;
}

Matrix& Matrix::operator=(Matrix&& other) {
  if (this == &other) return *this;
  if (view_) return *this = other;  // copy through the binding
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  view_ = other.view_;
  ptr_ = view_ ? other.ptr_ : data_.data();
  other.rows_ = other.cols_ = 0;
  other.data_.clear();
  other.ptr_ = other.data_.data();
  other.view_ = false;
  return *this;
}

void Matrix::bind_external(float* storage) {
  DT_CHECK(!view_);
  if (size() > 0) std::memcpy(storage, data_.data(), size() * sizeof(float));
  data_.clear();
  data_.shrink_to_fit();
  ptr_ = storage;
  view_ = true;
}

void Matrix::rebind_external(float* storage) {
  if (!view_) {
    data_.clear();
    data_.shrink_to_fit();
  }
  ptr_ = storage;
  view_ = true;
}

void Matrix::fill(float value) { std::fill(ptr_, ptr_ + size(), value); }

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  DT_CHECK_EQ(rows * cols, size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::resize(std::size_t rows, std::size_t cols, float fill) {
  if (view_) {
    DT_CHECK_EQ(rows * cols, size());
    rows_ = rows;
    cols_ = cols;
    this->fill(fill);
    return;
  }
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
  ptr_ = data_.data();
}

void Matrix::reset_shape(std::size_t rows, std::size_t cols) {
  if (view_) {
    DT_CHECK_EQ(rows * cols, size());
    rows_ = rows;
    cols_ = cols;
    return;
  }
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  ptr_ = data_.data();
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < size(); ++i) ptr_[i] += other.ptr_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < size(); ++i) ptr_[i] -= other.ptr_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (std::size_t i = 0; i < size(); ++i) ptr_[i] *= s;
  return *this;
}

Matrix& Matrix::hadamard(const Matrix& other) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < size(); ++i) ptr_[i] *= other.ptr_[i];
  return *this;
}

Matrix& Matrix::add_scaled(const Matrix& other, float s) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < size(); ++i) ptr_[i] += s * other.ptr_[i];
  return *this;
}

void Matrix::copy_row_from(std::size_t r, std::span<const float> src) {
  DT_CHECK_LT(r, rows_);
  DT_CHECK_EQ(src.size(), cols_);
  std::memcpy(row_ptr(r), src.data(), cols_ * sizeof(float));
}

void Matrix::add_row_from(std::size_t r, std::span<const float> src) {
  DT_CHECK_LT(r, rows_);
  DT_CHECK_EQ(src.size(), cols_);
  float* dst = row_ptr(r);
  for (std::size_t c = 0; c < cols_; ++c) dst[c] += src[c];
}

Matrix Matrix::gather_rows(std::span<const std::size_t> index) const {
  Matrix out;
  gather_rows_into(index, out);
  return out;
}

void Matrix::gather_rows_into(std::span<const std::size_t> index,
                              Matrix& out) const {
  DT_CHECK(&out != this);
  out.reset_shape(index.size(), cols_);
  for (std::size_t i = 0; i < index.size(); ++i) {
    DT_CHECK_LT(index[i], rows_);
    std::memcpy(out.row_ptr(i), row_ptr(index[i]), cols_ * sizeof(float));
  }
}

void Matrix::scatter_rows(std::span<const std::size_t> index, const Matrix& src) {
  DT_CHECK_EQ(index.size(), src.rows());
  DT_CHECK_EQ(src.cols(), cols_);
  for (std::size_t i = 0; i < index.size(); ++i) {
    DT_CHECK_LT(index[i], rows_);
    std::memcpy(row_ptr(index[i]), src.row_ptr(i), cols_ * sizeof(float));
  }
}

Matrix Matrix::concat_cols(const Matrix& a, const Matrix& b) {
  Matrix out;
  concat_cols_into(a, b, out);
  return out;
}

Matrix Matrix::concat_cols(const Matrix& a, const Matrix& b, const Matrix& c) {
  Matrix out;
  concat_cols_into(a, b, c, out);
  return out;
}

void Matrix::concat_cols_into(const Matrix& a, const Matrix& b, Matrix& out) {
  DT_CHECK_EQ(a.rows(), b.rows());
  DT_CHECK(&out != &a);
  DT_CHECK(&out != &b);
  out.reset_shape(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::memcpy(out.row_ptr(r), a.row_ptr(r), a.cols() * sizeof(float));
    std::memcpy(out.row_ptr(r) + a.cols(), b.row_ptr(r), b.cols() * sizeof(float));
  }
}

void Matrix::concat_cols_into(const Matrix& a, const Matrix& b, const Matrix& c,
                              Matrix& out) {
  DT_CHECK_EQ(a.rows(), b.rows());
  DT_CHECK_EQ(a.rows(), c.rows());
  DT_CHECK(&out != &a);
  DT_CHECK(&out != &b);
  DT_CHECK(&out != &c);
  out.reset_shape(a.rows(), a.cols() + b.cols() + c.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* dst = out.row_ptr(r);
    std::memcpy(dst, a.row_ptr(r), a.cols() * sizeof(float));
    std::memcpy(dst + a.cols(), b.row_ptr(r), b.cols() * sizeof(float));
    std::memcpy(dst + a.cols() + b.cols(), c.row_ptr(r), c.cols() * sizeof(float));
  }
}

Matrix Matrix::slice_cols(std::size_t lo, std::size_t hi) const {
  Matrix out;
  slice_cols_into(lo, hi, out);
  return out;
}

void Matrix::slice_cols_into(std::size_t lo, std::size_t hi, Matrix& out) const {
  DT_CHECK_LE(lo, hi);
  DT_CHECK_LE(hi, cols_);
  DT_CHECK(&out != this);
  out.reset_shape(rows_, hi - lo);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::memcpy(out.row_ptr(r), row_ptr(r) + lo, (hi - lo) * sizeof(float));
  }
}

Matrix Matrix::slice_rows(std::size_t lo, std::size_t hi) const {
  Matrix out;
  slice_rows_into(lo, hi, out);
  return out;
}

void Matrix::slice_rows_into(std::size_t lo, std::size_t hi, Matrix& out) const {
  DT_CHECK_LE(lo, hi);
  DT_CHECK_LE(hi, rows_);
  DT_CHECK(&out != this);
  out.reset_shape(hi - lo, cols_);
  // An empty slice (hi == lo, or zero columns) has nothing to copy and
  // may legitimately have a null destination buffer.
  if (hi != lo && cols_ != 0)
    std::memcpy(out.data(), ptr_ + lo * cols_,
                (hi - lo) * cols_ * sizeof(float));
}

float Matrix::squared_norm() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    acc += static_cast<double>(ptr_[i]) * ptr_[i];
  return static_cast<float>(acc);
}

float Matrix::abs_max() const {
  float m = 0.0f;
  for (std::size_t i = 0; i < size(); ++i) m = std::max(m, std::abs(ptr_[i]));
  return m;
}

}  // namespace disttgl
