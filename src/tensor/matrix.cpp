#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace disttgl {

Matrix::Matrix(std::size_t rows, std::size_t cols,
               std::initializer_list<float> values)
    : rows_(rows), cols_(cols), data_(values) {
  DT_CHECK_EQ(data_.size(), rows * cols);
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  DT_CHECK_EQ(rows * cols, data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::resize(std::size_t rows, std::size_t cols, float fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

void Matrix::reset_shape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::hadamard(const Matrix& other) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::add_scaled(const Matrix& other, float s) {
  DT_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

void Matrix::copy_row_from(std::size_t r, std::span<const float> src) {
  DT_CHECK_LT(r, rows_);
  DT_CHECK_EQ(src.size(), cols_);
  std::memcpy(row_ptr(r), src.data(), cols_ * sizeof(float));
}

void Matrix::add_row_from(std::size_t r, std::span<const float> src) {
  DT_CHECK_LT(r, rows_);
  DT_CHECK_EQ(src.size(), cols_);
  float* dst = row_ptr(r);
  for (std::size_t c = 0; c < cols_; ++c) dst[c] += src[c];
}

Matrix Matrix::gather_rows(std::span<const std::size_t> index) const {
  Matrix out;
  gather_rows_into(index, out);
  return out;
}

void Matrix::gather_rows_into(std::span<const std::size_t> index,
                              Matrix& out) const {
  DT_CHECK(&out != this);
  out.reset_shape(index.size(), cols_);
  for (std::size_t i = 0; i < index.size(); ++i) {
    DT_CHECK_LT(index[i], rows_);
    std::memcpy(out.row_ptr(i), row_ptr(index[i]), cols_ * sizeof(float));
  }
}

void Matrix::scatter_rows(std::span<const std::size_t> index, const Matrix& src) {
  DT_CHECK_EQ(index.size(), src.rows());
  DT_CHECK_EQ(src.cols(), cols_);
  for (std::size_t i = 0; i < index.size(); ++i) {
    DT_CHECK_LT(index[i], rows_);
    std::memcpy(row_ptr(index[i]), src.row_ptr(i), cols_ * sizeof(float));
  }
}

Matrix Matrix::concat_cols(const Matrix& a, const Matrix& b) {
  Matrix out;
  concat_cols_into(a, b, out);
  return out;
}

Matrix Matrix::concat_cols(const Matrix& a, const Matrix& b, const Matrix& c) {
  Matrix out;
  concat_cols_into(a, b, c, out);
  return out;
}

void Matrix::concat_cols_into(const Matrix& a, const Matrix& b, Matrix& out) {
  DT_CHECK_EQ(a.rows(), b.rows());
  DT_CHECK(&out != &a);
  DT_CHECK(&out != &b);
  out.reset_shape(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::memcpy(out.row_ptr(r), a.row_ptr(r), a.cols() * sizeof(float));
    std::memcpy(out.row_ptr(r) + a.cols(), b.row_ptr(r), b.cols() * sizeof(float));
  }
}

void Matrix::concat_cols_into(const Matrix& a, const Matrix& b, const Matrix& c,
                              Matrix& out) {
  DT_CHECK_EQ(a.rows(), b.rows());
  DT_CHECK_EQ(a.rows(), c.rows());
  DT_CHECK(&out != &a);
  DT_CHECK(&out != &b);
  DT_CHECK(&out != &c);
  out.reset_shape(a.rows(), a.cols() + b.cols() + c.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* dst = out.row_ptr(r);
    std::memcpy(dst, a.row_ptr(r), a.cols() * sizeof(float));
    std::memcpy(dst + a.cols(), b.row_ptr(r), b.cols() * sizeof(float));
    std::memcpy(dst + a.cols() + b.cols(), c.row_ptr(r), c.cols() * sizeof(float));
  }
}

Matrix Matrix::slice_cols(std::size_t lo, std::size_t hi) const {
  Matrix out;
  slice_cols_into(lo, hi, out);
  return out;
}

void Matrix::slice_cols_into(std::size_t lo, std::size_t hi, Matrix& out) const {
  DT_CHECK_LE(lo, hi);
  DT_CHECK_LE(hi, cols_);
  DT_CHECK(&out != this);
  out.reset_shape(rows_, hi - lo);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::memcpy(out.row_ptr(r), row_ptr(r) + lo, (hi - lo) * sizeof(float));
  }
}

Matrix Matrix::slice_rows(std::size_t lo, std::size_t hi) const {
  Matrix out;
  slice_rows_into(lo, hi, out);
  return out;
}

void Matrix::slice_rows_into(std::size_t lo, std::size_t hi, Matrix& out) const {
  DT_CHECK_LE(lo, hi);
  DT_CHECK_LE(hi, rows_);
  DT_CHECK(&out != this);
  out.reset_shape(hi - lo, cols_);
  std::memcpy(out.data(), data_.data() + lo * cols_,
              (hi - lo) * cols_ * sizeof(float));
}

float Matrix::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Matrix::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace disttgl
