#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace disttgl::kernel {
namespace {

// ---- tile geometry -------------------------------------------------------
//
// MR x NR register tile: MR rows of C, NR = NV * 8 columns held in NV
// 8-float accumulator vectors per row. 6 x 32 keeps 24 accumulator
// vectors live — sized for the 32 architectural registers of AVX-512;
// on AVX2 the tail spills to L1, which costs little next to the FMA
// chain. KC bounds the packed panels so an A panel (MR*KC floats) and
// the B panel stripe stay cache-resident across the j sweep.
constexpr std::size_t MR = 6;
constexpr std::size_t NV = 4;
constexpr std::size_t NR = NV * 8;
constexpr std::size_t KC = 256;

#if defined(__GNUC__) || defined(__clang__)
#define DT_HAVE_VECTOR_EXT 1
typedef float v8sf __attribute__((vector_size(32), aligned(4)));
#else
#define DT_HAVE_VECTOR_EXT 0
#endif

// Function multiversioning: GCC on x86-64/glibc resolves the best clone
// at load time via ifunc, so the portable baseline binary still runs
// AVX2/AVX-512 code where available. (x86-64-v3 = AVX2+FMA, v4 = AVX-512.)
// Only in optimized builds: GCC 12 miscompiles target_clones bodies at
// -O0 (observed: 0·inf evaluating to 0 and run-to-run nondeterminism),
// and -O0 has no use for SIMD dispatch anyway.
#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__) && defined(__OPTIMIZE__)
#define DT_KERNEL_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define DT_KERNEL_CLONES
#endif

#if DT_HAVE_VECTOR_EXT

inline v8sf load8(const float* p) {
  v8sf v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
inline void store8(float* p, v8sf v) { __builtin_memcpy(p, &v, sizeof(v)); }

// One MR x NR tile: C_tile (+)= Apanel · Bpanel over kc reduction steps.
// Apanel is MR-interleaved (MR consecutive row values per k), Bpanel is
// NR-interleaved. `first` selects overwrite (first k-block of a
// non-accumulating product) vs add. mr/nr trim the store for edge tiles.
DT_KERNEL_CLONES
void micro_kernel(std::size_t kc, const float* ap, const float* bp, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr, bool first) {
  v8sf acc[MR][NV];
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t v = 0; v < NV; ++v) acc[i][v] = v8sf{};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    v8sf b[NV];
    for (std::size_t v = 0; v < NV; ++v) b[v] = load8(bp + p * NR + 8 * v);
    for (std::size_t i = 0; i < MR; ++i) {
      const v8sf av = v8sf{} + a[i];  // broadcast
      for (std::size_t v = 0; v < NV; ++v) acc[i][v] += av * b[v];
    }
  }
  if (mr == MR && nr == NR) {
    if (first) {
      for (std::size_t i = 0; i < MR; ++i)
        for (std::size_t v = 0; v < NV; ++v) store8(c + i * ldc + 8 * v, acc[i][v]);
    } else {
      for (std::size_t i = 0; i < MR; ++i) {
        float* crow = c + i * ldc;
        for (std::size_t v = 0; v < NV; ++v)
          store8(crow + 8 * v, load8(crow + 8 * v) + acc[i][v]);
      }
    }
  } else {
    float tmp[MR][NR];
    for (std::size_t i = 0; i < MR; ++i)
      for (std::size_t v = 0; v < NV; ++v) store8(&tmp[i][v * 8], acc[i][v]);
    for (std::size_t i = 0; i < mr; ++i)
      for (std::size_t j = 0; j < nr; ++j) {
        if (first) c[i * ldc + j] = tmp[i][j];
        else c[i * ldc + j] += tmp[i][j];
      }
  }
}

#else  // !DT_HAVE_VECTOR_EXT — plain-array kernel, same tiling and order.

void micro_kernel(std::size_t kc, const float* ap, const float* bp, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr, bool first) {
  float acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i)
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += a[i] * b[j];
  }
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j) {
      if (first) c[i * ldc + j] = acc[i][j];
      else c[i * ldc + j] += acc[i][j];
    }
}

#endif  // DT_HAVE_VECTOR_EXT

// ---- packing -------------------------------------------------------------

inline const float* op_ptr(Layout lay, const float* data, std::size_t ld,
                           std::size_t i, std::size_t j) {
  return lay == Layout::kNormal ? data + i * ld + j : data + j * ld + i;
}

// Pack logical B[p0:p0+kc, 0:n] into NR-wide column panels, zero-padding
// the last panel to NR. Output occupies ceil(n/NR)*NR * kc floats.
void pack_b(Layout lay, const float* b, std::size_t ldb, std::size_t p0,
            std::size_t kc, std::size_t n, float* out) {
  for (std::size_t j0 = 0; j0 < n; j0 += NR) {
    const std::size_t nr = std::min(NR, n - j0);
    float* panel = out + j0 * kc;
    if (lay == Layout::kNormal && nr == NR) {
      for (std::size_t p = 0; p < kc; ++p)
        std::memcpy(panel + p * NR, b + (p0 + p) * ldb + j0, NR * sizeof(float));
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        float* dst = panel + p * NR;
        std::size_t j = 0;
        for (; j < nr; ++j) dst[j] = *op_ptr(lay, b, ldb, p0 + p, j0 + j);
        for (; j < NR; ++j) dst[j] = 0.0f;
      }
    }
  }
}

// Pack logical A[r0:r0+mc, p0:p0+kc] into MR-high row panels, zero-padding
// the last panel to MR. Output occupies ceil(mc/MR)*MR * kc floats.
void pack_a(Layout lay, const float* a, std::size_t lda, std::size_t r0,
            std::size_t mc, std::size_t p0, std::size_t kc, float* out) {
  for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
    const std::size_t mr = std::min(MR, mc - i0);
    float* panel = out + i0 * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * MR;
      std::size_t i = 0;
      for (; i < mr; ++i) dst[i] = *op_ptr(lay, a, lda, r0 + i0 + i, p0 + p);
      for (; i < MR; ++i) dst[i] = 0.0f;
    }
  }
}

// ---- drivers -------------------------------------------------------------

// Rows [r0, r1) of C, all k-blocks in ascending order. `bpack` holds every
// k-block of B, pre-packed, the block for offset p0 starting at npad*p0.
void run_rows(Layout la, std::size_t n, std::size_t k, const float* a,
              std::size_t lda, const float* bpack, std::size_t npad, float* c,
              std::size_t ldc, bool accumulate, std::size_t r0,
              std::size_t r1) {
  static thread_local std::vector<float> apack;
  const std::size_t mc = r1 - r0;
  const std::size_t mpad = (mc + MR - 1) / MR * MR;
  for (std::size_t p0 = 0; p0 < k; p0 += KC) {
    const std::size_t kc = std::min(KC, k - p0);
    apack.resize(mpad * kc);
    pack_a(la, a, lda, r0, mc, p0, kc, apack.data());
    const bool first = p0 == 0 && !accumulate;
    const float* bblk = bpack + npad * p0;
    for (std::size_t i0 = 0; i0 < mc; i0 += MR) {
      const std::size_t mr = std::min(MR, mc - i0);
      for (std::size_t j0 = 0; j0 < n; j0 += NR) {
        const std::size_t nr = std::min(NR, n - j0);
        micro_kernel(kc, apack.data() + i0 * kc, bblk + j0 * kc,
                     c + (r0 + i0) * ldc + j0, ldc, mr, nr, first);
      }
    }
  }
}

// Unblocked loops for products too small to amortize packing. The branch
// is on shape only, so any given product is deterministic across thread
// counts (and there are no data-dependent skips: zeros flow through the
// arithmetic so 0 * NaN correctly yields NaN).
void gemm_small(Layout la, Layout lb, std::size_t m, std::size_t n,
                std::size_t k, const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  if (!accumulate)
    for (std::size_t i = 0; i < m; ++i)
      std::memset(c + i * ldc, 0, n * sizeof(float));
  if (la == Layout::kNormal && lb == Layout::kNormal) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      const float* arow = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = b + p * ldb;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (la == Layout::kNormal && lb == Layout::kTransposed) {
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  } else if (la == Layout::kTransposed && lb == Layout::kNormal) {
    for (std::size_t p = 0; p < k; ++p) {
      const float* arow = a + p * lda;
      const float* brow = b + p * ldb;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        float* crow = c + i * ldc;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p)
          acc += *op_ptr(la, a, lda, i, p) * *op_ptr(lb, b, ldb, p, j);
        c[i * ldc + j] += acc;
      }
  }
}

// ---- thread configuration ------------------------------------------------

std::atomic<std::size_t> g_threads{0};  // 0 = not yet initialized

std::size_t resolve_threads() {
  std::size_t t = g_threads.load(std::memory_order_relaxed);
  if (t == 0) {
    t = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    g_threads.store(t, std::memory_order_relaxed);
  }
  return t;
}

// Pool shared by every parallel gemm; sized gemm_threads() - 1 because
// the calling thread works on the first row chunk itself. Sized by the
// configured thread count only — a GEMM with fewer row blocks than
// threads simply submits fewer chunks — so the pool is rebuilt (old one
// drained and destroyed) only when set_gemm_threads changes the count,
// never on the per-shape hot path.
std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;

std::shared_ptr<ThreadPool> shared_pool(std::size_t workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool->size() != workers)
    g_pool = std::make_shared<ThreadPool>(workers);
  return g_pool;
}

// Work below this many multiply-adds is not worth fanning out.
constexpr std::size_t kParallelFlops = 512 * 1024;

}  // namespace

std::size_t gemm_threads() { return resolve_threads(); }

void set_gemm_threads(std::size_t n) {
  g_threads.store(std::max<std::size_t>(1, n), std::memory_order_relaxed);
}

void gemm(Layout la, Layout lb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  const std::size_t flops = m * n * k;
  if (flops < kGemmSmallFlops) {
    gemm_small(la, lb, m, n, k, a, lda, b, ldb, c, ldc, accumulate);
    return;
  }

  // Pack all of B once; every row task reads the same panels.
  static thread_local std::vector<float> bpack;
  const std::size_t npad = (n + NR - 1) / NR * NR;
  bpack.resize(npad * k);
  for (std::size_t p0 = 0; p0 < k; p0 += KC)
    pack_b(lb, b, ldb, p0, std::min(KC, k - p0), n, bpack.data() + npad * p0);

  const std::size_t mblocks = (m + MR - 1) / MR;
  const std::size_t configured = resolve_threads();
  std::size_t nthreads = configured;
  if (flops < kParallelFlops) nthreads = 1;
  nthreads = std::min(nthreads, mblocks);

  if (nthreads <= 1) {
    run_rows(la, n, k, a, lda, bpack.data(), npad, c, ldc, accumulate, 0, m);
    return;
  }

  // Contiguous MR-aligned row chunks, one per thread; the caller takes
  // chunk 0 and the pool the rest. Chunking depends only on (m, nthreads).
  // The packed-B pointer is captured by value: `bpack` is thread_local,
  // and naming it inside the task body would resolve to the *worker's*
  // (empty) instance instead of the caller's packed panels.
  const float* bp = bpack.data();
  const std::size_t chunk = (mblocks + nthreads - 1) / nthreads * MR;
  auto run_chunk = [=](std::size_t t) {
    const std::size_t r0 = t * chunk;
    const std::size_t r1 = std::min(m, r0 + chunk);
    if (r0 < r1)
      run_rows(la, n, k, a, lda, bp, npad, c, ldc, accumulate, r0, r1);
  };
  auto pool = shared_pool(configured - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(nthreads - 1);
  for (std::size_t t = 1; t < nthreads; ++t)
    futures.push_back(pool->submit([&run_chunk, t] { run_chunk(t); }));
  run_chunk(0);
  for (auto& f : futures) f.get();
}

}  // namespace disttgl::kernel
