#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.hpp"

namespace disttgl {

namespace {
using kernel::Layout;

void gemm_checked(Layout la, Layout lb, const Matrix& a, const Matrix& b,
                  Matrix& c, bool accumulate) {
  const bool ta = la == Layout::kTransposed;
  const bool tb = lb == Layout::kTransposed;
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t ka = ta ? a.rows() : a.cols();
  const std::size_t kb = tb ? b.cols() : b.rows();
  const std::size_t n = tb ? b.rows() : b.cols();
  DT_CHECK_EQ(ka, kb);
  DT_CHECK(&c != &a);
  DT_CHECK(&c != &b);
  if (accumulate) {
    DT_CHECK_EQ(c.rows(), m);
    DT_CHECK_EQ(c.cols(), n);
  } else {
    c.reset_shape(m, n);
  }
  kernel::gemm(la, lb, m, n, ka, a.data(), a.cols(), b.data(), b.cols(),
               c.data(), c.cols(), accumulate);
}
}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(a, b, c);
  return c;
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_checked(Layout::kNormal, Layout::kNormal, a, b, c, /*accumulate=*/false);
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_checked(Layout::kNormal, Layout::kNormal, a, b, c, /*accumulate=*/true);
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_nt_into(a, b, c);
  return c;
}

void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_checked(Layout::kNormal, Layout::kTransposed, a, b, c, /*accumulate=*/false);
}

void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_checked(Layout::kNormal, Layout::kTransposed, a, b, c, /*accumulate=*/true);
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_tn_into(a, b, c);
  return c;
}

void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_checked(Layout::kTransposed, Layout::kNormal, a, b, c, /*accumulate=*/false);
}

void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_checked(Layout::kTransposed, Layout::kNormal, a, b, c, /*accumulate=*/true);
}

Matrix add_bias(const Matrix& m, const Matrix& bias) {
  Matrix out;
  add_bias_into(m, bias, out);
  return out;
}

void add_bias_into(const Matrix& m, const Matrix& bias, Matrix& out) {
  DT_CHECK_EQ(bias.rows(), 1u);
  DT_CHECK_EQ(bias.cols(), m.cols());
  out.reset_shape(m.rows(), m.cols());
  const float* b = bias.row_ptr(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* src = m.row_ptr(r);
    float* dst = out.row_ptr(r);
    for (std::size_t c = 0; c < m.cols(); ++c) dst[c] = src[c] + b[c];
  }
}

void add_bias_inplace(Matrix& m, const Matrix& bias) {
  DT_CHECK_EQ(bias.rows(), 1u);
  DT_CHECK_EQ(bias.cols(), m.cols());
  const float* b = bias.row_ptr(0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row_ptr(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

Matrix column_sums(const Matrix& dy) {
  Matrix out(1, dy.cols());
  column_sums_acc(dy, out);
  return out;
}

void column_sums_acc(const Matrix& dy, Matrix& acc) {
  DT_CHECK_EQ(acc.rows(), 1u);
  DT_CHECK_EQ(acc.cols(), dy.cols());
  float* o = acc.row_ptr(0);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* row = dy.row_ptr(r);
    for (std::size_t c = 0; c < dy.cols(); ++c) o[c] += row[c];
  }
}

Matrix masked_row_softmax(const Matrix& scores, std::span<const std::size_t> valid) {
  Matrix out;
  masked_row_softmax_into(scores, valid, out);
  return out;
}

void masked_row_softmax_into(const Matrix& scores,
                             std::span<const std::size_t> valid, Matrix& out) {
  DT_CHECK_EQ(valid.size(), scores.rows());
  DT_CHECK(&out != &scores);
  out.reset_shape(scores.rows(), scores.cols());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    const std::size_t n = valid[r];
    DT_CHECK_LE(n, scores.cols());
    float* orow = out.row_ptr(r);
    // Masked entries carry probability 0 (and the whole row when n == 0:
    // no neighbors, no attention). Explicit so reused buffers stay clean.
    for (std::size_t c = n; c < scores.cols(); ++c) orow[c] = 0.0f;
    if (n == 0) continue;
    const float* srow = scores.row_ptr(r);
    float mx = srow[0];
    for (std::size_t c = 1; c < n; ++c) mx = std::max(mx, srow[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < n; ++c) {
      orow[c] = std::exp(srow[c] - mx);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < n; ++c) orow[c] *= inv;
  }
}

Matrix masked_row_softmax_backward(const Matrix& y, const Matrix& dy,
                                   std::span<const std::size_t> valid) {
  Matrix dx;
  masked_row_softmax_backward_into(y, dy, valid, dx);
  return dx;
}

void masked_row_softmax_backward_into(const Matrix& y, const Matrix& dy,
                                      std::span<const std::size_t> valid,
                                      Matrix& dx) {
  DT_CHECK(y.same_shape(dy));
  DT_CHECK_EQ(valid.size(), y.rows());
  DT_CHECK(&dx != &y);
  dx.reset_shape(y.rows(), y.cols());
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const std::size_t n = valid[r];
    float* drow = dx.row_ptr(r);
    for (std::size_t c = n; c < y.cols(); ++c) drow[c] = 0.0f;
    if (n == 0) continue;
    const float* yrow = y.row_ptr(r);
    const float* grow = dy.row_ptr(r);
    float dot = 0.0f;
    for (std::size_t c = 0; c < n; ++c) dot += yrow[c] * grow[c];
    for (std::size_t c = 0; c < n; ++c) drow[c] = yrow[c] * (grow[c] - dot);
  }
}

Matrix sigmoid(const Matrix& x) {
  Matrix out;
  sigmoid_into(x, out);
  return out;
}

void sigmoid_into(const Matrix& x, Matrix& out) {
  out.reset_shape(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.data()[i] = stable_sigmoid(x.data()[i]);
}

Matrix tanh_m(const Matrix& x) {
  Matrix out;
  tanh_into(x, out);
  return out;
}

void tanh_into(const Matrix& x, Matrix& out) {
  out.reset_shape(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) out.data()[i] = std::tanh(x.data()[i]);
}

Matrix relu(const Matrix& x) {
  Matrix out;
  relu_into(x, out);
  return out;
}

void relu_into(const Matrix& x, Matrix& out) {
  out.reset_shape(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.data()[i] = std::max(0.0f, x.data()[i]);
}

void relu_inplace(Matrix& x) {
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = std::max(0.0f, x.data()[i]);
}

Matrix sigmoid_backward(const Matrix& y, const Matrix& dy) {
  Matrix dx;
  sigmoid_backward_into(y, dy, dx);
  return dx;
}

void sigmoid_backward_into(const Matrix& y, const Matrix& dy, Matrix& dx) {
  DT_CHECK(y.same_shape(dy));
  dx.reset_shape(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float yi = y.data()[i];
    dx.data()[i] = dy.data()[i] * yi * (1.0f - yi);
  }
}

Matrix tanh_backward(const Matrix& y, const Matrix& dy) {
  Matrix dx;
  tanh_backward_into(y, dy, dx);
  return dx;
}

void tanh_backward_into(const Matrix& y, const Matrix& dy, Matrix& dx) {
  DT_CHECK(y.same_shape(dy));
  dx.reset_shape(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float yi = y.data()[i];
    dx.data()[i] = dy.data()[i] * (1.0f - yi * yi);
  }
}

Matrix relu_backward(const Matrix& y, const Matrix& dy) {
  Matrix dx;
  relu_backward_into(y, dy, dx);
  return dx;
}

void relu_backward_into(const Matrix& y, const Matrix& dy, Matrix& dx) {
  DT_CHECK(y.same_shape(dy));
  dx.reset_shape(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i)
    dx.data()[i] = y.data()[i] > 0.0f ? dy.data()[i] : 0.0f;
}

float log_sigmoid(float x) {
  // log(1/(1+e^-x)) = -log1p(e^-x) for x>=0; x - log1p(e^x) otherwise.
  return x >= 0.0f ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
}

float max_rel_diff(const Matrix& a, const Matrix& b, float eps) {
  DT_CHECK(a.same_shape(b));
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float x = a.data()[i], y = b.data()[i];
    const float denom = std::max({std::abs(x), std::abs(y), eps});
    worst = std::max(worst, std::abs(x - y) / denom);
  }
  return worst;
}

}  // namespace disttgl
