#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace disttgl {

Matrix matmul(const Matrix& a, const Matrix& b) {
  DT_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  matmul_acc(a, b, c);
  return c;
}

void matmul_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  DT_CHECK_EQ(a.cols(), b.rows());
  DT_CHECK_EQ(c.rows(), a.rows());
  DT_CHECK_EQ(c.cols(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c.row_ptr(i);
    const float* arow = a.row_ptr(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row_ptr(p);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  DT_CHECK_EQ(a.cols(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row_ptr(i);
    float* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.row_ptr(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  DT_CHECK_EQ(a.rows(), b.rows());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row_ptr(p);
    const float* brow = b.row_ptr(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix add_bias(const Matrix& m, const Matrix& bias) {
  DT_CHECK_EQ(bias.rows(), 1u);
  DT_CHECK_EQ(bias.cols(), m.cols());
  Matrix out = m;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = out.row_ptr(r);
    const float* b = bias.row_ptr(0);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
  return out;
}

Matrix column_sums(const Matrix& dy) {
  Matrix out(1, dy.cols());
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const float* row = dy.row_ptr(r);
    float* o = out.row_ptr(0);
    for (std::size_t c = 0; c < dy.cols(); ++c) o[c] += row[c];
  }
  return out;
}

Matrix masked_row_softmax(const Matrix& scores, std::span<const std::size_t> valid) {
  DT_CHECK_EQ(valid.size(), scores.rows());
  Matrix out(scores.rows(), scores.cols());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    const std::size_t n = valid[r];
    DT_CHECK_LE(n, scores.cols());
    if (n == 0) continue;  // Row stays all-zero: no neighbors, no attention.
    const float* srow = scores.row_ptr(r);
    float* orow = out.row_ptr(r);
    float mx = srow[0];
    for (std::size_t c = 1; c < n; ++c) mx = std::max(mx, srow[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < n; ++c) {
      orow[c] = std::exp(srow[c] - mx);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < n; ++c) orow[c] *= inv;
  }
  return out;
}

Matrix masked_row_softmax_backward(const Matrix& y, const Matrix& dy,
                                   std::span<const std::size_t> valid) {
  DT_CHECK(y.same_shape(dy));
  DT_CHECK_EQ(valid.size(), y.rows());
  Matrix dx(y.rows(), y.cols());
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const std::size_t n = valid[r];
    if (n == 0) continue;
    const float* yrow = y.row_ptr(r);
    const float* grow = dy.row_ptr(r);
    float* drow = dx.row_ptr(r);
    float dot = 0.0f;
    for (std::size_t c = 0; c < n; ++c) dot += yrow[c] * grow[c];
    for (std::size_t c = 0; c < n; ++c) drow[c] = yrow[c] * (grow[c] - dot);
  }
  return dx;
}

Matrix sigmoid(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    out.data()[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                              : std::exp(v) / (1.0f + std::exp(v));
  }
  return out;
}

Matrix tanh_m(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) out.data()[i] = std::tanh(x.data()[i]);
  return out;
}

Matrix relu(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.data()[i] = std::max(0.0f, x.data()[i]);
  return out;
}

Matrix sigmoid_backward(const Matrix& y, const Matrix& dy) {
  DT_CHECK(y.same_shape(dy));
  Matrix dx(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float yi = y.data()[i];
    dx.data()[i] = dy.data()[i] * yi * (1.0f - yi);
  }
  return dx;
}

Matrix tanh_backward(const Matrix& y, const Matrix& dy) {
  DT_CHECK(y.same_shape(dy));
  Matrix dx(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float yi = y.data()[i];
    dx.data()[i] = dy.data()[i] * (1.0f - yi * yi);
  }
  return dx;
}

Matrix relu_backward(const Matrix& y, const Matrix& dy) {
  DT_CHECK(y.same_shape(dy));
  Matrix dx(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i)
    dx.data()[i] = y.data()[i] > 0.0f ? dy.data()[i] : 0.0f;
  return dx;
}

float log_sigmoid(float x) {
  // log(1/(1+e^-x)) = -log1p(e^-x) for x>=0; x - log1p(e^x) otherwise.
  return x >= 0.0f ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
}

float max_rel_diff(const Matrix& a, const Matrix& b, float eps) {
  DT_CHECK(a.same_shape(b));
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float x = a.data()[i], y = b.data()[i];
    const float denom = std::max({std::abs(x), std::abs(y), eps});
    worst = std::max(worst, std::abs(x - y) / denom);
  }
  return worst;
}

}  // namespace disttgl
