// Workspace — a slot-based scratch arena for per-iteration tensors.
//
// The training loop runs the same sequence of kernel calls every
// iteration, so its temporaries have the same shapes every iteration.
// A Workspace exploits that: reset() rewinds to the first slot, and each
// mat()/zeros()/floats()/indices() call hands back the next slot resized
// to the requested shape. Slots keep their heap capacity across resets,
// so after the first (warm-up) iteration a steady-state iteration
// performs zero heap allocations.
//
// Slots are heap-boxed, so references returned earlier in the same
// iteration stay valid as more slots are acquired. A Workspace is not
// thread-safe; give each trainer thread (each model replica) its own.
#pragma once

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"

namespace disttgl {

class Workspace {
 public:
  // Rewind to the first slot of every pool. Call once per iteration.
  void reset();

  // Next matrix slot shaped [rows x cols]; contents unspecified.
  Matrix& mat(std::size_t rows, std::size_t cols);
  // Next matrix slot shaped [rows x cols], zero-filled.
  Matrix& zeros(std::size_t rows, std::size_t cols);
  // Next float-vector slot, size n, filled with `fill`.
  std::vector<float>& floats(std::size_t n, float fill = 0.0f);
  // Next index-vector slot, cleared (size 0, capacity retained).
  std::vector<std::size_t>& indices();

  // Slots currently held (monitoring / tests).
  std::size_t num_slots() const {
    return mats_.slots.size() + floats_.slots.size() + indices_.slots.size();
  }

 private:
  template <typename T>
  struct Pool {
    std::vector<std::unique_ptr<T>> slots;
    std::size_t next = 0;

    T& take() {
      if (next == slots.size()) slots.push_back(std::make_unique<T>());
      return *slots[next++];
    }
  };

  Pool<Matrix> mats_;
  Pool<std::vector<float>> floats_;
  Pool<std::vector<std::size_t>> indices_;
};

}  // namespace disttgl
