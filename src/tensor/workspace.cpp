#include "tensor/workspace.hpp"

namespace disttgl {

void Workspace::reset() {
  mats_.next = 0;
  floats_.next = 0;
  indices_.next = 0;
}

Matrix& Workspace::mat(std::size_t rows, std::size_t cols) {
  Matrix& m = mats_.take();
  m.reset_shape(rows, cols);
  return m;
}

Matrix& Workspace::zeros(std::size_t rows, std::size_t cols) {
  Matrix& m = mats_.take();
  m.resize(rows, cols, 0.0f);
  return m;
}

std::vector<float>& Workspace::floats(std::size_t n, float fill) {
  std::vector<float>& v = floats_.take();
  v.assign(n, fill);
  return v;
}

std::vector<std::size_t>& Workspace::indices() {
  std::vector<std::size_t>& v = indices_.take();
  v.clear();
  return v;
}

}  // namespace disttgl
