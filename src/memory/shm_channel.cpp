#include "memory/shm_channel.hpp"

#include <atomic>
#include <cstring>
#include <utility>

#include "distributed/fabric_error.hpp"
#include "util/check.hpp"
#include "util/futex.hpp"

namespace disttgl {
namespace {

using dist::FabricErrc;
using dist::throw_fabric;

constexpr std::uint32_t kShmDaemonMagic = 0x4D444444u;  // "DDDM"

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

}  // namespace

struct ShmDaemonHeader {
  std::uint32_t magic;
  std::uint32_t slots;
  std::uint64_t mem_dim;
  std::uint64_t mail_dim;
  std::uint64_t max_read_nodes;
  std::uint64_t max_write_nodes;
  alignas(64) std::atomic<std::uint32_t> aborted;
  // Completed (R…R)(W…W) brackets, counted from round 0 of the full
  // schedule (a resumed server seeds it with start_round). 32-bit so the
  // shared futex can park on it directly; round counts are tiny.
  alignas(64) std::atomic<std::uint32_t> rounds_served;
};

static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

namespace {

// Byte offsets of one rank's block, all relative to the block base.
struct SlotLayout {
  std::size_t read_status, write_status;
  std::size_t read_count, write_count;
  std::size_t read_nodes;
  std::size_t resp_mem, resp_mem_ts, resp_mail, resp_mail_ts, resp_flags;
  std::size_t wr_nodes, wr_mem, wr_mem_ts, wr_mail, wr_mail_ts;
  std::size_t stride;  // total block bytes (64B-aligned)
};

SlotLayout slot_layout(const ShmDaemonSpec& s) {
  SlotLayout l{};
  std::size_t off = 0;
  // Status words on their own cache line (futex-contended).
  l.read_status = off;
  l.write_status = off + sizeof(std::uint32_t);
  l.read_count = off + 2 * sizeof(std::uint32_t);
  l.write_count = l.read_count + sizeof(std::uint64_t);
  off = align_up(l.write_count + sizeof(std::uint64_t), 64);
  l.read_nodes = off;
  off = align_up(off + s.max_read_nodes * sizeof(NodeId), 64);
  l.resp_mem = off;
  off = align_up(off + s.max_read_nodes * s.mem_dim * sizeof(float), 64);
  l.resp_mem_ts = off;
  off = align_up(off + s.max_read_nodes * sizeof(float), 64);
  l.resp_mail = off;
  off = align_up(off + s.max_read_nodes * s.mail_dim * sizeof(float), 64);
  l.resp_mail_ts = off;
  off = align_up(off + s.max_read_nodes * sizeof(float), 64);
  l.resp_flags = off;
  off = align_up(off + s.max_read_nodes * sizeof(std::uint8_t), 64);
  l.wr_nodes = off;
  off = align_up(off + s.max_write_nodes * sizeof(NodeId), 64);
  l.wr_mem = off;
  off = align_up(off + s.max_write_nodes * s.mem_dim * sizeof(float), 64);
  l.wr_mem_ts = off;
  off = align_up(off + s.max_write_nodes * sizeof(float), 64);
  l.wr_mail = off;
  off = align_up(off + s.max_write_nodes * s.mail_dim * sizeof(float), 64);
  l.wr_mail_ts = off;
  off = align_up(off + s.max_write_nodes * sizeof(float), 64);
  l.stride = off;
  return l;
}

// Deadline-bounded shared-futex wait for `word == want`. Checks the
// abort flag every slice; on deadline expiry poisons the session itself
// and throws kPeerTimeout so peers collapse fast instead of serially
// timing out.
void shm_await(std::atomic<std::uint32_t>& word, std::uint32_t want,
               const WaitPolicy& policy, std::atomic<std::uint32_t>& aborted,
               std::chrono::milliseconds timeout, const char* what) {
  for (std::uint32_t p = 0; p < policy.spin_polls; ++p) {
    if (word.load(std::memory_order_acquire) == want) return;
    if ((p & 0x3f) == 0x3f) std::this_thread::yield();
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const std::uint32_t cur = word.load(std::memory_order_acquire);
    if (cur == want) return;
    if (aborted.load(std::memory_order_acquire) != 0)
      throw_fabric(FabricErrc::kAborted,
                   std::string(what) + ": channel poisoned");
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left.count() <= 0) {
      aborted.store(1, std::memory_order_release);
      futex_wake_all_shared(&word);
      throw_fabric(FabricErrc::kPeerTimeout,
                   std::string(what) + ": peer absent after " +
                       std::to_string(timeout.count()) + " ms");
    }
    futex_wait_shared(
        &word, cur,
        std::min(std::chrono::duration_cast<std::chrono::nanoseconds>(left),
                 std::chrono::nanoseconds(100'000'000)));
  }
}

void shm_post(std::atomic<std::uint32_t>& word, std::uint32_t value) {
  word.store(value, std::memory_order_release);
  futex_wake_all_shared(&word);
}

// shm_await with a >= predicate, for the monotone round counter.
void shm_await_ge(std::atomic<std::uint32_t>& word, std::uint32_t want,
                  const WaitPolicy& policy,
                  std::atomic<std::uint32_t>& aborted,
                  std::chrono::milliseconds timeout, const char* what) {
  for (std::uint32_t p = 0; p < policy.spin_polls; ++p) {
    if (word.load(std::memory_order_acquire) >= want) return;
    if ((p & 0x3f) == 0x3f) std::this_thread::yield();
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const std::uint32_t cur = word.load(std::memory_order_acquire);
    if (cur >= want) return;
    if (aborted.load(std::memory_order_acquire) != 0)
      throw_fabric(FabricErrc::kAborted,
                   std::string(what) + ": channel poisoned");
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left.count() <= 0) {
      aborted.store(1, std::memory_order_release);
      futex_wake_all_shared(&word);
      throw_fabric(FabricErrc::kPeerTimeout,
                   std::string(what) + ": peer absent after " +
                       std::to_string(timeout.count()) + " ms");
    }
    futex_wait_shared(
        &word, cur,
        std::min(std::chrono::duration_cast<std::chrono::nanoseconds>(left),
                 std::chrono::nanoseconds(100'000'000)));
  }
}

}  // namespace

// Typed pointers into one rank's block (recomputed per call — cheap,
// and keeps the channel trivially copyable across fork boundaries).
struct ShmDaemonChannel::SlotView {
  std::atomic<std::uint32_t>* read_status;
  std::atomic<std::uint32_t>* write_status;
  std::uint64_t* read_count;
  std::uint64_t* write_count;
  NodeId* read_nodes;
  float* resp_mem;
  float* resp_mem_ts;
  float* resp_mail;
  float* resp_mail_ts;
  std::uint8_t* resp_flags;
  NodeId* wr_nodes;
  float* wr_mem;
  float* wr_mem_ts;
  float* wr_mail;
  float* wr_mail_ts;
};

std::size_t ShmDaemonChannel::segment_bytes(const ShmDaemonSpec& spec) {
  return align_up(sizeof(ShmDaemonHeader), 64) +
         spec.slots * slot_layout(spec).stride;
}

ShmSegment ShmDaemonChannel::create_segment(const std::string& name,
                                            const ShmDaemonSpec& spec) {
  DT_CHECK_GT(spec.slots, 0u);
  ShmSegment seg = ShmSegment::create(name, segment_bytes(spec));
  auto* hdr = seg.as<ShmDaemonHeader>();
  hdr->slots = static_cast<std::uint32_t>(spec.slots);
  hdr->mem_dim = spec.mem_dim;
  hdr->mail_dim = spec.mail_dim;
  hdr->max_read_nodes = spec.max_read_nodes;
  hdr->max_write_nodes = spec.max_write_nodes;
  hdr->aborted.store(0, std::memory_order_relaxed);
  hdr->rounds_served.store(0, std::memory_order_relaxed);
  hdr->magic = kShmDaemonMagic;
  return seg;
}

ShmDaemonChannel ShmDaemonChannel::attach(const std::string& name,
                                          WaitPolicy wait,
                                          std::chrono::milliseconds timeout) {
  ShmDaemonSpec spec;
  {
    ShmSegment peek = ShmSegment::attach(name, sizeof(ShmDaemonHeader));
    const auto* hdr = peek.as<ShmDaemonHeader>();
    if (hdr->magic != kShmDaemonMagic)
      throw_fabric(FabricErrc::kBadMagic,
                   "shm " + name + " is not a daemon-channel segment");
    spec.slots = hdr->slots;
    spec.mem_dim = hdr->mem_dim;
    spec.mail_dim = hdr->mail_dim;
    spec.max_read_nodes = hdr->max_read_nodes;
    spec.max_write_nodes = hdr->max_write_nodes;
  }
  ShmSegment seg = ShmSegment::attach(name, segment_bytes(spec));
  return ShmDaemonChannel(std::move(seg), wait, timeout);
}

ShmDaemonChannel::ShmDaemonChannel(ShmSegment segment, WaitPolicy wait,
                                   std::chrono::milliseconds timeout)
    : segment_(std::move(segment)), wait_(wait), timeout_(timeout) {
  const auto* hdr = segment_.as<ShmDaemonHeader>();
  spec_.slots = hdr->slots;
  spec_.mem_dim = hdr->mem_dim;
  spec_.mail_dim = hdr->mail_dim;
  spec_.max_read_nodes = hdr->max_read_nodes;
  spec_.max_write_nodes = hdr->max_write_nodes;
}

ShmDaemonChannel::SlotView ShmDaemonChannel::slot(std::size_t rank) const {
  DT_CHECK_LT(rank, spec_.slots);
  const SlotLayout l = slot_layout(spec_);
  const std::size_t base =
      align_up(sizeof(ShmDaemonHeader), 64) + rank * l.stride;
  SlotView v{};
  v.read_status = segment_.as<std::atomic<std::uint32_t>>(base + l.read_status);
  v.write_status =
      segment_.as<std::atomic<std::uint32_t>>(base + l.write_status);
  v.read_count = segment_.as<std::uint64_t>(base + l.read_count);
  v.write_count = segment_.as<std::uint64_t>(base + l.write_count);
  v.read_nodes = segment_.as<NodeId>(base + l.read_nodes);
  v.resp_mem = segment_.as<float>(base + l.resp_mem);
  v.resp_mem_ts = segment_.as<float>(base + l.resp_mem_ts);
  v.resp_mail = segment_.as<float>(base + l.resp_mail);
  v.resp_mail_ts = segment_.as<float>(base + l.resp_mail_ts);
  v.resp_flags = segment_.as<std::uint8_t>(base + l.resp_flags);
  v.wr_nodes = segment_.as<NodeId>(base + l.wr_nodes);
  v.wr_mem = segment_.as<float>(base + l.wr_mem);
  v.wr_mem_ts = segment_.as<float>(base + l.wr_mem_ts);
  v.wr_mail = segment_.as<float>(base + l.wr_mail);
  v.wr_mail_ts = segment_.as<float>(base + l.wr_mail_ts);
  return v;
}

void ShmDaemonChannel::abort_session() {
  segment_.as<ShmDaemonHeader>()->aborted.store(1, std::memory_order_release);
  // Wake every parked waiter so the poison is seen now, not at the next
  // 100 ms slice boundary.
  for (std::size_t r = 0; r < spec_.slots; ++r) {
    SlotView v = slot(r);
    futex_wake_all_shared(v.read_status);
    futex_wake_all_shared(v.write_status);
  }
}

bool ShmDaemonChannel::aborted() const {
  return segment_.as<ShmDaemonHeader>()->aborted.load(
             std::memory_order_acquire) != 0;
}

void ShmDaemonChannel::await_rounds(std::size_t rounds) {
  auto* hdr = segment_.as<ShmDaemonHeader>();
  shm_await_ge(hdr->rounds_served, static_cast<std::uint32_t>(rounds), wait_,
               hdr->aborted, timeout_, "await rounds");
}

void ShmDaemonChannel::read(std::size_t rank, std::span<const NodeId> nodes,
                            MemorySlice& out) {
  const std::size_t n = nodes.size();
  if (n > spec_.max_read_nodes)
    throw_fabric(FabricErrc::kCapacity,
                 "read of " + std::to_string(n) + " nodes exceeds slot cap " +
                     std::to_string(spec_.max_read_nodes));
  SlotView v = slot(rank);
  auto& aborted = segment_.as<ShmDaemonHeader>()->aborted;
  shm_await(*v.read_status, 0, wait_, aborted, timeout_, "read slot free");
  *v.read_count = n;
  if (n > 0) std::memcpy(v.read_nodes, nodes.data(), n * sizeof(NodeId));
  shm_post(*v.read_status, 1);
  shm_await(*v.read_status, 0, wait_, aborted, timeout_, "read served");

  // Unpack the response (capacity-preserving, like read_into).
  out.mem.reset_shape(n, spec_.mem_dim);
  out.mem_ts.resize(n);
  out.mail.reset_shape(n, spec_.mail_dim);
  out.mail_ts.resize(n);
  out.has_mail.resize(n);
  if (n > 0) {
    std::memcpy(out.mem.data(), v.resp_mem, n * spec_.mem_dim * sizeof(float));
    std::memcpy(out.mem_ts.data(), v.resp_mem_ts, n * sizeof(float));
    std::memcpy(out.mail.data(), v.resp_mail,
                n * spec_.mail_dim * sizeof(float));
    std::memcpy(out.mail_ts.data(), v.resp_mail_ts, n * sizeof(float));
    std::memcpy(out.has_mail.data(), v.resp_flags, n * sizeof(std::uint8_t));
  }
}

void ShmDaemonChannel::write(std::size_t rank, const MemoryWrite& w) {
  const std::size_t n = w.size();
  if (n > spec_.max_write_nodes)
    throw_fabric(FabricErrc::kCapacity,
                 "write of " + std::to_string(n) + " nodes exceeds slot cap " +
                     std::to_string(spec_.max_write_nodes));
  SlotView v = slot(rank);
  auto& aborted = segment_.as<ShmDaemonHeader>()->aborted;
  shm_await(*v.write_status, 0, wait_, aborted, timeout_, "write slot free");
  *v.write_count = n;
  if (n > 0) {
    std::memcpy(v.wr_nodes, w.nodes.data(), n * sizeof(NodeId));
    std::memcpy(v.wr_mem, w.mem.data(), n * spec_.mem_dim * sizeof(float));
    std::memcpy(v.wr_mem_ts, w.mem_ts.data(), n * sizeof(float));
    std::memcpy(v.wr_mail, w.mail.data(), n * spec_.mail_dim * sizeof(float));
    std::memcpy(v.wr_mail_ts, w.mail_ts.data(), n * sizeof(float));
  }
  shm_post(*v.write_status, 1);
  shm_await(*v.write_status, 0, wait_, aborted, timeout_, "write applied");
}

// ---- ShmDaemonServer -----------------------------------------------------

ShmDaemonServer::ShmDaemonServer(MemoryState& state, DaemonConfig config,
                                 ShmDaemonChannel& channel)
    : state_(state), config_(std::move(config)), channel_(channel) {
  DT_CHECK_GT(config_.i, 0u);
  DT_CHECK_GT(config_.j, 0u);
  DT_CHECK_EQ(config_.i * config_.j, channel_.spec().slots);
  DT_CHECK_LE(config_.start_round, config_.reset_before_round.size());
}

ShmDaemonServer::~ShmDaemonServer() {
  if (started_ && thread_.joinable()) thread_.join();
}

void ShmDaemonServer::start() {
  DT_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] {
    try {
      run();
    } catch (...) {
      failure_ = std::current_exception();
      // Clients of this group must not wait out their own timeouts.
      channel_.abort_session();
    }
  });
}

void ShmDaemonServer::join() {
  DT_CHECK(started_);
  if (thread_.joinable()) thread_.join();
  if (failure_) std::rethrow_exception(std::exchange(failure_, nullptr));
}

void ShmDaemonServer::run() {
  auto* hdr = channel_.segment_.as<ShmDaemonHeader>();
  auto& aborted = hdr->aborted;
  const ShmDaemonSpec& spec = channel_.spec();
  const std::size_t rounds = config_.reset_before_round.size();
  // Publish the resume position so await_rounds(start_round) callers in
  // other processes don't wait on brackets nobody will serve.
  hdr->rounds_served.store(static_cast<std::uint32_t>(config_.start_round),
                           std::memory_order_release);
  futex_wake_all_shared(&hdr->rounds_served);
  for (std::size_t round = config_.start_round; round < rounds; ++round) {
    const std::size_t sub = round % config_.j;
    const std::size_t base = sub * config_.i;
    // Same (R..R)(W..W) bracket as MemoryDaemon::run, rank order within
    // the bracket.
    for (std::size_t r = base; r < base + config_.i; ++r) {
      ShmDaemonChannel::SlotView v = channel_.slot(r);
      shm_await(*v.read_status, 1, config_.wait, aborted,
                channel_.timeout_, "serve read");
      // Epoch-wrap reset, deferred until the round's first read request
      // arrives — same checkpoint-capture ordering argument as
      // MemoryDaemon::run.
      if (r == base && config_.reset_before_round[round] != 0) state_.reset();
      const std::size_t n = *v.read_count;
      read_nodes_.assign(v.read_nodes, v.read_nodes + n);
      state_.read_into(read_nodes_, slice_, config_.gather_pool);
      if (n > 0) {
        std::memcpy(v.resp_mem, slice_.mem.data(),
                    n * spec.mem_dim * sizeof(float));
        std::memcpy(v.resp_mem_ts, slice_.mem_ts.data(), n * sizeof(float));
        std::memcpy(v.resp_mail, slice_.mail.data(),
                    n * spec.mail_dim * sizeof(float));
        std::memcpy(v.resp_mail_ts, slice_.mail_ts.data(), n * sizeof(float));
        std::memcpy(v.resp_flags, slice_.has_mail.data(),
                    n * sizeof(std::uint8_t));
      }
      shm_post(*v.read_status, 0);
    }
    for (std::size_t r = base; r < base + config_.i; ++r) {
      ShmDaemonChannel::SlotView v = channel_.slot(r);
      shm_await(*v.write_status, 1, config_.wait, aborted,
                channel_.timeout_, "serve write");
      const std::size_t n = *v.write_count;
      write_.nodes.assign(v.wr_nodes, v.wr_nodes + n);
      write_.mem.reset_shape(n, spec.mem_dim);
      write_.mem_ts.resize(n);
      write_.mail.reset_shape(n, spec.mail_dim);
      write_.mail_ts.resize(n);
      if (n > 0) {
        std::memcpy(write_.mem.data(), v.wr_mem,
                    n * spec.mem_dim * sizeof(float));
        std::memcpy(write_.mem_ts.data(), v.wr_mem_ts, n * sizeof(float));
        std::memcpy(write_.mail.data(), v.wr_mail,
                    n * spec.mail_dim * sizeof(float));
        std::memcpy(write_.mail_ts.data(), v.wr_mail_ts, n * sizeof(float));
      }
      state_.write(write_, config_.gather_pool);
      shm_post(*v.write_status, 0);
    }
    shm_post(hdr->rounds_served, static_cast<std::uint32_t>(round + 1));
  }
}

}  // namespace disttgl
