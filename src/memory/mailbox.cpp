#include "memory/mailbox.hpp"

#include <cstring>

namespace disttgl {

Matrix Mailbox::gather(std::span<const NodeId> nodes) const {
  Matrix out(nodes.size(), mail_dim());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DT_CHECK_LT(nodes[i], num_nodes());
    std::memcpy(out.row_ptr(i), mail_.row_ptr(nodes[i]),
                mail_dim() * sizeof(float));
  }
  return out;
}

std::vector<float> Mailbox::gather_ts(std::span<const NodeId> nodes) const {
  std::vector<float> out(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = mail_ts_[nodes[i]];
  return out;
}

std::vector<std::uint8_t> Mailbox::gather_flags(
    std::span<const NodeId> nodes) const {
  std::vector<std::uint8_t> out(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = has_mail_[nodes[i]];
  return out;
}

void Mailbox::scatter(std::span<const NodeId> nodes, const Matrix& mails,
                      std::span<const float> ts) {
  DT_CHECK_EQ(mails.rows(), nodes.size());
  DT_CHECK_EQ(ts.size(), nodes.size());
  DT_CHECK_EQ(mails.cols(), mail_dim());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DT_CHECK_LT(nodes[i], num_nodes());
    std::memcpy(mail_.row_ptr(nodes[i]), mails.row_ptr(i),
                mail_dim() * sizeof(float));
    mail_ts_[nodes[i]] = ts[i];
    has_mail_[nodes[i]] = 1;
  }
}

}  // namespace disttgl
