// One complete copy of the M-TGNN auxiliary state: node memory + mailbox.
//
// Memory parallelism (§3.2.3) maintains k independent MemoryState copies;
// each is swept chronologically by its own trainer group and reset at
// every epoch wrap. MemorySlice/MemoryWrite are the request/response
// payloads exchanged with the memory daemon — their field layout matches
// the shared-buffer inventory of §3.3.
//
// Storage is a **blocked row layout**: everything the protocol touches
// for a node — memory row, mail row, both timestamps, the has-mail flag
// — lives in ONE contiguous, padded table row:
//
//   [ mem (mem_dim) | mail (mail_dim) | mem_ts | mail_ts | flag | pad ]
//
// A gather/scatter therefore costs one random access per node instead
// of five (two row tables + three scalar arrays in the seed layout),
// which is what makes the bulk, cache-friendly array-op treatment of
// TGL/DistTGL pay off on the random node sets of a super-batch.
// (`NodeMemory`/`Mailbox` remain as the standalone split-layout
// components; the state no longer aggregates them.)
//
// Both payloads are capacity-preserving reusable buffers, mirroring the
// batch pipeline's `build_into` convention: `read_into` reshapes a
// caller-owned MemorySlice in place with a fused single pass per node,
// and `write` applies a MemoryWrite with one fused scatter pass. Once a
// slice/write has reached its high-water shape, the whole read →
// train_step → make_write → write loop touches the allocator zero times
// (tests/test_memory_alloc pins this).
//
// Large gathers/scatters optionally fan out over ThreadPool::
// parallel_for in fixed row chunks; chunk boundaries depend only on the
// row count, and chunks write disjoint rows, so results are
// bit-identical for every thread count (the same contract as the GEMM
// row-block parallelism).
#pragma once

#include <algorithm>
#include <new>

#include "graph/types.hpp"
#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace disttgl {

// Read response: everything the model needs about a set of unique nodes.
struct MemorySlice {
  Matrix mem;                          // [n x mem_dim]
  std::vector<float> mem_ts;           // [n] last-update times
  Matrix mail;                         // [n x mail_dim]
  std::vector<float> mail_ts;          // [n]
  std::vector<std::uint8_t> has_mail;  // [n]

  std::size_t size() const { return mem.rows(); }
  // Payload bytes of one serialized slice (the §3.3 shared read buffer).
  std::size_t bytes() const {
    return (mem.size() + mail.size()) * sizeof(float) +
           (mem_ts.size() + mail_ts.size()) * sizeof(float) +
           has_mail.size() * sizeof(std::uint8_t);
  }
  // Empty the slice, keeping heap capacity for reuse.
  void clear() {
    mem.reset_shape(0, mem.cols());
    mem_ts.clear();
    mail.reset_shape(0, mail.cols());
    mail_ts.clear();
    has_mail.clear();
  }
};

// Write request: per-node updated memory and fresh mails.
struct MemoryWrite {
  std::vector<NodeId> nodes;
  Matrix mem;
  std::vector<float> mem_ts;
  Matrix mail;
  std::vector<float> mail_ts;

  std::size_t size() const { return nodes.size(); }
  // Payload bytes — used by the communication accounting in Table 1.
  // Applying a write also sets one has_mail flag per node, so the flag
  // byte is part of the transferred payload (tests/test_memory asserts
  // this against an actual field-by-field serialization).
  std::size_t bytes() const {
    return nodes.size() * sizeof(NodeId) +
           (mem.size() + mail.size()) * sizeof(float) +
           (mem_ts.size() + mail_ts.size()) * sizeof(float) +
           nodes.size() * sizeof(std::uint8_t);  // has_mail flags set
  }
  // Empty the request, keeping heap capacity for reuse.
  void clear() {
    nodes.clear();
    mem.reset_shape(0, mem.cols());
    mem_ts.clear();
    mail.reset_shape(0, mail.cols());
    mail_ts.clear();
  }
};

// Minimal allocator giving the blocked table a 64-byte-aligned base, so
// the cache-line padding of the row stride actually lands rows on line
// boundaries (a plain vector's base is only malloc-aligned).
template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

class MemoryState {
 public:
  MemoryState() = default;
  MemoryState(std::size_t num_nodes, std::size_t mem_dim, std::size_t mail_dim)
      : num_nodes_(num_nodes),
        mem_dim_(mem_dim),
        mail_dim_(mail_dim),
        // Pad the blocked row to a 64-byte multiple so rows start on
        // cache-line boundaries (the table base is 64-byte aligned).
        stride_((mem_dim + mail_dim + 3 + 15) / 16 * 16),
        table_(num_nodes * stride_, 0.0f) {}

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t mem_dim() const { return mem_dim_; }
  std::size_t mail_dim() const { return mail_dim_; }

  void reset() { std::fill(table_.begin(), table_.end(), 0.0f); }

  // ---- per-node accessors (diagnostics / tests / Fig 3, 5, 8) ----
  std::span<const float> mem_row(NodeId v) const {
    return {row(v), mem_dim_};
  }
  std::span<const float> mail_row(NodeId v) const {
    return {row(v) + mem_dim_, mail_dim_};
  }
  float last_update(NodeId v) const { return row(v)[meta_off()]; }
  float mail_ts(NodeId v) const { return row(v)[meta_off() + 1]; }
  bool has_mail(NodeId v) const { return row(v)[meta_off() + 2] != 0.0f; }

  // Fused gather of all five slice fields into a caller-owned buffer
  // (capacity-preserving; zero steady-state allocations). When `pool` is
  // given and the gather is large, row chunks fan out over parallel_for;
  // output is bit-identical for every thread count.
  void read_into(std::span<const NodeId> nodes, MemorySlice& out,
                 ThreadPool* pool = nullptr) const;
  // Allocating convenience wrapper; identical contents to read_into.
  MemorySlice read(std::span<const NodeId> nodes) const {
    MemorySlice s;
    read_into(nodes, s);
    return s;
  }

  // Fused scatter of a write request: memory rows + timestamps, mail
  // rows + timestamps + flags, one pass per node. `w.nodes` must be
  // distinct (the make_write contract: unique positive roots), which is
  // what makes the optional parallel fan-out race-free.
  void write(const MemoryWrite& w, ThreadPool* pool = nullptr);

  // Full-state restore (checkpoint load): overwrites every listed row,
  // including flags — the only writer that can CLEAR a has_mail flag.
  void restore(std::span<const NodeId> nodes, const Matrix& mem,
               std::span<const float> mem_ts, const Matrix& mail,
               std::span<const float> mail_ts,
               std::span<const std::uint8_t> flags);

 private:
  std::size_t meta_off() const { return mem_dim_ + mail_dim_; }
  const float* row(NodeId v) const { return table_.data() + v * stride_; }
  float* row(NodeId v) { return table_.data() + v * stride_; }

  void gather_rows(std::span<const NodeId> nodes, MemorySlice& out,
                   std::size_t lo, std::size_t hi) const;
  void scatter_rows(const MemoryWrite& w, std::size_t lo, std::size_t hi);

  std::size_t num_nodes_ = 0;
  std::size_t mem_dim_ = 0;
  std::size_t mail_dim_ = 0;
  std::size_t stride_ = 0;
  std::vector<float, AlignedAllocator<float, 64>> table_;
};

// Order-sensitive FNV-1a fingerprint of the full state — every node's
// memory row, mail row, timestamps, and flag, in node order, independent
// of the table's padding/stride. Two states digest equal iff they are
// bit-identical field-for-field; the cross-fabric equivalence grid
// compares digests across process boundaries where the states themselves
// live in different address spaces.
std::uint64_t memory_digest(const MemoryState& state);

}  // namespace disttgl
