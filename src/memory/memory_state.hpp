// One complete copy of the M-TGNN auxiliary state: node memory + mailbox.
//
// Memory parallelism (§3.2.3) maintains k independent MemoryState copies;
// each is swept chronologically by its own trainer group and reset at
// every epoch wrap. MemorySlice/MemoryWrite are the request/response
// payloads exchanged with the memory daemon — their field layout matches
// the shared-buffer inventory of §3.3.
#pragma once

#include "memory/mailbox.hpp"
#include "memory/node_memory.hpp"

namespace disttgl {

// Read response: everything the model needs about a set of unique nodes.
struct MemorySlice {
  Matrix mem;                          // [n x mem_dim]
  std::vector<float> mem_ts;           // [n] last-update times
  Matrix mail;                         // [n x mail_dim]
  std::vector<float> mail_ts;          // [n]
  std::vector<std::uint8_t> has_mail;  // [n]
};

// Write request: per-node updated memory and fresh mails.
struct MemoryWrite {
  std::vector<NodeId> nodes;
  Matrix mem;
  std::vector<float> mem_ts;
  Matrix mail;
  std::vector<float> mail_ts;

  std::size_t size() const { return nodes.size(); }
  // Payload bytes — used by the communication accounting in Table 1.
  std::size_t bytes() const {
    return nodes.size() * sizeof(NodeId) +
           (mem.size() + mail.size()) * sizeof(float) +
           (mem_ts.size() + mail_ts.size()) * sizeof(float);
  }
};

class MemoryState {
 public:
  MemoryState() = default;
  MemoryState(std::size_t num_nodes, std::size_t mem_dim, std::size_t mail_dim)
      : memory_(num_nodes, mem_dim), mailbox_(num_nodes, mail_dim) {}

  std::size_t num_nodes() const { return memory_.num_nodes(); }
  std::size_t mem_dim() const { return memory_.dim(); }
  std::size_t mail_dim() const { return mailbox_.mail_dim(); }

  void reset() {
    memory_.reset();
    mailbox_.reset();
  }

  MemorySlice read(std::span<const NodeId> nodes) const;
  void write(const MemoryWrite& w);

  NodeMemory& memory() { return memory_; }
  const NodeMemory& memory() const { return memory_; }
  Mailbox& mailbox() { return mailbox_; }
  const Mailbox& mailbox() const { return mailbox_; }

 private:
  NodeMemory memory_;
  Mailbox mailbox_;
};

}  // namespace disttgl
