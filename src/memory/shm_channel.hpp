// Cross-process memory-daemon transport: the §3.3 slot protocol with
// shm-offset slots instead of pointer slots.
//
// In-process, a slot lends raw pointers into trainer buffers and the
// daemon gathers straight into them (daemon.hpp). Pointers don't cross
// address spaces, so the shm channel gives each trainer rank a
// fixed-capacity request/response block inside one POSIX segment per
// memory group:
//
//   ShmDaemonHeader                  geometry + abort flag
//   per rank (i×j blocks, 64B-aligned fields):
//     read_status / write_status     futex words (0 free, 1 posted)
//     read req   nodes[max_r]        node list, count
//     read resp  mem[max_r×dim] mem_ts[max_r] mail[max_r×mdim]
//                mail_ts[max_r] has_mail[max_r]
//     write req  nodes[max_w] mem mem_ts mail mail_ts
//
// The handshake is the same two transitions as in-process — post 1,
// await 0 — but over the *shared* futex variant, and every wait is
// deadline-bounded with an abort word for poisoning, so a dead peer
// process is a typed FabricError, not a hang. Capacities are fixed at
// segment creation (cross-process buffers can't grow); an oversized
// request is kCapacity before anything is copied.
//
// ShmDaemonServer is the host-rank analogue of MemoryDaemon::run(): the
// same (R…R)(W…W) bracket loop and reset schedule, serving from the shm
// slots through persistent scratch buffers (steady-state
// allocation-free once the scratch reaches its high-water shape —
// tests/test_fabric_alloc.cpp pins this).
//
// Lifecycle follows the fabric convention: the launcher parent creates
// segments (create_segment) and unlinks them; host/client ranks only
// attach.
#pragma once

#include <chrono>
#include <string>
#include <thread>

#include "distributed/shm.hpp"
#include "memory/daemon.hpp"
#include "memory/daemon_channel.hpp"

namespace disttgl {

using dist::ShmSegment;

struct ShmDaemonSpec {
  std::size_t slots = 1;  // i*j trainer ranks in the group
  std::size_t mem_dim = 0;
  std::size_t mail_dim = 0;
  std::size_t max_read_nodes = 0;
  std::size_t max_write_nodes = 0;
};

class ShmDaemonChannel final : public DaemonChannel {
 public:
  static std::size_t segment_bytes(const ShmDaemonSpec& spec);
  // Parent side: create + initialize. The returned segment owns the shm
  // name (unlink on destruction); keep it alive for the session.
  static ShmSegment create_segment(const std::string& name,
                                   const ShmDaemonSpec& spec);
  // Rank side: attach and validate the header.
  static ShmDaemonChannel attach(const std::string& name, WaitPolicy wait,
                                 std::chrono::milliseconds timeout);

  void read(std::size_t rank, std::span<const NodeId> nodes,
            MemorySlice& out) override;
  void write(std::size_t rank, const MemoryWrite& w) override;
  // Blocks until the serving ShmDaemonServer has completed >= `rounds`
  // brackets (deadline-bounded; abort poisons it like every shm wait).
  void await_rounds(std::size_t rounds) override;

  // Poison the channel: all current and future waits throw kAborted.
  void abort_session();
  bool aborted() const;

  const ShmDaemonSpec& spec() const { return spec_; }

 private:
  friend class ShmDaemonServer;
  ShmDaemonChannel(ShmSegment segment, WaitPolicy wait,
                   std::chrono::milliseconds timeout);

  struct SlotView;
  SlotView slot(std::size_t rank) const;

  ShmSegment segment_;
  ShmDaemonSpec spec_;
  WaitPolicy wait_;
  std::chrono::milliseconds timeout_;
};

// Host-rank server thread: owns the bracket serialization over the shm
// slots, applying reads/writes to the borrowed MemoryState exactly as
// MemoryDaemon does in-process.
class ShmDaemonServer {
 public:
  // `state` is borrowed (caller must not touch it between start() and
  // join()); `channel` is the host's attached channel for this group's
  // segment (borrowed; server uses its slot views and abort flag).
  ShmDaemonServer(MemoryState& state, DaemonConfig config,
                  ShmDaemonChannel& channel);
  ~ShmDaemonServer();

  ShmDaemonServer(const ShmDaemonServer&) = delete;
  ShmDaemonServer& operator=(const ShmDaemonServer&) = delete;

  void start();
  // Joins the server thread; rethrows any FabricError it died with
  // (after poisoning the channel so clients failed fast too).
  void join();

 private:
  void run();

  MemoryState& state_;
  DaemonConfig config_;
  ShmDaemonChannel& channel_;
  std::thread thread_;
  bool started_ = false;
  std::exception_ptr failure_;
  // Persistent scratch (capacity-preserving across rounds).
  MemorySlice slice_;
  MemoryWrite write_;
  std::vector<NodeId> read_nodes_;
};

}  // namespace disttgl
