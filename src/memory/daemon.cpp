#include "memory/daemon.hpp"

#include "util/check.hpp"

namespace disttgl {

// The bounded-spin → park slot waits live in util/wait.hpp now (shared
// with the collective barrier and the process fabric); the spin budget
// arrives through DaemonConfig::wait instead of a hardcoded constant.

MemoryDaemon::MemoryDaemon(MemoryState& state, DaemonConfig config)
    : state_(state), config_(std::move(config)) {
  DT_CHECK_GT(config_.i, 0u);
  DT_CHECK_GT(config_.j, 0u);
  const std::size_t n = config_.i * config_.j;
  slots_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) slots_.push_back(std::make_unique<Slot>());
}

MemoryDaemon::~MemoryDaemon() {
  if (started_ && thread_.joinable()) thread_.join();
}

void MemoryDaemon::start() {
  DT_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void MemoryDaemon::join() {
  DT_CHECK(started_);
  if (thread_.joinable()) thread_.join();
}

void MemoryDaemon::read(std::size_t rank, std::span<const NodeId> nodes,
                        MemorySlice& out) {
  DT_CHECK_LT(rank, slots_.size());
  Slot& slot = *slots_[rank];
  // The slot must be free (previous request fully served).
  await_status(slot.read_status, 0, config_.wait);
  slot.read_nodes = nodes.data();
  slot.read_count = nodes.size();
  slot.read_out = &out;
  post_status(slot.read_status, 1);
  await_status(slot.read_status, 0, config_.wait);  // gathered into `out`
}

void MemoryDaemon::write(std::size_t rank, const MemoryWrite& w) {
  DT_CHECK_LT(rank, slots_.size());
  Slot& slot = *slots_[rank];
  await_status(slot.write_status, 0, config_.wait);
  slot.write_req = &w;
  post_status(slot.write_status, 1);
  await_status(slot.write_status, 0, config_.wait);  // applied
}

std::vector<std::string> MemoryDaemon::trace() const {
  DT_CHECK(!thread_.joinable());  // only valid after join()
  return trace_;
}

namespace {
// "R3"/"W3"-style trace entry, built without `"R" + std::to_string(r)`:
// that operator+(const char*, string&&) form trips GCC 12's -Wrestrict
// false positive (GCC bug 105651) under -Werror.
std::string trace_op(char tag, std::size_t rank) {
  std::string op = std::to_string(rank);
  op.insert(op.begin(), tag);
  return op;
}
}  // namespace

void MemoryDaemon::run() {
  const std::size_t rounds = config_.reset_before_round.size();
  for (std::size_t round = 0; round < rounds; ++round) {
    if (config_.reset_before_round[round] != 0) state_.reset();
    const std::size_t sub = round % config_.j;
    const std::size_t base = sub * config_.i;
    // Serve all reads of this subgroup, then all writes — the
    // (R..R)(W..W) bracket of §3.3. Requests within a bracket have no
    // ordering requirement; we serve them by rank.
    for (std::size_t r = base; r < base + config_.i; ++r) {
      Slot& slot = *slots_[r];
      await_status(slot.read_status, 1, config_.wait);
      state_.read_into({slot.read_nodes, slot.read_count}, *slot.read_out,
                       config_.gather_pool);
      slot.read_nodes = nullptr;
      slot.read_count = 0;
      slot.read_out = nullptr;
      if (trace_enabled_) trace_.push_back(trace_op('R', r));
      post_status(slot.read_status, 0);
    }
    for (std::size_t r = base; r < base + config_.i; ++r) {
      Slot& slot = *slots_[r];
      await_status(slot.write_status, 1, config_.wait);
      state_.write(*slot.write_req, config_.gather_pool);
      slot.write_req = nullptr;
      if (trace_enabled_) trace_.push_back(trace_op('W', r));
      post_status(slot.write_status, 0);
    }
  }
}

}  // namespace disttgl
