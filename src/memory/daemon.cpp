#include "memory/daemon.hpp"

#include "distributed/fabric_error.hpp"
#include "util/check.hpp"

namespace disttgl {

// The bounded-spin → park slot waits live in util/wait.hpp now (shared
// with the collective barrier and the process fabric); the spin budget
// arrives through DaemonConfig::wait instead of a hardcoded constant.
//
// Abort protocol: abort() stores kStatusPoison into every slot status
// word (and a sentinel into the round counter) with a wake. Trainer-side
// waits and posts observe the poison and throw kAborted; the daemon
// thread observes it and exits its serve loop. Posts are CAS transitions
// so a post racing an abort can never resurrect a poisoned word — the
// only writer that does not CAS is abort() itself, and everything it
// clobbers is wreckage by definition.

namespace {
// All-ones round counter = aborted (a real schedule never gets close).
constexpr std::uint64_t kRoundsPoison = ~std::uint64_t{0};

void poison_word(std::atomic<int>& word) {
  word.store(kStatusPoison, std::memory_order_release);
  word.notify_all();
}

[[noreturn]] void throw_aborted(const char* what) {
  dist::throw_fabric(dist::FabricErrc::kAborted, what);
}
}  // namespace

MemoryDaemon::MemoryDaemon(MemoryState& state, DaemonConfig config)
    : state_(state), config_(std::move(config)) {
  DT_CHECK_GT(config_.i, 0u);
  DT_CHECK_GT(config_.j, 0u);
  DT_CHECK_LE(config_.start_round, config_.reset_before_round.size());
  rounds_served_.store(config_.start_round, std::memory_order_relaxed);
  const std::size_t n = config_.i * config_.j;
  slots_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) slots_.push_back(std::make_unique<Slot>());
}

MemoryDaemon::~MemoryDaemon() {
  if (started_ && thread_.joinable()) thread_.join();
}

void MemoryDaemon::start() {
  DT_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void MemoryDaemon::join() {
  DT_CHECK(started_);
  if (thread_.joinable()) thread_.join();
}

void MemoryDaemon::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& slot : slots_) {
    poison_word(slot->read_status);
    poison_word(slot->write_status);
  }
  rounds_served_.store(kRoundsPoison, std::memory_order_release);
  rounds_served_.notify_all();
}

void MemoryDaemon::read(std::size_t rank, std::span<const NodeId> nodes,
                        MemorySlice& out) {
  DT_CHECK_LT(rank, slots_.size());
  Slot& slot = *slots_[rank];
  // The slot must be free (previous request fully served).
  if (!await_status_abortable(slot.read_status, 0, config_.wait))
    throw_aborted("memory daemon aborted (read slot)");
  slot.read_nodes = nodes.data();
  slot.read_count = nodes.size();
  slot.read_out = &out;
  if (!try_post_status(slot.read_status, 0, 1))
    throw_aborted("memory daemon aborted (read post)");
  // Gathered into `out`.
  if (!await_status_abortable(slot.read_status, 0, config_.wait))
    throw_aborted("memory daemon aborted (read wait)");
}

void MemoryDaemon::write(std::size_t rank, const MemoryWrite& w) {
  DT_CHECK_LT(rank, slots_.size());
  Slot& slot = *slots_[rank];
  if (!await_status_abortable(slot.write_status, 0, config_.wait))
    throw_aborted("memory daemon aborted (write slot)");
  slot.write_req = &w;
  if (!try_post_status(slot.write_status, 0, 1))
    throw_aborted("memory daemon aborted (write post)");
  // Applied.
  if (!await_status_abortable(slot.write_status, 0, config_.wait))
    throw_aborted("memory daemon aborted (write wait)");
}

void MemoryDaemon::await_rounds(std::size_t rounds) {
  for (;;) {
    if (aborted_.load(std::memory_order_acquire))
      throw_aborted("memory daemon aborted (await_rounds)");
    const std::uint64_t cur = rounds_served_.load(std::memory_order_acquire);
    if (cur >= rounds) return;
    rounds_served_.wait(cur, std::memory_order_acquire);
  }
}

std::vector<std::string> MemoryDaemon::trace() const {
  DT_CHECK(!thread_.joinable());  // only valid after join()
  return trace_;
}

namespace {
// "R3"/"W3"-style trace entry, built without `"R" + std::to_string(r)`:
// that operator+(const char*, string&&) form trips GCC 12's -Wrestrict
// false positive (GCC bug 105651) under -Werror.
std::string trace_op(char tag, std::size_t rank) {
  std::string op = std::to_string(rank);
  op.insert(op.begin(), tag);
  return op;
}
}  // namespace

void MemoryDaemon::run() {
  const std::size_t rounds = config_.reset_before_round.size();
  for (std::size_t round = config_.start_round; round < rounds; ++round) {
    const std::size_t sub = round % config_.j;
    const std::size_t base = sub * config_.i;
    // Serve all reads of this subgroup, then all writes — the
    // (R..R)(W..W) bracket of §3.3. Requests within a bracket have no
    // ordering requirement; we serve them by rank.
    for (std::size_t r = base; r < base + config_.i; ++r) {
      Slot& slot = *slots_[r];
      if (!await_status_abortable(slot.read_status, 1, config_.wait)) return;
      // Epoch-wrap reset, deferred until the round's first read request
      // arrives: a checkpoint captured between rounds (await_rounds
      // happens-before any round-r post) can then never race the zeroing.
      if (r == base && config_.reset_before_round[round] != 0) state_.reset();
      state_.read_into({slot.read_nodes, slot.read_count}, *slot.read_out,
                       config_.gather_pool);
      slot.read_nodes = nullptr;
      slot.read_count = 0;
      slot.read_out = nullptr;
      if (trace_enabled_) trace_.push_back(trace_op('R', r));
      if (!try_post_status(slot.read_status, 1, 0)) return;
    }
    for (std::size_t r = base; r < base + config_.i; ++r) {
      Slot& slot = *slots_[r];
      if (!await_status_abortable(slot.write_status, 1, config_.wait)) return;
      state_.write(*slot.write_req, config_.gather_pool);
      slot.write_req = nullptr;
      if (trace_enabled_) trace_.push_back(trace_op('W', r));
      if (!try_post_status(slot.write_status, 1, 0)) return;
    }
    rounds_served_.store(round + 1, std::memory_order_release);
    rounds_served_.notify_all();
  }
}

}  // namespace disttgl
