#include "memory/daemon.hpp"

#include "util/check.hpp"

namespace disttgl {

namespace {
void spin_until(const std::atomic<int>& status, int value) {
  while (status.load(std::memory_order_acquire) != value) {
    std::this_thread::yield();
  }
}
}  // namespace

MemoryDaemon::MemoryDaemon(MemoryState& state, DaemonConfig config)
    : state_(state), config_(std::move(config)) {
  DT_CHECK_GT(config_.i, 0u);
  DT_CHECK_GT(config_.j, 0u);
  const std::size_t n = config_.i * config_.j;
  slots_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) slots_.push_back(std::make_unique<Slot>());
}

MemoryDaemon::~MemoryDaemon() {
  if (started_ && thread_.joinable()) thread_.join();
}

void MemoryDaemon::start() {
  DT_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void MemoryDaemon::join() {
  DT_CHECK(started_);
  if (thread_.joinable()) thread_.join();
}

MemorySlice MemoryDaemon::read(std::size_t rank, std::span<const NodeId> nodes) {
  DT_CHECK_LT(rank, slots_.size());
  Slot& slot = *slots_[rank];
  // The slot must be free (previous request fully served).
  spin_until(slot.read_status, 0);
  slot.read_idx.assign(nodes.begin(), nodes.end());
  slot.read_status.store(1, std::memory_order_release);
  spin_until(slot.read_status, 0);  // daemon filled read_result
  return std::move(slot.read_result);
}

void MemoryDaemon::write(std::size_t rank, MemoryWrite w) {
  DT_CHECK_LT(rank, slots_.size());
  Slot& slot = *slots_[rank];
  spin_until(slot.write_status, 0);
  slot.write_req = std::move(w);
  slot.write_status.store(1, std::memory_order_release);
  spin_until(slot.write_status, 0);  // applied
}

std::vector<std::string> MemoryDaemon::trace() const {
  DT_CHECK(!thread_.joinable());  // only valid after join()
  return trace_;
}

namespace {
// "R3"/"W3"-style trace entry, built without `"R" + std::to_string(r)`:
// that operator+(const char*, string&&) form trips GCC 12's -Wrestrict
// false positive (GCC bug 105651) under -Werror.
std::string trace_op(char tag, std::size_t rank) {
  std::string op = std::to_string(rank);
  op.insert(op.begin(), tag);
  return op;
}
}  // namespace

void MemoryDaemon::run() {
  const std::size_t rounds = config_.reset_before_round.size();
  for (std::size_t round = 0; round < rounds; ++round) {
    if (config_.reset_before_round[round] != 0) state_.reset();
    const std::size_t sub = round % config_.j;
    const std::size_t base = sub * config_.i;
    // Serve all reads of this subgroup, then all writes — the
    // (R..R)(W..W) bracket of §3.3. Requests within a bracket have no
    // ordering requirement; we serve them by rank.
    for (std::size_t r = base; r < base + config_.i; ++r) {
      Slot& slot = *slots_[r];
      spin_until(slot.read_status, 1);
      slot.read_result = state_.read(slot.read_idx);
      if (trace_enabled_) trace_.push_back(trace_op('R', r));
      slot.read_status.store(0, std::memory_order_release);
    }
    for (std::size_t r = base; r < base + config_.i; ++r) {
      Slot& slot = *slots_[r];
      spin_until(slot.write_status, 1);
      state_.write(slot.write_req);
      if (trace_enabled_) trace_.push_back(trace_op('W', r));
      slot.write_status.store(0, std::memory_order_release);
    }
  }
}

}  // namespace disttgl
