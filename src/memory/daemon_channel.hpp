// Trainer-side seam over the memory-daemon slot protocol.
//
// A trainer's view of the daemon is exactly two blocking calls: lend a
// node list + output slice and get it gathered (read), lend a write
// request and get it applied (write). DaemonChannel abstracts that pair
// so the trainer loop is transport-blind: MemoryDaemon serves it
// in-process over pointer slots (zero-copy), ShmDaemonChannel serves it
// cross-process over shm-offset slots (bounded copies into a shared
// segment). The (R…R)(W…W) bracket serialization of §3.3 is the
// server's business on either side; a channel only posts and waits.
#pragma once

#include <span>

#include "memory/memory_state.hpp"

namespace disttgl {

class DaemonChannel {
 public:
  virtual ~DaemonChannel() = default;

  // Blocks until the daemon has gathered `nodes` into `out`
  // (capacity-preserving). Buffers are lent for the call's duration.
  virtual void read(std::size_t rank, std::span<const NodeId> nodes,
                    MemorySlice& out) = 0;
  // Blocks until the daemon has applied `w`.
  virtual void write(std::size_t rank, const MemoryWrite& w) = 0;

  // Blocks until the serving daemon has completed at least `rounds`
  // full (R…R)(W…W) brackets. The checkpoint protocol uses this to
  // establish a happens-before edge with the daemon thread/process
  // before snapshotting the MemoryState it owns: after every rank has
  // passed the pre-snapshot barrier the daemon has necessarily finished
  // the bracket, so the wait returns promptly — this is an ordering
  // handshake, not a rendezvous.
  virtual void await_rounds(std::size_t rounds) = 0;
};

}  // namespace disttgl
