#include "memory/memory_state.hpp"

namespace disttgl {

MemorySlice MemoryState::read(std::span<const NodeId> nodes) const {
  MemorySlice s;
  s.mem = memory_.gather(nodes);
  s.mem_ts = memory_.gather_ts(nodes);
  s.mail = mailbox_.gather(nodes);
  s.mail_ts = mailbox_.gather_ts(nodes);
  s.has_mail = mailbox_.gather_flags(nodes);
  return s;
}

void MemoryState::write(const MemoryWrite& w) {
  DT_CHECK_EQ(w.mem.rows(), w.nodes.size());
  DT_CHECK_EQ(w.mail.rows(), w.nodes.size());
  memory_.scatter(w.nodes, w.mem, w.mem_ts);
  mailbox_.scatter(w.nodes, w.mail, w.mail_ts);
}

}  // namespace disttgl
