#include "memory/memory_state.hpp"

#include <cstring>

namespace disttgl {

namespace {
// Rows per parallel_for chunk. Chunking is a pure function of the row
// count (never of the thread count), so the work decomposition — and
// therefore the output — is identical no matter how many workers the
// pool has. Below ~2 chunks the handoff cannot pay for itself.
constexpr std::size_t kRowsPerChunk = 512;
// How far ahead of the copy cursor to prefetch the randomly-addressed
// table rows. The gather is a pointer-chase over a num_nodes-sized
// table; telling the hardware about row i+kPrefetchAhead while copying
// row i hides most of the miss latency.
constexpr std::size_t kPrefetchAhead = 8;

inline void prefetch_row(const float* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}
}  // namespace

void MemoryState::gather_rows(std::span<const NodeId> nodes, MemorySlice& out,
                              std::size_t lo, std::size_t hi) const {
  const std::size_t md = mem_dim_;
  const std::size_t ld = mail_dim_;
  const std::size_t meta = meta_off();
  for (std::size_t i = lo; i < hi; ++i) {
    const NodeId v = nodes[i];
    DT_CHECK_LT(v, num_nodes_);
    if (i + kPrefetchAhead < hi) {
      const NodeId nxt = nodes[i + kPrefetchAhead];
      if (nxt < num_nodes_) prefetch_row(row(nxt));
    }
    // One blocked row holds everything: a single contiguous read.
    const float* src = row(v);
    std::memcpy(out.mem.row_ptr(i), src, md * sizeof(float));
    std::memcpy(out.mail.row_ptr(i), src + md, ld * sizeof(float));
    out.mem_ts[i] = src[meta];
    out.mail_ts[i] = src[meta + 1];
    out.has_mail[i] = src[meta + 2] != 0.0f ? 1 : 0;
  }
}

void MemoryState::read_into(std::span<const NodeId> nodes, MemorySlice& out,
                            ThreadPool* pool) const {
  const std::size_t n = nodes.size();
  out.mem.reset_shape(n, mem_dim_);
  out.mem_ts.resize(n);
  out.mail.reset_shape(n, mail_dim_);
  out.mail_ts.resize(n);
  out.has_mail.resize(n);
  const std::size_t chunks = (n + kRowsPerChunk - 1) / kRowsPerChunk;
  if (pool == nullptr || chunks < 2) {
    gather_rows(nodes, out, 0, n);
    return;
  }
  // try_: a gather sits on the trainer-iteration critical path, so if
  // the pool is mid-fan-out for background batch construction we run
  // serially instead of queuing behind it (identical output either way).
  const bool ran = pool->try_parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * kRowsPerChunk;
    gather_rows(nodes, out, lo, std::min(lo + kRowsPerChunk, n));
  });
  if (!ran) gather_rows(nodes, out, 0, n);
}

void MemoryState::scatter_rows(const MemoryWrite& w, std::size_t lo,
                               std::size_t hi) {
  const std::size_t md = mem_dim_;
  const std::size_t ld = mail_dim_;
  const std::size_t meta = meta_off();
  for (std::size_t i = lo; i < hi; ++i) {
    const NodeId v = w.nodes[i];
    DT_CHECK_LT(v, num_nodes_);
    if (i + kPrefetchAhead < hi) {
      const NodeId nxt = w.nodes[i + kPrefetchAhead];
      if (nxt < num_nodes_) prefetch_row(row(nxt));
    }
    float* dst = row(v);
    std::memcpy(dst, w.mem.row_ptr(i), md * sizeof(float));
    std::memcpy(dst + md, w.mail.row_ptr(i), ld * sizeof(float));
    dst[meta] = w.mem_ts[i];
    dst[meta + 1] = w.mail_ts[i];
    dst[meta + 2] = 1.0f;  // a write always delivers a mail
  }
}

void MemoryState::write(const MemoryWrite& w, ThreadPool* pool) {
  const std::size_t n = w.nodes.size();
  if (n == 0) return;  // empty-chunk protocol writes carry no payload
  DT_CHECK_EQ(w.mem.rows(), n);
  DT_CHECK_EQ(w.mem.cols(), mem_dim_);
  DT_CHECK_EQ(w.mem_ts.size(), n);
  DT_CHECK_EQ(w.mail.rows(), n);
  DT_CHECK_EQ(w.mail.cols(), mail_dim_);
  DT_CHECK_EQ(w.mail_ts.size(), n);
  const std::size_t chunks = (n + kRowsPerChunk - 1) / kRowsPerChunk;
  if (pool == nullptr || chunks < 2) {
    scatter_rows(w, 0, n);
    return;
  }
  // w.nodes are distinct, so chunks scatter to disjoint rows. try_: as
  // in read_into, never queue critical-path work behind a background
  // fan-out on the shared pool.
  const bool ran = pool->try_parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * kRowsPerChunk;
    scatter_rows(w, lo, std::min(lo + kRowsPerChunk, n));
  });
  if (!ran) scatter_rows(w, 0, n);
}

void MemoryState::restore(std::span<const NodeId> nodes, const Matrix& mem,
                          std::span<const float> mem_ts, const Matrix& mail,
                          std::span<const float> mail_ts,
                          std::span<const std::uint8_t> flags) {
  const std::size_t n = nodes.size();
  DT_CHECK_EQ(mem.rows(), n);
  DT_CHECK_EQ(mem.cols(), mem_dim_);
  DT_CHECK_EQ(mail.rows(), n);
  DT_CHECK_EQ(mail.cols(), mail_dim_);
  DT_CHECK_EQ(mem_ts.size(), n);
  DT_CHECK_EQ(mail_ts.size(), n);
  DT_CHECK_EQ(flags.size(), n);
  const std::size_t meta = meta_off();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = nodes[i];
    DT_CHECK_LT(v, num_nodes_);
    float* dst = row(v);
    std::memcpy(dst, mem.row_ptr(i), mem_dim_ * sizeof(float));
    std::memcpy(dst + mem_dim_, mail.row_ptr(i), mail_dim_ * sizeof(float));
    dst[meta] = mem_ts[i];
    dst[meta + 1] = mail_ts[i];
    dst[meta + 2] = flags[i] != 0 ? 1.0f : 0.0f;
  }
}

namespace {

void digest_bytes(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
}

}  // namespace

std::uint64_t memory_digest(const MemoryState& state) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (NodeId v = 0; v < state.num_nodes(); ++v) {
    const std::span<const float> mem = state.mem_row(v);
    const std::span<const float> mail = state.mail_row(v);
    digest_bytes(h, mem.data(), mem.size() * sizeof(float));
    digest_bytes(h, mail.data(), mail.size() * sizeof(float));
    const float ts[2] = {state.last_update(v), state.mail_ts(v)};
    digest_bytes(h, ts, sizeof(ts));
    const std::uint8_t flag = state.has_mail(v) ? 1 : 0;
    digest_bytes(h, &flag, 1);
  }
  return h;
}

}  // namespace disttgl
