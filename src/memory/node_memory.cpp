#include "memory/node_memory.hpp"

#include <cstring>

namespace disttgl {

Matrix NodeMemory::gather(std::span<const NodeId> nodes) const {
  Matrix out(nodes.size(), dim());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DT_CHECK_LT(nodes[i], num_nodes());
    std::memcpy(out.row_ptr(i), mem_.row_ptr(nodes[i]), dim() * sizeof(float));
  }
  return out;
}

std::vector<float> NodeMemory::gather_ts(std::span<const NodeId> nodes) const {
  std::vector<float> out(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = last_update_[nodes[i]];
  return out;
}

void NodeMemory::scatter(std::span<const NodeId> nodes, const Matrix& rows,
                         std::span<const float> ts) {
  DT_CHECK_EQ(rows.rows(), nodes.size());
  DT_CHECK_EQ(ts.size(), nodes.size());
  DT_CHECK_EQ(rows.cols(), dim());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DT_CHECK_LT(nodes[i], num_nodes());
    std::memcpy(mem_.row_ptr(nodes[i]), rows.row_ptr(i), dim() * sizeof(float));
    last_update_[nodes[i]] = ts[i];
  }
}

}  // namespace disttgl
