// Dynamic node memory s_v (§2.1).
//
// One row per node plus the timestamp of the last UPDT application
// (t_v^-), needed both for the mail time encoding Φ(t − t_v^-) and for
// the staleness diagnostics of Figure 3/8.
#pragma once

#include <vector>

#include "graph/types.hpp"
#include "tensor/matrix.hpp"

namespace disttgl {

class NodeMemory {
 public:
  NodeMemory() = default;
  NodeMemory(std::size_t num_nodes, std::size_t dim)
      : mem_(num_nodes, dim), last_update_(num_nodes, 0.0f) {}

  std::size_t num_nodes() const { return mem_.rows(); }
  std::size_t dim() const { return mem_.cols(); }

  void reset() {
    mem_.zero();
    std::fill(last_update_.begin(), last_update_.end(), 0.0f);
  }

  std::span<const float> row(NodeId v) const { return mem_.row(v); }
  float last_update(NodeId v) const { return last_update_[v]; }

  // Raw row access for the fused MemoryState gather/scatter paths.
  const float* row_ptr(NodeId v) const { return mem_.row_ptr(v); }
  float* row_ptr(NodeId v) { return mem_.row_ptr(v); }
  void set_last_update(NodeId v, float ts) { last_update_[v] = ts; }

  // Batched access by node list.
  Matrix gather(std::span<const NodeId> nodes) const;
  std::vector<float> gather_ts(std::span<const NodeId> nodes) const;
  void scatter(std::span<const NodeId> nodes, const Matrix& rows,
               std::span<const float> ts);

  const Matrix& raw() const { return mem_; }

 private:
  Matrix mem_;
  std::vector<float> last_update_;
};

}  // namespace disttgl
