// Memory daemon process (§3.3, Algorithm 1).
//
// Within one memory-copy group of i×j trainers, reads and writes to the
// shared node memory must follow the serialized order
//
//   (R_{s0}) (W_{s0}) (R_{s1}) (W_{s1}) … ,
//
// where s_r is the r-th mini-batch-parallel subgroup of i trainers and
// subgroups rotate round-robin (one global batch per round). Instead of a
// cross-process lock, DistTGL dedicates a daemon thread per group that
// owns the MemoryState outright and serves requests from per-trainer
// shared slots, each guarded by an atomic status word — the C++ analogue
// of the paper's `read_status`/`write_status` shared buffers:
//
//   trainer:  fill slot → status.store(1, release) → await 0
//   daemon :  await 1 (acquire) → serve → status.store(0, release)
//
// The protocol is zero-copy: a slot carries only pointers into the
// requesting trainer's buffers — the node list and the MemorySlice the
// daemon gathers straight into on read, the MemoryWrite it applies
// straight from on write. No payload crosses the slot by value, so the
// per-iteration slice allocation + move and the write-request handoff
// copy of the pre-zero-copy protocol are gone; steady-state protocol
// traffic is two atomic transitions per operation. The trainer blocks
// until served, which is what makes lending its buffers safe.
//
// Waiting is bounded spin → std::atomic::wait parking. A trainer whose
// turn is imminent stays in the cheap spin; one that is scheduled out
// for a while (oversubscribed container, long round) parks on a futex
// instead of burning a core on yield loops. Each status word has at most
// one waiter at a time, so notify_one after every transition suffices.
//
// The daemon enforces the serialization: all i reads of a subgroup are
// served before any of its writes (preventing the Write-After-Read hazard
// of §3.2.1), and a subgroup's writes are served before the next
// subgroup's reads (so iteration t+1 observes iteration t's updates).
// Epoch resets (zeroing memory and mailbox) happen between rounds at the
// positions listed in DaemonConfig::reset_before_round, which the
// schedule builder derives from where each memory copy's batch stream
// wraps to batch 0.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "memory/daemon_channel.hpp"
#include "memory/memory_state.hpp"
#include "util/wait.hpp"

namespace disttgl {

struct DaemonConfig {
  std::size_t i = 1;  // trainers per mini-batch subgroup
  std::size_t j = 1;  // subgroups (epoch parallelism degree)
  // Per-round epoch-reset flags; size() is the total number of rounds
  // this daemon will serve before exiting.
  std::vector<std::uint8_t> reset_before_round;
  // First round to serve (resumed runs skip the rounds already executed
  // before the snapshot; reset flags for skipped rounds never fire).
  std::size_t start_round = 0;
  // Optional pool for fanning large gathers/scatters over
  // ThreadPool::parallel_for (results stay bit-identical; see
  // MemoryState::read_into). Borrowed; must outlive the daemon.
  ThreadPool* gather_pool = nullptr;
  // Bounded-spin → park budget for the slot-protocol waits
  // (TrainingConfig::fabric.spin_polls; 0 = park immediately).
  WaitPolicy wait;
};

class MemoryDaemon final : public DaemonChannel {
 public:
  // The daemon borrows `state`; the caller keeps it alive and must not
  // touch it between start() and join().
  MemoryDaemon(MemoryState& state, DaemonConfig config);
  ~MemoryDaemon() override;

  MemoryDaemon(const MemoryDaemon&) = delete;
  MemoryDaemon& operator=(const MemoryDaemon&) = delete;

  std::size_t group_size() const { return slots_.size(); }

  void start();
  // Waits for the daemon to finish serving all configured rounds.
  void join();

  // ---- trainer-side API (rank ∈ [0, i*j)) ----
  // Posts a read request for `nodes` and blocks until the daemon has
  // gathered the slice directly into `out` (capacity-preserving, zero
  // copies through the slot). `nodes` and `out` are lent to the daemon
  // for the duration of the call only.
  void read(std::size_t rank, std::span<const NodeId> nodes,
            MemorySlice& out) override;
  // Allocating convenience wrapper around the zero-copy read.
  MemorySlice read(std::size_t rank, std::span<const NodeId> nodes) {
    MemorySlice s;
    read(rank, nodes, s);
    return s;
  }
  // Posts a write request and blocks until the daemon has applied it
  // straight from `w` (lent for the duration of the call only).
  void write(std::size_t rank, const MemoryWrite& w) override;
  // Blocks until the daemon has completed >= `rounds` brackets (abort
  // wakes the wait with a kAborted throw).
  void await_rounds(std::size_t rounds) override;

  // Poisons every slot status word and wakes all parked parties —
  // trainers mid-handshake and the daemon thread itself bail with
  // kAborted instead of waiting for peers that will never post. The
  // in-process analogue of ShmDaemonChannel::abort_session, used by the
  // threaded trainer's failure teardown. Idempotent, any thread.
  void abort();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  // Diagnostics: serialized operation trace "(R|W)<rank>" in service
  // order, captured when trace_enabled (used by tests and Fig 7 dump).
  void enable_trace() { trace_enabled_ = true; }
  std::vector<std::string> trace() const;

 private:
  struct Slot {
    std::atomic<int> read_status{0};
    std::atomic<int> write_status{0};
    // Zero-copy request descriptors: pointers into trainer-owned
    // buffers, valid exactly while the matching status word is 1.
    const NodeId* read_nodes = nullptr;
    std::size_t read_count = 0;
    MemorySlice* read_out = nullptr;
    const MemoryWrite* write_req = nullptr;
  };

  void run();

  MemoryState& state_;
  DaemonConfig config_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::thread thread_;
  std::atomic<bool> aborted_{false};
  // Completed (R…R)(W…W) brackets, counted from round 0 of the full
  // schedule (initialized to start_round on resume); bumped with a
  // release store + notify_all so await_rounds establishes
  // happens-before with everything the bracket wrote.
  std::atomic<std::uint64_t> rounds_served_{0};
  bool started_ = false;
  bool trace_enabled_ = false;
  std::vector<std::string> trace_;  // daemon-thread only until join()
};

}  // namespace disttgl
