#include "pipeline/prefetcher.hpp"

#include "util/check.hpp"

namespace disttgl {

Prefetcher::Prefetcher(const MiniBatchBuilder& builder,
                       std::vector<Request> requests, std::size_t ahead)
    : builder_(builder), requests_(std::move(requests)), ahead_(ahead) {
  DT_CHECK_GT(ahead, 0u);
  worker_ = std::thread([this] { worker_loop(); });
}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_producer_.notify_all();
  cv_consumer_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::optional<MiniBatch> Prefetcher::next() {
  std::unique_lock<std::mutex> lock(mu_);
  if (consumed_ == requests_.size()) return std::nullopt;
  cv_consumer_.wait(lock, [this] { return !ready_.empty() || stop_; });
  if (ready_.empty()) return std::nullopt;  // stopped
  MiniBatch mb = std::move(ready_.front());
  ready_.pop_front();
  ++consumed_;
  cv_producer_.notify_one();
  return mb;
}

void Prefetcher::worker_loop() {
  for (const Request& req : requests_) {
    // Build outside the lock — this is the expensive part being hidden.
    MiniBatch mb = builder_.build(req.batch_idx, req.begin, req.end, req.neg_groups);
    std::unique_lock<std::mutex> lock(mu_);
    cv_producer_.wait(lock, [this] { return ready_.size() < ahead_ || stop_; });
    if (stop_) return;
    ready_.push_back(std::move(mb));
    ++produced_;
    cv_consumer_.notify_one();
  }
}

}  // namespace disttgl
