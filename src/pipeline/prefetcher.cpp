#include "pipeline/prefetcher.hpp"

#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace disttgl {

Prefetcher::Prefetcher(const MiniBatchBuilder& builder,
                       std::vector<Request> requests, std::size_t ahead,
                       ThreadPool* workers, MiniBatchPool* batch_pool)
    : builder_(builder),
      requests_(std::move(requests)),
      ahead_(ahead),
      workers_(workers),
      batch_pool_(batch_pool) {
  DT_CHECK_GT(ahead, 0u);
  if (workers_ == nullptr) {
    owned_workers_ = std::make_unique<ThreadPool>(1);
    workers_ = owned_workers_.get();
  }
  ring_.resize(ahead_);
  ring_full_.assign(ahead_, 0);
  std::lock_guard<std::mutex> lock(mu_);
  schedule_locked();
}

Prefetcher::~Prefetcher() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_ = true;
  // Scheduled jobs hold `this`; wait for every one to drain before the
  // members (ring handles, owned pools) go away. Jobs observe stop_ and
  // finish quickly; an owned worker pool joins in its own destructor.
  cv_ready_.wait(lock, [this] { return in_flight_ == 0; });
}

void Prefetcher::schedule_locked() {
  while (scheduled_ < requests_.size() && scheduled_ < consumed_ + ahead_ &&
         !stop_) {
    const std::size_t r = scheduled_++;
    ++in_flight_;
    workers_->submit([this, r] { build_one(r); });
  }
}

void Prefetcher::build_one(std::size_t r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      --in_flight_;
      cv_ready_.notify_all();
      return;
    }
  }
  PooledBatch b = batch_pool_ != nullptr
                      ? batch_pool_->acquire()
                      : PooledBatch::adopt(std::make_unique<MiniBatch>());
  const Request& req = requests_[r];
  std::exception_ptr err;
  WallTimer timer;
  try {
    builder_.build_into(req.batch_idx, req.begin, req.end, req.neg_groups, *b);
  } catch (...) {
    err = std::current_exception();
  }
  const double elapsed = timer.seconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    build_seconds_ += elapsed;
    if (err != nullptr && error_ == nullptr) error_ = err;
    if (!stop_ && err == nullptr) {
      ring_[r % ahead_] = std::move(b);
      ring_full_[r % ahead_] = 1;
    } else {
      // Failed or cancelled: the buffer must be back in its pool before
      // in_flight_ says this job is done — the destructor (and with it
      // the whole trainer teardown) takes that as "no job still holds a
      // checkout".
      b.release();
    }
    --in_flight_;
    // Notify under the lock: the destructor destroys these members the
    // moment it observes in_flight_ == 0, so an unlocked notify could
    // signal a dead condition variable.
    cv_ready_.notify_all();
  }
}

PooledBatch Prefetcher::next() {
  std::unique_lock<std::mutex> lock(mu_);
  if (consumed_ == requests_.size()) return {};
  const std::size_t slot = consumed_ % ahead_;
  cv_ready_.wait(lock, [&] {
    return ring_full_[slot] != 0 || error_ != nullptr || stop_;
  });
  // The error stays latched: the failed request's ring slot will never
  // fill, so a consumer that catches and calls next() again must keep
  // getting the error rather than deadlock waiting on the slot.
  if (error_ != nullptr) std::rethrow_exception(error_);
  if (ring_full_[slot] == 0) return {};  // stopped
  PooledBatch out = std::move(ring_[slot]);
  ring_full_[slot] = 0;
  ++consumed_;
  schedule_locked();
  return out;
}

double Prefetcher::build_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return build_seconds_;
}

}  // namespace disttgl
